// The live /debug introspection plane over real kernel sockets: route
// catalog, hardened HTTP parsing (404 with a body, 405, 431 on an oversized
// request line, split reads), rollup-backed /debug/vars rates, and the
// /debug/flight journal served in dump format.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "lod/net/real_transport.hpp"
#include "lod/net/transport.hpp"
#include "lod/obs/flight.hpp"

namespace lod::net {
namespace {

constexpr HostId kHost = 1;
constexpr Port kPort = 19377;

/// Raw blocking client so tests control exactly how bytes hit the wire
/// (http_get always sends the request in one piece).
class RawConn {
 public:
  RawConn(const std::string& ip, Port port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
    const timeval tv{5, 0};
    if (fd_ >= 0) ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }
  void send_all(std::string_view s) {
    std::size_t off = 0;
    while (off < s.size()) {
      const ssize_t n = ::send(fd_, s.data() + off, s.size() - off, 0);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }
  /// Read until the server closes (every response is Connection: close).
  std::string read_to_eof() {
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_{-1};
};

class DebugHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RealTransport::Config cfg;
    cfg.rollup_window_us = 50'000;  // fast windows so rates appear mid-test
    net_ = std::make_unique<RealTransport>(cfg);
    net_->register_host(kHost, "origin");
    rpc_ = std::make_unique<RpcServer>(*net_, kHost, Port{19378});
    const Result<void> listening = net_->listen_tcp(kHost, kPort, *rpc_);
    ASSERT_TRUE(listening.has_value()) << to_string(listening.error());
    ip_ = net_->host_address(kHost);
    loop_ = std::thread([this] { net_->run(); });
  }
  void TearDown() override {
    net_->stop();
    loop_.join();
  }

  std::unique_ptr<RealTransport> net_;
  std::unique_ptr<RpcServer> rpc_;
  std::string ip_;
  std::thread loop_;
};

TEST_F(DebugHttpTest, MetricsStillServed) {
  const auto r = http_get(ip_, kPort, "/metrics");
  ASSERT_TRUE(r.has_value()) << to_string(r.error());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("lod_realnet_datagrams_sent"), std::string::npos);
}

TEST_F(DebugHttpTest, UnknownPathGets404WithCatalogBody) {
  const auto r = http_get(ip_, kPort, "/nope");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 404);
  EXPECT_NE(r->body.find("not found"), std::string::npos);
  EXPECT_NE(r->body.find("/debug/flight"), std::string::npos)
      << "404 body should list the route catalog";
}

TEST_F(DebugHttpTest, NonGetOnKnownRouteGets405) {
  RawConn c(ip_, kPort);
  ASSERT_TRUE(c.ok());
  c.send_all("POST /debug/vars HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string resp = c.read_to_eof();
  EXPECT_EQ(resp.find("HTTP/1.1 405"), 0u) << resp.substr(0, 64);
}

TEST_F(DebugHttpTest, OversizedRequestLineGets431) {
  RawConn c(ip_, kPort);
  ASSERT_TRUE(c.ok());
  // 16 KB of request line with no CRLF in sight: the server must answer
  // 431 and close instead of buffering forever.
  c.send_all("GET /" + std::string(16'000, 'a'));
  const std::string resp = c.read_to_eof();
  EXPECT_EQ(resp.find("HTTP/1.1 431"), 0u) << resp.substr(0, 64);
}

TEST_F(DebugHttpTest, SurvivesBytewiseSplitReads) {
  RawConn c(ip_, kPort);
  ASSERT_TRUE(c.ok());
  const std::string req = "GET /debug/sync HTTP/1.1\r\nHost: x\r\n\r\n";
  // Drip the request a byte at a time across many TCP segments; the parser
  // must wait for the full header, then answer normally.
  for (const char ch : req) {
    c.send_all({&ch, 1});
    if (ch == '\n') std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string resp = c.read_to_eof();
  EXPECT_EQ(resp.find("HTTP/1.1 200"), 0u) << resp.substr(0, 64);
  EXPECT_NE(resp.find("\"series\""), std::string::npos);
}

TEST_F(DebugHttpTest, VarsServesSeriesAndRollupRates) {
  // Generate traffic, then wait past a rollup window so a rate exists.
  rpc_->route("/ping", [](std::string_view, std::span<const std::byte>) {
    return std::make_pair(200, std::vector<std::byte>{});
  });
  TcpRpcClient rpc(ip_, kPort);
  for (int i = 0; i < 3; ++i) (void)rpc.call("/ping", {});
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto r = http_get(ip_, kPort, "/debug/vars");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->body.find("{\"t\":"), 0u);
  EXPECT_NE(r->body.find("\"rollup\":{\"windows\":"), std::string::npos);
  EXPECT_NE(r->body.find("\"series\":["), std::string::npos);
  EXPECT_NE(r->body.find("\"rates\":{"), std::string::npos);
}

TEST_F(DebugHttpTest, SessionsAndSyncRoutesAnswerJson) {
  const auto sessions = http_get(ip_, kPort, "/debug/sessions");
  ASSERT_TRUE(sessions.has_value());
  EXPECT_EQ(sessions->status, 200);
  EXPECT_EQ(sessions->body.find("{\"hosts\":["), 0u);

  const auto sync = http_get(ip_, kPort, "/debug/sync");
  ASSERT_TRUE(sync.has_value());
  EXPECT_EQ(sync->status, 200);
  EXPECT_EQ(sync->body.find("{\"series\":["), 0u);
}

TEST_F(DebugHttpTest, TraceRouteServesIndexAndSingleTree) {
  auto& trace = net_->obs().trace();
  trace.set_enabled(true);
  const obs::TraceContext ctx = trace.make_trace();
  const auto span = trace.begin_span(ctx, "edge.miss_fill", kHost);
  trace.end_span(ctx, span, "edge.miss_fill", kHost);

  const auto index = http_get(ip_, kPort, "/debug/trace");
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(index->status, 200);
  EXPECT_NE(index->body.find("\"traces\":["), std::string::npos);
  EXPECT_NE(index->body.find("edge.miss_fill"), std::string::npos);

  const auto tree = http_get(
      ip_, kPort, "/debug/trace?trace_id=" + std::to_string(ctx.trace_id));
  ASSERT_TRUE(tree.has_value());
  EXPECT_NE(tree->body.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(tree->body.find("\"critical_path\":"), std::string::npos);

  const auto missing = http_get(ip_, kPort, "/debug/trace?trace_id=999999");
  ASSERT_TRUE(missing.has_value());
  EXPECT_NE(missing->body.find("trace not found"), std::string::npos);
}

TEST_F(DebugHttpTest, FlightRouteServesJournalInDumpFormat) {
  net_->obs().flight().record_at(42, obs::FlightType::kCacheMiss, kHost, 3);
  const auto r = http_get(ip_, kPort, "/debug/flight");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->body.find("{\"flight_dump\":{\"reason\":\"live\""), 0u);
  const auto events = obs::FlightRecorder::parse_jsonl(r->body);
  bool saw_miss = false;
  for (const auto& e : events) {
    if (e.type == obs::FlightType::kCacheMiss && e.a == 3) saw_miss = true;
  }
  EXPECT_TRUE(saw_miss) << "journal lost the recorded cache miss";
}

}  // namespace
}  // namespace lod::net
