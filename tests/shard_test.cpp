#include "lod/net/network.hpp"
#include "lod/net/sharded_runner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "lod/lod/loadgen.hpp"
#include "lod/obs/export.hpp"

namespace lod::net {
namespace {

// --- seed derivation ---------------------------------------------------------

TEST(DeriveShardSeed, DeterministicAndDistinct) {
  EXPECT_EQ(derive_shard_seed(42, 3), derive_shard_seed(42, 3));
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {0ULL, 1ULL, 2ULL, 0xDEADBEEFULL}) {
    for (std::size_t shard = 0; shard < 16; ++shard) {
      seen.insert(derive_shard_seed(root, shard));
    }
  }
  // 4 roots x 16 shards, all decorrelated — no collisions.
  EXPECT_EQ(seen.size(), 64u);
}

// --- runner mechanics --------------------------------------------------------

TEST(ShardedRunner, BodySeesItsCoordinatesAndDerivedSeed) {
  ShardedRunner runner(3, 0xAB);
  const auto r = runner.run([](ShardEnv& env) {
    EXPECT_EQ(env.shard_count, 3u);
    EXPECT_EQ(env.seed, derive_shard_seed(0xAB, env.shard));
    env.sim.obs().metrics().counter("test.ran").inc();
  });
  ASSERT_EQ(r.shards.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(r.shards[k].shard, k);
    EXPECT_EQ(r.shards[k].seed, derive_shard_seed(0xAB, k));
    EXPECT_EQ(r.shards[k].snapshot.counter("test.ran"), 1u);
  }
  EXPECT_EQ(r.merged.counter("test.ran"), 3u);
}

TEST(ShardedRunner, ZeroShardsClampsToOne) {
  ShardedRunner runner(0);
  EXPECT_EQ(runner.shard_count(), 1u);
  const auto r = runner.run([](ShardEnv&) {});
  EXPECT_EQ(r.shards.size(), 1u);
}

TEST(ShardedRunner, MergedCountersSumAndGaugesKeepPerShardSeries) {
  ShardedRunner runner(2, 7);
  const auto r = runner.run([](ShardEnv& env) {
    auto& m = env.sim.obs().metrics();
    m.counter("test.events").inc(10 * (env.shard + 1));
    m.gauge("test.depth").set(static_cast<std::int64_t>(env.shard) + 5);
  });
  EXPECT_EQ(r.merged.counter("test.events"), 30u);
  // Aggregate gauge is last-writer (shard 1); per-shard values survive under
  // the appended {shard=<k>} label.
  EXPECT_EQ(r.merged.gauge("test.depth"), 6);
  EXPECT_EQ(r.merged.gauge("test.depth", {{"shard", "0"}}), 5);
  EXPECT_EQ(r.merged.gauge("test.depth", {{"shard", "1"}}), 6);
}

TEST(ShardedRunner, EventsFiredAndEndTimeCaptured) {
  ShardedRunner runner(2, 1);
  const auto r = runner.run([](ShardEnv& env) {
    for (int i = 0; i < 4; ++i) {
      env.sim.schedule_after(msec(10 * (i + 1)), [] {});
    }
    env.sim.run_until(SimTime{sec(1).us});
  });
  for (const auto& s : r.shards) {
    EXPECT_EQ(s.events_fired, 4u);
    EXPECT_EQ(s.end_time, SimTime{sec(1).us});
  }
  EXPECT_EQ(r.total_events_fired(), 8u);
}

TEST(ShardedRunner, TraceCollationOrdersByTimeWithDistinctIdRanges) {
  ShardedRunner runner(2, 1, /*enable_trace=*/true);
  const auto r = runner.run([](ShardEnv& env) {
    auto& sink = env.sim.obs().trace();
    // Shard 0 emits at 2ms and 4ms, shard 1 at 1ms and 3ms: the merged
    // timeline must interleave them by time.
    const auto base = msec(env.shard == 0 ? 2 : 1);
    env.sim.schedule_after(base, [&sink, &env] {
      sink.emit(obs::EventType::kSpanBegin, env.shard);
    });
    env.sim.schedule_after(base + msec(2), [&sink, &env] {
      sink.emit(obs::EventType::kSpanEnd, env.shard);
    });
    const auto ctx = sink.make_trace();
    EXPECT_GE(ctx.trace_id, (static_cast<std::uint64_t>(env.shard) + 1) << 32);
    EXPECT_LT(ctx.trace_id, (static_cast<std::uint64_t>(env.shard) + 2) << 32);
    env.sim.run_until(SimTime{sec(1).us});
  });
  ASSERT_EQ(r.trace.size(), 4u);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i - 1].t, r.trace[i].t);
  }
  // 1ms (shard 1), 2ms (shard 0), 3ms (shard 1), 4ms (shard 0).
  EXPECT_EQ(r.trace[0].actor, 1u);
  EXPECT_EQ(r.trace[1].actor, 0u);
  EXPECT_EQ(r.trace[2].actor, 1u);
  EXPECT_EQ(r.trace[3].actor, 0u);
}

TEST(ShardedRunner, BodyExceptionPropagatesAfterAllShardsJoin) {
  ShardedRunner runner(3, 1);
  EXPECT_THROW(runner.run([](ShardEnv& env) {
    if (env.shard == 1) throw std::runtime_error("shard 1 blew up");
    env.sim.obs().metrics().counter("test.ok").inc();
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace lod::net

namespace lod::lod {
namespace {

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.sessions = 12;
  spec.client_hosts = 4;
  spec.lecture_len = net::sec(4);
  spec.arrival_window = net::sec(4);
  spec.flaky_edge_up_for = net::sec(3);
  spec.horizon = net::sec(90);
  return spec;
}

TEST(LoadGen, KindAndArrivalDependOnlyOnRootSeedAndGlobalIndex) {
  const auto spec = small_spec();
  net::Simulator sim_a;
  net::Simulator sim_b;
  LoadGen one(sim_a, spec, 0x1234, /*shard=*/0, /*shard_count=*/1);
  LoadGen four(sim_b, spec, 0x1234, /*shard=*/2, /*shard_count=*/4);
  for (std::size_t i = 0; i < spec.sessions; ++i) {
    EXPECT_EQ(one.kind_of(i), four.kind_of(i)) << "session " << i;
    EXPECT_EQ(one.arrival_of(i).us, four.arrival_of(i).us) << "session " << i;
    EXPECT_LT(one.arrival_of(i).us, spec.arrival_window.us);
  }
}

TEST(LoadGen, SmallMixedWorkloadFinishesEverySession) {
  const auto r = LoadGen::run_sharded(small_spec(), 2, 0x51AB);
  EXPECT_EQ(r.merged.counter("lod.loadgen.sessions"), 12u);
  EXPECT_EQ(r.merged.counter("lod.loadgen.finished"), 12u);
  EXPECT_GT(r.merged.counter("lod.loadgen.units_rendered"), 0u);
  EXPECT_GT(r.merged.counter("lod.loadgen.packets_received"), 0u);
}

TEST(LoadGen, WorkloadCompositionIsIdenticalAcrossShardCounts) {
  const auto spec = small_spec();
  const auto one = LoadGen::run_sharded(spec, 1, 0xFEED);
  const auto two = LoadGen::run_sharded(spec, 2, 0xFEED);
  for (const char* kind : {"straight", "interactive", "failover", "floor"}) {
    EXPECT_EQ(
        one.merged.counter("lod.loadgen.sessions_kind", {{"kind", kind}}),
        two.merged.counter("lod.loadgen.sessions_kind", {{"kind", kind}}))
        << kind;
  }
  EXPECT_EQ(one.merged.counter("lod.loadgen.sessions"),
            two.merged.counter("lod.loadgen.sessions"));
}

TEST(LoadGen, SameRootSeedReproducesByteIdenticalMergedSnapshot) {
  const auto spec = small_spec();
  const auto a = LoadGen::run_sharded(spec, 2, 0xD5);
  const auto b = LoadGen::run_sharded(spec, 2, 0xD5);
  EXPECT_EQ(obs::to_json(a.merged), obs::to_json(b.merged));
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

}  // namespace
}  // namespace lod::lod
