#include "lod/lod/loadgen.hpp"

#include <gtest/gtest.h>

#include "lod/obs/export.hpp"

/// The migration storm: a failover-heavy LoadGen workload with
/// `migrate_on_failover` on, so the flaky-edge kill makes every in-flight
/// failover session attempt the freeze → ship image → resume handshake at
/// (nearly) the same instant. Exercises concurrent adoption on the stable
/// edge and the cold-replica fallback under load; runs under the TSan
/// preset and a CI timeout guard.

namespace lod::lod {
namespace {

WorkloadSpec storm_spec() {
  WorkloadSpec spec;
  spec.sessions = 32;
  spec.client_hosts = 8;
  // Failover-heavy, with enough straight sessions that the stable edge is
  // warm (a cold replica refuses adoption and forces the re-describe path).
  spec.mix = {.straight = 0.3, .interactive = 0.0, .failover = 0.7,
              .floor = 0.0};
  spec.lecture_len = net::sec(8);
  spec.arrival_window = net::sec(4);
  spec.flaky_edge_up_for = net::sec(6);
  spec.horizon = net::sec(120);
  spec.migrate_on_failover = true;
  return spec;
}

TEST(MigrationStorm, ConcurrentMigrationsAllFinishAndSomeAdopt) {
  const auto r = LoadGen::run_sharded(storm_spec(), 2, 0x570F);
  EXPECT_EQ(r.merged.counter("lod.loadgen.sessions"), 32u);
  EXPECT_EQ(r.merged.counter("lod.loadgen.finished"), 32u);
  EXPECT_GT(r.merged.counter("lod.loadgen.failovers"), 0u);
  // The storm actually migrated (the stable edge was warm for at least the
  // bulk of the simultaneous failovers).
  EXPECT_GT(r.merged.counter("lod.loadgen.migrations"), 0u);
  EXPECT_LE(r.merged.counter("lod.loadgen.migrations"),
            r.merged.counter("lod.loadgen.failovers"));
}

TEST(MigrationStorm, StormIsDeterministicAcrossRuns) {
  const auto spec = storm_spec();
  const auto a = LoadGen::run_sharded(spec, 2, 0xBEE5);
  const auto b = LoadGen::run_sharded(spec, 2, 0xBEE5);
  EXPECT_EQ(obs::to_json(a.merged), obs::to_json(b.merged));
}

}  // namespace
}  // namespace lod::lod
