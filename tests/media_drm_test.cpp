#include "lod/media/drm.hpp"

#include <gtest/gtest.h>

#include "lod/media/asf.hpp"

namespace lod::media {
namespace {

using net::SimTime;
using net::sec;

TEST(Drm, KeysAreDistinct) {
  DrmSystem drm;
  const auto k1 = drm.create_key("lecture");
  const auto k2 = drm.create_key("lecture");
  EXPECT_NE(k1, k2);
  EXPECT_EQ(drm.key_count(), 2u);
}

TEST(Drm, KeystreamIsItsOwnInverse) {
  DrmSystem drm;
  const auto key = drm.create_key("k");
  auto data = asf::pattern_bytes(1000, 5);
  const auto original = data;
  drm.apply_keystream(key, 7, data);
  EXPECT_NE(data, original);
  drm.apply_keystream(key, 7, data);
  EXPECT_EQ(data, original);
}

TEST(Drm, DifferentNoncesDifferentCiphertext) {
  DrmSystem drm;
  const auto key = drm.create_key("k");
  auto d1 = asf::pattern_bytes(100, 5);
  auto d2 = d1;
  drm.apply_keystream(key, 1, d1);
  drm.apply_keystream(key, 2, d2);
  EXPECT_NE(d1, d2);
}

TEST(Drm, LicenseValidation) {
  DrmSystem drm;
  const auto key = drm.create_key("lecture");
  const auto lic = drm.issue_license(key, "alice", SimTime{sec(100).us});
  ASSERT_TRUE(lic.has_value());
  EXPECT_TRUE(drm.validate(*lic, key, "alice", SimTime{0}));
  // Wrong user.
  EXPECT_FALSE(drm.validate(*lic, key, "bob", SimTime{0}));
  // Expired.
  EXPECT_FALSE(drm.validate(*lic, key, "alice", SimTime{sec(101).us}));
  // Wrong key.
  const auto other = drm.create_key("other");
  EXPECT_FALSE(drm.validate(*lic, other, "alice", SimTime{0}));
}

TEST(Drm, LicenseForUnknownKeyRefused) {
  DrmSystem drm;
  EXPECT_FALSE(drm.issue_license("nope", "alice", SimTime::max()).has_value());
}

TEST(Drm, ForgedLicenseFailsValidation) {
  DrmSystem drm;
  const auto key = drm.create_key("lecture");
  License forged;
  forged.key_id = key;
  forged.user = "mallory";
  forged.expires = SimTime::max();
  forged.key_material = 0xdeadbeef;  // guessed, not issued
  EXPECT_FALSE(drm.validate(forged, key, "mallory", SimTime{0}));
}

TEST(Drm, DecryptWithLicense) {
  DrmSystem drm;
  const auto key = drm.create_key("lecture");
  auto data = asf::pattern_bytes(256, 9);
  const auto original = data;
  drm.apply_keystream(key, 3, data);

  const auto lic = drm.issue_license(key, "alice", SimTime::max());
  ASSERT_TRUE(lic.has_value());
  EXPECT_TRUE(drm.decrypt_with_license(*lic, "alice", SimTime{0}, 3, data));
  EXPECT_EQ(data, original);
}

TEST(Drm, DecryptWithBadLicenseLeavesDataUntouched) {
  DrmSystem drm;
  const auto key = drm.create_key("lecture");
  auto data = asf::pattern_bytes(256, 9);
  drm.apply_keystream(key, 3, data);
  const auto encrypted = data;

  const auto lic = drm.issue_license(key, "alice", SimTime{100});
  ASSERT_TRUE(lic.has_value());
  // Expired at render time: decrypt refuses and data stays encrypted.
  EXPECT_FALSE(
      drm.decrypt_with_license(*lic, "alice", SimTime{200}, 3, data));
  EXPECT_EQ(data, encrypted);
}

// --- DRM through the container (authoring optional, rendering mandatory) -------

asf::Header protected_header(const DrmSystem&, const KeyId& key) {
  asf::Header h;
  h.props.title = "Protected";
  h.props.play_duration = sec(1);
  h.props.packet_bytes = 1400;
  h.streams = {{1, MediaType::kVideo, "MPEG-4", 100'000, 320, 240, 0}};
  h.drm.is_protected = true;
  h.drm.key_id = key;
  h.drm.license_url = "rpc://license";
  return h;
}

EncodedUnit one_frame(std::uint32_t bytes) {
  EncodedUnit u;
  u.stream_id = 1;
  u.type = MediaType::kVideo;
  u.bytes = bytes;
  u.keyframe = true;
  return u;
}

TEST(DrmContainer, LicensedPlayerDecodesCleanly) {
  DrmSystem drm;
  const auto key = drm.create_key("lecture");
  const auto content = asf::pattern_bytes(3000, 77);

  asf::Muxer mux(protected_header(drm, key), &drm);
  mux.add_unit(one_frame(3000), content);
  const auto file = mux.finalize();

  asf::Demuxer d(file.header);
  const auto lic = drm.issue_license(key, "alice", SimTime::max());
  d.set_license(&drm, *lic, "alice");
  for (const auto& p : file.packets) d.feed(p);
  auto u = d.next_unit();
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->data, content);
  EXPECT_FALSE(d.undecryptable());
}

TEST(DrmContainer, UnlicensedPlayerGetsGarbage) {
  DrmSystem drm;
  const auto key = drm.create_key("lecture");
  const auto content = asf::pattern_bytes(3000, 77);

  asf::Muxer mux(protected_header(drm, key), &drm);
  mux.add_unit(one_frame(3000), content);
  const auto file = mux.finalize();

  asf::Demuxer d(file.header);  // no license at all
  for (const auto& p : file.packets) d.feed(p);
  auto u = d.next_unit();
  ASSERT_TRUE(u.has_value());
  EXPECT_NE(u->data, content);   // still encrypted
  EXPECT_TRUE(d.undecryptable());
}

TEST(DrmContainer, WrongUserLicenseGetsGarbage) {
  DrmSystem drm;
  const auto key = drm.create_key("lecture");
  const auto content = asf::pattern_bytes(2000, 3);

  asf::Muxer mux(protected_header(drm, key), &drm);
  mux.add_unit(one_frame(2000), content);
  const auto file = mux.finalize();

  asf::Demuxer d(file.header);
  const auto lic = drm.issue_license(key, "alice", SimTime::max());
  d.set_license(&drm, *lic, "bob");  // bob presents alice's license
  for (const auto& p : file.packets) d.feed(p);
  auto u = d.next_unit();
  ASSERT_TRUE(u.has_value());
  EXPECT_NE(u->data, content);
  EXPECT_TRUE(d.undecryptable());
}

TEST(DrmContainer, UnprotectedContentNeedsNoLicense) {
  DrmSystem drm;
  asf::Header h;
  h.props.packet_bytes = 1400;
  h.props.play_duration = sec(1);
  h.streams = {{1, MediaType::kVideo, "MPEG-4", 100'000, 320, 240, 0}};
  const auto content = asf::pattern_bytes(500, 1);
  asf::Muxer mux(h, &drm);  // drm present but content unprotected
  mux.add_unit(one_frame(500), content);
  const auto file = mux.finalize();

  asf::Demuxer d(file.header);
  for (const auto& p : file.packets) d.feed(p);
  auto u = d.next_unit();
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->data, content);
  EXPECT_FALSE(d.undecryptable());
}

TEST(DrmContainer, ScriptStreamNeverEncrypted) {
  DrmSystem drm;
  const auto key = drm.create_key("lecture");
  asf::Muxer mux(protected_header(drm, key), &drm);
  mux.add_script({net::msec(100), "SLIDE", "slides/1"});
  const auto file = mux.finalize();

  asf::Demuxer d(file.header);  // no license: scripts must still decode
  for (const auto& p : file.packets) d.feed(p);
  auto s = d.next_script();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->type, "SLIDE");
  EXPECT_EQ(s->param, "slides/1");
}

}  // namespace
}  // namespace lod::media
