// Causal tracing: TraceContext minting/propagation on the sink, and the
// SpanTree reconstructor (parent links, orphans, unclosed-span clamping,
// self-time decomposition, critical path).

#include <gtest/gtest.h>

#include "lod/obs/spantree.hpp"
#include "lod/obs/trace.hpp"

using namespace lod::obs;

namespace {

TraceSink make_sink(TimeUs* now) {
  TraceSink sink;
  sink.set_enabled(true);
  sink.set_clock([now] { return *now; });
  return sink;
}

}  // namespace

TEST(TraceContext, DisabledSinkMintsInvalidAndSpansNoOp) {
  TraceSink sink;  // disabled
  const TraceContext ctx = sink.make_trace();
  EXPECT_FALSE(ctx.valid());
  EXPECT_EQ(sink.begin_span(ctx, "x"), 0u);
  sink.end_span(ctx, 0, "x");
  sink.emit_in(ctx, EventType::kRenderStart);
  EXPECT_EQ(sink.size(), 0u);
  // Valid-looking context against a disabled sink: still silent.
  EXPECT_EQ(sink.begin_span(TraceContext{7, 0}, "x"), 0u);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceContext, SpanEventsCarryCausalCoordinates) {
  TimeUs now = 100;
  TraceSink sink = make_sink(&now);
  const TraceContext root = sink.make_trace();
  ASSERT_TRUE(root.valid());
  EXPECT_EQ(root.parent_span_id, 0u);
  const std::uint64_t outer = sink.begin_span(root, "outer", 9);
  ASSERT_NE(outer, 0u);
  now = 200;
  const TraceContext inner_ctx = root.child(outer);
  const std::uint64_t inner = sink.begin_span(inner_ctx, "inner");
  now = 300;
  sink.emit_in(inner_ctx.child(inner), EventType::kRenderStart, 9);
  sink.end_span(inner_ctx, inner, "inner");
  now = 400;
  sink.end_span(root, outer, "outer", 9);

  const auto evs = sink.events();
  ASSERT_EQ(evs.size(), 5u);
  EXPECT_EQ(evs[0].type, EventType::kSpanBegin);
  EXPECT_EQ(evs[0].trace, root.trace_id);
  EXPECT_EQ(evs[0].span, outer);
  EXPECT_EQ(evs[0].parent, 0u);
  EXPECT_EQ(evs[1].span, inner);
  EXPECT_EQ(evs[1].parent, outer);
  EXPECT_EQ(evs[2].type, EventType::kRenderStart);
  EXPECT_EQ(evs[2].trace, root.trace_id);
  EXPECT_EQ(evs[2].parent, inner);
  // Ids are distinct and from one counter.
  EXPECT_NE(root.trace_id, outer);
  EXPECT_NE(outer, inner);
}

TEST(TraceContext, CausalCoordinatesSurviveJsonl) {
  TimeUs now = 1;
  TraceSink sink = make_sink(&now);
  const TraceContext root = sink.make_trace();
  const std::uint64_t sp = sink.begin_span(root, "s");
  sink.end_span(root, sp, "s");
  sink.emit(EventType::kPublish);  // untraced: no trace/span fields emitted
  const auto parsed = TraceSink::parse_jsonl(sink.to_jsonl());
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].trace, root.trace_id);
  EXPECT_EQ(parsed[0].span, sp);
  EXPECT_EQ(parsed[2].trace, 0u);
  const auto trees = build_span_trees(parsed);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].nodes.size(), 1u);
}

TEST(SpanTree, BuildsParentLinksOrphansAndPoints) {
  TimeUs now = 0;
  TraceSink sink = make_sink(&now);
  const TraceContext root = sink.make_trace();
  const std::uint64_t a = sink.begin_span(root, "a");
  now = 10;
  const std::uint64_t b = sink.begin_span(root.child(a), "b");
  now = 20;
  sink.emit_in(root.child(b), EventType::kStall, 5);
  now = 30;
  sink.end_span(root.child(a), b, "b");
  now = 40;
  sink.end_span(root, a, "a");
  // An orphan: parent id never seen in the stream.
  TraceEvent orphan;
  std::vector<TraceEvent> evs = sink.events();
  orphan.t = 15;
  orphan.type = EventType::kSpanBegin;
  orphan.trace = root.trace_id;
  orphan.span = 9999;
  orphan.parent = 8888;
  orphan.detail = "lost";
  evs.push_back(orphan);

  const auto trees = build_span_trees(evs);
  ASSERT_EQ(trees.size(), 1u);
  const SpanTree& t = trees[0];
  EXPECT_EQ(t.trace_id, root.trace_id);
  ASSERT_EQ(t.nodes.size(), 3u);
  ASSERT_EQ(t.roots.size(), 1u);
  ASSERT_EQ(t.orphans.size(), 1u);
  EXPECT_EQ(t.nodes[t.orphans[0]].name, "lost");
  ASSERT_TRUE(t.root());
  EXPECT_EQ(t.root()->name, "a");
  EXPECT_EQ(t.duration(), 40);
  ASSERT_EQ(t.root()->children.size(), 1u);
  EXPECT_EQ(t.nodes[t.root()->children[0]].name, "b");
  ASSERT_EQ(t.points.size(), 1u);
  EXPECT_EQ(t.points[0].type, EventType::kStall);
}

TEST(SpanTree, UnclosedSpansClampToLastEventTime) {
  std::vector<TraceEvent> evs;
  TraceEvent e;
  e.type = EventType::kSpanBegin;
  e.trace = 1;
  e.span = 2;
  e.t = 100;
  e.detail = "open";
  evs.push_back(e);
  e.type = EventType::kRenderStart;
  e.span = 0;
  e.t = 900;
  evs.push_back(e);
  const auto trees = build_span_trees(evs);
  ASSERT_EQ(trees.size(), 1u);
  ASSERT_EQ(trees[0].nodes.size(), 1u);
  EXPECT_FALSE(trees[0].nodes[0].closed);
  EXPECT_EQ(trees[0].nodes[0].end, 900);
  EXPECT_EQ(trees[0].duration(), 800);
}

namespace {

/// begin/end pair helper for decomposition fixtures.
void span(std::vector<TraceEvent>& evs, std::uint64_t trace, std::uint64_t id,
          std::uint64_t parent, TimeUs begin, TimeUs end, std::string name) {
  TraceEvent e;
  e.trace = trace;
  e.span = id;
  e.parent = parent;
  e.detail = std::move(name);
  e.type = EventType::kSpanBegin;
  e.t = begin;
  evs.push_back(e);
  e.type = EventType::kSpanEnd;
  e.t = end;
  evs.push_back(e);
}

}  // namespace

TEST(SpanTree, DecomposeChargesDeepestSpanAndSumsExactly) {
  std::vector<TraceEvent> evs;
  span(evs, 1, 10, 0, 0, 100, "root");
  span(evs, 1, 11, 10, 10, 60, "child");      // 50us window
  span(evs, 1, 12, 11, 20, 40, "grandchild"); // 20us inside child
  span(evs, 1, 13, 10, 60, 70, "late");       // sibling after child
  const auto trees = build_span_trees(evs);
  ASSERT_EQ(trees.size(), 1u);
  const SpanTree& t = trees[0];
  const auto contrib = t.decompose();
  TimeUs total = 0;
  TimeUs by_name_root = 0, by_child = 0, by_grand = 0, by_late = 0;
  for (const auto& c : contrib) {
    total += c.self_us;
    const std::string& n = t.nodes[c.node].name;
    if (n == "root") by_name_root = c.self_us;
    if (n == "child") by_child = c.self_us;
    if (n == "grandchild") by_grand = c.self_us;
    if (n == "late") by_late = c.self_us;
  }
  EXPECT_EQ(total, t.duration());
  EXPECT_EQ(by_grand, 20);
  EXPECT_EQ(by_child, 30);   // 50 minus the grandchild's 20
  EXPECT_EQ(by_late, 10);
  EXPECT_EQ(by_name_root, 40);  // 0-10 and 70-100
  // Largest-first ordering.
  for (std::size_t i = 1; i < contrib.size(); ++i) {
    EXPECT_GE(contrib[i - 1].self_us, contrib[i].self_us);
  }
}

TEST(SpanTree, DecomposeSubtreeSumsToThatSpansDuration) {
  std::vector<TraceEvent> evs;
  span(evs, 1, 10, 0, 0, 100, "root");
  span(evs, 1, 11, 10, 20, 80, "startup");
  span(evs, 1, 12, 11, 30, 50, "fill");
  const auto trees = build_span_trees(evs);
  ASSERT_EQ(trees.size(), 1u);
  const SpanTree& t = trees[0];
  std::size_t startup = t.nodes.size();
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    if (t.nodes[i].name == "startup") startup = i;
  }
  ASSERT_LT(startup, t.nodes.size());
  const auto contrib = t.decompose(startup);
  TimeUs total = 0;
  for (const auto& c : contrib) total += c.self_us;
  EXPECT_EQ(total, 60);  // the startup span's own duration, not the root's
  ASSERT_EQ(contrib.size(), 2u);
  EXPECT_EQ(t.nodes[contrib.front().node].name, "startup");
  EXPECT_EQ(contrib.front().self_us, 40);
  EXPECT_EQ(contrib.back().self_us, 20);
}

TEST(SpanTree, CriticalPathFollowsLatestEndingChild) {
  std::vector<TraceEvent> evs;
  span(evs, 1, 10, 0, 0, 100, "root");
  span(evs, 1, 11, 10, 0, 30, "fast");
  span(evs, 1, 12, 10, 10, 90, "slow");
  span(evs, 1, 13, 12, 20, 85, "slow.inner");
  const auto trees = build_span_trees(evs);
  ASSERT_EQ(trees.size(), 1u);
  const SpanTree& t = trees[0];
  const auto path = t.critical_path();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(t.nodes[path[0]].name, "root");
  EXPECT_EQ(t.nodes[path[1]].name, "slow");
  EXPECT_EQ(t.nodes[path[2]].name, "slow.inner");
}

TEST(SpanTree, MergesEventsFromDistinctlySeededSinks) {
  // Two sinks (two hosts), one logical trace: the second sink never mints,
  // it only continues contexts handed to it — ids must not collide, which
  // is what distinct seeds guarantee.
  TimeUs now = 0;
  TraceSink player = make_sink(&now);
  TraceSink edge = make_sink(&now);
  player.set_id_seed(1ull << 32);
  edge.set_id_seed(2ull << 32);
  const TraceContext root = player.make_trace();
  const std::uint64_t session = player.begin_span(root, "player.session");
  now = 10;
  const TraceContext wire = root.child(session);  // "sent" to the edge
  const std::uint64_t fill = edge.begin_span(wire, "edge.fill");
  now = 40;
  edge.end_span(wire, fill, "edge.fill");
  now = 50;
  player.end_span(root, session, "player.session");

  const std::string merged = player.to_jsonl() + edge.to_jsonl();
  const auto trees = build_span_trees(TraceSink::parse_jsonl(merged));
  ASSERT_EQ(trees.size(), 1u);
  const SpanTree& t = trees[0];
  EXPECT_EQ(t.nodes.size(), 2u);
  EXPECT_TRUE(t.orphans.empty());
  ASSERT_TRUE(t.root());
  EXPECT_EQ(t.root()->name, "player.session");
  ASSERT_EQ(t.root()->children.size(), 1u);
  EXPECT_EQ(t.nodes[t.root()->children[0]].name, "edge.fill");
}

TEST(SpanTree, FormatRendersTimelineWithSelfTimes) {
  std::vector<TraceEvent> evs;
  span(evs, 7, 10, 0, 0, 2000, "player.session");
  span(evs, 7, 11, 10, 500, 1500, "player.startup");
  const auto trees = build_span_trees(evs);
  ASSERT_EQ(trees.size(), 1u);
  const std::string out = format_span_tree(trees[0]);
  EXPECT_NE(out.find("trace 7"), std::string::npos);
  EXPECT_NE(out.find("player.session"), std::string::npos);
  EXPECT_NE(out.find("player.startup"), std::string::npos);
  EXPECT_NE(out.find("self 1.000ms"), std::string::npos);  // 2000-1000 us
}
