#include "lod/edge/edge_node.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "lod/contenttree/content_tree.hpp"
#include "lod/edge/replica_selector.hpp"
#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/health.hpp"
#include "lod/obs/hub.hpp"
#include "lod/obs/spantree.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"

namespace lod::edge {
namespace {

using net::msec;
using net::sec;
using net::SimDuration;
using net::SimTime;

// --- SegmentCache ------------------------------------------------------------

TEST(SegmentCache, EvictsLeastRecentlyUsedFirst) {
  SegmentCache c(300);
  c.put({"f", 0}, {}, 100);
  c.put({"f", 1}, {}, 100);
  c.put({"f", 2}, {}, 100);
  // Freshen 0: MRU order becomes 0, 2, 1.
  EXPECT_NE(c.get({"f", 0}), nullptr);
  const auto mru = c.keys_mru_first();
  ASSERT_EQ(mru.size(), 3u);
  EXPECT_EQ(mru[0], (SegmentKey{"f", 0}));
  EXPECT_EQ(mru[1], (SegmentKey{"f", 2}));
  EXPECT_EQ(mru[2], (SegmentKey{"f", 1}));

  // A fourth insert must evict exactly the LRU entry (segment 1).
  c.put({"f", 3}, {}, 100);
  EXPECT_FALSE(c.contains({"f", 1}));
  EXPECT_TRUE(c.contains({"f", 0}));
  EXPECT_TRUE(c.contains({"f", 2}));
  EXPECT_TRUE(c.contains({"f", 3}));
  EXPECT_EQ(c.entries(), 3u);
  EXPECT_EQ(c.bytes_used(), 300u);
  EXPECT_EQ(c.evictions(), 1u);
}

TEST(SegmentCache, CountsServePathLookupsOnly) {
  SegmentCache c(1000);
  c.put({"f", 0}, {}, 10);
  EXPECT_NE(c.get({"f", 0}), nullptr);
  EXPECT_EQ(c.get({"f", 7}), nullptr);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
  // Prefetch probes are silent: no stats, no LRU freshening.
  c.put({"f", 1}, {}, 10);
  EXPECT_TRUE(c.contains({"f", 0}));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.keys_mru_first().front(), (SegmentKey{"f", 1}));
}

TEST(SegmentCache, RejectsSegmentLargerThanBudget) {
  SegmentCache c(100);
  c.put({"f", 0}, {}, 40);
  c.put({"f", 1}, {}, 200);  // would evict everything and still not fit
  EXPECT_FALSE(c.contains({"f", 1}));
  EXPECT_TRUE(c.contains({"f", 0}));
  EXPECT_EQ(c.bytes_used(), 40u);
}

TEST(SegmentCache, EraseFileDropsOnlyThatFile) {
  SegmentCache c(1000);
  c.put({"a", 0}, {}, 10);
  c.put({"a", 1}, {}, 10);
  c.put({"b", 0}, {}, 10);
  c.erase_file("a");
  EXPECT_FALSE(c.contains({"a", 0}));
  EXPECT_FALSE(c.contains({"a", 1}));
  EXPECT_TRUE(c.contains({"b", 0}));
  EXPECT_EQ(c.bytes_used(), 10u);
}

TEST(SegmentCache, OverwriteChargesOnlyTheNewBytes) {
  SegmentCache c(1000);
  c.put({"f", 0}, {}, 100);
  c.put({"f", 1}, {}, 50);
  // Replace segment 0 with a differently-sized payload: the old entry's
  // bytes must be released, not accumulated.
  c.put({"f", 0}, {}, 300);
  EXPECT_EQ(c.bytes_used(), 350u);
  EXPECT_EQ(c.entries(), 2u);
  c.put({"f", 0}, {}, 10);  // shrink again
  EXPECT_EQ(c.bytes_used(), 60u);
  EXPECT_EQ(c.entries(), 2u);
}

TEST(SegmentCache, GaugesStayExactUnderOverwriteChurn) {
  obs::MetricsRegistry reg;
  SegmentCache c(1000, &reg);
  const auto bytes_gauge = [&] { return reg.snapshot().gauge("lod.edge.cache.bytes"); };
  const auto entries_gauge = [&] {
    return reg.snapshot().gauge("lod.edge.cache.entries");
  };
  c.put({"f", 0}, {}, 100);
  c.put({"f", 1}, {}, 200);
  EXPECT_EQ(bytes_gauge(), 300);
  EXPECT_EQ(entries_gauge(), 2);
  c.put({"f", 0}, {}, 400);  // overwrite, grow
  EXPECT_EQ(bytes_gauge(), 600);
  EXPECT_EQ(entries_gauge(), 2);
  // Overwrite with a payload larger than the whole budget: the entry is
  // removed and NOT re-inserted — the gauges must reflect the removal
  // rather than keep reporting the replaced entry's bytes.
  c.put({"f", 0}, {}, 5000);
  EXPECT_FALSE(c.contains({"f", 0}));
  EXPECT_EQ(c.bytes_used(), 200u);
  EXPECT_EQ(bytes_gauge(), 200);
  EXPECT_EQ(entries_gauge(), 1);
}

// --- PrefetchController ------------------------------------------------------

TEST(Prefetch, LinearWarmSetStartsAtAnchorSegment) {
  PrefetchController pc(100, 10);  // segments 0..9
  pc.anchor_to(35);
  EXPECT_EQ(pc.warm_set(3), (std::vector<std::uint32_t>{3, 4, 5}));
}

TEST(Prefetch, ReanchorAfterSeekFollowsTheJump) {
  PrefetchController pc(100, 10);
  pc.anchor_to(5);
  EXPECT_EQ(pc.warm_set(2), (std::vector<std::uint32_t>{0, 1}));
  pc.anchor_to(80);  // the seek
  EXPECT_EQ(pc.warm_set(3), (std::vector<std::uint32_t>{8, 9}));
}

TEST(Prefetch, ExplicitOrderWarmsAcrossTheAbstractionJump) {
  // Level-q playout: packets [0,30) then a jump to [60,100).
  PrefetchController pc(100, 10, {{0, 30}, {60, 100}});
  pc.anchor_to(25);
  // The next segments the PLAYOUT touches: 2, then 6 and 7 across the jump —
  // not the 3, 4, 5 a next-in-time warmer would waste fetches on.
  EXPECT_EQ(pc.warm_set(3), (std::vector<std::uint32_t>{2, 6, 7}));
}

TEST(Prefetch, AnchorInsideSkippedWindowSnapsForward) {
  PrefetchController pc(100, 10, {{0, 30}, {60, 100}});
  pc.anchor_to(45);  // a packet the level playout never visits
  EXPECT_EQ(pc.warm_set(2), (std::vector<std::uint32_t>{6, 7}));
}

TEST(Prefetch, PresentationOrderFromContentTree) {
  using contenttree::ContentTree;
  // Fig. 3's lecture: S0(20) level 0; S1(40), S3(20) level 1; S2(60) level 2
  // and S4(40) under S1.
  ContentTree t;
  t.add({"S0", sec(20), ""}, 0);
  const auto s1 = t.add({"S1", sec(40), ""}, 1);
  t.add({"S2", sec(60), ""}, 2);
  t.attach_child(s1, {"S4", sec(40), ""});
  t.add({"S3", sec(20), ""}, 1);

  // 1 packet per second of the full document-order recording.
  const auto pof = [](SimDuration d) {
    return static_cast<std::uint32_t>(d.us / 1'000'000);
  };
  // The full level collapses to one linear range over the whole recording.
  const auto full = presentation_order(t, t.highest_level(), pof);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full.front().first, 0u);
  EXPECT_EQ(full.front().last, 180u);  // 20+40+60+40+20 seconds

  // A shallower level plays every node of levels 0..q: its windows cover
  // exactly presentation_time(q) seconds, visited in playout order with
  // gaps where deeper-level detail is skipped.
  for (int q = 0; q < t.highest_level(); ++q) {
    const auto order = presentation_order(t, q, pof);
    ASSERT_FALSE(order.empty());
    std::uint32_t covered = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_LT(order[i].first, order[i].last);
      if (i > 0) EXPECT_GT(order[i].first, order[i - 1].last);
      covered += order[i].last - order[i].first;
    }
    EXPECT_EQ(covered,
              static_cast<std::uint32_t>(t.presentation_time(q).seconds()));
  }
}

// --- ReplicaSelector ---------------------------------------------------------

struct SelectorFixture : ::testing::Test {
  SelectorFixture() : network(sim, 7) {
    origin = network.add_host("origin");
    edge = network.add_host("edge");
    client = network.add_host("client");
    net::LinkConfig wan;
    wan.bandwidth_bps = 20'000'000;
    wan.latency = msec(40);
    network.add_link(origin, edge, wan);
    net::LinkConfig lan;
    lan.bandwidth_bps = 10'000'000;
    lan.latency = msec(5);
    network.add_link(edge, client, lan);
  }

  net::Simulator sim;
  net::Network network;
  net::HostId origin{}, edge{}, client{};
};

TEST_F(SelectorFixture, SeedsFromPathLatencyAndPicksNearestSite) {
  ReplicaSelector sel(network, client, origin, {edge});
  EXPECT_EQ(sel.estimate(edge), msec(5));
  EXPECT_EQ(sel.estimate(origin), msec(45));  // LAN + WAN through the edge
  EXPECT_EQ(sel.pick_site(), edge);
}

TEST_F(SelectorFixture, ObservationsShiftTheEwmaAndThePick) {
  ReplicaSelector sel(network, client, origin, {edge}, 0.5);
  // The edge starts degrading: measured delays way above the origin's.
  sel.observe(edge, msec(400));
  EXPECT_GT(sel.estimate(edge).us, msec(45).us);
  EXPECT_EQ(sel.pick_site(), origin);
  // EWMA, not last-sample: one good reading pulls it halfway back.
  sel.observe(edge, msec(5));
  EXPECT_LT(sel.estimate(edge).us, msec(400).us);
}

TEST_F(SelectorFixture, FailoverMarksDownAndOriginIsAlwaysEligible) {
  ReplicaSelector sel(network, client, origin, {edge});
  EXPECT_EQ(sel.failover_from(edge), origin);
  EXPECT_TRUE(sel.is_down(edge));
  EXPECT_EQ(sel.pick_site(), origin);
  EXPECT_EQ(sel.failovers(), 1u);
  // Failing over from the origin itself still answers: the origin never
  // leaves the candidate set.
  EXPECT_EQ(sel.failover_from(origin), origin);
  sel.revive(edge);
  EXPECT_EQ(sel.pick_site(), edge);
}

TEST_F(SelectorFixture, UnreachableEdgeIsBornDown) {
  const net::HostId island = network.add_host("island");  // no links
  ReplicaSelector sel(network, client, origin, {island, edge});
  EXPECT_TRUE(sel.is_down(island));
  EXPECT_EQ(sel.pick_site(), edge);
}

// --- EdgeNode end to end -----------------------------------------------------

/// Origin + gateway on a WAN; edge + client on a LAN behind it. The client's
/// path to the origin routes THROUGH the edge host, so origin-served traffic
/// pays LAN + WAN while edge-served traffic is LAN-only.
struct EdgeFixture : ::testing::Test {
  EdgeFixture() : network(sim, 4321) {
    origin_host = network.add_host("origin");
    edge_host = network.add_host("edge");
    client_host = network.add_host("client");
    net::LinkConfig wan;
    wan.bandwidth_bps = 20'000'000;
    wan.latency = msec(60);
    network.add_link(origin_host, edge_host, wan);
    net::LinkConfig lan;
    lan.bandwidth_bps = 10'000'000;
    lan.latency = msec(2);
    network.add_link(edge_host, client_host, lan);

    server = std::make_unique<streaming::StreamingServer>(network, origin_host);
    gateway = std::make_unique<OriginGateway>(network, *server);
    EdgeConfig ec;
    ec.origin = origin_host;
    edge = std::make_unique<EdgeNode>(network, edge_host, ec);
  }

  streaming::EncodeResult publish(const std::string& name, SimDuration len) {
    streaming::EncodeJob job;
    job.profile = *media::find_profile("Video 250k DSL/cable");
    job.preroll = msec(2000);
    media::LectureVideoSource v(len, job.profile.fps, job.profile.width,
                                job.profile.height, 7);
    media::LectureAudioSource a(len, job.profile.audio_sample_rate());
    auto enc = streaming::encode_lecture(job, v, a, {});
    server->publish(name, enc.file);
    return enc;
  }

  streaming::PlayerConfig player_cfg(net::Port base) {
    streaming::PlayerConfig cfg;
    cfg.model = streaming::SyncModel::kEtpn;
    cfg.ctl_port = base;
    cfg.data_port = static_cast<net::Port>(base + 1);
    cfg.web_server = origin_host;
    return cfg;
  }

  net::Simulator sim;
  net::Network network;
  net::HostId origin_host{}, edge_host{}, client_host{};
  std::unique_ptr<streaming::StreamingServer> server;
  std::unique_ptr<OriginGateway> gateway;
  std::unique_ptr<EdgeNode> edge;
};

TEST_F(EdgeFixture, ServesSequentialPlayoutMostlyFromCache) {
  publish("lec", sec(30));
  streaming::Player p(network, client_host, player_cfg(5000));
  p.open_and_play(edge_host, "lec");
  sim.run_until(SimTime{sec(60).us});

  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.units_lost(), 0u);
  EXPECT_GT(p.packets_received(), 0u);
  // With prefetch walking ahead of the playhead, only the very first
  // segment(s) can demand-miss; steady state serves from cache.
  EXPECT_GT(edge->cache().hit_rate(), 0.9);
  EXPECT_GT(edge->prefetch_fetches(), 0u);
  EXPECT_LE(edge->demand_fetches(), 2u);

  // As at the origin, the session lives until the client's STOP.
  EXPECT_EQ(edge->active_sessions(), 1u);
  p.stop();
  sim.run_until(sim.now() + sec(1));
  EXPECT_EQ(edge->active_sessions(), 0u);
}

TEST_F(EdgeFixture, WarmEdgeStartsFasterThanOrigin) {
  publish("lec", sec(20));

  // Warm the edge with a throwaway session.
  {
    streaming::Player warm(network, client_host, player_cfg(5000));
    warm.open_and_play(edge_host, "lec");
    sim.run_until(sim.now() + sec(40));
    ASSERT_TRUE(warm.finished());
  }

  streaming::Player via_edge(network, client_host, player_cfg(5100));
  via_edge.open_and_play(edge_host, "lec");
  sim.run_until(sim.now() + sec(40));
  ASSERT_TRUE(via_edge.finished());

  streaming::Player via_origin(network, client_host, player_cfg(5200));
  via_origin.open_and_play(origin_host, "lec");
  sim.run_until(sim.now() + sec(40));
  ASSERT_TRUE(via_origin.finished());

  // Same client, same links, same content: the warm edge's preroll beats the
  // origin's because every round trip is LAN-only.
  EXPECT_GT(via_edge.startup_delay().us, 0);
  EXPECT_LT(via_edge.startup_delay().us, via_origin.startup_delay().us);
}

TEST_F(EdgeFixture, SeekReanchorsPrefetchAndPlayoutContinues) {
  publish("lec", sec(60));
  streaming::Player p(network, client_host, player_cfg(5000));
  p.open_and_play(edge_host, "lec");
  sim.run_until(SimTime{sec(6).us});
  ASSERT_TRUE(p.playing());

  p.seek(sec(40));
  sim.run_until(SimTime{sec(10).us});
  // Prefetch followed the jump: the segments at the seek target are resident
  // even though sequential warming had only reached the file's start.
  const auto& cache = edge->cache();
  bool warm_at_target = false;
  for (const auto& key : cache.keys_mru_first()) {
    // 40 s into a 60 s file is past 60% of the packets.
    if (key.segment >= 2 * cache.entries() / 3) warm_at_target = true;
  }
  EXPECT_TRUE(warm_at_target);

  sim.run_until(SimTime{sec(80).us});
  EXPECT_TRUE(p.finished());
  // The playout after the seek rendered the jumped-to region.
  ASSERT_FALSE(p.rendered().empty());
  EXPECT_GE(p.rendered().back().pts.us, sec(55).us);
}

TEST_F(EdgeFixture, PlayerFailsOverToOriginWhenEdgeDies) {
  publish("lec", sec(30));
  ReplicaSelector sel(network, client_host, origin_host, {edge_host});

  auto cfg = player_cfg(5000);
  cfg.failover_timeout = msec(1500);
  streaming::Player p(network, client_host, cfg);
  p.open_and_play_via(sel, "lec");
  sim.run_until(SimTime{sec(5).us});
  ASSERT_TRUE(p.playing());
  ASSERT_EQ(p.current_server(), edge_host);

  edge.reset();  // kill the edge mid-session
  sim.run_until(SimTime{sec(60).us});

  EXPECT_GE(p.failovers(), 1u);
  EXPECT_EQ(p.current_server(), origin_host);
  EXPECT_TRUE(sel.is_down(edge_host));
  EXPECT_TRUE(p.finished());
}

TEST_F(EdgeFixture, FailoverSessionYieldsOneSpanTreeWithoutOrphans) {
  // The tentpole acceptance scenario: edge-relayed playout with a forced
  // mid-session failover must reconstruct into a single span tree per
  // session — every hop's spans (player, edge relay, origin gateway) linked
  // under one root, no orphans — whose startup subtree decomposes into
  // per-hop self-times that sum to the measured startup latency.
  sim.obs().trace().set_enabled(true);
  publish("lec", sec(30));
  ReplicaSelector sel(network, client_host, origin_host, {edge_host});

  auto cfg = player_cfg(5000);
  cfg.failover_timeout = msec(1500);
  streaming::Player p(network, client_host, cfg);
  p.open_and_play_via(sel, "lec");
  sim.run_until(SimTime{sec(5).us});
  ASSERT_TRUE(p.playing());
  ASSERT_EQ(p.current_server(), edge_host);

  edge.reset();  // kill the edge mid-session
  sim.run_until(SimTime{sec(60).us});
  ASSERT_GE(p.failovers(), 1u);
  ASSERT_TRUE(p.finished());

  const auto trees =
      obs::build_span_trees(sim.obs().trace().events());
  ASSERT_EQ(trees.size(), 1u);
  const obs::SpanTree& t = trees[0];
  EXPECT_TRUE(t.orphans.empty());
  ASSERT_EQ(t.roots.size(), 1u);
  ASSERT_TRUE(t.root());
  EXPECT_EQ(t.root()->name, "player.session");
  EXPECT_TRUE(t.root()->closed);

  // The root covers the whole player timeline: kPlayIssued through
  // kRenderStart (and the failover machinery) land inside its window.
  std::optional<obs::TimeUs> play_issued, render_start;
  for (const auto& ev : t.points) {
    if (ev.type == obs::EventType::kPlayIssued && !play_issued) {
      play_issued = ev.t;
    }
    if (ev.type == obs::EventType::kRenderStart && !render_start) {
      render_start = ev.t;
    }
  }
  ASSERT_TRUE(play_issued.has_value());
  ASSERT_TRUE(render_start.has_value());
  EXPECT_GE(*play_issued, t.root()->begin);
  EXPECT_LE(*render_start, t.root()->end);

  // Every hop contributed spans to the one tree.
  std::size_t startup_idx = t.nodes.size();
  bool saw_edge = false, saw_origin = false, saw_failover = false;
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    const std::string& n = t.nodes[i].name;
    if (n == "player.startup" && startup_idx == t.nodes.size()) {
      startup_idx = i;
    }
    if (n.rfind("edge.", 0) == 0) saw_edge = true;
    if (n.rfind("origin.", 0) == 0) saw_origin = true;
    if (n == "player.failover") saw_failover = true;
  }
  EXPECT_TRUE(saw_edge);
  EXPECT_TRUE(saw_origin);
  EXPECT_TRUE(saw_failover);

  // Critical-path decomposition of the startup subtree: the per-span
  // self-times must sum exactly to the measured startup latency.
  ASSERT_LT(startup_idx, t.nodes.size());
  const obs::SpanNode& startup = t.nodes[startup_idx];
  EXPECT_TRUE(startup.closed);
  EXPECT_EQ(startup.end - startup.begin, p.startup_delay().us);
  obs::TimeUs attributed = 0;
  for (const auto& c : t.decompose(startup_idx)) attributed += c.self_us;
  EXPECT_EQ(attributed, p.startup_delay().us);
  EXPECT_EQ(*render_start - *play_issued, p.startup_delay().us);
}

TEST_F(EdgeFixture, HealthMonitorDemotesThrashingEdgeInSelector) {
  // Satellite of the SLO monitor: induce cache thrash (budget far below one
  // segment) so the edge's hit rate collapses; the monitor flags the site
  // and the selector must stop picking it while the origin stays eligible.
  publish("lec", sec(30));
  EdgeConfig thrash;
  thrash.origin = origin_host;
  thrash.cache_budget_bytes = 1;  // every insert evicts: guaranteed misses
  thrash.prefetch_depth = 0;
  edge.reset();  // free the ports before rebinding with the thrash config
  edge = std::make_unique<EdgeNode>(network, edge_host, thrash);

  obs::HealthMonitor health(sim.obs());
  health.add_rule(obs::slo_edge_cache_hit_rate(std::to_string(edge_host),
                                               /*min_rate=*/0.5,
                                               /*min_lookups=*/10));
  ReplicaSelector sel(network, client_host, origin_host, {edge_host});
  sel.set_health(&health);
  ASSERT_EQ(sel.pick_site(), edge_host);  // healthy: LAN edge wins

  streaming::Player p(network, client_host, player_cfg(5000));
  p.open_and_play(edge_host, "lec");
  sim.run_until(SimTime{sec(20).us});

  ASSERT_EQ(health.evaluate(), 1u);
  EXPECT_FALSE(health.site_healthy(std::to_string(edge_host)));
  EXPECT_TRUE(health.site_healthy(std::to_string(origin_host)));
  // Demoted — without being marked down, the edge no longer wins a pick.
  EXPECT_FALSE(sel.is_down(edge_host));
  EXPECT_EQ(sel.pick_site(), origin_host);
  EXPECT_EQ(sim.obs()
                .metrics()
                .snapshot()
                .counter("lod.health.violations",
                         {{"rule", "edge_cache_hit_rate"}}),
            1u);
}

TEST_F(EdgeFixture, EdgeAnswersDescribeAndTimesyncLikeTheOrigin) {
  publish("lec", sec(10));
  streaming::Player p(network, client_host, player_cfg(5000));
  p.open_and_play(edge_host, "lec");
  sim.run_until(SimTime{sec(30).us});
  ASSERT_TRUE(p.finished());
  // ETPN ran DESCRIBE, TIMESYNC and PLAY against the edge; pause/seek paths
  // are covered above. The origin never saw a player session.
  EXPECT_EQ(server->active_sessions(), 0u);
  EXPECT_EQ(server->metrics().sessions_opened(), 0u);
  EXPECT_GT(gateway->segment_requests(), 0u);
  EXPECT_GT(gateway->meta_requests(), 0u);
}

// --- WMPS integration --------------------------------------------------------

TEST(WmpsEdge, CandidateSitesListEdgesFirstOriginLast) {
  namespace app = ::lod::lod;
  net::Simulator sim;
  net::Network network(sim, 3);
  const auto origin = network.add_host("origin");
  const auto e1 = network.add_host("edge1");
  const auto e2 = network.add_host("edge2");
  app::WmpsNode wmps(network, origin);
  wmps.register_edge(e1);
  wmps.register_edge(e2);
  wmps.register_edge(e1);  // re-registering is a no-op
  EXPECT_EQ(wmps.edge_sites(), (std::vector<net::HostId>{e1, e2}));
  // Mirrors ReplicaSelector's ordering contract: edges first, origin last.
  EXPECT_EQ(wmps.candidate_sites(), (std::vector<net::HostId>{e1, e2, origin}));
}

}  // namespace
}  // namespace lod::edge
