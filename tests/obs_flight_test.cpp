// Unit tests for the flight recorder (lock-free journal, wraparound,
// concurrent writer/reader behavior, JSONL codec, dump-on-trigger, the
// span mirror) and for the RollupStore / Snapshot::since window edge cases.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lod/obs/debug.hpp"
#include "lod/obs/flight.hpp"
#include "lod/obs/hub.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/obs/rollup.hpp"

using namespace lod::obs;

// --- FlightType codec -------------------------------------------------------

TEST(FlightType, NamesRoundTripEveryValue) {
  for (int i = 0; i <= static_cast<int>(FlightType::kDump); ++i) {
    const auto t = static_cast<FlightType>(i);
    const auto back = flight_type_from_string(to_string(t));
    ASSERT_TRUE(back.has_value()) << to_string(t);
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(flight_type_from_string("no_such_event").has_value());
}

// --- recording basics -------------------------------------------------------

TEST(FlightRecorder, RecordsAndReadsBack) {
  FlightRecorder rec;
  rec.record_at(100, FlightType::kSyncVerdict, 7, 42, 2);
  rec.record_at(200, FlightType::kFrameDrop, 3, 9,
                static_cast<std::uint64_t>(DropCause::kQueue));
  const auto evs = rec.events(FlightRecorder::kLaneControl);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].t, 100);
  EXPECT_EQ(evs[0].type, FlightType::kSyncVerdict);
  EXPECT_EQ(evs[0].actor, 7u);
  EXPECT_EQ(evs[0].a, 42u);
  EXPECT_EQ(evs[0].b, 2u);
  EXPECT_EQ(evs[1].type, FlightType::kFrameDrop);
  EXPECT_EQ(rec.total_recorded(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder rec;
  rec.set_enabled(false);
  rec.record_at(1, FlightType::kSimEvent);
  EXPECT_EQ(rec.total_recorded(), 0u);
  rec.set_enabled(true);
  rec.record_at(2, FlightType::kSimEvent);
  EXPECT_EQ(rec.total_recorded(), 1u);
}

TEST(FlightRecorder, LanesAreIsolated) {
  FlightRecorder rec;
  rec.record_at(10, FlightType::kSloViolation, 0, 0, 0,
                FlightRecorder::kLaneControl);
  for (int i = 0; i < 100; ++i) {
    rec.record_at(20 + i, FlightType::kSimEvent, 0, i, 0,
                  FlightRecorder::kLaneDispatch);
  }
  EXPECT_EQ(rec.events(FlightRecorder::kLaneControl).size(), 1u);
  EXPECT_EQ(rec.events(FlightRecorder::kLaneDispatch).size(), 100u);
  // The merged view is one timeline sorted by t.
  const auto all = rec.events();
  ASSERT_EQ(all.size(), 101u);
  EXPECT_EQ(all.front().type, FlightType::kSloViolation);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].t, all[i].t);
  }
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDropped) {
  FlightRecorder::Config cfg;
  cfg.capacity = 8;  // already a power of two
  FlightRecorder rec(cfg);
  ASSERT_EQ(rec.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    rec.record_at(i, FlightType::kSimEvent, 0, static_cast<std::uint64_t>(i));
  }
  const auto evs = rec.events(FlightRecorder::kLaneControl);
  // A wrapped ring retains capacity-1 events: the oldest slot is never
  // claimed because an unpublished write at head could be overwriting it.
  ASSERT_EQ(evs.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(evs[i].a, static_cast<std::uint64_t>(13 + i));
  }
  EXPECT_EQ(rec.total_recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 13u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder::Config cfg;
  cfg.capacity = 5;
  cfg.lanes = 3;
  FlightRecorder rec(cfg);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.lanes(), 4u);
  // Out-of-range lane arguments wrap instead of overflowing.
  rec.record_at(1, FlightType::kSimEvent, 0, 0, 0, /*lane=*/7);
  EXPECT_EQ(rec.events(3).size(), 1u);
}

// Concurrent writers (one per lane, the single-writer contract) against a
// reader snapshotting mid-stream. Run under TSan in CI: the slot words are
// relaxed atomics and the overwrite guard discards torn candidates, so the
// race-free property is checkable, not just asserted.
TEST(FlightRecorder, ConcurrentWritersAndReaderStaySane) {
  FlightRecorder::Config cfg;
  cfg.capacity = 64;
  cfg.lanes = 2;
  FlightRecorder rec(cfg);
  constexpr int kPerLane = 20'000;
  std::atomic<bool> go{false};

  auto writer = [&](std::size_t lane) {
    while (!go.load()) {
    }
    for (int i = 0; i < kPerLane; ++i) {
      rec.record_at(i, FlightType::kSimEvent, static_cast<std::uint32_t>(lane),
                    static_cast<std::uint64_t>(i), 7, lane);
    }
  };
  std::thread w0(writer, FlightRecorder::kLaneControl);
  std::thread w1(writer, FlightRecorder::kLaneDispatch);
  std::thread reader([&] {
    while (!go.load()) {
    }
    for (int pass = 0; pass < 200; ++pass) {
      for (const FlightEvent& e : rec.events()) {
        // Every surviving event must be fully formed, never torn garbage.
        ASSERT_EQ(e.type, FlightType::kSimEvent);
        ASSERT_EQ(e.b, 7u);
        ASSERT_LT(e.a, static_cast<std::uint64_t>(kPerLane));
      }
    }
  });
  go.store(true);
  w0.join();
  w1.join();
  reader.join();
  EXPECT_EQ(rec.total_recorded(), 2u * kPerLane);
  // After the writers stop, a clean read sees the full capacity-1 window.
  EXPECT_EQ(rec.events(FlightRecorder::kLaneControl).size(), 63u);
}

// --- JSONL codec ------------------------------------------------------------

TEST(FlightRecorder, JsonlRoundTrips) {
  FlightRecorder rec;
  rec.record_at(5, FlightType::kSyncVerdict, 1, 99, 2);
  rec.record_at(6, FlightType::kResync, 1, 99, 3,
                FlightRecorder::kLaneControl);
  const std::string text = rec.to_jsonl();
  const auto parsed = FlightRecorder::parse_jsonl(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].t, 5);
  EXPECT_EQ(parsed[0].type, FlightType::kSyncVerdict);
  EXPECT_EQ(parsed[0].actor, 1u);
  EXPECT_EQ(parsed[0].a, 99u);
  EXPECT_EQ(parsed[0].b, 2u);
  EXPECT_EQ(parsed[1].type, FlightType::kResync);
}

TEST(FlightRecorder, ParseSkipsMetaAndGarbageLines) {
  const std::string text =
      "{\"flight_dump\":{\"reason\":\"slo.x\",\"t\":9}}\n"
      "not json at all\n"
      "{\"t\":4,\"type\":\"span_begin\"}\n"  // trace-sink schema: no "ft"
      "{\"t\":4,\"ft\":\"frame_drop\",\"lane\":0,\"actor\":2,\"a\":1,\"b\":4}\n"
      "\n";
  const auto parsed = FlightRecorder::parse_jsonl(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].type, FlightType::kFrameDrop);
  EXPECT_EQ(parsed[0].b, 4u);
}

// --- dump-on-trigger --------------------------------------------------------

TEST(FlightRecorder, TriggerWithoutSinkOnlyCounts) {
  FlightRecorder rec;
  rec.record_at(1, FlightType::kSloViolation);
  EXPECT_EQ(rec.trigger_dump("slo.startup_p95"), 1u);
  EXPECT_EQ(rec.dumps(), 1u);
  EXPECT_TRUE(rec.last_dump().reason.empty());  // nothing rendered
  // The trigger itself left a kDump marker in the journal.
  const auto evs = rec.events(FlightRecorder::kLaneControl);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[1].type, FlightType::kDump);
  EXPECT_EQ(evs[1].a, 1u);
}

TEST(FlightRecorder, TriggerWithSinkDeliversRenderedJournal) {
  FlightRecorder rec;
  rec.set_clock([] { return TimeUs{777}; });
  std::vector<FlightDump> got;
  rec.on_dump([&](const FlightDump& d) { got.push_back(d); });
  rec.record_at(10, FlightType::kSyncVerdict, 3, 5, 2);
  rec.trigger_dump("sync.persistent_desync");

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].reason, "sync.persistent_desync");
  EXPECT_EQ(got[0].t, 777);
  EXPECT_EQ(got[0].events, 2u);  // the verdict + the kDump marker
  // The JSONL leads with the meta line and parses back to the journal.
  EXPECT_EQ(got[0].jsonl.find("{\"flight_dump\":{\"reason\":"), 0u);
  const auto parsed = FlightRecorder::parse_jsonl(got[0].jsonl);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].type, FlightType::kSyncVerdict);
  EXPECT_EQ(parsed[1].type, FlightType::kDump);
  EXPECT_EQ(rec.last_dump().reason, "sync.persistent_desync");
}

// --- hub wiring -------------------------------------------------------------

TEST(FlightRecorder, HubMirrorsSpansIntoJournal) {
  Hub hub;
  hub.set_clock([] { return TimeUs{123}; });
  hub.trace().set_enabled(true);
  const TraceContext ctx = hub.trace().make_trace();
  const auto span = hub.trace().begin_span(ctx, "sync.resync", 4);
  hub.trace().end_span(ctx, span, "sync.resync", 4);

  const auto evs = hub.flight().events(FlightRecorder::kLaneControl);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].type, FlightType::kSpanBegin);
  EXPECT_EQ(evs[0].t, 123);
  EXPECT_EQ(evs[0].actor, 4u);
  EXPECT_EQ(evs[0].a, span);          // span id
  EXPECT_EQ(evs[0].b, ctx.trace_id);  // trace id
  EXPECT_EQ(evs[1].type, FlightType::kSpanEnd);
}

// --- RollupStore ------------------------------------------------------------

TEST(RollupStore, PrimesThenAppendsWindows) {
  MetricsRegistry reg;
  Counter c = reg.counter("x.count");
  RollupStore::Config cfg;
  cfg.windows = 4;
  RollupStore store(cfg);

  store.roll(reg.snapshot(), 1'000'000);  // prime only
  EXPECT_TRUE(store.primed());
  EXPECT_EQ(store.size(), 0u);

  c.inc(10);
  store.roll(reg.snapshot(), 2'000'000);
  c.inc(30);
  store.roll(reg.snapshot(), 3'000'000);
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.windows()[0].delta.total("x.count"), 10u);
  EXPECT_EQ(store.windows()[1].delta.total("x.count"), 30u);

  const auto all = store.rate("x.count");
  EXPECT_EQ(all.delta, 40u);
  EXPECT_EQ(all.over_us, 2'000'000);
  EXPECT_DOUBLE_EQ(all.per_second(), 20.0);
  const auto last = store.rate("x.count", 1);
  EXPECT_EQ(last.delta, 30u);
}

TEST(RollupStore, EmptyWindowDiffIsDropped) {
  MetricsRegistry reg;
  Counter c = reg.counter("x.count");
  RollupStore store;
  store.roll(reg.snapshot(), 500);
  c.inc();
  store.roll(reg.snapshot(), 500);  // time did not advance: no window
  EXPECT_EQ(store.size(), 0u);
  // ...but the baseline moved, so the next window counts only new work.
  c.inc(5);
  store.roll(reg.snapshot(), 1500);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.windows()[0].delta.total("x.count"), 5u);
  EXPECT_EQ(store.rate("nonexistent").delta, 0u);
}

TEST(RollupStore, WindowRingIsBounded) {
  MetricsRegistry reg;
  Counter c = reg.counter("x.count");
  RollupStore::Config cfg;
  cfg.windows = 3;
  RollupStore store(cfg);
  store.roll(reg.snapshot(), 0);
  for (int i = 1; i <= 10; ++i) {
    c.inc();
    store.roll(reg.snapshot(), i * 1000);
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.oldest_start(), 7000);
  EXPECT_EQ(store.newest_end(), 10'000);
}

TEST(RollupStore, CounterResetAfterRetireKeepsPostResetTotal) {
  MetricsRegistry reg;
  Counter c = reg.counter("session.bytes", {{"session", "1"}});
  RollupStore store;
  c.inc(100);
  store.roll(reg.snapshot(), 1000);
  // The session ends: its series retires, then a NEW session re-registers
  // the same identity from zero. The next window must not underflow — the
  // reset rule keeps the post-reset total (7) whole.
  reg.retire("session.bytes", {{"session", "1"}});
  Counter c2 = reg.counter("session.bytes", {{"session", "1"}});
  c2.inc(7);
  store.roll(reg.snapshot(), 2000);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.windows()[0].delta.total("session.bytes"), 7u);
  EXPECT_EQ(store.rate("session.bytes").delta, 7u);
}

TEST(RollupStore, HistogramResetAfterRetireKeepsCurrentTallies) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("lat.us");
  Snapshot before;
  {
    h.observe(10);
    h.observe(20);
    h.observe(30);
    before = reg.snapshot();
  }
  // Retire + re-register: totals go DOWN between snapshots.
  reg.retire("lat.us");
  Histogram h2 = reg.histogram("lat.us");
  h2.observe(5);
  const Snapshot after = reg.snapshot();
  const Snapshot delta = after.since(before);
  const HistogramData* d = delta.histogram("lat.us");
  ASSERT_NE(d, nullptr);
  // Reset semantics mirror the counter clamp: keep the current tallies
  // whole instead of underflowing the unsigned counts.
  EXPECT_EQ(d->count, 1u);
  EXPECT_EQ(d->sum, 5);
}

TEST(RollupStore, HistogramMergesAcrossWindows) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("lat.us", {10, 100});
  RollupStore store;
  store.roll(reg.snapshot(), 0);
  h.observe(5);
  h.observe(50);
  store.roll(reg.snapshot(), 1000);
  h.observe(500);
  store.roll(reg.snapshot(), 2000);

  const HistogramData merged = store.merged_histogram("lat.us");
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 555);
  ASSERT_EQ(merged.counts.size(), 3u);
  EXPECT_EQ(merged.counts[0], 1u);  // <=10
  EXPECT_EQ(merged.counts[1], 1u);  // <=100
  EXPECT_EQ(merged.counts[2], 1u);  // overflow
  // A span of one window sees only the newest observation.
  EXPECT_EQ(store.merged_histogram("lat.us", 1).count, 1u);
  EXPECT_EQ(store.merged_histogram("absent").count, 0u);
}

// --- debug renderers --------------------------------------------------------

TEST(DebugPlane, VarsJsonCarriesRatesAndSeries) {
  MetricsRegistry reg;
  Counter c = reg.counter("x.count");
  RollupStore store;
  store.roll(reg.snapshot(), 0);
  c.inc(4);
  store.roll(reg.snapshot(), 1'000'000);
  const std::string json = debug_vars_json(reg.snapshot(), &store, 1'500'000);
  EXPECT_NE(json.find("\"t\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"x.count\":{\"delta\":4"), std::string::npos);
  EXPECT_NE(json.find("\"per_second\":4.000"), std::string::npos);
  EXPECT_NE(json.find("\"series\":["), std::string::npos);
  // Null rollup: series only, no rates section.
  const std::string bare = debug_vars_json(reg.snapshot(), nullptr, 1);
  EXPECT_EQ(bare.find("\"rates\""), std::string::npos);
}

TEST(DebugPlane, SessionsJsonGroupsByLabels) {
  MetricsRegistry reg;
  reg.counter("lod.server.sessions_opened", {{"host", "1"}}).inc(2);
  reg.gauge("lod.server.active_sessions", {{"host", "1"}}).set(1);
  reg.counter("lod.server.session.packets_sent",
              {{"host", "1"}, {"session", "9"}})
      .inc(55);
  reg.counter("lod.server.session.seeks", {{"host", "1"}, {"session", "9"}})
      .inc(3);
  const std::string json = debug_sessions_json(reg.snapshot());
  EXPECT_NE(json.find("\"sessions\":["), std::string::npos);
  EXPECT_NE(json.find("\"session\":\"9\""), std::string::npos);
  EXPECT_NE(json.find("\"packets_sent\":55"), std::string::npos);
  EXPECT_NE(json.find("\"seeks\":3"), std::string::npos);
  EXPECT_NE(json.find("\"lod.server.active_sessions\""), std::string::npos);
}

TEST(DebugPlane, SyncJsonFiltersToSyncSeries) {
  MetricsRegistry reg;
  reg.counter("lod.sync.epochs", {{"host", "2"}}).inc(12);
  reg.counter("lod.server.packets_sent").inc(99);
  const std::string json = debug_sync_json(reg.snapshot());
  EXPECT_NE(json.find("lod.sync.epochs"), std::string::npos);
  EXPECT_NE(json.find("\"value\":12"), std::string::npos);
  EXPECT_EQ(json.find("lod.server.packets_sent"), std::string::npos);
}

TEST(DebugPlane, TraceJsonIndexAndSingleTree) {
  Hub hub;
  hub.set_clock([] { return TimeUs{50}; });
  hub.trace().set_enabled(true);
  const TraceContext ctx = hub.trace().make_trace();
  const auto span = hub.trace().begin_span(ctx, "player.startup", 1);
  hub.trace().end_span(ctx, span, "player.startup", 1);

  const auto events = hub.trace().events();
  const std::string index = debug_trace_json(events, 0);
  EXPECT_NE(index.find("\"traces\":["), std::string::npos);
  EXPECT_NE(index.find("\"root\":\"player.startup\""), std::string::npos);

  const std::string tree = debug_trace_json(events, ctx.trace_id);
  EXPECT_NE(tree.find("\"name\":\"player.startup\""), std::string::npos);
  EXPECT_NE(tree.find("\"critical_path\":[0]"), std::string::npos);

  const std::string missing = debug_trace_json(events, 0xdead);
  EXPECT_NE(missing.find("trace not found"), std::string::npos);
}

TEST(DebugPlane, FlightJsonlMatchesDumpFormat) {
  FlightRecorder rec;
  rec.record_at(9, FlightType::kCacheMiss, 2, 31);
  const std::string text = debug_flight_jsonl(rec, 4242);
  EXPECT_EQ(text.find("{\"flight_dump\":{\"reason\":\"live\",\"t\":4242"), 0u);
  const auto parsed = FlightRecorder::parse_jsonl(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].type, FlightType::kCacheMiss);
}
