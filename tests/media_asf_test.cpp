#include "lod/media/asf.hpp"

#include <gtest/gtest.h>

#include "lod/media/profile.hpp"
#include "lod/media/sources.hpp"
#include "lod/net/rng.hpp"

namespace lod::media::asf {
namespace {

using net::msec;
using net::sec;
using net::secf;

Header make_header(std::uint32_t packet_bytes = 1400) {
  Header h;
  h.props.title = "Test Lecture";
  h.props.author = "Prof. X";
  h.props.play_duration = sec(10);
  h.props.packet_bytes = packet_bytes;
  h.props.avg_bitrate_bps = 250'000;
  h.streams = {
      {1, MediaType::kVideo, "MPEG-4", 186'000, 320, 240, 0},
      {2, MediaType::kAudio, "WMA", 64'000, 0, 0, 44'100},
  };
  return h;
}

EncodedUnit video_unit(double t, std::uint32_t bytes, bool key) {
  EncodedUnit u;
  u.stream_id = 1;
  u.type = MediaType::kVideo;
  u.pts = secf(t);
  u.duration = msec(66);
  u.bytes = bytes;
  u.keyframe = key;
  return u;
}

EncodedUnit audio_unit(double t, std::uint32_t bytes = 160) {
  EncodedUnit u;
  u.stream_id = 2;
  u.type = MediaType::kAudio;
  u.pts = secf(t);
  u.duration = msec(20);
  u.bytes = bytes;
  u.keyframe = true;
  return u;
}

/// Mux a small synthetic stream: video keyframe every 5 frames, audio blocks,
/// a couple of script commands.
File make_small_file(std::uint32_t packet_bytes = 1400) {
  Muxer mux(make_header(packet_bytes));
  for (int i = 0; i < 30; ++i) {
    mux.add_unit(video_unit(i / 15.0, i % 5 == 0 ? 4000 : 900, i % 5 == 0));
  }
  for (int i = 0; i < 100; ++i) mux.add_unit(audio_unit(i * 0.02));
  mux.add_script({secf(0.0), "SLIDE", "slides/1"});
  mux.add_script({secf(1.0), "SLIDE", "slides/2"});
  mux.add_script({secf(1.5), "ANNOT", "note: remember this"});
  return mux.finalize(sec(1));
}

/// Run every packet of \p f through a demuxer and collect the output.
struct DemuxResult {
  std::vector<DemuxedUnit> units;
  std::vector<ScriptCommand> scripts;
};
DemuxResult demux_all(const File& f) {
  Demuxer d(f.header);
  DemuxResult out;
  for (const auto& p : f.packets) {
    d.feed(p);
    while (auto u = d.next_unit()) out.units.push_back(std::move(*u));
    while (auto s = d.next_script()) out.scripts.push_back(std::move(*s));
  }
  return out;
}

// --- muxing -----------------------------------------------------------------

TEST(Muxer, PacketsRespectFixedSize) {
  const File f = make_small_file(1400);
  ASSERT_FALSE(f.packets.empty());
  for (const auto& p : f.packets) {
    std::uint32_t used = 0;
    for (const auto& pl : p.payloads) {
      used += 23 + static_cast<std::uint32_t>(pl.data.size());
    }
    EXPECT_LE(used + p.pad_bytes, 1400u - 12u);
    EXPECT_EQ(used + p.pad_bytes, 1400u - 12u);
  }
}

TEST(Muxer, SendTimesMonotone) {
  const File f = make_small_file();
  for (std::size_t i = 1; i < f.packets.size(); ++i) {
    EXPECT_GE(f.packets[i].send_time, f.packets[i - 1].send_time);
  }
}

TEST(Muxer, LargeUnitsFragmentAcrossPackets) {
  Muxer mux(make_header(1400));
  mux.add_unit(video_unit(0.0, 10'000, true));  // ~8 packets worth
  const File f = mux.finalize();
  EXPECT_GE(f.packets.size(), 7u);
  // All fragments must share the object and tile it exactly.
  std::uint32_t covered = 0;
  for (const auto& p : f.packets) {
    for (const auto& pl : p.payloads) {
      EXPECT_EQ(pl.object_size, 10'000u);
      covered += static_cast<std::uint32_t>(pl.data.size());
    }
  }
  EXPECT_EQ(covered, 10'000u);
}

TEST(Muxer, SmallUnitsPackTogether) {
  Muxer mux(make_header(1400));
  for (int i = 0; i < 10; ++i) mux.add_unit(audio_unit(i * 0.02, 100));
  const File f = mux.finalize();
  // 10 * (100+23) = 1230 < 1388: everything fits in one packet.
  ASSERT_EQ(f.packets.size(), 1u);
  EXPECT_EQ(f.packets[0].payloads.size(), 10u);
}

TEST(Muxer, InterleavesStreamsByPts) {
  const File f = make_small_file();
  SimDuration last{-1000000};
  for (const auto& p : f.packets) {
    for (const auto& pl : p.payloads) {
      if (pl.offset == 0) {
        EXPECT_GE(pl.pts.us, last.us);
        last = pl.pts;
      }
    }
  }
}

TEST(Muxer, TooSmallPacketSizeRejected) {
  Header h = make_header(64);
  EXPECT_THROW(Muxer{h}, std::invalid_argument);
}

TEST(Muxer, ZeroByteUnitSurvives) {
  Muxer mux(make_header());
  EncodedUnit u = audio_unit(0.0, 0);
  mux.add_unit(u, {});
  const File f = mux.finalize();
  const auto r = demux_all(f);
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_TRUE(r.units[0].data.empty());
}

TEST(Muxer, ExplicitContentPreserved) {
  Muxer mux(make_header());
  const auto content = pattern_bytes(500, 42);
  EncodedUnit u = video_unit(0.0, 500, true);
  mux.add_unit(u, content);
  const auto r = demux_all(mux.finalize());
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.units[0].data, content);
}

// --- demuxing ----------------------------------------------------------------

TEST(Demuxer, RoundTripsAllUnitsAndScripts) {
  const File f = make_small_file();
  const auto r = demux_all(f);
  EXPECT_EQ(r.units.size(), 130u);  // 30 video + 100 audio
  ASSERT_EQ(r.scripts.size(), 3u);
  EXPECT_EQ(r.scripts[0].type, "SLIDE");
  EXPECT_EQ(r.scripts[0].param, "slides/1");
  EXPECT_EQ(r.scripts[1].at, secf(1.0));
  EXPECT_EQ(r.scripts[2].type, "ANNOT");
}

TEST(Demuxer, ReassembledSizesMatchMeta) {
  const auto r = demux_all(make_small_file());
  for (const auto& u : r.units) {
    EXPECT_EQ(u.data.size(), u.meta.bytes);
  }
}

TEST(Demuxer, MissingPacketDropsOnlyAffectedUnits) {
  File f = make_small_file();
  // Remove one mid-file packet to simulate datagram loss.
  const std::size_t victim = f.packets.size() / 2;
  f.packets.erase(f.packets.begin() + static_cast<std::ptrdiff_t>(victim));
  Demuxer d(f.header);
  std::size_t units = 0;
  for (const auto& p : f.packets) {
    d.feed(p);
    while (d.next_unit()) ++units;
    while (d.next_script()) {
    }
  }
  EXPECT_LT(units, 130u);
  EXPECT_GT(units, 100u);  // most of the stream still plays
}

TEST(Demuxer, PtsPreservedThroughMuxDemux) {
  const auto r = demux_all(make_small_file());
  for (const auto& u : r.units) {
    if (u.meta.stream_id == 1) {
      // video frames at i/15s
      const double t = u.meta.pts.seconds();
      const double frames = t * 15.0;
      EXPECT_NEAR(frames, std::round(frames), 1e-3);
    }
  }
}

// --- serialization ---------------------------------------------------------------

TEST(Serialization, FileRoundTrip) {
  const File f = make_small_file();
  const auto bytes = serialize(f);
  const File g = parse(bytes);
  EXPECT_EQ(g.header.props.title, "Test Lecture");
  EXPECT_EQ(g.header.props.author, "Prof. X");
  EXPECT_EQ(g.header.streams.size(), 2u);
  EXPECT_EQ(g.header.streams[0].codec, "MPEG-4");
  ASSERT_EQ(g.packets.size(), f.packets.size());
  for (std::size_t i = 0; i < f.packets.size(); ++i) {
    EXPECT_EQ(g.packets[i].send_time, f.packets[i].send_time);
    ASSERT_EQ(g.packets[i].payloads.size(), f.packets[i].payloads.size());
    for (std::size_t j = 0; j < f.packets[i].payloads.size(); ++j) {
      EXPECT_EQ(g.packets[i].payloads[j].data, f.packets[i].payloads[j].data);
      EXPECT_EQ(g.packets[i].payloads[j].pts, f.packets[i].payloads[j].pts);
    }
  }
  ASSERT_EQ(g.index.size(), f.index.size());
}

TEST(Serialization, HeaderRoundTrip) {
  Header h = make_header();
  h.drm.is_protected = true;
  h.drm.key_id = "lecture#1";
  h.drm.license_url = "rpc://license/acquire";
  const Header g = parse_header(serialize_header(h));
  EXPECT_TRUE(g.drm.is_protected);
  EXPECT_EQ(g.drm.key_id, "lecture#1");
  EXPECT_EQ(g.drm.license_url, "rpc://license/acquire");
  EXPECT_EQ(g.props.packet_bytes, 1400u);
}

TEST(Serialization, PacketRoundTrip) {
  const File f = make_small_file();
  const auto& p = f.packets.front();
  const DataPacket q = parse_packet(serialize_packet(p));
  EXPECT_EQ(q.send_time, p.send_time);
  EXPECT_EQ(q.pad_bytes, p.pad_bytes);
  ASSERT_EQ(q.payloads.size(), p.payloads.size());
  EXPECT_EQ(q.payloads[0].data, p.payloads[0].data);
}

TEST(Serialization, BadMagicThrows) {
  auto bytes = serialize(make_small_file());
  bytes[0] = std::byte{0x00};
  EXPECT_THROW(parse(bytes), std::runtime_error);
}

TEST(Serialization, TruncatedFileThrows) {
  auto bytes = serialize(make_small_file());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(parse(bytes), std::out_of_range);
}

TEST(Serialization, FindStream) {
  const Header h = make_header();
  ASSERT_NE(h.find_stream(1), nullptr);
  EXPECT_EQ(h.find_stream(1)->codec, "MPEG-4");
  EXPECT_EQ(h.find_stream(99), nullptr);
}

// --- indexing --------------------------------------------------------------------

TEST(Indexing, EntriesCoverDuration) {
  const File f = make_small_file();
  ASSERT_FALSE(f.index.empty());
  EXPECT_EQ(f.index.front().time.us, 0);
  // Entries every second up to the 10 s play duration.
  EXPECT_EQ(f.index.size(), 11u);
}

TEST(Indexing, SeekLandsOnKeyframeStart) {
  const File f = make_small_file();
  const std::uint32_t pkt = seek_packet(f, secf(1.0));
  // The packet we land on must contain a keyframe start at pts <= 1.0 s.
  bool found = false;
  for (const auto& pl : f.packets[pkt].payloads) {
    if (pl.type == MediaType::kVideo && pl.keyframe && pl.offset == 0) {
      EXPECT_LE(pl.pts, secf(1.0));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Indexing, SeekBeyondEndReturnsLastEntry) {
  const File f = make_small_file();
  const std::uint32_t pkt = seek_packet(f, sec(100));
  EXPECT_EQ(pkt, f.index.back().packet);
}

TEST(Indexing, SeekZeroIsStart) {
  const File f = make_small_file();
  EXPECT_EQ(seek_packet(f, {}), 0u);
}

TEST(Indexing, EmptyIndexSeeksToZero) {
  File f = make_small_file();
  f.index.clear();
  EXPECT_EQ(seek_packet(f, sec(3)), 0u);
}

TEST(Indexing, AudioOnlyFileIndexable) {
  Header h = make_header();
  h.streams = {{2, MediaType::kAudio, "WMA", 64'000, 0, 0, 44'100}};
  Muxer mux(h);
  for (int i = 0; i < 500; ++i) mux.add_unit(audio_unit(i * 0.02));
  const File f = mux.finalize(sec(2));
  ASSERT_FALSE(f.index.empty());
  const auto pkt = seek_packet(f, sec(5));
  EXPECT_GT(pkt, 0u);
  EXPECT_LT(pkt, f.packets.size());
}

TEST(Indexing, RebuildWithDifferentGranularity) {
  File f = make_small_file();
  build_index(f, msec(500));
  EXPECT_EQ(f.index.size(), 21u);
  build_index(f, sec(5));
  EXPECT_EQ(f.index.size(), 3u);  // t = 0, 5, 10
}

TEST(File, WireSizeAccountsPacketsAndHeader) {
  const File f = make_small_file();
  const std::size_t ws = f.wire_size();
  EXPECT_GT(ws, f.packets.size() * 1400);
  EXPECT_LT(ws, f.packets.size() * 1400 + 4096);
}

// --- robustness: mutated input must never crash -------------------------------------

class ParseFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParseFuzz, MutatedBytesParseOrThrow) {
  auto bytes = serialize(make_small_file());
  net::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 99);
  // Flip a handful of random bytes; the parser must either produce SOME
  // file or throw one of its documented exceptions — never crash or hang.
  for (int flip = 0; flip < 8; ++flip) {
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[at] = static_cast<std::byte>(rng.uniform_int(0, 255));
  }
  try {
    const File f = parse(bytes);
    // If it parsed, demuxing the result must also be safe.
    Demuxer d(f.header);
    for (const auto& p : f.packets) d.feed(p);
    while (d.next_unit()) {
    }
    while (d.next_script()) {
    }
  } catch (const std::out_of_range&) {
  } catch (const std::runtime_error&) {
  } catch (const std::length_error&) {
  } catch (const std::bad_alloc&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseFuzz, ::testing::Range(0, 30));

TEST(ParseFuzzTrunc, EveryTruncationThrowsOrParses) {
  const auto bytes = serialize(make_small_file());
  net::Rng rng(123);
  for (int i = 0; i < 40; ++i) {
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size())));
    std::vector<std::byte> cut(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      (void)parse(cut);
    } catch (const std::out_of_range&) {
    } catch (const std::runtime_error&) {
    }
  }
}

// --- realistic end-to-end: profile-driven encode & mux -----------------------------

TEST(EndToEnd, EncodeMuxDemuxOneMinuteLecture) {
  const auto profile = *find_profile("Video 250k DSL/cable");
  auto vcodec = make_video_codec(profile.video_codec);
  auto acodec = make_audio_codec(profile.audio_codec);
  vcodec->configure(profile.video_config());
  acodec->configure(profile.audio_config());

  Header h = make_header();
  h.props.play_duration = sec(60);
  Muxer mux(h);

  LectureVideoSource vsrc(sec(60), profile.fps, profile.width, profile.height);
  VideoFrame vf;
  std::uint64_t i = 0;
  while (vsrc.next(vf)) mux.add_unit(vcodec->encode(vf, i++));
  LectureAudioSource asrc(sec(60), profile.audio_sample_rate());
  AudioBlock ab;
  while (asrc.next(ab)) mux.add_unit(acodec->encode(ab));

  const File f = mux.finalize();
  const auto r = demux_all(f);
  EXPECT_EQ(r.units.size(), static_cast<std::size_t>(i) + 60 * 50);

  // The file's average rate should be near the profile's promise.
  const double bits = static_cast<double>(f.wire_size()) * 8.0;
  const double bps = bits / 60.0;
  EXPECT_LT(bps, profile.total_bps * 1.35);  // container overhead bounded
  EXPECT_GT(bps, profile.total_bps * 0.7);
}

}  // namespace
}  // namespace lod::media::asf
