#include "lod/media/codec.hpp"

#include <gtest/gtest.h>

#include "lod/media/profile.hpp"
#include "lod/media/sources.hpp"

namespace lod::media {
namespace {

using net::msec;
using net::sec;
using net::secf;

VideoFrame frame_at(double t_sec, float complexity = 1.0f) {
  VideoFrame f;
  f.pts = secf(t_sec);
  f.complexity = complexity;
  return f;
}

// --- codec registry -------------------------------------------------------------

TEST(CodecRegistry, AllPaperCodecsExist) {
  for (const auto& n : video_codec_names()) {
    EXPECT_EQ(make_video_codec(n)->name(), n);
  }
  for (const auto& n : audio_codec_names()) {
    EXPECT_EQ(make_audio_codec(n)->name(), n);
  }
}

TEST(CodecRegistry, UnknownCodecThrows) {
  EXPECT_THROW(make_video_codec("H.264"), std::invalid_argument);
  EXPECT_THROW(make_audio_codec("Opus"), std::invalid_argument);
}

// --- video rate model: property sweep across all codecs ---------------------------

class VideoCodecSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(VideoCodecSweep, LongRunRateHitsTarget) {
  auto codec = make_video_codec(GetParam());
  if (GetParam() == "UncompressedVideo") GTEST_SKIP();
  VideoCodecConfig cfg;
  cfg.target_bps = 250'000;
  cfg.fps = 15.0;
  codec->configure(cfg);

  std::uint64_t total_bytes = 0;
  const int frames = 15 * 60;  // one minute
  LectureVideoSource src(sec(60), 15.0, 320, 240, 3);
  VideoFrame f;
  std::uint64_t i = 0;
  while (src.next(f)) total_bytes += codec->encode(f, i++).bytes;

  const double achieved_bps = static_cast<double>(total_bytes) * 8.0 / 60.0;
  EXPECT_NEAR(achieved_bps, 250'000.0, 250'000.0 * 0.10)
      << "codec " << GetParam() << " missed rate target; frames=" << frames;
}

TEST_P(VideoCodecSweep, KeyframesFollowGop) {
  auto codec = make_video_codec(GetParam());
  VideoCodecConfig cfg;
  cfg.gop = 30;
  codec->configure(cfg);
  for (std::uint64_t i = 0; i < 90; ++i) {
    const auto u = codec->encode(frame_at(i / 15.0), i);
    if (i % 30 == 0) EXPECT_TRUE(u.keyframe) << "frame " << i;
  }
}

TEST_P(VideoCodecSweep, SceneCutForcesKeyframe) {
  auto codec = make_video_codec(GetParam());
  codec->configure({});
  VideoFrame f = frame_at(1.0);
  f.scene_cut = true;
  EXPECT_TRUE(codec->encode(f, 17).keyframe);
}

TEST_P(VideoCodecSweep, UnitsCarryPtsAndPositiveSize) {
  auto codec = make_video_codec(GetParam());
  codec->configure({});
  const auto u = codec->encode(frame_at(2.5), 5);
  EXPECT_EQ(u.pts, secf(2.5));
  EXPECT_GT(u.bytes, 0u);
  EXPECT_GT(u.duration.us, 0);
  EXPECT_EQ(u.type, MediaType::kVideo);
}

INSTANTIATE_TEST_SUITE_P(AllVideoCodecs, VideoCodecSweep,
                         ::testing::Values("MPEG-4", "TrueMotionRT",
                                           "ClearVideo", "UncompressedVideo"));

TEST(VideoCodec, KeyframesCostMoreThanPFrames) {
  auto codec = make_video_codec("MPEG-4");
  VideoCodecConfig cfg;
  cfg.gop = 100;
  codec->configure(cfg);
  const auto i_frame = codec->encode(frame_at(0.0), 0);
  const auto p_frame = codec->encode(frame_at(0.066), 1);
  EXPECT_TRUE(i_frame.keyframe);
  EXPECT_FALSE(p_frame.keyframe);
  EXPECT_GT(i_frame.bytes, p_frame.bytes * 2);
}

TEST(VideoCodec, HigherBitrateHigherQuality) {
  auto lo = make_video_codec("MPEG-4");
  auto hi = make_video_codec("MPEG-4");
  VideoCodecConfig cfg_lo;
  cfg_lo.target_bps = 30'000;
  VideoCodecConfig cfg_hi;
  cfg_hi.target_bps = 1'000'000;
  lo->configure(cfg_lo);
  hi->configure(cfg_hi);
  EXPECT_LT(lo->encode(frame_at(0), 0).quality,
            hi->encode(frame_at(0), 0).quality);
}

TEST(VideoCodec, Mpeg4BeatsTrueMotionAtSameRate) {
  // The paper-era ranking: MPEG-4 needs fewer bits per pixel than
  // TrueMotion RT, so at an equal budget its quality score is higher.
  auto m = make_video_codec("MPEG-4");
  auto t = make_video_codec("TrueMotionRT");
  VideoCodecConfig cfg;
  cfg.target_bps = 100'000;
  m->configure(cfg);
  t->configure(cfg);
  EXPECT_GT(m->encode(frame_at(0), 0).quality,
            t->encode(frame_at(0), 0).quality);
}

TEST(VideoCodec, UncompressedIsExactYuvSize) {
  auto c = make_video_codec("UncompressedVideo");
  c->configure({});
  VideoFrame f = frame_at(0);
  f.width = 320;
  f.height = 240;
  EXPECT_EQ(c->encode(f, 0).bytes, 320u * 240u * 3u / 2u);
  EXPECT_FLOAT_EQ(c->encode(f, 1).quality, 1.0f);
}

// --- audio codecs ------------------------------------------------------------------

class AudioCodecSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AudioCodecSweep, BlocksCarryConfiguredRate) {
  auto codec = make_audio_codec(GetParam());
  if (GetParam() == "UncompressedAudio") GTEST_SKIP();
  AudioCodecConfig cfg;
  cfg.target_bps = 16'000;
  codec->configure(cfg);
  AudioBlock b;
  b.pts = msec(100);
  b.duration = msec(20);
  const auto u = codec->encode(b);
  // 16 kb/s for 20 ms = 40 bytes — except MP3, whose floor is 32 kb/s and
  // therefore clamps up to 80 bytes per block.
  const std::uint32_t expected = GetParam() == "MP3" ? 80u : 40u;
  EXPECT_EQ(u.bytes, expected);
  EXPECT_EQ(u.pts, msec(100));
  EXPECT_EQ(u.type, MediaType::kAudio);
}

INSTANTIATE_TEST_SUITE_P(AllAudioCodecs, AudioCodecSweep,
                         ::testing::Values("WMA", "ACELP", "MP3",
                                           "UncompressedAudio"));

TEST(AudioCodec, AcelpCapsItsRate) {
  auto c = make_audio_codec("ACELP");
  AudioCodecConfig cfg;
  cfg.target_bps = 128'000;  // beyond the speech codec's band
  c->configure(cfg);
  AudioBlock b;
  b.duration = msec(20);
  // Clamped to 16 kb/s: 40 bytes per 20 ms block.
  EXPECT_EQ(c->encode(b).bytes, 40u);
}

TEST(AudioCodec, UncompressedIsPcmSize) {
  auto c = make_audio_codec("UncompressedAudio");
  c->configure({});
  AudioBlock b;
  b.duration = msec(20);
  b.sample_rate = 44'100;
  b.channels = 1;
  EXPECT_EQ(c->encode(b).bytes, 44'100u / 50u * 2u);
}

// --- bandwidth profiles -------------------------------------------------------------

TEST(Profiles, LadderIsOrderedAndConsistent) {
  const auto& all = standard_profiles();
  ASSERT_GE(all.size(), 5u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].total_bps, all[i - 1].total_bps);
  }
  for (const auto& p : all) {
    EXPECT_LE(p.video_bps + p.audio_bps, p.total_bps);
    if (p.has_video()) {
      EXPECT_GT(p.width, 0);
      EXPECT_GT(p.height, 0);
      EXPECT_GT(p.fps, 0.0);
    }
  }
}

TEST(Profiles, HigherBitrateMeansHigherResolution) {
  // §2.5: "The more high bit rate means the content will be encoded to a
  // more high-resolution content."
  const auto& all = standard_profiles();
  std::uint32_t last_area = 0;
  for (const auto& p : all) {
    if (!p.has_video()) continue;
    const std::uint32_t area = static_cast<std::uint32_t>(p.width) * p.height;
    EXPECT_GE(area, last_area);
    last_area = area;
  }
}

TEST(Profiles, FindByName) {
  EXPECT_TRUE(find_profile("Video 250k DSL/cable").has_value());
  EXPECT_FALSE(find_profile("Video 10G fantasy").has_value());
}

TEST(Profiles, BestProfileForBandwidth) {
  EXPECT_EQ(best_profile_for(2'000'000).name, "Video 1.5M LAN");
  EXPECT_EQ(best_profile_for(300'000).name, "Video 250k DSL/cable");
  // A 28.8k modem minus headroom still fits the 24 kb/s video profile.
  EXPECT_EQ(best_profile_for(28'800).name, "Video 28.8k");
  // A voice-only link only fits the audio profile.
  EXPECT_EQ(best_profile_for(26'000).name, "Audio 28.8k (voice)");
  // Pathological: even when nothing fits, we fall back to the smallest.
  EXPECT_EQ(best_profile_for(1'000).name, "Audio 28.8k (voice)");
}

TEST(Profiles, ConfigsReflectProfile) {
  const auto p = *find_profile("Video 250k DSL/cable");
  const auto vc = p.video_config();
  EXPECT_EQ(vc.target_bps, p.video_bps);
  EXPECT_EQ(vc.width, 320);
  const auto ac = p.audio_config();
  EXPECT_EQ(ac.target_bps, p.audio_bps);
  EXPECT_EQ(ac.sample_rate, 44'100u);
}

// --- synthetic sources ---------------------------------------------------------------

TEST(Sources, VideoSourceEmitsExactFrameCount) {
  LectureVideoSource src(sec(10), 15.0, 320, 240);
  VideoFrame f;
  int n = 0;
  while (src.next(f)) ++n;
  EXPECT_EQ(n, 150);
}

TEST(Sources, VideoSourcePtsMonotone) {
  LectureVideoSource src(sec(5), 30.0, 320, 240);
  VideoFrame f;
  SimDuration last{-1};
  while (src.next(f)) {
    EXPECT_GT(f.pts, last);
    last = f.pts;
  }
}

TEST(Sources, VideoSourceRewindReproducesFrames) {
  LectureVideoSource src(sec(20), 15.0, 320, 240, 99);
  std::vector<float> first;
  VideoFrame f;
  while (src.next(f)) first.push_back(f.complexity);
  src.rewind();
  std::size_t i = 0;
  while (src.next(f)) {
    ASSERT_LT(i, first.size());
    EXPECT_FLOAT_EQ(f.complexity, first[i++]);
  }
  EXPECT_EQ(i, first.size());
}

TEST(Sources, VideoSourceHasSceneCuts) {
  LectureVideoSource src(sec(120), 15.0, 320, 240, 5);
  VideoFrame f;
  int cuts = 0;
  while (src.next(f)) cuts += f.scene_cut ? 1 : 0;
  EXPECT_GT(cuts, 0);
  EXPECT_LT(cuts, 60);  // a lecture is not a music video
}

TEST(Sources, AudioSourceCoversDurationExactly) {
  LectureAudioSource src(secf(1.01), 22'050);
  AudioBlock b;
  SimDuration total{};
  while (src.next(b)) total += b.duration;
  EXPECT_EQ(total, secf(1.01));  // last block is shortened to fit
}

TEST(Sources, SlideDeckDeterministicAndSized) {
  const auto d1 = make_slide_deck(24, 13);
  const auto d2 = make_slide_deck(24, 13);
  ASSERT_EQ(d1.size(), 24u);
  for (std::size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].encoded_bytes, d2[i].encoded_bytes);
    EXPECT_GE(d1[i].encoded_bytes, 25'000u);
    EXPECT_LE(d1[i].encoded_bytes, 90'000u);
    EXPECT_EQ(d1[i].index, i);
  }
}

TEST(Sources, SlideScheduleCoversLectureInOrder) {
  const auto at = make_slide_schedule(24, sec(1800));
  ASSERT_EQ(at.size(), 24u);
  EXPECT_EQ(at.front().us, 0);
  for (std::size_t i = 1; i < at.size(); ++i) EXPECT_GT(at[i], at[i - 1]);
  EXPECT_LT(at.back(), sec(1800));
}

TEST(Sources, SlideScheduleEmptyDeck) {
  EXPECT_TRUE(make_slide_schedule(0, sec(100)).empty());
}

TEST(Sources, AnnotationsAnchoredToVisibleSlide) {
  const auto times = make_slide_schedule(10, sec(600));
  const auto notes = make_annotations(30, times, sec(600));
  ASSERT_EQ(notes.size(), 30u);
  for (const auto& n : notes) {
    ASSERT_LT(n.slide, times.size());
    EXPECT_LE(times[n.slide], n.at);  // slide was already up
    if (n.slide + 1 < times.size()) EXPECT_LT(n.at, times[n.slide + 1]);
  }
  for (std::size_t i = 1; i < notes.size(); ++i) {
    EXPECT_GE(notes[i].at, notes[i - 1].at);  // sorted by time
  }
}

}  // namespace
}  // namespace lod::media
