#include "lod/core/timed.hpp"

#include <gtest/gtest.h>

namespace lod::core {
namespace {

using net::msec;
using net::sec;

TEST(TimedNet, DurationsDefaultZero) {
  TimedPetriNet net;
  const PlaceId p = net.add_place("p");
  EXPECT_EQ(net.duration(p).us, 0);
  net.set_duration(p, sec(3));
  EXPECT_EQ(net.duration(p), sec(3));
}

TEST(TimedNet, MediaBinding) {
  TimedPetriNet net;
  const PlaceId p =
      net.add_timed_place("video", sec(10), MediaBinding{"video", 0, 250'000});
  ASSERT_TRUE(net.media(p).has_value());
  EXPECT_EQ(net.media(p)->object_name, "video");
  EXPECT_EQ(net.media(p)->required_bps, 250'000);
  const PlaceId q = net.add_timed_place("gap", sec(1));
  EXPECT_FALSE(net.media(q).has_value());
}

TEST(TimedNet, SiteAssignment) {
  TimedPetriNet net;
  const PlaceId p = net.add_place("p");
  EXPECT_EQ(net.site(p), kLocalSite);
  net.set_site(p, 3);
  EXPECT_EQ(net.site(p), 3u);
}

/// Linear pipeline: source -> t0 -> A(2s) -> t1 -> B(3s) -> t2 -> sink.
struct Pipeline {
  TimedPetriNet net;
  PlaceId source, a, b, sink;
  Marking m0;

  Pipeline() {
    source = net.add_timed_place("source", {});
    a = net.add_timed_place("A", sec(2), MediaBinding{"A", 0, 0});
    b = net.add_timed_place("B", sec(3), MediaBinding{"B", 0, 0});
    sink = net.add_timed_place("sink", {});
    const TransitionId t0 = net.add_transition("t0");
    const TransitionId t1 = net.add_transition("t1");
    const TransitionId t2 = net.add_transition("t2");
    net.add_input(source, t0);
    net.add_output(t0, a);
    net.add_input(a, t1);
    net.add_output(t1, b);
    net.add_input(b, t2);
    net.add_output(t2, sink);
    m0 = net.empty_marking();
    m0[source] = 1;
  }
};

TEST(Playout, SequentialDurationsAdd) {
  Pipeline p;
  const auto trace = play(p.net, p.m0);
  EXPECT_FALSE(trace.truncated);
  EXPECT_EQ(trace.makespan, sec(5));
  const auto ia = trace.interval_of(p.net, "A");
  const auto ib = trace.interval_of(p.net, "B");
  ASSERT_TRUE(ia && ib);
  EXPECT_EQ(ia->start, msec(0));
  EXPECT_EQ(ia->end, sec(2));
  EXPECT_EQ(ib->start, sec(2));
  EXPECT_EQ(ib->end, sec(5));
}

TEST(Playout, FiringsRecordedInOrder) {
  Pipeline p;
  const auto trace = play(p.net, p.m0);
  ASSERT_EQ(trace.firings.size(), 3u);
  EXPECT_EQ(trace.firings[0].at, msec(0));
  EXPECT_EQ(trace.firings[1].at, sec(2));
  EXPECT_EQ(trace.firings[2].at, sec(5));
}

TEST(Playout, ParallelJoinWaitsForSlowest) {
  // fork -> A(2s), B(5s) -> join
  TimedPetriNet net;
  const PlaceId source = net.add_timed_place("source", {});
  const PlaceId a = net.add_timed_place("A", sec(2), MediaBinding{"A", 0, 0});
  const PlaceId b = net.add_timed_place("B", sec(5), MediaBinding{"B", 0, 0});
  const PlaceId sink = net.add_timed_place("sink", {});
  const TransitionId fork = net.add_transition("fork");
  const TransitionId join = net.add_transition("join");
  net.add_input(source, fork);
  net.add_output(fork, a);
  net.add_output(fork, b);
  net.add_input(a, join);
  net.add_input(b, join);
  net.add_output(join, sink);
  Marking m0 = net.empty_marking();
  m0[source] = 1;

  const auto trace = play(net, m0);
  EXPECT_EQ(trace.makespan, sec(5));  // join at the slowest branch
  EXPECT_EQ(trace.firings.back().at, sec(5));
}

TEST(Playout, EmptyNetQuiesces) {
  TimedPetriNet net;
  const auto trace = play(net, {});
  EXPECT_EQ(trace.makespan.us, 0);
  EXPECT_TRUE(trace.intervals.empty());
  EXPECT_FALSE(trace.truncated);
}

TEST(Playout, SourceTransitionTruncates) {
  // A transition with no inputs fires forever: the step cap must save us.
  TimedPetriNet net;
  const PlaceId p = net.add_timed_place("p", sec(1));
  const TransitionId t = net.add_transition("spring");
  net.add_output(t, p);
  const auto trace = play(net, net.empty_marking(), 100);
  EXPECT_TRUE(trace.truncated);
  EXPECT_EQ(trace.firings.size(), 100u);
}

TEST(Playout, DeterministicConflictResolution) {
  // One token, two competing transitions: the lower id must win, always.
  TimedPetriNet net;
  const PlaceId p = net.add_timed_place("p", {});
  const PlaceId win = net.add_timed_place("win", {});
  const PlaceId lose = net.add_timed_place("lose", {});
  const TransitionId t_low = net.add_transition("low");
  const TransitionId t_high = net.add_transition("high");
  net.add_input(p, t_low);
  net.add_output(t_low, win);
  net.add_input(p, t_high);
  net.add_output(t_high, lose);
  Marking m0 = net.empty_marking();
  m0[p] = 1;
  for (int i = 0; i < 5; ++i) {
    const auto trace = play(net, m0);
    ASSERT_EQ(trace.firings.size(), 1u);
    EXPECT_EQ(trace.firings[0].transition, t_low);
  }
}

TEST(Playout, InhibitorSeesCookingTokens) {
  // While "loud" cooks, the inhibited transition must stay blocked.
  TimedPetriNet net;
  const PlaceId loud = net.add_timed_place("loud", sec(4));
  const PlaceId src = net.add_timed_place("src", sec(1));
  const PlaceId out = net.add_timed_place("out", {});
  const TransitionId t = net.add_transition("t");
  net.add_input(src, t);
  net.add_input(loud, t, 1, ArcKind::kInhibitor);
  net.add_output(t, out);
  Marking m0 = net.empty_marking();
  m0[src] = 1;
  m0[loud] = 1;
  const auto trace = play(net, m0);
  // src ready at 1 s but loud's token (never consumed) blocks forever; the
  // playout quiesces with t unfired.
  EXPECT_TRUE(trace.firings.empty());
}

TEST(Playout, MultiTokenPlaceCountsIndividually) {
  TimedPetriNet net;
  const PlaceId p = net.add_timed_place("p", sec(1));
  const PlaceId q = net.add_timed_place("q", {});
  const TransitionId t = net.add_transition("t");
  net.add_input(p, t, 2);  // needs two mature tokens
  net.add_output(t, q);
  Marking m0 = net.empty_marking();
  m0[p] = 2;
  const auto trace = play(net, m0);
  ASSERT_EQ(trace.firings.size(), 1u);
  EXPECT_EQ(trace.firings[0].at, sec(1));
}

TEST(Playout, CrossSiteTransferDelays) {
  // source --t0--> A(1s) --t1--> B(2s at site 1): the hop pays 250 ms.
  TimedPetriNet net;
  net.set_transfer_delay(msec(250));
  const PlaceId source = net.add_timed_place("source", {});
  const PlaceId a = net.add_timed_place("A", sec(1), MediaBinding{"A", 0, 0});
  const PlaceId b = net.add_timed_place("B", sec(2), MediaBinding{"B", 0, 0});
  net.set_site(b, 1);
  const TransitionId t0 = net.add_transition("t0");
  const TransitionId t1 = net.add_transition("t1");
  net.add_input(source, t0);
  net.add_output(t0, a);
  net.add_input(a, t1);
  net.add_output(t1, b);
  Marking m0 = net.empty_marking();
  m0[source] = 1;

  const auto trace = play(net, m0);
  const auto ib = trace.interval_of(net, "B");
  ASSERT_TRUE(ib.has_value());
  EXPECT_EQ(ib->start, sec(1) + msec(250));
  EXPECT_EQ(trace.makespan, sec(3) + msec(250));
}

TEST(Playout, SameSiteTransferFree) {
  TimedPetriNet net;
  net.set_transfer_delay(msec(250));
  const PlaceId source = net.add_timed_place("source", {});
  const PlaceId a = net.add_timed_place("A", sec(1), MediaBinding{"A", 0, 0});
  net.set_site(source, 1);
  net.set_site(a, 1);
  const TransitionId t0 = net.add_transition("t0");
  net.add_input(source, t0);
  net.add_output(t0, a);
  Marking m0 = net.empty_marking();
  m0[source] = 1;
  const auto trace = play(net, m0);
  EXPECT_EQ(trace.interval_of(net, "A")->start.us, 0);
}

TEST(Playout, IntervalOfMissingObjectIsNull) {
  Pipeline p;
  const auto trace = play(p.net, p.m0);
  EXPECT_FALSE(trace.interval_of(p.net, "nope").has_value());
}

}  // namespace
}  // namespace lod::core
