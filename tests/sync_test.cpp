#include "lod/sync/agent.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "lod/lod/floor.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"
#include "lod/sync/blocks.hpp"
#include "lod/sync/detector.hpp"
#include "lod/sync/serialize.hpp"
#include "lod/sync/state.hpp"

namespace lod::sync {
namespace {

using net::msec;
using net::sec;
using net::SimDuration;
using net::SimTime;

std::span<const std::byte> span_of(const std::vector<std::byte>& v) {
  return {v.data(), v.size()};
}

// --- StateWriter / StateReader ----------------------------------------------------

TEST(SyncSerialize, RoundTripsEveryFieldType) {
  StateWriter w;
  w.u8(7);
  w.u16(60000);
  w.u32(0xdeadbeef);
  w.u64(1ull << 60);
  w.i64(-12345);
  w.f64(1.25);
  w.str("floor_free");
  w.marker(0x4d41524bu);
  w.blob(span_of(std::vector<std::byte>(13, std::byte{0x5a})));

  StateReader r(span_of(w.bytes()));
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 60000);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 1ull << 60);
  EXPECT_EQ(r.i64(), -12345);
  EXPECT_EQ(r.f64(), 1.25);
  EXPECT_EQ(r.str(), "floor_free");
  r.expect_marker(0x4d41524bu);
  EXPECT_EQ(r.blob().size(), 13u);
  EXPECT_TRUE(r.done());
}

TEST(SyncSerialize, MarkerMismatchThrows) {
  StateWriter w;
  w.marker(1);
  StateReader r(span_of(w.bytes()));
  EXPECT_THROW(r.expect_marker(2), std::runtime_error);
}

TEST(SyncSerialize, TruncatedInputThrowsNeverUb) {
  StateWriter w;
  w.u64(42);
  const auto& b = w.bytes();
  StateReader r(std::span{b.data(), 3});
  EXPECT_THROW(r.u64(), std::out_of_range);
}

TEST(SyncSerialize, ChecksumIsDeterministicAndSensitive) {
  std::vector<std::byte> a(64, std::byte{1});
  EXPECT_EQ(checksum64(span_of(a)), checksum64(span_of(a)));
  std::vector<std::byte> b = a;
  b[17] = std::byte{2};
  EXPECT_NE(checksum64(span_of(a)), checksum64(span_of(b)));
}

// --- DesyncDetector ---------------------------------------------------------------

TEST(DesyncDetector, ClassifiesTransientThenPersistent) {
  DesyncDetector d(DesyncDetector::Config{3});
  EXPECT_EQ(d.observe(1, true), DesyncDetector::Verdict::kInSync);
  EXPECT_EQ(d.observe(2, false), DesyncDetector::Verdict::kTransient);
  EXPECT_EQ(d.observe(3, false), DesyncDetector::Verdict::kTransient);
  EXPECT_EQ(d.observe(4, false), DesyncDetector::Verdict::kPersistent);
  EXPECT_TRUE(d.desynced());
  // One clean epoch clears it.
  EXPECT_EQ(d.observe(5, true), DesyncDetector::Verdict::kInSync);
  EXPECT_FALSE(d.desynced());
}

TEST(DesyncDetector, StaleOrRepeatedEpochsDoNotAdvance) {
  DesyncDetector d(DesyncDetector::Config{2});
  EXPECT_EQ(d.observe(5, false), DesyncDetector::Verdict::kTransient);
  // Same epoch again (duplicate gossip): ignored, verdict unchanged.
  EXPECT_EQ(d.observe(5, false), DesyncDetector::Verdict::kTransient);
  EXPECT_EQ(d.streak(), 1);
  // Older epoch: ignored.
  EXPECT_EQ(d.observe(3, false), DesyncDetector::Verdict::kTransient);
  EXPECT_EQ(d.observe(6, false), DesyncDetector::Verdict::kPersistent);
}

TEST(DesyncDetector, ResyncResetsTheStreak) {
  DesyncDetector d(DesyncDetector::Config{2});
  d.observe(1, false);
  d.observe(2, false);
  EXPECT_TRUE(d.desynced());
  d.note_resynced();
  EXPECT_FALSE(d.desynced());
  EXPECT_EQ(d.observe(3, false), DesyncDetector::Verdict::kTransient);
}

// --- SessionState -----------------------------------------------------------------

struct TwoBlockState {
  core::Marking marking{1, 0, 2};
  streaming::PlayerSyncCursor cursor;
  SessionState state;

  TwoBlockState() {
    register_marking_block(state, 1, "marking", &marking);
    register_player_cursor_block(state, 2, "cursor", &cursor);
    state.refresh();
  }
};

TEST(SessionState, DirtyTrackingFlagsOnlyChangedBlocks) {
  TwoBlockState s;
  EXPECT_EQ(s.state.refresh(), 0u);  // nothing changed since ctor refresh
  s.marking[1] = 1;
  ASSERT_EQ(s.state.refresh(), 1u);
  EXPECT_EQ(s.state.dirty_blocks().front(), 1u);
  s.cursor.base_pts_us = 777;
  ASSERT_EQ(s.state.refresh(), 1u);
  EXPECT_EQ(s.state.dirty_blocks().front(), 2u);
}

TEST(SessionState, DuplicateBlockIdThrows) {
  TwoBlockState s;
  EXPECT_THROW(
      s.state.register_block(
          1, "dup", [](StateWriter&) {}, [](StateReader&) {}),
      std::invalid_argument);
}

TEST(SessionState, SerializeDeserializeSerializeIsByteIdentical) {
  TwoBlockState a;
  a.marking = {0, 1, 5};
  a.cursor.base_pts_us = 123456;
  a.cursor.rate = 1.5;
  a.state.refresh();
  const std::vector<std::byte> img1 = a.state.serialize_full();

  TwoBlockState b;  // different starting state
  const auto res = b.state.apply(span_of(img1));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.delta);
  EXPECT_TRUE(res.checksum_match);
  EXPECT_EQ(res.blocks_applied, 2u);
  EXPECT_EQ(b.marking, a.marking);
  EXPECT_EQ(b.cursor.base_pts_us, 123456);

  const std::vector<std::byte> img2 = b.state.serialize_full();
  EXPECT_EQ(img1, img2);
}

TEST(SessionState, DeltaShipsOnlyDisagreeingBlocks) {
  TwoBlockState authority;
  TwoBlockState replica;
  // Replica's marking diverges; cursors agree.
  replica.marking = {0, 0, 9};
  replica.state.refresh();

  const auto delta =
      authority.state.serialize_delta(replica.state.block_sums());
  const auto full = authority.state.serialize_full();
  EXPECT_LT(delta.size(), full.size());

  const auto res = replica.state.apply(span_of(delta));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.delta);
  EXPECT_TRUE(res.checksum_match);
  EXPECT_EQ(res.blocks_applied, 1u);  // only the marking travelled
  EXPECT_EQ(replica.marking, authority.marking);
  EXPECT_EQ(replica.state.checksum(), authority.state.checksum());
}

TEST(SessionState, ApplyRejectsGarbageAndUnknownBlocks) {
  TwoBlockState s;
  // Garbage bytes.
  std::vector<std::byte> junk(32, std::byte{0xee});
  EXPECT_FALSE(s.state.apply(span_of(junk)).ok);
  // Truncated valid image.
  const auto img = s.state.serialize_full();
  EXPECT_FALSE(s.state.apply(std::span{img.data(), img.size() / 2}).ok);
  // An image carrying a block this state does not register.
  SessionState other;
  core::Marking m{1};
  register_marking_block(other, 99, "alien", &m);
  other.refresh();
  const auto res = s.state.apply(span_of(other.serialize_full()));
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("unknown block"), std::string::npos);
}

// --- structure hash ---------------------------------------------------------------

TEST(StructureHash, StableAcrossInstancesAndStructureSensitive) {
  const auto build = [](std::uint32_t cap) {
    core::PetriNet n;
    const auto p = n.add_place("p", cap);
    const auto q = n.add_place("q");
    const auto t = n.add_transition("t");
    n.add_input(p, t);
    n.add_output(t, q);
    return n;
  };
  EXPECT_EQ(build(1).structure_hash(), build(1).structure_hash());
  EXPECT_NE(build(1).structure_hash(), build(2).structure_hash());

  ::lod::lod::FloorControl f1({"ann", "bob"});
  ::lod::lod::FloorControl f2({"ann", "bob"});
  ::lod::lod::FloorControl f3({"ann", "eve"});
  EXPECT_EQ(f1.net().structure_hash(), f2.net().structure_hash());
  EXPECT_NE(f1.net().structure_hash(), f3.net().structure_hash());
}

// --- FloorControl snapshot/restore ------------------------------------------------

TEST(FloorState, SnapshotRestoreReplicatesHolderAndQueue) {
  ::lod::lod::FloorControl a({"ann", "bob", "cyd"});
  ASSERT_TRUE(a.request("ann"));  // granted at once
  ASSERT_TRUE(a.request("bob"));  // queued
  ASSERT_TRUE(a.request("cyd"));  // queued
  ASSERT_EQ(a.holder(), "ann");

  ::lod::lod::FloorControl b({"ann", "bob", "cyd"});
  b.restore(a.state());
  EXPECT_EQ(b.holder(), "ann");
  EXPECT_EQ(b.waiting(), a.waiting());
  EXPECT_EQ(b.marking(), a.marking());
  // The restored replica keeps operating correctly from the new state.
  ASSERT_TRUE(b.release("ann"));
  EXPECT_EQ(b.holder(), "bob");
}

TEST(FloorState, RestoreValidatesSnapshotAgainstTheNet) {
  ::lod::lod::FloorControl f({"ann", "bob"});
  ::lod::lod::FloorControl::State bad;
  bad.marking = {1};  // wrong size
  EXPECT_THROW(f.restore(bad), std::invalid_argument);

  auto s = f.state();
  s.fifo = {"ann", "ann"};  // duplicate queue entry
  EXPECT_THROW(f.restore(s), std::invalid_argument);
  s.fifo = {"zed"};  // unknown user
  EXPECT_THROW(f.restore(s), std::invalid_argument);
  s.fifo.clear();
  s.marking[0] = 9;  // floor_free over its capacity of 1
  EXPECT_THROW(f.restore(s), std::invalid_argument);
}

// --- SyncAgent over the simulated fabric ------------------------------------------

struct SyncAgentTest : ::testing::Test {
  net::Simulator sim;
  net::Network network{sim, 99};
  net::HostId authority_host{};
  net::HostId replica_host{};

  core::Marking m_auth{1, 0, 0};
  core::Marking m_repl{1, 0, 0};
  streaming::PlayerSyncCursor c_auth;
  streaming::PlayerSyncCursor c_repl;
  SessionState s_auth;
  SessionState s_repl;
  std::unique_ptr<SyncAgent> authority;
  std::unique_ptr<SyncAgent> replica;

  SyncAgentTest() {
    authority_host = network.add_host("teacher");
    replica_host = network.add_host("student");
    net::LinkConfig lan;
    lan.bandwidth_bps = 10'000'000;
    lan.latency = msec(2);
    network.add_link(authority_host, replica_host, lan);

    register_marking_block(s_auth, 1, "marking", &m_auth);
    register_player_cursor_block(s_auth, 2, "cursor", &c_auth);
    register_marking_block(s_repl, 1, "marking", &m_repl);
    register_player_cursor_block(s_repl, 2, "cursor", &c_repl);
  }

  void make_agents(std::uint64_t auth_structure = 42,
                   std::uint64_t repl_structure = 42) {
    SyncConfig a;
    a.authoritative = true;
    a.structure = auth_structure;
    authority = std::make_unique<SyncAgent>(network, authority_host, s_auth, a);
    authority->add_peer(replica_host);

    SyncConfig r;
    r.authoritative = false;
    r.structure = repl_structure;
    replica = std::make_unique<SyncAgent>(network, replica_host, s_repl, r);
  }

  void run_for(SimDuration d) { sim.run_until(network.now() + d); }
};

TEST_F(SyncAgentTest, AgreeingSitesNeverMismatch) {
  make_agents();
  authority->start();
  replica->start();
  run_for(sec(5));
  EXPECT_GT(replica->stats().gossip_rx, 5u);
  EXPECT_EQ(replica->stats().mismatches, 0u);
  EXPECT_EQ(replica->stats().resync_requests, 0u);
  EXPECT_FALSE(replica->detector().desynced());
}

TEST_F(SyncAgentTest, InjectedDivergenceHealsViaDeltaTransfer) {
  make_agents();
  std::uint64_t resynced_epoch = 0;
  std::size_t resynced_blocks = 0;
  replica->on_resync([&](std::uint64_t e, std::size_t blocks) {
    resynced_epoch = e;
    resynced_blocks = blocks;
  });
  authority->start();
  replica->start();

  network.schedule_after(sec(1), [this] {
    m_repl[2] = 7;  // the replica silently drifts
  });
  run_for(sec(8));

  const SyncStats& st = replica->stats();
  EXPECT_GT(st.mismatches, 0u);
  EXPECT_GE(st.resync_requests, 1u);
  EXPECT_GE(st.resync_ok, 1u);
  EXPECT_GE(authority->stats().resync_serves, 1u);
  EXPECT_GT(resynced_blocks, 0u);
  EXPECT_GT(resynced_epoch, 0u);
  // Healed: replica matches the authority again and says so.
  EXPECT_EQ(m_repl, m_auth);
  EXPECT_EQ(s_repl.checksum(), s_auth.checksum());
  EXPECT_FALSE(replica->detector().desynced());
  // Delta economy: the transfer moved only the drifted block, well under a
  // full image.
  EXPECT_LT(st.delta_bytes, s_auth.full_size_bytes());
}

TEST_F(SyncAgentTest, StructureGuardRefusesForeignState) {
  make_agents(42, 43);  // replica runs a DIFFERENT net structure
  authority->start();
  replica->start();
  network.schedule_after(sec(1), [this] { m_repl[2] = 7; });
  run_for(sec(6));
  EXPECT_GT(replica->stats().structure_mismatches, 0u);
  EXPECT_EQ(replica->stats().resync_requests, 0u);
  EXPECT_NE(m_repl, m_auth);  // nothing was transferred
}

TEST_F(SyncAgentTest, SyncMetricsAreRegisteredPerHost) {
  make_agents();
  authority->start();
  replica->start();
  run_for(sec(3));
  const obs::Snapshot snap = sim.obs().metrics().snapshot();
  EXPECT_GT(snap.counter("lod.sync.epochs",
                         {{"host", std::to_string(replica_host)}}),
            0u);
  EXPECT_GT(snap.counter("lod.sync.gossip_tx",
                         {{"host", std::to_string(authority_host)}}),
            0u);
}

// --- mid-playout serialization (the ROADMAP item-4 foundation contract) -----------

TEST(SyncMidPlayout, SerializeDeserializeSerializeIsByteIdentical) {
  net::Simulator sim;
  net::Network network(sim, 1234);
  const auto server_host = network.add_host("server");
  const auto client_host = network.add_host("client");
  net::LinkConfig lan;
  lan.bandwidth_bps = 10'000'000;
  lan.latency = msec(2);
  network.add_link(server_host, client_host, lan);

  streaming::StreamingServer server(network, server_host);
  streaming::EncodeJob job;
  job.profile = *media::find_profile("Video 250k DSL/cable");
  job.title = "Lecture";
  job.preroll = msec(2000);
  media::LectureVideoSource v(sec(30), job.profile.fps, job.profile.width,
                              job.profile.height, 7);
  media::LectureAudioSource a(sec(30), job.profile.audio_sample_rate());
  server.publish("lec", streaming::encode_lecture(job, v, a, {}).file);

  streaming::PlayerConfig cfg;
  cfg.model = streaming::SyncModel::kEtpn;
  cfg.ctl_port = 5000;
  cfg.data_port = 5001;
  cfg.web_server = server_host;
  streaming::Player player(network, client_host, cfg);
  player.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(10).us});
  ASSERT_TRUE(player.playing());
  const SimDuration pos_before = player.position();
  ASSERT_GT(pos_before.us, 0);

  ::lod::lod::FloorControl floor({"teacher", "student"});
  floor.request("teacher");

  SessionState state;
  register_player_block(state, 1, "player", &player);
  register_floor_block(state, 2, "floor", &floor);
  state.refresh();

  const std::vector<std::byte> img1 = state.serialize_full();
  const auto res = state.apply(span_of(img1));  // deserialize into the session
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.checksum_match);
  const std::vector<std::byte> img2 = state.serialize_full();
  EXPECT_EQ(img1, img2);

  // Re-applying its own cursor did not move the playhead.
  EXPECT_EQ(player.position().us, pos_before.us);
  EXPECT_EQ(floor.holder(), "teacher");
}

}  // namespace
}  // namespace lod::sync
