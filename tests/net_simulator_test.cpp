#include "lod/net/network.hpp"
#include "lod/net/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "lod/net/clock.hpp"
#include "lod/net/rng.hpp"

namespace lod::net {
namespace {

TEST(SimTime, Arithmetic) {
  SimTime t{1000};
  EXPECT_EQ((t + usec(500)).us, 1500);
  EXPECT_EQ((t - usec(500)).us, 500);
  EXPECT_EQ((SimTime{3000} - t).us, 2000);
  t += msec(1);
  EXPECT_EQ(t.us, 2000);
}

TEST(SimTime, DurationHelpers) {
  EXPECT_EQ(usec(7).us, 7);
  EXPECT_EQ(msec(7).us, 7000);
  EXPECT_EQ(sec(7).us, 7'000'000);
  EXPECT_EQ(secf(1.5).us, 1'500'000);
  EXPECT_EQ(secf(-1.5).us, -1'500'000);
  EXPECT_DOUBLE_EQ(sec(2).seconds(), 2.0);
}

TEST(SimTime, ToString) {
  EXPECT_EQ(to_string(usec(12)), "12us");
  EXPECT_EQ(to_string(msec(37)), "37.000ms");
  EXPECT_EQ(to_string(secf(1.25)), "1.250s");
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now().us, 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  sim.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  sim.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().us, 300);
}

TEST(Simulator, SameInstantIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime{50}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  sim.schedule_at(SimTime{100}, [] {});
  sim.run();
  bool fired = false;
  sim.schedule_at(SimTime{10}, [&] { fired = true; });  // in the past
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().us, 100);  // clock never went backwards
}

TEST(Simulator, HandlersCanScheduleMore) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.schedule_after(msec(10), chain);
  };
  sim.schedule_after(msec(10), chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now().us, 50'000);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.schedule_at(SimTime{100}, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulator, CancelFiredIdIsNoop) {
  Simulator sim;
  EventId id = sim.schedule_at(SimTime{10}, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFiredIdDoesNotTouchLaterEvents) {
  // A stale id must stay dead: cancelling it after it fired must not
  // affect events scheduled afterwards, even ones queued at the same time.
  Simulator sim;
  EventId stale = sim.schedule_at(SimTime{10}, [] {});
  sim.run();
  bool fired = false;
  sim.schedule_at(SimTime{20}, [&] { fired = true; });
  EXPECT_FALSE(sim.cancel(stale));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, HandlerCanCancelSameInstantSibling) {
  // Two events due at the same instant: the first handler cancels the
  // second before the dispatcher reaches it. The sibling must not fire.
  Simulator sim;
  bool sibling_fired = false;
  EventId sibling = 0;
  sim.schedule_at(SimTime{100}, [&] { EXPECT_TRUE(sim.cancel(sibling)); });
  sibling = sim.schedule_at(SimTime{100}, [&] { sibling_fired = true; });
  sim.run();
  EXPECT_FALSE(sibling_fired);
  EXPECT_EQ(sim.now().us, 100);
}

TEST(Simulator, CancelKeepsFifoOrderForSameInstantSurvivors) {
  // Cancelling the middle of three same-instant events must preserve the
  // insertion order of the survivors, and an event inserted *from a
  // handler* at the same instant runs after all previously queued ones.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{50}, [&] {
    order.push_back(1);
    sim.schedule_at(SimTime{50}, [&] { order.push_back(4); });
  });
  EventId middle = sim.schedule_at(SimTime{50}, [&] { order.push_back(2); });
  sim.schedule_at(SimTime{50}, [&] { order.push_back(3); });
  EXPECT_TRUE(sim.cancel(middle));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(sim.now().us, 50);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(SimTime{100}, [&] { fired.push_back(1); });
  sim.schedule_at(SimTime{200}, [&] { fired.push_back(2); });
  sim.schedule_at(SimTime{300}, [&] { fired.push_back(3); });
  sim.run_until(SimTime{200});
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now().us, 200);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(SimTime{5000});
  EXPECT_EQ(sim.now().us, 5000);
}

TEST(Simulator, RunStepsBoundsExecution) {
  Simulator sim;
  int n = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_at(SimTime{i}, [&] { ++n; });
  EXPECT_EQ(sim.run_steps(4), 4u);
  EXPECT_EQ(n, 4);
}

TEST(Simulator, PendingCountsUncancelled) {
  Simulator sim;
  EventId a = sim.schedule_at(SimTime{10}, [] {});
  sim.schedule_at(SimTime{20}, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule_at(SimTime{100}, [] {});
  sim.run();
  bool fired = false;
  sim.schedule_after(usec(-50), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().us, 100);
}

// --- HostClock ---------------------------------------------------------------

TEST(HostClock, IdentityByDefault) {
  HostClock c;
  EXPECT_EQ(c.local_time(SimTime{12345}).us, 12345);
  EXPECT_EQ(c.true_time(SimTime{12345}).us, 12345);
}

TEST(HostClock, OffsetShiftsLocalTime) {
  HostClock c(msec(50), 0.0);
  EXPECT_EQ(c.local_time(SimTime{0}).us, 50'000);
  EXPECT_EQ(c.local_time(sec(1).us == 0 ? SimTime{0} : SimTime{1'000'000}).us,
            1'050'000);
}

TEST(HostClock, DriftAccumulates) {
  HostClock c({}, 100.0);  // 100 ppm fast
  // After 1000 simulated seconds the clock is 100 ms ahead.
  const SimTime t{1'000'000'000};
  EXPECT_NEAR(static_cast<double>(c.local_time(t).us - t.us), 100'000.0, 1.0);
}

TEST(HostClock, TrueTimeInvertsLocalTime) {
  HostClock c(msec(-20), 37.5);
  const SimTime t{987'654'321};
  const SimTime local = c.local_time(t);
  EXPECT_NEAR(static_cast<double>(c.true_time(local).us),
              static_cast<double>(t.us), 2.0);
}

TEST(HostClock, AdjustAppliesCorrection) {
  HostClock c(msec(30), 0.0);
  c.adjust(msec(-30));
  EXPECT_EQ(c.local_time(SimTime{1000}).us, 1000);
}

// --- Rng ----------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(2);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  EXPECT_FALSE(r.bernoulli(-0.5));
  EXPECT_TRUE(r.bernoulli(1.5));
}

TEST(Rng, JitterZeroSigmaIsZero) {
  Rng r(3);
  EXPECT_EQ(r.jitter(usec(0)).us, 0);
  EXPECT_EQ(r.jitter(usec(-5)).us, 0);
}

TEST(Rng, JitterBoundedByFourSigma) {
  Rng r(4);
  for (int i = 0; i < 10'000; ++i) {
    const auto j = r.jitter(msec(1));
    EXPECT_LE(std::abs(j.us), 4000);
  }
}

TEST(Rng, JitterRoughlyZeroMean) {
  Rng r(5);
  std::int64_t total = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) total += r.jitter(msec(1)).us;
  EXPECT_LT(std::abs(total / n), 50);  // mean well under sigma/20
}

TEST(Rng, ExponentialMeanApproximatesParameter) {
  Rng r(6);
  std::int64_t total = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) total += r.exponential(msec(10)).us;
  const double mean = static_cast<double>(total) / n;
  EXPECT_NEAR(mean, 10'000.0, 500.0);
}


TEST(Simulator, PendingNeverUnderflowsWhenHandlersCancelMidRun) {
  // The invariant behind pending() == queue size - cancelled size: every id
  // in the cancelled set has exactly one live queue entry, including while
  // handlers cancel (and double-cancel, and cancel already-fired ids) from
  // INSIDE run_until. An underflow would show up as a wrapped, astronomically
  // large pending() value.
  Simulator sim;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(sim.schedule_at(SimTime{10 * (i + 1)}, [&] { ++fired; }));
  }
  // At t=5 (before any target fires): cancel one event twice and a second
  // one once; pending must account each cancellation exactly once.
  sim.schedule_at(SimTime{5}, [&] {
    EXPECT_TRUE(sim.cancel(ids[7]));
    EXPECT_FALSE(sim.cancel(ids[7]));  // double-cancel: no-op
    EXPECT_TRUE(sim.cancel(ids[12]));
    // 20 targets + the t=15/t=55 helpers + sibling still queued, minus the 2
    // cancellations just made.
    EXPECT_EQ(sim.pending(), 21u);
  });
  // At t=15 (after ids[0] fired): cancelling the fired id must be a no-op
  // and must not disturb the count; cancelling a same-instant sibling and a
  // future event from inside a handler keeps the books straight.
  sim.schedule_at(SimTime{15}, [&] {
    EXPECT_FALSE(sim.cancel(ids[0]));  // already fired
    EXPECT_TRUE(sim.cancel(ids[15]));
    EXPECT_LT(sim.pending(), 100u);  // no size_t wraparound
  });
  // Same-instant pair where the first cancels the second AND schedules a
  // replacement that cancels itself -- the cancelled set may briefly hold
  // entries swept lazily by the popper.
  EventId sibling{};
  sim.schedule_at(SimTime{55}, [&] {
    EXPECT_TRUE(sim.cancel(sibling));
    const EventId self = sim.schedule_at(SimTime{56}, [&] { ++fired; });
    EXPECT_TRUE(sim.cancel(self));
    EXPECT_LT(sim.pending(), 100u);
  });
  sibling = sim.schedule_at(SimTime{55}, [&] { ++fired; });

  std::size_t steps = 0;
  while (sim.pending() > 0) {
    ASSERT_LT(sim.pending(), 100u) << "pending() underflowed";
    ASSERT_LT(++steps, 1000u) << "runaway";
    sim.run_steps(1);
  }
  EXPECT_EQ(sim.pending(), 0u);
  // 20 targets minus the 3 cancelled (7, 12, 15); sibling and the
  // self-cancelling replacement never fire.
  EXPECT_EQ(fired, 17);
}

// --- timing wheel ----------------------------------------------------------------
// The simulator's queue is a hierarchical timing wheel with a far-future heap
// (timing_wheel.hpp). These tests pin the contract the wheel must preserve
// from the binary heap it replaced: strict (time, insertion-seq) firing order
// across every level, cascade boundary, and the heap spill.

TEST(TimingWheel, MatchesReferenceOrderingDifferential) {
  // Pseudo-random schedule spanning all four levels AND the far-future heap
  // (delays up to 2^33 us > the 2^32 us wheel horizon), with heavy same-time
  // collisions. The firing order must equal a stable sort by time — i.e.
  // exactly what the (time, seq) heap produced.
  Simulator sim;
  std::mt19937 rng(42);
  const int n = 4000;
  std::vector<std::int64_t> at(n);
  std::vector<int> fired;
  fired.reserve(n);
  for (int i = 0; i < n; ++i) {
    switch (rng() % 4) {
      case 0: at[i] = static_cast<std::int64_t>(rng() % 256); break;        // L0
      case 1: at[i] = static_cast<std::int64_t>(rng() % 65'536); break;     // L1
      case 2: at[i] = static_cast<std::int64_t>(rng() % 50) * 1'000; break; // dups
      default:                                                              // L2+..heap
        at[i] = static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(rng()) << 12) % (1ULL << 33));
    }
    sim.schedule_at(SimTime{at[i]}, [&fired, i] { fired.push_back(i); });
  }
  EXPECT_EQ(sim.run(), static_cast<std::size_t>(n));

  std::vector<int> expect(n);
  for (int i = 0; i < n; ++i) expect[i] = i;
  std::stable_sort(expect.begin(), expect.end(),
                   [&](int x, int y) { return at[x] < at[y]; });
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(sim.now().us, *std::max_element(at.begin(), at.end()));
}

TEST(TimingWheel, FarFutureEventsBeyondHorizonFire) {
  // > 2^32 us (~71.6 min) lands in the far heap, refilled into the wheel at
  // horizon boundaries. Order across the refill must hold.
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_after(sec(3*3600), [&] { fired.push_back(3); });
  sim.schedule_after(sec(2*3600), [&] { fired.push_back(2); });
  sim.schedule_after(usec(1), [&] { fired.push_back(0); });
  sim.schedule_after(sec(3600), [&] { fired.push_back(1); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now().us, sec(3*3600).us);
}

TEST(TimingWheel, CancelFarFutureEvent) {
  Simulator sim;
  int fired = 0;
  const EventId doomed = sim.schedule_after(sec(2*3600), [&] { fired += 10; });
  sim.schedule_after(sec(2*3600), [&] { fired += 1; });
  EXPECT_TRUE(sim.cancel(doomed));
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(TimingWheel, SameInstantInsertionOrderAcrossCascades) {
  // Two events at one far instant scheduled in a known order, with enough
  // intervening traffic to force cascades between their insertions.
  Simulator sim;
  std::vector<int> fired;
  const SimTime t{70'000'000};  // level 3 territory
  sim.schedule_at(t, [&] { fired.push_back(1); });
  for (int i = 0; i < 32; ++i) {
    sim.schedule_after(usec(i * 777), [] {});
  }
  sim.schedule_at(t, [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(TimingWheel, RunUntilKeepsRelativeDelaysAligned) {
  // run_until advances the wheel cursor in lockstep with the clock, so a
  // schedule_after() issued afterwards fires at exactly now + delay.
  Simulator sim;
  sim.run_until(SimTime{123'456'789});
  std::int64_t fired_at = -1;
  sim.schedule_after(usec(5), [&] { fired_at = sim.now().us; });
  sim.run();
  EXPECT_EQ(fired_at, 123'456'794);
}

TEST(TimingWheel, HandlersScheduleAtCurrentInstantAfterCascade) {
  // An event that fires after a cascade schedules a same-instant follow-up;
  // it must run at the same time, after the current handler, before later
  // events.
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_after(usec(100'000), [&] {
    fired.push_back(1);
    sim.schedule_after(usec(0), [&] { fired.push_back(2); });
  });
  sim.schedule_after(usec(100'001), [&] { fired.push_back(3); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().us, 100'001);
}

}  // namespace
}  // namespace lod::net
