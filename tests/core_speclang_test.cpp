#include "lod/core/speclang.hpp"

#include <gtest/gtest.h>

#include "lod/core/analysis.hpp"
#include "lod/net/rng.hpp"

namespace lod::core {
namespace {

using net::msec;
using net::sec;

TEST(SpecLang, ParsesLeafObject) {
  const auto s = parse_spec("video intro (30s)");
  ASSERT_TRUE(s.is_leaf());
  EXPECT_EQ(s.name(), "intro");
  EXPECT_EQ(s.duration(), sec(30));
  EXPECT_EQ(s.binding().media_type, 0);
  EXPECT_EQ(s.binding().required_bps, 0);
}

TEST(SpecLang, ParsesRateAnnotation) {
  const auto s = parse_spec("audio talk (10m, 64kbps)");
  EXPECT_EQ(s.duration(), sec(600));
  EXPECT_EQ(s.binding().media_type, 1);
  EXPECT_EQ(s.binding().required_bps, 64'000);
}

TEST(SpecLang, DurationUnits) {
  EXPECT_EQ(parse_spec("text t (250ms)").duration(), msec(250));
  EXPECT_EQ(parse_spec("text t (2m)").duration(), sec(120));
  EXPECT_EQ(parse_spec("text t (1h)").duration(), sec(3600));
  EXPECT_EQ(parse_spec("text t (1.5s)").duration(), msec(1500));
}

TEST(SpecLang, SeqFoldsWithMeets) {
  const auto s = parse_spec(
      "seq { image a (10s)  image b (20s)  image c (30s) }");
  EXPECT_EQ(s.duration(), sec(60));
  const auto iv = s.expected_intervals();
  EXPECT_EQ(iv.at("a").start, sec(0));
  EXPECT_EQ(iv.at("b").start, sec(10));
  EXPECT_EQ(iv.at("c").start, sec(30));
}

TEST(SpecLang, GapBecomesBefore) {
  const auto s = parse_spec("seq { image a (10s) gap (5s) image b (10s) }");
  EXPECT_EQ(s.duration(), sec(25));
  EXPECT_EQ(s.expected_intervals().at("b").start, sec(15));
}

TEST(SpecLang, ConsecutiveGapsAccumulate) {
  const auto s =
      parse_spec("seq { image a (1s) gap (2s) gap (3s) image b (1s) }");
  EXPECT_EQ(s.duration(), sec(7));
}

TEST(SpecLang, ParAndEquals) {
  const auto p = parse_spec("par { video v (30s) audio a (10s) }");
  EXPECT_EQ(p.duration(), sec(30));
  EXPECT_EQ(p.relation(), Relation::kStarts);

  const auto e = parse_spec("equals { video v (30s) audio a (30s) }");
  EXPECT_EQ(e.relation(), Relation::kEquals);
  EXPECT_THROW(parse_spec("equals { video v (30s) audio a (10s) }"),
               std::invalid_argument);
}

TEST(SpecLang, DuringAndOverlapsTakeOffsets) {
  const auto d = parse_spec("during (5s) { video v (60s) image cap (10s) }");
  EXPECT_EQ(d.relation(), Relation::kDuring);
  EXPECT_EQ(d.expected_intervals().at("cap").start, sec(5));

  const auto o = parse_spec("overlaps (8s) { video a (10s) video b (10s) }");
  EXPECT_EQ(o.duration(), sec(18));
}

TEST(SpecLang, Finishes) {
  const auto f = parse_spec("finishes { video v (60s) text credits (10s) }");
  EXPECT_EQ(f.expected_intervals().at("credits").start, sec(50));
}

TEST(SpecLang, NestedLectureSpecCompilesAndPlays) {
  const auto s = parse_spec(R"(
    # the quickstart lecture, as its author would write it
    seq {
      video intro (30s, 250kbps)
      gap (2s)
      par {
        video talk (10m, 250kbps)
        seq { image s1 (4m)  image s2 (6m) }
      }
      annotation outro (15s)
    }
  )");
  EXPECT_EQ(s.duration(), sec(30 + 2 + 600 + 15));
  EXPECT_EQ(s.object_count(), 5u);

  const auto compiled = build_ocpn(s);
  const auto trace = play(compiled.net, compiled.initial_marking());
  EXPECT_EQ(trace.makespan, s.duration());
  EXPECT_EQ(trace.interval_of(compiled.net, "s2")->end, sec(632));
}

TEST(SpecLang, CommentsAndWhitespaceIgnored) {
  const auto s = parse_spec(
      "# header\n  seq{video a(1s)# tail comment\n image b (2s)}\n");
  EXPECT_EQ(s.duration(), sec(3));
}

// --- errors -----------------------------------------------------------------------

TEST(SpecLangErrors, ReportLineAndColumn) {
  try {
    parse_spec("seq {\n  video a (10s)\n  bogus b (1s)\n}");
    FAIL() << "expected SpecParseError";
  } catch (const SpecParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(SpecLangErrors, RejectMalformedInput) {
  EXPECT_THROW(parse_spec(""), SpecParseError);
  EXPECT_THROW(parse_spec("video"), SpecParseError);
  EXPECT_THROW(parse_spec("video x"), SpecParseError);
  EXPECT_THROW(parse_spec("video x (10)"), SpecParseError);    // no unit
  EXPECT_THROW(parse_spec("video x (10s"), SpecParseError);    // unclosed
  EXPECT_THROW(parse_spec("video x (10s) junk"), SpecParseError);
  EXPECT_THROW(parse_spec("seq { }"), SpecParseError);
  EXPECT_THROW(parse_spec("seq { gap (1s) video x (1s) }"), SpecParseError);
  EXPECT_THROW(parse_spec("par { video a (1s) }"), SpecParseError);
  EXPECT_THROW(parse_spec("par { video a (1s) video b (1s) video c (1s) }"),
               SpecParseError);
  EXPECT_THROW(parse_spec("video x (10s, 64s)"), SpecParseError);  // bad rate
  EXPECT_THROW(parse_spec("@!"), SpecParseError);
}

TEST(SpecLangErrors, UnsatisfiableConstraintsSurfaceAsInvalidArgument) {
  EXPECT_THROW(parse_spec("during (50s) { video a (10s) video b (10s) }"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("finishes { video a (5s) video b (10s) }"),
               std::invalid_argument);
}

// --- formatting round trip -----------------------------------------------------------

TEST(SpecLangFormat, RoundTripsCanonicalText) {
  const char* kText = R"(seq {
  video intro (30s, 250kbps)
  gap (2s)
  par {
    video talk (600s, 250kbps)
    seq {
      image s1 (240s)
      image s2 (360s)
    }
  }
  annotation outro (15s)
}
)";
  const auto s = parse_spec(kText);
  const std::string formatted = format_spec(s);
  EXPECT_EQ(formatted, kText);
  // And the formatted text parses back to an identical schedule.
  const auto s2 = parse_spec(formatted);
  EXPECT_EQ(s2.duration(), s.duration());
  const auto a = s.expected_intervals();
  const auto b = s2.expected_intervals();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, iv] : a) {
    EXPECT_EQ(b.at(name).start, iv.start) << name;
    EXPECT_EQ(b.at(name).end, iv.end) << name;
  }
}

TEST(SpecLangFormat, MillisecondDurations) {
  const auto s = parse_spec("video blip (250ms)");
  EXPECT_NE(format_spec(s).find("250ms"), std::string::npos);
  EXPECT_EQ(parse_spec(format_spec(s)).duration(), msec(250));
}

/// Property: random well-formed specs survive format -> parse unchanged.
class SpecLangRoundTrip : public ::testing::TestWithParam<int> {};

TemporalSpec random_spec(net::Rng& rng, int depth, int& counter) {
  if (depth == 0 || rng.bernoulli(0.35)) {
    return TemporalSpec::object(
        "o" + std::to_string(counter++),
        static_cast<std::uint8_t>(rng.uniform_int(0, 4)),
        sec(rng.uniform_int(1, 50)),
        rng.bernoulli(0.3) ? rng.uniform_int(1, 500) * 1000 : 0);
  }
  auto a = random_spec(rng, depth - 1, counter);
  auto b = random_spec(rng, depth - 1, counter);
  switch (rng.uniform_int(0, 3)) {
    case 0:
      return TemporalSpec::relate(Relation::kBefore, std::move(a),
                                  std::move(b), sec(rng.uniform_int(0, 9)));
    case 1:
      return TemporalSpec::relate(Relation::kMeets, std::move(a), std::move(b));
    case 2:
      return TemporalSpec::relate(Relation::kStarts, std::move(a),
                                  std::move(b));
    default:
      if (a.duration() >= b.duration()) {
        return TemporalSpec::relate(Relation::kFinishes, std::move(a),
                                    std::move(b));
      }
      return TemporalSpec::relate(Relation::kFinishes, std::move(b),
                                  std::move(a));
  }
}

TEST_P(SpecLangRoundTrip, FormatParseIdentity) {
  net::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 11);
  int counter = 0;
  const auto s = random_spec(rng, 4, counter);
  const auto s2 = parse_spec(format_spec(s));
  EXPECT_EQ(s2.duration(), s.duration());
  const auto a = s.expected_intervals();
  const auto b = s2.expected_intervals();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, iv] : a) {
    ASSERT_TRUE(b.count(name)) << name;
    EXPECT_EQ(b.at(name).start, iv.start) << name;
    EXPECT_EQ(b.at(name).end, iv.end) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecLangRoundTrip, ::testing::Range(0, 15));

// --- T-invariants (new analysis) ------------------------------------------------------

TEST(TInvariant, CycleHasUnitInvariant) {
  PetriNet net;
  const auto a = net.add_place("a");
  const auto b = net.add_place("b");
  const auto t1 = net.add_transition("t1");
  const auto t2 = net.add_transition("t2");
  net.add_input(a, t1);
  net.add_output(t1, b);
  net.add_input(b, t2);
  net.add_output(t2, a);
  EXPECT_TRUE(is_structural_t_invariant(net, {1, 1}));
  EXPECT_TRUE(is_structural_t_invariant(net, {3, 3}));
  EXPECT_FALSE(is_structural_t_invariant(net, {1, 2}));
  EXPECT_FALSE(is_structural_t_invariant(net, {1}));  // wrong size
}

TEST(TInvariant, MarkingDeltaMatchesFiring) {
  PetriNet net;
  const auto p = net.add_place("p");
  const auto q = net.add_place("q");
  const auto t = net.add_transition("t");
  net.add_input(p, t, 2);
  net.add_output(t, q, 3);
  const auto d = marking_delta(net, {4});
  EXPECT_EQ(d[p], -8);
  EXPECT_EQ(d[q], 12);
}

}  // namespace
}  // namespace lod::core
