// Unit tests for the observability layer: the metrics registry (handles,
// labels, snapshots/diffs) and the trace sink (ring buffer, JSONL, spans).

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "lod/obs/hub.hpp"
#include "lod/obs/json.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/obs/trace.hpp"

using namespace lod::obs;

// --- metrics ----------------------------------------------------------------------

TEST(Metrics, NullHandlesAreInertAndFalsy) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(5);
  h.observe(42);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.data(), nullptr);
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_FALSE(static_cast<bool>(h));
}

TEST(Metrics, CounterAndGaugeSemantics) {
  MetricsRegistry reg;
  Counter c = reg.counter("lod.test.count");
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);

  Gauge g = reg.gauge("lod.test.active");
  g.set(3);
  g.add(-1);
  EXPECT_EQ(g.value(), 2);
}

TEST(Metrics, SameIdentityResolvesToSameCell) {
  MetricsRegistry reg;
  Counter a = reg.counter("lod.test.n", {{"host", "1"}, {"session", "2"}});
  // Label order at the call site must not create a distinct series.
  Counter b = reg.counter("lod.test.n", {{"session", "2"}, {"host", "1"}});
  a.inc(4);
  EXPECT_EQ(b.value(), 4u);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(Metrics, LabelCardinalityCreatesDistinctSeries) {
  MetricsRegistry reg;
  for (int host = 0; host < 3; ++host) {
    reg.counter("lod.test.n", {{"host", std::to_string(host)}}).inc();
  }
  reg.counter("lod.test.n").inc(5);  // unlabeled is its own series
  EXPECT_EQ(reg.series_count(), 4u);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("lod.test.n", {{"host", "1"}}), 1u);
  EXPECT_EQ(snap.counter("lod.test.n"), 5u);
  EXPECT_EQ(snap.total("lod.test.n"), 8u);
}

TEST(Metrics, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("lod.test.x");
  EXPECT_THROW(reg.gauge("lod.test.x"), std::logic_error);
  EXPECT_THROW(reg.histogram("lod.test.x"), std::logic_error);
}

TEST(Metrics, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  Histogram h =
      reg.histogram("lod.test.lat", std::vector<std::int64_t>{10, 100, 1000});
  h.observe(5);     // <= 10
  h.observe(10);    // <= 10 (bounds are inclusive upper bounds)
  h.observe(50);    // <= 100
  h.observe(5000);  // overflow
  const HistogramData* d = h.data();
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->counts.size(), 4u);
  EXPECT_EQ(d->counts[0], 2u);
  EXPECT_EQ(d->counts[1], 1u);
  EXPECT_EQ(d->counts[2], 0u);
  EXPECT_EQ(d->counts[3], 1u);
  EXPECT_EQ(d->count, 4u);
  EXPECT_EQ(d->sum, 5065);
  EXPECT_EQ(d->min, 5);
  EXPECT_EQ(d->max, 5000);
  EXPECT_DOUBLE_EQ(d->mean(), 5065.0 / 4.0);
  EXPECT_EQ(d->quantile_bound(0.5), 10);
  // The overflow bucket reports the observed max.
  EXPECT_EQ(d->quantile_bound(1.0), 5000);
}

TEST(Metrics, DefaultHistogramUsesLatencyBuckets) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("lod.test.lat");
  ASSERT_NE(h.data(), nullptr);
  EXPECT_EQ(h.data()->bounds, MetricsRegistry::latency_buckets_us());
}

TEST(Metrics, RetireRemovesSeriesButKeepsHandlesValid) {
  MetricsRegistry reg;
  Counter total = reg.counter("lod.server.sessions_opened");
  Counter per = reg.counter("lod.server.session.packets_sent",
                            {{"host", "0"}, {"session", "1"}});
  Counter other = reg.counter("lod.server.session.packets_sent",
                              {{"host", "0"}, {"session", "2"}});
  total.inc();
  per.inc(5);
  other.inc(7);
  ASSERT_EQ(reg.series_count(), 3u);

  EXPECT_EQ(reg.retire("lod.server.session.", {{"session", "1"}}), 1u);
  EXPECT_EQ(reg.series_count(), 2u);
  EXPECT_EQ(reg.retired_count(), 1u);
  // The aggregate and the other session survive; the retired series left
  // the snapshot.
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("lod.server.sessions_opened"), 1u);
  EXPECT_EQ(snap.counter("lod.server.session.packets_sent",
                         {{"host", "0"}, {"session", "2"}}),
            7u);
  EXPECT_EQ(snap.counter("lod.server.session.packets_sent",
                         {{"host", "0"}, {"session", "1"}}),
            0u);
  // The old handle still points at a live cell (the graveyard), and a
  // re-request mints a fresh cell starting from zero.
  per.inc();
  EXPECT_EQ(per.value(), 6u);
  Counter fresh = reg.counter("lod.server.session.packets_sent",
                              {{"host", "0"}, {"session", "1"}});
  EXPECT_EQ(fresh.value(), 0u);
  EXPECT_EQ(reg.series_count(), 3u);
}

TEST(Metrics, RetireBoundsCardinalityAcrossSessionChurn) {
  MetricsRegistry reg;
  Counter opened = reg.counter("lod.server.sessions_opened");
  for (int i = 0; i < 1000; ++i) {
    const Labels id{{"host", "0"}, {"session", std::to_string(i)}};
    reg.counter("lod.server.session.packets_sent", id).inc(3);
    reg.counter("lod.server.session.bytes_sent", id).inc(400);
    opened.inc();
    // Session close: per-session series retire, aggregates stay.
    EXPECT_EQ(reg.retire("lod.server.session.", id), 2u);
    EXPECT_LE(reg.series_count(), 3u);
  }
  EXPECT_EQ(reg.series_count(), 1u);  // just the aggregate
  EXPECT_EQ(reg.retired_count(), 2000u);
  EXPECT_EQ(reg.snapshot().counter("lod.server.sessions_opened"), 1000u);
}

// --- handle semantics ------------------------------------------------------------
// The handle API is the hot path; the string API is the cold resolver. These
// pin the contract between them across kind conflicts, retirement, and
// re-registration.

TEST(Metrics, HandleAndStringWritesLandInTheSameCell) {
  MetricsRegistry reg;
  const Labels at{{"host", "2"}};
  const Counter h = reg.counter("lod.test.mixed", at);
  h.inc(3);                              // handle write
  reg.counter("lod.test.mixed", at).inc(4);  // string-API write
  h.inc(5);
  // One series, one value: a snapshot cannot tell the two paths apart.
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("lod.test.mixed", at), 12u);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(Metrics, KindConflictThrowsRegardlessOfResolutionOrder) {
  MetricsRegistry reg;
  reg.counter("lod.test.kc");
  EXPECT_THROW(reg.gauge("lod.test.kc"), std::logic_error);
  EXPECT_THROW(reg.histogram("lod.test.kc"), std::logic_error);
  reg.gauge("lod.test.kc2");
  EXPECT_THROW(reg.counter("lod.test.kc2"), std::logic_error);
}

TEST(Metrics, BumpAfterRetireIsSafeAndInvisible) {
  MetricsRegistry reg;
  const Counter h = reg.counter("lod.test.session.bytes", {{"session", "9"}});
  h.inc(100);
  ASSERT_EQ(reg.retire("lod.test.session.", {{"session", "9"}}), 1u);
  // The handle still points at a live cell (the graveyard) — bumping it must
  // not crash, and must not resurrect the series in any snapshot.
  h.inc(50);
  EXPECT_EQ(h.value(), 150u);
  EXPECT_EQ(reg.snapshot().counter("lod.test.session.bytes",
                                   {{"session", "9"}}), 0u);
  EXPECT_EQ(reg.series_count(), 0u);
}

TEST(Metrics, ReRegisterAfterRetireIsAFreshCell) {
  MetricsRegistry reg;
  const Counter old_h = reg.counter("lod.test.session.bytes", {{"session", "9"}});
  old_h.inc(100);
  reg.retire("lod.test.session.", {{"session", "9"}});

  // Same identity requested again (session id reused): a NEW series starting
  // from zero, not the graveyard cell.
  const Counter new_h = reg.counter("lod.test.session.bytes", {{"session", "9"}});
  EXPECT_EQ(new_h.value(), 0u);
  new_h.inc(7);
  old_h.inc(1);  // still writes the graveyard, not the new cell
  EXPECT_EQ(new_h.value(), 7u);
  EXPECT_EQ(old_h.value(), 101u);
  EXPECT_EQ(reg.snapshot().counter("lod.test.session.bytes",
                                   {{"session", "9"}}), 7u);
  // And a kind flip on the reused identity is still a conflict.
  EXPECT_THROW(reg.gauge("lod.test.session.bytes", {{"session", "9"}}),
               std::logic_error);
}

TEST(Metrics, ResolveIsLabelOrderInsensitiveForHandles) {
  MetricsRegistry reg;
  const Counter a = reg.counter("lod.test.lo", {{"x", "1"}, {"y", "2"}});
  const Counter b = reg.counter("lod.test.lo", {{"y", "2"}, {"x", "1"}});
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);  // same cell either way
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(Metrics, MergedHistogramFallsBackToMomentsOnMismatchedBounds) {
  MetricsRegistry reg;
  Histogram a = reg.histogram("lat", {10, 20}, {{"host", "0"}});
  Histogram b = reg.histogram("lat", {100, 200, 300}, {{"host", "1"}});
  a.observe(5);
  a.observe(15);
  b.observe(250);
  const HistogramData merged = reg.snapshot().merged_histogram("lat");
  // Bucket layouts disagree: per-bucket counts are meaningless, so the
  // merge keeps only the moments.
  EXPECT_TRUE(merged.bounds.empty());
  EXPECT_TRUE(merged.counts.empty());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 270);
  EXPECT_EQ(merged.min, 5);
  EXPECT_EQ(merged.max, 250);
  // Matching layouts still merge bucket-wise.
  Histogram c = reg.histogram("lat2", {10, 20}, {{"host", "0"}});
  Histogram d = reg.histogram("lat2", {10, 20}, {{"host", "1"}});
  c.observe(5);
  d.observe(15);
  const HistogramData same = reg.snapshot().merged_histogram("lat2");
  ASSERT_EQ(same.counts.size(), 3u);
  EXPECT_EQ(same.counts[0], 1u);
  EXPECT_EQ(same.counts[1], 1u);
}

TEST(Metrics, SinceSkipsSeriesRetiredBetweenSnapshots) {
  MetricsRegistry reg;
  Counter keep = reg.counter("keep");
  Counter gone = reg.counter("gone", {{"session", "9"}});
  keep.inc(2);
  gone.inc(5);
  const Snapshot before = reg.snapshot();
  keep.inc(3);
  reg.retire("gone", {{"session", "9"}});
  const Snapshot after = reg.snapshot();
  const Snapshot delta = after.since(before);
  // The retired series is simply absent from the window — not a negative
  // or stale entry.
  EXPECT_EQ(delta.counter("keep"), 3u);
  EXPECT_EQ(delta.entries().count(series_key("gone", {{"session", "9"}})), 0u);
  EXPECT_EQ(delta.size(), 1u);
}

TEST(Metrics, SnapshotDiffIsolatesAPhase) {
  MetricsRegistry reg;
  Counter c = reg.counter("lod.test.n");
  Histogram h = reg.histogram("lod.test.lat", std::vector<std::int64_t>{100});
  c.inc(7);
  h.observe(50);
  const Snapshot before = reg.snapshot();
  c.inc(3);
  h.observe(200);
  const Snapshot delta = reg.snapshot().since(before);
  EXPECT_EQ(delta.counter("lod.test.n"), 3u);
  const HistogramData* d = delta.histogram("lod.test.lat");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 1u);
  EXPECT_EQ(d->sum, 200);
  ASSERT_EQ(d->counts.size(), 2u);
  EXPECT_EQ(d->counts[0], 0u);
  EXPECT_EQ(d->counts[1], 1u);
}

TEST(Metrics, SnapshotIsImmutableCopy) {
  MetricsRegistry reg;
  Counter c = reg.counter("lod.test.n");
  c.inc();
  const Snapshot snap = reg.snapshot();
  c.inc(100);
  EXPECT_EQ(snap.counter("lod.test.n"), 1u);
}

TEST(Metrics, MergedHistogramAcrossLabels) {
  MetricsRegistry reg;
  const std::vector<std::int64_t> bounds{10, 100};
  reg.histogram("lod.test.lat", bounds, {{"host", "0"}}).observe(5);
  reg.histogram("lod.test.lat", bounds, {{"host", "1"}}).observe(50);
  const HistogramData merged =
      reg.snapshot().merged_histogram("lod.test.lat");
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.sum, 55);
  EXPECT_EQ(merged.min, 5);
  EXPECT_EQ(merged.max, 50);
  ASSERT_EQ(merged.counts.size(), 3u);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 1u);
}

// --- trace ------------------------------------------------------------------------

TEST(Trace, DisabledSinkRecordsNothing) {
  TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.emit(EventType::kStall, 1, 2, 3, "x");
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.total_emitted(), 0u);
}

TEST(Trace, EmitStampsWithInstalledClock) {
  TraceSink sink;
  sink.set_enabled(true);
  TimeUs now = 0;
  sink.set_clock([&now] { return now; });
  now = 42;
  sink.emit(EventType::kSessionOpen, 7, 1, 2, "lec");
  const auto evs = sink.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].t, 42);
  EXPECT_EQ(evs[0].type, EventType::kSessionOpen);
  EXPECT_EQ(evs[0].actor, 7u);
  EXPECT_EQ(evs[0].a, 1);
  EXPECT_EQ(evs[0].b, 2);
  EXPECT_EQ(evs[0].detail, "lec");
}

TEST(Trace, RingWrapsAndCountsDropped) {
  TraceSink sink(4);
  sink.set_enabled(true);
  for (std::int64_t i = 0; i < 10; ++i) {
    sink.emit(EventType::kPacketSend, 0, i);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  EXPECT_EQ(sink.total_emitted(), 10u);
  const auto evs = sink.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest first, and the survivors are the most recent four.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[i].a, static_cast<std::int64_t>(6 + i));
  }
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(Trace, EventsFilterByType) {
  TraceSink sink;
  sink.set_enabled(true);
  sink.emit(EventType::kFloorRequest, 0, 0, 0, "alice");
  sink.emit(EventType::kFloorGrant, 0, 0, 0, "alice");
  sink.emit(EventType::kFloorRequest, 0, 0, 0, "bob");
  const auto reqs = sink.events(EventType::kFloorRequest);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].detail, "alice");
  EXPECT_EQ(reqs[1].detail, "bob");
}

TEST(Trace, EveryEventTypeNameRoundTrips) {
  for (int i = 0; i <= static_cast<int>(EventType::kSloViolation); ++i) {
    const auto t = static_cast<EventType>(i);
    const auto name = to_string(t);
    EXPECT_NE(name, "unknown") << i;
    const auto back = event_type_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, t) << name;
  }
  EXPECT_FALSE(event_type_from_string("no_such_event").has_value());
}

TEST(Trace, JsonlRoundTripsIncludingEscapes) {
  TraceSink sink;
  sink.set_enabled(true);
  TimeUs now = 1'000'000;
  sink.set_clock([&now] { return now; });
  sink.emit(EventType::kPublish, 3, -7, 9, "a \"quoted\"\npath\\with\ttabs");
  sink.emit(EventType::kTransitionFire, 12, 34);
  const std::string text = sink.to_jsonl();
  const auto parsed = TraceSink::parse_jsonl(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].t, 1'000'000);
  EXPECT_EQ(parsed[0].type, EventType::kPublish);
  EXPECT_EQ(parsed[0].actor, 3u);
  EXPECT_EQ(parsed[0].a, -7);
  EXPECT_EQ(parsed[0].b, 9);
  EXPECT_EQ(parsed[0].detail, "a \"quoted\"\npath\\with\ttabs");
  EXPECT_EQ(parsed[1].type, EventType::kTransitionFire);
  EXPECT_EQ(parsed[1].actor, 12u);
  // Garbage lines are skipped, valid ones kept.
  const auto mixed = TraceSink::parse_jsonl("not json\n" + text + "\n{}\n");
  EXPECT_EQ(mixed.size(), 2u);
}

TEST(Trace, JsonlRoundTripsHostileContent) {
  // Regression: control characters used to be emitted raw (invalid JSON)
  // and a backslash-quote pair confused the field scanner.
  const std::vector<std::string> hostile = {
      std::string("ctrl\x01\x1f\x7fmix"),
      "trailing backslash \\",
      "\\\" starts with escaped quote",
      "quote\"backslash\\quote\"",
      std::string("embedded\x00null", 13),
      "\b\f\n\r\t",
      "plain",
  };
  TraceSink sink;
  sink.set_enabled(true);
  for (const std::string& s : hostile) {
    sink.emit(EventType::kPublish, 1, 2, 3, s);
  }
  const auto parsed = TraceSink::parse_jsonl(sink.to_jsonl());
  ASSERT_EQ(parsed.size(), hostile.size());
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(parsed[i].detail, hostile[i]) << i;
  }
  // The exported text may not leak raw control bytes (they'd make the line
  // invalid JSON); everything below 0x20 must have been \u00XX-escaped.
  for (const char c : sink.to_jsonl()) {
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20)
        << static_cast<int>(c);
  }
}

namespace {
TraceEvent ev(TimeUs t, EventType type, std::uint64_t actor = 0) {
  TraceEvent e;
  e.t = t;
  e.type = type;
  e.actor = actor;
  return e;
}
}  // namespace

TEST(Trace, SpanHelpers) {
  const std::vector<TraceEvent> evs = {
      ev(10, EventType::kPublish, 1),
      ev(25, EventType::kRenderStart, 2),
      ev(40, EventType::kSessionSeek, 2),
      ev(47, EventType::kRenderStart, 2),
      ev(60, EventType::kSessionSeek, 2),   // restarted below: latest wins
      ev(70, EventType::kSessionSeek, 2),
      ev(75, EventType::kRenderStart, 2),
  };
  const auto first = first_event(evs, EventType::kRenderStart);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->t, 25);
  EXPECT_FALSE(first_event(evs, EventType::kRenderStart, 9).has_value());

  // publish -> first frame.
  const auto preroll =
      span_between(evs, EventType::kPublish, EventType::kRenderStart);
  ASSERT_TRUE(preroll.has_value());
  EXPECT_EQ(*preroll, 15);

  // Every seek -> resume; the back-to-back seek at t=60 is superseded at 70.
  const auto seeks =
      span_latencies(evs, EventType::kSessionSeek, EventType::kRenderStart, 2);
  ASSERT_EQ(seeks.size(), 2u);
  EXPECT_EQ(seeks[0], 7);
  EXPECT_EQ(seeks[1], 5);

  EXPECT_FALSE(
      span_between(evs, EventType::kStall, EventType::kRenderStart).has_value());
}

// --- hub --------------------------------------------------------------------------

TEST(Hub, SharesClockBetweenMetricsAndTrace) {
  Hub hub;
  TimeUs now = 0;
  hub.set_clock([&now] { return now; });
  now = 123;
  EXPECT_EQ(hub.now_us(), 123);
  hub.trace().set_enabled(true);
  hub.trace().emit(EventType::kSpanBegin);
  ASSERT_EQ(hub.trace().events().size(), 1u);
  EXPECT_EQ(hub.trace().events()[0].t, 123);

  hub.metrics().counter("lod.test.n").inc(2);
  EXPECT_EQ(hub.snapshot().counter("lod.test.n"), 2u);
}

// --- histogram quantile edge cases ------------------------------------------------

TEST(Metrics, QuantileBoundEdgeCases) {
  HistogramData h;
  h.bounds = {10, 100, 1000};
  h.counts.assign(4, 0);
  EXPECT_EQ(h.quantile_bound(0.5), 0);  // empty

  h.observe(7);  // single sample in the first bucket
  // Any quantile of a one-sample distribution is that sample's bucket: the
  // target order statistic must clamp into [1, count], so q -> 0 cannot
  // round down to "the zeroth observation" and fall through to the overflow
  // bucket's max.
  EXPECT_EQ(h.quantile_bound(0.0001), 10);
  EXPECT_EQ(h.quantile_bound(0.5), 10);
  EXPECT_EQ(h.quantile_bound(1.0), 10);
}

TEST(Metrics, QuantileBoundTinyQOverManySamples) {
  HistogramData h;
  h.bounds = {10, 100};
  h.counts.assign(3, 0);
  for (int i = 0; i < 100; ++i) h.observe(i < 50 ? 5 : 50);
  // q so small the rounded target would be 0 without clamping.
  EXPECT_EQ(h.quantile_bound(0.001), 10);
  EXPECT_EQ(h.quantile_bound(0.5), 10);
  EXPECT_EQ(h.quantile_bound(0.51), 100);
  EXPECT_EQ(h.quantile_bound(1.0), 100);
}

TEST(Metrics, QuantileBoundAllOverflowReportsMax) {
  HistogramData h;
  h.bounds = {10};
  h.counts.assign(2, 0);
  h.observe(500);
  h.observe(900);
  EXPECT_EQ(h.quantile_bound(0.01), 900);  // overflow bucket -> observed max
  EXPECT_EQ(h.quantile_bound(1.0), 900);
}

// --- snapshot merge ---------------------------------------------------------------

TEST(Metrics, MergedDisjointShardsIsUnion) {
  MetricsRegistry a, b;
  a.counter("lod.a").inc(3);
  b.counter("lod.b").inc(4);
  const auto m =
      Snapshot::merged({{"0", a.snapshot()}, {"1", b.snapshot()}});
  EXPECT_EQ(m.counter("lod.a"), 3u);
  EXPECT_EQ(m.counter("lod.b"), 4u);
}

TEST(Metrics, MergedOverlappingCountersSumAndHistogramsAddBucketwise) {
  MetricsRegistry a, b;
  a.counter("lod.n").inc(3);
  b.counter("lod.n").inc(5);
  a.histogram("lod.h", std::vector<std::int64_t>{10, 100}).observe(7);
  b.histogram("lod.h", std::vector<std::int64_t>{10, 100}).observe(70);
  const auto m =
      Snapshot::merged({{"0", a.snapshot()}, {"1", b.snapshot()}});
  EXPECT_EQ(m.counter("lod.n"), 8u);
  const auto* h = m.histogram("lod.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum, 77);
  ASSERT_EQ(h->counts.size(), 3u);
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[1], 1u);
  EXPECT_EQ(h->quantile_bound(1.0), 100);
}

TEST(Metrics, MergedHistogramsWithMismatchedBoundsKeepMomentsOnly) {
  MetricsRegistry a, b;
  a.histogram("lod.h", std::vector<std::int64_t>{10}).observe(5);
  b.histogram("lod.h", std::vector<std::int64_t>{99}).observe(50);
  const auto m =
      Snapshot::merged({{"0", a.snapshot()}, {"1", b.snapshot()}});
  const auto* h = m.histogram("lod.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum, 55);
  EXPECT_EQ(h->min, 5);
  EXPECT_EQ(h->max, 50);
  EXPECT_TRUE(h->bounds.empty());  // bucket shapes disagreed
}

TEST(Metrics, MergedGaugesLastWriterPlusPerShardSeries) {
  MetricsRegistry a, b;
  a.gauge("lod.depth").set(11);
  b.gauge("lod.depth").set(22);
  const auto m =
      Snapshot::merged({{"s0", a.snapshot()}, {"s1", b.snapshot()}});
  EXPECT_EQ(m.gauge("lod.depth"), 22);
  EXPECT_EQ(m.gauge("lod.depth", {{"shard", "s0"}}), 11);
  EXPECT_EQ(m.gauge("lod.depth", {{"shard", "s1"}}), 22);
}

TEST(Metrics, MergedKindConflictThrows) {
  MetricsRegistry a, b;
  a.counter("lod.x").inc();
  b.gauge("lod.x").set(1);
  EXPECT_THROW(
      Snapshot::merged({{"0", a.snapshot()}, {"1", b.snapshot()}}),
      std::logic_error);
}

TEST(Metrics, MergedEmptyInputIsEmptySnapshot) {
  const auto m = Snapshot::merged({});
  EXPECT_EQ(m.size(), 0u);
}

// --- JSON escape/unescape ---------------------------------------------------------

TEST(Json, UnescapeDecodesBmpAndSupplementaryEscapes) {
  EXPECT_EQ(json_unescape("\\u0041"), "A");
  EXPECT_EQ(json_unescape("\\u00e9"), "\xC3\xA9");          // é, 2-byte UTF-8
  EXPECT_EQ(json_unescape("\\u20AC"), "\xE2\x82\xAC");      // €, 3-byte UTF-8
  // Surrogate pair U+1F600 (😀): 4-byte UTF-8.
  EXPECT_EQ(json_unescape("\\uD83D\\uDE00"), "\xF0\x9F\x98\x80");
  EXPECT_EQ(json_unescape("x\\uD83D\\uDE00y"), "x\xF0\x9F\x98\x80y");
}

TEST(Json, UnescapeUnpairedSurrogatesBecomeReplacementChar) {
  const std::string fffd = "\xEF\xBF\xBD";
  EXPECT_EQ(json_unescape("\\uD83D"), fffd);          // lone high at end
  EXPECT_EQ(json_unescape("\\uD83Dxy"), fffd + "xy");  // high, no low follows
  EXPECT_EQ(json_unescape("\\uDE00"), fffd);          // lone low
  // High followed by a non-surrogate \u escape: both decode independently.
  EXPECT_EQ(json_unescape("\\uD83D\\u0041"), fffd + "A");
}

TEST(Json, UnescapeTruncatedEscapesAtEndOfStringAreDropped) {
  // A \uXXXX cut off by end-of-string must not read past the buffer.
  EXPECT_EQ(json_unescape("\\u"), "");
  EXPECT_EQ(json_unescape("\\u00"), "");
  EXPECT_EQ(json_unescape("\\u123"), "");
  EXPECT_EQ(json_unescape("ab\\u12"), "ab");
  // A trailing lone backslash (no escape char at all) is kept verbatim.
  EXPECT_EQ(json_unescape("ab\\"), "ab\\");
  // Malformed mid-string keeps the literal characters.
  EXPECT_EQ(json_unescape("\\uZZZZtail"), "uZZZZtail");
}

TEST(Json, EscapeUnescapeRoundTripsRandomBytes) {
  // Fuzz-style: random byte strings (including NULs, control characters,
  // quotes, backslashes, and non-UTF-8 garbage) must survive
  // append_json_escaped -> json_unescape byte for byte.
  std::mt19937 rng(0xC0DE);
  for (int iter = 0; iter < 200; ++iter) {
    std::string s;
    const int len = static_cast<int>(rng() % 64);
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng() % 256));
    }
    std::string escaped;
    append_json_escaped(escaped, s);
    EXPECT_EQ(json_unescape(escaped), s) << "iter " << iter;
  }
}

TEST(Json, EscapeUnescapeRoundTripsAdversarialSuffixes) {
  // Strings that END in escape-like prefixes are the truncation minefield.
  for (const char* raw : {"\\", "\\u", "\\u0", "\\u00", "\\u004",
                          "text\\", "text\\u12", "\"\\\"", "\\\\u0041"}) {
    std::string escaped;
    append_json_escaped(escaped, raw);
    EXPECT_EQ(json_unescape(escaped), raw) << "raw: " << raw;
  }
}
