#include "lod/lod/floor.hpp"

#include <gtest/gtest.h>

#include "lod/net/network.hpp"
#include "lod/net/rng.hpp"

namespace lod::lod {
namespace {

using Kind = FloorControl::Event::Kind;

TEST(FloorControl, SingleUserAcquiresAndReleases) {
  FloorControl fc({"alice"});
  EXPECT_FALSE(fc.holder().has_value());
  EXPECT_TRUE(fc.request("alice"));
  EXPECT_EQ(fc.holder(), "alice");
  EXPECT_TRUE(fc.release("alice"));
  EXPECT_FALSE(fc.holder().has_value());
}

TEST(FloorControl, MutualExclusion) {
  FloorControl fc({"a", "b", "c"});
  fc.request("a");
  fc.request("b");
  fc.request("c");
  EXPECT_EQ(fc.holder(), "a");
  EXPECT_EQ(fc.waiting(), (std::vector<std::string>{"b", "c"}));
}

TEST(FloorControl, FifoFairness) {
  FloorControl fc({"a", "b", "c"});
  fc.request("c");
  fc.request("a");
  fc.request("b");
  EXPECT_EQ(fc.holder(), "c");
  fc.release("c");
  EXPECT_EQ(fc.holder(), "a");  // arrival order, not id order
  fc.release("a");
  EXPECT_EQ(fc.holder(), "b");
}

TEST(FloorControl, UnknownUserRejected) {
  FloorControl fc({"a"});
  EXPECT_FALSE(fc.request("mallory"));
  EXPECT_FALSE(fc.release("mallory"));
}

TEST(FloorControl, DoubleRequestRejected) {
  FloorControl fc({"a", "b"});
  EXPECT_TRUE(fc.request("a"));
  EXPECT_FALSE(fc.request("a"));  // already holding
  EXPECT_TRUE(fc.request("b"));
  EXPECT_FALSE(fc.request("b"));  // already queued
}

TEST(FloorControl, NonHolderCannotRelease) {
  FloorControl fc({"a", "b"});
  fc.request("a");
  fc.request("b");
  EXPECT_FALSE(fc.release("b"));  // b is waiting, not holding
  EXPECT_EQ(fc.holder(), "a");
}

TEST(FloorControl, ReleaseWithEmptyQueueFreesFloor) {
  FloorControl fc({"a", "b"});
  fc.request("a");
  fc.release("a");
  EXPECT_FALSE(fc.holder().has_value());
  EXPECT_TRUE(fc.request("b"));
  EXPECT_EQ(fc.holder(), "b");
}

TEST(FloorControl, EventLogIsConsistent) {
  FloorControl fc({"a", "b"});
  fc.request("a");
  fc.request("b");
  fc.release("a");
  fc.release("b");
  const auto& log = fc.log();
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0].kind, Kind::kRequest);
  EXPECT_EQ(log[1].kind, Kind::kGrant);
  EXPECT_EQ(log[1].user, "a");
  EXPECT_EQ(log[3].kind, Kind::kRelease);
  EXPECT_EQ(log[3].user, "a");
  EXPECT_EQ(log[4].kind, Kind::kGrant);
  EXPECT_EQ(log[4].user, "b");
  EXPECT_EQ(log[5].kind, Kind::kRelease);
  EXPECT_EQ(log[5].user, "b");
}

TEST(FloorControl, ExclusionInvariantIsStructural) {
  FloorControl fc({"a", "b", "c", "d"});
  EXPECT_TRUE(
      core::is_structural_p_invariant(fc.net(), fc.exclusion_invariant()));
}

TEST(FloorControl, InvariantHoldsUnderRandomSchedules) {
  const std::vector<std::string> users{"u1", "u2", "u3", "u4", "u5"};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    FloorControl fc(users);
    net::Rng rng(seed);
    const auto w = fc.exclusion_invariant();
    for (int i = 0; i < 500; ++i) {
      const auto& u = users[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(users.size()) - 1))];
      if (rng.bernoulli(0.5)) {
        fc.request(u);
      } else {
        fc.release(u);
      }
      // weights . marking == 1 at every step: at most one holder, ever.
      std::int64_t dot = 0;
      for (std::size_t p = 0; p < fc.marking().size(); ++p) {
        dot += w[p] * fc.marking()[p];
      }
      ASSERT_EQ(dot, 1) << "seed " << seed << " step " << i;
    }
  }
}

TEST(FloorControl, EveryRequestEventuallyGranted) {
  // Liveness under a polite schedule: holders always release.
  const std::vector<std::string> users{"a", "b", "c"};
  FloorControl fc(users);
  for (const auto& u : users) fc.request(u);
  int grants = 0;
  for (const auto& e : fc.log()) grants += (e.kind == Kind::kGrant) ? 1 : 0;
  EXPECT_EQ(grants, 1);
  fc.release("a");
  fc.release("b");
  fc.release("c");
  grants = 0;
  for (const auto& e : fc.log()) grants += (e.kind == Kind::kGrant) ? 1 : 0;
  EXPECT_EQ(grants, 3);
}

// --- distributed floor service ---------------------------------------------------

struct FloorNetFixture : ::testing::Test {
  FloorNetFixture() : network(sim, 5) {
    teacher = network.add_host("teacher");
    s1 = network.add_host("s1");
    s2 = network.add_host("s2");
    net::LinkConfig lan;
    lan.latency = net::msec(3);
    network.add_link(teacher, s1, lan);
    network.add_link(teacher, s2, lan);
    service = std::make_unique<FloorService>(network, teacher, 9000,
                                             std::vector<std::string>{
                                                 "alice", "bob"});
    alice = std::make_unique<FloorClient>(
        network, s1, 6000, "alice", teacher, 9000,
        [this](const std::string& m) { alice_heard.push_back(m); });
    bob = std::make_unique<FloorClient>(
        network, s2, 6000, "bob", teacher, 9000,
        [this](const std::string& m) { bob_heard.push_back(m); });
    alice->join();
    bob->join();
    sim.run();
  }

  net::Simulator sim;
  net::Network network;
  net::HostId teacher{}, s1{}, s2{};
  std::unique_ptr<FloorService> service;
  std::unique_ptr<FloorClient> alice;
  std::unique_ptr<FloorClient> bob;
  std::vector<std::string> alice_heard, bob_heard;
};

TEST_F(FloorNetFixture, HolderSpeaksEveryoneHears) {
  bool granted = false;
  alice->request_floor([&](bool ok) { granted = ok; });
  sim.run();
  EXPECT_TRUE(granted);
  EXPECT_EQ(service->control().holder(), "alice");

  bool spoke = false;
  alice->speak("what is a Petri net?", [&](bool ok) { spoke = ok; });
  sim.run();
  EXPECT_TRUE(spoke);
  ASSERT_EQ(alice_heard.size(), 1u);  // speakers hear themselves too
  ASSERT_EQ(bob_heard.size(), 1u);
  EXPECT_EQ(bob_heard[0], "alice: what is a Petri net?");
  EXPECT_EQ(service->messages_relayed(), 2u);
}

TEST_F(FloorNetFixture, NonHolderCannotSpeak) {
  alice->request_floor();
  sim.run();
  bool spoke = true;
  bob->speak("me me me!", [&](bool ok) { spoke = ok; });
  sim.run();
  EXPECT_FALSE(spoke);
  EXPECT_TRUE(bob_heard.empty());
  EXPECT_TRUE(alice_heard.empty());
}

TEST_F(FloorNetFixture, FloorPassesOverTheNetwork) {
  // Both ask at once; the floor goes to whoever's request ARRIVES first
  // (bob's shorter name serializes a hair earlier on an otherwise equal
  // path — arrival order is the service's ground truth, not call order).
  alice->request_floor();
  bob->request_floor();
  sim.run();
  const auto first = service->control().holder();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(service->control().waiting().size(), 1u);
  const std::string second = *first == "alice" ? "bob" : "alice";

  FloorClient& first_client = *first == "alice" ? *alice : *bob;
  FloorClient& second_client = *first == "alice" ? *bob : *alice;
  auto& first_heard = *first == "alice" ? alice_heard : bob_heard;

  first_client.release_floor();
  sim.run();
  EXPECT_EQ(service->control().holder(), second);
  bool spoke = false;
  second_client.speak("my turn", [&](bool ok) { spoke = ok; });
  sim.run();
  EXPECT_TRUE(spoke);
  ASSERT_EQ(first_heard.size(), 1u);
  EXPECT_EQ(first_heard[0], second + ": my turn");
}

TEST_F(FloorNetFixture, UnjoinedSpeakerStillGuarded) {
  // A third registered user never joined; requests still arbitrate.
  bool ok = true;
  bob->release_floor([&](bool v) { ok = v; });
  sim.run();
  EXPECT_FALSE(ok);  // nothing to release
}

}  // namespace
}  // namespace lod::lod
