#include "lod/net/network.hpp"
#include "lod/net/transport.hpp"

#include <gtest/gtest.h>

#include <string>

namespace lod::net {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}
std::string string_of(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// --- ByteWriter / ByteReader ---------------------------------------------------

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  w.blob(bytes_of("world"));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(string_of(r.blob()), "world");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncatedInputThrows) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.u64(), std::out_of_range);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), std::out_of_range);
}

TEST(Bytes, EmptyStringAndBlob) {
  ByteWriter w;
  w.str("");
  w.blob({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.blob().empty());
}

// --- DatagramSocket -------------------------------------------------------------

struct TransportFixture : ::testing::Test {
  TransportFixture() : net(sim, 21) {
    a = net.add_host("a");
    b = net.add_host("b");
  }
  void link(double loss = 0.0) {
    LinkConfig cfg;
    cfg.bandwidth_bps = 10'000'000;
    cfg.latency = msec(2);
    cfg.loss_rate = loss;
    net.add_link(a, b, cfg);
  }

  Simulator sim;
  Network net;
  HostId a{}, b{};
};

TEST_F(TransportFixture, DatagramDelivers) {
  link();
  DatagramSocket sa(net, a, 100);
  DatagramSocket sb(net, b, 200);
  std::string got;
  sb.on_receive([&](const Packet& p) { got = string_of(p.payload); });
  sa.send_to(b, 200, bytes_of("ping"));
  sim.run();
  EXPECT_EQ(got, "ping");
}

TEST_F(TransportFixture, DatagramAccountsHeaderOverheadOnWire) {
  link();
  DatagramSocket sa(net, a, 100);
  DatagramSocket sb(net, b, 200);
  sa.send_to(b, 200, bytes_of("x"), 28);
  sim.run();
  EXPECT_EQ(net.link_stats(a, b).bytes_sent, 29u);
}

TEST_F(TransportFixture, DatagramIsLossy) {
  link(1.0);
  DatagramSocket sa(net, a, 100);
  DatagramSocket sb(net, b, 200);
  bool got = false;
  sb.on_receive([&](const Packet&) { got = true; });
  sa.send_to(b, 200, bytes_of("ping"));
  sim.run();
  EXPECT_FALSE(got);  // datagrams do not retry
}

TEST_F(TransportFixture, SocketUnbindsOnDestruction) {
  link();
  {
    DatagramSocket sb(net, b, 200);
  }
  DatagramSocket sa(net, a, 100);
  sa.send_to(b, 200, bytes_of("ping"));
  sim.run();  // must not crash or deliver anywhere
}

// --- ReliableEndpoint -----------------------------------------------------------

TEST_F(TransportFixture, ReliableDeliversInOrder) {
  link();
  ReliableEndpoint ea(net, a, 100);
  ReliableEndpoint eb(net, b, 200);
  std::vector<std::string> got;
  eb.on_receive([&](const ReliableEndpoint::Message& m) {
    got.push_back(string_of(m.payload));
  });
  for (int i = 0; i < 10; ++i) {
    ea.send_to(b, 200, bytes_of("msg" + std::to_string(i)));
  }
  sim.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], "msg" + std::to_string(i));
  EXPECT_TRUE(ea.all_acked());
}

TEST_F(TransportFixture, ReliableSurvivesHeavyLoss) {
  link(0.4);  // 40% loss each way
  ReliableEndpoint ea(net, a, 100, msec(50));
  ReliableEndpoint eb(net, b, 200, msec(50));
  std::vector<std::string> got;
  eb.on_receive([&](const ReliableEndpoint::Message& m) {
    got.push_back(string_of(m.payload));
  });
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    ea.send_to(b, 200, bytes_of(std::to_string(i)));
  }
  sim.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[i], std::to_string(i));
  EXPECT_GT(ea.retransmissions(), 0u);
  EXPECT_TRUE(ea.all_acked());
}

TEST_F(TransportFixture, ReliableNoDuplicateDelivery) {
  link(0.3);
  ReliableEndpoint ea(net, a, 100, msec(20));
  ReliableEndpoint eb(net, b, 200, msec(20));
  int count = 0;
  eb.on_receive([&](const ReliableEndpoint::Message&) { ++count; });
  ea.send_to(b, 200, bytes_of("once"));
  sim.run();
  EXPECT_EQ(count, 1);  // retransmits may arrive multiple times; deliver once
}

TEST_F(TransportFixture, ReliableBidirectional) {
  link();
  ReliableEndpoint ea(net, a, 100);
  ReliableEndpoint eb(net, b, 200);
  std::string at_a, at_b;
  ea.on_receive([&](const ReliableEndpoint::Message& m) {
    at_a = string_of(m.payload);
  });
  eb.on_receive([&](const ReliableEndpoint::Message& m) {
    at_b = string_of(m.payload);
    eb.send_to(m.src, m.src_port, bytes_of("pong"));
  });
  ea.send_to(b, 200, bytes_of("ping"));
  sim.run();
  EXPECT_EQ(at_b, "ping");
  EXPECT_EQ(at_a, "pong");
}

TEST_F(TransportFixture, ReliableGivesUpAfterMaxRetries) {
  link(1.0);  // nothing ever arrives
  ReliableEndpoint ea(net, a, 100, msec(10), /*max_retries=*/3);
  ea.send_to(b, 200, bytes_of("void"));
  sim.run();
  EXPECT_EQ(ea.retransmissions(), 3u);
  EXPECT_FALSE(ea.all_acked());
}

TEST_F(TransportFixture, ReliableIndependentPeers) {
  const HostId c = net.add_host("c");
  LinkConfig cfg;
  cfg.latency = msec(1);
  net.add_link(a, b, cfg);
  net.add_link(a, c, cfg);
  ReliableEndpoint ea(net, a, 100);
  ReliableEndpoint eb(net, b, 200);
  ReliableEndpoint ec(net, c, 200);
  std::string got_b, got_c;
  eb.on_receive([&](const auto& m) { got_b = string_of(m.payload); });
  ec.on_receive([&](const auto& m) { got_c = string_of(m.payload); });
  ea.send_to(b, 200, bytes_of("to-b"));
  ea.send_to(c, 200, bytes_of("to-c"));
  sim.run();
  EXPECT_EQ(got_b, "to-b");
  EXPECT_EQ(got_c, "to-c");
}

TEST_F(TransportFixture, ReincarnatedEndpointResetsConversation) {
  // A new endpoint on the same (host, port) — a reconnect — must not be
  // mistaken for stale duplicates of the old sequence space, in EITHER
  // direction.
  link();
  ReliableEndpoint eb(net, b, 200);
  std::vector<std::string> got;
  eb.on_receive([&](const ReliableEndpoint::Message& m) {
    got.push_back(string_of(m.payload));
    eb.send_to(m.src, m.src_port, bytes_of("re:" + string_of(m.payload)));
  });

  std::vector<std::string> got_a;
  {
    ReliableEndpoint ea(net, a, 100);
    ea.on_receive([&](const ReliableEndpoint::Message& m) {
      got_a.push_back(string_of(m.payload));
    });
    ea.send_to(b, 200, bytes_of("first"));
    sim.run();
  }
  // The old endpoint died; a fresh one binds the same port with seq 0.
  {
    ReliableEndpoint ea2(net, a, 100);
    ea2.on_receive([&](const ReliableEndpoint::Message& m) {
      got_a.push_back(string_of(m.payload));
    });
    ea2.send_to(b, 200, bytes_of("second"));
    sim.run();
  }
  ASSERT_EQ(got, (std::vector<std::string>{"first", "second"}));
  // Replies from b reached both incarnations (b restarted its send side).
  ASSERT_EQ(got_a, (std::vector<std::string>{"re:first", "re:second"}));
}

TEST_F(TransportFixture, FirstContactDoesNotResetSender) {
  // Receiving a peer's FIRST data frame must not wipe our own send state
  // toward them (the subtle first-contact vs reincarnation distinction).
  link();
  ReliableEndpoint ea(net, a, 100);
  ReliableEndpoint eb(net, b, 200);
  std::vector<std::string> got_b;
  eb.on_receive([&](const ReliableEndpoint::Message& m) {
    got_b.push_back(string_of(m.payload));
    if (got_b.size() == 1) eb.send_to(m.src, m.src_port, bytes_of("ack1"));
  });
  ea.send_to(b, 200, bytes_of("one"));
  sim.run();
  ea.send_to(b, 200, bytes_of("two"));  // must arrive as seq 1, not a dup
  sim.run();
  EXPECT_EQ(got_b, (std::vector<std::string>{"one", "two"}));
}

TEST_F(TransportFixture, GapFillDeliversStashedMessagesInSeqOrder) {
  // Regression for the out_of_order std::map -> unordered_map move: raw data
  // frames injected out of order (2, 0, 3, 1) must still come out 0,1,2,3 —
  // the hole at the front stashes 2 and 3, and each fill drains the stash in
  // seq order, not in hash-iteration order.
  link();
  ReliableEndpoint eb(net, b, 200);
  std::vector<std::string> got;
  eb.on_receive([&](const ReliableEndpoint::Message& m) {
    got.push_back(string_of(m.payload));
  });

  DatagramSocket raw(net, a, 100);
  const auto frame = [](std::uint64_t seq, std::string_view body) {
    // Legacy inline framing: [kData=1][incarnation u64][seq u64][u32 n][bytes]
    ByteWriter w;
    w.u8(1);
    w.u64(7);  // any nonzero incarnation
    w.u64(seq);
    w.u32(static_cast<std::uint32_t>(body.size()));
    w.raw(bytes_of(body));
    return std::move(w).take();
  };
  for (const std::uint64_t seq : {2u, 0u, 3u, 1u}) {
    raw.send_to(b, 200, frame(seq, "m" + std::to_string(seq)));
  }
  sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"m0", "m1", "m2", "m3"}));
}

TEST_F(TransportFixture, ReliableDeliveryIsZeroCopy) {
  // The delivered message must BE the sender's buffer (same body, not a
  // duplicate), and the whole exchange must not copy payload bytes at all.
  link();
  ReliableEndpoint ea(net, a, 100);
  ReliableEndpoint eb(net, b, 200);
  const Payload sent{bytes_of(std::string(4096, 'z'))};
  const std::byte* delivered_data = nullptr;
  std::size_t delivered_size = 0;
  eb.on_receive([&](const ReliableEndpoint::Message& m) {
    delivered_data = m.payload.data();
    delivered_size = m.payload.size();
  });

  const std::uint64_t copied_before = Payload::stats().bytes_copied;
  ea.send_to(b, 200, sent);
  sim.run();
  EXPECT_EQ(delivered_data, sent.data());  // same bytes, not a lookalike
  EXPECT_EQ(delivered_size, sent.size());
  EXPECT_EQ(Payload::stats().bytes_copied - copied_before, 0u);
}

TEST_F(TransportFixture, RetransmissionsDoNotCopyPayloadBytes) {
  link(0.4);
  ReliableEndpoint ea(net, a, 100, msec(20));
  ReliableEndpoint eb(net, b, 200, msec(20));
  int count = 0;
  eb.on_receive([&](const ReliableEndpoint::Message&) { ++count; });
  const std::uint64_t copied_before = Payload::stats().bytes_copied;
  for (int i = 0; i < 20; ++i) {
    ea.send_to(b, 200, bytes_of(std::string(1024, 'a' + i % 26)));
  }
  sim.run();
  EXPECT_EQ(count, 20);
  EXPECT_GT(ea.retransmissions(), 0u);  // loss forced re-sends...
  EXPECT_EQ(Payload::stats().bytes_copied - copied_before, 0u);  // ...copy-free
}

// --- RpcServer / RpcClient --------------------------------------------------------

TEST_F(TransportFixture, RpcRoundTrip) {
  link();
  RpcServer server(net, b, 80);
  server.route("/echo", [](std::string_view, std::span<const std::byte> body) {
    return std::make_pair(200, std::vector<std::byte>(body.begin(), body.end()));
  });
  RpcClient client(net, a, 4000);
  int status = 0;
  std::string body;
  client.call(b, 80, "/echo", bytes_of("payload"),
              [&](net::Result<net::RpcReply> r) {
                ASSERT_TRUE(r.has_value());
                status = r->status;
                body = string_of(r->body);
              });
  sim.run();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "payload");
}

TEST_F(TransportFixture, RpcUnknownPathIs404) {
  link();
  RpcServer server(net, b, 80);
  RpcClient client(net, a, 4000);
  int status = 0;
  client.call(b, 80, "/nope", {},
              [&](net::Result<net::RpcReply> r) { status = r ? r->status : -1; });
  sim.run();
  EXPECT_EQ(status, 404);
}

TEST_F(TransportFixture, RpcSurvivesLoss) {
  link(0.3);
  RpcServer server(net, b, 80);
  server.route("/ok", [](auto, auto) {
    return std::make_pair(200, std::vector<std::byte>{});
  });
  RpcClient client(net, a, 4000);
  int calls_done = 0;
  for (int i = 0; i < 10; ++i) {
    client.call(b, 80, "/ok", {}, [&](net::Result<net::RpcReply> r) {
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(r->status, 200);
      ++calls_done;
    });
  }
  sim.run();
  EXPECT_EQ(calls_done, 10);
}

TEST_F(TransportFixture, RpcMultipleRoutes) {
  link();
  RpcServer server(net, b, 80);
  server.route("/one", [](auto, auto) {
    return std::make_pair(201, std::vector<std::byte>{});
  });
  server.route("/two", [](auto, auto) {
    return std::make_pair(202, std::vector<std::byte>{});
  });
  RpcClient client(net, a, 4000);
  int s1 = 0, s2 = 0;
  client.call(b, 80, "/one",
              {}, [&](net::Result<net::RpcReply> r) { s1 = r ? r->status : -1; });
  client.call(b, 80, "/two",
              {}, [&](net::Result<net::RpcReply> r) { s2 = r ? r->status : -1; });
  sim.run();
  EXPECT_EQ(s1, 201);
  EXPECT_EQ(s2, 202);
}

}  // namespace
}  // namespace lod::net
