// Unit tests for net::Payload — the refcounted immutable byte buffer the
// zero-copy data plane is built on. The invariants: adopting never copies,
// copy_of/to_vector are the ONLY counted byte copies, slices share the body,
// and stats() account exactly for what happened.

#include "lod/net/payload.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>

namespace lod::net {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}
std::string string_of(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TEST(Payload, DefaultIsEmpty) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.data(), nullptr);
  EXPECT_EQ(p.owners(), 0);
  EXPECT_TRUE(p.view().empty());
}

TEST(Payload, AdoptTakesOwnershipWithoutCopying) {
  auto v = bytes_of("hello world");
  const std::byte* raw = v.data();
  const std::uint64_t copied_before = Payload::stats().bytes_copied;
  const Payload p{std::move(v)};
  EXPECT_EQ(p.size(), 11u);
  EXPECT_EQ(p.data(), raw);  // the very same buffer, not a duplicate
  EXPECT_EQ(Payload::stats().bytes_copied, copied_before);
  EXPECT_EQ(string_of(p), "hello world");
}

TEST(Payload, CopyingAViewSharesTheBody) {
  const Payload p{bytes_of("shared")};
  const Payload q = p;  // refcount bump, no byte copy
  EXPECT_EQ(p.owners(), 2);
  EXPECT_EQ(q.data(), p.data());
}

TEST(Payload, CopyOfIsTheCountedCopy) {
  const auto v = bytes_of("precious");
  const Payload::Stats before = Payload::stats();
  const Payload p = Payload::copy_of(v);
  const Payload::Stats after = Payload::stats();
  EXPECT_EQ(after.copies, before.copies + 1);
  EXPECT_EQ(after.bytes_copied, before.bytes_copied + 8);
  EXPECT_NE(p.data(), v.data());
  EXPECT_EQ(string_of(p), "precious");
}

TEST(Payload, SliceIsAZeroCopyViewOfTheSameBody) {
  const Payload p{bytes_of("0123456789")};
  const Payload::Stats before = Payload::stats();
  const Payload mid = p.slice(3, 4);
  EXPECT_EQ(string_of(mid), "3456");
  EXPECT_EQ(mid.data(), p.data() + 3);
  EXPECT_EQ(p.owners(), 2);  // slice holds the body alive
  EXPECT_EQ(Payload::stats().bytes_copied, before.bytes_copied);

  // Slicing a slice composes offsets against the original body.
  const Payload inner = mid.slice(1, 2);
  EXPECT_EQ(string_of(inner), "45");
  EXPECT_EQ(inner.data(), p.data() + 4);
}

TEST(Payload, SliceClampsToBounds) {
  const Payload p{bytes_of("abcdef")};
  EXPECT_EQ(string_of(p.slice(4, 100)), "ef");  // length clamped
  EXPECT_TRUE(p.slice(100, 5).empty());         // offset clamped to end
  EXPECT_TRUE(p.slice(6, 0).empty());
  EXPECT_EQ(string_of(p.slice(0, 6)), "abcdef");
}

TEST(Payload, SliceOutlivesTheOriginalView) {
  Payload tail;
  {
    const Payload p{bytes_of("head|tail")};
    tail = p.slice(5, 4);
  }  // p destroyed; the shared body must survive through the slice
  EXPECT_EQ(string_of(tail), "tail");
  EXPECT_EQ(tail.owners(), 1);
}

TEST(Payload, ToVectorMaterializesAndCounts) {
  const Payload p{bytes_of("copy me")};
  const Payload::Stats before = Payload::stats();
  const std::vector<std::byte> v = p.to_vector();
  EXPECT_EQ(string_of(v), "copy me");
  EXPECT_EQ(Payload::stats().bytes_copied, before.bytes_copied + 7);
  EXPECT_EQ(Payload::stats().copies, before.copies + 1);
}

TEST(Payload, ImplicitSpanConversionKeepsLegacyCallSitesWorking) {
  const Payload p{bytes_of("span")};
  const auto takes_span = [](std::span<const std::byte> b) { return b.size(); };
  EXPECT_EQ(takes_span(p), 4u);
}

TEST(Payload, StatsCountAdoptsAndSlices) {
  const Payload::Stats before = Payload::stats();
  const Payload p{bytes_of("x")};
  (void)p.slice(0, 1);
  const Payload::Stats after = Payload::stats();
  EXPECT_EQ(after.adopts, before.adopts + 1);
  EXPECT_EQ(after.slices, before.slices + 1);
  EXPECT_EQ(after.bytes_copied, before.bytes_copied);
}

}  // namespace
}  // namespace lod::net
