#include "lod/core/ocpn.hpp"

#include <gtest/gtest.h>

#include "lod/core/analysis.hpp"
#include "lod/net/rng.hpp"

namespace lod::core {
namespace {

using net::msec;
using net::sec;

TemporalSpec obj(const std::string& name, std::int64_t secs) {
  return TemporalSpec::object(name, 0, sec(secs));
}

/// Compile, play, and return the realized interval of every object.
std::unordered_map<std::string, PlaceInterval> realize(
    const TemporalSpec& spec) {
  const CompiledOcpn c = build_ocpn(spec);
  const PlayoutTrace trace = play(c.net, c.initial_marking());
  EXPECT_FALSE(trace.truncated);
  std::unordered_map<std::string, PlaceInterval> out;
  for (const auto& [name, place] : c.object_place) {
    const auto iv = trace.interval_of(c.net, name);
    EXPECT_TRUE(iv.has_value()) << "object " << name << " never presented";
    if (iv) out[name] = *iv;
  }
  return out;
}

/// The core contract: playout realizes exactly the relation-defined oracle.
void expect_matches_oracle(const TemporalSpec& spec) {
  const auto expected = spec.expected_intervals();
  const auto actual = realize(spec);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [name, iv] : expected) {
    ASSERT_TRUE(actual.count(name)) << name;
    EXPECT_EQ(actual.at(name).start, iv.start) << "start of " << name;
    EXPECT_EQ(actual.at(name).end, iv.end) << "end of " << name;
  }
}

// --- the seven canonical relations ----------------------------------------------

TEST(Ocpn, Before) {
  const auto s = TemporalSpec::relate(Relation::kBefore, obj("a", 4),
                                      obj("b", 2), sec(3));
  EXPECT_EQ(s.duration(), sec(9));
  const auto iv = realize(s);
  EXPECT_EQ(iv.at("a").start, sec(0));
  EXPECT_EQ(iv.at("a").end, sec(4));
  EXPECT_EQ(iv.at("b").start, sec(7));
  EXPECT_EQ(iv.at("b").end, sec(9));
  expect_matches_oracle(s);
}

TEST(Ocpn, Meets) {
  const auto s = TemporalSpec::relate(Relation::kMeets, obj("a", 4), obj("b", 2));
  EXPECT_EQ(s.duration(), sec(6));
  const auto iv = realize(s);
  EXPECT_EQ(iv.at("a").end, iv.at("b").start);
  expect_matches_oracle(s);
}

TEST(Ocpn, Overlaps) {
  const auto s = TemporalSpec::relate(Relation::kOverlaps, obj("a", 5),
                                      obj("b", 4), sec(3));
  EXPECT_EQ(s.duration(), sec(7));
  const auto iv = realize(s);
  EXPECT_EQ(iv.at("b").start, sec(3));
  // b starts while a is active, and outlasts a.
  EXPECT_LT(iv.at("b").start, iv.at("a").end);
  EXPECT_GT(iv.at("b").end, iv.at("a").end);
  expect_matches_oracle(s);
}

TEST(Ocpn, During) {
  const auto s = TemporalSpec::relate(Relation::kDuring, obj("a", 10),
                                      obj("b", 3), sec(4));
  EXPECT_EQ(s.duration(), sec(10));
  const auto iv = realize(s);
  EXPECT_GT(iv.at("b").start, iv.at("a").start);
  EXPECT_LT(iv.at("b").end, iv.at("a").end);
  expect_matches_oracle(s);
}

TEST(Ocpn, Starts) {
  const auto s = TemporalSpec::relate(Relation::kStarts, obj("a", 3), obj("b", 8));
  const auto iv = realize(s);
  EXPECT_EQ(iv.at("a").start, iv.at("b").start);
  EXPECT_EQ(s.duration(), sec(8));
  expect_matches_oracle(s);
}

TEST(Ocpn, Finishes) {
  const auto s = TemporalSpec::relate(Relation::kFinishes, obj("a", 8), obj("b", 3));
  const auto iv = realize(s);
  EXPECT_EQ(iv.at("a").end, iv.at("b").end);
  EXPECT_EQ(iv.at("b").start, sec(5));
  expect_matches_oracle(s);
}

TEST(Ocpn, Equals) {
  const auto s = TemporalSpec::relate(Relation::kEquals, obj("a", 6), obj("b", 6));
  const auto iv = realize(s);
  EXPECT_EQ(iv.at("a").start, iv.at("b").start);
  EXPECT_EQ(iv.at("a").end, iv.at("b").end);
  expect_matches_oracle(s);
}

// --- constraint validation --------------------------------------------------------

TEST(OcpnValidation, RejectsImpossibleRelations) {
  EXPECT_THROW(TemporalSpec::relate(Relation::kBefore, obj("a", 1), obj("b", 1),
                                    msec(-5)),
               std::invalid_argument);
  // overlaps: offset outside a
  EXPECT_THROW(TemporalSpec::relate(Relation::kOverlaps, obj("a", 2),
                                    obj("b", 5), sec(3)),
               std::invalid_argument);
  // overlaps: b does not outlast a
  EXPECT_THROW(TemporalSpec::relate(Relation::kOverlaps, obj("a", 10),
                                    obj("b", 2), sec(1)),
               std::invalid_argument);
  // during: b sticks out
  EXPECT_THROW(TemporalSpec::relate(Relation::kDuring, obj("a", 3), obj("b", 5),
                                    sec(1)),
               std::invalid_argument);
  // finishes: b longer than a
  EXPECT_THROW(
      TemporalSpec::relate(Relation::kFinishes, obj("a", 2), obj("b", 5)),
      std::invalid_argument);
  // equals: durations differ
  EXPECT_THROW(TemporalSpec::relate(Relation::kEquals, obj("a", 2), obj("b", 3)),
               std::invalid_argument);
}

TEST(OcpnValidation, RelationNames) {
  EXPECT_EQ(to_string(Relation::kBefore), "before");
  EXPECT_EQ(to_string(Relation::kEquals), "equals");
}

// --- composite specifications ------------------------------------------------------

TEST(OcpnComposite, LectureShapedSpec) {
  // video(30) equals audio(30); slides sequence runs during the video.
  auto av = TemporalSpec::relate(Relation::kEquals, obj("video", 30),
                                 obj("audio", 30));
  auto slides = TemporalSpec::relate(
      Relation::kMeets,
      TemporalSpec::relate(Relation::kMeets, obj("s1", 8), obj("s2", 12)),
      obj("s3", 10));
  const auto spec =
      TemporalSpec::relate(Relation::kStarts, std::move(av), std::move(slides));
  EXPECT_EQ(spec.duration(), sec(30));
  EXPECT_EQ(spec.object_count(), 5u);
  expect_matches_oracle(spec);

  const auto iv = realize(spec);
  EXPECT_EQ(iv.at("s1").start, sec(0));
  EXPECT_EQ(iv.at("s2").start, sec(8));
  EXPECT_EQ(iv.at("s3").start, sec(20));
  EXPECT_EQ(iv.at("s3").end, sec(30));
}

TEST(OcpnComposite, DeepNesting) {
  TemporalSpec s = obj("o0", 1);
  for (int i = 1; i < 40; ++i) {
    s = TemporalSpec::relate(Relation::kMeets, std::move(s),
                             obj("o" + std::to_string(i), 1));
  }
  EXPECT_EQ(s.duration(), sec(40));
  expect_matches_oracle(s);
}

/// Property sweep: random well-formed specs must always realize their oracle.
class OcpnRandomSweep : public ::testing::TestWithParam<int> {};

TemporalSpec random_spec(net::Rng& rng, int depth, int& counter) {
  if (depth == 0 || rng.bernoulli(0.3)) {
    return obj("x" + std::to_string(counter++), rng.uniform_int(1, 20));
  }
  auto a = random_spec(rng, depth - 1, counter);
  auto b = random_spec(rng, depth - 1, counter);
  const SimDuration da = a.duration();
  const SimDuration db = b.duration();
  switch (rng.uniform_int(0, 4)) {
    case 0:
      return TemporalSpec::relate(Relation::kBefore, std::move(a), std::move(b),
                                  sec(rng.uniform_int(0, 5)));
    case 1:
      return TemporalSpec::relate(Relation::kMeets, std::move(a), std::move(b));
    case 2:
      return TemporalSpec::relate(Relation::kStarts, std::move(a), std::move(b));
    case 3:
      if (db <= da) {
        return TemporalSpec::relate(Relation::kFinishes, std::move(a),
                                    std::move(b));
      }
      return TemporalSpec::relate(Relation::kFinishes, std::move(b),
                                  std::move(a));
    default: {
      // during with a guaranteed-valid offset
      TemporalSpec big = da >= db ? std::move(a) : std::move(b);
      TemporalSpec small = da >= db ? std::move(b) : std::move(a);
      const std::int64_t slack_us =
          (big.duration() - small.duration()).us;
      const SimDuration off{rng.uniform_int(0, slack_us)};
      return TemporalSpec::relate(Relation::kDuring, std::move(big),
                                  std::move(small), off);
    }
  }
}

TEST_P(OcpnRandomSweep, PlayoutMatchesOracle) {
  net::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  int counter = 0;
  const auto spec = random_spec(rng, 4, counter);
  expect_matches_oracle(spec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OcpnRandomSweep, ::testing::Range(0, 25));

// --- structural health of compiled nets ----------------------------------------------

TEST(OcpnStructure, CompiledNetIsSafeAndDeadlockFreeToSink) {
  const auto spec = TemporalSpec::relate(
      Relation::kStarts,
      TemporalSpec::relate(Relation::kMeets, obj("a", 2), obj("b", 3)),
      obj("c", 5));
  const CompiledOcpn c = build_ocpn(spec);
  const Marking m0 = c.initial_marking();

  // 1-bounded (safe): every place holds at most one token.
  const auto k = boundedness(c.net, m0);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(*k, 1u);

  // The only deadlock is the intended final marking: one token in the sink.
  Marking final = c.net.empty_marking();
  final[c.sink] = 1;
  EXPECT_FALSE(has_unexpected_deadlock(c.net, m0, &final));

  // No dead transitions: every object is presentable.
  EXPECT_TRUE(dead_transitions(c.net, m0).empty());
}

TEST(OcpnStructure, TokenConservationSourceToSink) {
  const auto spec = TemporalSpec::relate(Relation::kMeets, obj("a", 1), obj("b", 1));
  const CompiledOcpn c = build_ocpn(spec);
  const auto trace = play(c.net, c.initial_marking());
  // After playout the sink received exactly one token: its interval exists.
  int sink_tokens = 0;
  for (const auto& iv : trace.intervals) {
    if (iv.place == c.sink) ++sink_tokens;
  }
  EXPECT_EQ(sink_tokens, 1);
}

TEST(OcpnStructure, ObjectPlaceMapComplete) {
  const auto spec = TemporalSpec::relate(Relation::kStarts, obj("a", 2), obj("b", 2));
  const CompiledOcpn c = build_ocpn(spec);
  ASSERT_EQ(c.object_place.size(), 2u);
  for (const auto& [name, place] : c.object_place) {
    ASSERT_TRUE(c.net.media(place).has_value());
    EXPECT_EQ(c.net.media(place)->object_name, name);
  }
}

TEST(OcpnStructure, LeafSpecCompiles) {
  const CompiledOcpn c = build_ocpn(obj("solo", 7));
  const auto trace = play(c.net, c.initial_marking());
  EXPECT_EQ(trace.makespan, sec(7));
  const auto iv = trace.interval_of(c.net, "solo");
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->start, sec(0));
  EXPECT_EQ(iv->end, sec(7));
}

}  // namespace
}  // namespace lod::core
