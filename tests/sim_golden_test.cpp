#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "lod/net/network.hpp"
#include "lod/obs/export.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"

/// \file sim_golden_test.cpp
/// Byte-identical regression gate for the simulated transport.
///
/// Runs one fixed lecture scenario (lossy LAN, ETPN player with selective
/// repair, slide script-commands fetched over RPC) and compares the full
/// Prometheus export of the simulation's metrics snapshot against a golden
/// generated on the pre-Transport-seam tree. Any behavioral drift in the
/// simulator, network, transport, RPC or streaming layers — one extra
/// scheduled event, one more retransmission — changes a counter and fails
/// the byte comparison. This is what "SimTransport is byte-identical to the
/// old SimNetwork+Simulator pair" means, mechanically.
///
/// Regenerate (ONLY for an intentional, reviewed behavior change):
///   LOD_WRITE_GOLDEN=1 build/tests/sim_golden_tests

#ifndef LOD_GOLDEN_DIR
#define LOD_GOLDEN_DIR "."
#endif

namespace lod::streaming {
namespace {

using media::asf::ScriptCommand;
using net::msec;
using net::sec;

std::string run_fixed_scenario() {
  net::Simulator sim;
  net::Network network(sim, 20020617);  // fixed seed: the paper's ICDCS year
  const net::HostId server_host = network.add_host("server");
  const net::HostId client_host =
      network.add_host("client", net::HostClock(msec(40), 80.0));
  net::LinkConfig lan;
  lan.bandwidth_bps = 10'000'000;
  lan.latency = msec(2);
  lan.jitter = net::usec(300);
  lan.loss_rate = 0.02;
  network.add_link(server_host, client_host, lan);

  StreamingServer server(network, server_host);
  net::RpcServer web(network, server_host, proto::kWebPort);
  for (std::uint32_t i = 0; i < 3; ++i) {
    web.route("/slides/" + std::to_string(i),
              [](std::string_view, std::span<const std::byte>) {
                return std::make_pair(200, media::asf::pattern_bytes(20'000, 1));
              });
  }

  EncodeJob job;
  job.profile = *media::find_profile("Video 250k DSL/cable");
  job.title = "Golden Lecture";
  job.author = "Prof";
  job.preroll = msec(2000);
  media::LectureVideoSource v(sec(30), job.profile.fps, job.profile.width,
                              job.profile.height, 7);
  media::LectureAudioSource a(sec(30), job.profile.audio_sample_rate());
  const auto times = media::make_slide_schedule(3, sec(30), 17);
  auto scripts = slide_flip_commands(times, "slides/");
  auto enc = encode_lecture(job, v, a, scripts);
  server.publish("golden", std::move(enc.file));

  PlayerConfig cfg;
  cfg.model = SyncModel::kEtpn;
  cfg.ctl_port = 5000;
  cfg.data_port = 5001;
  cfg.web_server = server_host;
  cfg.repair_losses = true;
  cfg.auto_stop_on_finish = true;
  Player player(network, client_host, cfg);
  player.open_and_play(server_host, "golden");
  sim.run();

  EXPECT_TRUE(player.finished());
  return obs::to_prometheus(sim.obs().snapshot());
}

TEST(SimGolden, PrometheusSnapshotByteIdenticalToPreSeamTree) {
  const std::string got = run_fixed_scenario();
  const std::string path = std::string(LOD_GOLDEN_DIR) + "/sim_transport.prom";

  if (std::getenv("LOD_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << got;
    GTEST_SKIP() << "golden regenerated at " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream want;
  want << in.rdbuf();
  ASSERT_EQ(got, want.str())
      << "SimTransport behavior drifted from the pre-seam golden; if the "
         "change is intentional, regenerate with LOD_WRITE_GOLDEN=1";
}

/// The scenario itself is deterministic: two back-to-back runs in one
/// process produce the same export (guards against the golden comparison
/// passing only by accident of a fresh process).
TEST(SimGolden, ScenarioIsRunToRunDeterministic) {
  EXPECT_EQ(run_fixed_scenario(), run_fixed_scenario());
}

}  // namespace
}  // namespace lod::streaming
