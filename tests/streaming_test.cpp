#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

#include <gtest/gtest.h>

#include <set>

#include "lod/obs/hub.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/server.hpp"

namespace lod::streaming {
namespace {

using media::asf::ScriptCommand;
using net::msec;
using net::sec;
using net::secf;
using net::SimDuration;
using net::SimTime;

/// A small campus: server + web host and one client behind a LAN link.
struct StreamFixture : ::testing::Test {
  StreamFixture() : network(sim, 1234) {
    server_host = network.add_host("server");
    client_host = network.add_host("client");
    net::LinkConfig lan;
    lan.bandwidth_bps = 10'000'000;
    lan.latency = msec(2);
    network.add_link(server_host, client_host, lan);

    server = std::make_unique<StreamingServer>(network, server_host);
    web = std::make_unique<net::RpcServer>(network, server_host,
                                           proto::kWebPort);
  }

  /// Serve every /slides/N path with a blob of the given size.
  void serve_slides(std::uint32_t count, std::uint32_t bytes = 30'000) {
    for (std::uint32_t i = 0; i < count; ++i) {
      web->route("/slides/" + std::to_string(i),
                 [bytes](std::string_view, std::span<const std::byte>) {
                   return std::make_pair(
                       200, media::asf::pattern_bytes(bytes, 1));
                 });
    }
  }

  EncodeJob default_job() {
    EncodeJob job;
    job.profile = *media::find_profile("Video 250k DSL/cable");
    job.title = "Lecture 1";
    job.author = "Prof";
    job.preroll = msec(2000);
    return job;
  }

  /// Encode a lecture of the given length with slide flips every ~10 s.
  EncodeResult encode(SimDuration len, const EncodeJob& job,
                      std::uint32_t slides = 0) {
    media::LectureVideoSource v(len, job.profile.fps, job.profile.width,
                                job.profile.height, 7);
    media::LectureAudioSource a(len, job.profile.audio_sample_rate());
    std::vector<ScriptCommand> scripts;
    if (slides > 0) {
      const auto times = media::make_slide_schedule(slides, len, 17);
      scripts = slide_flip_commands(times, "slides/");
    }
    return encode_lecture(job, v, a, scripts);
  }

  PlayerConfig player_cfg(SyncModel model, net::Port base = 5000) {
    PlayerConfig cfg;
    cfg.model = model;
    cfg.ctl_port = base;
    cfg.data_port = static_cast<net::Port>(base + 1);
    cfg.web_server = server_host;
    return cfg;
  }

  net::Simulator sim;
  net::Network network;
  net::HostId server_host{}, client_host{};
  std::unique_ptr<StreamingServer> server;
  std::unique_ptr<net::RpcServer> web;
};

// --- encoder: stored path ---------------------------------------------------------

TEST_F(StreamFixture, EncodeProducesPlayableFile) {
  const auto job = default_job();
  const auto enc = encode(sec(30), job);
  EXPECT_TRUE(enc.key_id.empty());
  EXPECT_GT(enc.file.packets.size(), 100u);
  EXPECT_FALSE(enc.file.index.empty());
  EXPECT_EQ(enc.file.header.props.title, "Lecture 1");
  ASSERT_EQ(enc.file.header.streams.size(), 2u);
  EXPECT_EQ(enc.file.header.streams[0].type, media::MediaType::kVideo);

  // Bit-rate sanity: the file fits its profile's promise (+ overhead).
  const double bps = static_cast<double>(enc.file.wire_size()) * 8.0 / 30.0;
  EXPECT_LT(bps, job.profile.total_bps * 1.4);
}

TEST_F(StreamFixture, EncodeAudioOnlyProfile) {
  EncodeJob job = default_job();
  job.profile = *media::find_profile("Audio 28.8k (voice)");
  const auto enc = encode(sec(10), job);
  ASSERT_EQ(enc.file.header.streams.size(), 1u);
  EXPECT_EQ(enc.file.header.streams[0].type, media::MediaType::kAudio);
  EXPECT_GT(enc.file.packets.size(), 0u);
}

TEST_F(StreamFixture, EncodeWithDrmProtects) {
  media::DrmSystem drm;
  EncodeJob job = default_job();
  job.drm = &drm;
  job.protect_content = true;
  const auto enc = encode(sec(5), job);
  EXPECT_FALSE(enc.key_id.empty());
  EXPECT_TRUE(enc.file.header.drm.is_protected);
  EXPECT_EQ(enc.file.header.drm.key_id, enc.key_id);
}

TEST_F(StreamFixture, ScriptHelpersProduceOrderedCommands) {
  const auto times = media::make_slide_schedule(5, sec(100));
  const auto cmds = slide_flip_commands(times, "slides/");
  ASSERT_EQ(cmds.size(), 5u);
  EXPECT_EQ(cmds[0].type, "SLIDE");
  EXPECT_EQ(cmds[0].param, "slides/0");
  EXPECT_EQ(cmds[4].param, "slides/4");

  const auto notes = media::make_annotations(3, times, sec(100));
  const auto acmds = annotation_commands(notes);
  ASSERT_EQ(acmds.size(), 3u);
  EXPECT_EQ(acmds[0].type, "ANNOT");
}

// --- server + player: on-demand playback -------------------------------------------

TEST_F(StreamFixture, EndToEndPlaybackRendersEverything) {
  const auto enc = encode(sec(20), default_job());
  const std::size_t total_units = [&] {
    std::size_t n = 0;
    media::asf::Demuxer d(enc.file.header);
    for (const auto& p : enc.file.packets) {
      d.feed(p);
      while (d.next_unit()) ++n;
    }
    return n;
  }();
  server->publish("lec", enc.file);

  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run();

  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.units_rendered(), total_units);
  EXPECT_TRUE(p.stalls().empty());
  EXPECT_EQ(p.units_lost(), 0u);
  EXPECT_GT(p.startup_delay().us, 0);
  EXPECT_LT(p.startup_delay().us, sec(3).us);
}

TEST_F(StreamFixture, RenderTimesMatchPts) {
  const auto enc = encode(sec(10), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_TRUE(p.finished());
  // Once rendering starts, (true_time - pts) must be constant (no drift):
  const auto& r = p.rendered();
  ASSERT_GT(r.size(), 100u);
  const std::int64_t expect = r.front().true_time.us - r.front().pts.us;
  for (const auto& e : r) {
    EXPECT_NEAR(static_cast<double>(e.true_time.us - e.pts.us),
                static_cast<double>(expect), 1000.0);  // 1 ms scheduling slop
  }
}

TEST_F(StreamFixture, DescribeUnknownContentLeavesPlayerIdle) {
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "ghost");
  sim.run();
  EXPECT_FALSE(p.playing());
  EXPECT_EQ(p.units_rendered(), 0u);
}

TEST_F(StreamFixture, PlayFromOffsetSkipsEarlyMedia) {
  const auto enc = encode(sec(30), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec", sec(20));
  sim.run();
  ASSERT_TRUE(p.finished());
  ASSERT_FALSE(p.rendered().empty());
  EXPECT_GE(p.rendered().front().pts, sec(20));
  // Only ~10 s of media rendered.
  EXPECT_LT(p.rendered().size(), 800u);
}

TEST_F(StreamFixture, ServerTracksSessions) {
  const auto enc = encode(sec(5), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(2).us});
  EXPECT_EQ(server->active_sessions(), 1u);
  EXPECT_GT(server->metrics().packets_sent(), 0u);
  sim.run();
  p.stop();
  sim.run();
  EXPECT_EQ(server->active_sessions(), 0u);
}

TEST_F(StreamFixture, LossyLinkLosesUnitsButPlaybackSurvives) {
  net::LinkConfig lossy;
  lossy.bandwidth_bps = 10'000'000;
  lossy.latency = msec(2);
  lossy.loss_rate = 0.05;
  network.set_link_config(server_host, client_host, lossy);

  const auto enc = encode(sec(20), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run();
  EXPECT_TRUE(p.finished());
  EXPECT_GT(p.units_lost(), 0u);
  // 20 s at 15 fps + 5 audio superframes/s ~= 400 units when lossless.
  EXPECT_GT(p.units_rendered(), 300u);  // most of the stream still played
}

TEST_F(StreamFixture, ThinLinkCausesStallsForOcpn) {
  // 200 kb/s link carrying a 250 kb/s profile: must rebuffer repeatedly.
  net::LinkConfig thin;
  thin.bandwidth_bps = 200'000;
  thin.latency = msec(5);
  network.set_link_config(server_host, client_host, thin);
  network.set_link_config(client_host, server_host, thin);

  const auto enc = encode(sec(20), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kOcpn));
  p.open_and_play(server_host, "lec");
  sim.run();
  EXPECT_TRUE(p.finished());
  EXPECT_FALSE(p.stalls().empty());
}

TEST_F(StreamFixture, SelectiveRepairRecoversAllLosses) {
  net::LinkConfig lossy;
  lossy.bandwidth_bps = 10'000'000;
  lossy.latency = msec(2);
  lossy.loss_rate = 0.05;
  network.set_link_config(server_host, client_host, lossy);

  const auto enc = encode(sec(20), default_job());
  const std::size_t total_units = [&] {
    std::size_t n = 0;
    media::asf::Demuxer d(enc.file.header);
    for (const auto& p : enc.file.packets) {
      d.feed(p);
      while (d.next_unit()) ++n;
    }
    return n;
  }();
  server->publish("lec", enc.file);

  auto cfg = player_cfg(SyncModel::kEtpn);
  cfg.repair_losses = true;
  Player p(network, client_host, cfg);
  p.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_TRUE(p.finished());
  EXPECT_GT(p.repairs_requested(), 0u);
  EXPECT_GT(p.repairs_received(), 0u);
  // With NACK repair on a 5% lossy link, every unit should render (repairs
  // land well within the 2 s preroll).
  EXPECT_EQ(p.units_rendered(), total_units);
  EXPECT_TRUE(p.stalls().empty());
}

TEST_F(StreamFixture, WithoutRepairLossesStayLost) {
  net::LinkConfig lossy;
  lossy.bandwidth_bps = 10'000'000;
  lossy.latency = msec(2);
  lossy.loss_rate = 0.05;
  network.set_link_config(server_host, client_host, lossy);
  const auto enc = encode(sec(20), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_TRUE(p.finished());
  EXPECT_GT(p.units_lost(), 0u);
  EXPECT_EQ(p.repairs_requested(), 0u);
}

TEST_F(StreamFixture, RepairGivesUpWhenRepairsAlsoDie) {
  // Brutal 30% loss: some NACKs and repairs die too; the hole timer must
  // keep playback moving instead of blocking on a packet that never comes.
  net::LinkConfig brutal;
  brutal.bandwidth_bps = 10'000'000;
  brutal.latency = msec(2);
  brutal.loss_rate = 0.30;
  network.set_link_config(server_host, client_host, brutal);
  network.set_link_config(client_host, server_host, brutal);
  const auto enc = encode(sec(10), default_job());
  server->publish("lec", enc.file);
  auto cfg = player_cfg(SyncModel::kEtpn);
  cfg.repair_losses = true;
  Player p(network, client_host, cfg);
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(120).us});
  EXPECT_TRUE(p.finished());
  EXPECT_GT(p.units_rendered(), 100u);
}

TEST_F(StreamFixture, RepairSurvivesSeek) {
  net::LinkConfig lossy;
  lossy.bandwidth_bps = 10'000'000;
  lossy.latency = msec(2);
  lossy.loss_rate = 0.05;
  network.set_link_config(server_host, client_host, lossy);
  const auto enc = encode(sec(40), default_job());
  server->publish("lec", enc.file);
  auto cfg = player_cfg(SyncModel::kEtpn);
  cfg.repair_losses = true;
  Player p(network, client_host, cfg);
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(5).us});
  p.seek(sec(30));
  sim.run();
  ASSERT_TRUE(p.finished());
  ASSERT_FALSE(p.rendered().empty());
  EXPECT_GT(p.rendered().back().pts, sec(39));
}

// --- script commands / slides ---------------------------------------------------------

TEST_F(StreamFixture, SlidesFlipNearTheirScheduledTimes) {
  serve_slides(6);
  const auto enc = encode(sec(60), default_job(), 6);
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_TRUE(p.finished());
  ASSERT_EQ(p.slides().size(), 6u);
  // Every slide appeared within 150 ms of its scheduled media time
  // (render offset + RPC fetch).
  const auto& r = p.rendered();
  const std::int64_t render_offset = r.front().true_time.us - r.front().pts.us;
  for (const auto& s : p.slides()) {
    const std::int64_t shown_media =
        s.shown_true.us - render_offset;
    EXPECT_NEAR(static_cast<double>(shown_media - s.pts.us), 0.0, 150'000.0)
        << "slide " << s.url;
    EXPECT_GT(s.fetch_latency.us, 0);
  }
}

TEST_F(StreamFixture, AnnotationsSurfaceInOrder) {
  const auto times = media::make_slide_schedule(4, sec(40));
  auto scripts = slide_flip_commands(times, "slides/");
  const auto notes = media::make_annotations(5, times, sec(40));
  const auto acmds = annotation_commands(notes);
  scripts.insert(scripts.end(), acmds.begin(), acmds.end());

  EncodeJob job = default_job();
  media::LectureVideoSource v(sec(40), job.profile.fps, job.profile.width,
                              job.profile.height);
  media::LectureAudioSource a(sec(40), job.profile.audio_sample_rate());
  auto enc = encode_lecture(job, v, a, scripts);
  server->publish("lec", enc.file);
  serve_slides(4);

  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_EQ(p.annotations().size(), 5u);
  for (std::size_t i = 1; i < p.annotations().size(); ++i) {
    EXPECT_GE(p.annotations()[i].pts, p.annotations()[i - 1].pts);
  }
}

// --- user interactions (the paper's C2 claim) -------------------------------------------

TEST_F(StreamFixture, EtpnPauseResumeKeepsPosition) {
  const auto enc = encode(sec(20), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(8).us});
  ASSERT_TRUE(p.playing());
  const SimDuration pos = p.position();
  p.pause();
  sim.run_until(SimTime{sec(30).us});
  EXPECT_TRUE(p.paused_state());
  EXPECT_EQ(p.position(), pos);
  p.resume();
  sim.run();
  EXPECT_TRUE(p.finished());
  // No duplicate rendering: each pts rendered once.
  std::set<std::pair<std::int64_t, int>> seen;
  for (const auto& e : p.rendered()) {
    EXPECT_TRUE(seen.insert({e.pts.us, e.stream_id}).second)
        << "pts " << e.pts.us << " rendered twice";
  }
}

TEST_F(StreamFixture, EtpnSeekIsFast) {
  const auto enc = encode(sec(60), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(5).us});
  p.seek(sec(45));
  sim.run();
  ASSERT_TRUE(p.finished());
  ASSERT_EQ(p.interactions().size(), 1u);
  const auto& ir = p.interactions()[0];
  ASSERT_TRUE(ir.satisfied);
  // Resync within a couple of prerolls, NOT proportional to the target.
  EXPECT_LT(ir.resync_latency().us, sec(4).us);
}

TEST_F(StreamFixture, OcpnSeekRestartsFromTop) {
  const auto enc = encode(sec(60), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kOcpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(5).us});
  p.seek(sec(45));
  sim.run();
  ASSERT_TRUE(p.finished());
  ASSERT_EQ(p.interactions().size(), 1u);
  const auto& ir = p.interactions()[0];
  ASSERT_TRUE(ir.satisfied);
  // The pre-orchestrated model must replay 45 s of schedule (minus the
  // preroll burst): resync latency is proportional to the seek target.
  EXPECT_GT(ir.resync_latency().us, sec(30).us);
}

TEST_F(StreamFixture, EtpnBeatsOcpnOnResume) {
  const auto enc = encode(sec(40), default_job());
  server->publish("lec", enc.file);

  auto measure = [&](SyncModel model, net::Port base) {
    Player p(network, client_host, player_cfg(model, base));
    p.open_and_play(server_host, "lec");
    sim.run_until(SimTime{sim.now().us + sec(10).us});
    p.pause();
    sim.run_until(SimTime{sim.now().us + sec(5).us});
    p.resume();
    const SimTime resumed_at = sim.now();
    sim.run();
    SimDuration latency{net::SimTime::max().us};
    for (const auto& ir : p.interactions()) {
      if (ir.kind == InteractionRecord::Kind::kResume && ir.satisfied) {
        latency = ir.first_render_after - resumed_at;
      }
    }
    return latency;
  };

  const auto etpn = measure(SyncModel::kEtpn, 5000);
  const auto ocpn = measure(SyncModel::kOcpn, 6000);
  EXPECT_LT(etpn.us, msec(500).us);
  EXPECT_GT(ocpn.us, sec(5).us);
  EXPECT_GT(ocpn.us, etpn.us * 10);
}

TEST_F(StreamFixture, EtpnDoubleSpeedHalvesWallTime) {
  const auto enc = encode(sec(30), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(5).us});
  ASSERT_TRUE(p.playing());
  p.set_rate(2.0);
  sim.run();
  ASSERT_TRUE(p.finished());
  // ~5 s at 1x + ~25 s of media at 2x + preroll ~= 20 s wall, not 33.
  EXPECT_LT(sim.now().us, sec(23).us);
  EXPECT_TRUE(p.stalls().empty());  // the server re-paced to keep up
  // All media still rendered, media timeline intact.
  EXPECT_GT(p.rendered().back().pts, sec(29));
}

TEST_F(StreamFixture, EtpnSlowMotion) {
  const auto enc = encode(sec(10), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(2).us});
  p.set_rate(0.5);
  sim.run();
  ASSERT_TRUE(p.finished());
  // 2 s at 1x + 8 s of media at 0.5x = ~18 s wall.
  EXPECT_GT(sim.now().us, sec(16).us);
  EXPECT_TRUE(p.stalls().empty());
}

TEST_F(StreamFixture, OcpnIgnoresRateChanges) {
  const auto enc = encode(sec(10), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kOcpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(2).us});
  p.set_rate(2.0);  // no speed transition in the pre-orchestrated model
  sim.run();
  ASSERT_TRUE(p.finished());
  EXPECT_NEAR(static_cast<double>(sim.now().us), 10e6, 1e6);
  EXPECT_TRUE(p.interactions().empty());
}

// --- clock sync (the paper's C1 claim) ----------------------------------------------------

TEST_F(StreamFixture, EtpnCorrectsSkewedClock) {
  // Give the client a badly skewed clock.
  network.clock(client_host) = net::HostClock(msec(400), 50.0);
  const auto enc = encode(sec(10), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_TRUE(p.finished());
  // After sync the client clock is within a few ms of true time
  // (error bounded by path asymmetry, here symmetric: ~0).
  const SimDuration residual = network.local_now(client_host) - sim.now();
  EXPECT_LT(std::abs(residual.us), msec(5).us);
  EXPECT_NE(p.last_clock_correction().us, 0);
}

TEST_F(StreamFixture, OcpnRendersOnSkewedClock) {
  network.clock(client_host) = net::HostClock(msec(400), 0.0);
  const auto enc = encode(sec(10), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kOcpn));
  p.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_TRUE(p.finished());
  // OCPN never corrects: local clock still 400 ms off.
  const SimDuration residual = network.local_now(client_host) - sim.now();
  EXPECT_NEAR(static_cast<double>(residual.us), 400'000.0, 1000.0);
}

// --- QoS channels (XOCPN) -------------------------------------------------------------------

TEST_F(StreamFixture, XocpnReservesChannelAndSurvivesCrossTraffic) {
  const auto enc = encode(sec(20), default_job());
  server->publish("lec", enc.file);

  // Cross traffic: another host pair flooding the same link would need a
  // shared topology; here we flood server->client directly.
  net::DatagramSocket noise_src(network, server_host, 7777);
  std::function<void()> flood = [&] {
    noise_src.send_to(client_host, 7778,
                      std::vector<std::byte>(1400, std::byte{0}));
    sim.schedule_after(msec(1), flood);  // ~9.6 Mb/s of noise on 10 Mb/s
  };
  sim.schedule_after(msec(0), flood);

  Player p(network, client_host, player_cfg(SyncModel::kXocpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(30).us});
  EXPECT_TRUE(p.finished());
  EXPECT_TRUE(p.stalls().empty());  // the reserved channel shrugs the flood off
}

TEST_F(StreamFixture, OcpnDegradesUnderSameCrossTraffic) {
  // The same 11+ Mb/s flood on the 10 Mb/s link: best-effort stream packets
  // share the drop-tail queue with the noise and a measurable fraction dies,
  // while the XOCPN test above loses nothing on its reserved channel.
  const auto enc = encode(sec(20), default_job());
  server->publish("lec", enc.file);

  net::DatagramSocket noise_src(network, server_host, 7777);
  std::function<void()> flood = [&] {
    noise_src.send_to(client_host, 7778,
                      std::vector<std::byte>(1400, std::byte{0}));
    sim.schedule_after(msec(1), flood);
  };
  sim.schedule_after(msec(0), flood);

  Player p(network, client_host, player_cfg(SyncModel::kOcpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(120).us});
  EXPECT_GT(p.units_lost(), 20u);
}

// --- DRM through the full stack -----------------------------------------------------------

TEST_F(StreamFixture, ProtectedContentPlaysWithLicense) {
  media::DrmSystem drm;
  EncodeJob job = default_job();
  job.drm = &drm;
  job.protect_content = true;
  const auto enc = encode(sec(5), job);
  server->publish("lec", enc.file);

  Player p(network, client_host, player_cfg(SyncModel::kEtpn), &drm);
  p.open_and_play(server_host, "lec");
  sim.run();
  EXPECT_TRUE(p.finished());
  EXPECT_FALSE(p.drm_blocked());
  EXPECT_GE(p.units_rendered(), 95u);  // 5 s: ~75 video + ~25 audio units
  EXPECT_GT(drm.licenses_issued(), 0u);
}

TEST_F(StreamFixture, ProtectedContentBlockedWithoutLicenseAuthority) {
  media::DrmSystem drm;
  EncodeJob job = default_job();
  job.drm = &drm;
  job.protect_content = true;
  const auto enc = encode(sec(5), job);
  server->publish("lec", enc.file);

  Player p(network, client_host, player_cfg(SyncModel::kEtpn), nullptr);
  p.open_and_play(server_host, "lec");
  sim.run();
  EXPECT_TRUE(p.drm_blocked());
  EXPECT_EQ(p.units_rendered(), 0u);
}

// --- live broadcast ---------------------------------------------------------------------------

TEST_F(StreamFixture, LiveBroadcastReachesSubscriber) {
  EncodeJob job = default_job();
  media::LectureVideoSource v(sec(10), job.profile.fps, job.profile.width,
                              job.profile.height);
  media::LectureAudioSource a(sec(10), job.profile.audio_sample_rate());
  LiveEncoder live(sim, job, std::move(v), std::move(a), {});
  auto sink = server->open_live_channel("live1", live.header());
  live.on_packet([sink](const media::asf::DataPacket& p) { sink(p); });

  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.join_live(server_host, "live1");
  sim.run_until(SimTime{msec(100).us});  // join first
  live.start();
  // Close the channel when the encoder drains.
  std::function<void()> waiter = [&] {
    if (live.done()) {
      server->close_live_channel("live1");
    } else {
      sim.schedule_after(msec(200), waiter);
    }
  };
  sim.schedule_after(msec(200), waiter);
  sim.run();

  EXPECT_TRUE(live.done());
  EXPECT_GT(live.packets_emitted(), 50u);
  EXPECT_TRUE(p.finished());
  EXPECT_GT(p.units_rendered(), 150u);  // 10 s: ~150 video + ~50 audio
}

TEST_F(StreamFixture, LiveEncoderPacesInRealTime) {
  EncodeJob job = default_job();
  media::LectureVideoSource v(sec(5), job.profile.fps, job.profile.width,
                              job.profile.height);
  media::LectureAudioSource a(sec(5), job.profile.audio_sample_rate());
  LiveEncoder live(sim, job, std::move(v), std::move(a), {});
  std::vector<SimTime> emit_times;
  live.on_packet([&](const media::asf::DataPacket&) {
    emit_times.push_back(sim.now());
  });
  live.start();
  sim.run();
  ASSERT_TRUE(live.done());
  ASSERT_GT(emit_times.size(), 10u);
  // Packets flow across the whole 5 s capture, not in one burst.
  EXPECT_GT((emit_times.back() - emit_times.front()).us, sec(3).us);
  // ... and the encoder finished right at the end of the capture.
  EXPECT_NEAR(static_cast<double>(sim.now().us), 5e6, 3e5);
}

TEST_F(StreamFixture, JoinUnknownLiveChannelFails) {
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.join_live(server_host, "nothing");
  sim.run();
  EXPECT_EQ(p.units_rendered(), 0u);
}

// --- the observability layer through the streaming stack --------------------------

TEST_F(StreamFixture, ServerMetricsViewExposesRegistrySeries) {
  const auto enc = encode(sec(5), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(2).us});

  const ServerMetrics m = server->metrics();
  EXPECT_EQ(m.active_sessions(), 1);
  EXPECT_EQ(m.sessions_opened(), 1u);
  EXPECT_GT(m.packets_sent(), 0u);
  EXPECT_GT(m.bytes_sent(), 0u);
  EXPECT_EQ(static_cast<std::size_t>(m.active_sessions()),
            server->active_sessions());
  const auto via_view = m.session(1);
  ASSERT_TRUE(via_view.has_value());
  EXPECT_GT(via_view->packets_sent, 0u);
  EXPECT_FALSE(m.session(999).has_value());

  // ... and the registry publishes the same numbers under lod.server.*.
  const obs::Snapshot snap = m.snapshot();
  const obs::Labels at_server{{"host", std::to_string(server_host)}};
  EXPECT_EQ(snap.counter("lod.server.packets_sent", at_server),
            m.packets_sent());
  EXPECT_EQ(snap.gauge("lod.server.active_sessions", at_server), 1);
  EXPECT_EQ(snap.counter("lod.server.session.packets_sent",
                         {{"host", std::to_string(server_host)},
                          {"session", "1"}}),
            via_view->packets_sent);

  sim.run();
  p.stop();
  sim.run();
  EXPECT_EQ(m.active_sessions(), 0);
}

TEST_F(StreamFixture, ServerConfigValidatesTunablesAndPorts) {
  const auto port = static_cast<net::Port>(proto::kControlPort + 100);
  ServerConfig cfg;
  cfg.control_port = port;
  cfg.fast_start_multiplier = 0.25;  // illegal: clamps to 1.0
  StreamingServer s2(network, server_host, cfg);
  EXPECT_DOUBLE_EQ(s2.fast_start_multiplier(), 1.0);

  ServerConfig update = s2.config();
  update.fast_start_multiplier = 6.0;
  update.control_port = 12345;  // fixed at construction: must be ignored
  s2.configure(update);
  EXPECT_DOUBLE_EQ(s2.config().fast_start_multiplier, 6.0);
  EXPECT_EQ(s2.config().control_port, port);

  // Structural fields cannot be clamped, only rejected.
  ServerConfig bad_zero;
  bad_zero.control_port = 0;
  EXPECT_THROW((void)bad_zero.validated(), std::invalid_argument);
  ServerConfig bad_max;
  bad_max.control_port = 65535;  // data port would be control_port + 1
  EXPECT_THROW((void)bad_max.validated(), std::invalid_argument);

  // configure() pins the construction-time port BEFORE validating, so a
  // stale struct with a zeroed port must not throw.
  ServerConfig stale;
  stale.control_port = 0;
  stale.fast_start_multiplier = 3.0;
  EXPECT_NO_THROW(s2.configure(stale));
  EXPECT_EQ(s2.config().control_port, port);
  EXPECT_DOUBLE_EQ(s2.config().fast_start_multiplier, 3.0);
}

TEST_F(StreamFixture, PlayerObserverReceivesTypedEvents) {
  struct CountingObserver : PlayerObserver {
    std::size_t renders = 0, slides = 0, finishes = 0;
    std::vector<InteractionRecord::Kind> interactions;
    void on_render(const RenderEvent&) override { ++renders; }
    void on_slide(const SlideEvent&) override { ++slides; }
    void on_interaction(const InteractionRecord& ir) override {
      interactions.push_back(ir.kind);
    }
    void on_finished() override { ++finishes; }
  };

  serve_slides(3);
  const auto enc = encode(sec(30), default_job(), 3);
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  CountingObserver watch;
  p.set_observer(&watch);
  EXPECT_EQ(p.observer(), &watch);
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(10).us});
  p.pause();
  sim.run_until(SimTime{sec(12).us});
  p.resume();
  sim.run();

  ASSERT_TRUE(p.finished());
  EXPECT_EQ(watch.renders, p.units_rendered());
  EXPECT_EQ(watch.slides, p.slides().size());
  EXPECT_EQ(watch.slides, 3u);
  EXPECT_EQ(watch.finishes, 1u);
  ASSERT_EQ(watch.interactions.size(), p.interactions().size());
  ASSERT_GE(watch.interactions.size(), 2u);
  EXPECT_EQ(watch.interactions[0], InteractionRecord::Kind::kPause);
  EXPECT_EQ(watch.interactions[1], InteractionRecord::Kind::kResume);
}

TEST_F(StreamFixture, TraceRecordsSessionLifecycle) {
  sim.obs().trace().set_enabled(true);
  const auto enc = encode(sec(5), default_job());
  server->publish("lec", enc.file);
  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run_until(SimTime{sec(2).us});
  p.seek(sec(4));
  sim.run();
  p.stop();
  sim.run();

  const auto& sink = sim.obs().trace();
  const auto evs = sink.events();
  const auto open = first_event(evs, obs::EventType::kSessionOpen);
  ASSERT_TRUE(open.has_value());
  EXPECT_EQ(open->detail, "lec");
  const auto issued =
      first_event(evs, obs::EventType::kPlayIssued, client_host);
  ASSERT_TRUE(issued.has_value());

  // The PLAY -> first-frame span brackets the startup delay (the first
  // render can trail the buffering->playing transition by a timer tick).
  const auto startup = span_between(evs, obs::EventType::kPlayIssued,
                                    obs::EventType::kRenderStart, client_host);
  ASSERT_TRUE(startup.has_value());
  EXPECT_GE(*startup, p.startup_delay().us);
  EXPECT_LT(*startup, p.startup_delay().us + sec(1).us);

  // Both ends of the seek appear (player issues, server executes).
  EXPECT_FALSE(sink.events(obs::EventType::kSessionSeek).empty());
  EXPECT_FALSE(sink.events(obs::EventType::kSessionStop).empty());
  // Network-level events ride the same timeline.
  EXPECT_FALSE(sink.events(obs::EventType::kPacketSend).empty());
  EXPECT_FALSE(sink.events(obs::EventType::kPacketRecv).empty());
}

TEST_F(StreamFixture, SnapshotDeltaIsolatesOnePlayback) {
  const auto enc = encode(sec(5), default_job());
  server->publish("lec", enc.file);
  const obs::Snapshot before = sim.obs().metrics().snapshot();

  Player p(network, client_host, player_cfg(SyncModel::kEtpn));
  p.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_TRUE(p.finished());

  const obs::Snapshot delta = sim.obs().metrics().snapshot().since(before);
  const obs::Labels at_client{{"host", std::to_string(client_host)}};
  EXPECT_EQ(delta.counter("lod.player.units_rendered", at_client),
            p.units_rendered());
  EXPECT_GT(delta.counter("lod.net.packets_delivered"), 0u);
  EXPECT_GT(delta.total("lod.server.session.packets_sent"), 0u);
  EXPECT_GT(delta.counter("lod.sim.events_fired"), 0u);
  const auto* startup =
      delta.histogram("lod.player.startup_us", at_client);
  ASSERT_NE(startup, nullptr);
  EXPECT_EQ(startup->count, 1u);
  EXPECT_EQ(startup->sum, p.startup_delay().us);
}

}  // namespace
}  // namespace lod::streaming
