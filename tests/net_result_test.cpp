#include "lod/net/result.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "lod/edge/edge_node.hpp"
#include "lod/lod/floor.hpp"
#include "lod/net/frame.hpp"
#include "lod/net/network.hpp"
#include "lod/net/real_transport.hpp"
#include "lod/net/transport.hpp"
#include "lod/streaming/server.hpp"

/// \file net_result_test.cpp
/// `net::Result<T, net::Error>` propagation through real call sites: the
/// floor-control client, the origin gateway, and the blocking TCP RPC
/// client. The point of the error-aware surfaces is that "the service said
/// no" (a value) and "the request never made it" (an error — refused,
/// deadline, EOF) stay distinguishable all the way up, on both backends.

namespace lod {
namespace {

using net::msec;
using net::sec;

// --- simulated backend ------------------------------------------------------------

struct SimResultTest : ::testing::Test {
  net::Simulator sim;
  net::Network network{sim, 42};
  net::HostId teacher{};
  net::HostId student{};

  SimResultTest() {
    teacher = network.add_host("teacher");
    student = network.add_host("student");
    net::LinkConfig lan;
    lan.bandwidth_bps = 10'000'000;
    lan.latency = msec(2);
    network.add_link(teacher, student, lan);
  }

  void run(net::SimDuration d) { sim.run_until(network.now() + d); }
};

TEST_F(SimResultTest, FloorVerdictsArriveAsValuesNotErrors) {
  lod::FloorService service(network, teacher, 8100, {"ann", "bob"});
  lod::FloorClient ann(network, student, 6000, "ann", teacher, 8100, {});
  lod::FloorClient bob(network, student, 6010, "bob", teacher, 8100, {});

  std::optional<net::Result<bool>> granted, denied, released;
  ann.request_floor_result([&](net::Result<bool> r) { granted = r; });
  run(sec(1));
  ASSERT_TRUE(granted.has_value());
  ASSERT_TRUE(granted->has_value()) << "transport error where a verdict "
                                       "was expected";
  EXPECT_TRUE(**granted);  // the floor was free: granted

  // A non-holder releasing is a SERVICE no — ok(false), not an error.
  bob.release_floor_result([&](net::Result<bool> r) { released = r; });
  // Requesting twice is also a service no.
  ann.request_floor_result([&](net::Result<bool> r) { denied = r; });
  run(sec(1));
  ASSERT_TRUE(released.has_value() && denied.has_value());
  ASSERT_TRUE(released->has_value());
  ASSERT_TRUE(denied->has_value());
  EXPECT_FALSE(**released);
  EXPECT_FALSE(**denied);
}

TEST_F(SimResultTest, ArmedDeadlineMapsSilenceToKTimeout) {
  // Nothing listens on this port; without a deadline the callback would
  // simply never fire. With one armed, silence becomes an explicit error.
  lod::FloorClient ghost(network, student, 6020, "ann", teacher, 8999, {});
  ghost.set_call_timeout(msec(250));
  std::optional<net::Result<bool>> r;
  ghost.request_floor_result([&](net::Result<bool> v) { r = v; });
  run(sec(2));
  ASSERT_TRUE(r.has_value());
  ASSERT_FALSE(r->has_value());
  EXPECT_EQ(r->error(), net::Error::kTimeout);
}

TEST_F(SimResultTest, GatewayStatusAndDeadlineStayDistinguishable) {
  streaming::StreamingServer server(network, teacher);
  edge::OriginGateway gateway(network, server);
  net::RpcClient cli(network, student, 6500);

  // Unknown content: the gateway ANSWERS (404). That is a value.
  net::ByteWriter w;
  w.str("no-such-lecture");
  std::optional<net::Result<net::RpcReply>> got;
  cli.call(teacher, edge::kOriginGatewayPort, "/edge/meta",
           std::move(w).take(),
           [&](net::Result<net::RpcReply> r) { got = std::move(r); });
  run(sec(1));
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ((*got)->status, 404);

  // Wrong port: nobody answers, and the armed deadline says so.
  std::optional<net::Result<net::RpcReply>> dead;
  net::ByteWriter w2;
  w2.str("no-such-lecture");
  cli.call(teacher, 9999, "/edge/meta", std::move(w2).take(),
           [&](net::Result<net::RpcReply> r) { dead = std::move(r); },
           net::RpcClient::CallOptions{msec(250)});
  run(sec(2));
  ASSERT_TRUE(dead.has_value());
  ASSERT_FALSE(dead->has_value());
  EXPECT_EQ(dead->error(), net::Error::kTimeout);
}

// --- real backend -----------------------------------------------------------------

TEST(RealResultTest, ConnectToSilentPortMapsToKRefused) {
  net::RealTransport rt;  // never run — we only want an address nobody serves
  const net::HostId h = rt.add_host("lonely");
  net::TcpRpcClient cli(rt.host_address(h), 19999);
  const auto r = cli.call("/ping", {}, 1000);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), net::Error::kRefused);
}

TEST(RealResultTest, MalformedFrameGetsConnectionClosedCountedAndRecovered) {
  net::RealTransport rt;
  const net::HostId h = rt.add_host("origin");
  net::RpcServer rpc(rt, h, 7200);
  rpc.route("/ping", [](std::string_view, std::span<const std::byte>) {
    return std::make_pair(200, std::vector<std::byte>{});
  });
  const net::Result<void> listening = rt.listen_tcp(h, 7300, rpc);
  ASSERT_TRUE(listening.has_value())
      << "listen_tcp: " << net::to_string(listening.error());
  std::thread loop([&] { rt.run(); });

  net::TcpRpcClient cli(rt.host_address(h), 7300);
  const auto ok1 = cli.call("/ping", {}, 2000);
  ASSERT_TRUE(ok1.has_value()) << net::to_string(ok1.error());
  EXPECT_EQ(ok1->status, 200);

  // A path over the sanity bound is malformed on the wire: the server
  // counts it, drops the connection, and the client surfaces the EOF as
  // kClosed — not a crash, not a silent hang.
  const std::string absurd(net::frame::kMaxRpcPathLen + 1, 'p');
  const auto closed = cli.call(absurd, {}, 2000);
  ASSERT_FALSE(closed.has_value());
  EXPECT_EQ(closed.error(), net::Error::kClosed);

  // The client reconnects on the next call; the node is still serving.
  const auto ok2 = cli.call("/ping", {}, 2000);
  ASSERT_TRUE(ok2.has_value()) << net::to_string(ok2.error());
  EXPECT_EQ(ok2->status, 200);

  rt.stop();
  loop.join();
  EXPECT_GE(rt.obs().metrics().snapshot().counter("lod.net.frames_dropped"),
            1u);
}

TEST(RealResultTest, UdpGarbageIsCountedDroppedAndNotDelivered) {
  net::RealTransport rt;
  const net::HostId h = rt.add_host("receiver");
  std::atomic<int> delivered{0};
  rt.bind(h, 7400, [&](const net::Datagram&) { ++delivered; });
  std::thread loop([&] { rt.run(); });

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_port = htons(7400);
  ASSERT_EQ(::inet_pton(AF_INET, rt.host_address(h).c_str(), &to.sin_addr), 1);

  // Garbage first: short runt, then full-size junk with a wrong magic.
  const char runt[3] = {'L', 'O', 'D'};
  ::sendto(fd, runt, sizeof runt, 0, reinterpret_cast<sockaddr*>(&to),
           sizeof to);
  std::vector<std::byte> junk(64, std::byte{0x5a});
  ::sendto(fd, junk.data(), junk.size(), 0, reinterpret_cast<sockaddr*>(&to),
           sizeof to);

  // Then one well-formed LODU frame, which must still get through.
  std::vector<std::byte> good(net::frame::kUdpHeaderSize + 4);
  net::frame::encode_udp_header(good.data(), {9, 1234, 0, 4});
  ::sendto(fd, good.data(), good.size(), 0, reinterpret_cast<sockaddr*>(&to),
           sizeof to);
  ::close(fd);

  for (int i = 0; i < 200 && delivered.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  rt.stop();
  loop.join();
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_GE(rt.obs().metrics().snapshot().counter("lod.net.frames_dropped"),
            2u);
}

}  // namespace
}  // namespace lod
