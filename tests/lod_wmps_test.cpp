#include "lod/lod/wmps.hpp"

#include <gtest/gtest.h>

#include "lod/lod/abstraction.hpp"
#include "lod/lod/classroom.hpp"
#include "lod/net/network.hpp"

namespace lod::lod {
namespace {

using net::msec;
using net::sec;
using net::SimDuration;
using net::SimTime;

struct WmpsFixture : ::testing::Test {
  WmpsFixture() : network(sim, 77) {
    server_host = network.add_host("wmps");
    client_host = network.add_host("browser");
    net::LinkConfig lan;
    lan.latency = msec(2);
    network.add_link(server_host, client_host, lan);
    node = std::make_unique<WmpsNode>(network, server_host);
  }

  PublishForm lecture_form() {
    PublishForm f;
    f.video_path = "d:/lectures/lec1.mp4";
    f.slide_dir = "slides-lec1";
    f.profile = "Video 250k DSL/cable";
    f.title = "Distributed Systems, Lecture 1";
    f.author = "Prof. Deng";
    f.publish_name = "lectures/lec1";
    return f;
  }

  void register_assets(SimDuration len = sec(60), std::uint32_t slides = 6,
                       std::uint32_t annotations = 0) {
    VideoAsset v;
    v.duration = len;
    v.annotation_count = annotations;
    node->register_video("d:/lectures/lec1.mp4", v);
    node->register_slides("slides-lec1", SlideAsset{slides, 13});
  }

  net::Simulator sim;
  net::Network network;
  net::HostId server_host{}, client_host{};
  std::unique_ptr<WmpsNode> node;
};

// --- Fig. 5(a): the publishing form --------------------------------------------------

TEST_F(WmpsFixture, PublishHappyPath) {
  register_assets();
  const auto res = node->publish(lecture_form());
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.url, "lectures/lec1");
  EXPECT_GT(res.packets, 100u);
  EXPECT_EQ(res.script_commands, 6u);  // one SLIDE per slide
  EXPECT_TRUE(node->media_services().has("lectures/lec1"));
  ASSERT_NE(node->slide_schedule("lectures/lec1"), nullptr);
  EXPECT_EQ(node->slide_schedule("lectures/lec1")->size(), 6u);
}

TEST_F(WmpsFixture, PublishValidatesForm) {
  register_assets();
  {
    auto f = lecture_form();
    f.video_path = "c:/missing.mp4";
    const auto res = node->publish(f);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("no such video"), std::string::npos);
  }
  {
    auto f = lecture_form();
    f.slide_dir = "nowhere";
    EXPECT_FALSE(node->publish(f).ok);
  }
  {
    auto f = lecture_form();
    f.profile = "Video 9000k hologram";
    EXPECT_FALSE(node->publish(f).ok);
  }
  {
    auto f = lecture_form();
    f.publish_name.clear();
    EXPECT_FALSE(node->publish(f).ok);
  }
}

TEST_F(WmpsFixture, PublishWithDrmYieldsKey) {
  register_assets();
  auto f = lecture_form();
  f.protect_drm = true;
  const auto res = node->publish(f);
  ASSERT_TRUE(res.ok);
  EXPECT_FALSE(res.key_id.empty());
  EXPECT_EQ(node->license_authority().key_count(), 1u);
}

TEST_F(WmpsFixture, PublishWithAnnotations) {
  register_assets(sec(60), 6, 10);
  const auto res = node->publish(lecture_form());
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.script_commands, 16u);  // 6 slides + 10 annotations
  ASSERT_NE(node->published_annotations("lectures/lec1"), nullptr);
  EXPECT_EQ(node->published_annotations("lectures/lec1")->size(), 10u);
}

TEST_F(WmpsFixture, FormSerializationRoundTrip) {
  auto f = lecture_form();
  f.protect_drm = true;
  const auto bytes = WmpsNode::serialize_form(f);
  const auto g = WmpsNode::parse_form(bytes);
  EXPECT_EQ(g.video_path, f.video_path);
  EXPECT_EQ(g.slide_dir, f.slide_dir);
  EXPECT_EQ(g.profile, f.profile);
  EXPECT_EQ(g.title, f.title);
  EXPECT_EQ(g.author, f.author);
  EXPECT_EQ(g.protect_drm, true);
  EXPECT_EQ(g.publish_name, f.publish_name);
}

TEST_F(WmpsFixture, RemotePublishOverRpc) {
  register_assets();
  net::RpcClient browser(network, client_host, 4000);
  int status = 0;
  std::string url;
  browser.call(server_host, streaming::proto::kWebPort, "/publish",
               WmpsNode::serialize_form(lecture_form()),
               [&](net::Result<net::RpcReply> reply) {
                 if (!reply) return;
                 status = reply->status;
                 net::ByteReader r(reply->body);
                 if (r.u8() == 1) url = r.str();
               });
  sim.run();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(url, "lectures/lec1");
  EXPECT_TRUE(node->media_services().has("lectures/lec1"));
}

TEST_F(WmpsFixture, RemotePublishBadFormRejected) {
  net::RpcClient browser(network, client_host, 4000);
  int status = 0;
  browser.call(server_host, streaming::proto::kWebPort, "/publish",
               media::asf::pattern_bytes(10, 1),
               [&](net::Result<net::RpcReply> reply) {
                 status = reply ? reply->status : -1;
               });
  sim.run();
  EXPECT_NE(status, 200);
}

// --- Fig. 5(b): replay ------------------------------------------------------------------

TEST_F(WmpsFixture, ReplayShowsVideoAndSynchronizedSlides) {
  register_assets(sec(60), 6);
  const auto res = node->publish(lecture_form());
  ASSERT_TRUE(res.ok);

  streaming::PlayerConfig pc;
  pc.web_server = server_host;
  streaming::Player player(network, client_host, pc);
  player.open_and_play(server_host, res.url);
  sim.run();

  ASSERT_TRUE(player.finished());
  EXPECT_GT(player.units_rendered(), 1000u);
  ASSERT_EQ(player.slides().size(), 6u);

  // Every slide flipped within 150 ms of the schedule the manager generated.
  const auto& schedule = *node->slide_schedule(res.url);
  const auto& r = player.rendered();
  const std::int64_t offset = r.front().true_time.us - r.front().pts.us;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const auto& s = player.slides()[i];
    EXPECT_EQ(s.url, "slides-lec1/" + std::to_string(i));
    EXPECT_NEAR(static_cast<double>(s.shown_true.us - offset),
                static_cast<double>(schedule[i].us), 150'000.0);
  }
}

TEST_F(WmpsFixture, ProtectedReplayNeedsLicense) {
  register_assets();
  auto f = lecture_form();
  f.protect_drm = true;
  const auto res = node->publish(f);
  ASSERT_TRUE(res.ok);

  streaming::PlayerConfig pc;
  pc.web_server = server_host;
  // Licensed player: gets a license from the node's authority.
  streaming::Player licensed(network, client_host, pc,
                             &node->license_authority());
  licensed.open_and_play(server_host, res.url);
  sim.run();
  EXPECT_GT(licensed.units_rendered(), 100u);
  EXPECT_FALSE(licensed.drm_blocked());

  // Unlicensed player on another port: renders nothing.
  streaming::PlayerConfig pc2 = pc;
  pc2.ctl_port = 5100;
  pc2.data_port = 5101;
  streaming::Player pirate(network, client_host, pc2, nullptr);
  pirate.open_and_play(server_host, res.url);
  sim.run();
  EXPECT_TRUE(pirate.drm_blocked());
  EXPECT_EQ(pirate.units_rendered(), 0u);
}

// --- abstraction (Fig. 6) -----------------------------------------------------------------

std::vector<LectureSegment> demo_segments() {
  // A 10-minute lecture summarized at three levels.
  using net::sec;
  return {
      {"overview", 0, sec(0), sec(60), 0},
      {"petri-nets", 1, sec(60), sec(180), 1},
      {"ocpn-detail", 2, sec(180), sec(300), 2},
      {"xocpn-detail", 2, sec(300), sec(390), 3},
      {"system-demo", 1, sec(390), sec(540), 4},
      {"qa", 2, sec(540), sec(600), 5},
  };
}

TEST(Abstraction, TreeLevelsAccumulate) {
  const auto tree = build_lecture_tree(demo_segments());
  EXPECT_EQ(tree.size(), 6u);
  EXPECT_EQ(tree.highest_level(), 2);
  EXPECT_EQ(tree.presentation_time(0), sec(60));
  EXPECT_EQ(tree.presentation_time(1), sec(60 + 120 + 150));
  EXPECT_EQ(tree.presentation_time(2), sec(600));  // the full lecture
}

TEST(Abstraction, PlaylistFollowsDocumentOrder) {
  const auto tree = build_lecture_tree(demo_segments());
  const auto pl = level_playlist(tree, 1);
  ASSERT_EQ(pl.size(), 3u);
  EXPECT_EQ(pl[0].name, "overview");
  EXPECT_EQ(pl[1].name, "petri-nets");
  EXPECT_EQ(pl[2].name, "system-demo");
  EXPECT_EQ(pl[1].begin, sec(60));
  EXPECT_EQ(pl[1].end, sec(180));
  EXPECT_EQ(pl[2].slide, 4u);
}

TEST(Abstraction, LevelSpecPlaysBackToBack) {
  const auto tree = build_lecture_tree(demo_segments());
  const auto spec = level_spec(tree, 1);
  EXPECT_EQ(spec.duration(), tree.presentation_time(1));
  const auto compiled = core::build_ocpn(spec);
  const auto trace = core::play(compiled.net, compiled.initial_marking());
  EXPECT_EQ(trace.makespan, tree.presentation_time(1));
  // Segments appear contiguously in the abstracted timeline.
  const auto ov = trace.interval_of(compiled.net, "overview");
  const auto pn = trace.interval_of(compiled.net, "petri-nets");
  ASSERT_TRUE(ov && pn);
  EXPECT_EQ(ov->end, pn->start);
}

TEST(Abstraction, SlideCommandsTrackPlaylist) {
  const auto tree = build_lecture_tree(demo_segments());
  const auto cmds = level_slide_commands(tree, 1, "slides/");
  // overview(slide 0) -> petri-nets(slide 1) -> system-demo(slide 4).
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_EQ(cmds[0].param, "slides/0");
  EXPECT_EQ(cmds[0].at, sec(0));
  EXPECT_EQ(cmds[1].param, "slides/1");
  EXPECT_EQ(cmds[1].at, sec(60));
  EXPECT_EQ(cmds[2].param, "slides/4");
  EXPECT_EQ(cmds[2].at, sec(180));
}

TEST(Abstraction, MalformedSegmentsRejected) {
  EXPECT_THROW(build_lecture_tree({}), std::invalid_argument);
  EXPECT_THROW(build_lecture_tree({{"x", 1, sec(0), sec(10), 0}}),
               std::invalid_argument);
  EXPECT_THROW(build_lecture_tree({{"x", 0, sec(10), sec(10), 0}}),
               std::invalid_argument);
}

// --- classroom ---------------------------------------------------------------------------

TEST(Classroom, EveryStudentWatchesTheLecture) {
  net::Simulator sim;
  ClassroomConfig cfg;
  cfg.students = 3;
  Classroom room(sim, cfg);

  PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  VideoAsset video;
  video.duration = sec(30);
  const auto res = room.publish(form, video, SlideAsset{3, 13});
  ASSERT_TRUE(res.ok) << res.error;

  room.start_watching(res.url);
  sim.run();
  for (auto& st : room.students()) {
    EXPECT_TRUE(st.player->finished()) << st.name;
    EXPECT_GT(st.player->units_rendered(), 500u) << st.name;
    EXPECT_EQ(st.player->slides().size(), 3u) << st.name;
  }
}

TEST(Classroom, EtpnSkewTinyDespiteSkewedClocks) {
  net::Simulator sim;
  ClassroomConfig cfg;
  cfg.students = 3;
  cfg.model = streaming::SyncModel::kEtpn;
  cfg.clock_offset_range = net::msec(300);
  Classroom room(sim, cfg);
  PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  VideoAsset video;
  video.duration = sec(20);
  ASSERT_TRUE(room.publish(form, video, SlideAsset{2, 13}).ok);
  // Scheduled presentation: everyone should render pts p at master T0 + p.
  room.start_watching("lec", {}, sec(5));
  sim.run();

  const auto rep = room.skew_report();
  ASSERT_GT(rep.samples, 100u);
  EXPECT_LT(rep.max_skew.us, msec(40).us);  // clock-sync'ed renderers agree
}

TEST(Classroom, OcpnSkewReflectsClockOffsets) {
  net::Simulator sim;
  ClassroomConfig cfg;
  cfg.students = 3;
  cfg.model = streaming::SyncModel::kOcpn;
  cfg.clock_offset_range = net::msec(300);
  cfg.seed = 4242;
  Classroom room(sim, cfg);
  PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  VideoAsset video;
  video.duration = sec(20);
  ASSERT_TRUE(room.publish(form, video, SlideAsset{2, 13}).ok);
  room.start_watching("lec", {}, sec(5));
  sim.run();

  const auto rep = room.skew_report();
  ASSERT_GT(rep.samples, 100u);
  // With +-300 ms offsets and no synchronization, students render the same
  // frame hundreds of ms apart.
  EXPECT_GT(rep.max_skew.us, msec(100).us);
}

TEST(Classroom, FloorWorksWhileWatching) {
  net::Simulator sim;
  ClassroomConfig cfg;
  cfg.students = 2;
  Classroom room(sim, cfg);
  PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  VideoAsset video;
  video.duration = sec(10);
  ASSERT_TRUE(room.publish(form, video, SlideAsset{2, 13}).ok);

  room.join_floor();
  room.start_watching("lec");
  sim.run_until(SimTime{sec(2).us});

  auto& s1 = room.students()[0];
  auto& s2 = room.students()[1];
  s1.floor->request_floor();
  sim.run_until(SimTime{sec(3).us});
  s1.floor->speak("question about slide 1");
  sim.run();

  ASSERT_EQ(s2.heard.size(), 1u);
  EXPECT_EQ(s2.heard[0], "student1: question about slide 1");
  for (auto& st : room.students()) EXPECT_TRUE(st.player->finished());
}

}  // namespace
}  // namespace lod::lod
