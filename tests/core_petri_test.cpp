#include "lod/core/petri.hpp"

#include <gtest/gtest.h>

#include "lod/core/analysis.hpp"

namespace lod::core {
namespace {

/// The classic producer/consumer net with a bounded buffer.
struct ProducerConsumer {
  PetriNet net;
  PlaceId idle_p, busy_p, buffer, idle_c, busy_c;
  TransitionId produce, put, take, consume;
  Marking m0;

  explicit ProducerConsumer(std::uint32_t buffer_cap = 0) {
    idle_p = net.add_place("producer_idle");
    busy_p = net.add_place("producer_busy");
    buffer = net.add_place("buffer", buffer_cap);
    idle_c = net.add_place("consumer_idle");
    busy_c = net.add_place("consumer_busy");
    produce = net.add_transition("produce");
    put = net.add_transition("put");
    take = net.add_transition("take");
    consume = net.add_transition("consume");
    net.add_input(idle_p, produce);
    net.add_output(produce, busy_p);
    net.add_input(busy_p, put);
    net.add_output(put, idle_p);
    net.add_output(put, buffer);
    net.add_input(buffer, take);
    net.add_input(idle_c, take);
    net.add_output(take, busy_c);
    net.add_input(busy_c, consume);
    net.add_output(consume, idle_c);
    m0 = net.empty_marking();
    m0[idle_p] = 1;
    m0[idle_c] = 1;
  }
};

TEST(PetriNet, BuildAndIntrospect) {
  ProducerConsumer pc;
  EXPECT_EQ(pc.net.place_count(), 5u);
  EXPECT_EQ(pc.net.transition_count(), 4u);
  EXPECT_EQ(pc.net.place_name(pc.buffer), "buffer");
  EXPECT_EQ(pc.net.transition_name(pc.take), "take");
  EXPECT_EQ(pc.net.find_place("buffer"), pc.buffer);
  EXPECT_EQ(pc.net.find_transition("consume"), pc.consume);
  EXPECT_FALSE(pc.net.find_place("nope").has_value());
  EXPECT_FALSE(pc.net.find_transition("nope").has_value());
}

TEST(PetriNet, EnablingRule) {
  ProducerConsumer pc;
  EXPECT_TRUE(pc.net.enabled(pc.produce, pc.m0));
  EXPECT_FALSE(pc.net.enabled(pc.put, pc.m0));    // producer not busy
  EXPECT_FALSE(pc.net.enabled(pc.take, pc.m0));   // buffer empty
  EXPECT_FALSE(pc.net.enabled(pc.consume, pc.m0));
  const auto en = pc.net.enabled_transitions(pc.m0);
  EXPECT_EQ(en, std::vector<TransitionId>{pc.produce});
}

TEST(PetriNet, FiringMovesTokens) {
  ProducerConsumer pc;
  Marking m = pc.net.fire(pc.produce, pc.m0);
  EXPECT_EQ(m[pc.idle_p], 0u);
  EXPECT_EQ(m[pc.busy_p], 1u);
  m = pc.net.fire(pc.put, m);
  EXPECT_EQ(m[pc.idle_p], 1u);
  EXPECT_EQ(m[pc.buffer], 1u);
  m = pc.net.fire(pc.take, m);
  EXPECT_EQ(m[pc.buffer], 0u);
  EXPECT_EQ(m[pc.busy_c], 1u);
  m = pc.net.fire(pc.consume, m);
  EXPECT_EQ(m, pc.m0);  // full cycle returns to start
}

TEST(PetriNet, FiringDisabledThrows) {
  ProducerConsumer pc;
  EXPECT_THROW(pc.net.fire(pc.take, pc.m0), std::logic_error);
}

TEST(PetriNet, FireInPlaceMatchesFire) {
  ProducerConsumer pc;
  Marking a = pc.net.fire(pc.produce, pc.m0);
  Marking b = pc.m0;
  pc.net.fire_in_place(pc.produce, b);
  EXPECT_EQ(a, b);
}

TEST(PetriNet, MarkingSizeMismatchThrows) {
  ProducerConsumer pc;
  Marking bad(3, 0);
  EXPECT_THROW(pc.net.enabled(pc.produce, bad), std::invalid_argument);
}

TEST(PetriNet, ArcValidation) {
  PetriNet net;
  const PlaceId p = net.add_place("p");
  const TransitionId t = net.add_transition("t");
  EXPECT_THROW(net.add_input(99, t), std::invalid_argument);
  EXPECT_THROW(net.add_input(p, 99), std::invalid_argument);
  EXPECT_THROW(net.add_input(p, t, 0), std::invalid_argument);
  EXPECT_THROW(net.add_output(t, 99), std::invalid_argument);
}

TEST(PetriNet, WeightedArcs) {
  PetriNet net;
  const PlaceId p = net.add_place("p");
  const PlaceId q = net.add_place("q");
  const TransitionId t = net.add_transition("t");
  net.add_input(p, t, 3);
  net.add_output(t, q, 2);
  Marking m{2, 0};
  EXPECT_FALSE(net.enabled(t, m));
  m[p] = 3;
  EXPECT_TRUE(net.enabled(t, m));
  m = net.fire(t, m);
  EXPECT_EQ(m[p], 0u);
  EXPECT_EQ(m[q], 2u);
}

TEST(PetriNet, InhibitorArcBlocksOnTokens) {
  PetriNet net;
  const PlaceId gate = net.add_place("gate");
  const PlaceId src = net.add_place("src");
  const TransitionId t = net.add_transition("t");
  net.add_input(src, t);
  net.add_input(gate, t, 1, ArcKind::kInhibitor);
  Marking m{0, 1};  // gate empty, src has token
  EXPECT_TRUE(net.enabled(t, m));
  m[gate] = 1;
  EXPECT_FALSE(net.enabled(t, m));
  // Inhibitor arcs never consume.
  m[gate] = 0;
  const Marking after = net.fire(t, m);
  EXPECT_EQ(after[gate], 0u);
}

TEST(PetriNet, CapacityBlocksOverflow) {
  PetriNet net;
  const PlaceId src = net.add_place("src");
  const PlaceId dst = net.add_place("dst", /*capacity=*/2);
  const TransitionId t = net.add_transition("t");
  net.add_input(src, t);
  net.add_output(t, dst);
  Marking m{3, 0};
  m = net.fire(t, m);
  m = net.fire(t, m);
  EXPECT_EQ(m[dst], 2u);
  EXPECT_FALSE(net.enabled(t, m));  // dst full
}

TEST(PetriNet, CapacityNetsOutSelfLoop) {
  // A place at capacity that is both input and output of t does not block.
  PetriNet net;
  const PlaceId p = net.add_place("p", 1);
  const TransitionId t = net.add_transition("t");
  net.add_input(p, t);
  net.add_output(t, p);
  Marking m{1};
  EXPECT_TRUE(net.enabled(t, m));
  EXPECT_EQ(net.fire(t, m)[p], 1u);
}

TEST(PetriNet, ConsumersProducersIndex) {
  ProducerConsumer pc;
  EXPECT_EQ(pc.net.consumers(pc.buffer), std::vector<TransitionId>{pc.take});
  EXPECT_EQ(pc.net.producers(pc.buffer), std::vector<TransitionId>{pc.put});
}

TEST(PetriNet, ToDotMentionsEverything) {
  ProducerConsumer pc;
  const std::string dot = pc.net.to_dot(&pc.m0);
  EXPECT_NE(dot.find("producer_idle"), std::string::npos);
  EXPECT_NE(dot.find("consume"), std::string::npos);
  EXPECT_NE(dot.find("(1)"), std::string::npos);  // marked places annotated
}

// --- analysis ------------------------------------------------------------------

TEST(Analysis, ReachabilityOfCycle) {
  ProducerConsumer pc;
  // Unbounded buffer: producer can always run ahead -> unbounded.
  const auto res = explore(pc.net, pc.m0, 10'000);
  EXPECT_TRUE(res.unbounded);
}

TEST(Analysis, BoundedWithCapacity) {
  ProducerConsumer pc(2);
  const auto k = boundedness(pc.net, pc.m0);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(*k, 2u);
}

TEST(Analysis, SafeNetIsOneBounded) {
  ProducerConsumer pc(1);
  EXPECT_EQ(boundedness(pc.net, pc.m0), 1u);
}

TEST(Analysis, DeadlockDetection) {
  PetriNet net;
  const PlaceId a = net.add_place("a");
  const PlaceId b = net.add_place("b");
  const TransitionId t = net.add_transition("t");
  net.add_input(a, t);
  net.add_output(t, b);
  Marking m0{1, 0};
  EXPECT_TRUE(has_unexpected_deadlock(net, m0));
  // ... but the final marking can be declared expected.
  Marking final{0, 1};
  EXPECT_FALSE(has_unexpected_deadlock(net, m0, &final));
}

TEST(Analysis, LiveCycleHasNoDeadlock) {
  ProducerConsumer pc(1);
  EXPECT_FALSE(has_unexpected_deadlock(pc.net, pc.m0));
}

TEST(Analysis, DeadTransitionFound) {
  PetriNet net;
  const PlaceId a = net.add_place("a");
  const PlaceId orphan = net.add_place("orphan");
  const TransitionId t1 = net.add_transition("live");
  const TransitionId t2 = net.add_transition("dead");
  net.add_input(a, t1);
  net.add_output(t1, a);
  net.add_input(orphan, t2);
  Marking m0{1, 0};
  const auto dead = dead_transitions(net, m0);
  EXPECT_EQ(dead, std::vector<TransitionId>{t2});
}

TEST(Analysis, PInvariantHolds) {
  // Mutex: holder + free == 1 forever.
  PetriNet net;
  const PlaceId free_p = net.add_place("free");
  const PlaceId held = net.add_place("held");
  const TransitionId acquire = net.add_transition("acquire");
  const TransitionId release = net.add_transition("release");
  net.add_input(free_p, acquire);
  net.add_output(acquire, held);
  net.add_input(held, release);
  net.add_output(release, free_p);
  Marking m0{1, 0};
  EXPECT_TRUE(holds_p_invariant(net, m0, {1, 1}));
  EXPECT_TRUE(is_structural_p_invariant(net, {1, 1}));
  EXPECT_FALSE(holds_p_invariant(net, m0, {1, 2}));
  EXPECT_FALSE(is_structural_p_invariant(net, {1, 2}));
}

TEST(Analysis, StructuralInvariantSizeMismatch) {
  ProducerConsumer pc;
  EXPECT_FALSE(is_structural_p_invariant(pc.net, {1, 1}));
}

TEST(Analysis, ExplorationTruncates) {
  ProducerConsumer pc(100);
  const auto res = explore(pc.net, pc.m0, 10);
  EXPECT_TRUE(res.truncated || res.unbounded);
}

TEST(Analysis, FireableFlagsCoverEnabledPaths) {
  ProducerConsumer pc(1);
  const auto res = explore(pc.net, pc.m0);
  for (TransitionId t = 0; t < pc.net.transition_count(); ++t) {
    EXPECT_TRUE(res.fireable[t]) << "transition " << t << " never fired";
  }
}

}  // namespace
}  // namespace lod::core
