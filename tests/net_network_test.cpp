#include "lod/net/network.hpp"

#include <gtest/gtest.h>

namespace lod::net {
namespace {

/// Two hosts joined by one configurable link, with a capture sink on B.
struct TwoHostFixture : ::testing::Test {
  TwoHostFixture() : net(sim, 7) {
    a = net.add_host("a");
    b = net.add_host("b");
  }
  void link(const LinkConfig& cfg) { net.add_link(a, b, cfg); }
  void sink(Port port) {
    net.bind(b, port, [this](const Packet& p) {
      received.push_back(p);
      receive_times.push_back(sim.now());
    });
  }
  Packet make(std::uint32_t bytes, Port dst_port = 9) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.dst_port = dst_port;
    p.wire_size = bytes;
    return p;
  }

  Simulator sim;
  Network net;
  HostId a{}, b{};
  std::vector<Packet> received;
  std::vector<SimTime> receive_times;
};

TEST_F(TwoHostFixture, DeliversWithSerializationPlusLatency) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;  // 1 byte/us
  cfg.latency = msec(5);
  link(cfg);
  sink(9);
  net.send(make(1000));
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  // 1000 bytes at 1 B/us = 1 ms serialize + 5 ms propagate.
  EXPECT_EQ(receive_times[0].us, 6000);
}

TEST_F(TwoHostFixture, BackToBackPacketsQueueBehindEachOther) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;
  cfg.latency = msec(0);
  link(cfg);
  sink(9);
  net.send(make(1000));
  net.send(make(1000));
  sim.run();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(receive_times[0].us, 1000);
  EXPECT_EQ(receive_times[1].us, 2000);  // waited for the first to serialize
}

TEST_F(TwoHostFixture, LossDropsDeterministically) {
  LinkConfig cfg;
  cfg.loss_rate = 1.0;
  link(cfg);
  sink(9);
  net.send(make(100));
  sim.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(net.link_stats(a, b).packets_dropped_loss, 1u);
}

TEST_F(TwoHostFixture, QueueOverflowDropsTail) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000;  // 1 byte/ms: first packet occupies the line
  cfg.queue_bytes = 1500;
  link(cfg);
  sink(9);
  net.send(make(1000));
  net.send(make(400));   // fits (1400 <= 1500)
  net.send(make(400));   // 1800 > 1500: dropped
  sim.run();
  EXPECT_EQ(received.size(), 2u);
  EXPECT_EQ(net.link_stats(a, b).packets_dropped_queue, 1u);
}

TEST_F(TwoHostFixture, UnknownDestinationRejected) {
  LinkConfig cfg;
  link(cfg);
  Packet p = make(100);
  p.dst = 77;
  EXPECT_FALSE(net.send(std::move(p)));
}

TEST_F(TwoHostFixture, NoRouteRejected) {
  // No link added at all.
  EXPECT_FALSE(net.send(make(100)));
}

TEST_F(TwoHostFixture, LoopbackDeliversAsynchronously) {
  LinkConfig cfg;
  link(cfg);
  bool got = false;
  net.bind(a, 5, [&](const Packet&) { got = true; });
  Packet p = make(10, 5);
  p.dst = a;
  EXPECT_TRUE(net.send(std::move(p)));
  EXPECT_FALSE(got);  // not synchronous
  sim.run();
  EXPECT_TRUE(got);
}

TEST_F(TwoHostFixture, UnboundPortDropsSilently) {
  LinkConfig cfg;
  link(cfg);
  net.send(make(100, 1234));
  sim.run();  // must not crash
  EXPECT_TRUE(received.empty());
}

TEST_F(TwoHostFixture, StatsCountBytesAndPackets) {
  LinkConfig cfg;
  link(cfg);
  sink(9);
  net.send(make(100));
  net.send(make(200));
  sim.run();
  const LinkStats& s = net.link_stats(a, b);
  EXPECT_EQ(s.packets_sent, 2u);
  EXPECT_EQ(s.bytes_sent, 300u);
}

TEST_F(TwoHostFixture, JitterPerturbsArrivalButNotCausality) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 80'000'000;
  cfg.latency = msec(1);
  cfg.jitter = usec(300);
  link(cfg);
  sink(9);
  for (int i = 0; i < 50; ++i) net.send(make(100));
  sim.run();
  ASSERT_EQ(received.size(), 50u);
  bool saw_nonzero_jitter = false;
  for (std::size_t i = 0; i < receive_times.size(); ++i) {
    // Never before serialization end + propagation floor.
    EXPECT_GE(receive_times[i].us, 1000 + static_cast<std::int64_t>(i + 1) * 10);
    if (receive_times[i].us != 1010 + static_cast<std::int64_t>(i) * 10) {
      saw_nonzero_jitter = true;
    }
  }
  EXPECT_TRUE(saw_nonzero_jitter);
}

TEST(NetworkTopology, MultiHopRouteAndDelivery) {
  Simulator sim;
  Network net(sim);
  const HostId a = net.add_host("a");
  const HostId r1 = net.add_host("r1");
  const HostId r2 = net.add_host("r2");
  const HostId b = net.add_host("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;
  cfg.latency = msec(2);
  net.add_link(a, r1, cfg);
  net.add_link(r1, r2, cfg);
  net.add_link(r2, b, cfg);

  const auto path = net.route(a, b);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), a);
  EXPECT_EQ(path.back(), b);

  std::vector<SimTime> at;
  net.bind(b, 9, [&](const Packet&) { at.push_back(sim.now()); });
  Packet p;
  p.src = a;
  p.dst = b;
  p.dst_port = 9;
  p.wire_size = 1000;
  net.send(std::move(p));
  sim.run();
  ASSERT_EQ(at.size(), 1u);
  // 3 hops, each 1 ms serialize + 2 ms latency (store-and-forward).
  EXPECT_EQ(at[0].us, 9000);
}

TEST(NetworkTopology, ShortestPathPreferred) {
  Simulator sim;
  Network net(sim);
  const HostId a = net.add_host("a");
  const HostId m = net.add_host("m");
  const HostId b = net.add_host("b");
  LinkConfig cfg;
  net.add_link(a, m, cfg);
  net.add_link(m, b, cfg);
  net.add_link(a, b, cfg);  // direct
  EXPECT_EQ(net.route(a, b).size(), 2u);
}

TEST(NetworkTopology, UnreachableRouteEmpty) {
  Simulator sim;
  Network net(sim);
  const HostId a = net.add_host("a");
  const HostId b = net.add_host("b");
  EXPECT_TRUE(net.route(a, b).empty());
}

TEST(NetworkTopology, BadLinkEndpointsThrow) {
  Simulator sim;
  Network net(sim);
  const HostId a = net.add_host("a");
  EXPECT_THROW(net.add_link(a, a, {}), std::invalid_argument);
  EXPECT_THROW(net.add_link(a, 42, {}), std::invalid_argument);
}

TEST(NetworkClock, HostClocksAreIndependent) {
  Simulator sim;
  Network net(sim);
  const HostId a = net.add_host("a", HostClock(msec(100), 0));
  const HostId b = net.add_host("b", HostClock(msec(-40), 0));
  sim.run_until(SimTime{1'000'000});
  EXPECT_EQ(net.local_now(a).us, 1'100'000);
  EXPECT_EQ(net.local_now(b).us, 960'000);
}

// --- QoS channels -------------------------------------------------------------

struct ChannelFixture : TwoHostFixture {};

TEST_F(ChannelFixture, AdmissionControlRespectsCapacity) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000;
  link(cfg);
  auto c1 = net.reserve_channel(a, b, 600'000);
  ASSERT_TRUE(c1.has_value());
  auto c2 = net.reserve_channel(a, b, 600'000);  // 1.2 Mb/s > 1 Mb/s
  EXPECT_FALSE(c2.has_value());
  net.release_channel(*c1);
  auto c3 = net.reserve_channel(a, b, 600'000);
  EXPECT_TRUE(c3.has_value());
}

TEST_F(ChannelFixture, ZeroOrNegativeRateRejected) {
  link({});
  EXPECT_FALSE(net.reserve_channel(a, b, 0).has_value());
  EXPECT_FALSE(net.reserve_channel(a, b, -5).has_value());
}

TEST_F(ChannelFixture, UnroutableChannelRejected) {
  // no link
  EXPECT_FALSE(net.reserve_channel(a, b, 1000).has_value());
}

TEST_F(ChannelFixture, ChannelTrafficUnaffectedByBestEffortCongestion) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;
  cfg.latency = msec(0);
  link(cfg);
  sink(9);
  auto ch = net.reserve_channel(a, b, 4'000'000);
  ASSERT_TRUE(ch.has_value());

  // Flood best-effort first; then send one channel packet.
  for (int i = 0; i < 20; ++i) net.send(make(1000, 8));
  Packet p = make(1000, 9);
  p.channel = *ch;
  net.send(std::move(p));
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  // Channel rate 4 Mb/s => 1000 B serialize in 2 ms, regardless of the flood.
  EXPECT_EQ(receive_times[0].us, 2000);
}

TEST_F(ChannelFixture, ReservationShrinksBestEffortBandwidth) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;
  cfg.latency = msec(0);
  link(cfg);
  sink(9);
  auto ch = net.reserve_channel(a, b, 4'000'000);
  ASSERT_TRUE(ch.has_value());
  net.send(make(1000));  // best effort now sees only 4 Mb/s
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(receive_times[0].us, 2000);
}

TEST_F(ChannelFixture, ChannelInfoAndRelease) {
  LinkConfig cfg;
  link(cfg);
  auto ch = net.reserve_channel(a, b, 1000);
  ASSERT_TRUE(ch.has_value());
  auto info = net.channel_info(*ch);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->src, a);
  EXPECT_EQ(info->dst, b);
  EXPECT_EQ(info->rate_bps, 1000);
  net.release_channel(*ch);
  EXPECT_FALSE(net.channel_info(*ch).has_value());
  net.release_channel(*ch);  // double release is a no-op
}

TEST_F(ChannelFixture, ResizeChannelInPlace) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000;
  link(cfg);
  auto ch = net.reserve_channel(a, b, 300'000);
  ASSERT_TRUE(ch.has_value());
  // Grow within capacity.
  EXPECT_TRUE(net.resize_channel(*ch, 800'000));
  EXPECT_EQ(net.channel_info(*ch)->rate_bps, 800'000);
  // Grow beyond capacity: refused, old rate intact.
  EXPECT_FALSE(net.resize_channel(*ch, 1'200'000));
  EXPECT_EQ(net.channel_info(*ch)->rate_bps, 800'000);
  // Shrink always succeeds and frees admission headroom.
  EXPECT_TRUE(net.resize_channel(*ch, 100'000));
  auto ch2 = net.reserve_channel(a, b, 850'000);
  EXPECT_TRUE(ch2.has_value());
  // Bad ids / rates.
  EXPECT_FALSE(net.resize_channel(999, 1000));
  EXPECT_FALSE(net.resize_channel(*ch, 0));
}

TEST_F(ChannelFixture, ResizeRespectsOtherReservations) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000;
  link(cfg);
  auto c1 = net.reserve_channel(a, b, 400'000);
  auto c2 = net.reserve_channel(a, b, 400'000);
  ASSERT_TRUE(c1 && c2);
  EXPECT_FALSE(net.resize_channel(*c1, 700'000));  // 700+400 > 1000
  EXPECT_TRUE(net.resize_channel(*c1, 600'000));   // exactly fits
}

TEST(ChannelMultiHop, ReservesEveryHop) {
  Simulator sim;
  Network net(sim);
  const HostId a = net.add_host("a");
  const HostId m = net.add_host("m");
  const HostId b = net.add_host("b");
  LinkConfig thin;
  thin.bandwidth_bps = 500'000;
  LinkConfig fat;
  fat.bandwidth_bps = 10'000'000;
  net.add_link(a, m, fat);
  net.add_link(m, b, thin);  // bottleneck
  EXPECT_FALSE(net.reserve_channel(a, b, 600'000).has_value());
  auto ch = net.reserve_channel(a, b, 400'000);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch ? net.channel_info(*ch)->path.size() : 0u, 2u);
}

}  // namespace
}  // namespace lod::net
