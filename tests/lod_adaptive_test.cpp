#include "lod/lod/adaptive.hpp"
#include "lod/net/network.hpp"

#include <gtest/gtest.h>

namespace lod::lod {
namespace {

using net::msec;
using net::sec;
using net::SimTime;

struct AdaptiveFixture : ::testing::Test {
  AdaptiveFixture() : network(sim, 61) {
    server_host = network.add_host("server");
    client_host = network.add_host("client");
    link.bandwidth_bps = 10'000'000;
    link.latency = msec(10);
    network.add_link(server_host, client_host, link);
    node = std::make_unique<WmpsNode>(network, server_host);
    VideoAsset video;
    video.duration = sec(120);
    node->register_video("lec.mp4", video);
    node->register_slides("slides", SlideAsset{2, 13});
  }

  MultirateResult publish_ladder() {
    PublishForm form;
    form.video_path = "lec.mp4";
    form.slide_dir = "slides";
    form.publish_name = "lec";
    return publish_multirate(
        *node, form,
        {"Video 100k dual-ISDN", "Video 250k DSL/cable", "Video 28.8k"});
  }

  net::Simulator sim;
  net::Network network;
  net::HostId server_host{}, client_host{};
  net::LinkConfig link;
  std::unique_ptr<WmpsNode> node;
};

TEST_F(AdaptiveFixture, MultiratePublishesSortedLadder) {
  const auto res = publish_ladder();
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(res.ladder.size(), 3u);
  // Sorted by descending rate regardless of request order.
  EXPECT_EQ(res.ladder[0].profile, "Video 250k DSL/cable");
  EXPECT_EQ(res.ladder[1].profile, "Video 100k dual-ISDN");
  EXPECT_EQ(res.ladder[2].profile, "Video 28.8k");
  for (const auto& r : res.ladder) {
    EXPECT_TRUE(node->media_services().has(r.url)) << r.url;
    EXPECT_EQ(r.url, "lec@" + r.profile);
  }
}

TEST_F(AdaptiveFixture, MultirateFailsOnUnknownProfile) {
  PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.publish_name = "lec";
  const auto res = publish_multirate(*node, form, {"Video 9000k hologram"});
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(publish_multirate(*node, form, {}).ok);
}

TEST_F(AdaptiveFixture, FastLinkNeverSwitches) {
  const auto ladder = publish_ladder();
  ASSERT_TRUE(ladder.ok);
  AdaptivePlayer::Options opts;
  opts.player.web_server = server_host;
  AdaptivePlayer ap(network, client_host, opts);
  ap.play(server_host, ladder.ladder);
  sim.run_until(SimTime{sec(600).us});
  EXPECT_TRUE(ap.finished());
  EXPECT_TRUE(ap.switches().empty());
  EXPECT_EQ(ap.current_profile(), "Video 250k DSL/cable");
}

TEST_F(AdaptiveFixture, ThinLinkDownshiftsAndFinishes) {
  // 160 kb/s access link: the 250k rendition rebuffers, the 100k one is
  // marginal, the 28.8k one is comfortable.
  net::LinkConfig thin;
  thin.bandwidth_bps = 160'000;
  thin.latency = msec(20);
  network.set_link_config(server_host, client_host, thin);
  network.set_link_config(client_host, server_host, thin);

  const auto ladder = publish_ladder();
  ASSERT_TRUE(ladder.ok);
  AdaptivePlayer::Options opts;
  opts.player.web_server = server_host;
  opts.player.model = streaming::SyncModel::kEtpn;
  AdaptivePlayer ap(network, client_host, opts);
  ap.play(server_host, ladder.ladder);
  sim.run_until(SimTime{sec(1200).us});

  EXPECT_TRUE(ap.finished());
  ASSERT_GE(ap.switches().size(), 1u);
  EXPECT_EQ(ap.switches()[0].from, "Video 250k DSL/cable");
  EXPECT_NE(ap.current_profile(), "Video 250k DSL/cable");
  // The switch resumed from (close to) where the stalled rendition stopped —
  // it did not start over.
  EXPECT_GT(ap.switches()[0].position.us, 0);
}

TEST_F(AdaptiveFixture, SwitchKeepsPositionMonotone) {
  net::LinkConfig thin;
  thin.bandwidth_bps = 160'000;
  thin.latency = msec(20);
  network.set_link_config(server_host, client_host, thin);
  network.set_link_config(client_host, server_host, thin);

  const auto ladder = publish_ladder();
  ASSERT_TRUE(ladder.ok);
  AdaptivePlayer::Options opts;
  opts.player.web_server = server_host;
  AdaptivePlayer ap(network, client_host, opts);
  ap.play(server_host, ladder.ladder);
  sim.run_until(SimTime{sec(1200).us});
  ASSERT_TRUE(ap.finished());
  // After the final switch, rendering covered from the switch position to
  // the end of the lecture.
  if (!ap.switches().empty()) {
    const auto& last = ap.switches().back();
    ASSERT_FALSE(ap.player().rendered().empty());
    EXPECT_GE(ap.player().rendered().front().pts + msec(500), last.position);
    EXPECT_GT(ap.player().rendered().back().pts, sec(115));
  }
}

TEST_F(AdaptiveFixture, RunsOutOfLadderGracefully) {
  // Hopeless 20 kb/s link: it downshifts to the floor and keeps trying.
  net::LinkConfig hopeless;
  hopeless.bandwidth_bps = 20'000;
  hopeless.latency = msec(50);
  network.set_link_config(server_host, client_host, hopeless);
  network.set_link_config(client_host, server_host, hopeless);

  const auto ladder = publish_ladder();
  ASSERT_TRUE(ladder.ok);
  AdaptivePlayer::Options opts;
  opts.player.web_server = server_host;
  AdaptivePlayer ap(network, client_host, opts);
  ap.play(server_host, ladder.ladder);
  sim.run_until(SimTime{sec(900).us});
  // Bottom of the ladder reached; no crash, no further switches possible.
  EXPECT_EQ(ap.current_profile(), "Video 28.8k");
  EXPECT_EQ(ap.switches().size(), 2u);
}

}  // namespace
}  // namespace lod::lod
