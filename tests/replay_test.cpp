#include "lod/sync/replay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "lod/lod/loadgen.hpp"
#include "lod/net/simulator.hpp"
#include "lod/obs/export.hpp"

/// Deterministic record-replay (ROADMAP item 4, second half): a LoadGen
/// run's input journal, replayed against the same seed and spec, reproduces
/// the run byte-identically.

namespace lod::sync {
namespace {

::lod::lod::WorkloadSpec small_spec() {
  ::lod::lod::WorkloadSpec spec;
  spec.sessions = 12;
  spec.client_hosts = 4;
  spec.lecture_len = net::sec(4);
  spec.arrival_window = net::sec(4);
  spec.flaky_edge_up_for = net::sec(3);
  spec.horizon = net::sec(90);
  return spec;
}

TEST(SessionRecorder, JournalsAndDecodesInputsLosslessly) {
  SessionRecorder rec;
  const std::vector<::lod::lod::SessionInput> inputs = {
      {0, 3, ::lod::lod::InputKind::kOpen, 0},
      {3'400'000, 3, ::lod::lod::InputKind::kPause, 0},
      {3'800'000, 3, ::lod::lod::InputKind::kSeek, 2'000'000},
      {4'200'000, 3, ::lod::lod::InputKind::kResume, 0},
  };
  for (const auto& in : inputs) rec.record(in);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.inputs(), inputs);
}

TEST(InputLog, WireRoundTripAndCorruptionDetection) {
  InputLog log;
  log.root_seed = 0xFEEDBEEF;
  log.sessions = 12;
  log.records = {
      {0, 0, ::lod::lod::InputKind::kOpen, 0},
      {1'000'000, 1, ::lod::lod::InputKind::kOpen, 0},
      {4'000'000, 1, ::lod::lod::InputKind::kSeek, 1'500'000},
  };
  auto wire = serialize_input_log(log);
  const InputLog back = parse_input_log(wire);
  EXPECT_EQ(back.root_seed, log.root_seed);
  EXPECT_EQ(back.sessions, log.sessions);
  EXPECT_EQ(back.records, log.records);

  wire[wire.size() / 2] ^= std::byte{0x01};
  EXPECT_THROW(parse_input_log(wire), std::runtime_error);
  EXPECT_THROW(parse_input_log(std::span<const std::byte>(wire).first(6)),
               std::runtime_error);
}

TEST(SessionRecorder, TappedRunJournalsExactlyThePlannedInputs) {
  const auto spec = small_spec();
  net::Simulator sim;
  ::lod::lod::LoadGen gen(sim, spec, 0xA11CE, /*shard=*/0, /*shard_count=*/1);
  const auto plan = gen.planned_inputs();
  ASSERT_FALSE(plan.empty());

  SessionRecorder rec;
  gen.set_input_tap(rec.tap());
  gen.run();

  EXPECT_EQ(rec.dropped(), 0u);
  // The tap fires before any session-state guard, so the journal IS the
  // plan — same inputs, same times, execution order.
  auto journal = rec.inputs();
  auto expected = plan;
  auto key = [](const ::lod::lod::SessionInput& in) {
    return std::tuple(in.session, in.t_us, static_cast<int>(in.kind),
                      in.arg_us);
  };
  std::sort(journal.begin(), journal.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  std::sort(expected.begin(), expected.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  EXPECT_EQ(journal, expected);
}

TEST(RecordReplay, RecordedRunReplaysByteIdentically) {
  const auto spec = small_spec();
  const RecordedRun rec = record_loadgen_run(spec, /*shards=*/2, 0xD15C);
  EXPECT_EQ(rec.log.root_seed, 0xD15Cu);
  EXPECT_EQ(rec.log.sessions, 12u);
  ASSERT_FALSE(rec.log.records.empty());
  EXPECT_EQ(rec.result.merged.counter("lod.loadgen.sessions"), 12u);

  // Replay the journal (round-tripped through the wire codec for good
  // measure) and demand a byte-identical merged snapshot.
  const InputLog log = parse_input_log(serialize_input_log(rec.log));
  const auto replay = replay_loadgen_run(spec, /*shards=*/2, log);
  EXPECT_EQ(obs::to_json(replay.merged), obs::to_json(rec.result.merged));
}

TEST(RecordReplay, ReplayToleratesForeignSessionInputs) {
  // A shard handed the FULL journal must silently skip inputs for sessions
  // it does not own — that is what lets one journal serve every shard.
  const auto spec = small_spec();
  const RecordedRun rec = record_loadgen_run(spec, /*shards=*/2, 0xD15C);
  // Replaying on a DIFFERENT shard count still runs every session once.
  const auto replay = replay_loadgen_run(spec, /*shards=*/3, rec.log);
  EXPECT_EQ(replay.merged.counter("lod.loadgen.sessions"), 12u);
  EXPECT_EQ(replay.merged.counter("lod.loadgen.finished"),
            rec.result.merged.counter("lod.loadgen.finished"));
}

}  // namespace
}  // namespace lod::sync
