#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "lod/lod/floor.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/flight.hpp"
#include "lod/sync/agent.hpp"
#include "lod/sync/blocks.hpp"
#include "lod/sync/state.hpp"

/// \file sync_storm_test.cpp
/// The acceptance scenario for the sync subsystem: a multi-site classroom on
/// LOSSY links rides out a floor-control storm. The teacher site is
/// authoritative and mutates its floor state rapidly; three student sites
/// replicate it purely through sync epochs + delta resynchronization, with
/// every gossip/request/reply datagram subject to loss and jitter.
///
/// The gates (ISSUE 7): after the storm quiets, every replica converges to
/// the authority within a bounded number of epochs (zero PERMANENT
/// desyncs), and every resynchronization travelled as a DELTA — a small
/// fraction of the full state image, which here carries a deliberately
/// chunky static "slide deck" block the deltas must not re-ship.

namespace lod::sync {
namespace {

using net::msec;
using net::sec;

constexpr std::size_t kStudents = 3;
constexpr std::size_t kDeckBytes = 4096;

struct Site {
  ::lod::lod::FloorControl floor;
  SessionState state;
  std::unique_ptr<SyncAgent> agent;

  explicit Site(const std::vector<std::string>& users) : floor(users) {}
};

/// Block 1 on every site: a static 4 KB "slide deck" that never changes.
/// Its only job is to make full images expensive so the delta economy is
/// measurable.
void register_deck_block(SessionState& s) {
  s.register_block(
      1, "deck",
      [](StateWriter& w) {
        std::vector<std::byte> deck(kDeckBytes);
        for (std::size_t i = 0; i < deck.size(); ++i) {
          deck[i] = static_cast<std::byte>(i * 31 + 7);
        }
        w.blob(deck);
      },
      [](StateReader& r) { (void)r.blob(); });
}

TEST(SyncStorm, LossyFloorStormConvergesViaDeltasOnly) {
  net::Simulator sim;
  net::Network network(sim, 777);
  const std::vector<std::string> users{"teacher", "ann", "bob", "cyd"};

  const net::HostId teacher_host = network.add_host("teacher");
  std::vector<net::HostId> student_hosts;
  net::LinkConfig lossy;
  lossy.bandwidth_bps = 2'000'000;
  lossy.latency = msec(8);
  lossy.jitter = msec(5);
  lossy.loss_rate = 0.15;  // 15% of sync traffic simply vanishes
  for (std::size_t i = 0; i < kStudents; ++i) {
    const auto h = network.add_host("student" + std::to_string(i));
    network.add_link(teacher_host, h, lossy);
    student_hosts.push_back(h);
  }

  Site authority(users);
  std::vector<std::unique_ptr<Site>> replicas;
  for (std::size_t i = 0; i < kStudents; ++i) {
    replicas.push_back(std::make_unique<Site>(users));
  }

  const std::uint64_t structure = authority.floor.net().structure_hash();
  SyncConfig base;
  base.epoch_interval = msec(200);
  base.persistent_after = 2;
  base.structure = structure;

  const auto wire = [&](Site& site, net::HostId host, bool authoritative) {
    register_deck_block(site.state);
    register_floor_block(site.state, 2, "floor", &site.floor);
    SyncConfig cfg = base;
    cfg.authoritative = authoritative;
    site.agent =
        std::make_unique<SyncAgent>(network, host, site.state, cfg);
  };
  wire(authority, teacher_host, true);
  for (std::size_t i = 0; i < kStudents; ++i) {
    wire(*replicas[i], student_hosts[i], false);
    authority.agent->add_peer(student_hosts[i]);
  }
  authority.agent->start();
  for (auto& r : replicas) r->agent->start();

  // The storm: every ~120 ms for 10 s, a random user flips their floor
  // state on the AUTHORITY (replicas only ever learn of it through sync).
  const net::SimTime storm_end = network.now() + sec(10);
  auto rng = std::make_shared<std::mt19937>(7);
  std::function<void()> storm = [&network, &authority, &users, rng,
                                 storm_end, &storm] {
    std::uniform_int_distribution<std::size_t> pick(0, users.size() - 1);
    const std::string& user = users[pick(*rng)];
    if (authority.floor.holder() == user) {
      authority.floor.release(user);
    } else {
      authority.floor.request(user);
    }
    if (network.now() < storm_end) network.schedule_after(msec(120), storm);
  };
  network.schedule_after(msec(500), storm);

  // Storm (10 s) + quiet tail: 30 more epochs to converge in — the
  // "bounded drift" budget. A replica still desynced by then has desynced
  // permanently.
  sim.run_until(network.now() + sec(16));

  const std::size_t full = authority.state.full_size_bytes();
  ASSERT_GT(full, kDeckBytes);
  authority.state.refresh();

  for (std::size_t i = 0; i < kStudents; ++i) {
    SCOPED_TRACE("student" + std::to_string(i));
    Site& r = *replicas[i];
    const SyncStats& st = r.agent->stats();

    // The storm actually stressed this replica...
    EXPECT_GT(st.mismatches, 0u);
    EXPECT_GE(st.resync_ok, 1u);

    // ...and it converged: zero permanent desyncs once the dust settled.
    EXPECT_FALSE(r.agent->detector().desynced());
    r.state.refresh();
    EXPECT_EQ(r.state.checksum(), authority.state.checksum());
    EXPECT_EQ(r.floor.holder(), authority.floor.holder());
    EXPECT_EQ(r.floor.waiting(), authority.floor.waiting());
    EXPECT_EQ(r.floor.marking(), authority.floor.marking());

    // Delta economy: every resync travelled as a delta — the average image
    // received is a small fraction of a full state (the 4 KB deck never
    // re-shipped).
    const std::uint64_t replies = st.resync_ok + st.resync_fail;
    ASSERT_GT(replies, 0u);
    EXPECT_LT(st.delta_bytes / replies, full / 4)
        << "resync images are not deltas (avg " << st.delta_bytes / replies
        << " bytes vs " << full << " full)";
  }
}

// A deliberately injected persistent desync must auto-dump the flight
// journal — trigger to dump verified in-test: the persistent verdict dumps
// BEFORE the resync starts (evidence of how we desynced), and the resync
// completion dumps a journal whose events cover the whole resync span
// (persistent verdict -> span open -> span close -> delta applied).
TEST(SyncStorm, InjectedPersistentDesyncAutoDumpsFlightJournal) {
  net::Simulator sim;
  net::Network network(sim, 42);
  const std::vector<std::string> users{"teacher", "ann"};

  const net::HostId teacher_host = network.add_host("teacher");
  const net::HostId student_host = network.add_host("student");
  net::LinkConfig reliable;
  reliable.bandwidth_bps = 10'000'000;
  reliable.latency = msec(5);
  network.add_link(teacher_host, student_host, reliable);

  Site authority(users);
  Site replica(users);

  SyncConfig base;
  base.epoch_interval = msec(100);
  base.persistent_after = 2;
  base.structure = authority.floor.net().structure_hash();

  const auto wire = [&](Site& site, net::HostId host, bool authoritative) {
    register_deck_block(site.state);
    register_floor_block(site.state, 2, "floor", &site.floor);
    SyncConfig cfg = base;
    cfg.authoritative = authoritative;
    site.agent = std::make_unique<SyncAgent>(network, host, site.state, cfg);
  };
  wire(authority, teacher_host, true);
  wire(replica, student_host, false);
  authority.agent->add_peer(student_host);

  // Spans mirror into the flight journal only while tracing is on.
  network.obs().trace().set_enabled(true);
  std::vector<obs::FlightDump> dumps;
  network.obs().flight().on_dump(
      [&dumps](const obs::FlightDump& d) { dumps.push_back(d); });

  authority.agent->start();
  replica.agent->start();

  // Settle: both sites in sync, nothing worth dumping.
  sim.run_until(network.now() + sec(1));
  ASSERT_TRUE(dumps.empty()) << "spurious dump before the injected fault";

  // Inject: corrupt the REPLICA's floor locally. The authority never hears
  // about it, so every later epoch mismatches until a resync overwrites it.
  replica.floor.request("ann");
  sim.run_until(network.now() + sec(2));

  // The trigger fired and the replica healed through the dumped resync.
  ASSERT_GE(dumps.size(), 2u);
  EXPECT_EQ(dumps[0].reason, "sync.persistent_desync");
  EXPECT_FALSE(replica.agent->detector().desynced());
  replica.state.refresh();
  authority.state.refresh();
  EXPECT_EQ(replica.state.checksum(), authority.state.checksum());

  const auto done = std::find_if(
      dumps.begin(), dumps.end(), [](const obs::FlightDump& d) {
        return d.reason == "sync.resync_complete";
      });
  ASSERT_NE(done, dumps.end()) << "resync completion never dumped";

  // The completion journal covers the resync span end to end.
  obs::TimeUs t_verdict = -1, t_begin = -1, t_end = -1, t_resync = -1;
  for (const obs::FlightEvent& e :
       obs::FlightRecorder::parse_jsonl(done->jsonl)) {
    switch (e.type) {
      case obs::FlightType::kSyncVerdict:
        if (e.b == static_cast<std::uint64_t>(
                       DesyncDetector::Verdict::kPersistent) &&
            t_verdict < 0) {
          t_verdict = e.t;
        }
        break;
      case obs::FlightType::kSpanBegin:
        if (t_begin < 0) t_begin = e.t;
        break;
      case obs::FlightType::kSpanEnd:
        t_end = e.t;
        break;
      case obs::FlightType::kResync:
        t_resync = e.t;
        break;
      default:
        break;
    }
  }
  ASSERT_GE(t_verdict, 0) << "journal lost the persistent verdict";
  ASSERT_GE(t_begin, 0) << "journal lost the resync span open";
  ASSERT_GE(t_end, 0) << "journal lost the resync span close";
  ASSERT_GE(t_resync, 0) << "journal lost the resync completion";
  EXPECT_LE(t_verdict, t_begin);
  EXPECT_LE(t_begin, t_end);
  EXPECT_LE(t_end, t_resync);
}

}  // namespace
}  // namespace lod::sync
