#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "lod/edge/edge_node.hpp"
#include "lod/media/sources.hpp"
#include "lod/net/real_transport.hpp"
#include "lod/obs/flight.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"

/// \file real_loopback_soak_test.cpp
/// The whole distributed lecture pipeline over real kernel sockets.
///
/// Three `RealTransport` instances — three modeled machines, each with its
/// own epoll loop thread on its own 127.x.y.z loopback address — run the
/// paper's full topology: an origin streaming server with its web server
/// and edge gateway, an edge node, and a player. The player opens a session
/// at the EDGE (describe -> play -> slide script-commands -> teardown), the
/// edge faults lecture segments in from the origin over RPC, and mid-playout
/// an outside thread scrapes the origin's Prometheus endpoint over real
/// HTTP and issues a TCP RPC — the same control plane a curl or a browser
/// would hit.
///
/// Media pacing runs on the wall clock here, so the lecture is kept short
/// (~2.5 s) and the whole test is wall-clock guarded: taking minutes would
/// mean pacing is broken, not that CI is slow.

namespace lod::streaming {
namespace {

using media::asf::ScriptCommand;
using net::msec;
using net::sec;

constexpr net::HostId kOrigin = 1;
constexpr net::HostId kEdge = 2;
constexpr net::HostId kClient = 3;
// Unprivileged ports: CI runners can't bind the paper-era 554/80.
constexpr net::Port kCtl = 18554;
constexpr net::Port kGateway = 18556;
constexpr net::Port kWeb = 18080;
constexpr net::Port kHttpTcp = 19180;

void register_topology(net::RealTransport& t) {
  t.register_host(kOrigin, "origin");
  t.register_host(kEdge, "edge");
  t.register_host(kClient, "client");
}

TEST(RealLoopbackSoak, FullLectureThroughEdgeOverKernelSockets) {
  const auto wall_start = std::chrono::steady_clock::now();

  // --- content: a short lecture with two slide flips --------------------
  EncodeJob job;
  job.profile = *media::find_profile("Video 250k DSL/cable");
  job.title = "Loopback Lecture";
  job.author = "Prof";
  job.preroll = msec(500);
  media::LectureVideoSource v(msec(2500), job.profile.fps, job.profile.width,
                              job.profile.height, 7);
  media::LectureAudioSource a(msec(2500), job.profile.audio_sample_rate());
  const auto times = media::make_slide_schedule(2, msec(2500), 17);
  auto scripts = slide_flip_commands(times, "slides/");
  auto enc = encode_lecture(job, v, a, scripts);

  // --- origin machine: server + web server + edge gateway ----------------
  net::RealTransport origin_net;
  register_topology(origin_net);
  ServerConfig scfg;
  scfg.control_port = kCtl;
  StreamingServer server(origin_net, kOrigin, scfg);
  server.publish("lecture", std::move(enc.file));
  edge::OriginGateway gateway(origin_net, server, kGateway);
  net::RpcServer web(origin_net, kOrigin, kWeb);
  for (std::uint32_t i = 0; i < 2; ++i) {
    web.route("/slides/" + std::to_string(i),
              [](std::string_view, std::span<const std::byte>) {
                return std::make_pair(200, media::asf::pattern_bytes(8'000, 1));
              });
  }
  // The TCP control plane: HTTP metrics and LODR RPC share the port, and
  // the RPC side reuses the web server's route table.
  const net::Result<void> listening =
      origin_net.listen_tcp(kOrigin, kHttpTcp, web);
  ASSERT_TRUE(listening.has_value())
      << "listen_tcp: " << net::to_string(listening.error());

  // --- edge machine ------------------------------------------------------
  net::RealTransport edge_net;
  register_topology(edge_net);
  edge::EdgeConfig ecfg;
  ecfg.control_port = kCtl;
  ecfg.origin = kOrigin;
  ecfg.origin_gateway_port = kGateway;
  edge::EdgeNode edge(edge_net, kEdge, ecfg);

  // --- client machine ----------------------------------------------------
  net::RealTransport client_net;
  register_topology(client_net);
  PlayerConfig pcfg;
  pcfg.model = SyncModel::kEtpn;
  pcfg.server_port = kCtl;  // the EDGE's control port, not 554
  pcfg.web_server = kOrigin;
  pcfg.web_port = kWeb;
  pcfg.preroll_override = msec(400);
  pcfg.repair_losses = true;
  pcfg.auto_stop_on_finish = true;
  Player player(client_net, kClient, pcfg);

  // --- run: one loop thread per "machine", client loop on this thread ----
  std::thread origin_thread([&] { origin_net.run(); });
  std::thread edge_thread([&] { edge_net.run(); });

  // Mid-playout, an outside observer scrapes the origin exactly as curl
  // would, and issues one RPC over the TCP framing.
  net::Result<net::HttpResponse> scraped = net::Error::kTimeout;
  net::Result<net::RpcReply> tcp_rpc = net::Error::kTimeout;
  net::Result<net::HttpResponse> not_found = net::Error::kTimeout;
  net::Result<net::HttpResponse> debug_vars = net::Error::kTimeout;
  net::Result<net::HttpResponse> debug_flight = net::Error::kTimeout;
  std::thread scraper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    const std::string origin_ip = origin_net.host_address(kOrigin);
    scraped = net::http_get(origin_ip, kHttpTcp, "/metrics");
    not_found = net::http_get(origin_ip, kHttpTcp, "/nope");
    debug_vars = net::http_get(origin_ip, kHttpTcp, "/debug/vars");
    debug_flight = net::http_get(origin_ip, kHttpTcp, "/debug/flight");
    net::TcpRpcClient rpc(origin_ip, kHttpTcp);
    tcp_rpc = rpc.call("/slides/0", {});
  });

  player.open_and_play(kEdge, "lecture");
  std::function<void()> watch = [&] {
    if (player.finished()) {
      client_net.stop();
      return;
    }
    client_net.schedule_after(msec(50), watch);
  };
  client_net.schedule_after(msec(50), watch);
  const net::EventId guard =
      client_net.schedule_after(sec(20), [&] { client_net.stop(); });
  client_net.run();
  client_net.cancel(guard);

  scraper.join();
  edge_net.stop();
  origin_net.stop();
  edge_thread.join();
  origin_thread.join();

  // --- the lecture actually played, through the edge ---------------------
  EXPECT_TRUE(player.finished()) << "player never reached end of stream";
  EXPECT_EQ(player.slides().size(), 2u) << "slide script-commands dropped";
  // In the edge topology the origin serves media through the gateway's RPC
  // surface, not through its own streaming sessions.
  EXPECT_GT(origin_net.obs()
                .metrics()
                .counter("lod.edge.origin.segment_requests",
                         obs::Labels{{"host", std::to_string(kOrigin)}})
                .value(),
            0u)
      << "origin gateway never served the edge's fetches";
  EXPECT_GT(
      edge_net.obs().metrics().counter("lod.realnet.datagrams_sent").value(),
      0u)
      << "edge machine never put datagrams on the wire";

  // --- the control plane answered real TCP during playout ----------------
  ASSERT_TRUE(scraped.has_value())
      << "HTTP scrape failed: " << net::to_string(scraped.error());
  EXPECT_EQ(scraped->status, 200);
  EXPECT_NE(scraped->body.find("lod_server_packets_sent"), std::string::npos)
      << "Prometheus export missing server series";
  ASSERT_TRUE(not_found.has_value());
  EXPECT_EQ(not_found->status, 404);
  ASSERT_TRUE(tcp_rpc.has_value())
      << "TCP RPC failed: " << net::to_string(tcp_rpc.error());
  EXPECT_EQ(tcp_rpc->status, 200);
  EXPECT_EQ(tcp_rpc->body.size(), 8'000u);

  // --- the /debug plane answered mid-playout ------------------------------
  ASSERT_TRUE(debug_vars.has_value())
      << "/debug/vars scrape failed: " << net::to_string(debug_vars.error());
  EXPECT_EQ(debug_vars->status, 200);
  EXPECT_NE(debug_vars->body.find("\"series\""), std::string::npos);
  ASSERT_TRUE(debug_flight.has_value())
      << "/debug/flight scrape failed: "
      << net::to_string(debug_flight.error());
  EXPECT_EQ(debug_flight->status, 200);
  EXPECT_EQ(debug_flight->body.find("{\"flight_dump\":"), 0u);
  EXPECT_FALSE(obs::FlightRecorder::parse_jsonl(debug_flight->body).empty())
      << "flight journal empty mid-playout";

  // Persist the scraped journal so CI can upload it next to the bench
  // results (path via LOD_FLIGHT_DUMP, default alongside the test binary).
  const char* dump_env = std::getenv("LOD_FLIGHT_DUMP");
  const std::string dump_path = dump_env ? dump_env : "flight_dump.jsonl";
  {
    std::ofstream out(dump_path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << dump_path;
    out << debug_flight->body;
  }

  // --- wall-clock guard: pacing ran in real time, not in minutes ---------
  const auto elapsed = std::chrono::steady_clock::now() - wall_start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            15)
      << "soak exceeded its wall-clock budget";
}

}  // namespace
}  // namespace lod::streaming
