// SLO health monitor: rule evaluation, violation-edge trace events,
// nullopt-signal verdict holding, per-site health, and the injected-clock
// periodic driver.

#include <gtest/gtest.h>

#include <vector>

#include "lod/obs/health.hpp"
#include "lod/obs/hub.hpp"

using namespace lod::obs;

namespace {

struct HealthFixture : ::testing::Test {
  HealthFixture() : monitor(hub) {
    hub.set_clock([this] { return now; });
    hub.trace().set_enabled(true);
  }
  TimeUs now{0};
  Hub hub;
  HealthMonitor monitor;
};

}  // namespace

TEST_F(HealthFixture, ViolationEmitsTypedEventOnlyOnTransition) {
  Gauge depth = hub.metrics().gauge("queue.depth", {{"host", "3"}});
  SloRule rule;
  rule.name = "queue_depth";
  rule.site = "3";
  rule.threshold = 10.0;
  rule.direction = SloDirection::kAboveIsBad;
  rule.value = [](const Snapshot& s, TimeUs) -> std::optional<double> {
    return static_cast<double>(s.gauge("queue.depth", {{"host", "3"}}));
  };
  monitor.add_rule(rule);

  depth.set(5);
  EXPECT_EQ(monitor.evaluate(), 0u);
  EXPECT_TRUE(monitor.healthy());
  EXPECT_TRUE(hub.trace().events(EventType::kSloViolation).empty());

  now = 1000;
  depth.set(25);
  EXPECT_EQ(monitor.evaluate(), 1u);
  EXPECT_FALSE(monitor.healthy());
  EXPECT_FALSE(monitor.site_healthy("3"));
  EXPECT_TRUE(monitor.site_healthy("4"));
  auto viols = hub.trace().events(EventType::kSloViolation);
  ASSERT_EQ(viols.size(), 1u);
  EXPECT_EQ(viols[0].t, 1000);
  EXPECT_EQ(viols[0].actor, 3u);          // parsed numeric site
  EXPECT_EQ(viols[0].a, 25'000);          // value * 1000
  EXPECT_EQ(viols[0].b, 10'000);          // threshold * 1000
  EXPECT_EQ(viols[0].detail, "queue_depth");
  EXPECT_EQ(hub.metrics().snapshot().counter("lod.health.violations",
                                             {{"rule", "queue_depth"}}),
            1u);

  // Still in violation: no second event, but still counted as violated.
  EXPECT_EQ(monitor.evaluate(), 1u);
  EXPECT_EQ(hub.trace().events(EventType::kSloViolation).size(), 1u);

  // Recovery, then a fresh breach: a second edge, a second event.
  depth.set(2);
  EXPECT_EQ(monitor.evaluate(), 0u);
  EXPECT_TRUE(monitor.site_healthy("3"));
  depth.set(50);
  EXPECT_EQ(monitor.evaluate(), 1u);
  EXPECT_EQ(hub.trace().events(EventType::kSloViolation).size(), 2u);
}

TEST_F(HealthFixture, NoSignalHoldsPreviousVerdict) {
  bool give_signal = false;
  double value = 0;
  SloRule rule;
  rule.name = "flaky";
  rule.site = "7";
  rule.threshold = 1.0;
  rule.value = [&](const Snapshot&, TimeUs) -> std::optional<double> {
    if (!give_signal) return std::nullopt;
    return value;
  };
  monitor.add_rule(rule);

  // Unevaluable from the start: healthy.
  EXPECT_EQ(monitor.evaluate(), 0u);
  EXPECT_TRUE(monitor.health().statuses[0].healthy);
  EXPECT_FALSE(monitor.health().statuses[0].evaluated);

  give_signal = true;
  value = 5.0;
  EXPECT_EQ(monitor.evaluate(), 1u);
  // The signal goes away (site went quiet): the site stays demoted.
  give_signal = false;
  EXPECT_EQ(monitor.evaluate(), 1u);
  EXPECT_FALSE(monitor.site_healthy("7"));
  // Evidence of recovery flips it back.
  give_signal = true;
  value = 0.5;
  EXPECT_EQ(monitor.evaluate(), 0u);
  EXPECT_TRUE(monitor.site_healthy("7"));
}

TEST_F(HealthFixture, HealthSummaryAggregates) {
  Gauge g = hub.metrics().gauge("v");
  for (const char* name : {"a", "b"}) {
    SloRule r;
    r.name = name;
    r.threshold = 10.0;
    r.value = [&](const Snapshot& s, TimeUs) -> std::optional<double> {
      return static_cast<double>(s.gauge("v"));
    };
    monitor.add_rule(r);
  }
  g.set(99);
  monitor.evaluate();
  const HealthSummary sum = monitor.health();
  EXPECT_FALSE(sum.healthy);
  EXPECT_EQ(sum.rules, 2u);
  EXPECT_EQ(sum.violated, 2u);
  ASSERT_EQ(sum.statuses.size(), 2u);
  EXPECT_EQ(sum.statuses[0].rule, "a");
  EXPECT_DOUBLE_EQ(sum.statuses[0].value, 99.0);
}

TEST_F(HealthFixture, PeriodicEvaluationRunsOnInjectedScheduler) {
  // A hand-cranked event loop standing in for the simulator.
  struct Pending {
    TimeUs due;
    std::function<void()> fn;
  };
  std::vector<Pending> queue;
  Gauge g = hub.metrics().gauge("v");
  SloRule r;
  r.name = "watch";
  r.threshold = 10.0;
  r.value = [&](const Snapshot& s, TimeUs) -> std::optional<double> {
    return static_cast<double>(s.gauge("v"));
  };
  monitor.add_rule(r);
  monitor.start_periodic(
      [&](TimeUs delay, std::function<void()> fn) {
        queue.push_back({now + delay, std::move(fn)});
      },
      1000);

  g.set(50);
  std::size_t ran = 0;
  while (!queue.empty() && ran < 3) {
    Pending p = std::move(queue.front());
    queue.erase(queue.begin());
    now = p.due;
    p.fn();
    ++ran;
  }
  EXPECT_EQ(ran, 3u);
  EXPECT_FALSE(monitor.healthy());
  EXPECT_EQ(monitor.health().statuses[0].last_eval, 3000);
  // One edge, despite three periodic evaluations in violation.
  EXPECT_EQ(hub.trace().events(EventType::kSloViolation).size(), 1u);

  monitor.stop_periodic();
  const std::size_t left = queue.size();
  EXPECT_EQ(left, 1u);  // the tick queued before stop; it must be inert
  for (auto& p : queue) p.fn();
  EXPECT_TRUE(queue.size() == left);  // stopped: nothing re-queued
}

TEST_F(HealthFixture, DestructionDisarmsQueuedTicks) {
  std::vector<std::function<void()>> queue;
  {
    HealthMonitor m(hub);
    m.start_periodic(
        [&](TimeUs, std::function<void()> fn) { queue.push_back(std::move(fn)); },
        500);
    ASSERT_EQ(queue.size(), 1u);
  }
  // The monitor is gone; firing the stale callback must be safe.
  queue.front()();
  SUCCEED();
}

TEST_F(HealthFixture, CannedStartupAndStallRules) {
  Histogram h = hub.metrics().histogram("lod.player.startup_us",
                                        {{"host", "2"}});
  Counter stalls = hub.metrics().counter("lod.player.stalls", {{"host", "2"}});
  Counter units =
      hub.metrics().counter("lod.player.units_rendered", {{"host", "2"}});
  monitor.add_rule(slo_startup_p95(/*max_us=*/1'000'000, /*min_samples=*/2));
  monitor.add_rule(slo_stall_ratio(/*max_ratio=*/0.1, /*min_rendered=*/10));

  // Below the sample floors: no signal, healthy.
  h.observe(2'000'000);
  EXPECT_EQ(monitor.evaluate(), 0u);

  h.observe(2'500'000);
  units.inc(100);
  stalls.inc(50);
  EXPECT_EQ(monitor.evaluate(), 2u);
  const auto sum = monitor.health();
  EXPECT_EQ(sum.statuses[0].rule, "startup_p95_us");
  EXPECT_FALSE(sum.statuses[0].healthy);
  EXPECT_EQ(sum.statuses[1].rule, "stall_ratio");
  EXPECT_DOUBLE_EQ(sum.statuses[1].value, 0.5);
}

TEST_F(HealthFixture, ReplicaStalenessReadsSelectorGauge) {
  Gauge last = hub.metrics().gauge(
      "lod.edge.selector.last_observation_us",
      {{"host", "9"}, {"site", "4"}});
  monitor.add_rule(slo_replica_staleness("4", /*max_age_us=*/1'000'000));
  EXPECT_EQ(monitor.evaluate(), 0u);
  last.set(0);
  now = 500'000;
  EXPECT_EQ(monitor.evaluate(), 0u);
  now = 2'000'000;
  EXPECT_EQ(monitor.evaluate(), 1u);
  EXPECT_FALSE(monitor.site_healthy("4"));
  // A fresh observation (any client) revives the site.
  last.set(1'900'000);
  EXPECT_EQ(monitor.evaluate(), 0u);
  EXPECT_TRUE(monitor.site_healthy("4"));
}
