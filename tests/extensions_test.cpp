// Tests for the extension features beyond the paper's minimum scope:
// prioritized Petri nets, stochastic playout, priority floor control,
// slide prefetching, and abstraction publishing.

#include <gtest/gtest.h>

#include "lod/core/analysis.hpp"
#include "lod/core/ocpn.hpp"
#include "lod/lod/classroom.hpp"
#include "lod/lod/floor.hpp"
#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

namespace lod {
namespace {

using net::msec;
using net::sec;
namespace app = ::lod::lod;

// --- prioritized Petri nets -----------------------------------------------------

TEST(PrioritizedNet, DefaultPriorityIsZero) {
  core::PetriNet net;
  const auto t = net.add_transition("t");
  EXPECT_EQ(net.priority(t), 0);
  net.set_priority(t, 7);
  EXPECT_EQ(net.priority(t), 7);
  EXPECT_THROW(net.set_priority(99, 1), std::invalid_argument);
}

TEST(PrioritizedNet, PrioritizedEnabledFiltersToMaximal) {
  core::PetriNet net;
  const auto p = net.add_place("p");
  const auto lo = net.add_transition("lo");
  const auto hi = net.add_transition("hi");
  const auto hi2 = net.add_transition("hi2");
  for (auto t : {lo, hi, hi2}) net.add_input(p, t);
  net.set_priority(hi, 5);
  net.set_priority(hi2, 5);
  core::Marking m{1};
  EXPECT_EQ(net.enabled_transitions(m).size(), 3u);
  const auto pe = net.prioritized_enabled(m);
  EXPECT_EQ(pe, (std::vector<core::TransitionId>{hi, hi2}));
  // Empty marking: nothing enabled under either rule.
  core::Marking z{0};
  EXPECT_TRUE(net.prioritized_enabled(z).empty());
}

TEST(PrioritizedNet, PlayoutConflictGoesToHighPriority) {
  // One token, two competing transitions; priority beats id order.
  core::TimedPetriNet net;
  const auto p = net.add_timed_place("p", {});
  const auto win = net.add_timed_place("win", {});
  const auto lose = net.add_timed_place("lose", {});
  const auto t_low_id = net.add_transition("low_id");
  const auto t_high_id = net.add_transition("high_id");
  net.add_input(p, t_low_id);
  net.add_output(t_low_id, lose);
  net.add_input(p, t_high_id);
  net.add_output(t_high_id, win);
  net.set_priority(t_high_id, 10);  // outranks the lower id
  core::Marking m0 = net.empty_marking();
  m0[p] = 1;
  const auto trace = core::play(net, m0);
  ASSERT_EQ(trace.firings.size(), 1u);
  EXPECT_EQ(trace.firings[0].transition, t_high_id);
}

TEST(PrioritizedNet, NegativePriorityYields) {
  core::TimedPetriNet net;
  const auto p = net.add_timed_place("p", {});
  const auto a = net.add_timed_place("a", {});
  const auto b = net.add_timed_place("b", {});
  const auto t0 = net.add_transition("t0");
  const auto t1 = net.add_transition("t1");
  net.add_input(p, t0);
  net.add_output(t0, a);
  net.add_input(p, t1);
  net.add_output(t1, b);
  net.set_priority(t0, -1);  // t0 now yields to t1 despite lower id
  core::Marking m0 = net.empty_marking();
  m0[p] = 1;
  const auto trace = core::play(net, m0);
  ASSERT_EQ(trace.firings.size(), 1u);
  EXPECT_EQ(trace.firings[0].transition, t1);
}

// --- stochastic playout ------------------------------------------------------------

TEST(StochasticPlayout, ZeroSpreadMatchesDeterministic) {
  const auto spec = core::TemporalSpec::relate(
      core::Relation::kMeets, core::TemporalSpec::object("a", 0, sec(2)),
      core::TemporalSpec::object("b", 0, sec(3)));
  const auto c = core::build_ocpn(spec);
  net::Rng rng(1);
  const auto det = core::play(c.net, c.initial_marking());
  const auto sto = core::play_stochastic(c.net, c.initial_marking(), rng, 0.0);
  EXPECT_EQ(sto.makespan, det.makespan);
  EXPECT_EQ(sto.firings.size(), det.firings.size());
}

TEST(StochasticPlayout, SpreadMovesMakespanWithinBounds) {
  const auto spec = core::TemporalSpec::relate(
      core::Relation::kMeets, core::TemporalSpec::object("a", 0, sec(10)),
      core::TemporalSpec::object("b", 0, sec(10)));
  const auto c = core::build_ocpn(spec);
  net::Rng rng(42);
  bool saw_short = false, saw_long = false;
  for (int i = 0; i < 50; ++i) {
    const auto t = core::play_stochastic(c.net, c.initial_marking(), rng, 0.3);
    EXPECT_FALSE(t.truncated);
    // Two 10 s objects at +-30%: makespan within [14, 26] s.
    EXPECT_GE(t.makespan.us, sec(14).us);
    EXPECT_LE(t.makespan.us, sec(26).us);
    saw_short = saw_short || t.makespan < sec(20);
    saw_long = saw_long || t.makespan > sec(20);
  }
  EXPECT_TRUE(saw_short);
  EXPECT_TRUE(saw_long);
}

TEST(StochasticPlayout, StructureUnaffectedByJitter) {
  // All objects still presented exactly once, in order, under jitter.
  const auto spec = core::TemporalSpec::relate(
      core::Relation::kMeets,
      core::TemporalSpec::relate(core::Relation::kMeets,
                                 core::TemporalSpec::object("a", 0, sec(1)),
                                 core::TemporalSpec::object("b", 0, sec(1))),
      core::TemporalSpec::object("c", 0, sec(1)));
  const auto c = core::build_ocpn(spec);
  net::Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const auto t = core::play_stochastic(c.net, c.initial_marking(), rng, 0.5);
    const auto ia = t.interval_of(c.net, "a");
    const auto ib = t.interval_of(c.net, "b");
    const auto ic = t.interval_of(c.net, "c");
    ASSERT_TRUE(ia && ib && ic);
    EXPECT_LE(ia->end, ib->start);
    EXPECT_LE(ib->end, ic->start);
  }
}

TEST(StochasticPlayout, SpreadClamped) {
  const auto c = core::build_ocpn(core::TemporalSpec::object("x", 0, sec(1)));
  net::Rng rng(3);
  // Absurd spreads are clamped rather than producing negative durations.
  const auto t = core::play_stochastic(c.net, c.initial_marking(), rng, 5.0);
  EXPECT_GT(t.makespan.us, 0);
}

// --- priority floor control -----------------------------------------------------------

TEST(PriorityFloor, TeacherPreemptsQueue) {
  app::FloorControl fc({"teacher", "s1", "s2", "s3"});
  fc.set_user_priority("teacher", 100);
  fc.request("s1");  // holds
  fc.request("s2");
  fc.request("s3");
  fc.request("teacher");  // queued last, but outranks s2/s3
  EXPECT_EQ(fc.holder(), "s1");
  fc.release("s1");
  EXPECT_EQ(fc.holder(), "teacher");  // jumped the queue
  fc.release("teacher");
  EXPECT_EQ(fc.holder(), "s2");  // FIFO resumes among equals
  fc.release("s2");
  EXPECT_EQ(fc.holder(), "s3");
}

TEST(PriorityFloor, ExclusionInvariantStillHolds) {
  app::FloorControl fc({"t", "a", "b"});
  fc.set_user_priority("t", 10);
  net::Rng rng(5);
  const auto w = fc.exclusion_invariant();
  const std::vector<std::string> users{"t", "a", "b"};
  for (int i = 0; i < 300; ++i) {
    const auto& u = users[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    if (rng.bernoulli(0.5)) fc.request(u);
    else fc.release(u);
    std::int64_t dot = 0;
    for (std::size_t p = 0; p < fc.marking().size(); ++p) {
      dot += w[p] * fc.marking()[p];
    }
    ASSERT_EQ(dot, 1);
  }
}

TEST(PriorityFloor, UnknownUserThrows) {
  app::FloorControl fc({"a"});
  EXPECT_THROW(fc.set_user_priority("ghost", 5), std::invalid_argument);
}

// --- slide prefetching ------------------------------------------------------------------

struct PrefetchFixture : ::testing::Test {
  PrefetchFixture() : network(sim, 31) {
    server_host = network.add_host("server");
    client_host = network.add_host("client");
    net::LinkConfig dsl;
    dsl.bandwidth_bps = 1'500'000;
    dsl.latency = msec(15);
    network.add_link(server_host, client_host, dsl);
    node = std::make_unique<app::WmpsNode>(network, server_host);
    app::VideoAsset video;
    video.duration = sec(60);
    node->register_video("lec.mp4", video);
    node->register_slides("slides", app::SlideAsset{6, 13});
    app::PublishForm form;
    form.video_path = "lec.mp4";
    form.slide_dir = "slides";
    form.profile = "Video 250k DSL/cable";
    form.publish_name = "lec";
    publish = node->publish(form);
  }

  streaming::Player make_player(bool prefetch) {
    streaming::PlayerConfig cfg;
    cfg.web_server = server_host;
    cfg.prefetch_slides = prefetch;
    return streaming::Player(network, client_host, cfg);
  }

  net::Simulator sim;
  net::Network network;
  net::HostId server_host{}, client_host{};
  std::unique_ptr<app::WmpsNode> node;
  app::PublishResult publish;
};

TEST_F(PrefetchFixture, PrefetchedSlidesAppearInstantly) {
  auto player = make_player(true);
  player.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_TRUE(player.finished());
  ASSERT_EQ(player.slides().size(), 6u);
  // Slides after the first were prefetched well ahead: zero display latency.
  std::size_t instant = 0;
  for (const auto& s : player.slides()) {
    if (s.fetch_latency.us == 0) ++instant;
  }
  EXPECT_GE(instant, 5u);
}

TEST_F(PrefetchFixture, WithoutPrefetchEverySlidePaysTheFetch) {
  auto player = make_player(false);
  player.open_and_play(server_host, "lec");
  sim.run();
  ASSERT_TRUE(player.finished());
  ASSERT_EQ(player.slides().size(), 6u);
  for (const auto& s : player.slides()) {
    EXPECT_GT(s.fetch_latency.us, msec(20).us);  // at least RTT + transfer
  }
}

TEST_F(PrefetchFixture, PrefetchSurvivesSeek) {
  auto player = make_player(true);
  player.open_and_play(server_host, "lec");
  sim.run_until(net::SimTime{sec(10).us});
  player.seek(sec(40));
  sim.run();
  ASSERT_TRUE(player.finished());
  EXPECT_GE(player.slides().size(), 2u);  // slides at/after the target shown
}

// --- abstraction publishing ------------------------------------------------------------------

std::vector<app::LectureSegment> abs_segments() {
  return {
      {"summary", 0, sec(0), sec(30), 0},
      {"part1", 1, sec(30), sec(90), 1},
      {"part2", 1, sec(90), sec(180), 2},
  };
}

struct AbstractionPublishFixture : ::testing::Test {
  AbstractionPublishFixture() : network(sim, 33) {
    server_host = network.add_host("server");
    client_host = network.add_host("client");
    net::LinkConfig lan;
    network.add_link(server_host, client_host, lan);
    node = std::make_unique<app::WmpsNode>(network, server_host);
    app::VideoAsset video;
    video.duration = sec(180);
    node->register_video("lec.mp4", video);
    node->register_slides("slides", app::SlideAsset{3, 13});
  }
  app::PublishForm form(const std::string& name) {
    app::PublishForm f;
    f.video_path = "lec.mp4";
    f.slide_dir = "slides";
    f.profile = "Video 250k DSL/cable";
    f.publish_name = name;
    return f;
  }
  net::Simulator sim;
  net::Network network;
  net::HostId server_host{}, client_host{};
  std::unique_ptr<app::WmpsNode> node;
};

TEST_F(AbstractionPublishFixture, Level0IsTheSummaryOnly) {
  const auto res = node->publish_abstraction(form("lec/l0"), abs_segments(), 0);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.script_commands, 1u);  // one slide for the summary

  streaming::PlayerConfig cfg;
  cfg.web_server = server_host;
  streaming::Player player(network, client_host, cfg);
  player.open_and_play(server_host, "lec/l0");
  sim.run();
  ASSERT_TRUE(player.finished());
  // 30 s abstraction: last rendered pts below 30 s.
  EXPECT_LE(player.rendered().back().pts, sec(30));
  EXPECT_EQ(player.slides().size(), 1u);
}

TEST_F(AbstractionPublishFixture, Level1PlaysWholePlaylist) {
  const auto res = node->publish_abstraction(form("lec/l1"), abs_segments(), 1);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.script_commands, 3u);  // slide changes: 0 -> 1 -> 2

  streaming::PlayerConfig cfg;
  cfg.web_server = server_host;
  streaming::Player player(network, client_host, cfg);
  player.open_and_play(server_host, "lec/l1");
  sim.run();
  ASSERT_TRUE(player.finished());
  EXPECT_EQ(player.slides().size(), 3u);
  // Full 180 s of material at level 1 (all segments).
  EXPECT_GT(player.rendered().back().pts, sec(170));
}

TEST_F(AbstractionPublishFixture, BadLevelOrSegmentsRejected) {
  EXPECT_FALSE(node->publish_abstraction(form("x"), abs_segments(), 5).ok);
  EXPECT_FALSE(node->publish_abstraction(form("x"), {}, 0).ok);
  auto f = form("x");
  f.video_path = "missing";
  EXPECT_FALSE(node->publish_abstraction(f, abs_segments(), 0).ok);
}

// --- audio superframe knob --------------------------------------------------------------------

TEST(AudioSuperframe, GroupingDisabledPassesFramesThrough) {
  streaming::AudioPacker p(net::SimDuration{0});
  media::EncodedUnit u;
  u.duration = msec(20);
  u.bytes = 40;
  const auto out = p.push(u);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->bytes, 40u);
  EXPECT_FALSE(p.flush().has_value());
}

TEST(AudioSuperframe, GroupsUpToLimit) {
  streaming::AudioPacker p(msec(100));
  media::EncodedUnit u;
  u.duration = msec(20);
  u.bytes = 40;
  int emitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (auto full = p.push(u)) {
      ++emitted;
      EXPECT_EQ(full->bytes, 200u);       // 5 x 40
      EXPECT_EQ(full->duration, msec(100));
    }
  }
  auto tail = p.flush();
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(emitted, 1);
  EXPECT_EQ(tail->bytes, 200u);
}

TEST(AudioSuperframe, SmallerSuperframesMeanMorePackets) {
  auto count_packets = [&](net::SimDuration superframe) {
    streaming::EncodeJob job;
    job.profile = *media::find_profile("Audio 28.8k (voice)");
    job.audio_superframe = superframe;
    media::LectureVideoSource v(sec(0), 1, 16, 16);
    media::LectureAudioSource a(sec(60), 8000);
    const auto enc = streaming::encode_lecture(job, v, a, {});
    return enc.file.packets.size();
  };
  const auto none = count_packets(net::SimDuration{0});
  const auto small = count_packets(msec(60));
  const auto big = count_packets(msec(1000));
  EXPECT_GT(none, small);
  EXPECT_GE(small, big);
}

}  // namespace
}  // namespace lod
