#include "lod/contenttree/content_tree.hpp"

#include <gtest/gtest.h>

#include "lod/net/rng.hpp"

namespace lod::contenttree {
namespace {

using net::sec;
using net::SimDuration;

Segment seg(const std::string& name, std::int64_t secs) {
  return Segment{name, sec(secs), ""};
}

/// The paper's §2.3 tree: S0(20)@0, S1(40)@1, S2(60)@2, S4(40)@2, S3(20)@1.
/// After the build steps the paper reports highestLevel = 2 and
/// LevelNodes = {20, 60, 100}; S2 and S4 are S1's children and S3 is a leaf
/// child of S0 (this is the unique shape that also reproduces the Fig. 3
/// insert values {20, 60, 120} with highestLevel 2 and Fig. 4's "children
/// adopted by sibling S1").
struct PaperTree {
  ContentTree t;
  NodeId s0, s1, s2, s3, s4;

  PaperTree() {
    s0 = t.add(seg("S0", 20), 0);
    s1 = t.add(seg("S1", 40), 1);
    s2 = t.add(seg("S2", 60), 2);
    s4 = t.attach_child(s1, seg("S4", 40));
    s3 = t.add(seg("S3", 20), 1);
  }
};

// --- §2.3: the build example, step by step -------------------------------------

TEST(PaperBuild, Step1AddS0) {
  ContentTree t;
  t.add(seg("S0", 20), 0);
  EXPECT_EQ(t.highest_level(), 0);
  EXPECT_EQ(t.level_value(0), sec(20));
}

TEST(PaperBuild, Step2AddS1) {
  ContentTree t;
  t.add(seg("S0", 20), 0);
  t.add(seg("S1", 40), 1);
  EXPECT_EQ(t.highest_level(), 1);
  EXPECT_EQ(t.level_value(1), sec(40));
}

TEST(PaperBuild, Step3AddS2) {
  ContentTree t;
  t.add(seg("S0", 20), 0);
  t.add(seg("S1", 40), 1);
  t.add(seg("S2", 60), 2);
  EXPECT_EQ(t.highest_level(), 2);
  EXPECT_EQ(t.level_value(2), sec(60));
}

TEST(PaperBuild, Step4FinalValues) {
  PaperTree p;
  EXPECT_EQ(p.t.highest_level(), 2);
  EXPECT_EQ(p.t.level_value(0), sec(20));
  EXPECT_EQ(p.t.level_value(1), sec(60));   // S1 + S3
  EXPECT_EQ(p.t.level_value(2), sec(100));  // S2 + S4
}

TEST(PaperBuild, StructureFollowsRightSpine) {
  PaperTree p;
  // S1 and S3 are children of S0; S2 and S4 under S1.
  EXPECT_EQ(p.t.parent(p.s1), p.s0);
  EXPECT_EQ(p.t.parent(p.s3), p.s0);
  EXPECT_EQ(p.t.parent(p.s2), p.s1);
  EXPECT_EQ(p.t.parent(p.s4), p.s1);
  EXPECT_TRUE(p.t.check_invariants());
}

// --- Fig. 3: insert S5 at level 1 -----------------------------------------------

TEST(PaperInsert, Fig3InsertS5) {
  PaperTree p;
  // Fig. 3: insert S5 (20 s) at level 1, splicing above the leaf S3, which
  // moves one level deeper. The paper reports highestLevel = 2 and
  // LevelNodes = {20, 60, 120} afterwards.
  const NodeId s5 = p.t.insert_above(p.s3, seg("S5", 20));
  EXPECT_EQ(p.t.highest_level(), 2);
  EXPECT_EQ(p.t.level_value(0), sec(20));
  EXPECT_EQ(p.t.level_value(1), sec(60));   // S1 + S5 (S3 pushed down)
  EXPECT_EQ(p.t.level_value(2), sec(120));  // S2 + S4 + S3
  EXPECT_EQ(p.t.level(s5), 1);
  EXPECT_EQ(p.t.level(p.s3), 2);
  EXPECT_EQ(p.t.parent(p.s3), s5);
  EXPECT_TRUE(p.t.check_invariants());
}

TEST(PaperInsert, InsertAboveRootCreatesNewRoot) {
  ContentTree t;
  const NodeId old_root = t.add(seg("S0", 10), 0);
  const NodeId new_root = t.insert_above(old_root, seg("intro", 5));
  EXPECT_EQ(t.root(), new_root);
  EXPECT_EQ(t.level(old_root), 1);
  EXPECT_EQ(t.parent(old_root), new_root);
  EXPECT_TRUE(t.check_invariants());
}

TEST(PaperInsert, InsertPreservesSiblingOrder) {
  ContentTree t;
  t.add(seg("root", 1), 0);
  const NodeId a = t.add(seg("a", 1), 1);
  const NodeId b = t.add(seg("b", 1), 1);
  const NodeId c = t.add(seg("c", 1), 1);
  const NodeId x = t.insert_above(b, seg("x", 1));
  const auto& ch = t.children(t.root());
  ASSERT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch[0], a);
  EXPECT_EQ(ch[1], x);  // x took b's position
  EXPECT_EQ(ch[2], c);
  EXPECT_EQ(t.parent(b), x);
}

// --- Fig. 4: delete S5 -----------------------------------------------------------

TEST(PaperDelete, Fig4DeleteS5ChildrenAdoptedBySibling) {
  PaperTree p;
  const NodeId s5 = p.t.insert_above(p.s3, seg("S5", 20));
  // Now delete S5: "the S5's children will be adopted by S5's siblings S1."
  p.t.remove(s5);
  EXPECT_FALSE(p.t.valid(s5));
  EXPECT_EQ(p.t.parent(p.s3), p.s1);  // adopted by left sibling S1
  EXPECT_EQ(p.t.level(p.s3), 2);
  EXPECT_EQ(p.t.highest_level(), 2);
  EXPECT_EQ(p.t.level_value(1), sec(40));   // back to S1 only
  EXPECT_EQ(p.t.level_value(2), sec(120));  // S2 + S4 + S3
  EXPECT_TRUE(p.t.check_invariants());
}

TEST(PaperDelete, LeftmostChildAdoptedByRightSibling) {
  ContentTree t;
  t.add(seg("root", 1), 0);
  const NodeId a = t.add(seg("a", 1), 1);
  const NodeId b = t.add(seg("b", 1), 1);
  const NodeId a1 = t.attach_child(a, seg("a1", 1));
  t.remove(a);  // a is leftmost: children go to right sibling b (front)
  EXPECT_EQ(t.parent(a1), b);
  EXPECT_EQ(t.children(b).front(), a1);
  EXPECT_TRUE(t.check_invariants());
}

TEST(PaperDelete, OnlyChildWithChildrenRaisesThem) {
  ContentTree t;
  const NodeId root = t.add(seg("root", 1), 0);
  const NodeId only = t.add(seg("only", 1), 1);
  const NodeId kid = t.attach_child(only, seg("kid", 1));
  t.remove(only);
  EXPECT_EQ(t.parent(kid), root);
  EXPECT_EQ(t.level(kid), 1);
  EXPECT_TRUE(t.check_invariants());
}

TEST(PaperDelete, LeafDeleteIsSimple) {
  PaperTree p;
  p.t.remove(p.s4);
  EXPECT_EQ(p.t.level_value(2), sec(60));
  EXPECT_EQ(p.t.size(), 4u);
  EXPECT_TRUE(p.t.check_invariants());
}

TEST(PaperDelete, RootWithSingleChildHandsOver) {
  ContentTree t;
  const NodeId root = t.add(seg("root", 1), 0);
  const NodeId child = t.add(seg("child", 1), 1);
  t.remove(root);
  EXPECT_EQ(t.root(), child);
  EXPECT_EQ(t.level(child), 0);
  EXPECT_TRUE(t.check_invariants());
}

TEST(PaperDelete, RootWithManyChildrenThrows) {
  ContentTree t;
  const NodeId root = t.add(seg("root", 1), 0);
  t.add(seg("a", 1), 1);
  t.add(seg("b", 1), 1);
  EXPECT_THROW(t.remove(root), std::invalid_argument);
}

TEST(PaperDelete, LastNodeEmptiesTree) {
  ContentTree t;
  const NodeId root = t.add(seg("root", 1), 0);
  t.remove(root);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.highest_level(), -1);
  EXPECT_TRUE(t.check_invariants());
}

// --- presentation time & sequence (§2.2, Fig. 2) ---------------------------------

TEST(Presentation, HigherLevelGivesLongerPresentation) {
  PaperTree p;
  // Level playouts: 20, 80, 180 — strictly increasing, per §2.2.
  EXPECT_EQ(p.t.presentation_time(0), sec(20));
  EXPECT_EQ(p.t.presentation_time(1), sec(80));
  EXPECT_EQ(p.t.presentation_time(2), sec(180));
  EXPECT_LT(p.t.presentation_time(0), p.t.presentation_time(1));
  EXPECT_LT(p.t.presentation_time(1), p.t.presentation_time(2));
}

TEST(Presentation, SequenceIsPreOrder) {
  PaperTree p;
  const auto seq2 = p.t.sequence(2);
  ASSERT_EQ(seq2.size(), 5u);
  EXPECT_EQ(seq2[0], p.s0);
  EXPECT_EQ(seq2[1], p.s1);
  EXPECT_EQ(seq2[2], p.s2);
  EXPECT_EQ(seq2[3], p.s4);
  EXPECT_EQ(seq2[4], p.s3);
  const auto seq1 = p.t.sequence(1);
  ASSERT_EQ(seq1.size(), 3u);
  EXPECT_EQ(seq1[1], p.s1);
  EXPECT_EQ(seq1[2], p.s3);
}

TEST(Presentation, LevelBeyondDeepestIsFullSequence) {
  PaperTree p;
  EXPECT_EQ(p.t.sequence(99).size(), 5u);
  EXPECT_EQ(p.t.presentation_time(99), sec(180));
}

TEST(Presentation, NegativeLevelEmpty) {
  PaperTree p;
  EXPECT_TRUE(p.t.sequence(-1).empty());
  EXPECT_EQ(p.t.presentation_time(-1).us, 0);
  EXPECT_EQ(p.t.level_value(-1).us, 0);
}

TEST(Presentation, EmptyLevelHasZeroValue) {
  PaperTree p;
  EXPECT_EQ(p.t.level_value(7).us, 0);
}

// --- construction errors ------------------------------------------------------------

TEST(Errors, SecondRootRejected) {
  ContentTree t;
  t.add(seg("r", 1), 0);
  EXPECT_THROW(t.add(seg("r2", 1), 0), std::invalid_argument);
}

TEST(Errors, LevelSkipRejected) {
  ContentTree t;
  t.add(seg("r", 1), 0);
  EXPECT_THROW(t.add(seg("deep", 1), 5), std::invalid_argument);
}

TEST(Errors, NegativeLevelRejected) {
  ContentTree t;
  EXPECT_THROW(t.add(seg("x", 1), -2), std::invalid_argument);
}

TEST(Errors, BadNodeIdThrows) {
  ContentTree t;
  EXPECT_THROW(t.segment(5), std::invalid_argument);
  EXPECT_THROW(t.remove(0), std::invalid_argument);
  t.add(seg("r", 1), 0);
  t.remove(t.root());
  EXPECT_THROW(t.segment(0), std::invalid_argument);  // dead id rejected
}

// --- lookup, rendering, serialization ----------------------------------------------

TEST(Misc, FindByName) {
  PaperTree p;
  EXPECT_EQ(p.t.find("S3"), p.s3);
  EXPECT_FALSE(p.t.find("S99").has_value());
}

TEST(Misc, ToStringShowsIndentedNames) {
  PaperTree p;
  const std::string s = p.t.to_string();
  EXPECT_NE(s.find("S0"), std::string::npos);
  EXPECT_NE(s.find("  S1"), std::string::npos);
  EXPECT_NE(s.find("    S2"), std::string::npos);
}

TEST(Misc, SerializeRoundTrip) {
  PaperTree p;
  p.t.segment(p.s2).media_ref = "video[0,60]";
  const auto bytes = p.t.serialize();
  const ContentTree u = ContentTree::deserialize(bytes);
  EXPECT_EQ(u.size(), 5u);
  EXPECT_EQ(u.highest_level(), 2);
  EXPECT_EQ(u.level_value(1), sec(60));
  EXPECT_EQ(u.level_value(2), sec(100));
  const auto s2 = u.find("S2");
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(u.segment(*s2).media_ref, "video[0,60]");
  EXPECT_TRUE(u.check_invariants());
}

TEST(Misc, SerializeEmptyTree) {
  ContentTree t;
  const ContentTree u = ContentTree::deserialize(t.serialize());
  EXPECT_TRUE(u.empty());
}

TEST(Misc, DeserializeBadMagicThrows) {
  std::vector<std::byte> junk(16, std::byte{0x5a});
  EXPECT_THROW(ContentTree::deserialize(junk), std::runtime_error);
}

// --- property sweep: random edits keep every invariant ------------------------------

class TreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TreeFuzz, RandomOperationsPreserveInvariants) {
  net::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  ContentTree t;
  std::vector<NodeId> live;
  live.push_back(t.add(seg("n0", 1 + GetParam() % 5), 0));
  int counter = 1;

  for (int op = 0; op < 200; ++op) {
    const auto pick = [&]() -> NodeId {
      return live[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
    };
    const int what = static_cast<int>(rng.uniform_int(0, 9));
    if (live.empty()) break;
    if (what < 5) {  // attach (most common)
      live.push_back(t.attach_child(
          pick(), seg("n" + std::to_string(counter++),
                      rng.uniform_int(1, 30))));
    } else if (what < 7) {  // insert above
      live.push_back(t.insert_above(
          pick(), seg("n" + std::to_string(counter++),
                      rng.uniform_int(1, 30))));
    } else {  // remove (skip illegal root removals)
      const NodeId victim = pick();
      if (victim == t.root() && t.children(victim).size() > 1) continue;
      t.remove(victim);
      live.erase(std::find(live.begin(), live.end(), victim));
    }
    std::string why;
    ASSERT_TRUE(t.check_invariants(&why)) << "op " << op << ": " << why;

    // Presentation time is monotone in level — the paper's core claim.
    SimDuration prev{-1};
    for (int lvl = 0; lvl <= t.highest_level(); ++lvl) {
      const SimDuration cur = t.presentation_time(lvl);
      ASSERT_GE(cur.us, prev.us);
      prev = cur;
    }
    // Sum of level values equals the deepest presentation time.
    SimDuration sum{};
    for (int lvl = 0; lvl <= t.highest_level(); ++lvl) {
      sum += t.level_value(lvl);
    }
    ASSERT_EQ(sum, t.presentation_time(t.highest_level()));
    // Serialization round-trips level accounting.
    if (op % 50 == 49) {
      const ContentTree u = ContentTree::deserialize(t.serialize());
      ASSERT_EQ(u.size(), t.size());
      for (int lvl = 0; lvl <= t.highest_level(); ++lvl) {
        ASSERT_EQ(u.level_value(lvl), t.level_value(lvl));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeFuzz, ::testing::Range(0, 20));

}  // namespace
}  // namespace lod::contenttree
