#include "lod/net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

/// Property tests for the RealTransport wire codecs (frame.hpp): arbitrary
/// bytes in, a verdict out, never a crash. The fuzz loops use a fixed-seed
/// PRNG so failures reproduce.

namespace lod::net::frame {
namespace {

std::vector<std::byte> encode_rpc(std::string_view path,
                                  std::span<const std::byte> body) {
  std::vector<std::byte> out(8 + path.size() + 4 + body.size());
  std::memcpy(out.data(), kRpcMagic, 4);
  detail::put_u32(out.data() + 4, static_cast<std::uint32_t>(path.size()));
  std::memcpy(out.data() + 8, path.data(), path.size());
  detail::put_u32(out.data() + 8 + path.size(),
                  static_cast<std::uint32_t>(body.size()));
  if (!body.empty()) {
    std::memcpy(out.data() + 8 + path.size() + 4, body.data(), body.size());
  }
  return out;
}

// --- LODU datagram header ---------------------------------------------------------

TEST(LodcFrame, UdpHeaderRoundTripsRandomFields) {
  std::mt19937_64 rng(2002);
  for (int i = 0; i < 2000; ++i) {
    UdpHeader h;
    h.src = static_cast<HostId>(rng());
    h.src_port = static_cast<Port>(rng());
    h.channel = static_cast<ChannelId>(rng());
    h.payload_len = static_cast<std::uint32_t>(rng() % 512);
    const std::size_t body = rng() % 256;

    std::vector<std::byte> dgram(kUdpHeaderSize + h.payload_len + body);
    encode_udp_header(dgram.data(), h);
    const auto got = decode_udp_header(dgram);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->src, h.src);
    EXPECT_EQ(got->src_port, h.src_port);
    EXPECT_EQ(got->channel, h.channel);
    EXPECT_EQ(got->payload_len, h.payload_len);
  }
}

TEST(LodcFrame, UdpHeaderRejectsTruncationEverywhere) {
  UdpHeader h;
  h.src = 3;
  h.src_port = 4242;
  h.channel = 9;
  h.payload_len = 32;
  std::vector<std::byte> dgram(kUdpHeaderSize + 32);
  encode_udp_header(dgram.data(), h);
  for (std::size_t len = 0; len < kUdpHeaderSize; ++len) {
    EXPECT_FALSE(decode_udp_header({dgram.data(), len}).has_value()) << len;
  }
  // Header intact but the claimed payload exceeds the datagram.
  for (std::size_t len = kUdpHeaderSize; len < dgram.size(); ++len) {
    EXPECT_FALSE(decode_udp_header({dgram.data(), len}).has_value()) << len;
  }
  EXPECT_TRUE(decode_udp_header(dgram).has_value());
}

TEST(LodcFrame, UdpHeaderRejectsBadMagic) {
  UdpHeader h;
  h.payload_len = 0;
  std::vector<std::byte> dgram(kUdpHeaderSize);
  encode_udp_header(dgram.data(), h);
  for (std::size_t i = 0; i < 4; ++i) {
    auto bad = dgram;
    bad[i] ^= std::byte{0x20};
    EXPECT_FALSE(decode_udp_header(bad).has_value()) << i;
  }
}

TEST(LodcFrame, UdpHeaderSurvivesRandomGarbage) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::byte> junk(rng() % 64);
    for (auto& b : junk) b = static_cast<std::byte>(rng());
    // Must never crash; magic makes an accidental accept astronomically
    // unlikely, so assert the decode verdict is internally consistent
    // instead of a fixed answer.
    const auto got = decode_udp_header(junk);
    if (got) {
      EXPECT_LE(got->payload_len + kUdpHeaderSize, junk.size());
    }
  }
}

// --- LODR request framing ---------------------------------------------------------

TEST(LodcFrame, RpcFrameRoundTripsRandomRequests) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    std::string path(rng() % 80, 'p');
    for (auto& c : path) c = static_cast<char>('a' + rng() % 26);
    std::vector<std::byte> body(rng() % 300);
    for (auto& b : body) b = static_cast<std::byte>(rng());

    auto wire = encode_rpc(path, body);
    // Trailing bytes of the NEXT frame must not confuse the parse.
    wire.resize(wire.size() + rng() % 16, std::byte{0x4c});

    RpcFrame f;
    ASSERT_EQ(parse_rpc_frame(wire, f), RpcParse::kFrame);
    EXPECT_EQ(f.path_len, path.size());
    EXPECT_EQ(f.body_len, body.size());
    EXPECT_EQ(f.frame_size, 8 + path.size() + 4 + body.size());
    EXPECT_EQ(0, std::memcmp(wire.data() + f.path_offset, path.data(),
                             path.size()));
    if (!body.empty()) {
      EXPECT_EQ(0, std::memcmp(wire.data() + f.body_offset, body.data(),
                               body.size()));
    }
  }
}

TEST(LodcFrame, RpcFrameByteByByteFeedNeedsMoreThenCompletes) {
  const std::vector<std::byte> body(19, std::byte{0xab});
  const auto wire = encode_rpc("/floor/request", body);
  RpcFrame f;
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_EQ(parse_rpc_frame({wire.data(), len}, f), RpcParse::kNeedMore)
        << len;
  }
  EXPECT_EQ(parse_rpc_frame(wire, f), RpcParse::kFrame);
}

TEST(LodcFrame, RpcFrameRejectsInsaneLengths) {
  // Path length beyond the sanity bound.
  auto wire = encode_rpc("/x", {});
  detail::put_u32(wire.data() + 4, kMaxRpcPathLen + 1);
  RpcFrame f;
  EXPECT_EQ(parse_rpc_frame(wire, f), RpcParse::kMalformed);

  // Body length beyond the sanity bound.
  wire = encode_rpc("/x", {});
  detail::put_u32(wire.data() + 8 + 2, kMaxRpcBodyLen + 1);
  EXPECT_EQ(parse_rpc_frame(wire, f), RpcParse::kMalformed);

  // At the bounds the verdict is kNeedMore (the frame just isn't here yet),
  // never kMalformed.
  wire = encode_rpc("/x", {});
  detail::put_u32(wire.data() + 8 + 2, kMaxRpcBodyLen);
  EXPECT_EQ(parse_rpc_frame(wire, f), RpcParse::kNeedMore);
}

TEST(LodcFrame, RpcFrameRejectsBadMagicOnceSniffable) {
  std::vector<std::byte> wire(16, std::byte{'G'});  // "GGGG..." != LODR
  RpcFrame f;
  EXPECT_EQ(parse_rpc_frame({wire.data(), 4}, f), RpcParse::kNeedMore);
  EXPECT_EQ(parse_rpc_frame(wire, f), RpcParse::kMalformed);
}

TEST(LodcFrame, RpcFrameSurvivesRandomGarbage) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::byte> junk(rng() % 128);
    for (auto& b : junk) b = static_cast<std::byte>(rng());
    RpcFrame f;
    const auto verdict = parse_rpc_frame(junk, f);
    if (verdict == RpcParse::kFrame) {
      EXPECT_LE(f.frame_size, junk.size());
      EXPECT_LE(f.body_offset + f.body_len, junk.size());
    }
  }
}

}  // namespace
}  // namespace lod::net::frame
