#include "lod/core/etpn.hpp"

#include <gtest/gtest.h>

#include "lod/core/ocpn.hpp"
#include "lod/core/xocpn.hpp"
#include "lod/net/network.hpp"

namespace lod::core {
namespace {

using net::msec;
using net::sec;
using net::SimTime;
using net::Simulator;

TemporalSpec obj(const std::string& name, std::int64_t secs,
                 std::int64_t bps = 0) {
  return TemporalSpec::object(name, 0, sec(secs), bps);
}

/// Three slides back to back: s1(2s) s2(3s) s3(5s); total 10 s.
TemporalSpec slides_spec() {
  return TemporalSpec::relate(
      Relation::kMeets,
      TemporalSpec::relate(Relation::kMeets, obj("s1", 2), obj("s2", 3)),
      obj("s3", 5));
}

struct EtpnFixture : ::testing::Test {
  EtpnFixture() : compiled(build_ocpn(slides_spec())) {}

  std::unique_ptr<InteractivePlayout> make_player() {
    auto p = std::make_unique<InteractivePlayout>(sim, compiled.net,
                                                  compiled.initial_marking());
    p->on_media([this](PlaceId, const MediaBinding& m, bool started,
                       SimDuration pos) {
      log.push_back((started ? "+" : "-") + m.object_name + "@" +
                    std::to_string(pos.us / 1'000'000));
    });
    return p;
  }

  Simulator sim;
  CompiledOcpn compiled;
  std::vector<std::string> log;
};

TEST_F(EtpnFixture, UninterruptedPlayoutMatchesSchedule) {
  auto p = make_player();
  p->start();
  sim.run();
  EXPECT_TRUE(p->finished());
  EXPECT_EQ(sim.now().us, sec(10).us);
  EXPECT_EQ(log, (std::vector<std::string>{"+s1@0", "-s1@2", "+s2@2", "-s2@5",
                                           "+s3@5", "-s3@10"}));
  // All episodes complete and contiguous in wall time.
  ASSERT_EQ(p->episodes().size(), 3u);
  for (const auto& ep : p->episodes()) EXPECT_TRUE(ep.complete);
  EXPECT_EQ(p->episodes()[0].wall_end, p->episodes()[1].wall_start);
}

TEST_F(EtpnFixture, MediaNowTracksWallClock) {
  auto p = make_player();
  p->start();
  sim.run_until(SimTime{sec(3).us});
  EXPECT_EQ(p->media_now(), sec(3));
  EXPECT_EQ(p->active_places().size(), 1u);
}

TEST_F(EtpnFixture, PauseFreezesAndResumeShifts) {
  auto p = make_player();
  p->start();
  sim.run_until(SimTime{sec(3).us});   // inside s2
  p->pause();
  sim.run_until(SimTime{sec(60).us});  // a long coffee break
  EXPECT_EQ(p->media_now(), sec(3));   // frozen
  EXPECT_FALSE(p->finished());
  p->resume();
  sim.run();
  EXPECT_TRUE(p->finished());
  // Total wall time = 10 s of content + 57 s of pause.
  EXPECT_EQ(sim.now().us, sec(67).us);
  // The event sequence is unchanged by the pause.
  EXPECT_EQ(log.back(), "-s3@10");
  ASSERT_EQ(p->episodes().size(), 3u);
}

TEST_F(EtpnFixture, DoublePauseAndResumeAreIdempotent) {
  auto p = make_player();
  p->start();
  sim.run_until(SimTime{sec(1).us});
  p->pause();
  p->pause();  // no-op
  p->resume();
  p->resume();  // no-op
  sim.run();
  EXPECT_TRUE(p->finished());
}

TEST_F(EtpnFixture, SeekForwardSwitchesActiveObject) {
  auto p = make_player();
  p->start();
  sim.run_until(SimTime{sec(1).us});  // inside s1
  p->seek(sec(6));                    // into s3
  // s1 stopped (incomplete), s3 started at media 6.
  EXPECT_EQ(log.back(), "+s3@6");
  sim.run();
  EXPECT_TRUE(p->finished());
  // Wall: 1 s of s1 + 4 s of s3 remainder.
  EXPECT_EQ(sim.now().us, sec(5).us);
  // Episode record: s1 incomplete, s3 complete.
  ASSERT_EQ(p->episodes().size(), 2u);
  EXPECT_FALSE(p->episodes()[0].complete);
  EXPECT_TRUE(p->episodes()[1].complete);
  EXPECT_EQ(p->episodes()[1].media_start, sec(6));
}

TEST_F(EtpnFixture, SeekBackwardReplays) {
  auto p = make_player();
  p->start();
  sim.run_until(SimTime{sec(7).us});  // inside s3
  p->seek(sec(2));                    // back to the start of s2
  sim.run();
  EXPECT_TRUE(p->finished());
  // 7 s forward + 8 s replay from media 2 to 10.
  EXPECT_EQ(sim.now().us, sec(15).us);
  // s2 and s3 each presented twice overall.
  int s2_count = 0;
  for (const auto& e : log) s2_count += (e.substr(0, 3) == "+s2") ? 1 : 0;
  EXPECT_EQ(s2_count, 2);
}

TEST_F(EtpnFixture, SeekWhilePausedStaysPaused) {
  auto p = make_player();
  p->start();
  sim.run_until(SimTime{sec(1).us});
  p->pause();
  p->seek(sec(6));
  EXPECT_TRUE(p->paused());
  EXPECT_EQ(p->media_now(), sec(6));
  sim.run_until(SimTime{sec(30).us});
  EXPECT_EQ(p->media_now(), sec(6));  // still frozen at the new position
  p->resume();
  sim.run();
  EXPECT_TRUE(p->finished());
  EXPECT_EQ(sim.now().us, sec(34).us);  // 30 + remaining 4
}

TEST_F(EtpnFixture, SeekClampsToBounds) {
  auto p = make_player();
  p->start();
  p->seek(sec(-5));
  EXPECT_EQ(p->media_now(), sec(0));
  p->seek(sec(100));
  EXPECT_EQ(p->media_now(), sec(10));
  sim.run();
  EXPECT_TRUE(p->finished());
}

TEST_F(EtpnFixture, DoubleSpeedHalvesWallTime) {
  auto p = make_player();
  p->set_rate(2.0);
  p->start();
  sim.run();
  EXPECT_TRUE(p->finished());
  EXPECT_EQ(sim.now().us, sec(5).us);
  EXPECT_EQ(log.back(), "-s3@10");  // media positions unaffected
}

TEST_F(EtpnFixture, HalfSpeedDoublesWallTime) {
  auto p = make_player();
  p->start();
  p->set_rate(0.5);
  sim.run();
  EXPECT_TRUE(p->finished());
  EXPECT_EQ(sim.now().us, sec(20).us);
}

TEST_F(EtpnFixture, MidStreamRateChange) {
  auto p = make_player();
  p->start();
  sim.run_until(SimTime{sec(4).us});  // media 4
  p->set_rate(2.0);
  sim.run();
  EXPECT_TRUE(p->finished());
  // 4 s at 1x + 6 s of media at 2x = 4 + 3 = 7 s wall.
  EXPECT_EQ(sim.now().us, sec(7).us);
}

TEST_F(EtpnFixture, InvalidRateThrows) {
  auto p = make_player();
  EXPECT_THROW(p->set_rate(0.0), std::invalid_argument);
  EXPECT_THROW(p->set_rate(-1.0), std::invalid_argument);
}

TEST_F(EtpnFixture, InteractionLogRecordsEverything) {
  auto p = make_player();
  p->start();
  sim.run_until(SimTime{sec(1).us});
  p->pause();
  p->resume();
  p->seek(sec(5));
  p->set_rate(2.0);
  sim.run();
  using K = InteractivePlayout::Interaction::Kind;
  ASSERT_EQ(p->interactions().size(), 5u);
  EXPECT_EQ(p->interactions()[0].kind, K::kStart);
  EXPECT_EQ(p->interactions()[1].kind, K::kPause);
  EXPECT_EQ(p->interactions()[2].kind, K::kResume);
  EXPECT_EQ(p->interactions()[3].kind, K::kSeek);
  EXPECT_EQ(p->interactions()[4].kind, K::kRate);
}

TEST_F(EtpnFixture, InteractionStormConvergesToFinish) {
  auto p = make_player();
  p->start();
  // A hostile user: alternating pause/seek/rate every 300 ms of wall time.
  for (int i = 1; i <= 20; ++i) {
    sim.run_until(SimTime{msec(300 * i).us});
    switch (i % 4) {
      case 0: p->pause(); break;
      case 1: p->resume(); p->seek(msec(500 * i)); break;
      case 2: p->set_rate(i % 8 == 2 ? 0.5 : 1.5); break;
      case 3: p->resume(); break;
    }
  }
  p->resume();
  p->set_rate(4.0);
  sim.run();
  EXPECT_TRUE(p->finished());
  EXPECT_EQ(p->media_now(), sec(10));
  // Every open episode was closed.
  for (const auto& ep : p->episodes()) {
    EXPECT_GE(ep.wall_end.us, ep.wall_start.us);
  }
}

TEST_F(EtpnFixture, ParallelMediaBothActive) {
  // video(4) equals audio(4): both active together, both tracked.
  auto spec = TemporalSpec::relate(Relation::kEquals, obj("video", 4),
                                   obj("audio", 4));
  auto c = build_ocpn(spec);
  InteractivePlayout p(sim, c.net, c.initial_marking());
  p.start();
  sim.run_until(SimTime{sec(2).us});
  EXPECT_EQ(p.active_places().size(), 2u);
  sim.run();
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.episodes().size(), 2u);
}

TEST_F(EtpnFixture, StartIsIdempotent) {
  auto p = make_player();
  p->start();
  sim.run_until(SimTime{sec(1).us});
  p->start();  // no-op
  sim.run();
  EXPECT_EQ(sim.now().us, sec(10).us);
}

TEST_F(EtpnFixture, SeekBeforeStartStartsPlayout) {
  auto p = make_player();
  p->seek(sec(5));
  sim.run();
  EXPECT_TRUE(p->finished());
  EXPECT_EQ(sim.now().us, sec(5).us);  // played the back half only
}

// --- XOCPN channel schedules -----------------------------------------------------

TEST(Xocpn, PlacementAnnotatesNet) {
  auto c = build_ocpn(TemporalSpec::relate(Relation::kEquals,
                                           obj("video", 10, 250'000),
                                           obj("audio", 10, 64'000)));
  apply_placement(c, {{"video", {1, 250'000}}, {"audio", {1, 64'000}}});
  const PlaceId vp = c.object_place.at("video");
  EXPECT_EQ(c.net.site(vp), 1u);
  EXPECT_EQ(c.net.media(vp)->required_bps, 250'000);
}

TEST(Xocpn, PlacementIgnoresUnknownObjects) {
  auto c = build_ocpn(obj("solo", 5));
  apply_placement(c, {{"ghost", {2, 1000}}});  // must not throw
  EXPECT_EQ(c.net.site(c.object_place.at("solo")), kLocalSite);
}

TEST(Xocpn, ChannelScheduleFollowsPlayout) {
  // s1(2) meets s2(3): remote slides, each needs a channel while presented.
  auto spec = TemporalSpec::relate(Relation::kMeets, obj("s1", 2, 50'000),
                                   obj("s2", 3, 50'000));
  auto c = build_ocpn(spec);
  apply_placement(c, {{"s1", {1, 50'000}}, {"s2", {1, 50'000}}});
  const auto sched = derive_channel_schedule(c, msec(500));
  ASSERT_EQ(sched.channels.size(), 2u);
  const auto& c1 = sched.channels[0];
  const auto& c2 = sched.channels[1];
  EXPECT_EQ(c1.object, "s1");
  EXPECT_EQ(c1.reserve_at, sec(0));  // 0 - 500ms clamps to 0
  EXPECT_EQ(c1.release_at, sec(2));
  EXPECT_EQ(c2.object, "s2");
  EXPECT_EQ(c2.reserve_at, msec(1500));  // 2s - 500ms lead
  EXPECT_EQ(c2.release_at, sec(5));
}

TEST(Xocpn, PeakBandwidthAccountsOverlap) {
  auto spec = TemporalSpec::relate(Relation::kEquals, obj("v", 10, 200'000),
                                   obj("a", 10, 64'000));
  auto c = build_ocpn(spec);
  apply_placement(c, {{"v", {1, 200'000}}, {"a", {1, 64'000}}});
  const auto sched = derive_channel_schedule(c, msec(0));
  EXPECT_EQ(sched.peak_bps, 264'000);
}

TEST(Xocpn, LocalObjectsNeedNoChannel) {
  auto spec = TemporalSpec::relate(Relation::kMeets, obj("local", 2, 50'000),
                                   obj("remote", 2, 50'000));
  auto c = build_ocpn(spec);
  apply_placement(c, {{"remote", {1, 50'000}}});  // "local" stays at site 0
  const auto sched = derive_channel_schedule(c, msec(100));
  ASSERT_EQ(sched.channels.size(), 1u);
  EXPECT_EQ(sched.channels[0].object, "remote");
}

TEST(Xocpn, ZeroRateObjectsSkipped) {
  auto c = build_ocpn(obj("free", 5, 0));
  apply_placement(c, {{"free", {1, 0}}});
  EXPECT_TRUE(derive_channel_schedule(c, msec(100)).channels.empty());
}

}  // namespace
}  // namespace lod::core
