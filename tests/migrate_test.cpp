#include "lod/sync/image.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "lod/edge/edge_node.hpp"
#include "lod/edge/replica_selector.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/spantree.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"
#include "lod/sync/blocks.hpp"
#include "lod/sync/state.hpp"

/// Session snapshot / live-migration tests (ROADMAP item 4): the freeze →
/// ship image → resume handshake between a player and an adopting edge
/// replica, plus the two session-lifecycle bugfixes that ride along (live
/// joins on a reused player, failover resume position).

namespace lod::sync {
namespace {

using net::msec;
using net::sec;
using net::SimDuration;
using net::SimTime;

/// Units rendered more than once — the "no duplicate rendered segments"
/// acceptance check. (pts, stream) identifies a unit; a correct resume
/// never shows one twice.
std::size_t duplicate_renders(const streaming::Player& p) {
  std::map<std::pair<std::int64_t, int>, int> seen;
  std::size_t dups = 0;
  for (const auto& ev : p.rendered()) {
    if (++seen[{ev.pts.us, ev.stream_id}] > 1) ++dups;
  }
  return dups;
}

/// Origin + two edge replicas (A nearest, B the migration target) + client.
struct MigrateFixture : ::testing::Test {
  MigrateFixture() : network(sim, 4321) {
    origin_host = network.add_host("origin");
    edge_a_host = network.add_host("edge_a");
    edge_b_host = network.add_host("edge_b");
    client_host = network.add_host("client");
    net::LinkConfig wan;
    wan.bandwidth_bps = 20'000'000;
    wan.latency = msec(60);
    network.add_link(origin_host, edge_a_host, wan);
    network.add_link(origin_host, edge_b_host, wan);
    net::LinkConfig lan;
    lan.bandwidth_bps = 10'000'000;
    lan.latency = msec(2);
    network.add_link(edge_a_host, client_host, lan);
    net::LinkConfig lan_b = lan;
    lan_b.latency = msec(3);  // B is slightly farther: A wins the first pick
    network.add_link(edge_b_host, client_host, lan_b);

    server = std::make_unique<streaming::StreamingServer>(network, origin_host);
    gateway = std::make_unique<edge::OriginGateway>(network, *server);
    edge::EdgeConfig ec;
    ec.origin = origin_host;
    edge_a = std::make_unique<edge::EdgeNode>(network, edge_a_host, ec);
    edge_b = std::make_unique<edge::EdgeNode>(network, edge_b_host, ec);
  }

  void publish(const std::string& name, SimDuration len) {
    streaming::EncodeJob job;
    job.profile = *media::find_profile("Video 250k DSL/cable");
    job.preroll = msec(2000);
    media::LectureVideoSource v(len, job.profile.fps, job.profile.width,
                                job.profile.height, 7);
    media::LectureAudioSource a(len, job.profile.audio_sample_rate());
    auto enc = streaming::encode_lecture(job, v, a, {});
    server->publish(name, enc.file);
  }

  streaming::PlayerConfig player_cfg(net::Port base) {
    streaming::PlayerConfig cfg;
    cfg.model = streaming::SyncModel::kEtpn;
    cfg.ctl_port = base;
    cfg.data_port = static_cast<net::Port>(base + 1);
    cfg.web_server = origin_host;
    return cfg;
  }

  /// Warm \p via's describe/meta cache with a short throwaway session, so a
  /// later /edge/migrate finds the replica hot and can adopt (a cold
  /// replica 503s and the player falls back to re-describe).
  void warm_edge(net::HostId via, const std::string& name) {
    streaming::Player w(network, client_host, player_cfg(6900));
    w.open_and_play(via, name);
    sim.run_until(sim.now() + sec(3));
    w.stop();
    sim.run_until(sim.now() + sec(1));
  }

  net::Simulator sim;
  net::Network network;
  net::HostId origin_host{}, edge_a_host{}, edge_b_host{}, client_host{};
  std::unique_ptr<streaming::StreamingServer> server;
  std::unique_ptr<edge::OriginGateway> gateway;
  std::unique_ptr<edge::EdgeNode> edge_a;
  std::unique_ptr<edge::EdgeNode> edge_b;
};

// --- satellite bugfix 1: live join on a reused player -------------------------

TEST_F(MigrateFixture, JoinLiveAfterVodSessionStartsCleanAndTreesHaveNoOrphans) {
  sim.obs().trace().set_enabled(true);
  publish("lec", sec(8));
  streaming::Player p(network, client_host, player_cfg(5000));
  p.open_and_play(origin_host, "lec");
  sim.run_until(SimTime{sec(20).us});
  ASSERT_TRUE(p.finished());
  const auto vod_units = p.units_rendered();
  EXPECT_GT(vod_units, 0u);

  // Reuse the SAME player for a live join. Before the fix this inherited
  // the VOD session's reorder/NACK/timer state and emitted spans with no
  // session root.
  streaming::EncodeJob job;
  job.profile = *media::find_profile("Video 250k DSL/cable");
  job.preroll = msec(2000);
  media::LectureVideoSource v(sec(5), job.profile.fps, job.profile.width,
                              job.profile.height);
  media::LectureAudioSource a(sec(5), job.profile.audio_sample_rate());
  streaming::LiveEncoder live(sim, job, std::move(v), std::move(a), {});
  auto sink = server->open_live_channel("live1", live.header());
  live.on_packet([sink](const media::asf::DataPacket& pkt) { sink(pkt); });

  p.join_live(origin_host, "live1");
  sim.run_until(sim.now() + msec(300));  // join lands before capture starts
  live.start();
  std::function<void()> waiter = [&] {
    if (live.done()) {
      server->close_live_channel("live1");
    } else {
      sim.schedule_after(msec(200), waiter);
    }
  };
  sim.schedule_after(msec(200), waiter);
  sim.run();

  EXPECT_TRUE(p.finished());
  EXPECT_GT(p.units_rendered(), vod_units);  // the live join rendered media

  // Two sessions, two trees, each rooted and orphan-free.
  const auto trees = obs::build_span_trees(sim.obs().trace().events());
  ASSERT_EQ(trees.size(), 2u);
  for (const auto& t : trees) {
    EXPECT_TRUE(t.orphans.empty());
    ASSERT_TRUE(t.root());
    EXPECT_EQ(t.root()->name, "player.session");
    EXPECT_TRUE(t.root()->closed);
  }
}

// --- satellite bugfix 2: failover resumes from the render cursor --------------

TEST_F(MigrateFixture, FailoverResumesFromRenderCursorWithoutDuplicates) {
  publish("lec", sec(30));
  edge::ReplicaSelector sel(network, client_host, origin_host,
                            {edge_a_host, edge_b_host});
  auto cfg = player_cfg(5000);
  cfg.failover_timeout = msec(1500);
  streaming::Player p(network, client_host, cfg);
  p.open_and_play_via(sel, "lec");
  sim.run_until(SimTime{sec(5).us});
  ASSERT_TRUE(p.playing());
  ASSERT_EQ(p.current_server(), edge_a_host);
  const auto cursor_at_kill = p.position();
  ASSERT_GT(cursor_at_kill.us, sec(1).us);

  edge_a.reset();  // kill the serving edge mid-playout
  sim.run_until(SimTime{sec(60).us});

  EXPECT_GE(p.failovers(), 1u);
  EXPECT_TRUE(p.finished());
  // Before the fix the reopen replayed from the ORIGINAL `from` offset (0),
  // re-rendering every already-shown unit.
  EXPECT_EQ(duplicate_renders(p), 0u);
  // The full tail of the lecture still rendered.
  ASSERT_FALSE(p.rendered().empty());
  EXPECT_GE(p.rendered().back().pts.us, sec(28).us);
}

TEST_F(MigrateFixture, DoubleFailoverStillFinishesOnTheOrigin) {
  publish("lec", sec(30));
  edge::ReplicaSelector sel(network, client_host, origin_host,
                            {edge_a_host, edge_b_host});
  auto cfg = player_cfg(5000);
  cfg.failover_timeout = msec(1500);
  streaming::Player p(network, client_host, cfg);
  p.open_and_play_via(sel, "lec");
  sim.run_until(SimTime{sec(5).us});
  ASSERT_EQ(p.current_server(), edge_a_host);

  edge_a.reset();
  sim.run_until(SimTime{sec(10).us});
  ASSERT_GE(p.failovers(), 1u);
  edge_b.reset();  // and the failover target dies too
  sim.run_until(SimTime{sec(60).us});

  EXPECT_GE(p.failovers(), 2u);
  EXPECT_EQ(p.current_server(), origin_host);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(duplicate_renders(p), 0u);
}

// --- the migration handshake --------------------------------------------------

TEST_F(MigrateFixture, MigrationHandshakeAdoptsSessionOnWarmReplica) {
  publish("lec", sec(30));
  warm_edge(edge_b_host, "lec");
  sim.obs().trace().set_enabled(true);

  // B is the selector's floor (always eligible), A the nearest first pick.
  edge::ReplicaSelector sel(network, client_host, edge_b_host, {edge_a_host});
  auto cfg = player_cfg(5000);
  cfg.failover_timeout = msec(1500);
  cfg.migrate_on_failover = true;
  streaming::Player p(network, client_host, cfg);
  p.open_and_play_via(sel, "lec");
  sim.run_until(sim.now() + sec(5));
  ASSERT_TRUE(p.playing());
  ASSERT_EQ(p.current_server(), edge_a_host);

  edge_a.reset();  // the serving edge dies mid-playout
  sim.run_until(sim.now() + sec(55));

  EXPECT_TRUE(p.finished());
  EXPECT_GE(p.failovers(), 1u);
  EXPECT_GE(p.migrations(), 1u);
  EXPECT_EQ(p.current_server(), edge_b_host);
  EXPECT_GE(edge_b->migrations_adopted(), 1u);
  EXPECT_EQ(duplicate_renders(p), 0u);

  // Acceptance: a mid-playout migration stalls rendering by at most one
  // jitter-buffer depth (the 2 s preroll).
  for (const auto& s : p.stalls()) {
    EXPECT_LE(s.duration.us, msec(2000).us);
  }

  // The adopted session stays inside the ORIGINAL session's trace: one
  // orphan-free tree holding both the failover span and the adopting
  // replica's edge.adopt span.
  const auto trees = obs::build_span_trees(sim.obs().trace().events());
  ASSERT_EQ(trees.size(), 1u);
  const auto& t = trees[0];
  EXPECT_TRUE(t.orphans.empty());
  ASSERT_TRUE(t.root());
  EXPECT_EQ(t.root()->name, "player.session");
  bool saw_failover = false, saw_adopt = false;
  for (const auto& n : t.nodes) {
    if (n.name == "player.failover") saw_failover = true;
    if (n.name == "edge.adopt") saw_adopt = true;
  }
  EXPECT_TRUE(saw_failover);
  EXPECT_TRUE(saw_adopt);
}

TEST_F(MigrateFixture, ColdReplicaFallsBackToRedescribeAndStillFinishes) {
  publish("lec", sec(30));
  // No warm_edge: B has never seen "lec", so /edge/migrate 503s and the
  // player must fall back to the re-describe reopen.
  edge::ReplicaSelector sel(network, client_host, edge_b_host, {edge_a_host});
  auto cfg = player_cfg(5000);
  cfg.failover_timeout = msec(1500);
  cfg.migrate_on_failover = true;
  streaming::Player p(network, client_host, cfg);
  p.open_and_play_via(sel, "lec");
  sim.run_until(SimTime{sec(5).us});
  ASSERT_EQ(p.current_server(), edge_a_host);

  edge_a.reset();
  sim.run_until(SimTime{sec(60).us});

  EXPECT_TRUE(p.finished());
  EXPECT_GE(p.failovers(), 1u);
  EXPECT_EQ(p.migrations(), 0u);  // adoption refused, re-describe won
  EXPECT_EQ(p.current_server(), edge_b_host);
  EXPECT_EQ(duplicate_renders(p), 0u);
}

TEST_F(MigrateFixture, MigrateDuringResyncSurvivesARacingDelta) {
  publish("lec", sec(30));
  warm_edge(edge_b_host, "lec");

  edge::ReplicaSelector sel(network, client_host, edge_b_host, {edge_a_host});
  auto cfg = player_cfg(5000);
  cfg.failover_timeout = msec(1500);
  cfg.migrate_on_failover = true;
  streaming::Player p(network, client_host, cfg);

  SessionState st;
  register_player_session_blocks(st, &p);
  attach_migration_image(p, st);

  p.open_and_play_via(sel, "lec");
  sim.run_until(sim.now() + sec(5));
  ASSERT_TRUE(p.playing());

  // Freeze a sync image NOW, kill the edge, and deliver the image 200 ms
  // into the dead window — a SyncAgent delta racing the migration, arriving
  // after the state it describes is already stale.
  st.refresh();
  const auto stale = st.serialize_full();
  edge_a.reset();
  SessionState::ApplyResult res;
  sim.schedule_after(msec(200), [&] { res = st.apply(stale); });
  sim.run_until(sim.now() + sec(55));

  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_GE(p.migrations(), 1u);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.current_server(), edge_b_host);
}

// --- SessionImage capture / restore / wire codec ------------------------------

TEST_F(MigrateFixture, SessionImageRoundTripsAndRestores) {
  publish("lec", sec(8));
  streaming::Player p(network, client_host, player_cfg(5000));
  SessionState st;
  register_player_session_blocks(st, &p);
  p.open_and_play(origin_host, "lec");
  sim.run_until(SimTime{sec(4).us});
  ASSERT_TRUE(p.playing());

  const SessionImage img = capture_session_image(st, p);
  EXPECT_EQ(img.content, "lec");
  EXPECT_NE(img.session_id, 0u);
  EXPECT_GT(img.position_us, 0);
  EXPECT_FALSE(img.state.empty());

  const auto wire = serialize_image(img);
  const SessionImage back = parse_image(wire);
  EXPECT_EQ(back.content, img.content);
  EXPECT_EQ(back.session_id, img.session_id);
  EXPECT_EQ(back.position_us, img.position_us);
  EXPECT_EQ(back.stream_epoch, img.stream_epoch);
  EXPECT_EQ(back.trace_id, img.trace_id);
  EXPECT_EQ(back.root_span, img.root_span);
  EXPECT_EQ(back.state, img.state);

  // Thawing the image back into the state it came from is a clean no-op
  // apply that reaches the image's checksum.
  const auto res = restore_session_image(st, back);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.checksum_match);
  EXPECT_EQ(res.blocks_applied, 5u);

  sim.run_until(SimTime{sec(20).us});
  EXPECT_TRUE(p.finished());
}

TEST_F(MigrateFixture, CorruptImageFailsParseLoudly) {
  publish("lec", sec(8));
  streaming::Player p(network, client_host, player_cfg(5000));
  SessionState st;
  register_player_session_blocks(st, &p);
  p.open_and_play(origin_host, "lec");
  sim.run_until(SimTime{sec(3).us});

  auto wire = serialize_image(capture_session_image(st, p));
  EXPECT_NO_THROW(parse_image(wire));
  wire[wire.size() / 2] ^= std::byte{0x40};
  EXPECT_THROW(parse_image(wire), std::runtime_error);
  EXPECT_THROW(parse_image(std::span<const std::byte>(wire).first(4)),
               std::runtime_error);
}

}  // namespace
}  // namespace lod::sync
