// Exporter golden tests: byte-exact Prometheus text exposition and
// structured JSON over a small fixed registry.

#include <gtest/gtest.h>

#include "lod/obs/export.hpp"
#include "lod/obs/metrics.hpp"

using namespace lod::obs;

namespace {

/// A tiny registry exercising every kind, label shapes, and name collation.
Snapshot fixture() {
  static MetricsRegistry reg;
  static bool built = false;
  if (!built) {
    built = true;
    reg.counter("lod.player.stalls", {{"host", "2"}}).inc(3);
    reg.counter("lod.player.stalls", {{"host", "5"}}).inc(1);
    // Same prefix, longer name: must not interleave with the group above.
    reg.counter("lod.player.stalls_recovered", {{"host", "2"}}).inc(2);
    reg.gauge("lod.edge.active_sessions", {{"host", "1"}}).set(4);
    Histogram h = reg.histogram("lod.floor.grant_wait_us", {1000, 5000}, {});
    h.observe(500);
    h.observe(500);
    h.observe(4000);
    h.observe(99'000);
    reg.counter("odd name+chars", {{"label key", "va\"lu\\e\n"}}).inc(7);
  }
  return reg.snapshot();
}

}  // namespace

TEST(Export, PrometheusGolden) {
  const char* expected =
      "# TYPE lod_edge_active_sessions gauge\n"
      "lod_edge_active_sessions{host=\"1\"} 4\n"
      "# TYPE lod_floor_grant_wait_us histogram\n"
      "lod_floor_grant_wait_us_bucket{le=\"1000\"} 2\n"
      "lod_floor_grant_wait_us_bucket{le=\"5000\"} 3\n"
      "lod_floor_grant_wait_us_bucket{le=\"+Inf\"} 4\n"
      "lod_floor_grant_wait_us_sum 104000\n"
      "lod_floor_grant_wait_us_count 4\n"
      "# TYPE lod_player_stalls counter\n"
      "lod_player_stalls{host=\"2\"} 3\n"
      "lod_player_stalls{host=\"5\"} 1\n"
      "# TYPE lod_player_stalls_recovered counter\n"
      "lod_player_stalls_recovered{host=\"2\"} 2\n"
      "# TYPE odd_name_chars counter\n"
      "odd_name_chars{label_key=\"va\\\"lu\\\\e\\n\"} 7\n";
  EXPECT_EQ(to_prometheus(fixture()), expected);
}

TEST(Export, JsonGolden) {
  const char* expected =
      "{\"series\":[\n"
      "{\"name\":\"lod.edge.active_sessions\",\"kind\":\"gauge\","
      "\"labels\":{\"host\":\"1\"},\"value\":4},\n"
      "{\"name\":\"lod.floor.grant_wait_us\",\"kind\":\"histogram\","
      "\"labels\":{},\"count\":4,\"sum\":104000,\"min\":500,\"max\":99000,"
      "\"bounds\":[1000,5000],\"counts\":[2,1,1]},\n"
      "{\"name\":\"lod.player.stalls\",\"kind\":\"counter\","
      "\"labels\":{\"host\":\"2\"},\"value\":3},\n"
      "{\"name\":\"lod.player.stalls\",\"kind\":\"counter\","
      "\"labels\":{\"host\":\"5\"},\"value\":1},\n"
      "{\"name\":\"lod.player.stalls_recovered\",\"kind\":\"counter\","
      "\"labels\":{\"host\":\"2\"},\"value\":2},\n"
      "{\"name\":\"odd name+chars\",\"kind\":\"counter\","
      "\"labels\":{\"label key\":\"va\\\"lu\\\\e\\n\"},\"value\":7}\n"
      "]}\n";
  EXPECT_EQ(to_json(fixture()), expected);
}

TEST(Export, EmptySnapshot) {
  MetricsRegistry reg;
  EXPECT_EQ(to_prometheus(reg.snapshot()), "");
  EXPECT_EQ(to_json(reg.snapshot()), "{\"series\":[\n]}\n");
}

TEST(Export, EmptyHistogramOmitsMinMaxInJson) {
  MetricsRegistry reg;
  reg.histogram("h", {10}, {});
  const std::string json = to_json(reg.snapshot());
  EXPECT_NE(json.find("\"count\":0,\"sum\":0,\"bounds\":[10]"),
            std::string::npos);
  EXPECT_EQ(json.find("\"min\""), std::string::npos);
}
