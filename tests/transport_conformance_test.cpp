#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lod/net/network.hpp"
#include "lod/net/real_transport.hpp"
#include "lod/net/transport.hpp"

/// \file transport_conformance_test.cpp
/// One behavioral contract, two backends.
///
/// Every test here is written against `net::Transport` alone and instantiated
/// for both implementations — the deterministic simulator (`SimTransport`)
/// and the kernel-socket epoll loop (`RealTransport`). A test may only use
/// the seam plus each harness's `run_until`; anything backend-specific
/// (links, loss, loopback addresses) lives in the harness. This is the
/// executable statement of "the stack above packets cannot tell which
/// network it is running on".

namespace lod::net {
namespace {

/// The simulated backend: two hosts joined by a clean 10 Mb/s LAN link.
struct SimHarness {
  Simulator sim;
  Network net{sim, 7};
  HostId a{0};
  HostId b{0};

  SimHarness() {
    a = net.add_host("alpha");
    b = net.add_host("beta");
    LinkConfig lan;  // defaults: 10 Mb/s, 1 ms, lossless
    net.add_link(a, b, lan);
  }

  Transport& transport() { return net; }

  /// Drive the event loop until \p pred holds or events run dry.
  bool run_until(const std::function<bool()>& pred) {
    const SimTime deadline = net.now() + sec(30);
    while (!pred() && net.now() < deadline) {
      if (sim.run_steps(64) == 0) break;  // idle: nothing further can change
    }
    return pred();
  }
};

/// The kernel backend: two loopback hosts on one epoll loop. Single-threaded
/// on purpose — the loop runs on the test thread, with a polling timer
/// checking the predicate, so the tests are TSan-clean by construction.
struct RealHarness {
  RealTransport rt;
  HostId a{0};
  HostId b{0};

  RealHarness() {
    a = rt.add_host("alpha");
    b = rt.add_host("beta");
  }

  Transport& transport() { return rt; }

  bool run_until(const std::function<bool()>& pred) {
    bool ok = false;
    std::function<void()> poll = [&] {
      if (pred()) {
        ok = true;
        rt.stop();
        return;
      }
      rt.schedule_after(msec(2), poll);
    };
    rt.schedule_after(usec(0), poll);
    const EventId guard = rt.schedule_after(sec(10), [&] { rt.stop(); });
    rt.run();
    rt.cancel(guard);
    return ok || pred();
  }
};

template <typename H>
class TransportConformance : public ::testing::Test {
 protected:
  H h;
};

struct BackendNames {
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, SimHarness>) return "SimTransport";
    if constexpr (std::is_same_v<T, RealHarness>) return "RealTransport";
    return "unknown";
  }
};

using Backends = ::testing::Types<SimHarness, RealHarness>;
TYPED_TEST_SUITE(TransportConformance, Backends, BackendNames);

std::vector<std::byte> bytes_of(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(p, p + s.size());
}

std::string string_of(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

TYPED_TEST(TransportConformance, DatagramDelivery) {
  Transport& t = this->h.transport();
  std::optional<Datagram> got;
  DatagramSocket rx(t, this->h.b, 7000);
  rx.on_receive([&](const Datagram& d) { got = d; });
  DatagramSocket tx(t, this->h.a, 7001);
  tx.send_to(this->h.b, 7000, bytes_of("hello over any backend"));

  ASSERT_TRUE(this->h.run_until([&] { return got.has_value(); }));
  EXPECT_EQ(got->src, this->h.a);
  EXPECT_EQ(got->src_port, 7001);
  EXPECT_EQ(got->dst, this->h.b);
  EXPECT_EQ(got->dst_port, 7000);
  EXPECT_EQ(string_of(got->payload), "hello over any backend");
  EXPECT_TRUE(got->body.empty());
}

/// Scatter-gather sends must arrive with the sender's exact payload/body
/// split: the reliable endpoint's framing reads header fields from `payload`
/// and takes `body` as the message, on every backend.
TYPED_TEST(TransportConformance, ScatterGatherSplitSurvivesTheWire) {
  Transport& t = this->h.transport();
  std::optional<Datagram> got;
  DatagramSocket rx(t, this->h.b, 7000);
  rx.on_receive([&](const Datagram& d) { got = d; });
  DatagramSocket tx(t, this->h.a, 7001);
  tx.send_to(this->h.b, 7000, bytes_of("hdr"), bytes_of("attached body"), 28);

  ASSERT_TRUE(this->h.run_until([&] { return got.has_value(); }));
  EXPECT_EQ(string_of(got->payload), "hdr");
  EXPECT_EQ(string_of(got->body), "attached body");
}

TYPED_TEST(TransportConformance, ReliableDeliversInOrder) {
  Transport& t = this->h.transport();
  std::vector<std::string> got;
  ReliableEndpoint rx(t, this->h.b, 80);
  rx.on_receive([&](const ReliableEndpoint::Message& m) {
    got.push_back(string_of(m.payload));
  });
  ReliableEndpoint tx(t, this->h.a, 81);
  for (int i = 0; i < 20; ++i) {
    tx.send_to(this->h.b, 80, bytes_of("msg " + std::to_string(i)));
  }

  ASSERT_TRUE(this->h.run_until([&] { return got.size() == 20; }));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[i], "msg " + std::to_string(i));
  EXPECT_TRUE(this->h.run_until([&] { return tx.all_acked(); }));
}

/// Messages sent before the receiver exists are delivered by retransmission
/// once it binds — the reconnect story is identical on both backends.
TYPED_TEST(TransportConformance, RetransmissionCoversALateReceiver) {
  Transport& t = this->h.transport();
  ReliableEndpoint tx(t, this->h.a, 81, msec(50));
  for (int i = 0; i < 3; ++i) {
    tx.send_to(this->h.b, 80, bytes_of("early " + std::to_string(i)));
  }
  std::vector<std::string> got;
  std::optional<ReliableEndpoint> rx;
  t.schedule_after(msec(150), [&] {
    rx.emplace(t, this->h.b, 80);
    rx->on_receive([&](const ReliableEndpoint::Message& m) {
      got.push_back(string_of(m.payload));
    });
  });

  ASSERT_TRUE(this->h.run_until([&] { return got.size() == 3; }));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(got[i], "early " + std::to_string(i));
  EXPECT_GE(tx.retransmissions(), 1u);
}

TYPED_TEST(TransportConformance, RpcRoundTrip) {
  Transport& t = this->h.transport();
  RpcServer server(t, this->h.b, 80);
  server.route("/echo", [](std::string_view, std::span<const std::byte> body) {
    return std::make_pair(200,
                          std::vector<std::byte>(body.begin(), body.end()));
  });
  RpcClient client(t, this->h.a, 81);
  int status = -1;
  std::string body;
  client.call(this->h.b, 80, "/echo", bytes_of("ping"),
              [&](Result<RpcReply> r) {
                ASSERT_TRUE(r.has_value());
                status = r->status;
                body = string_of(r->body);
              });

  ASSERT_TRUE(this->h.run_until([&] { return status != -1; }));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ping");
}

TYPED_TEST(TransportConformance, RpcUnknownPathIs404) {
  Transport& t = this->h.transport();
  RpcServer server(t, this->h.b, 80);
  RpcClient client(t, this->h.a, 81);
  int status = -1;
  client.call(this->h.b, 80, "/missing", {},
              [&](Result<RpcReply> r) { status = r ? r->status : -2; });

  ASSERT_TRUE(this->h.run_until([&] { return status != -1; }));
  EXPECT_EQ(status, 404);
}

/// A deadline against a server that never answers reports the uniform
/// `Error::kTimeout` — the same code a sim black hole and a real dead port
/// produce.
TYPED_TEST(TransportConformance, RpcDeadlineReportsTimeout) {
  Transport& t = this->h.transport();
  RpcClient client(t, this->h.a, 81);
  std::optional<Error> err;
  RpcClient::CallOptions opts;
  opts.timeout = msec(200);
  client.call(this->h.b, 4242, "/void", {},
              [&](Result<RpcReply> r) {
                if (!r) err = r.error();
              },
              opts);

  ASSERT_TRUE(this->h.run_until([&] { return err.has_value(); }));
  EXPECT_EQ(*err, Error::kTimeout);
}

TYPED_TEST(TransportConformance, TimersFireInOrderAndCancel) {
  Transport& t = this->h.transport();
  std::vector<int> fired;
  bool done = false;
  t.schedule_after(msec(50), [&] {
    fired.push_back(50);
    done = true;
  });
  t.schedule_after(msec(10), [&] { fired.push_back(10); });
  const EventId victim = t.schedule_after(msec(30), [&] { fired.push_back(30); });
  EXPECT_TRUE(t.cancel(victim));
  EXPECT_FALSE(t.cancel(victim));  // second cancel is a stale no-op

  ASSERT_TRUE(this->h.run_until([&] { return done; }));
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 10);
  EXPECT_EQ(fired[1], 50);
}

TYPED_TEST(TransportConformance, EndpointNamesRoundTrip) {
  Transport& t = this->h.transport();
  EXPECT_EQ(t.find_endpoint("alpha"), std::optional<HostId>(this->h.a));
  EXPECT_EQ(t.find_endpoint("beta"), std::optional<HostId>(this->h.b));
  EXPECT_EQ(t.find_endpoint("no-such-host"), std::nullopt);
  EXPECT_EQ(t.endpoint_name(this->h.a), "alpha");
}

/// QoS is an optional capability: a backend may grant a reservation (the
/// simulator does) or decline (the kernel path does), but a granted channel
/// must report a positive rate and tagged datagrams must still deliver.
TYPED_TEST(TransportConformance, QosDegradesToBestEffort) {
  Transport& t = this->h.transport();
  const std::optional<ChannelId> ch =
      t.reserve_channel(this->h.a, this->h.b, 1'000'000);
  ChannelId tag = 0;
  if (ch.has_value()) {
    EXPECT_EQ(t.channel_rate_bps(*ch), 1'000'000);
    tag = *ch;
  } else {
    EXPECT_EQ(t.channel_rate_bps(999), 0);
  }

  std::optional<Datagram> got;
  DatagramSocket rx(t, this->h.b, 7000);
  rx.on_receive([&](const Datagram& d) { got = d; });
  DatagramSocket tx(t, this->h.a, 7001);
  tx.send_to(this->h.b, 7000, bytes_of("qos-or-not"), 28, tag);

  ASSERT_TRUE(this->h.run_until([&] { return got.has_value(); }));
  EXPECT_EQ(string_of(got->payload), "qos-or-not");
  if (ch.has_value()) t.release_channel(*ch);
}

/// Oversized datagrams are refused by the backend's own limit (link MTU is
/// not modeled; UDP's 64KB ceiling is) without wedging the sender.
TYPED_TEST(TransportConformance, OversizedDatagramIsRefusedCleanly) {
  Transport& t = this->h.transport();
  DatagramSocket rx(t, this->h.b, 7000);
  bool got_big = false;
  rx.on_receive([&](const Datagram&) { got_big = true; });
  DatagramSocket tx(t, this->h.a, 7001);
  // Far over RealTransport::kMaxDatagram; the simulator takes anything, the
  // kernel refuses — either way the next normal send must still work.
  const bool sent = tx.send_to(this->h.b, 7000,
                               std::vector<std::byte>(100'000));
  std::optional<Datagram> got;
  DatagramSocket rx2(t, this->h.b, 7002);
  rx2.on_receive([&](const Datagram& d) { got = d; });
  tx.send_to(this->h.b, 7002, bytes_of("after the giant"));

  ASSERT_TRUE(this->h.run_until([&] { return got.has_value(); }));
  EXPECT_EQ(string_of(got->payload), "after the giant");
  if (!sent) EXPECT_FALSE(got_big);
}

}  // namespace
}  // namespace lod::net
