file(REMOVE_RECURSE
  "liblod_net.a"
)
