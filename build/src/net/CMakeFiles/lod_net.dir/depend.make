# Empty dependencies file for lod_net.
# This may be replaced when dependencies are built.
