file(REMOVE_RECURSE
  "CMakeFiles/lod_net.dir/network.cpp.o"
  "CMakeFiles/lod_net.dir/network.cpp.o.d"
  "CMakeFiles/lod_net.dir/simulator.cpp.o"
  "CMakeFiles/lod_net.dir/simulator.cpp.o.d"
  "CMakeFiles/lod_net.dir/transport.cpp.o"
  "CMakeFiles/lod_net.dir/transport.cpp.o.d"
  "liblod_net.a"
  "liblod_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
