
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/streaming/encoder.cpp" "src/streaming/CMakeFiles/lod_streaming.dir/encoder.cpp.o" "gcc" "src/streaming/CMakeFiles/lod_streaming.dir/encoder.cpp.o.d"
  "/root/repo/src/streaming/player.cpp" "src/streaming/CMakeFiles/lod_streaming.dir/player.cpp.o" "gcc" "src/streaming/CMakeFiles/lod_streaming.dir/player.cpp.o.d"
  "/root/repo/src/streaming/server.cpp" "src/streaming/CMakeFiles/lod_streaming.dir/server.cpp.o" "gcc" "src/streaming/CMakeFiles/lod_streaming.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/lod_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lod_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
