file(REMOVE_RECURSE
  "CMakeFiles/lod_streaming.dir/encoder.cpp.o"
  "CMakeFiles/lod_streaming.dir/encoder.cpp.o.d"
  "CMakeFiles/lod_streaming.dir/player.cpp.o"
  "CMakeFiles/lod_streaming.dir/player.cpp.o.d"
  "CMakeFiles/lod_streaming.dir/server.cpp.o"
  "CMakeFiles/lod_streaming.dir/server.cpp.o.d"
  "liblod_streaming.a"
  "liblod_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
