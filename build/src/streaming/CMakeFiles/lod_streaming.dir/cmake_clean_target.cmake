file(REMOVE_RECURSE
  "liblod_streaming.a"
)
