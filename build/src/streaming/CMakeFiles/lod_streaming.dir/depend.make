# Empty dependencies file for lod_streaming.
# This may be replaced when dependencies are built.
