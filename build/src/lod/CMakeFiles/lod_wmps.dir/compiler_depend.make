# Empty compiler generated dependencies file for lod_wmps.
# This may be replaced when dependencies are built.
