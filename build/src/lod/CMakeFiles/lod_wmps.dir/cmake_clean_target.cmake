file(REMOVE_RECURSE
  "liblod_wmps.a"
)
