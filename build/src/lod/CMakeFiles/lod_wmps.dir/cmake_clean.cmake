file(REMOVE_RECURSE
  "CMakeFiles/lod_wmps.dir/abstraction.cpp.o"
  "CMakeFiles/lod_wmps.dir/abstraction.cpp.o.d"
  "CMakeFiles/lod_wmps.dir/adaptive.cpp.o"
  "CMakeFiles/lod_wmps.dir/adaptive.cpp.o.d"
  "CMakeFiles/lod_wmps.dir/classroom.cpp.o"
  "CMakeFiles/lod_wmps.dir/classroom.cpp.o.d"
  "CMakeFiles/lod_wmps.dir/floor.cpp.o"
  "CMakeFiles/lod_wmps.dir/floor.cpp.o.d"
  "CMakeFiles/lod_wmps.dir/wmps.cpp.o"
  "CMakeFiles/lod_wmps.dir/wmps.cpp.o.d"
  "liblod_wmps.a"
  "liblod_wmps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_wmps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
