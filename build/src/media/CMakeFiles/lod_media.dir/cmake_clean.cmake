file(REMOVE_RECURSE
  "CMakeFiles/lod_media.dir/asf.cpp.o"
  "CMakeFiles/lod_media.dir/asf.cpp.o.d"
  "CMakeFiles/lod_media.dir/codec.cpp.o"
  "CMakeFiles/lod_media.dir/codec.cpp.o.d"
  "CMakeFiles/lod_media.dir/drm.cpp.o"
  "CMakeFiles/lod_media.dir/drm.cpp.o.d"
  "CMakeFiles/lod_media.dir/profile.cpp.o"
  "CMakeFiles/lod_media.dir/profile.cpp.o.d"
  "CMakeFiles/lod_media.dir/sources.cpp.o"
  "CMakeFiles/lod_media.dir/sources.cpp.o.d"
  "liblod_media.a"
  "liblod_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
