
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/asf.cpp" "src/media/CMakeFiles/lod_media.dir/asf.cpp.o" "gcc" "src/media/CMakeFiles/lod_media.dir/asf.cpp.o.d"
  "/root/repo/src/media/codec.cpp" "src/media/CMakeFiles/lod_media.dir/codec.cpp.o" "gcc" "src/media/CMakeFiles/lod_media.dir/codec.cpp.o.d"
  "/root/repo/src/media/drm.cpp" "src/media/CMakeFiles/lod_media.dir/drm.cpp.o" "gcc" "src/media/CMakeFiles/lod_media.dir/drm.cpp.o.d"
  "/root/repo/src/media/profile.cpp" "src/media/CMakeFiles/lod_media.dir/profile.cpp.o" "gcc" "src/media/CMakeFiles/lod_media.dir/profile.cpp.o.d"
  "/root/repo/src/media/sources.cpp" "src/media/CMakeFiles/lod_media.dir/sources.cpp.o" "gcc" "src/media/CMakeFiles/lod_media.dir/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lod_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
