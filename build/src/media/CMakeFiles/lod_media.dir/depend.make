# Empty dependencies file for lod_media.
# This may be replaced when dependencies are built.
