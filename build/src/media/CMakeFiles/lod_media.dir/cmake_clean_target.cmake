file(REMOVE_RECURSE
  "liblod_media.a"
)
