file(REMOVE_RECURSE
  "liblod_core.a"
)
