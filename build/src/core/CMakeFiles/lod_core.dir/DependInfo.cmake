
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/lod_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/lod_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/etpn.cpp" "src/core/CMakeFiles/lod_core.dir/etpn.cpp.o" "gcc" "src/core/CMakeFiles/lod_core.dir/etpn.cpp.o.d"
  "/root/repo/src/core/ocpn.cpp" "src/core/CMakeFiles/lod_core.dir/ocpn.cpp.o" "gcc" "src/core/CMakeFiles/lod_core.dir/ocpn.cpp.o.d"
  "/root/repo/src/core/petri.cpp" "src/core/CMakeFiles/lod_core.dir/petri.cpp.o" "gcc" "src/core/CMakeFiles/lod_core.dir/petri.cpp.o.d"
  "/root/repo/src/core/speclang.cpp" "src/core/CMakeFiles/lod_core.dir/speclang.cpp.o" "gcc" "src/core/CMakeFiles/lod_core.dir/speclang.cpp.o.d"
  "/root/repo/src/core/timed.cpp" "src/core/CMakeFiles/lod_core.dir/timed.cpp.o" "gcc" "src/core/CMakeFiles/lod_core.dir/timed.cpp.o.d"
  "/root/repo/src/core/xocpn.cpp" "src/core/CMakeFiles/lod_core.dir/xocpn.cpp.o" "gcc" "src/core/CMakeFiles/lod_core.dir/xocpn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lod_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
