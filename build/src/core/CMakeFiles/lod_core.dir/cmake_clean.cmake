file(REMOVE_RECURSE
  "CMakeFiles/lod_core.dir/analysis.cpp.o"
  "CMakeFiles/lod_core.dir/analysis.cpp.o.d"
  "CMakeFiles/lod_core.dir/etpn.cpp.o"
  "CMakeFiles/lod_core.dir/etpn.cpp.o.d"
  "CMakeFiles/lod_core.dir/ocpn.cpp.o"
  "CMakeFiles/lod_core.dir/ocpn.cpp.o.d"
  "CMakeFiles/lod_core.dir/petri.cpp.o"
  "CMakeFiles/lod_core.dir/petri.cpp.o.d"
  "CMakeFiles/lod_core.dir/speclang.cpp.o"
  "CMakeFiles/lod_core.dir/speclang.cpp.o.d"
  "CMakeFiles/lod_core.dir/timed.cpp.o"
  "CMakeFiles/lod_core.dir/timed.cpp.o.d"
  "CMakeFiles/lod_core.dir/xocpn.cpp.o"
  "CMakeFiles/lod_core.dir/xocpn.cpp.o.d"
  "liblod_core.a"
  "liblod_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
