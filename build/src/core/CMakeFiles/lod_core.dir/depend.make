# Empty dependencies file for lod_core.
# This may be replaced when dependencies are built.
