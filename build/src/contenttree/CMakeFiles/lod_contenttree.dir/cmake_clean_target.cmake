file(REMOVE_RECURSE
  "liblod_contenttree.a"
)
