file(REMOVE_RECURSE
  "CMakeFiles/lod_contenttree.dir/content_tree.cpp.o"
  "CMakeFiles/lod_contenttree.dir/content_tree.cpp.o.d"
  "liblod_contenttree.a"
  "liblod_contenttree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_contenttree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
