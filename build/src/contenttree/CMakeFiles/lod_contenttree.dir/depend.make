# Empty dependencies file for lod_contenttree.
# This may be replaced when dependencies are built.
