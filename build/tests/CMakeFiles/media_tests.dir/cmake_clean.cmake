file(REMOVE_RECURSE
  "CMakeFiles/media_tests.dir/media_asf_test.cpp.o"
  "CMakeFiles/media_tests.dir/media_asf_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media_codec_test.cpp.o"
  "CMakeFiles/media_tests.dir/media_codec_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media_drm_test.cpp.o"
  "CMakeFiles/media_tests.dir/media_drm_test.cpp.o.d"
  "media_tests"
  "media_tests.pdb"
  "media_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
