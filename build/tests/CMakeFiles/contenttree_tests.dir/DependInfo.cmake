
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/contenttree_test.cpp" "tests/CMakeFiles/contenttree_tests.dir/contenttree_test.cpp.o" "gcc" "tests/CMakeFiles/contenttree_tests.dir/contenttree_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/lod_media.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/contenttree/CMakeFiles/lod_contenttree.dir/DependInfo.cmake"
  "/root/repo/build/src/streaming/CMakeFiles/lod_streaming.dir/DependInfo.cmake"
  "/root/repo/build/src/lod/CMakeFiles/lod_wmps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
