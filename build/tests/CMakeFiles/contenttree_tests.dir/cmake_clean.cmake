file(REMOVE_RECURSE
  "CMakeFiles/contenttree_tests.dir/contenttree_test.cpp.o"
  "CMakeFiles/contenttree_tests.dir/contenttree_test.cpp.o.d"
  "contenttree_tests"
  "contenttree_tests.pdb"
  "contenttree_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contenttree_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
