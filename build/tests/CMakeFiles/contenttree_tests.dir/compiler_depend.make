# Empty compiler generated dependencies file for contenttree_tests.
# This may be replaced when dependencies are built.
