# Empty dependencies file for streaming_tests.
# This may be replaced when dependencies are built.
