file(REMOVE_RECURSE
  "CMakeFiles/streaming_tests.dir/streaming_test.cpp.o"
  "CMakeFiles/streaming_tests.dir/streaming_test.cpp.o.d"
  "streaming_tests"
  "streaming_tests.pdb"
  "streaming_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
