# Empty dependencies file for extensions_tests.
# This may be replaced when dependencies are built.
