file(REMOVE_RECURSE
  "CMakeFiles/extensions_tests.dir/extensions_test.cpp.o"
  "CMakeFiles/extensions_tests.dir/extensions_test.cpp.o.d"
  "extensions_tests"
  "extensions_tests.pdb"
  "extensions_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
