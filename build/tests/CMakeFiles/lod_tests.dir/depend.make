# Empty dependencies file for lod_tests.
# This may be replaced when dependencies are built.
