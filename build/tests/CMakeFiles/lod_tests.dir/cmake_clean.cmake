file(REMOVE_RECURSE
  "CMakeFiles/lod_tests.dir/lod_adaptive_test.cpp.o"
  "CMakeFiles/lod_tests.dir/lod_adaptive_test.cpp.o.d"
  "CMakeFiles/lod_tests.dir/lod_floor_test.cpp.o"
  "CMakeFiles/lod_tests.dir/lod_floor_test.cpp.o.d"
  "CMakeFiles/lod_tests.dir/lod_wmps_test.cpp.o"
  "CMakeFiles/lod_tests.dir/lod_wmps_test.cpp.o.d"
  "lod_tests"
  "lod_tests.pdb"
  "lod_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lod_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
