# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/media_tests[1]_include.cmake")
include("/root/repo/build/tests/contenttree_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/streaming_tests[1]_include.cmake")
include("/root/repo/build/tests/lod_tests[1]_include.cmake")
include("/root/repo/build/tests/extensions_tests[1]_include.cmake")
