# Empty compiler generated dependencies file for bench_a4_faststart.
# This may be replaced when dependencies are built.
