file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_faststart.dir/bench_a4_faststart.cpp.o"
  "CMakeFiles/bench_a4_faststart.dir/bench_a4_faststart.cpp.o.d"
  "bench_a4_faststart"
  "bench_a4_faststart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_faststart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
