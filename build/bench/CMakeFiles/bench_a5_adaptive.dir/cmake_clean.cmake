file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_adaptive.dir/bench_a5_adaptive.cpp.o"
  "CMakeFiles/bench_a5_adaptive.dir/bench_a5_adaptive.cpp.o.d"
  "bench_a5_adaptive"
  "bench_a5_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
