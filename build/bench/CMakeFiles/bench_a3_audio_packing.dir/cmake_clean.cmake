file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_audio_packing.dir/bench_a3_audio_packing.cpp.o"
  "CMakeFiles/bench_a3_audio_packing.dir/bench_a3_audio_packing.cpp.o.d"
  "bench_a3_audio_packing"
  "bench_a3_audio_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_audio_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
