# Empty dependencies file for bench_a3_audio_packing.
# This may be replaced when dependencies are built.
