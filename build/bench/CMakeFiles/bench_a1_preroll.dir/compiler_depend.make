# Empty compiler generated dependencies file for bench_a1_preroll.
# This may be replaced when dependencies are built.
