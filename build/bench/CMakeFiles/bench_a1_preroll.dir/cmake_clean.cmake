file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_preroll.dir/bench_a1_preroll.cpp.o"
  "CMakeFiles/bench_a1_preroll.dir/bench_a1_preroll.cpp.o.d"
  "bench_a1_preroll"
  "bench_a1_preroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_preroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
