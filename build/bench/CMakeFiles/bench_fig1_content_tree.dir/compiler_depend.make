# Empty compiler generated dependencies file for bench_fig1_content_tree.
# This may be replaced when dependencies are built.
