file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_content_tree.dir/bench_fig1_content_tree.cpp.o"
  "CMakeFiles/bench_fig1_content_tree.dir/bench_fig1_content_tree.cpp.o.d"
  "bench_fig1_content_tree"
  "bench_fig1_content_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_content_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
