# Empty dependencies file for bench_fig4_delete_node.
# This may be replaced when dependencies are built.
