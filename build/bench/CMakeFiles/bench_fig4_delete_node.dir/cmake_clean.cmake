file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_delete_node.dir/bench_fig4_delete_node.cpp.o"
  "CMakeFiles/bench_fig4_delete_node.dir/bench_fig4_delete_node.cpp.o.d"
  "bench_fig4_delete_node"
  "bench_fig4_delete_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_delete_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
