# Empty dependencies file for bench_fig3_insert_node.
# This may be replaced when dependencies are built.
