file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_user_interaction.dir/bench_c2_user_interaction.cpp.o"
  "CMakeFiles/bench_c2_user_interaction.dir/bench_c2_user_interaction.cpp.o.d"
  "bench_c2_user_interaction"
  "bench_c2_user_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_user_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
