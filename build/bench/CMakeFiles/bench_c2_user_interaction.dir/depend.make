# Empty dependencies file for bench_c2_user_interaction.
# This may be replaced when dependencies are built.
