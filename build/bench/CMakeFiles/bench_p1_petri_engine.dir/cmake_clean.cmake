file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_petri_engine.dir/bench_p1_petri_engine.cpp.o"
  "CMakeFiles/bench_p1_petri_engine.dir/bench_p1_petri_engine.cpp.o.d"
  "bench_p1_petri_engine"
  "bench_p1_petri_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_petri_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
