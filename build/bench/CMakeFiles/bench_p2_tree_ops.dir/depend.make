# Empty dependencies file for bench_p2_tree_ops.
# This may be replaced when dependencies are built.
