file(REMOVE_RECURSE
  "CMakeFiles/bench_p2_tree_ops.dir/bench_p2_tree_ops.cpp.o"
  "CMakeFiles/bench_p2_tree_ops.dir/bench_p2_tree_ops.cpp.o.d"
  "bench_p2_tree_ops"
  "bench_p2_tree_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2_tree_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
