# Empty dependencies file for bench_fig6_lecture_tree.
# This may be replaced when dependencies are built.
