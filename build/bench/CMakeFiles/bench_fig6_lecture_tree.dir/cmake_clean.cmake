file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_lecture_tree.dir/bench_fig6_lecture_tree.cpp.o"
  "CMakeFiles/bench_fig6_lecture_tree.dir/bench_fig6_lecture_tree.cpp.o.d"
  "bench_fig6_lecture_tree"
  "bench_fig6_lecture_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lecture_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
