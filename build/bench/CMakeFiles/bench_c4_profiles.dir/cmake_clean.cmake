file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_profiles.dir/bench_c4_profiles.cpp.o"
  "CMakeFiles/bench_c4_profiles.dir/bench_c4_profiles.cpp.o.d"
  "bench_c4_profiles"
  "bench_c4_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
