# Empty compiler generated dependencies file for bench_c4_profiles.
# This may be replaced when dependencies are built.
