# Empty compiler generated dependencies file for bench_fig7_presentation.
# This may be replaced when dependencies are built.
