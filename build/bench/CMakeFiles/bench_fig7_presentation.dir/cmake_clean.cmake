file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_presentation.dir/bench_fig7_presentation.cpp.o"
  "CMakeFiles/bench_fig7_presentation.dir/bench_fig7_presentation.cpp.o.d"
  "bench_fig7_presentation"
  "bench_fig7_presentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_presentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
