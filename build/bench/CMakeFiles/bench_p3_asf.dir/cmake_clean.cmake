file(REMOVE_RECURSE
  "CMakeFiles/bench_p3_asf.dir/bench_p3_asf.cpp.o"
  "CMakeFiles/bench_p3_asf.dir/bench_p3_asf.cpp.o.d"
  "bench_p3_asf"
  "bench_p3_asf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p3_asf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
