# Empty dependencies file for bench_p3_asf.
# This may be replaced when dependencies are built.
