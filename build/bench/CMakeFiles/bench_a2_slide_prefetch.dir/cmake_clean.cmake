file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_slide_prefetch.dir/bench_a2_slide_prefetch.cpp.o"
  "CMakeFiles/bench_a2_slide_prefetch.dir/bench_a2_slide_prefetch.cpp.o.d"
  "bench_a2_slide_prefetch"
  "bench_a2_slide_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_slide_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
