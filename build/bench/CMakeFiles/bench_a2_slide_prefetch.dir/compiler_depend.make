# Empty compiler generated dependencies file for bench_a2_slide_prefetch.
# This may be replaced when dependencies are built.
