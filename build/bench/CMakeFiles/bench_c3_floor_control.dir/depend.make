# Empty dependencies file for bench_c3_floor_control.
# This may be replaced when dependencies are built.
