file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_floor_control.dir/bench_c3_floor_control.cpp.o"
  "CMakeFiles/bench_c3_floor_control.dir/bench_c3_floor_control.cpp.o.d"
  "bench_c3_floor_control"
  "bench_c3_floor_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_floor_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
