file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_level_playout.dir/bench_fig2_level_playout.cpp.o"
  "CMakeFiles/bench_fig2_level_playout.dir/bench_fig2_level_playout.cpp.o.d"
  "bench_fig2_level_playout"
  "bench_fig2_level_playout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_level_playout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
