# Empty dependencies file for bench_fig2_level_playout.
# This may be replaced when dependencies are built.
