file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_publishing.dir/bench_fig5_publishing.cpp.o"
  "CMakeFiles/bench_fig5_publishing.dir/bench_fig5_publishing.cpp.o.d"
  "bench_fig5_publishing"
  "bench_fig5_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
