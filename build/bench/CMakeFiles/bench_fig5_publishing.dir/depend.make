# Empty dependencies file for bench_fig5_publishing.
# This may be replaced when dependencies are built.
