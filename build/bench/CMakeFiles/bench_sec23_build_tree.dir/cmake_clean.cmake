file(REMOVE_RECURSE
  "CMakeFiles/bench_sec23_build_tree.dir/bench_sec23_build_tree.cpp.o"
  "CMakeFiles/bench_sec23_build_tree.dir/bench_sec23_build_tree.cpp.o.d"
  "bench_sec23_build_tree"
  "bench_sec23_build_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec23_build_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
