# Empty dependencies file for bench_sec23_build_tree.
# This may be replaced when dependencies are built.
