# Empty dependencies file for bench_c1_distributed_sync.
# This may be replaced when dependencies are built.
