file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_distributed_sync.dir/bench_c1_distributed_sync.cpp.o"
  "CMakeFiles/bench_c1_distributed_sync.dir/bench_c1_distributed_sync.cpp.o.d"
  "bench_c1_distributed_sync"
  "bench_c1_distributed_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_distributed_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
