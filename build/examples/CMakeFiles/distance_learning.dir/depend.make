# Empty dependencies file for distance_learning.
# This may be replaced when dependencies are built.
