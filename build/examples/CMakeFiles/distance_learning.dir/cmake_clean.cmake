file(REMOVE_RECURSE
  "CMakeFiles/distance_learning.dir/distance_learning.cpp.o"
  "CMakeFiles/distance_learning.dir/distance_learning.cpp.o.d"
  "distance_learning"
  "distance_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
