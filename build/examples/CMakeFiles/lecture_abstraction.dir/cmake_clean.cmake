file(REMOVE_RECURSE
  "CMakeFiles/lecture_abstraction.dir/lecture_abstraction.cpp.o"
  "CMakeFiles/lecture_abstraction.dir/lecture_abstraction.cpp.o.d"
  "lecture_abstraction"
  "lecture_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lecture_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
