# Empty dependencies file for lecture_abstraction.
# This may be replaced when dependencies are built.
