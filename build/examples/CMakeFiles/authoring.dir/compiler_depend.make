# Empty compiler generated dependencies file for authoring.
# This may be replaced when dependencies are built.
