file(REMOVE_RECURSE
  "CMakeFiles/authoring.dir/authoring.cpp.o"
  "CMakeFiles/authoring.dir/authoring.cpp.o.d"
  "authoring"
  "authoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
