# Empty dependencies file for authoring.
# This may be replaced when dependencies are built.
