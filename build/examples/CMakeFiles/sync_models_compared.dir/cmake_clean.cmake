file(REMOVE_RECURSE
  "CMakeFiles/sync_models_compared.dir/sync_models_compared.cpp.o"
  "CMakeFiles/sync_models_compared.dir/sync_models_compared.cpp.o.d"
  "sync_models_compared"
  "sync_models_compared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_models_compared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
