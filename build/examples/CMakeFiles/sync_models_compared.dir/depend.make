# Empty dependencies file for sync_models_compared.
# This may be replaced when dependencies are built.
