// Lecture abstraction with the multiple-level content tree (§2.2, Fig. 6).
//
// A 10-minute recorded lecture is segmented into a 3-level content tree.
// Each level is a progressively longer presentation of the same material:
// level 0 is the 1-minute overview, level 2 is the whole lecture. For each
// level we build the playlist, compile it to an OCPN, and play it through
// the interactive engine — including a viewer who speeds up and skips.

#include <cstdio>

#include "lod/core/etpn.hpp"
#include "lod/lod/abstraction.hpp"
#include "lod/net/network.hpp"

int main() {
  using namespace lod;
  namespace app = ::lod::lod;
  using app::LectureSegment;

  // Segment the lecture (a teaching assistant would do this in the UI).
  const std::vector<LectureSegment> segments = {
      {"overview", 0, net::sec(0), net::sec(60), 0},
      {"petri-nets", 1, net::sec(60), net::sec(180), 1},
      {"ocpn-detail", 2, net::sec(180), net::sec(300), 2},
      {"xocpn-detail", 2, net::sec(300), net::sec(390), 3},
      {"system-demo", 1, net::sec(390), net::sec(540), 4},
      {"qa", 2, net::sec(540), net::sec(600), 5},
  };
  const auto tree = app::build_lecture_tree(segments);

  std::printf("content tree (%zu segments, highest level %d):\n%s\n",
              tree.size(), tree.highest_level(), tree.to_string().c_str());

  std::printf("%-6s %14s %14s  playlist\n", "level", "LevelNodes[q]",
              "presentation");
  for (int lvl = 0; lvl <= tree.highest_level(); ++lvl) {
    std::printf("%-6d %13.0fs %13.0fs  ", lvl,
                tree.level_value(lvl).seconds(),
                tree.presentation_time(lvl).seconds());
    for (const auto& e : app::level_playlist(tree, lvl)) {
      std::printf("%s ", e.name.c_str());
    }
    std::printf("\n");
  }

  // Play the level-1 abstraction (overview + section summaries) through the
  // extended timed Petri net engine, with a viewer in a hurry.
  const auto spec = app::level_spec(tree, 1);
  const auto compiled = core::build_ocpn(spec);
  net::Simulator sim;
  core::InteractivePlayout playout(sim, compiled.net,
                                   compiled.initial_marking());
  playout.on_media([&](core::PlaceId, const core::MediaBinding& m,
                       bool started, net::SimDuration pos) {
    if (started) {
      std::printf("  [%7.1fs wall] start %-12s (media %5.1fs)\n",
                  sim.now().seconds(), m.object_name.c_str(), pos.seconds());
    }
  });

  std::printf("\nlevel-1 abstraction playout (%0.0fs of material):\n",
              spec.duration().seconds());
  playout.start();
  sim.run_until(net::SimTime{net::sec(70).us});
  std::printf("  [%7.1fs wall] viewer switches to 2x speed\n",
              sim.now().seconds());
  playout.set_rate(2.0);
  sim.run_until(net::SimTime{net::sec(100).us});
  std::printf("  [%7.1fs wall] viewer skips to the demo\n",
              sim.now().seconds());
  playout.seek(net::sec(180));  // start of system-demo in the abstraction
  sim.run();
  std::printf("finished at wall %.1fs (media makespan %.1fs)\n",
              sim.now().seconds(), playout.makespan().seconds());

  return playout.finished() ? 0 : 1;
}
