// Authoring a presentation with the specification language.
//
// The related-work systems the paper surveys (Authorware, ToolBook, ...)
// let designers wire presentations together with a script language. This is
// ours: the designer writes a declarative temporal spec; the system parses
// it, verifies the compiled Petri net (bounded, deadlock-free, no dead
// objects), derives the XOCPN channel schedule for the remote objects, and
// plays it through the extended engine — including a picky viewer.

#include <cstdio>
#include <cstdlib>

#include "lod/core/analysis.hpp"
#include "lod/core/etpn.hpp"
#include "lod/core/speclang.hpp"
#include "lod/core/xocpn.hpp"
#include "lod/net/network.hpp"

int main() {
  using namespace lod;

  const char* kSpec = R"(
    # Week 3: distributed multimedia, authored by hand.
    seq {
      video welcome (20s, 100kbps)
      gap (1s)
      equals {
        video talk (3m, 250kbps)            # the main lecture recording
        audio narration (3m, 64kbps)
      }
      during (30s) {
        video demo (2m, 250kbps)
        annotation callout (20s)            # highlight inside the demo
      }
      image closing (15s)
    }
  )";

  const auto spec = [&] {
    try {
      return core::parse_spec(kSpec);
    } catch (const core::SpecParseError& e) {
      std::printf("parse error: %s\n", e.what());
      std::exit(1);
    }
  }();
  std::printf("parsed %zu objects, total %0.0fs. Canonical form:\n\n%s\n",
              spec.object_count(), spec.duration().seconds(),
              core::format_spec(spec).c_str());

  // Compile to an OCPN and verify it the way the Petri-net literature says
  // a synchronization model should be verified.
  const auto compiled = core::build_ocpn(spec);
  const auto m0 = compiled.initial_marking();
  const auto bound = core::boundedness(compiled.net, m0);
  core::Marking final = compiled.net.empty_marking();
  final[compiled.sink] = 1;
  std::printf("net: %zu places, %zu transitions\n",
              compiled.net.place_count(), compiled.net.transition_count());
  std::printf("  %s-bounded:        %s\n",
              bound ? std::to_string(*bound).c_str() : "?",
              bound ? "yes" : "no");
  std::printf("  deadlock-free:    %s (final marking is the only rest)\n",
              core::has_unexpected_deadlock(compiled.net, m0, &final)
                  ? "NO"
                  : "yes");
  std::printf("  dead transitions: %zu\n",
              core::dead_transitions(compiled.net, m0).size());

  // XOCPN decoration: the remote objects need channels.
  core::CompiledOcpn annotated = compiled;
  core::apply_placement(annotated, {{"talk", {1, 250'000}},
                                    {"narration", {1, 64'000}},
                                    {"demo", {1, 250'000}}});
  const auto channels = core::derive_channel_schedule(annotated, net::sec(2));
  std::printf("\nchannel schedule (reserve 2s ahead), peak %.0f kb/s:\n",
              channels.peak_bps / 1000.0);
  for (const auto& c : channels.channels) {
    std::printf("  %-10s %6.0f kb/s  reserve at %5.0fs, release at %5.0fs\n",
                c.object.c_str(), c.rate_bps / 1000.0,
                c.reserve_at.seconds(), c.release_at.seconds());
  }

  // Play it interactively: the viewer pauses during the demo, then skips
  // to the closing.
  net::Simulator sim;
  core::InteractivePlayout playout(sim, compiled.net, m0);
  playout.on_media([&](core::PlaceId, const core::MediaBinding& m,
                       bool started, net::SimDuration pos) {
    std::printf("  [%6.1fs wall] %s %-10s (media %5.1fs)\n",
                sim.now().seconds(), started ? "start" : "stop ",
                m.object_name.c_str(), pos.seconds());
  });
  std::printf("\ninteractive playout:\n");
  playout.start();
  sim.run_until(net::SimTime{net::sec(230).us});
  std::printf("  [%6.1fs wall] viewer pauses...\n", sim.now().seconds());
  playout.pause();
  sim.run_until(net::SimTime{net::sec(245).us});
  playout.resume();
  std::printf("  [%6.1fs wall] ...resumes, then skips to the closing\n",
              sim.now().seconds());
  playout.seek(spec.duration() - net::sec(15));
  sim.run();
  std::printf("finished at wall %.1fs\n", sim.now().seconds());
  return playout.finished() ? 0 : 1;
}
