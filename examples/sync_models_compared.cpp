// OCPN vs XOCPN vs the paper's extended timed Petri net, side by side.
//
// Three students watch the same published lecture under the three
// synchronization disciplines, on the same degraded network (cross traffic,
// skewed clocks), and each performs the same mid-lecture seek. The printout
// shows the qualitative claims of the paper's §1 as numbers: only the
// extended model survives congestion AND user interaction AND clock skew.

#include <cstdio>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

using namespace lod;
namespace app = ::lod::lod;

struct Outcome {
  std::string model;
  std::size_t stalls{};
  std::uint64_t lost{};
  double seek_latency_s{};
  double clock_error_ms{};
  bool finished{};
};

static Outcome run_one(streaming::SyncModel model) {
  net::Simulator sim;
  net::Network network(sim, 7);
  const net::HostId server = network.add_host("server");
  const net::HostId pc =
      network.add_host("student", net::HostClock(net::msec(250), 40.0));
  net::LinkConfig lan;
  lan.bandwidth_bps = 10'000'000;
  lan.latency = net::msec(2);
  network.add_link(server, pc, lan);

  app::WmpsNode wmps(network, server);
  app::VideoAsset video;
  video.duration = net::sec(90);
  wmps.register_video("lec.mp4", video);
  wmps.register_slides("slides", app::SlideAsset{4, 13});
  app::PublishForm form;
  form.video_path = "lec.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.publish_name = "lec";
  const auto res = wmps.publish(form);

  // ~11 Mb/s of cross traffic on the 10 Mb/s link, the whole time.
  net::DatagramSocket noise(network, server, 7777);
  std::function<void()> flood = [&] {
    noise.send_to(pc, 7778, std::vector<std::byte>(1400, std::byte{0}));
    sim.schedule_after(net::msec(1), flood);
  };
  sim.schedule_after(net::msec(0), flood);

  streaming::PlayerConfig cfg;
  cfg.model = model;
  cfg.web_server = server;
  streaming::Player player(network, pc, cfg, &wmps.license_authority());
  player.open_and_play(server, res.url);

  // 20 s in, the student jumps to the last third of the lecture.
  sim.run_until(net::SimTime{net::sec(20).us});
  player.seek(net::sec(60));
  sim.run_until(net::SimTime{net::sec(600).us});

  Outcome out;
  out.model = streaming::to_string(model);
  out.stalls = player.stalls().size();
  out.lost = player.units_lost();
  out.finished = player.finished();
  for (const auto& ir : player.interactions()) {
    if (ir.kind == streaming::InteractionRecord::Kind::kSeek && ir.satisfied) {
      out.seek_latency_s = ir.resync_latency().seconds();
    }
  }
  out.clock_error_ms =
      (network.local_now(pc) - sim.now()).millis();
  return out;
}

int main() {
  std::printf(
      "Same lecture, same congested link, same mid-lecture seek to 60s:\n\n");
  std::printf("%-7s %8s %8s %12s %14s %9s\n", "model", "stalls", "lost",
              "seek-resync", "clock-error", "finished");
  for (const auto model :
       {streaming::SyncModel::kOcpn, streaming::SyncModel::kXocpn,
        streaming::SyncModel::kEtpn}) {
    const Outcome o = run_one(model);
    std::printf("%-7s %8zu %8llu %10.2fs %12.1fms %9s\n", o.model.c_str(),
                o.stalls, static_cast<unsigned long long>(o.lost),
                o.seek_latency_s, o.clock_error_ms,
                o.finished ? "yes" : "no");
  }
  std::printf(
      "\nReading: OCPN loses packets to the flood and replays 60s of\n"
      "schedule to seek; XOCPN's reserved channel fixes transport but not\n"
      "interaction or clocks; the extended model fixes all three.\n");
  return 0;
}
