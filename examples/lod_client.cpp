#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>

#include "lod/media/sources.hpp"
#include "lod/net/real_transport.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"

/// \file lod_client.cpp
/// Lecture-on-demand over real kernel sockets, end to end.
///
/// Spins up the paper's pipeline on loopback — a streaming server machine
/// (with its slide web server and a TCP control plane) and a player machine,
/// each a `RealTransport` with its own epoll loop — then plays a short
/// synthetic lecture in real time and prints the session as it unfolds.
///
/// While it runs, the server's metrics are live on a real HTTP port:
///
///     ./examples/lod_client [http_port]      # default 19080
///     curl http://<printed address>:<port>/metrics
///
/// The same binary is the smoke-test companion to the loopback soak test;
/// everything it does rides the exact objects the simulator tests exercise,
/// re-seated onto the kernel backend.

namespace {

class ConsoleObserver : public lod::streaming::PlayerObserver {
 public:
  void on_slide(const lod::streaming::SlideEvent& ev) override {
    std::printf("  [slide ] %-10s due %5.2fs  fetched in %.1f ms\n",
                ev.url.c_str(), ev.pts.seconds(), ev.fetch_latency.millis());
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lod;
  const net::Port http_port =
      argc > 1 ? static_cast<net::Port>(std::atoi(argv[1])) : 19080;
  constexpr net::HostId kServer = 1;
  constexpr net::HostId kViewer = 2;
  constexpr net::Port kCtl = 18554;
  constexpr net::Port kWeb = 18080;

  // --- the lecture ------------------------------------------------------
  streaming::EncodeJob job;
  job.profile = *media::find_profile("Video 250k DSL/cable");
  job.title = "Transport Seam Demo";
  job.author = "Prof";
  job.preroll = net::msec(500);
  media::LectureVideoSource video(net::sec(4), job.profile.fps,
                                  job.profile.width, job.profile.height, 7);
  media::LectureAudioSource audio(net::sec(4), job.profile.audio_sample_rate());
  const auto flips = media::make_slide_schedule(3, net::sec(4), 17);
  auto enc = streaming::encode_lecture(
      job, video, audio, streaming::slide_flip_commands(flips, "slides/"));

  // --- server machine ---------------------------------------------------
  net::RealTransport server_net;
  server_net.register_host(kServer, "lod-server");
  server_net.register_host(kViewer, "viewer");
  streaming::ServerConfig scfg;
  scfg.control_port = kCtl;
  streaming::StreamingServer server(server_net, kServer, scfg);
  server.publish("lecture", std::move(enc.file));
  net::RpcServer web(server_net, kServer, kWeb);
  for (std::uint32_t i = 0; i < 3; ++i) {
    web.route("/slides/" + std::to_string(i),
              [](std::string_view, std::span<const std::byte>) {
                return std::make_pair(
                    200, lod::media::asf::pattern_bytes(8'000, 1));
              });
  }
  if (net::Result<void> r = server_net.listen_tcp(kServer, http_port, web);
      !r) {
    std::fprintf(stderr, "cannot listen on tcp port %u: %s\n", http_port,
                 net::to_string(r.error()));
    return 1;
  }
  std::printf("server  %s  ctl udp/%u  metrics+rpc tcp/%u\n",
              server_net.host_address(kServer).c_str(), kCtl, http_port);
  std::printf("scrape  curl http://%s:%u/metrics\n\n",
              server_net.host_address(kServer).c_str(), http_port);
  std::fflush(stdout);  // the scrape line must be visible while we stream
  std::thread server_thread([&] { server_net.run(); });

  // --- viewer machine ---------------------------------------------------
  net::RealTransport viewer_net;
  viewer_net.register_host(kServer, "lod-server");
  viewer_net.register_host(kViewer, "viewer");
  streaming::PlayerConfig pcfg;
  pcfg.model = streaming::SyncModel::kEtpn;
  pcfg.server_port = kCtl;
  pcfg.web_server = kServer;
  pcfg.web_port = kWeb;
  pcfg.repair_losses = true;
  pcfg.auto_stop_on_finish = true;
  streaming::Player player(viewer_net, kViewer, pcfg);
  ConsoleObserver console;
  player.set_observer(&console);

  std::printf("opening lecture session (describe -> play)...\n");
  player.open_and_play(kServer, "lecture");
  std::function<void()> watch = [&] {
    if (player.finished()) {
      viewer_net.stop();
      return;
    }
    viewer_net.schedule_after(net::msec(100), watch);
  };
  viewer_net.schedule_after(net::msec(100), watch);
  viewer_net.schedule_after(net::sec(30), [&] { viewer_net.stop(); });
  viewer_net.run();

  server_net.stop();
  server_thread.join();

  std::printf("\nplayback %s: %llu media packets, %zu slides, %llu repairs\n",
              player.finished() ? "finished" : "DID NOT FINISH",
              static_cast<unsigned long long>(player.packets_received()),
              player.slides().size(),
              static_cast<unsigned long long>(player.repairs_requested()));
  return player.finished() ? 0 : 1;
}
