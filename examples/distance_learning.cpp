// Distance learning classroom: the paper's motivating scenario end to end.
//
// "Suppose a well-known teacher is giving a lecture/presentation to his
// student. Because of time constraints and other commitments, many students
// cannot attend the presentation."
//
// One teacher machine publishes a DRM-protected lecture; five student
// machines — each with its own skewed clock and access link — watch it as an
// absolutely scheduled presentation, ask questions through floor control,
// and we report how tightly the classroom stayed in sync.

#include <cstdio>

#include "lod/lod/classroom.hpp"
#include "lod/net/network.hpp"

int main() {
  using namespace lod;
  namespace app = ::lod::lod;
  using app::Classroom;
  using app::ClassroomConfig;

  net::Simulator sim;
  ClassroomConfig cfg;
  cfg.students = 5;
  cfg.model = streaming::SyncModel::kEtpn;  // the paper's extended model
  cfg.clock_offset_range = net::msec(300);  // paper-era PC clocks
  cfg.drift_ppm_range = 80.0;
  Classroom room(sim, cfg);

  // The teacher publishes a protected 2-minute lecture with 8 slides and a
  // few recorded annotations.
  app::PublishForm form;
  form.video_path = "lecture.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.title = "Distributed Multimedia, Week 3";
  form.author = "Prof. Deng";
  form.protect_drm = true;
  form.publish_name = "week3";
  app::VideoAsset video;
  video.duration = net::sec(120);
  video.annotation_count = 4;
  const auto res = room.publish(form, video, app::SlideAsset{8, 21});
  if (!res.ok) {
    std::printf("publish failed: %s\n", res.error.c_str());
    return 1;
  }
  std::printf("teacher published '%s' (DRM key %s)\n", res.url.c_str(),
              res.key_id.c_str());

  // Students join the floor and the scheduled presentation (T0 = now + 5 s).
  room.join_floor();
  room.start_watching(res.url, {}, net::sec(5));

  // 30 s in, student3 takes the floor and asks a question; student1 queues.
  sim.run_until(net::SimTime{net::sec(30).us});
  room.students()[2].floor->request_floor();
  room.students()[0].floor->request_floor();
  sim.run_until(net::SimTime{net::sec(31).us});
  room.students()[2].floor->speak("Is the sync model a timed Petri net?");
  room.students()[2].floor->release_floor();
  sim.run_until(net::SimTime{net::sec(32).us});
  room.students()[0].floor->speak("And how are slides kept in sync?");
  room.students()[0].floor->release_floor();

  sim.run();  // play the lecture to the end

  std::printf("\n%-10s %8s %8s %7s %7s %7s  heard\n", "student", "units",
              "lost", "stalls", "slides", "annot");
  for (auto& st : room.students()) {
    std::printf("%-10s %8llu %8llu %7zu %7zu %7zu  %zu msgs\n",
                st.name.c_str(),
                static_cast<unsigned long long>(st.player->units_rendered()),
                static_cast<unsigned long long>(st.player->units_lost()),
                st.player->stalls().size(), st.player->slides().size(),
                st.player->annotations().size(), st.heard.size());
  }

  const auto rep = room.skew_report();
  std::printf("\ncross-student render skew over %zu samples: mean %s, max %s\n",
              rep.samples, net::to_string(rep.mean_skew).c_str(),
              net::to_string(rep.max_skew).c_str());

  const auto& log = room.floor_service().control().log();
  std::printf("floor events: %zu (messages relayed: %llu)\n", log.size(),
              static_cast<unsigned long long>(
                  room.floor_service().messages_relayed()));

  bool ok = rep.samples > 0;
  for (auto& st : room.students()) ok = ok && st.player->finished();
  return ok ? 0 : 1;
}
