// Observability report: turn an exported trace into a per-session timeline.
//
// Three modes:
//
//   obs_report <trace.jsonl> [more.jsonl ...]
//     Parse JSONL produced by TraceSink::to_jsonl (one or several sinks —
//     seed each sink distinctly so span ids cannot collide), rebuild the
//     span tree of every trace, and print an indented timeline with
//     per-span self-times and the critical path.
//
//   obs_report --flight <dump.jsonl> [trace.jsonl ...]
//     Parse a flight-recorder dump (the JSONL a trigger_dump sink receives,
//     or a /debug/flight scrape) and print the journal interleaved with the
//     spans it mirrors on one shared timeline. Trace JSONL lines — in the
//     same file or extra files — name the spans and add reconstructed span
//     trees below the timeline; without them spans print by id.
//
//   obs_report --demo
//     Run a small origin -> edge -> player simulation with tracing on and
//     report on its own output: the session timeline, the Prometheus
//     rendering of the metrics registry, and the SLO health summary.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lod/edge/edge_node.hpp"
#include "lod/edge/replica_selector.hpp"
#include "lod/media/sources.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/export.hpp"
#include "lod/obs/flight.hpp"
#include "lod/obs/health.hpp"
#include "lod/obs/spantree.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"

namespace {

void report(const std::vector<lod::obs::TraceEvent>& events) {
  using namespace lod::obs;
  const auto trees = build_span_trees(events);
  if (trees.empty()) {
    std::printf("no traced spans found\n");
    return;
  }
  for (const SpanTree& tree : trees) {
    std::fputs(format_span_tree(tree).c_str(), stdout);
    const auto path = tree.critical_path();
    if (path.size() > 1) {
      std::string line = "  critical path:";
      for (const std::size_t idx : path) {
        line += ' ';
        line += tree.nodes[idx].name;
      }
      std::printf("%s\n", line.c_str());
    }
    std::printf("\n");
  }
  std::printf("%zu trace(s), %zu event(s)\n", trees.size(), events.size());
}

bool slurp(int argc, char** argv, int first, std::string& text) {
  for (int i = first; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text += ss.str();
    if (!text.empty() && text.back() != '\n') text += '\n';
  }
  return true;
}

int report_files(int argc, char** argv) {
  std::string text;
  if (!slurp(argc, argv, 1, text)) return 1;
  report(lod::obs::TraceSink::parse_jsonl(text));
  return 0;
}

/// --flight: one shared timeline of journal events and the spans they
/// mirror. Span names come from trace JSONL lines when present (both
/// schemas coexist in one file: journal lines key on "ft", trace lines on
/// "type"), otherwise spans print by id.
int report_flight(int argc, char** argv) {
  using namespace lod::obs;
  std::string text;
  if (!slurp(argc, argv, 2, text)) return 1;

  std::vector<FlightEvent> journal = FlightRecorder::parse_jsonl(text);
  const std::vector<TraceEvent> traced = TraceSink::parse_jsonl(text);
  if (journal.empty()) {
    std::printf("no flight events found\n");
    return 1;
  }
  std::stable_sort(
      journal.begin(), journal.end(),
      [](const FlightEvent& x, const FlightEvent& y) { return x.t < y.t; });

  std::map<std::uint64_t, std::string> span_names;
  for (const TraceEvent& e : traced) {
    if (e.type == EventType::kSpanBegin && !e.detail.empty()) {
      span_names[e.span] = e.detail;
    }
  }
  const auto span_name = [&span_names](std::uint64_t span) {
    const auto it = span_names.find(span);
    return it != span_names.end() ? it->second
                                  : "span#" + std::to_string(span);
  };

  std::printf("== flight timeline ==========================================\n");
  std::printf("%12s  %-5s event\n", "t(us)", "lane");
  int depth = 0;
  for (const FlightEvent& e : journal) {
    const std::string type(to_string(e.type));
    switch (e.type) {
      case FlightType::kSpanBegin:
        std::printf("%12lld  %-5u %*s> %s (trace %llu)\n",
                    static_cast<long long>(e.t), e.lane, 2 * depth, "",
                    span_name(e.a).c_str(),
                    static_cast<unsigned long long>(e.b));
        ++depth;
        break;
      case FlightType::kSpanEnd:
        if (depth > 0) --depth;
        std::printf("%12lld  %-5u %*s< %s\n", static_cast<long long>(e.t),
                    e.lane, 2 * depth, "", span_name(e.a).c_str());
        break;
      default:
        std::printf("%12lld  %-5u %*s. %s actor=%u a=%llu b=%llu\n",
                    static_cast<long long>(e.t), e.lane, 2 * depth, "",
                    type.c_str(), e.actor,
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b));
        break;
    }
  }
  std::printf("%zu journal event(s)\n\n", journal.size());

  if (!traced.empty()) {
    std::printf("== reconstructed span trees =================================\n");
    report(traced);
  }
  return 0;
}

int demo() {
  using namespace lod;
  net::Simulator sim;
  sim.obs().trace().set_enabled(true);
  net::Network network(sim, 7);

  const auto origin = network.add_host("origin");
  const auto edge_host = network.add_host("edge");
  const auto client = network.add_host("client");
  net::LinkConfig wan;
  wan.bandwidth_bps = 20'000'000;
  wan.latency = net::msec(60);
  network.add_link(origin, edge_host, wan);
  net::LinkConfig lan;
  lan.bandwidth_bps = 10'000'000;
  lan.latency = net::msec(2);
  network.add_link(edge_host, client, lan);

  streaming::StreamingServer server(network, origin);
  edge::OriginGateway gateway(network, server);
  edge::EdgeConfig ec;
  ec.origin = origin;
  edge::EdgeNode edge(network, edge_host, ec);

  streaming::EncodeJob job;
  job.profile = *media::find_profile("Video 250k DSL/cable");
  job.preroll = net::msec(2000);
  const auto len = net::sec(20);
  media::LectureVideoSource v(len, job.profile.fps, job.profile.width,
                              job.profile.height, 7);
  media::LectureAudioSource a(len, job.profile.audio_sample_rate());
  auto enc = streaming::encode_lecture(job, v, a, {});
  server.publish("lecture", enc.file);

  // SLO rules watched while the session runs; the selector demotes the edge
  // if its cache hit rate collapses.
  obs::HealthMonitor health(sim.obs());
  health.add_rule(obs::slo_startup_p95(/*max_us=*/10'000'000));
  health.add_rule(obs::slo_stall_ratio(/*max_ratio=*/0.05, 50));
  health.add_rule(obs::slo_edge_cache_hit_rate(std::to_string(edge_host),
                                               /*min_rate=*/0.5, 20));
  health.start_periodic(
      [&sim](obs::TimeUs delay, std::function<void()> fn) {
        sim.schedule_after(net::SimDuration{static_cast<std::int64_t>(delay)},
                           std::move(fn));
      },
      net::msec(500).us);

  edge::ReplicaSelector sel(network, client, origin, {edge_host});
  sel.set_health(&health);

  streaming::PlayerConfig cfg;
  cfg.model = streaming::SyncModel::kEtpn;
  cfg.ctl_port = 5000;
  cfg.data_port = 5001;
  cfg.web_server = origin;
  streaming::Player player(network, client, cfg);
  player.open_and_play_via(sel, "lecture");
  sim.run_until(net::SimTime{net::sec(40).us});

  std::printf("== session timeline =========================================\n");
  report(sim.obs().trace().events());

  std::printf("== health ===================================================\n");
  const obs::HealthSummary sum = health.health();
  std::printf("%s: %zu/%zu rules violated\n",
              sum.healthy ? "healthy" : "UNHEALTHY", sum.violated, sum.rules);
  for (const obs::SloStatus& st : sum.statuses) {
    std::printf("  %-28s %s value %.3f threshold %.3f%s\n", st.rule.c_str(),
                st.healthy ? "ok " : "BAD", st.value, st.threshold,
                st.evaluated ? "" : " (no signal)");
  }

  std::printf("\n== prometheus (lod.player.* / lod.edge.*) ===================\n");
  std::istringstream prom(obs::to_prometheus(sim.obs().metrics().snapshot()));
  for (std::string line; std::getline(prom, line);) {
    if (line.rfind("lod_player_", 0) == 0 || line.rfind("lod_edge_", 0) == 0) {
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--flight") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: obs_report --flight <dump.jsonl> "
                           "[trace.jsonl ...]\n");
      return 1;
    }
    return report_flight(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--demo") != 0) {
    return report_files(argc, argv);
  }
  return demo();
}
