// Quickstart: publish a lecture on a WMPS node and replay it.
//
// This is the paper's Fig. 5 in ~60 lines: fill the publishing form (video
// path + slide directory + bandwidth profile), let the system synchronize
// video and slides with temporal script commands into one ASF, then replay
// through the media player over a simulated campus LAN.

#include <cstdio>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

int main() {
  using namespace lod;
  namespace app = ::lod::lod;

  // A simulated two-machine campus: the WMPS server and one student PC.
  net::Simulator sim;
  net::Network network(sim, /*seed=*/1);
  const net::HostId server = network.add_host("wmps-server");
  const net::HostId student = network.add_host("student-pc");
  net::LinkConfig lan;  // 10 Mb/s, 1 ms — a paper-era campus LAN
  network.add_link(server, student, lan);

  // The WMPS node: streaming service + web server + license authority.
  app::WmpsNode wmps(network, server);

  // "Files on disk": a 3-minute recorded lecture and a 6-slide deck.
  app::VideoAsset video;
  video.duration = net::sec(180);
  wmps.register_video("d:/lectures/quickstart.mp4", video);
  wmps.register_slides("slides", app::SlideAsset{6, 13});

  // Fig. 5(a): fill the form and publish.
  app::PublishForm form;
  form.video_path = "d:/lectures/quickstart.mp4";
  form.slide_dir = "slides";
  form.profile = "Video 250k DSL/cable";
  form.title = "Quickstart Lecture";
  form.author = "Prof. Example";
  form.publish_name = "lectures/quickstart";
  const auto published = wmps.publish(form);
  if (!published.ok) {
    std::printf("publish failed: %s\n", published.error.c_str());
    return 1;
  }
  std::printf("published '%s': %zu ASF packets, %zu script commands, %.1f KB\n",
              published.url.c_str(), published.packets,
              published.script_commands, published.wire_bytes / 1024.0);

  // Fig. 5(b): replay in the "browser with the windows media services".
  streaming::PlayerConfig cfg;
  cfg.web_server = server;  // where SLIDE script commands fetch images from
  streaming::Player player(network, student, cfg);
  player.open_and_play(server, published.url);
  sim.run();

  std::printf("replayed to the end: %s\n", player.finished() ? "yes" : "no");
  std::printf("  startup delay : %s\n",
              net::to_string(player.startup_delay()).c_str());
  std::printf("  units rendered: %llu (lost: %llu, stalls: %zu)\n",
              static_cast<unsigned long long>(player.units_rendered()),
              static_cast<unsigned long long>(player.units_lost()),
              player.stalls().size());
  std::printf("  slides shown  :\n");
  for (const auto& s : player.slides()) {
    std::printf("    %-10s scheduled %7.2fs  fetched in %s\n", s.url.c_str(),
                s.pts.seconds(), net::to_string(s.fetch_latency).c_str());
  }
  return player.finished() && player.slides().size() == 6 ? 0 : 1;
}
