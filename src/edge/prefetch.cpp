#include "lod/edge/prefetch.hpp"

#include <algorithm>
#include <unordered_map>

namespace lod::edge {

PrefetchController::PrefetchController(std::uint32_t total_packets,
                                       std::uint32_t packets_per_segment)
    : PrefetchController(total_packets, packets_per_segment,
                         {PacketRange{0, total_packets}}) {}

PrefetchController::PrefetchController(std::uint32_t total_packets,
                                       std::uint32_t packets_per_segment,
                                       std::vector<PacketRange> order)
    : total_packets_(total_packets),
      packets_per_segment_(std::max<std::uint32_t>(packets_per_segment, 1)) {
  for (PacketRange r : order) {
    r.last = std::min(r.last, total_packets_);
    if (r.first >= r.last) continue;
    order_.push_back(r);
  }
  if (order_.empty() && total_packets_ > 0) {
    order_.push_back(PacketRange{0, total_packets_});
  }
}

std::vector<std::uint32_t> PrefetchController::warm_set(
    std::uint32_t depth) const {
  std::vector<std::uint32_t> out;
  if (depth == 0 || order_.empty()) return out;

  // Find where the anchor sits in presentation order: the range containing
  // it, or failing that the first range starting after it (a seek can land
  // on a packet the level-q playout skips).
  std::size_t at = order_.size();
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (anchor_ >= order_[i].first && anchor_ < order_[i].last) {
      at = i;
      break;
    }
    if (at == order_.size() && anchor_ < order_[i].first) at = i;
  }
  if (at == order_.size()) return out;

  auto push_unique = [&](std::uint32_t seg) {
    if (std::find(out.begin(), out.end(), seg) == out.end()) out.push_back(seg);
  };
  // Walk presentation order from the anchor, collecting the segments the
  // playout will touch until `depth` distinct ones are planned.
  for (std::size_t i = at; i < order_.size() && out.size() < depth; ++i) {
    std::uint32_t p =
        i == at ? std::max(anchor_, order_[i].first) : order_[i].first;
    while (p < order_[i].last && out.size() < depth) {
      push_unique(segment_of(p));
      p = (segment_of(p) + 1) * packets_per_segment_;  // next boundary
    }
  }
  return out;
}

std::vector<PacketRange> presentation_order(
    const contenttree::ContentTree& tree, int level,
    const std::function<std::uint32_t(net::SimDuration)>& packet_of) {
  if (tree.empty()) return {};
  // Full document order gives every node its offset in the recording.
  const auto all = tree.sequence(tree.highest_level());
  std::vector<net::SimDuration> offset(all.size());
  std::unordered_map<contenttree::NodeId, std::size_t> pos;
  net::SimDuration cursor{};
  for (std::size_t i = 0; i < all.size(); ++i) {
    offset[i] = cursor;
    pos[all[i]] = i;
    cursor += tree.segment(all[i]).duration;
  }
  // The level-q playout visits a subset of those windows, in pre-order.
  std::vector<PacketRange> out;
  for (contenttree::NodeId n : tree.sequence(level)) {
    const std::size_t i = pos.at(n);
    const net::SimDuration start = offset[i];
    const net::SimDuration end = start + tree.segment(n).duration;
    PacketRange r{packet_of(start), packet_of(end)};
    // A window shorter than the index granularity can round to an empty
    // packet range; keep at least the packet the window starts in.
    if (r.last <= r.first) r.last = r.first + 1;
    out.push_back(r);
  }
  // Merge ranges that abut in both presentation order and packet space, so
  // a full-level playout collapses back to one linear range.
  std::vector<PacketRange> merged;
  for (const PacketRange& r : out) {
    if (!merged.empty() && merged.back().last == r.first) {
      merged.back().last = r.last;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

}  // namespace lod::edge
