#include "lod/edge/segment_cache.hpp"

namespace lod::edge {

SegmentCache::SegmentCache(std::size_t budget_bytes,
                           obs::MetricsRegistry* registry, obs::Labels labels)
    : budget_(budget_bytes) {
  if (registry) {
    m_hits_ = registry->counter("lod.edge.cache.hits", labels);
    m_misses_ = registry->counter("lod.edge.cache.misses", labels);
    m_evictions_ = registry->counter("lod.edge.cache.evictions", labels);
    m_inserted_bytes_ =
        registry->counter("lod.edge.cache.inserted_bytes", labels);
    m_bytes_ = registry->gauge("lod.edge.cache.bytes", labels);
    m_entries_ = registry->gauge("lod.edge.cache.entries", labels);
  }
}

const std::vector<net::Payload>* SegmentCache::get(const SegmentKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    m_misses_.inc();
    return nullptr;
  }
  ++hits_;
  m_hits_.inc();
  lru_.splice(lru_.begin(), lru_, it->second);  // freshen: move to MRU
  return &it->second->packets;
}

void SegmentCache::put(SegmentKey key, std::vector<net::Payload> packets,
                       std::size_t bytes) {
  if (auto it = index_.find(key); it != index_.end()) {
    bytes_used_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (bytes > budget_) {
    // Would evict the world and still not stay. An overwrite still removed
    // the old entry above, so the gauges must be refreshed on this path too
    // or they keep reporting the replaced entry's bytes forever.
    m_bytes_.set(static_cast<std::int64_t>(bytes_used_));
    m_entries_.set(static_cast<std::int64_t>(index_.size()));
    return;
  }
  lru_.push_front(Entry{key, std::move(packets), bytes});
  index_[std::move(key)] = lru_.begin();
  bytes_used_ += bytes;
  m_inserted_bytes_.inc(bytes);
  while (bytes_used_ > budget_) evict_lru();
  m_bytes_.set(static_cast<std::int64_t>(bytes_used_));
  m_entries_.set(static_cast<std::int64_t>(index_.size()));
}

void SegmentCache::evict_lru() {
  if (lru_.empty()) return;
  const Entry& victim = lru_.back();
  bytes_used_ -= victim.bytes;
  index_.erase(victim.key);
  lru_.pop_back();
  ++evictions_;
  m_evictions_.inc();
}

void SegmentCache::erase_file(const std::string& file) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file == file) {
      bytes_used_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  m_bytes_.set(static_cast<std::int64_t>(bytes_used_));
  m_entries_.set(static_cast<std::int64_t>(index_.size()));
}

std::vector<SegmentKey> SegmentCache::keys_mru_first() const {
  std::vector<SegmentKey> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.push_back(e.key);
  return out;
}

}  // namespace lod::edge
