#include "lod/edge/edge_node.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <utility>

namespace lod::edge {

using net::ByteReader;
using net::ByteWriter;
using streaming::proto::Ctl;

// --- OriginGateway -----------------------------------------------------------

OriginGateway::OriginGateway(net::Transport& net,
                             streaming::StreamingServer& origin, net::Port port)
    : origin_(origin), rpc_(net, origin.host(), port) {
  auto& reg = net.obs().metrics();
  trace_ = &net.obs().trace();
  const obs::Labels host_label{{"host", std::to_string(origin.host())}};
  m_meta_requests_ = reg.counter("lod.edge.origin.meta_requests", host_label);
  m_segment_requests_ =
      reg.counter("lod.edge.origin.segment_requests", host_label);
  m_segment_bytes_ = reg.counter("lod.edge.origin.segment_bytes", host_label);

  rpc_.route("/edge/meta", [this](std::string_view,
                                  std::span<const std::byte> body)
                               -> std::pair<int, std::vector<std::byte>> {
    m_meta_requests_.inc();
    ByteReader r(body);
    const std::string name = r.str();
    const obs::TraceContext ctx = streaming::proto::read_trace_context(r);
    const std::uint64_t sp =
        trace_->begin_span(ctx, "origin.meta", origin_.host());
    const media::asf::File* f = origin_.stored(name);
    trace_->end_span(ctx, sp, "origin.meta", origin_.host(), f ? 200 : 404);
    if (!f) return {404, {}};
    ByteWriter w;
    w.blob(media::asf::serialize_header(f->header));
    w.u32(static_cast<std::uint32_t>(f->packets.size()));
    w.u32(static_cast<std::uint32_t>(f->index.size()));
    for (const auto& e : f->index) {
      w.i64(e.time.us);
      w.u32(e.packet);
    }
    for (const auto& p : f->packets) w.i64(p.send_time.us);
    return {200, std::move(w).take()};
  });

  rpc_.route("/edge/segment", [this](std::string_view,
                                     std::span<const std::byte> body)
                                  -> std::pair<int, std::vector<std::byte>> {
    m_segment_requests_.inc();
    ByteReader r(body);
    const std::string name = r.str();
    const std::uint32_t seg = r.u32();
    const std::uint32_t per = r.u32();
    const obs::TraceContext ctx = streaming::proto::read_trace_context(r);
    const std::uint64_t sp =
        trace_->begin_span(ctx, "origin.segment", origin_.host(), seg);
    const media::asf::File* f = origin_.stored(name);
    if (!f || per == 0) {
      trace_->end_span(ctx, sp, "origin.segment", origin_.host(), seg, 404);
      return {404, {}};
    }
    const std::size_t n = f->packets.size();
    const std::size_t first = static_cast<std::size_t>(seg) * per;
    if (first >= n) {
      trace_->end_span(ctx, sp, "origin.segment", origin_.host(), seg, 404);
      return {404, {}};
    }
    const std::size_t last = std::min<std::size_t>(first + per, n);
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(last - first));
    for (std::size_t i = first; i < last; ++i) {
      w.blob(media::asf::serialize_packet(f->packets[i]));
    }
    auto out = std::move(w).take();
    m_segment_bytes_.inc(out.size());
    trace_->end_span(ctx, sp, "origin.segment", origin_.host(), seg, 200);
    return {200, std::move(out)};
  });
}

// --- EdgeNode ----------------------------------------------------------------

EdgeNode::EdgeNode(net::Transport& net, net::HostId host, EdgeConfig cfg)
    : net_(net),
      host_(host),
      config_(cfg.validated()),
      ctl_(net, host, config_.control_port),
      data_(net, host, static_cast<net::Port>(config_.control_port + 1)),
      origin_rpc_(net, host, static_cast<net::Port>(config_.control_port + 2)),
      migrate_rpc_(net, host,
                   static_cast<net::Port>(
                       config_.control_port +
                       streaming::proto::kMigratePortOffset)),
      cache_(config_.cache_budget_bytes, &net.obs().metrics(),
             obs::Labels{{"host", std::to_string(host)}}) {
  auto& reg = net_.obs().metrics();
  trace_ = &net_.obs().trace();
  const obs::Labels host_label{{"host", std::to_string(host_)}};
  m_packets_sent_ = reg.counter("lod.edge.packets_sent", host_label);
  m_bytes_sent_ = reg.counter("lod.edge.bytes_sent", host_label);
  m_sessions_opened_ = reg.counter("lod.edge.sessions_opened", host_label);
  m_active_sessions_ = reg.gauge("lod.edge.active_sessions", host_label);
  m_demand_fetches_ = reg.counter("lod.edge.demand_fetches", host_label);
  m_prefetch_fetches_ = reg.counter("lod.edge.prefetch_fetches", host_label);
  m_fetch_bytes_ = reg.counter("lod.edge.fetch_bytes", host_label);
  m_repairs_ = reg.counter("lod.edge.repairs", host_label);
  m_miss_fill_us_ = reg.histogram("lod.edge.miss_fill_us", host_label);
  ctl_.on_receive(
      [this](const net::ReliableEndpoint::Message& m) { handle_control(m); });
  migrate_rpc_.route(
      "/edge/migrate",
      [this](std::string_view, std::span<const std::byte> body) {
        return handle_migrate(body);
      });
}

EdgeNode::~EdgeNode() {
  // Session pacing timers capture `this` raw; killing the node (the failover
  // scenario) must pull them out of the simulator. RPC completions are
  // guarded by `alive_` instead, because the simulator owns those callbacks.
  *alive_ = false;
  for (auto& [id, s] : sessions_) {
    if (s.timer) net_.cancel(*s.timer);
  }
}

void EdgeNode::set_presentation_order(const std::string& content,
                                      std::vector<PacketRange> order) {
  ContentMeta& meta = contents_[content];
  meta.order_override = std::move(order);
  if (meta.ready) {
    meta.prefetch.emplace(meta.packet_count, config_.packets_per_segment,
                          *meta.order_override);
  }
}

std::size_t EdgeNode::active_sessions() const {
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (!s.stopped) ++n;
  }
  return n;
}

EdgeNode::Session* EdgeNode::find_session(std::uint64_t id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

void EdgeNode::reply_to(net::HostId h, net::Port p,
                        std::vector<std::byte> payload) {
  ctl_.send_to(h, p, std::move(payload));
}

void EdgeNode::end_session(Session& s) {
  if (s.stopped) return;
  s.stopped = true;
  m_active_sessions_.add(-1);
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kSessionStop, s.client,
                 static_cast<std::int64_t>(s.id));
  }
}

EdgeNode::ContentMeta& EdgeNode::ensure_meta(const std::string& content,
                                             const obs::TraceContext& ctx) {
  ContentMeta& meta = contents_[content];
  if (meta.ready || meta.fetching) return meta;
  meta.fetching = true;
  meta.fill_ctx = ctx;
  meta.fill_span = trace_->begin_span(ctx, "edge.meta_fill", host_);
  ByteWriter w;
  w.str(content);
  streaming::proto::write_trace_context(
      w, meta.fill_span ? ctx.child(meta.fill_span) : obs::TraceContext{});
  auto alive = alive_;
  origin_rpc_.call(config_.origin, config_.origin_gateway_port, "/edge/meta",
                   std::move(w).take(),
                   [this, alive, content](net::Result<net::RpcReply> r) {
                     if (!*alive) return;
                     const int status = r ? r->status : 0;
                     if (status != 200) {
                       ContentMeta& m = contents_[content];
                       m.fetching = false;
                       if (m.fill_span) {
                         trace_->end_span(m.fill_ctx, m.fill_span,
                                          "edge.meta_fill", host_, status);
                         m.fill_span = 0;
                       }
                       for (auto [h, p] : m.waiting_describe) {
                         ByteWriter e;
                         e.u8(static_cast<std::uint8_t>(Ctl::kError));
                         e.str("no such content: " + content);
                         reply_to(h, p, std::move(e).take());
                       }
                       m.waiting_describe.clear();
                       return;
                     }
                     on_meta(content, r->body);
                   });
  return meta;
}

void EdgeNode::on_meta(const std::string& content,
                       std::span<const std::byte> body) {
  ContentMeta& meta = contents_[content];
  meta.fetching = false;
  ByteReader r(body);
  meta.header_bytes = r.blob();
  meta.header = media::asf::parse_header(meta.header_bytes);
  meta.packet_count = r.u32();
  const std::uint32_t index_count = r.u32();
  meta.index.clear();
  meta.index.reserve(index_count);
  for (std::uint32_t i = 0; i < index_count; ++i) {
    media::asf::IndexEntry e;
    e.time = net::SimDuration{r.i64()};
    e.packet = r.u32();
    meta.index.push_back(e);
  }
  meta.send_times_us.clear();
  meta.send_times_us.reserve(meta.packet_count);
  for (std::uint32_t i = 0; i < meta.packet_count; ++i) {
    meta.send_times_us.push_back(r.i64());
  }
  meta.ready = true;
  if (meta.fill_span) {
    trace_->end_span(meta.fill_ctx, meta.fill_span, "edge.meta_fill", host_,
                     meta.packet_count);
    meta.fill_span = 0;
  }
  if (meta.order_override) {
    meta.prefetch.emplace(meta.packet_count, config_.packets_per_segment,
                          *meta.order_override);
  } else {
    meta.prefetch.emplace(meta.packet_count, config_.packets_per_segment);
  }
  ByteWriter ok;
  ok.u8(static_cast<std::uint8_t>(Ctl::kDescribeOk));
  ok.blob(meta.header_bytes);
  const auto ok_bytes = std::move(ok).take();
  for (auto [h, p] : meta.waiting_describe) reply_to(h, p, ok_bytes);
  meta.waiting_describe.clear();
}

std::uint32_t EdgeNode::packet_for(const ContentMeta& meta,
                                   net::SimDuration t) const {
  std::uint32_t best = 0;
  for (const auto& e : meta.index) {
    if (e.time.us <= t.us) {
      best = e.packet;
    } else {
      break;
    }
  }
  return std::min(best, meta.packet_count);
}

void EdgeNode::handle_control(const net::ReliableEndpoint::Message& m) {
  ByteReader r(m.payload);
  const Ctl tag = static_cast<Ctl>(r.u8());

  auto send_error = [&](const std::string& msg) {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(Ctl::kError));
    w.str(msg);
    reply_to(m.src, m.src_port, std::move(w).take());
  };

  switch (tag) {
    case Ctl::kDescribe: {
      const std::string name = r.str();
      const obs::TraceContext ctx = streaming::proto::read_trace_context(r);
      const std::uint64_t sp = trace_->begin_span(ctx, "edge.describe", host_);
      trace_->end_span(ctx, sp, "edge.describe", host_);
      ContentMeta& meta = ensure_meta(name, ctx);
      if (meta.ready) {
        ByteWriter w;
        w.u8(static_cast<std::uint8_t>(Ctl::kDescribeOk));
        w.blob(meta.header_bytes);
        reply_to(m.src, m.src_port, std::move(w).take());
      } else {
        meta.waiting_describe.emplace_back(m.src, m.src_port);
      }
      return;
    }

    case Ctl::kPlay: {
      const std::string name = r.str();
      const net::SimDuration from{r.i64()};
      const net::Port data_port = r.u16();
      const net::ChannelId channel = r.u32();
      const obs::TraceContext ctx = streaming::proto::read_trace_context(r);
      auto it = contents_.find(name);
      if (it == contents_.end() || !it->second.ready) {
        // Players DESCRIBE first (which pulls the meta); a PLAY without it
        // is a protocol misuse, not a transient.
        send_error("content not ready: " + name);
        return;
      }
      const ContentMeta& meta = it->second;
      Session s;
      s.id = next_session_++;
      s.client = m.src;
      s.client_ctl_port = m.src_port;
      s.data_port = data_port;
      s.channel = channel;
      s.content = name;
      s.ctx = ctx;
      s.next_packet = packet_for(meta, from);
      s.pace_epoch = net_.now();
      s.pace_offset = s.next_packet < meta.packet_count
                          ? net::SimDuration{meta.send_times_us[s.next_packet]}
                          : net::SimDuration{0};
      const std::uint64_t id = s.id;
      sessions_.emplace(id, std::move(s));
      m_sessions_opened_.inc();
      m_active_sessions_.add(1);
      const std::uint64_t sp = trace_->begin_span(
          ctx, "edge.open", host_, static_cast<std::int64_t>(id));
      trace_->end_span(ctx, sp, "edge.open", host_,
                       static_cast<std::int64_t>(id));
      if (trace_->enabled()) {
        trace_->emit_in(ctx, obs::EventType::kSessionOpen, m.src,
                        static_cast<std::int64_t>(id), from.us, name);
      }
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(Ctl::kPlayOk));
      w.u64(id);
      reply_to(m.src, m.src_port, std::move(w).take());
      prefetch_tick(name, sessions_.at(id).next_packet);
      schedule_next(sessions_.at(id));
      return;
    }

    case Ctl::kPause: {
      if (Session* s = find_session(r.u64()); s && !s->stopped) {
        s->paused = true;
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kSessionPause, s->client,
                       static_cast<std::int64_t>(s->id));
        }
        if (s->timer) {
          net_.cancel(*s->timer);
          s->timer.reset();
        }
      }
      return;
    }

    case Ctl::kResume: {
      if (Session* s = find_session(r.u64()); s && !s->stopped && s->paused) {
        s->paused = false;
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kSessionResume, s->client,
                       static_cast<std::int64_t>(s->id));
        }
        const ContentMeta& meta = contents_.at(s->content);
        s->pace_epoch = net_.now();
        s->pace_offset =
            s->next_packet < meta.packet_count
                ? net::SimDuration{meta.send_times_us[s->next_packet]}
                : net::SimDuration{0};
        schedule_next(*s);
      }
      return;
    }

    case Ctl::kSeek: {
      const std::uint64_t sid = r.u64();
      const net::SimDuration to{r.i64()};
      if (Session* s = find_session(sid); s && !s->stopped) {
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kSessionSeek, s->client,
                       static_cast<std::int64_t>(s->id), to.us);
        }
        ++s->epoch;  // packets from before the jump are now stale
        if (s->timer) {
          net_.cancel(*s->timer);
          s->timer.reset();
        }
        // Any in-flight miss fill belongs to the abandoned position; the
        // completion handler checks this field, so clearing it here makes
        // that fill a pure cache insert.
        s->waiting_on.reset();
        const ContentMeta& meta = contents_.at(s->content);
        s->next_packet = packet_for(meta, to);
        s->pace_epoch = net_.now();
        s->pace_offset =
            s->next_packet < meta.packet_count
                ? net::SimDuration{meta.send_times_us[s->next_packet]}
                : net::SimDuration{0};
        prefetch_tick(s->content, s->next_packet);  // follow the jump
        if (!s->paused) schedule_next(*s);
      }
      return;
    }

    case Ctl::kSetRate: {
      const std::uint64_t sid = r.u64();
      const std::uint32_t permille = r.u32();
      const net::ChannelId channel = r.u32();
      if (Session* s = find_session(sid); s && !s->stopped && permille > 0) {
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kSessionRate, s->client,
                       static_cast<std::int64_t>(s->id), permille);
        }
        s->channel = channel;
        if (s->timer) {
          net_.cancel(*s->timer);
          s->timer.reset();
        }
        s->rate = static_cast<double>(permille) / 1000.0;
        const ContentMeta& meta = contents_.at(s->content);
        s->pace_epoch = net_.now();
        s->pace_offset =
            s->next_packet < meta.packet_count
                ? net::SimDuration{meta.send_times_us[s->next_packet]}
                : net::SimDuration{0};
        if (!s->paused && !s->waiting_on) schedule_next(*s);
      }
      return;
    }

    case Ctl::kRepair: {
      const std::uint64_t sid = r.u64();
      const std::uint32_t count = r.u32();
      Session* s = find_session(sid);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t idx = r.u32();
        if (!s || s->stopped) continue;
        const ContentMeta& meta = contents_.at(s->content);
        if (idx >= meta.packet_count) continue;
        const std::uint32_t seg = idx / config_.packets_per_segment;
        const SegmentKey key{s->content, seg};
        if (const auto* pkts = cache_.get(key)) {
          m_repairs_.inc();
          if (trace_->enabled()) {
            trace_->emit(obs::EventType::kRepairResend, s->client,
                         static_cast<std::int64_t>(s->id), idx);
          }
          send_packet(*s, (*pkts)[idx - seg * config_.packets_per_segment],
                      idx);
        } else {
          start_fetch(s->content, seg, /*demand=*/true);
          inflight_[key].waiting_repairs.emplace_back(sid, idx);
        }
      }
      return;
    }

    case Ctl::kStop: {
      const std::uint64_t sid = r.u64();
      if (Session* s = find_session(sid)) {
        end_session(*s);
        if (s->timer) {
          net_.cancel(*s->timer);
          s->timer.reset();
        }
      }
      return;
    }

    case Ctl::kTimeSync: {
      const std::int64_t client_local = r.i64();
      ByteWriter w;
      w.u8(static_cast<std::uint8_t>(Ctl::kTimeSyncReply));
      w.i64(client_local);
      w.i64(net_.local_now(host_).us);
      reply_to(m.src, m.src_port, std::move(w).take());
      return;
    }

    default:
      return;  // live joins and client-only tags are origin business
  }
}

std::pair<int, std::vector<std::byte>> EdgeNode::handle_migrate(
    std::span<const std::byte> body) {
  std::string name;
  net::HostId client = 0;
  net::Port client_ctl_port = 0;
  net::Port client_data_port = 0;
  std::uint32_t resume_index = 0;
  net::SimDuration position{0};
  std::uint32_t epoch = 0;
  double rate = 1.0;
  bool paused = false;
  obs::TraceContext ctx;
  std::vector<std::byte> image;
  try {
    ByteReader r(body);
    if (r.u32() != streaming::proto::kMigrateMagic) return {400, {}};
    if (r.u16() != streaming::proto::kMigrateVersion) return {400, {}};
    name = r.str();
    client = static_cast<net::HostId>(r.u32());
    client_ctl_port = r.u16();
    client_data_port = r.u16();
    resume_index = r.u32();
    position = net::SimDuration{r.i64()};
    epoch = r.u32();
    rate = r.f64();
    paused = r.u8() != 0;
    ctx.trace_id = r.u64();
    ctx.parent_span_id = r.u64();
    image = r.blob();
  } catch (const std::exception&) {
    return {400, {}};
  }

  ContentMeta& meta = ensure_meta(name, ctx);
  if (!meta.ready) {
    // Adoption is synchronous — there is nowhere to park an RPC reply — so
    // a cold replica refuses, warms the meta in the background, and leaves
    // the player to its describe-path fallback (which knows how to park).
    return {503, {}};
  }

  Session s;
  s.id = next_session_++;
  s.client = client;
  s.client_ctl_port = client_ctl_port;
  s.data_port = client_data_port;
  s.content = name;
  s.ctx = ctx;
  // Resume exactly where the old replica's stream left off when the player
  // knows the index; derive it from the render position when it does not
  // (a session that never received a packet this epoch).
  s.next_packet =
      resume_index != std::numeric_limits<std::uint32_t>::max()
          ? std::min(resume_index, meta.packet_count)
          : packet_for(meta, position);
  s.epoch = epoch;  // the player keeps its epoch; stragglers still filter
  s.rate = rate > 0 ? rate : 1.0;
  s.paused = paused;
  // No QoS channel yet: the reservation is path-bound and the player can
  // only re-reserve after adoption. A later kSetRate carries the new id.
  s.pace_epoch = net_.now();
  s.pace_offset = s.next_packet < meta.packet_count
                      ? net::SimDuration{meta.send_times_us[s.next_packet]}
                      : net::SimDuration{0};
  const std::uint64_t id = s.id;
  const std::uint32_t start = s.next_packet;
  sessions_.emplace(id, std::move(s));
  if (!image.empty()) adopted_images_[id] = std::move(image);
  m_sessions_opened_.inc();
  m_active_sessions_.add(1);
  if (!m_migrations_adopted_) {
    m_migrations_adopted_ = net_.obs().metrics().counter(
        "lod.edge.migrations_adopted", {{"host", std::to_string(host_)}});
  }
  m_migrations_adopted_.inc();
  const std::uint64_t sp = trace_->begin_span(ctx, "edge.adopt", host_,
                                              static_cast<std::int64_t>(id));
  trace_->end_span(ctx, sp, "edge.adopt", host_,
                   static_cast<std::int64_t>(id), start);
  if (trace_->enabled()) {
    trace_->emit_in(ctx, obs::EventType::kSessionOpen, client,
                    static_cast<std::int64_t>(id), position.us, name);
  }
  prefetch_tick(name, start);
  if (!paused) schedule_next(sessions_.at(id));

  ByteWriter w;
  w.u64(id);
  w.u32(start);
  return {200, std::move(w).take()};
}

void EdgeNode::schedule_next(Session& s) {
  if (s.stopped || s.paused || s.waiting_on) return;
  if (s.timer) {
    net_.cancel(*s.timer);
    s.timer.reset();
  }
  const ContentMeta& meta = contents_.at(s.content);
  if (s.next_packet >= meta.packet_count) {
    if (trace_->enabled()) {
      trace_->emit(obs::EventType::kSessionEos, s.client,
                   static_cast<std::int64_t>(s.id));
    }
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(Ctl::kEndOfStream));
    w.u64(s.id);
    w.u32(meta.packet_count);
    reply_to(s.client, s.client_ctl_port, std::move(w).take());
    return;
  }
  // Same pacing discipline as the origin server: send_time schedule with a
  // fast-start burst capped at a multiple of the content bit-rate (and at
  // the session's QoS reservation, if it rides one).
  const net::SimDuration send_time{meta.send_times_us[s.next_packet]};
  const net::SimDuration media_ahead =
      send_time - s.pace_offset - meta.header.props.preroll;
  net::SimTime due =
      s.pace_epoch + net::SimDuration{static_cast<std::int64_t>(
                         static_cast<double>(media_ahead.us) / s.rate)};
  const std::int64_t bps =
      std::max<std::int64_t>(meta.header.props.avg_bitrate_bps, 8'000);
  double burst_bps = config_.fast_start_multiplier * static_cast<double>(bps);
  if (s.channel != 0) {
    if (const std::int64_t rate = net_.channel_rate_bps(s.channel)) {
      burst_bps = std::min(burst_bps, static_cast<double>(rate) * 0.95);
    }
  }
  const net::SimDuration min_gap{static_cast<std::int64_t>(
      static_cast<double>(meta.header.props.packet_bytes) * 8e6 /
      std::max(burst_bps, 8'000.0))};
  if (s.last_send.us > 0 && due < s.last_send + min_gap) {
    due = s.last_send + min_gap;
  }
  const net::SimTime now = net_.now();
  if (due < now) due = now;
  const std::uint64_t sid = s.id;
  s.timer = net_.schedule_at(due, [this, sid] { deliver_due(sid); });
}

void EdgeNode::deliver_due(std::uint64_t sid) {
  Session* s = find_session(sid);
  if (!s || s->stopped || s->paused || s->waiting_on) return;
  s->timer.reset();
  const std::uint32_t idx = s->next_packet;
  const std::uint32_t seg = idx / config_.packets_per_segment;
  const SegmentKey key{s->content, seg};
  if (const auto* pkts = cache_.get(key)) {
    s->last_send = net_.now();
    send_packet(*s, (*pkts)[idx - seg * config_.packets_per_segment], idx);
    ++s->next_packet;
    if (s->next_packet % config_.packets_per_segment == 0) {
      // Crossed a segment boundary: advance the warm window.
      prefetch_tick(s->content, s->next_packet);
    }
    schedule_next(*s);
  } else {
    // Cold miss: park the session on the fill; it resumes (and catches up
    // under the burst cap) when the segment lands.
    s->waiting_on = key;
    start_fetch(s->content, seg, /*demand=*/true, s->ctx);
    auto& f = inflight_[key];
    f.demand = true;
    f.waiting_sessions.push_back(sid);
  }
}

void EdgeNode::send_packet(Session& s, const net::Payload& bytes,
                           std::uint32_t packet_index) {
  const ContentMeta& meta = contents_.at(s.content);
  // Per-send frame header only; the cached serialized packet rides as a
  // shared body — the edge relays media it never copied or parsed.
  ByteWriter w;
  w.u32(streaming::proto::kDataMagic);
  w.u64(s.id);
  w.u32(s.epoch);
  w.u64(s.next_seq++);
  w.u32(packet_index);

  net::Datagram p;
  p.src = host_;
  p.dst = s.client;
  p.src_port = data_.port();
  p.dst_port = s.data_port;
  p.payload = std::move(w).take();
  p.body = bytes;
  const std::uint32_t nominal = meta.header.props.packet_bytes + 20u;
  p.wire_size =
      std::max<std::uint32_t>(
          static_cast<std::uint32_t>(p.payload.size() + p.body.size()),
          nominal) +
      28;
  p.channel = s.channel;
  m_packets_sent_.inc();
  m_bytes_sent_.inc(p.wire_size);
  net_.send(std::move(p));
}

void EdgeNode::start_fetch(const std::string& content, std::uint32_t segment,
                           bool demand, const obs::TraceContext& ctx) {
  const SegmentKey key{content, segment};
  auto [it, inserted] = inflight_.try_emplace(key);
  it->second.demand |= demand;
  if (!inserted) return;  // already on the wire; callers just park on it
  fetch_started_[key] = net_.now();
  (demand ? m_demand_fetches_ : m_prefetch_fetches_).inc();
  if (demand) {
    // A demand fetch IS a cache miss on the session's critical path.
    net_.obs().flight().record(obs::FlightType::kCacheMiss,
                               static_cast<std::uint32_t>(host_), segment);
  }
  const char* span_name = demand ? "edge.miss_fill" : "edge.prefetch";
  if (ctx.valid()) {
    it->second.ctx = ctx;
    it->second.span = trace_->begin_span(ctx, span_name, host_, segment);
  } else if (trace_->enabled()) {
    // Context-free fill (prefetch, or an untraced session): keep the legacy
    // unlinked span events so the fetch still shows up in the stream.
    trace_->emit(obs::EventType::kSpanBegin, host_, segment, 0, span_name);
  }
  ByteWriter w;
  w.str(content);
  w.u32(segment);
  w.u32(config_.packets_per_segment);
  streaming::proto::write_trace_context(
      w, it->second.span ? ctx.child(it->second.span) : obs::TraceContext{});
  auto alive = alive_;
  origin_rpc_.call(config_.origin, config_.origin_gateway_port, "/edge/segment",
                   std::move(w).take(),
                   [this, alive, content, segment](net::Result<net::RpcReply> r) {
                     if (!*alive) return;
                     if (r) {
                       on_segment(content, segment, r->status, r->body);
                     } else {
                       on_segment(content, segment, 0, net::Payload{});
                     }
                   });
}

void EdgeNode::on_segment(const std::string& content, std::uint32_t segment,
                          int status, const net::Payload& body) {
  const SegmentKey key{content, segment};
  Fetch fetch;
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    fetch = std::move(it->second);
    inflight_.erase(it);
  }
  net::SimDuration elapsed{0};
  if (auto it = fetch_started_.find(key); it != fetch_started_.end()) {
    elapsed = net_.now() - it->second;
    fetch_started_.erase(it);
  }
  if (fetch.span != 0) {
    trace_->end_span(fetch.ctx, fetch.span,
                     fetch.demand ? "edge.miss_fill" : "edge.prefetch", host_,
                     segment, status);
  } else if (trace_->enabled()) {
    trace_->emit(obs::EventType::kSpanEnd, host_, segment, status,
                 fetch.demand ? "edge.miss_fill" : "edge.prefetch");
  }
  if (status != 200) return;  // parked sessions stall; the player fails over

  ByteReader r(body);
  const std::uint32_t count = r.u32();
  // Cache zero-copy slices of the fetch response: each cached packet is a
  // refcounted view of the one buffer the RPC already delivered. The edge
  // never parses media it only relays.
  std::vector<net::Payload> packets;
  packets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t n = r.u32();
    packets.push_back(body.slice(r.offset(), n));
    r.raw(n);
  }
  m_fetch_bytes_.inc(body.size());
  if (fetch.demand) m_miss_fill_us_.observe(elapsed.us);
  cache_.put(key, std::move(packets), body.size());

  for (std::uint64_t sid : fetch.waiting_sessions) {
    Session* s = find_session(sid);
    if (!s || s->stopped || s->waiting_on != key) continue;
    s->waiting_on.reset();
    if (!s->paused) schedule_next(*s);
  }
  if (!fetch.waiting_repairs.empty()) {
    const auto* pkts = cache_.get(key);
    for (auto [sid, idx] : fetch.waiting_repairs) {
      Session* s = find_session(sid);
      if (!s || s->stopped || !pkts) continue;
      const std::uint32_t off = idx - segment * config_.packets_per_segment;
      if (off >= pkts->size()) continue;
      m_repairs_.inc();
      if (trace_->enabled()) {
        trace_->emit(obs::EventType::kRepairResend, s->client,
                     static_cast<std::int64_t>(s->id), idx);
      }
      send_packet(*s, (*pkts)[off], idx);
    }
  }
}

void EdgeNode::prefetch_tick(const std::string& content,
                             std::uint32_t playhead) {
  if (config_.prefetch_depth == 0) return;
  auto it = contents_.find(content);
  if (it == contents_.end() || !it->second.ready || !it->second.prefetch) {
    return;
  }
  PrefetchController& pc = *it->second.prefetch;
  pc.anchor_to(playhead);
  for (std::uint32_t seg : pc.warm_set(config_.prefetch_depth)) {
    const SegmentKey key{content, seg};
    if (cache_.contains(key) || inflight_.count(key) > 0) continue;
    start_fetch(content, seg, /*demand=*/false);
  }
}

}  // namespace lod::edge
