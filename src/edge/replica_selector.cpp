#include "lod/edge/replica_selector.hpp"

#include <limits>
#include <string>

namespace lod::edge {

ReplicaSelector::ReplicaSelector(net::Transport& net, net::HostId client,
                                 net::HostId origin,
                                 std::vector<net::HostId> edges, double alpha)
    : hub_(&net.obs()),
      client_(client),
      origin_(origin),
      alpha_(alpha) {
  sites_ = std::move(edges);
  sites_.push_back(origin_);
  auto& reg = net.obs().metrics();
  const obs::Labels at_client{{"host", std::to_string(client_)}};
  picks_ = reg.counter("lod.edge.selector.picks", at_client);
  observations_ = reg.counter("lod.edge.selector.observations", at_client);
  failovers_ = reg.counter("lod.edge.selector.failovers", at_client);
  for (net::HostId site : sites_) {
    SiteState st;
    // Seed from the static topology: the propagation floor of the path, the
    // delay the §3 model's channel places start with. Unreachable sites are
    // born down.
    const net::SimDuration seed = net.path_latency(client_, site);
    if (seed.us < 0) {
      st.down = site != origin_;
      st.ewma_us = 1e12;
    } else {
      st.ewma_us = static_cast<double>(seed.us);
    }
    const obs::Labels at_site{{"host", std::to_string(client_)},
                              {"site", std::to_string(site)}};
    st.estimate_us = reg.gauge("lod.edge.selector.estimate_us", at_site);
    st.estimate_us.set(static_cast<std::int64_t>(st.ewma_us));
    st.last_observation_us =
        reg.gauge("lod.edge.selector.last_observation_us", at_site);
    st.last_observation_us.set(hub_->now_us());
    state_.emplace(site, std::move(st));
  }
}

net::HostId ReplicaSelector::pick_site() {
  net::HostId best = origin_;
  double best_ewma = std::numeric_limits<double>::infinity();
  for (net::HostId site : sites_) {
    const SiteState& st = state_.at(site);
    if (st.down) continue;
    if (health_ && site != origin_ &&
        !health_->site_healthy(std::to_string(site))) {
      continue;  // SLO-demoted; eligibility returns when the rules recover
    }
    if (st.ewma_us < best_ewma) {
      best_ewma = st.ewma_us;
      best = site;
    }
  }
  picks_.inc();
  return best;
}

void ReplicaSelector::observe(net::HostId site, net::SimDuration delay) {
  auto it = state_.find(site);
  if (it == state_.end() || delay.us < 0) return;
  SiteState& st = it->second;
  st.ewma_us = (1.0 - alpha_) * st.ewma_us +
               alpha_ * static_cast<double>(delay.us);
  st.estimate_us.set(static_cast<std::int64_t>(st.ewma_us));
  st.last_observation_us.set(hub_->now_us());
  observations_.inc();
}

net::HostId ReplicaSelector::failover_from(net::HostId site) {
  mark_down(site);
  failovers_.inc();
  return pick_site();
}

void ReplicaSelector::mark_down(net::HostId site) {
  if (site == origin_) return;  // the origin is the floor; it never leaves
  if (auto it = state_.find(site); it != state_.end()) it->second.down = true;
}

void ReplicaSelector::revive(net::HostId site) {
  if (auto it = state_.find(site); it != state_.end()) it->second.down = false;
}

bool ReplicaSelector::is_down(net::HostId site) const {
  auto it = state_.find(site);
  return it != state_.end() && it->second.down;
}

net::SimDuration ReplicaSelector::estimate(net::HostId site) const {
  auto it = state_.find(site);
  if (it == state_.end()) return net::SimDuration{-1};
  return net::SimDuration{static_cast<std::int64_t>(it->second.ewma_us)};
}

}  // namespace lod::edge
