#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/edge/prefetch.hpp"
#include "lod/edge/segment_cache.hpp"
#include "lod/net/transport.hpp"
#include "lod/streaming/protocol.hpp"
#include "lod/streaming/server.hpp"

/// \file edge_node.hpp
/// The distributed edge-replica tier (tentpole of the §3 distributed-site
/// model): a relay server on a remote site's LAN that speaks the same
/// RTSP-in-spirit control protocol as the origin `StreamingServer`, serves
/// data packets out of a byte-budgeted `SegmentCache`, and fills misses from
/// the origin over an RPC gateway. A session served from a warm edge sees
/// edge-LAN latency; a cold miss pays the full origin round trip — exactly
/// the channel-delay places the paper's extended net attaches to distributed
/// sites.
///
/// Two halves:
///  - `OriginGateway` — runs next to the origin server and exports its
///    published files segment-wise (`/edge/meta`, `/edge/segment`).
///  - `EdgeNode` — runs on the edge host; players open sessions against it
///    exactly as they would against the origin (DESCRIBE / PLAY / PAUSE /
///    SEEK / RATE / REPAIR / TIMESYNC all work), while a
///    `PrefetchController` warms the segments the presentation order says
///    come next — re-anchored on every seek.

namespace lod::edge {

/// Where the origin exports segments to edges (homage to RTSP-alt 8554).
inline constexpr net::Port kOriginGatewayPort = 8554;

/// Serves the origin's published files to edge nodes, segment-wise.
class OriginGateway {
 public:
  OriginGateway(net::Transport& net, streaming::StreamingServer& origin,
                net::Port port = kOriginGatewayPort);

  /// The gateway's RPC route table. Alternate control planes (the real
  /// backend's TCP length-prefixed framing) bridge into the same routes
  /// via `RpcServer::handle`.
  net::RpcServer& rpc() { return rpc_; }

  std::uint64_t meta_requests() const { return m_meta_requests_.value(); }
  std::uint64_t segment_requests() const {
    return m_segment_requests_.value();
  }

 private:
  streaming::StreamingServer& origin_;
  net::RpcServer rpc_;
  obs::TraceSink* trace_{nullptr};
  obs::Counter m_meta_requests_;
  obs::Counter m_segment_requests_;
  obs::Counter m_segment_bytes_;
};

/// Edge tunables (mirrors `ServerConfig`'s aggregate style).
struct EdgeConfig {
  /// Control port; players hard-wire `proto::kControlPort`, so keep it there
  /// unless every client is configured to match. Data rides on +1, the
  /// origin RPC client on +2, the migration RPC server on +3
  /// (`proto::kMigratePortOffset`).
  net::Port control_port{streaming::proto::kControlPort};
  /// The origin site and its gateway port.
  net::HostId origin{0};
  net::Port origin_gateway_port{kOriginGatewayPort};
  /// Fast-start burst cap, as at the origin server.
  double fast_start_multiplier{4.0};
  /// Cache budget in bytes of segment payload.
  std::size_t cache_budget_bytes{16u * 1024 * 1024};
  /// Packets per cached segment (the fetch/warm granularity).
  std::uint32_t packets_per_segment{32};
  /// Segments to warm ahead of the playhead; 0 disables prefetch.
  std::uint32_t prefetch_depth{4};

  /// Normalized copy with every field forced into its legal range.
  EdgeConfig validated() const {
    EdgeConfig c = *this;
    if (!(c.fast_start_multiplier >= 1.0)) c.fast_start_multiplier = 1.0;
    if (c.packets_per_segment == 0) c.packets_per_segment = 1;
    return c;
  }
};

/// The edge relay server on one host.
class EdgeNode {
 public:
  EdgeNode(net::Transport& net, net::HostId host, EdgeConfig cfg);
  ~EdgeNode();
  EdgeNode(const EdgeNode&) = delete;
  EdgeNode& operator=(const EdgeNode&) = delete;

  /// Override the prefetch signal for \p content with a content-tree
  /// presentation order (see `presentation_order`); without one, prefetch
  /// walks the file linearly. May be called before the content is first
  /// requested.
  void set_presentation_order(const std::string& content,
                              std::vector<PacketRange> order);

  // --- introspection ---------------------------------------------------------

  const EdgeConfig& config() const { return config_; }
  net::HostId host() const { return host_; }
  const SegmentCache& cache() const { return cache_; }
  std::size_t active_sessions() const;
  std::uint64_t demand_fetches() const { return m_demand_fetches_.value(); }
  std::uint64_t prefetch_fetches() const {
    return m_prefetch_fetches_.value();
  }
  std::uint64_t packets_sent() const { return m_packets_sent_.value(); }
  /// Sessions adopted via the `/edge/migrate` handshake (counter is bound
  /// lazily; 0 until the first adoption).
  std::uint64_t migrations_adopted() const {
    return m_migrations_adopted_ ? m_migrations_adopted_.value() : 0;
  }
  /// The state image shipped with an adopted session (nullptr when the
  /// session is unknown or migrated with an empty image). The edge keeps it
  /// verbatim — interpretation belongs to the sync layer on the client.
  const std::vector<std::byte>* adopted_image(std::uint64_t session_id) const {
    auto it = adopted_images_.find(session_id);
    return it == adopted_images_.end() ? nullptr : &it->second;
  }

 private:
  /// Everything the edge needs to pace and seek one content, fetched once
  /// from the origin (`/edge/meta`) and kept for the node's lifetime.
  struct ContentMeta {
    media::asf::Header header;
    std::vector<std::byte> header_bytes;   ///< verbatim kDescribeOk payload
    std::vector<std::int64_t> send_times_us;
    std::vector<media::asf::IndexEntry> index;
    std::uint32_t packet_count{0};
    bool ready{false};
    bool fetching{false};
    /// DESCRIBEs parked until the meta lands.
    std::vector<std::pair<net::HostId, net::Port>> waiting_describe;
    std::optional<PrefetchController> prefetch;
    std::optional<std::vector<PacketRange>> order_override;
    /// Open "edge.meta_fill" span, owned by whichever DESCRIBE initiated
    /// the fetch; later describes park without their own span.
    obs::TraceContext fill_ctx;
    std::uint64_t fill_span{0};
  };

  struct Session {
    std::uint64_t id{};
    net::HostId client{};
    net::Port client_ctl_port{};
    net::Port data_port{};
    net::ChannelId channel{0};
    std::string content;
    /// Trace context from the player's PLAY (parent = its startup span);
    /// demand miss fills initiated for this session parent their spans here.
    obs::TraceContext ctx;
    std::uint32_t next_packet{0};
    std::uint64_t next_seq{0};
    std::uint32_t epoch{0};
    bool paused{false};
    bool stopped{false};
    /// Set while parked on a demand miss; a seek clears it, so a stale fetch
    /// completing later cannot double-schedule the session.
    std::optional<SegmentKey> waiting_on;
    double rate{1.0};
    net::SimTime pace_epoch{};
    net::SimDuration pace_offset{};
    net::SimTime last_send{};
    std::optional<net::EventId> timer;
  };

  /// One origin fetch in flight; sessions and repairs park here.
  struct Fetch {
    bool demand{false};  ///< any demand-miss waiter (vs pure prefetch)
    std::vector<std::uint64_t> waiting_sessions;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> waiting_repairs;
    /// Context-linked span for demand fills initiated on behalf of a traced
    /// session; prefetch fills stay context-free.
    obs::TraceContext ctx;
    std::uint64_t span{0};
  };

  void handle_control(const net::ReliableEndpoint::Message& m);
  /// `/edge/migrate`: adopt a frozen session shipped by a failing-over
  /// player. Synchronous: 200 + {session id, start index} when the content
  /// meta is in hand, 503 (and a background meta warm) when it is not.
  std::pair<int, std::vector<std::byte>> handle_migrate(
      std::span<const std::byte> body);
  void reply_to(net::HostId h, net::Port p, std::vector<std::byte> payload);
  ContentMeta& ensure_meta(const std::string& content,
                           const obs::TraceContext& ctx = {});
  void on_meta(const std::string& content, std::span<const std::byte> body);
  void schedule_next(Session& s);
  void deliver_due(std::uint64_t sid);
  /// Send one cached wire packet: per-send frame header in the payload, the
  /// cached serialized bytes as a shared body — no byte copy per send.
  void send_packet(Session& s, const net::Payload& bytes,
                   std::uint32_t packet_index);
  void start_fetch(const std::string& content, std::uint32_t segment,
                   bool demand, const obs::TraceContext& ctx = {});
  void on_segment(const std::string& content, std::uint32_t segment,
                  int status, const net::Payload& body);
  void prefetch_tick(const std::string& content, std::uint32_t playhead);
  std::uint32_t packet_for(const ContentMeta& meta, net::SimDuration t) const;
  Session* find_session(std::uint64_t id);
  void end_session(Session& s);

  net::Transport& net_;
  net::HostId host_;
  EdgeConfig config_;
  net::ReliableEndpoint ctl_;
  net::DatagramSocket data_;
  net::RpcClient origin_rpc_;
  net::RpcServer migrate_rpc_;
  SegmentCache cache_;
  obs::TraceSink* trace_{nullptr};
  obs::Counter m_packets_sent_;
  obs::Counter m_bytes_sent_;
  obs::Counter m_sessions_opened_;
  obs::Gauge m_active_sessions_;
  obs::Counter m_demand_fetches_;
  obs::Counter m_prefetch_fetches_;
  obs::Counter m_fetch_bytes_;
  obs::Counter m_repairs_;
  /// Lazily bound on first adoption (keeps migration-free goldens stable).
  obs::Counter m_migrations_adopted_;
  obs::Histogram m_miss_fill_us_;
  /// State images received with adopted sessions, kept verbatim for the
  /// client-side sync layer (and the migration tests) to read back.
  std::unordered_map<std::uint64_t, std::vector<std::byte>> adopted_images_;
  std::unordered_map<std::string, ContentMeta> contents_;
  std::unordered_map<SegmentKey, Fetch, SegmentKeyHash> inflight_;
  std::unordered_map<SegmentKey, net::SimTime, SegmentKeyHash> fetch_started_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_{1};
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
};

}  // namespace lod::edge
