#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lod/contenttree/content_tree.hpp"
#include "lod/net/time.hpp"

/// \file prefetch.hpp
/// Content-tree-driven cache warming for the edge tier.
///
/// Generic caches guess what comes next; a lecture does not have to. The
/// content tree's left-to-right sibling order (§2.2: "the siblings with the
/// order from left to right represent a presentation with some sequence
/// fashion") IS the playout order, so the segments that follow the playhead
/// are known exactly — including across the jumps an abstraction level or a
/// re-ordered playlist introduces, where "next in time" and "next in
/// presentation order" differ.
///
/// The controller works in PACKET space (the edge already maps media time to
/// packet indices through the ASF index): it holds the presentation order as
/// a list of packet ranges, tracks an anchor (the playhead, re-anchored on
/// seeks), and plans which cache segments to warm next.

namespace lod::edge {

/// A contiguous run of file packets, `[first, last)`, in presentation order.
struct PacketRange {
  std::uint32_t first{0};
  std::uint32_t last{0};

  bool operator==(const PacketRange&) const = default;
};

/// Plans which segments to warm ahead of the playhead.
class PrefetchController {
 public:
  /// Linear presentation: one range covering the whole file. This is what a
  /// plain published lecture uses.
  PrefetchController(std::uint32_t total_packets,
                     std::uint32_t packets_per_segment);

  /// Explicit presentation order (e.g. from a content tree). Ranges outside
  /// [0, total_packets) are clipped; empty ranges are dropped.
  PrefetchController(std::uint32_t total_packets,
                     std::uint32_t packets_per_segment,
                     std::vector<PacketRange> order);

  /// Re-anchor the playhead (called on session open, on every serve advance,
  /// and — crucially — on seeks, so prefetch follows the jump instead of
  /// warming the abandoned neighborhood).
  void anchor_to(std::uint32_t playhead_packet) { anchor_ = playhead_packet; }
  std::uint32_t anchor() const { return anchor_; }

  /// The next \p depth distinct segment indices at/after the anchor in
  /// presentation order (the anchor's own segment first, then what follows —
  /// across range boundaries when the current range runs out).
  std::vector<std::uint32_t> warm_set(std::uint32_t depth) const;

  std::uint32_t segment_of(std::uint32_t packet) const {
    return packet / packets_per_segment_;
  }
  std::uint32_t total_segments() const {
    return (total_packets_ + packets_per_segment_ - 1) / packets_per_segment_;
  }

  const std::vector<PacketRange>& order() const { return order_; }

 private:
  std::uint32_t total_packets_;
  std::uint32_t packets_per_segment_;
  std::uint32_t anchor_{0};
  std::vector<PacketRange> order_;
};

/// Derive the presentation order from a content tree: the level-q sequence
/// (§2.2's pre-order, left-to-right playout). Each node's segment occupies
/// the window of the recording given by its cumulative offset in full
/// document order (the complete lecture laid end to end); \p packet_of maps
/// a media time to a packet index (the ASF seek index). Nodes above level q
/// still advance the timeline — that is exactly the "jump" an abstraction
/// playout makes, and why tree-aware prefetch beats next-in-time warming.
std::vector<PacketRange> presentation_order(
    const contenttree::ContentTree& tree, int level,
    const std::function<std::uint32_t(net::SimDuration)>& packet_of);

}  // namespace lod::edge
