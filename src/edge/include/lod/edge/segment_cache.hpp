#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/net/payload.hpp"
#include "lod/obs/metrics.hpp"

/// \file segment_cache.hpp
/// The edge tier's media store: a byte-budgeted LRU over ASF packet ranges.
///
/// The unit of caching is a SEGMENT — a fixed-length run of consecutive data
/// packets of one published file, keyed by (file, segment index). Segments
/// are what the edge fetches from the origin on a miss and what the
/// prefetcher warms ahead of the playhead, so cache, transfer and prefetch
/// all speak the same granularity.
///
/// Entries hold each packet's SERIALIZED wire bytes as refcounted
/// `net::Payload` slices of the origin's fetch response — the edge never
/// parses media it only relays, and serving a packet to N sessions costs
/// zero byte copies.
///
/// Accounting is published as `lod.edge.cache.*{host}` registry series:
/// hits / misses (serve-path lookups only — prefetch probes use `contains`
/// and do not skew the hit rate), evictions, and resident bytes.

namespace lod::edge {

/// Identifies one cached packet range.
struct SegmentKey {
  std::string file;
  std::uint32_t segment{0};

  bool operator==(const SegmentKey&) const = default;
};

struct SegmentKeyHash {
  std::size_t operator()(const SegmentKey& k) const {
    return std::hash<std::string>{}(k.file) * 1315423911u ^ k.segment;
  }
};

/// Byte-budgeted LRU cache of packet ranges.
class SegmentCache {
 public:
  /// \p registry/\p labels wire the `lod.edge.cache.*` series; a null
  /// registry (tests exercising pure eviction logic) keeps the cache silent.
  SegmentCache(std::size_t budget_bytes, obs::MetricsRegistry* registry = nullptr,
               obs::Labels labels = {});

  /// Serve-path lookup: returns the serialized packets and freshens the
  /// entry's LRU position, counting a hit; nullptr counts a miss. The
  /// pointer stays valid until the entry is evicted or replaced.
  const std::vector<net::Payload>* get(const SegmentKey& key);

  /// Prefetch-path probe: no stats, no LRU touch.
  bool contains(const SegmentKey& key) const { return index_.count(key) > 0; }

  /// Insert (or replace) a segment charging \p bytes against the budget,
  /// evicting least-recently-used entries until the budget holds. A segment
  /// larger than the whole budget is not cached at all (it would evict
  /// everything and then be evicted by the next insert anyway).
  void put(SegmentKey key, std::vector<net::Payload> packets,
           std::size_t bytes);

  /// Drop every segment of \p file (e.g. the origin republished it).
  void erase_file(const std::string& file);

  // --- accounting (mirrors the registry series) -------------------------------

  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t budget_bytes() const { return budget_; }
  std::size_t entries() const { return index_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  double hit_rate() const {
    const std::uint64_t n = hits_ + misses_;
    return n == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(n);
  }

  /// Resident segment keys, most recently used first (tests assert eviction
  /// order through this).
  std::vector<SegmentKey> keys_mru_first() const;

 private:
  struct Entry {
    SegmentKey key;
    std::vector<net::Payload> packets;
    std::size_t bytes{0};
  };

  void evict_lru();

  std::size_t budget_;
  std::size_t bytes_used_{0};
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t evictions_{0};
  /// MRU at front. Entries are stable in the list; the map points into it.
  std::list<Entry> lru_;
  std::unordered_map<SegmentKey, std::list<Entry>::iterator, SegmentKeyHash>
      index_;
  obs::Counter m_hits_;
  obs::Counter m_misses_;
  obs::Counter m_evictions_;
  obs::Counter m_inserted_bytes_;
  obs::Gauge m_bytes_;
  obs::Gauge m_entries_;
};

}  // namespace lod::edge
