#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lod/net/transport_base.hpp"
#include "lod/obs/health.hpp"
#include "lod/streaming/selector.hpp"

/// \file replica_selector.hpp
/// Delay-aware replica selection for one client.
///
/// The paper's extended timed Petri net models distributed sites with
/// per-channel delay places (§3); operationally that means the client should
/// open its session at the site whose channel delay place holds the smallest
/// token. This selector keeps a per-site EWMA of observed one-way delay,
/// seeded from the network's static path latency (the propagation floor the
/// §3 model starts from) and updated from live measurements (DESCRIBE and
/// TIMESYNC round trips reported by the player).
///
/// Sites that stop responding are marked down and skipped; the origin is
/// always eligible, so `pick_site`/`failover_from` always have an answer.
/// Series: `lod.edge.selector.*{host}` (+ per-site estimate gauges).

namespace lod::edge {

class ReplicaSelector : public streaming::SiteSelector {
 public:
  /// \p edges may be empty (the selector degenerates to "always origin").
  /// \p alpha is the EWMA gain for new observations.
  ReplicaSelector(net::Transport& net, net::HostId client, net::HostId origin,
                  std::vector<net::HostId> edges, double alpha = 0.25);

  // --- SiteSelector ----------------------------------------------------------

  net::HostId pick_site() override;
  void observe(net::HostId site, net::SimDuration delay) override;
  net::HostId failover_from(net::HostId site) override;

  // --- policy control / introspection ---------------------------------------

  /// Mark a site unresponsive (skipped by pick_site until revived).
  void mark_down(net::HostId site);
  /// Clear a down mark (e.g. the operator restarted the edge).
  void revive(net::HostId site);
  bool is_down(net::HostId site) const;

  /// Consult \p health on every pick: non-origin sites whose SLO rules are
  /// in violation (`site_healthy(site)` false) are demoted — skipped exactly
  /// as if marked down, but they come back on their own once the rules
  /// recover. Pass nullptr to detach. The monitor must outlive the selector
  /// (or be detached first).
  void set_health(const obs::HealthMonitor* health) { health_ = health; }

  /// Current delay estimate; SimDuration::max-like sentinel for unknown sites.
  net::SimDuration estimate(net::HostId site) const;

  net::HostId origin() const { return origin_; }
  const std::vector<net::HostId>& sites() const { return sites_; }
  std::uint64_t failovers() const { return failovers_.value(); }

 private:
  struct SiteState {
    double ewma_us{0.0};
    bool down{false};
    obs::Gauge estimate_us;
    /// Hub clock stamp of the last live delay observation; the
    /// `slo_replica_staleness` rule reads this to flag stale estimates.
    obs::Gauge last_observation_us;
  };

  obs::Hub* hub_;
  net::HostId client_;
  net::HostId origin_;
  double alpha_;
  const obs::HealthMonitor* health_{nullptr};
  std::vector<net::HostId> sites_;  ///< edges first, origin last
  std::unordered_map<net::HostId, SiteState> state_;
  obs::Counter picks_;
  obs::Counter observations_;
  obs::Counter failovers_;
};

}  // namespace lod::edge
