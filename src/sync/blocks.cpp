#include "lod/sync/blocks.hpp"

#include <utility>

namespace lod::sync {

namespace {

// Section markers: cheap structural guards between logical fields (see
// serialize.hpp). Values are arbitrary but stable — they are wire format.
constexpr std::uint32_t kMarkMarking = 0x4d41524bu;  // 'MARK'
constexpr std::uint32_t kMarkFloor = 0x464c4f52u;    // 'FLOR'
constexpr std::uint32_t kMarkCursor = 0x43555253u;   // 'CURS'
constexpr std::uint32_t kMarkReorder = 0x524f5244u;  // 'RORD'
constexpr std::uint32_t kMarkRepair = 0x52455052u;   // 'REPR'
constexpr std::uint32_t kMarkSlide = 0x534c4944u;    // 'SLID'
constexpr std::uint32_t kMarkTrace = 0x54524345u;    // 'TRCE'

void save_cursor(StateWriter& w, const streaming::PlayerSyncCursor& c) {
  w.marker(kMarkCursor);
  w.i64(c.base_pts_us);
  w.i64(c.epoch_local_us);
  w.i64(c.paused_pos_us);
  w.f64(c.rate);
  w.i64(c.next_feed);
  w.i64(c.highest_index);
  w.u32(c.stream_epoch);
}

streaming::PlayerSyncCursor load_cursor(StateReader& r) {
  r.expect_marker(kMarkCursor);
  streaming::PlayerSyncCursor c;
  c.base_pts_us = r.i64();
  c.epoch_local_us = r.i64();
  c.paused_pos_us = r.i64();
  c.rate = r.f64();
  c.next_feed = r.i64();
  c.highest_index = r.i64();
  c.stream_epoch = r.u32();
  return c;
}

}  // namespace

void save_marking(StateWriter& w, const core::Marking& m) {
  w.marker(kMarkMarking);
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const std::uint32_t tokens : m) w.u32(tokens);
}

void load_marking(StateReader& r, core::Marking& m) {
  r.expect_marker(kMarkMarking);
  const std::uint32_t n = r.u32();
  m.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) m[i] = r.u32();
}

void register_marking_block(SessionState& s, std::uint32_t id,
                            std::string name, core::Marking* m) {
  s.register_block(
      id, std::move(name), [m](StateWriter& w) { save_marking(w, *m); },
      [m](StateReader& r) { load_marking(r, *m); });
}

void register_floor_block(SessionState& s, std::uint32_t id, std::string name,
                          ::lod::lod::FloorControl* f) {
  s.register_block(
      id, std::move(name),
      [f](StateWriter& w) {
        const auto st = f->state();
        w.marker(kMarkFloor);
        save_marking(w, st.marking);
        w.u32(static_cast<std::uint32_t>(st.fifo.size()));
        for (const std::string& u : st.fifo) w.str(u);
      },
      [f](StateReader& r) {
        r.expect_marker(kMarkFloor);
        ::lod::lod::FloorControl::State st;
        load_marking(r, st.marking);
        const std::uint32_t n = r.u32();
        st.fifo.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) st.fifo.push_back(r.str());
        f->restore(st);
      });
}

void register_player_block(SessionState& s, std::uint32_t id, std::string name,
                           streaming::Player* p) {
  s.register_block(
      id, std::move(name),
      [p](StateWriter& w) { save_cursor(w, p->sync_cursor()); },
      [p](StateReader& r) { p->restore_sync_cursor(load_cursor(r)); });
}

void register_player_cursor_block(SessionState& s, std::uint32_t id,
                                  std::string name,
                                  streaming::PlayerSyncCursor* c) {
  s.register_block(
      id, std::move(name), [c](StateWriter& w) { save_cursor(w, *c); },
      [c](StateReader& r) { *c = load_cursor(r); });
}

void register_player_reorder_block(SessionState& s, std::uint32_t id,
                                   std::string name, streaming::Player* p) {
  s.register_block(
      id, std::move(name),
      [p](StateWriter& w) {
        const auto snap = p->reorder_snapshot();
        w.marker(kMarkReorder);
        w.i64(snap.next_feed);
        w.i64(snap.repair_total);
        w.u8(snap.eos_received ? 1 : 0);
        w.u32(static_cast<std::uint32_t>(snap.held.size()));
        for (const auto& [index, bytes] : snap.held) {
          w.u32(index);
          w.blob(bytes);
        }
      },
      [p](StateReader& r) {
        r.expect_marker(kMarkReorder);
        streaming::PlayerReorderSnapshot snap;
        snap.next_feed = r.i64();
        snap.repair_total = r.i64();
        snap.eos_received = r.u8() != 0;
        const std::uint32_t n = r.u32();
        snap.held.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          const std::uint32_t index = r.u32();
          snap.held.emplace_back(index, r.blob());
        }
        p->restore_reorder(snap);
      });
}

void register_player_repair_block(SessionState& s, std::uint32_t id,
                                  std::string name, streaming::Player* p) {
  s.register_block(
      id, std::move(name),
      [p](StateWriter& w) {
        const auto snap = p->repair_snapshot();
        w.marker(kMarkRepair);
        w.i64(snap.highest_index);
        w.i64(snap.max_index_seen);
        w.u64(snap.repairs_requested);
        w.u64(snap.repairs_received);
        w.u32(static_cast<std::uint32_t>(snap.received.size()));
        for (const std::uint32_t index : snap.received) w.u32(index);
        w.u32(static_cast<std::uint32_t>(snap.nacks.size()));
        for (const auto& [index, attempts] : snap.nacks) {
          w.u32(index);
          w.u8(attempts);
        }
      },
      [p](StateReader& r) {
        r.expect_marker(kMarkRepair);
        streaming::PlayerRepairSnapshot snap;
        snap.highest_index = r.i64();
        snap.max_index_seen = r.i64();
        snap.repairs_requested = r.u64();
        snap.repairs_received = r.u64();
        const std::uint32_t nr = r.u32();
        snap.received.reserve(nr);
        for (std::uint32_t i = 0; i < nr; ++i) snap.received.push_back(r.u32());
        const std::uint32_t nn = r.u32();
        snap.nacks.reserve(nn);
        for (std::uint32_t i = 0; i < nn; ++i) {
          const std::uint32_t index = r.u32();
          snap.nacks.emplace_back(index, r.u8());
        }
        p->restore_repair(snap);
      });
}

void register_player_slide_cache_block(SessionState& s, std::uint32_t id,
                                       std::string name,
                                       streaming::Player* p) {
  s.register_block(
      id, std::move(name),
      [p](StateWriter& w) {
        const auto snap = p->slide_cache_snapshot();
        w.marker(kMarkSlide);
        w.u32(static_cast<std::uint32_t>(snap.cached.size()));
        for (const std::string& url : snap.cached) w.str(url);
      },
      [p](StateReader& r) {
        r.expect_marker(kMarkSlide);
        streaming::PlayerSlideCacheSnapshot snap;
        const std::uint32_t n = r.u32();
        snap.cached.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) snap.cached.push_back(r.str());
        p->restore_slide_cache(snap);
      });
}

void register_player_trace_block(SessionState& s, std::uint32_t id,
                                 std::string name, streaming::Player* p) {
  s.register_block(
      id, std::move(name),
      [p](StateWriter& w) {
        w.marker(kMarkTrace);
        w.u64(p->session_context().trace_id);
        w.u64(p->session_root_span());
      },
      [p](StateReader& r) {
        r.expect_marker(kMarkTrace);
        const std::uint64_t trace_id = r.u64();
        const std::uint64_t root_span = r.u64();
        p->restore_session_trace(trace_id, root_span);
      });
}

void register_player_session_blocks(SessionState& s, streaming::Player* p) {
  register_player_block(s, kBlockPlayerCursor, "player.cursor", p);
  register_player_reorder_block(s, kBlockPlayerReorder, "player.reorder", p);
  register_player_repair_block(s, kBlockPlayerRepair, "player.repair", p);
  register_player_slide_cache_block(s, kBlockPlayerSlideCache, "player.slides",
                                    p);
  register_player_trace_block(s, kBlockPlayerTrace, "player.trace", p);
}

}  // namespace lod::sync
