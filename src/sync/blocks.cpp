#include "lod/sync/blocks.hpp"

#include <utility>

namespace lod::sync {

namespace {

// Section markers: cheap structural guards between logical fields (see
// serialize.hpp). Values are arbitrary but stable — they are wire format.
constexpr std::uint32_t kMarkMarking = 0x4d41524bu;  // 'MARK'
constexpr std::uint32_t kMarkFloor = 0x464c4f52u;    // 'FLOR'
constexpr std::uint32_t kMarkCursor = 0x43555253u;   // 'CURS'

void save_cursor(StateWriter& w, const streaming::PlayerSyncCursor& c) {
  w.marker(kMarkCursor);
  w.i64(c.base_pts_us);
  w.i64(c.epoch_local_us);
  w.i64(c.paused_pos_us);
  w.f64(c.rate);
  w.i64(c.next_feed);
  w.i64(c.highest_index);
  w.u32(c.stream_epoch);
}

streaming::PlayerSyncCursor load_cursor(StateReader& r) {
  r.expect_marker(kMarkCursor);
  streaming::PlayerSyncCursor c;
  c.base_pts_us = r.i64();
  c.epoch_local_us = r.i64();
  c.paused_pos_us = r.i64();
  c.rate = r.f64();
  c.next_feed = r.i64();
  c.highest_index = r.i64();
  c.stream_epoch = r.u32();
  return c;
}

}  // namespace

void save_marking(StateWriter& w, const core::Marking& m) {
  w.marker(kMarkMarking);
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const std::uint32_t tokens : m) w.u32(tokens);
}

void load_marking(StateReader& r, core::Marking& m) {
  r.expect_marker(kMarkMarking);
  const std::uint32_t n = r.u32();
  m.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) m[i] = r.u32();
}

void register_marking_block(SessionState& s, std::uint32_t id,
                            std::string name, core::Marking* m) {
  s.register_block(
      id, std::move(name), [m](StateWriter& w) { save_marking(w, *m); },
      [m](StateReader& r) { load_marking(r, *m); });
}

void register_floor_block(SessionState& s, std::uint32_t id, std::string name,
                          ::lod::lod::FloorControl* f) {
  s.register_block(
      id, std::move(name),
      [f](StateWriter& w) {
        const auto st = f->state();
        w.marker(kMarkFloor);
        save_marking(w, st.marking);
        w.u32(static_cast<std::uint32_t>(st.fifo.size()));
        for (const std::string& u : st.fifo) w.str(u);
      },
      [f](StateReader& r) {
        r.expect_marker(kMarkFloor);
        ::lod::lod::FloorControl::State st;
        load_marking(r, st.marking);
        const std::uint32_t n = r.u32();
        st.fifo.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) st.fifo.push_back(r.str());
        f->restore(st);
      });
}

void register_player_block(SessionState& s, std::uint32_t id, std::string name,
                           streaming::Player* p) {
  s.register_block(
      id, std::move(name),
      [p](StateWriter& w) { save_cursor(w, p->sync_cursor()); },
      [p](StateReader& r) { p->restore_sync_cursor(load_cursor(r)); });
}

void register_player_cursor_block(SessionState& s, std::uint32_t id,
                                  std::string name,
                                  streaming::PlayerSyncCursor* c) {
  s.register_block(
      id, std::move(name), [c](StateWriter& w) { save_cursor(w, *c); },
      [c](StateReader& r) { *c = load_cursor(r); });
}

}  // namespace lod::sync
