#include "lod/sync/agent.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace lod::sync {

namespace {

/// 'LSYG' little-endian — sync gossip/delta datagrams.
constexpr std::uint32_t kGossipMagic = 0x4759534cu;
constexpr std::uint8_t kGossipVersion = 1;

enum class MsgType : std::uint8_t {
  kEpoch = 1,         ///< {epoch, checksum, local stamp, structure, authority}
  kDeltaRequest = 2,  ///< {epoch, structure, per-block sums}
  kDeltaReply = 3,    ///< {epoch, state image}
};

}  // namespace

SyncAgent::SyncAgent(net::Transport& net, net::HostId host,
                     SessionState& state, SyncConfig cfg)
    : net_(net),
      host_(host),
      state_(state),
      cfg_(cfg),
      sock_(net, host, cfg.port) {
  if (cfg_.epoch_interval.us <= 0) cfg_.epoch_interval = net::msec(500);
  detector_ = DesyncDetector({cfg_.persistent_after});
  sock_.on_receive([this](const net::Datagram& d) { handle_datagram(d); });

  auto& reg = net_.obs().metrics();
  const obs::Labels l{{"host", std::to_string(host_)}};
  m_epochs_ = reg.counter("lod.sync.epochs", l);
  m_gossip_tx_ = reg.counter("lod.sync.gossip_tx", l);
  m_gossip_rx_ = reg.counter("lod.sync.gossip_rx", l);
  m_mismatch_ = reg.counter("lod.sync.mismatch", l);
  m_transient_ = reg.counter("lod.sync.desync_transient", l);
  m_persistent_ = reg.counter("lod.sync.desync_persistent", l);
  m_resync_request_ = reg.counter("lod.sync.resync_requests", l);
  m_resync_serve_ = reg.counter("lod.sync.resync_serves", l);
  m_resync_ok_ = reg.counter("lod.sync.resync_ok", l);
  m_resync_fail_ = reg.counter("lod.sync.resync_fail", l);
  m_delta_bytes_ = reg.counter("lod.sync.delta_bytes", l);
  m_blocks_transferred_ = reg.counter("lod.sync.blocks_transferred", l);
  m_malformed_ = reg.counter("lod.sync.malformed", l);
  m_stale_ = reg.counter("lod.sync.stale", l);
  m_structure_mismatch_ = reg.counter("lod.sync.structure_mismatch", l);
  m_full_bytes_ = reg.gauge("lod.sync.full_state_bytes", l);
  m_drift_us_ = reg.histogram("lod.sync.drift_us", l);
}

SyncAgent::~SyncAgent() { stop(); }

void SyncAgent::add_peer(net::HostId h, net::Port port) {
  const net::Port p = port == 0 ? cfg_.port : port;
  const auto it = std::find_if(
      peers_.begin(), peers_.end(),
      [&](const PeerAddr& a) { return a.host == h && a.port == p; });
  if (it == peers_.end()) peers_.push_back({h, p});
}

void SyncAgent::start() {
  if (running_) return;
  running_ = true;
  if (!ctx_.valid()) ctx_ = net_.obs().trace().make_trace();
  arm_epoch_timer();
}

void SyncAgent::stop() {
  running_ = false;
  if (epoch_timer_) {
    net_.cancel(*epoch_timer_);
    epoch_timer_.reset();
  }
}

void SyncAgent::arm_epoch_timer() {
  // Absolute boundaries: all sites tick at multiples of the interval, so an
  // epoch NUMBER means the same instant everywhere with no negotiation.
  const std::int64_t interval = cfg_.epoch_interval.us;
  const std::int64_t now = net_.now().us;
  const std::int64_t next = (now / interval + 1) * interval;
  epoch_timer_ = net_.schedule_at(net::SimTime{next}, [this] {
    epoch_timer_.reset();
    if (!running_) return;
    epoch_tick();
    if (running_) arm_epoch_timer();
  });
}

void SyncAgent::epoch_tick() {
  const std::int64_t interval = cfg_.epoch_interval.us;
  const std::uint64_t epoch =
      static_cast<std::uint64_t>(net_.now().us / interval);
  last_epoch_ = epoch;
  ticked_any_ = true;

  state_.refresh();
  const std::int64_t stamp = net_.local_now(host_).us;
  history_.push_back({epoch, state_.checksum(), stamp});
  while (history_.size() > cfg_.history) history_.pop_front();

  ++stats_.epochs;
  m_epochs_.inc();
  m_full_bytes_.set(static_cast<std::int64_t>(state_.full_size_bytes()));

  if (cfg_.authoritative && !peers_.empty()) {
    net::ByteWriter w;
    w.u32(kGossipMagic);
    w.u8(kGossipVersion);
    w.u8(static_cast<std::uint8_t>(MsgType::kEpoch));
    w.u64(epoch);
    w.u64(state_.checksum());
    w.i64(stamp);
    w.u64(cfg_.structure);
    w.u8(1);
    broadcast(std::move(w).take());
  }

  // A report that raced ahead of our tick can be judged now.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first <= epoch) {
      handle_epoch_report(it->first, it->second);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void SyncAgent::broadcast(const std::vector<std::byte>& msg) {
  for (const PeerAddr& p : peers_) {
    sock_.send_to(p.host, p.port, net::Payload(msg));
    ++stats_.gossip_tx;
    m_gossip_tx_.inc();
  }
}

void SyncAgent::handle_datagram(const net::Datagram& d) {
  if (!running_) return;
  try {
    net::ByteReader r(d.payload.view());
    if (r.u32() != kGossipMagic || r.u8() != kGossipVersion) {
      ++stats_.malformed;
      m_malformed_.inc();
      return;
    }
    switch (static_cast<MsgType>(r.u8())) {
      case MsgType::kEpoch: {
        ++stats_.gossip_rx;
        m_gossip_rx_.inc();
        const std::uint64_t epoch = r.u64();
        EpochReport rep;
        rep.checksum = r.u64();
        rep.local_stamp_us = r.i64();
        const std::uint64_t structure = r.u64();
        const bool authoritative = r.u8() != 0;
        // Replicas act on the authority's view only; our own role flag can
        // flip at runtime when the floor moves, so check per message.
        if (cfg_.authoritative || !authoritative) return;
        if (structure != cfg_.structure) {
          ++stats_.structure_mismatches;
          m_structure_mismatch_.inc();
          return;
        }
        rep.from = d.src;
        rep.from_port = d.src_port;
        handle_epoch_report(epoch, rep);
        return;
      }
      case MsgType::kDeltaRequest: {
        handle_delta_request(d, r);
        return;
      }
      case MsgType::kDeltaReply: {
        handle_delta_reply(r);
        return;
      }
    }
    ++stats_.malformed;
    m_malformed_.inc();
  } catch (const std::exception&) {
    // Truncated/corrupt sync datagram: count and drop, never crash —
    // the same contract the transport's own frame parsers honor.
    ++stats_.malformed;
    m_malformed_.inc();
  }
}

const SyncAgent::EpochRecord* SyncAgent::history_find(
    std::uint64_t epoch) const {
  for (const EpochRecord& rec : history_) {
    if (rec.epoch == epoch) return &rec;
  }
  return nullptr;
}

void SyncAgent::handle_epoch_report(std::uint64_t epoch,
                                    const EpochReport& rep) {
  if (history_find(epoch) != nullptr) {
    compare(epoch, rep);
    return;
  }
  if (!ticked_any_ || epoch > last_epoch_) {
    // Our own boundary hasn't fired yet (gossip beat the timer, or we
    // started mid-session): hold the report until it does.
    pending_[epoch] = rep;
    if (pending_.size() > cfg_.history) pending_.erase(pending_.begin());
    return;
  }
  ++stats_.stale;
  m_stale_.inc();
}

void SyncAgent::compare(std::uint64_t epoch, const EpochReport& rep) {
  const EpochRecord* mine = history_find(epoch);
  if (mine == nullptr) return;

  const std::int64_t drift =
      std::abs(mine->local_stamp_us - rep.local_stamp_us);
  m_drift_us_.observe(drift);

  const bool match = mine->checksum == rep.checksum;
  if (!match) {
    ++stats_.mismatches;
    m_mismatch_.inc();
  }
  const DesyncDetector::Verdict verdict = detector_.observe(epoch, match);
  auto& flight = net_.obs().flight();
  flight.record(obs::FlightType::kSyncVerdict,
                static_cast<std::uint32_t>(rep.from), epoch,
                static_cast<std::uint64_t>(verdict));
  switch (verdict) {
    case DesyncDetector::Verdict::kInSync:
      break;
    case DesyncDetector::Verdict::kTransient:
      ++stats_.transient;
      m_transient_.inc();
      break;
    case DesyncDetector::Verdict::kPersistent:
      ++stats_.persistent;
      m_persistent_.inc();
      // (Re)request unless a request for this same epoch is already out:
      // a lost request or reply heals itself at the next epoch, when the
      // still-persistent verdict lands here again with a later epoch.
      if (!resync_inflight_ || *resync_inflight_ < epoch) {
        // Dump before the resync starts: the journal at this instant is
        // the evidence of HOW we desynced (one dump per resync attempt,
        // not per persistent epoch).
        flight.trigger_dump("sync.persistent_desync");
        send_resync_request(epoch, {rep.from, rep.from_port});
      }
      break;
  }
}

void SyncAgent::send_resync_request(std::uint64_t epoch, const PeerAddr& to) {
  resync_inflight_ = epoch;
  ++stats_.resync_requests;
  m_resync_request_.inc();

  auto& trace = net_.obs().trace();
  if (resync_span_ == 0) {
    resync_span_ = trace.begin_span(ctx_, "sync.resync", host_,
                                    static_cast<std::int64_t>(epoch),
                                    detector_.streak());
  }

  net::ByteWriter w;
  w.u32(kGossipMagic);
  w.u8(kGossipVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kDeltaRequest));
  w.u64(epoch);
  w.u64(cfg_.structure);
  const std::vector<BlockSum> sums = state_.block_sums();
  w.u32(static_cast<std::uint32_t>(sums.size()));
  for (const BlockSum& s : sums) {
    w.u32(s.id);
    w.u64(s.sum);
  }
  sock_.send_to(to.host, to.port, net::Payload(std::move(w).take()));
}

void SyncAgent::handle_delta_request(const net::Datagram& d,
                                     net::ByteReader& r) {
  const std::uint64_t epoch = r.u64();
  const std::uint64_t structure = r.u64();
  if (!cfg_.authoritative) return;  // only the authority serves state
  if (structure != cfg_.structure) {
    ++stats_.structure_mismatches;
    m_structure_mismatch_.inc();
    return;
  }
  std::vector<BlockSum> peer;
  const std::uint32_t n = r.u32();
  peer.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    BlockSum s;
    s.id = r.u32();
    s.sum = r.u64();
    peer.push_back(s);
  }

  // Serve the CURRENT state, not epoch-e state: the requester wants to
  // converge on now, and the next epoch's gossip verifies it did.
  state_.refresh();
  const std::vector<std::byte> image = state_.serialize_delta(peer);
  ++stats_.resync_serves;
  m_resync_serve_.inc();
  stats_.delta_bytes += image.size();
  m_delta_bytes_.inc(image.size());

  net::ByteWriter w;
  w.u32(kGossipMagic);
  w.u8(kGossipVersion);
  w.u8(static_cast<std::uint8_t>(MsgType::kDeltaReply));
  w.u64(epoch);
  w.blob(image);
  sock_.send_to(d.src, d.src_port, net::Payload(std::move(w).take()));
}

void SyncAgent::handle_delta_reply(net::ByteReader& r) {
  const std::uint64_t epoch = r.u64();
  const std::vector<std::byte> image = r.blob();
  if (!resync_inflight_) return;  // duplicate or long-lost reply
  resync_inflight_.reset();

  const SessionState::ApplyResult res = state_.apply(image);
  stats_.delta_bytes += res.bytes;
  m_delta_bytes_.inc(res.bytes);
  stats_.blocks_transferred += res.blocks_applied;
  m_blocks_transferred_.inc(res.blocks_applied);

  auto& trace = net_.obs().trace();
  if (res.ok && res.checksum_match) {
    ++stats_.resync_ok;
    m_resync_ok_.inc();
    detector_.note_resynced();
    if (resync_span_ != 0) {
      trace.end_span(ctx_, resync_span_, "sync.resync", host_,
                     static_cast<std::int64_t>(res.blocks_applied),
                     static_cast<std::int64_t>(res.bytes));
      resync_span_ = 0;
    }
    // Journal the heal and dump again: this second journal covers the
    // whole recovery (persistent verdict -> resync span -> delta applied),
    // which is what the storm test asserts end-to-end.
    auto& flight = net_.obs().flight();
    flight.record(obs::FlightType::kResync, static_cast<std::uint32_t>(host_),
                  epoch, res.blocks_applied);
    flight.trigger_dump("sync.resync_complete");
    if (on_resync_) on_resync_(epoch, res.blocks_applied);
  } else if (res.ok) {
    // Blocks landed but the authority moved on while the delta was in
    // flight (its trailing checksum names a state we can't reach from
    // here). Not a failure: the next epoch either matches or re-requests.
    ++stats_.resync_fail;
    m_resync_fail_.inc();
  } else {
    ++stats_.resync_fail;
    m_resync_fail_.inc();
  }
}

}  // namespace lod::sync
