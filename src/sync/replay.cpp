#include "lod/sync/replay.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>

namespace lod::sync {

namespace {

constexpr std::uint32_t kMarkInputs = 0x494e5054u;  // 'INPT'

/// The canonical journal order: session-major, then time, then kind —
/// exactly the order `LoadGen::planned_inputs` emits, so a recorded journal
/// compares equal to the plan it came from.
void sort_inputs(std::vector<::lod::lod::SessionInput>& v) {
  std::sort(v.begin(), v.end(), [](const ::lod::lod::SessionInput& a,
                                   const ::lod::lod::SessionInput& b) {
    return std::tuple(a.session, a.t_us, static_cast<std::uint8_t>(a.kind),
                      a.arg_us) < std::tuple(b.session, b.t_us,
                                             static_cast<std::uint8_t>(b.kind),
                                             b.arg_us);
  });
}

}  // namespace

SessionRecorder::SessionRecorder()
    : flight_(obs::FlightRecorder::Config{.lanes = 1, .capacity = 1u << 15}) {}

void SessionRecorder::record(const ::lod::lod::SessionInput& in) {
  flight_.record_at(in.t_us, obs::FlightType::kInput, in.session,
                    static_cast<std::uint64_t>(in.kind),
                    static_cast<std::uint64_t>(in.arg_us), /*lane=*/0);
}

std::function<void(const ::lod::lod::SessionInput&)> SessionRecorder::tap() {
  return [this](const ::lod::lod::SessionInput& in) { record(in); };
}

std::vector<::lod::lod::SessionInput> SessionRecorder::inputs() const {
  std::vector<::lod::lod::SessionInput> out;
  for (const obs::FlightEvent& e : flight_.events(/*lane=*/0)) {
    if (e.type != obs::FlightType::kInput) continue;
    ::lod::lod::SessionInput in;
    in.t_us = e.t;
    in.session = e.actor;
    in.kind = static_cast<::lod::lod::InputKind>(e.a);
    in.arg_us = static_cast<std::int64_t>(e.b);
    out.push_back(in);
  }
  return out;
}

std::uint64_t SessionRecorder::dropped() const { return flight_.dropped(); }

std::vector<std::byte> serialize_input_log(const InputLog& log) {
  StateWriter w;
  w.u32(kInputLogMagic);
  w.u16(kInputLogVersion);
  w.u64(log.root_seed);
  w.u32(log.sessions);
  w.marker(kMarkInputs);
  w.u32(static_cast<std::uint32_t>(log.records.size()));
  for (const ::lod::lod::SessionInput& in : log.records) {
    w.i64(in.t_us);
    w.u32(in.session);
    w.u8(static_cast<std::uint8_t>(in.kind));
    w.i64(in.arg_us);
  }
  const std::uint64_t sum = checksum64(w.bytes());
  w.u64(sum);
  return std::move(w).take();
}

InputLog parse_input_log(std::span<const std::byte> bytes) {
  if (bytes.size() < 8) {
    throw std::runtime_error("InputLog: truncated (no checksum)");
  }
  const auto body = bytes.first(bytes.size() - 8);
  StateReader tail(bytes.subspan(bytes.size() - 8));
  if (tail.u64() != checksum64(body)) {
    throw std::runtime_error("InputLog: checksum mismatch");
  }
  StateReader r(body);
  if (r.u32() != kInputLogMagic) {
    throw std::runtime_error("InputLog: bad magic");
  }
  const std::uint16_t version = r.u16();
  if (version != kInputLogVersion) {
    throw std::runtime_error("InputLog: unsupported version " +
                             std::to_string(version));
  }
  InputLog log;
  log.root_seed = r.u64();
  log.sessions = r.u32();
  r.expect_marker(kMarkInputs);
  const std::uint32_t n = r.u32();
  log.records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ::lod::lod::SessionInput in;
    in.t_us = r.i64();
    in.session = r.u32();
    in.kind = static_cast<::lod::lod::InputKind>(r.u8());
    in.arg_us = r.i64();
    log.records.push_back(in);
  }
  return log;
}

RecordedRun record_loadgen_run(const ::lod::lod::WorkloadSpec& spec,
                               std::size_t shards, std::uint64_t root_seed,
                               bool enable_trace) {
  const std::size_t n = shards == 0 ? 1 : shards;
  // One recorder per shard: flight lanes are single-writer, and the shard
  // bodies run on their own worker threads.
  std::vector<std::unique_ptr<SessionRecorder>> recorders;
  recorders.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    recorders.push_back(std::make_unique<SessionRecorder>());
  }

  net::ShardedRunner runner(shards, root_seed, enable_trace);
  RecordedRun out;
  out.result = runner.run([&](net::ShardEnv& env) {
    ::lod::lod::LoadGen gen(env.sim, spec, root_seed, env.shard,
                            env.shard_count);
    gen.set_input_tap(recorders[env.shard]->tap());
    gen.run();
  });

  out.log.root_seed = root_seed;
  out.log.sessions = static_cast<std::uint32_t>(spec.sessions);
  for (const auto& rec : recorders) {
    if (rec->dropped() != 0) {
      throw std::runtime_error("record_loadgen_run: journal ring overflowed");
    }
    auto ins = rec->inputs();
    out.log.records.insert(out.log.records.end(), ins.begin(), ins.end());
  }
  sort_inputs(out.log.records);
  return out;
}

net::ShardedResult replay_loadgen_run(const ::lod::lod::WorkloadSpec& spec,
                                      std::size_t shards, const InputLog& log,
                                      bool enable_trace) {
  net::ShardedRunner runner(shards, log.root_seed, enable_trace);
  return runner.run([&](net::ShardEnv& env) {
    ::lod::lod::LoadGen gen(env.sim, spec, log.root_seed, env.shard,
                            env.shard_count);
    gen.run(log.records);
  });
}

}  // namespace lod::sync
