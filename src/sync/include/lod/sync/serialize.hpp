#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "lod/net/bytes.hpp"

/// \file serialize.hpp
/// Versioned binary state serialization for the sync layer (ROADMAP item 3,
/// the foundation item 4's snapshot/migration builds on).
///
/// `StateWriter` / `StateReader` follow the netplay-style serialization
/// idiom: a flat little-endian byte stream of fixed-width fields, with
/// explicit structural MARKERS between sections so a reader that drifts out
/// of phase with its writer fails loudly at the next marker instead of
/// silently reinterpreting bytes. Determinism is the whole point — the same
/// state must serialize to the same bytes on every site and on every pass,
/// because per-block checksums over these bytes are what desync detection
/// compares across machines (state.hpp).
///
/// The writers/readers are thin layers over `net::ByteWriter`/`ByteReader`;
/// every read is bounds-checked and truncated input throws
/// `std::out_of_range` (never undefined behaviour), exactly like the
/// transport's own codecs.

namespace lod::sync {

/// FNV-1a 64-bit over a byte span — the cheap rolling checksum sync epochs
/// gossip between sites. Not cryptographic; collision-resistant enough to
/// flag replica drift (a false match self-corrects at the next epoch).
inline std::uint64_t checksum64(std::span<const std::byte> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

/// Fold one 64-bit value into a running checksum (combining per-block sums
/// into a session checksum in block-id order).
inline std::uint64_t checksum_combine(std::uint64_t seed, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    seed ^= (v >> (8 * i)) & 0xff;
    seed *= 1099511628211ull;
  }
  return seed;
}

/// Append-only serializer for one state block.
class StateWriter {
 public:
  void u8(std::uint8_t v) { w_.u8(v); }
  void u16(std::uint16_t v) { w_.u16(v); }
  void u32(std::uint32_t v) { w_.u32(v); }
  void u64(std::uint64_t v) { w_.u64(v); }
  void i64(std::int64_t v) { w_.i64(v); }
  void f64(double v) { w_.f64(v); }
  void str(std::string_view s) { w_.str(s); }
  void blob(std::span<const std::byte> b) { w_.blob(b); }
  void raw(std::span<const std::byte> b) { w_.raw(b); }

  /// Structural guard: write a section tag the reader must consume with
  /// `expect_marker` — the serialization analogue of an assert.
  void marker(std::uint32_t tag) { w_.u32(tag); }

  std::size_t size() const { return w_.size(); }
  const std::vector<std::byte>& bytes() const& { return w_.bytes(); }
  std::vector<std::byte> take() && { return std::move(w_).take(); }

 private:
  net::ByteWriter w_;
};

/// Bounds-checked deserializer over a borrowed byte span.
class StateReader {
 public:
  explicit StateReader(std::span<const std::byte> data) : r_(data) {}

  std::uint8_t u8() { return r_.u8(); }
  std::uint16_t u16() { return r_.u16(); }
  std::uint32_t u32() { return r_.u32(); }
  std::uint64_t u64() { return r_.u64(); }
  std::int64_t i64() { return r_.i64(); }
  double f64() { return r_.f64(); }
  std::string str() { return r_.str(); }
  std::vector<std::byte> blob() { return r_.blob(); }
  std::span<const std::byte> raw(std::size_t n) { return r_.raw(n); }

  /// Consume a marker written by `StateWriter::marker`; throws
  /// `std::runtime_error` when the stream is out of phase.
  void expect_marker(std::uint32_t tag) {
    const std::uint32_t got = r_.u32();
    if (got != tag) {
      throw std::runtime_error("StateReader: marker mismatch (expected " +
                               std::to_string(tag) + ", got " +
                               std::to_string(got) + ")");
    }
  }

  std::size_t remaining() const { return r_.remaining(); }
  bool done() const { return r_.done(); }

 private:
  net::ByteReader r_;
};

}  // namespace lod::sync
