#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "lod/lod/loadgen.hpp"
#include "lod/net/sharded_runner.hpp"
#include "lod/obs/flight.hpp"
#include "lod/sync/serialize.hpp"

/// \file replay.hpp
/// Deterministic record-replay for LoadGen runs (ROADMAP item 4, second
/// half). A run's nondeterminism lives entirely in its input script — the
/// simulator itself is deterministic given (seed, inputs) — so journaling
/// every `SessionInput` as it is applied, then handing the journal back to
/// `LoadGen::run(script)`, reproduces the run byte-identically: the replay's
/// merged snapshot equals the original's.
///
/// The journal rides the obs flight-recorder machinery (`FlightType::kInput`
/// events in a private single-lane ring), so recording costs the same
/// handful of relaxed stores as any other flight event and the journal
/// format is the flight format — a dumped flight JSONL with kInput lines IS
/// a replayable script.

namespace lod::sync {

/// 'LSRJ' little-endian.
constexpr std::uint32_t kInputLogMagic = 0x4a52534cu;
constexpr std::uint16_t kInputLogVersion = 1;

/// Journals one shard's applied inputs. Owns a private FlightRecorder (one
/// lane, 32k slots — comfortably above any plausible per-shard input count)
/// rather than borrowing the hub's, so the dispatch firehose can never
/// evict journal entries. Single-writer, like every flight lane: one
/// recorder per shard.
class SessionRecorder {
 public:
  SessionRecorder();

  /// Journal one input: kInput, actor = global session index, a = kind,
  /// b = argument.
  void record(const ::lod::lod::SessionInput& in);

  /// Adapter for `LoadGen::set_input_tap`.
  std::function<void(const ::lod::lod::SessionInput&)> tap();

  /// The journal decoded back into inputs, oldest first.
  std::vector<::lod::lod::SessionInput> inputs() const;

  /// Entries aged out of the ring (must be 0 for a faithful journal).
  std::uint64_t dropped() const;

 private:
  obs::FlightRecorder flight_;
};

/// A whole run's journal: the seed that reproduces the deployment plus the
/// merged, (session, time)-ordered input list of every shard.
struct InputLog {
  std::uint64_t root_seed{0};
  std::uint32_t sessions{0};  ///< WorkloadSpec::sessions at record time
  std::vector<::lod::lod::SessionInput> records;
};

/// Wire codec ('LSRJ', trailing FNV-1a checksum). `parse_input_log` throws
/// std::runtime_error on bad magic/version/checksum and std::out_of_range
/// on truncation.
std::vector<std::byte> serialize_input_log(const InputLog& log);
InputLog parse_input_log(std::span<const std::byte> bytes);

/// A recorded run: its observable outcome plus the journal that replays it.
struct RecordedRun {
  net::ShardedResult result;
  InputLog log;
};

/// Run \p spec across \p shards workers (like `LoadGen::run_sharded`) with a
/// SessionRecorder tapped into every shard, and merge the journals.
RecordedRun record_loadgen_run(const ::lod::lod::WorkloadSpec& spec,
                               std::size_t shards, std::uint64_t root_seed,
                               bool enable_trace = false);

/// Re-run a journal: every shard executes the FULL input list (inputs for
/// sessions a shard does not own are no-ops there), so the journal needs no
/// re-sharding. With the recorded spec/shards/seed, the returned merged
/// snapshot is byte-identical to the recorded run's.
net::ShardedResult replay_loadgen_run(const ::lod::lod::WorkloadSpec& spec,
                                      std::size_t shards, const InputLog& log,
                                      bool enable_trace = false);

}  // namespace lod::sync
