#pragma once

#include <cstdint>

/// \file detector.hpp
/// Desync classification: one checksum mismatch on a lossy link means very
/// little (an in-flight floor grant lands a few hundred microseconds later
/// on one site than another), but a run of them means the replica genuinely
/// diverged and needs a state transfer. The detector turns the per-epoch
/// match/mismatch stream into a three-way verdict so the sync agent resyncs
/// on persistence, not on noise.

namespace lod::sync {

class DesyncDetector {
 public:
  enum class Verdict : std::uint8_t {
    kInSync,     ///< checksums matched this epoch
    kTransient,  ///< mismatched, but not long enough to act on
    kPersistent  ///< mismatched for >= persistent_after consecutive epochs
  };

  struct Config {
    /// Consecutive mismatched epochs before drift is ruled persistent.
    /// (No default member initializer: an in-class default argument may not
    /// depend on one before the enclosing class is complete.)
    int persistent_after;
  };

  explicit DesyncDetector(Config cfg = Config{3}) : cfg_(cfg) {
    if (cfg_.persistent_after < 1) cfg_.persistent_after = 1;
  }

  /// Record one epoch's comparison. Epochs may arrive with gaps (lost
  /// gossip); only forward progress is recorded — a stale or repeated epoch
  /// returns the current verdict without changing state.
  Verdict observe(std::uint64_t epoch, bool match) {
    if (seen_any_ && epoch <= last_epoch_) return verdict_;
    seen_any_ = true;
    last_epoch_ = epoch;
    if (match) {
      streak_ = 0;
      verdict_ = Verdict::kInSync;
    } else {
      ++streak_;
      verdict_ = streak_ >= cfg_.persistent_after ? Verdict::kPersistent
                                                  : Verdict::kTransient;
    }
    return verdict_;
  }

  /// A completed resync cleared the divergence; restart the streak so the
  /// next mismatch is judged fresh.
  void note_resynced() {
    streak_ = 0;
    verdict_ = Verdict::kInSync;
  }

  int streak() const { return streak_; }
  std::uint64_t last_epoch() const { return last_epoch_; }
  bool desynced() const { return verdict_ == Verdict::kPersistent; }
  Verdict verdict() const { return verdict_; }

 private:
  Config cfg_;
  int streak_{0};
  std::uint64_t last_epoch_{0};
  bool seen_any_{false};
  Verdict verdict_{Verdict::kInSync};
};

}  // namespace lod::sync
