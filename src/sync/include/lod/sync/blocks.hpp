#pragma once

#include <cstdint>
#include <string>

#include "lod/core/petri.hpp"
#include "lod/lod/floor.hpp"
#include "lod/streaming/player.hpp"
#include "lod/sync/state.hpp"

/// \file blocks.hpp
/// Adapters that register the session-critical state of the lower layers as
/// `SessionState` blocks. The providers (core, lod, streaming) know nothing
/// about sync — they expose plain snapshot structs (`core::Marking`,
/// `FloorControl::State`, `streaming::PlayerSyncCursor`) and this file owns
/// the byte layout. Block ids are caller-chosen and must be identical on
/// every site of a session.

namespace lod::sync {

/// Serialize/deserialize a Petri-net marking (bare token vector).
void save_marking(StateWriter& w, const core::Marking& m);
void load_marking(StateReader& r, core::Marking& m);

/// Register \p m (borrowed; must outlive the state) as a block.
void register_marking_block(SessionState& s, std::uint32_t id,
                            std::string name, core::Marking* m);

/// Register a floor-control instance: marking + FIFO request queue. Loads
/// go through `FloorControl::restore`, so a snapshot that does not fit the
/// local net fails the apply instead of corrupting it.
void register_floor_block(SessionState& s, std::uint32_t id, std::string name,
                          ::lod::lod::FloorControl* f);

/// Register a live player's render-timeline cursor. Loads go through
/// `Player::restore_sync_cursor`, which rolls the player forward through
/// buffered script commands when it is mid-playout.
void register_player_block(SessionState& s, std::uint32_t id, std::string name,
                           streaming::Player* p);

/// Register a detached cursor struct (replica bookkeeping, tests).
void register_player_cursor_block(SessionState& s, std::uint32_t id,
                                  std::string name,
                                  streaming::PlayerSyncCursor* c);

}  // namespace lod::sync
