#pragma once

#include <cstdint>
#include <string>

#include "lod/core/petri.hpp"
#include "lod/lod/floor.hpp"
#include "lod/streaming/player.hpp"
#include "lod/sync/state.hpp"

/// \file blocks.hpp
/// Adapters that register the session-critical state of the lower layers as
/// `SessionState` blocks. The providers (core, lod, streaming) know nothing
/// about sync — they expose plain snapshot structs (`core::Marking`,
/// `FloorControl::State`, `streaming::PlayerSyncCursor`) and this file owns
/// the byte layout. Block ids are caller-chosen and must be identical on
/// every site of a session.

namespace lod::sync {

/// Serialize/deserialize a Petri-net marking (bare token vector).
void save_marking(StateWriter& w, const core::Marking& m);
void load_marking(StateReader& r, core::Marking& m);

/// Register \p m (borrowed; must outlive the state) as a block.
void register_marking_block(SessionState& s, std::uint32_t id,
                            std::string name, core::Marking* m);

/// Register a floor-control instance: marking + FIFO request queue. Loads
/// go through `FloorControl::restore`, so a snapshot that does not fit the
/// local net fails the apply instead of corrupting it.
void register_floor_block(SessionState& s, std::uint32_t id, std::string name,
                          ::lod::lod::FloorControl* f);

/// Register a live player's render-timeline cursor. Loads go through
/// `Player::restore_sync_cursor`, which rolls the player forward through
/// buffered script commands when it is mid-playout.
void register_player_block(SessionState& s, std::uint32_t id, std::string name,
                           streaming::Player* p);

/// Register a detached cursor struct (replica bookkeeping, tests).
void register_player_cursor_block(SessionState& s, std::uint32_t id,
                                  std::string name,
                                  streaming::PlayerSyncCursor* c);

/// Register the player's reorder buffer (held packets + feed cursor).
/// Loads go through `Player::restore_reorder`, which drains whatever became
/// contiguous exactly as if the packets had just arrived.
void register_player_reorder_block(SessionState& s, std::uint32_t id,
                                   std::string name, streaming::Player* p);

/// Register the player's pending NACK/repair bookkeeping.
void register_player_repair_block(SessionState& s, std::uint32_t id,
                                  std::string name, streaming::Player* p);

/// Register the player's completed slide-cache references.
void register_player_slide_cache_block(SessionState& s, std::uint32_t id,
                                       std::string name, streaming::Player* p);

/// Register the session's trace identity (trace id + root span), so a
/// restored session keeps emitting spans under the original root.
void register_player_trace_block(SessionState& s, std::uint32_t id,
                                 std::string name, streaming::Player* p);

/// Well-known block ids for a full player session image (the blocks
/// `register_player_session_blocks` registers). Part of the wire contract:
/// every site of a migrating session must agree on them.
inline constexpr std::uint32_t kBlockPlayerCursor = 16;
inline constexpr std::uint32_t kBlockPlayerReorder = 17;
inline constexpr std::uint32_t kBlockPlayerRepair = 18;
inline constexpr std::uint32_t kBlockPlayerSlideCache = 19;
inline constexpr std::uint32_t kBlockPlayerTrace = 20;

/// Register the complete migratable surface of one player under the
/// well-known ids above: render cursor, reorder buffer, repair state, slide
/// cache, trace context.
void register_player_session_blocks(SessionState& s, streaming::Player* p);

}  // namespace lod::sync
