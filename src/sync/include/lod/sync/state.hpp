#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "lod/sync/serialize.hpp"

/// \file state.hpp
/// `SessionState`: the registry of serializable state blocks that together
/// define "the session" for synchronization purposes.
///
/// Each block is a named, numbered unit of session-critical state — the
/// Petri-net marking, the floor FIFO, a player's render-clock cursor — with
/// a save/load callback pair. `refresh()` re-serializes every block and
/// tracks which blocks' bytes changed (dirty tracking), so a delta image
/// ships only the blocks a peer actually disagrees on. The combined
/// checksum over all block bytes (in block-id order) is what sync epochs
/// gossip between sites.
///
/// Block ids are part of the wire contract: every site in a session must
/// register the same blocks under the same ids. The serialized image format
/// ('LSST') is versioned so later PRs (snapshot/migration, record-replay —
/// ROADMAP item 4) can evolve it compatibly.

namespace lod::sync {

/// 'LSST' little-endian.
constexpr std::uint32_t kImageMagic = 0x5453534cu;
constexpr std::uint16_t kImageVersion = 1;
/// Image flag: the image carries only blocks that differed (a delta), not
/// the complete session.
constexpr std::uint8_t kImageFlagDelta = 0x01;

/// One block's identity + checksum, as exchanged in delta negotiations.
struct BlockSum {
  std::uint32_t id{0};
  std::uint64_t sum{0};
};

class SessionState {
 public:
  using SaveFn = std::function<void(StateWriter&)>;
  using LoadFn = std::function<void(StateReader&)>;

  /// Register a block. \p id must be unique within this state and identical
  /// across all sites of the session (throws std::invalid_argument on
  /// duplicates). Blocks are kept in id order regardless of registration
  /// order, so the combined checksum is registration-order independent.
  void register_block(std::uint32_t id, std::string name, SaveFn save,
                      LoadFn load);

  bool has_block(std::uint32_t id) const;
  std::size_t block_count() const { return blocks_.size(); }

  /// Re-serialize every block and update per-block checksums. A block whose
  /// bytes changed since the previous refresh is dirty. Returns the number
  /// of dirty blocks.
  std::size_t refresh();

  /// Combined checksum over all block bytes (id order), as of the last
  /// refresh. This is the value gossiped per sync epoch.
  std::uint64_t checksum() const { return checksum_; }

  /// Per-block checksums as of the last refresh (id order).
  std::vector<BlockSum> block_sums() const;

  /// Ids of the blocks found dirty by the last refresh.
  const std::vector<std::uint32_t>& dirty_blocks() const { return dirty_; }

  /// Size of a full image of the current (last-refreshed) state.
  std::size_t full_size_bytes() const;

  /// Serialize every block (state as of the last refresh).
  std::vector<std::byte> serialize_full() const;

  /// Serialize only the blocks whose checksum differs from \p peer's view
  /// (or that \p peer does not report at all). The trailing checksum is the
  /// FULL-state checksum — the target the receiver must reach after
  /// applying the delta on top of its own state.
  std::vector<std::byte> serialize_delta(std::span<const BlockSum> peer) const;

  struct ApplyResult {
    bool ok{false};              ///< image parsed and all blocks loaded
    bool delta{false};           ///< image was a delta
    bool checksum_match{false};  ///< post-apply state reached the image's
                                 ///< trailing (target) checksum
    std::size_t blocks_applied{0};
    std::size_t bytes{0};  ///< image size
    std::string error;     ///< parse/load failure description
  };

  /// Apply a full or delta image: load each carried block into its
  /// registered target, then refresh and compare against the image's
  /// trailing checksum. Unknown block ids or malformed bytes fail the apply
  /// (blocks loaded before the failure stay loaded — the caller's recovery
  /// is to re-request; the next epoch's checksum exchange self-corrects).
  ApplyResult apply(std::span<const std::byte> image);

 private:
  struct Block {
    std::uint32_t id;
    std::string name;
    SaveFn save;
    LoadFn load;
    std::vector<std::byte> bytes;  ///< serialized form as of last refresh
    std::uint64_t sum{0};
  };

  const Block* find(std::uint32_t id) const;
  Block* find(std::uint32_t id);
  std::vector<std::byte> serialize_blocks(
      const std::vector<const Block*>& blocks, bool delta) const;

  std::vector<Block> blocks_;  ///< sorted by id
  std::vector<std::uint32_t> dirty_;
  std::uint64_t checksum_{0};
};

}  // namespace lod::sync
