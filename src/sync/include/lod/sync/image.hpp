#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lod/streaming/player.hpp"
#include "lod/sync/state.hpp"

/// \file image.hpp
/// `SessionImage`: the freeze-dried form of one lecture session, built for
/// live migration (ROADMAP item 4). An image pairs a small self-describing
/// envelope — what content, which server session, where the playhead is,
/// under which trace — with a full 'LSST' serialization of the session's
/// registered state blocks (`register_player_session_blocks`). The envelope
/// lets an adopting site resume pacing without parsing the block payload;
/// the payload lets a peer `SessionState` reconstruct the complete receive
/// pipeline (reorder buffer, pending repairs, slide cache, trace identity).
///
/// The serialized form ('LSMI') ends in a FNV-1a checksum over everything
/// before it, so a truncated or corrupted image fails parse loudly instead
/// of restoring half a session.

namespace lod::sync {

/// 'LSMI' little-endian.
constexpr std::uint32_t kSessionImageMagic = 0x494d534cu;
constexpr std::uint16_t kSessionImageVersion = 1;

/// One frozen session: envelope + full block-state payload.
struct SessionImage {
  std::string content;
  std::uint64_t session_id{0};
  std::int64_t position_us{0};
  std::uint32_t stream_epoch{0};
  std::uint64_t trace_id{0};
  std::uint64_t root_span{0};
  /// Full 'LSST' image of the session's registered blocks.
  std::vector<std::byte> state;
};

/// Freeze \p p: refresh \p s (which must have the player's blocks
/// registered) and capture envelope + full state payload.
SessionImage capture_session_image(SessionState& s,
                                   const streaming::Player& p);

/// Thaw an image into \p s (and through it, into whatever providers its
/// blocks are registered against). Returns the block-level apply outcome;
/// the envelope is the caller's to act on (reopen, re-pace, adopt).
SessionState::ApplyResult restore_session_image(SessionState& s,
                                                const SessionImage& img);

/// Wire codec. `parse_image` throws std::runtime_error on bad magic,
/// unsupported version, or checksum mismatch (and std::out_of_range on
/// truncation, like every codec in the stack).
std::vector<std::byte> serialize_image(const SessionImage& img);
SessionImage parse_image(std::span<const std::byte> bytes);

/// Install the migration seam: the player's `/edge/migrate` handshake will
/// ship `serialize_image(capture_session_image(s, p))` as its state blob.
/// Both \p p and \p s are borrowed and must outlive the session.
void attach_migration_image(streaming::Player& p, SessionState& s);

}  // namespace lod::sync
