#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "lod/net/transport.hpp"
#include "lod/obs/hub.hpp"
#include "lod/sync/detector.hpp"
#include "lod/sync/state.hpp"

/// \file agent.hpp
/// `SyncAgent`: the per-site sync-epoch driver.
///
/// Every site runs one agent over the `net::Transport` seam (so the same
/// code gossips over the simulated fabric and over real UDP). Time is cut
/// into fixed EPOCHS at absolute boundaries — epoch e covers
/// [e*interval, (e+1)*interval) of transport time — so all sites agree on
/// epoch numbers without any coordination. At each boundary the agent
/// refreshes its `SessionState`, records `{epoch, checksum}` in a short
/// history, and the AUTHORITATIVE site (the floor-holding/teacher site in a
/// WMPS session) gossips its checksum to every peer.
///
/// Replicas compare the authority's checksum for epoch e against their own
/// history entry for e and feed the verdict to a `DesyncDetector`. On
/// persistent drift the replica sends its per-block checksums to the
/// authority, which answers with a DELTA image carrying only the disagreeing
/// blocks — resynchronization without the full re-describe the paper's
/// system would need. Lost request or reply datagrams need no special
/// handling: the next epoch's gossip still mismatches, the verdict is still
/// persistent, and the request is simply sent again.
///
/// Everything is published as `lod.sync.*{host}` series plus parent-linked
/// "sync.resync" spans (a=epoch in, a=blocks/b=bytes out) under the trace
/// context installed with `set_trace_context` (a fresh root otherwise).

namespace lod::sync {

struct SyncConfig {
  /// UDP-style port the agent binds for gossip + delta transfer.
  net::Port port{7100};
  /// Epoch length. All sites of a session must use the same interval.
  net::SimDuration epoch_interval{net::msec(500)};
  /// Consecutive mismatched epochs before a resync is triggered.
  int persistent_after{3};
  /// The authoritative site gossips checksums and serves delta requests;
  /// replicas compare and request. Flippable at runtime when the floor
  /// moves (`set_authoritative`).
  bool authoritative{false};
  /// Structure guard: a stable hash of the replicated machinery (e.g.
  /// `core::PetriNet::structure_hash()`). Sites only compare/serve state
  /// when structures agree — a marking means nothing against a different
  /// net.
  std::uint64_t structure{0};
  /// Epochs of {checksum, stamp} history kept for late-arriving gossip.
  std::size_t history{16};
};

/// Statistics mirror of the agent's `lod.sync.*` counters, for tests and
/// benches that want numbers without a snapshot.
struct SyncStats {
  std::uint64_t epochs{0};
  std::uint64_t gossip_tx{0};
  std::uint64_t gossip_rx{0};
  std::uint64_t mismatches{0};
  std::uint64_t transient{0};
  std::uint64_t persistent{0};
  std::uint64_t resync_requests{0};
  std::uint64_t resync_serves{0};
  std::uint64_t resync_ok{0};
  std::uint64_t resync_fail{0};
  std::uint64_t delta_bytes{0};
  std::uint64_t blocks_transferred{0};
  std::uint64_t malformed{0};
  std::uint64_t stale{0};
  std::uint64_t structure_mismatches{0};
};

class SyncAgent {
 public:
  /// Fired after a successful resync applied \p blocks blocks at \p epoch —
  /// the hook where a player rolls forward through buffered script commands
  /// to catch up with the restored clock.
  using ResyncFn = std::function<void(std::uint64_t epoch, std::size_t blocks)>;

  SyncAgent(net::Transport& net, net::HostId host, SessionState& state,
            SyncConfig cfg = {});
  ~SyncAgent();
  SyncAgent(const SyncAgent&) = delete;
  SyncAgent& operator=(const SyncAgent&) = delete;

  /// Add a gossip peer (port 0 = the configured sync port).
  void add_peer(net::HostId h, net::Port port = 0);

  void set_authoritative(bool on) { cfg_.authoritative = on; }
  bool authoritative() const { return cfg_.authoritative; }

  /// Parent spans under \p ctx (e.g. the classroom session trace).
  void set_trace_context(obs::TraceContext ctx) { ctx_ = ctx; }

  void on_resync(ResyncFn fn) { on_resync_ = std::move(fn); }

  /// Arm the first epoch timer. Without start() the agent is completely
  /// inert — no timers, no sends — which is what keeps sync strictly
  /// opt-in (the sim golden is unchanged when no agent starts).
  void start();
  void stop();
  bool running() const { return running_; }

  std::uint64_t current_epoch() const { return last_epoch_; }
  const DesyncDetector& detector() const { return detector_; }
  const SyncStats& stats() const { return stats_; }
  SessionState& state() { return state_; }
  net::HostId host() const { return host_; }

 private:
  struct EpochRecord {
    std::uint64_t epoch;
    std::uint64_t checksum;
    std::int64_t local_stamp_us;
  };
  struct PeerAddr {
    net::HostId host;
    net::Port port;
  };
  struct EpochReport {
    std::uint64_t checksum;
    std::int64_t local_stamp_us;
    net::HostId from;
    net::Port from_port;
  };

  void arm_epoch_timer();
  void epoch_tick();
  void handle_datagram(const net::Datagram& d);
  void handle_epoch_report(std::uint64_t epoch, const EpochReport& rep);
  /// Compare a (known-local) epoch against the authority's view.
  void compare(std::uint64_t epoch, const EpochReport& rep);
  void send_resync_request(std::uint64_t epoch, const PeerAddr& to);
  void handle_delta_request(const net::Datagram& d, net::ByteReader& r);
  void handle_delta_reply(net::ByteReader& r);
  const EpochRecord* history_find(std::uint64_t epoch) const;
  void broadcast(const std::vector<std::byte>& msg);

  net::Transport& net_;
  net::HostId host_;
  SessionState& state_;
  SyncConfig cfg_;
  net::DatagramSocket sock_;
  DesyncDetector detector_;
  std::vector<PeerAddr> peers_;
  std::deque<EpochRecord> history_;
  /// Authority reports that arrived before our own tick for that epoch.
  std::map<std::uint64_t, EpochReport> pending_;
  std::optional<net::EventId> epoch_timer_;
  bool running_{false};
  std::uint64_t last_epoch_{0};
  bool ticked_any_{false};
  /// Epoch of the resync request in flight (nullopt = none). A lost reply
  /// clears itself: the next persistent verdict for a LATER epoch
  /// re-requests.
  std::optional<std::uint64_t> resync_inflight_;
  ResyncFn on_resync_;
  SyncStats stats_;

  obs::TraceContext ctx_;
  std::uint64_t resync_span_{0};
  obs::Counter m_epochs_;
  obs::Counter m_gossip_tx_;
  obs::Counter m_gossip_rx_;
  obs::Counter m_mismatch_;
  obs::Counter m_transient_;
  obs::Counter m_persistent_;
  obs::Counter m_resync_request_;
  obs::Counter m_resync_serve_;
  obs::Counter m_resync_ok_;
  obs::Counter m_resync_fail_;
  obs::Counter m_delta_bytes_;
  obs::Counter m_blocks_transferred_;
  obs::Counter m_malformed_;
  obs::Counter m_stale_;
  obs::Counter m_structure_mismatch_;
  obs::Gauge m_full_bytes_;
  obs::Histogram m_drift_us_;
};

}  // namespace lod::sync
