#include "lod/sync/image.hpp"

#include <stdexcept>

namespace lod::sync {

namespace {

constexpr std::uint32_t kMarkEnvelope = 0x454e5650u;  // 'ENVP'

}  // namespace

SessionImage capture_session_image(SessionState& s,
                                   const streaming::Player& p) {
  s.refresh();
  SessionImage img;
  img.content = p.content();
  img.session_id = p.session_id();
  img.position_us = p.position().us;
  img.stream_epoch = p.sync_cursor().stream_epoch;
  img.trace_id = p.session_context().trace_id;
  img.root_span = p.session_root_span();
  img.state = s.serialize_full();
  return img;
}

SessionState::ApplyResult restore_session_image(SessionState& s,
                                                const SessionImage& img) {
  return s.apply(img.state);
}

std::vector<std::byte> serialize_image(const SessionImage& img) {
  StateWriter w;
  w.u32(kSessionImageMagic);
  w.u16(kSessionImageVersion);
  w.marker(kMarkEnvelope);
  w.str(img.content);
  w.u64(img.session_id);
  w.i64(img.position_us);
  w.u32(img.stream_epoch);
  w.u64(img.trace_id);
  w.u64(img.root_span);
  w.blob(img.state);
  const std::uint64_t sum = checksum64(w.bytes());
  w.u64(sum);
  return std::move(w).take();
}

SessionImage parse_image(std::span<const std::byte> bytes) {
  if (bytes.size() < 8) {
    throw std::runtime_error("SessionImage: truncated (no checksum)");
  }
  const auto body = bytes.first(bytes.size() - 8);
  StateReader tail(bytes.subspan(bytes.size() - 8));
  if (tail.u64() != checksum64(body)) {
    throw std::runtime_error("SessionImage: checksum mismatch");
  }
  StateReader r(body);
  if (r.u32() != kSessionImageMagic) {
    throw std::runtime_error("SessionImage: bad magic");
  }
  const std::uint16_t version = r.u16();
  if (version != kSessionImageVersion) {
    throw std::runtime_error("SessionImage: unsupported version " +
                             std::to_string(version));
  }
  r.expect_marker(kMarkEnvelope);
  SessionImage img;
  img.content = r.str();
  img.session_id = r.u64();
  img.position_us = r.i64();
  img.stream_epoch = r.u32();
  img.trace_id = r.u64();
  img.root_span = r.u64();
  img.state = r.blob();
  return img;
}

void attach_migration_image(streaming::Player& p, SessionState& s) {
  p.set_session_image_provider([&p, &s] {
    return serialize_image(capture_session_image(s, p));
  });
}

}  // namespace lod::sync
