#include "lod/sync/state.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lod::sync {

void SessionState::register_block(std::uint32_t id, std::string name,
                                  SaveFn save, LoadFn load) {
  if (find(id) != nullptr) {
    throw std::invalid_argument("SessionState: duplicate block id " +
                                std::to_string(id));
  }
  Block b{id, std::move(name), std::move(save), std::move(load), {}, 0};
  const auto pos = std::lower_bound(
      blocks_.begin(), blocks_.end(), id,
      [](const Block& x, std::uint32_t v) { return x.id < v; });
  blocks_.insert(pos, std::move(b));
}

bool SessionState::has_block(std::uint32_t id) const {
  return find(id) != nullptr;
}

const SessionState::Block* SessionState::find(std::uint32_t id) const {
  const auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), id,
      [](const Block& x, std::uint32_t v) { return x.id < v; });
  return (it != blocks_.end() && it->id == id) ? &*it : nullptr;
}

SessionState::Block* SessionState::find(std::uint32_t id) {
  return const_cast<Block*>(std::as_const(*this).find(id));
}

std::size_t SessionState::refresh() {
  dirty_.clear();
  std::uint64_t combined = checksum64({});
  for (Block& b : blocks_) {
    StateWriter w;
    b.save(w);
    std::vector<std::byte> bytes = std::move(w).take();
    const std::uint64_t sum = checksum64(bytes);
    if (bytes != b.bytes) dirty_.push_back(b.id);
    b.bytes = std::move(bytes);
    b.sum = sum;
    combined = checksum_combine(combined, b.id);
    combined = checksum_combine(combined, sum);
  }
  checksum_ = combined;
  return dirty_.size();
}

std::vector<BlockSum> SessionState::block_sums() const {
  std::vector<BlockSum> out;
  out.reserve(blocks_.size());
  for (const Block& b : blocks_) out.push_back({b.id, b.sum});
  return out;
}

std::size_t SessionState::full_size_bytes() const {
  // Header (magic u32, version u16, flags u8, count u32) + per-block
  // (id u32 + blob len u32 + bytes) + trailing checksum u64.
  std::size_t n = 4 + 2 + 1 + 4 + 8;
  for (const Block& b : blocks_) n += 4 + 4 + b.bytes.size();
  return n;
}

std::vector<std::byte> SessionState::serialize_blocks(
    const std::vector<const Block*>& blocks, bool delta) const {
  StateWriter w;
  w.u32(kImageMagic);
  w.u16(kImageVersion);
  w.u8(delta ? kImageFlagDelta : 0);
  w.u32(static_cast<std::uint32_t>(blocks.size()));
  for (const Block* b : blocks) {
    w.u32(b->id);
    w.blob(b->bytes);
  }
  // Always the full-state checksum: for a delta it is the TARGET the
  // receiver must reach, letting it verify convergence without a second
  // round trip.
  w.u64(checksum_);
  return std::move(w).take();
}

std::vector<std::byte> SessionState::serialize_full() const {
  std::vector<const Block*> all;
  all.reserve(blocks_.size());
  for (const Block& b : blocks_) all.push_back(&b);
  return serialize_blocks(all, /*delta=*/false);
}

std::vector<std::byte> SessionState::serialize_delta(
    std::span<const BlockSum> peer) const {
  std::vector<const Block*> changed;
  for (const Block& b : blocks_) {
    const auto it =
        std::find_if(peer.begin(), peer.end(),
                     [&](const BlockSum& s) { return s.id == b.id; });
    if (it == peer.end() || it->sum != b.sum) changed.push_back(&b);
  }
  return serialize_blocks(changed, /*delta=*/true);
}

SessionState::ApplyResult SessionState::apply(
    std::span<const std::byte> image) {
  ApplyResult r;
  r.bytes = image.size();
  try {
    StateReader reader(image);
    if (reader.u32() != kImageMagic) {
      r.error = "bad image magic";
      return r;
    }
    const std::uint16_t version = reader.u16();
    if (version != kImageVersion) {
      r.error = "unsupported image version " + std::to_string(version);
      return r;
    }
    const std::uint8_t flags = reader.u8();
    r.delta = (flags & kImageFlagDelta) != 0;
    const std::uint32_t count = reader.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t id = reader.u32();
      const std::vector<std::byte> bytes = reader.blob();
      Block* b = find(id);
      if (b == nullptr) {
        r.error = "unknown block id " + std::to_string(id);
        return r;
      }
      StateReader block_reader(bytes);
      b->load(block_reader);
      if (!block_reader.done()) {
        r.error = "block " + b->name + ": loader left " +
                  std::to_string(block_reader.remaining()) +
                  " bytes unconsumed";
        return r;
      }
      ++r.blocks_applied;
    }
    const std::uint64_t target = reader.u64();
    if (!reader.done()) {
      r.error = "trailing bytes after image";
      return r;
    }
    refresh();
    r.checksum_match = (checksum_ == target);
    r.ok = true;
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

}  // namespace lod::sync
