#include "lod/net/simulator.hpp"

#include <cstdio>

namespace lod::net {

std::string to_string(SimDuration d) {
  char buf[48];
  const std::int64_t a = d.us < 0 ? -d.us : d.us;
  if (a >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", d.seconds());
  } else if (a >= 1000) {
    std::snprintf(buf, sizeof buf, "%.3fms", d.millis());
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(d.us));
  }
  return buf;
}

std::string to_string(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.6fs", t.seconds());
  return buf;
}

Simulator::Simulator() {
  obs_.set_clock([this] { return now_.us; });
  events_scheduled_ = obs_.metrics().counter("lod.sim.events_scheduled");
  events_fired_ = obs_.metrics().counter("lod.sim.events_fired");
  events_cancelled_ = obs_.metrics().counter("lod.sim.events_cancelled");
}

EventId Simulator::schedule_at(SimTime t, Handler h) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  handlers_.emplace(id, std::move(h));
  events_scheduled_.inc();
  return id;
}

bool Simulator::cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  events_cancelled_.inc();
  return true;
}

bool Simulator::pop_next(Entry& out) {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    auto c = cancelled_.find(e.id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;  // was cancelled; skip
    }
    out = e;
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.at;
  auto it = handlers_.find(e.id);
  // pop_next already filtered cancelled events, so the handler must exist.
  Handler h = std::move(it->second);
  handlers_.erase(it);
  events_fired_.inc();
  h();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime t) {
  std::size_t n = 0;
  Entry e;
  while (!queue_.empty()) {
    // Peek: find earliest non-cancelled without popping irrevocably.
    Entry top = queue_.top();
    if (cancelled_.count(top.id)) {
      queue_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.at > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

std::size_t Simulator::run_steps(std::size_t n) {
  std::size_t done = 0;
  while (done < n && step()) ++done;
  return done;
}

}  // namespace lod::net
