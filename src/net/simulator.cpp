#include "lod/net/simulator.hpp"

#include <cstdio>

namespace lod::net {

std::string to_string(SimDuration d) {
  char buf[48];
  const std::int64_t a = d.us < 0 ? -d.us : d.us;
  if (a >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", d.seconds());
  } else if (a >= 1000) {
    std::snprintf(buf, sizeof buf, "%.3fms", d.millis());
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(d.us));
  }
  return buf;
}

std::string to_string(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.6fs", t.seconds());
  return buf;
}

Simulator::Simulator() {
  obs_.set_clock([this] { return now_.us; });
  events_scheduled_ = obs_.metrics().counter("lod.sim.events_scheduled");
  events_fired_ = obs_.metrics().counter("lod.sim.events_fired");
  events_cancelled_ = obs_.metrics().counter("lod.sim.events_cancelled");
}

EventId Simulator::schedule_at(SimTime t, Handler h) {
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(cells_.size());
    cells_.emplace_back();
  }
  Cell& c = cells_[slot];
  c.h = std::move(h);
  c.live = true;
  ++live_;
  const EventId id = (std::uint64_t{slot} << 32) | c.gen;
  wheel_.schedule(TimingWheel::Item{t.us, next_seq_++, id});
  events_scheduled_.inc();
  return id;
}

void Simulator::free_cell(std::uint32_t slot) {
  Cell& c = cells_[slot];
  c.h = nullptr;
  ++c.gen;
  c.live = false;
  free_.push_back(slot);
  --live_;
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = id_slot(id);
  if (slot >= cells_.size()) return false;
  Cell& c = cells_[slot];
  if (!c.live || c.gen != id_gen(id)) return false;
  // The wheel item stays in place; its generation no longer matches, so it
  // is swept when its slot drains — O(1) cancel without hunting the wheel.
  free_cell(slot);
  events_cancelled_.inc();
  return true;
}

bool Simulator::pop_next(TimingWheel::Item& out) {
  while (wheel_.pop(out)) {
    const Cell& c = cells_[id_slot(out.id)];
    if (c.live && c.gen == id_gen(out.id)) return true;
    // Stale generation: the event was cancelled; sweep and keep looking.
  }
  return false;
}

bool Simulator::step() {
  TimingWheel::Item it;
  if (!pop_next(it)) return false;
  now_ = SimTime{it.at};
  const std::uint32_t slot = id_slot(it.id);
  Handler h = std::move(cells_[slot].h);
  free_cell(slot);
  events_fired_.inc();
  obs_.flight().record_at(now_.us, obs::FlightType::kSimEvent, slot, it.id,
                          static_cast<std::uint64_t>(it.at),
                          obs::FlightRecorder::kLaneDispatch);
  h();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime t) {
  std::size_t n = 0;
  TimingWheel::Item it;
  while (wheel_.pop_due(t.us, it)) {
    const std::uint32_t slot = id_slot(it.id);
    Cell& c = cells_[slot];
    if (!c.live || c.gen != id_gen(it.id)) continue;  // cancelled; sweep
    now_ = SimTime{it.at};
    Handler h = std::move(c.h);
    free_cell(slot);
    events_fired_.inc();
    obs_.flight().record_at(now_.us, obs::FlightType::kSimEvent, slot, it.id,
                            static_cast<std::uint64_t>(it.at),
                            obs::FlightRecorder::kLaneDispatch);
    h();
    ++n;
  }
  if (now_ < t) now_ = t;
  // Keep the wheel's cursor in lockstep with the clock so the next schedule
  // computes distances from the right origin.
  wheel_.fast_forward(t.us);
  return n;
}

std::size_t Simulator::run_steps(std::size_t n) {
  std::size_t done = 0;
  while (done < n && step()) ++done;
  return done;
}

}  // namespace lod::net
