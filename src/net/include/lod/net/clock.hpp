#pragma once

#include <cstdint>

#include "lod/net/time.hpp"

/// \file clock.hpp
/// Per-host clocks with skew and drift.
///
/// The paper's distributed-sync claim (its extended Petri net "describes the
/// details of synchronization across distributed platforms") only matters
/// because real hosts disagree about time. We model each host's clock as
///
///     local(t) = offset + (t - 0) * (1 + drift_ppm * 1e-6)
///
/// where t is true (simulation) time. The LOD player layer can then run NTP-
/// style offset estimation over the simulated network and we can measure how
/// far out of sync two renderers actually are.

namespace lod::net {

/// A skewed, drifting host clock.
class HostClock {
 public:
  HostClock() = default;
  /// \param offset  initial error relative to true time (can be negative).
  /// \param drift_ppm  parts-per-million frequency error; 50 ppm is a typical
  ///                   uncompensated crystal, the paper-era PCs were worse.
  HostClock(SimDuration offset, double drift_ppm)
      : offset_(offset), drift_ppm_(drift_ppm) {}

  /// The host's local reading when true time is \p true_now.
  SimTime local_time(SimTime true_now) const {
    const double skewed =
        static_cast<double>(true_now.us) * (1.0 + drift_ppm_ * 1e-6);
    return SimTime{static_cast<std::int64_t>(skewed) + offset_.us};
  }

  /// Inverse mapping: the true time at which this host's clock reads \p local.
  SimTime true_time(SimTime local) const {
    const double t =
        static_cast<double>(local.us - offset_.us) / (1.0 + drift_ppm_ * 1e-6);
    return SimTime{static_cast<std::int64_t>(t)};
  }

  /// Apply a correction (e.g. from an NTP-style exchange) to the offset.
  void adjust(SimDuration delta) { offset_ += delta; }

  SimDuration offset() const { return offset_; }
  double drift_ppm() const { return drift_ppm_; }

 private:
  SimDuration offset_{};
  double drift_ppm_{0.0};
};

}  // namespace lod::net
