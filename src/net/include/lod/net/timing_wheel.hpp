#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

/// \file timing_wheel.hpp
/// Hierarchical timing wheel — the simulator's event queue.
///
/// Four levels of 256 slots each, with slot widths of 2^0, 2^8, 2^16 and
/// 2^24 microseconds, cover events up to 2^32 us (~71.6 minutes) ahead of
/// the cursor; anything farther waits in a small min-heap and refills the
/// wheel as the horizon advances. Scheduling is O(1); popping is O(1)
/// amortised plus a 256-bit bitmap scan per level, against O(log n) per
/// operation for the binary heap this replaces. With hundreds of thousands
/// of pending timers (retransmits, media ticks) the wheel also avoids the
/// heap's cache-hostile sift paths.
///
/// An item's level is the position of the highest bit in which its time
/// differs from the cursor (bits 0-7 -> level 0, 8-15 -> level 1, ...), and
/// its slot is that level's 8-bit field of the absolute time. Two
/// consequences the algorithms below lean on:
///   - at every level, pending items sit strictly ABOVE the cursor's slot
///     (they share all higher fields with the cursor), so scans are linear,
///     never circular, and first-non-empty-slot == level minimum;
///   - when the cursor crosses a slot boundary, that slot's items cascade
///     to lower levels (or to the ready bucket) by re-placement.
///
/// Determinism contract: items pop in strictly ascending (at, seq) order —
/// identical to the binary-heap ordering this replaces — so merged sharded
/// snapshots stay byte-identical across shard counts. Same-instant items
/// ride a `ready_` bucket that is seq-sorted by construction: slot vectors
/// only append in schedule order and cascades move whole slots, preserving
/// the relative order of equal-time items end to end.

namespace lod::net {

class TimingWheel {
 public:
  /// Deliberately trivially copyable: items are re-placed on every cascade,
  /// so any non-trivial payload (e.g. a std::function handler) would pay an
  /// indirect manager call per move. Callers keep payloads in a side table
  /// keyed by `id` (the Simulator uses a slot/generation slab).
  struct Item {
    std::int64_t at{0};    ///< absolute microseconds
    std::uint64_t seq{0};  ///< schedule order; ties on `at` break by seq
    std::uint64_t id{0};   ///< caller's event id (for lazy cancellation)
  };

  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;  // 256
  static constexpr std::int64_t kHorizon = std::int64_t{1}
                                           << (kLevels * kSlotBits);  // 2^32 us

  /// Cursor: the wheel's notion of "now". Monotonically non-decreasing.
  std::int64_t now() const { return cur_; }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Insert an item. Times in the past clamp to the cursor.
  void schedule(Item it) {
    if (it.at < cur_) it.at = cur_;
    ++size_;
    place(std::move(it));
  }

  /// Pop the earliest item in (at, seq) order, advancing the cursor to its
  /// time. Returns false when the wheel is empty.
  bool pop(Item& out) {
    return pop_due(std::numeric_limits<std::int64_t>::max(), out);
  }

  /// Pop the earliest item if its time is <= \p limit; otherwise false,
  /// with the cursor advanced no further than \p limit. This is run_until's
  /// workhorse: deciding "is anything due?" costs bitmap scans only, never
  /// a walk over bucket contents.
  bool pop_due(std::int64_t limit, Item& out) {
    if (ready_head_ < ready_.size() && cur_ > limit) return false;
    while (ready_head_ >= ready_.size()) {
      ready_.clear();
      ready_head_ = 0;
      const std::int64_t t = advance_toward_next(limit);
      if (t < 0 || t > limit) return false;
      advance_to(t);
      collect_current_slot();
    }
    out = std::move(ready_[ready_head_++]);
    if (ready_head_ == ready_.size()) {
      ready_.clear();
      ready_head_ = 0;
    }
    --size_;
    return true;
  }

  /// Advance the cursor to \p t without firing anything. Precondition: no
  /// pending item is earlier than \p t (run_until drains them first).
  void fast_forward(std::int64_t t) {
    if (t > cur_) advance_to(t);
  }

 private:
  using Bitmap = std::array<std::uint64_t, kSlots / 64>;

  static void bit_set(Bitmap& bm, int i) {
    bm[static_cast<std::size_t>(i >> 6)] |= std::uint64_t{1} << (i & 63);
  }
  static void bit_clear(Bitmap& bm, int i) {
    bm[static_cast<std::size_t>(i >> 6)] &= ~(std::uint64_t{1} << (i & 63));
  }
  /// First set bit at index >= from, else -1.
  static int bit_find_from(const Bitmap& bm, int from) {
    if (from >= kSlots) return -1;
    int w = from >> 6;
    const std::uint64_t head =
        bm[static_cast<std::size_t>(w)] & (~std::uint64_t{0} << (from & 63));
    if (head) return (w << 6) + std::countr_zero(head);
    for (++w; w < static_cast<int>(bm.size()); ++w) {
      if (bm[static_cast<std::size_t>(w)]) {
        return (w << 6) + std::countr_zero(bm[static_cast<std::size_t>(w)]);
      }
    }
    return -1;
  }

  int cursor_slot(int level) const {
    return static_cast<int>(cur_ >> (kSlotBits * level)) & (kSlots - 1);
  }

  /// Route an item by the highest bit in which its time differs from the
  /// cursor. Also used when cascading (items re-place relative to the new
  /// cursor, trickling down a level or more each crossing).
  void place(Item it) {
    if (it.at <= cur_) {
      // Same-instant: schedule order == seq order, so appending keeps the
      // bucket sorted.
      ready_.push_back(std::move(it));
      return;
    }
    const auto diff = static_cast<std::uint64_t>(it.at ^ cur_);
    const int level = (63 - std::countl_zero(diff)) / kSlotBits;
    if (level >= kLevels) {
      far_.push_back(std::move(it));
      std::push_heap(far_.begin(), far_.end(), FarLater{});
      return;
    }
    const int slot =
        static_cast<int>(it.at >> (kSlotBits * level)) & (kSlots - 1);
    auto& bucket =
        slots_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot)];
    if (bucket.empty()) bit_set(bits_[static_cast<std::size_t>(level)], slot);
    bucket.push_back(std::move(it));
  }

  /// Refine the earliest pending time using bitmap information only. Level-0
  /// items share all bits >= 8 with the cursor, so their slot index IS their
  /// exact time within the cursor's 256-us window; upper-level slots expose
  /// their cascade boundary (slot start), a strict lower bound on their
  /// items. While the earliest thing pending is only known as an upper-level
  /// bound, advance the cursor to that boundary (cascading the slot down a
  /// level) and retry — each round trickles the front of the wheel one level
  /// lower until the minimum surfaces at level 0, exact. Never walks bucket
  /// contents, unlike a "scan the first non-empty bucket for its min" peek,
  /// which is O(bucket) per call and quadratic over a run.
  ///
  /// Returns the exact earliest time when it is <= \p limit; a value > limit
  /// (possibly just a bound) once it is known nothing is due by \p limit;
  /// -1 when empty. The cursor never advances past min(earliest, limit).
  std::int64_t advance_toward_next(std::int64_t limit) {
    if (ready_head_ < ready_.size()) return cur_;
    for (;;) {
      std::int64_t best = -1;  // exact, from level 0
      const int s0 = bit_find_from(bits_[0], cursor_slot(0));
      if (s0 >= 0) best = (cur_ & ~std::int64_t{kSlots - 1}) + s0;
      std::int64_t bound = -1;  // lower bound, from upper levels + far heap
      for (int level = 1; level < kLevels; ++level) {
        const int i = bit_find_from(bits_[static_cast<std::size_t>(level)],
                                    cursor_slot(level) + 1);
        if (i < 0) continue;
        const std::int64_t b =
            ((cur_ >> (kSlotBits * level)) + (i - cursor_slot(level)))
            << (kSlotBits * level);
        if (bound < 0 || b < bound) bound = b;
      }
      if (!far_.empty()) {
        const std::int64_t refill = ((cur_ >> (kLevels * kSlotBits)) + 1)
                                    << (kLevels * kSlotBits);
        if (bound < 0 || refill < bound) bound = refill;
      }
      // A level-0 time can never equal an upper-level slot start (equal
      // times share identical bits, hence the same level), so `best < bound`
      // means best is the global minimum.
      if (best >= 0 && (bound < 0 || best < bound)) return best;
      if (bound < 0) return -1;
      if (bound > limit) return bound;
      cur_ = bound;
      if ((cur_ & (kHorizon - 1)) == 0) refill_far();
      for (int level = kLevels - 1; level >= 1; --level) {
        const std::int64_t width = std::int64_t{1} << (kSlotBits * level);
        if ((cur_ & (width - 1)) == 0) cascade(level, cursor_slot(level));
      }
      // Items due exactly AT a boundary cascade straight into ready_ (place
      // routes at == cur_ there). The cursor only ever moves through lower
      // bounds, so anything in ready_ now IS the minimum — stop refining, or
      // the loop would advance past it and strand it.
      if (ready_head_ < ready_.size()) return cur_;
    }
  }

  /// Next boundary <= limit at which cascade/refill work exists, or -1.
  /// Boundaries whose slots are empty are skipped arithmetically.
  std::int64_t next_cascade_boundary(std::int64_t limit) const {
    std::int64_t best = -1;
    for (int level = 1; level < kLevels; ++level) {
      const int i = bit_find_from(bits_[static_cast<std::size_t>(level)],
                                  cursor_slot(level) + 1);
      if (i < 0) continue;
      const std::int64_t boundary =
          ((cur_ >> (kSlotBits * level)) + (i - cursor_slot(level)))
          << (kSlotBits * level);
      if (best < 0 || boundary < best) best = boundary;
    }
    if (!far_.empty()) {
      const std::int64_t refill = ((cur_ >> (kLevels * kSlotBits)) + 1)
                                  << (kLevels * kSlotBits);
      if (best < 0 || refill < best) best = refill;
    }
    if (best < 0 || best > limit) return -1;
    return best;
  }

  /// Move the cursor to \p t, cascading every non-empty slot whose boundary
  /// we cross. A long idle jump costs a few bitmap scans, not one step per
  /// slot.
  void advance_to(std::int64_t t) {
    while (cur_ < t) {
      const std::int64_t nb = next_cascade_boundary(t);
      if (nb < 0) {
        cur_ = t;
        return;
      }
      cur_ = nb;
      if ((cur_ & (kHorizon - 1)) == 0) refill_far();
      for (int level = kLevels - 1; level >= 1; --level) {
        const std::int64_t width = std::int64_t{1} << (kSlotBits * level);
        if ((cur_ & (width - 1)) == 0) cascade(level, cursor_slot(level));
      }
    }
  }

  void cascade(int level, int slot) {
    auto& bucket =
        slots_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot)];
    if (bucket.empty()) return;
    bit_clear(bits_[static_cast<std::size_t>(level)], slot);
    std::vector<Item> moving;
    moving.swap(bucket);
    for (Item& it : moving) place(std::move(it));
  }

  void refill_far() {
    while (!far_.empty() && far_.front().at < cur_ + kHorizon) {
      std::pop_heap(far_.begin(), far_.end(), FarLater{});
      Item it = std::move(far_.back());
      far_.pop_back();
      place(std::move(it));
    }
  }

  /// After advance_to(t), everything due at t sits in the level-0 cursor
  /// slot (cascades route same-instant items straight to ready_). A level-0
  /// slot holds exactly one distinct time, so the whole bucket moves.
  void collect_current_slot() {
    const int slot = cursor_slot(0);
    auto& bucket = slots_[0][static_cast<std::size_t>(slot)];
    if (bucket.empty()) return;
    bit_clear(bits_[0], slot);
    for (Item& it : bucket) ready_.push_back(std::move(it));
    bucket.clear();
  }

  struct FarLater {
    bool operator()(const Item& a, const Item& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  std::int64_t cur_{0};
  std::size_t size_{0};
  std::array<std::array<std::vector<Item>, kSlots>, kLevels> slots_;
  std::array<Bitmap, kLevels> bits_{};
  std::vector<Item> far_;      ///< min-heap on (at, seq)
  std::vector<Item> ready_;    ///< due at cur_, seq-ascending
  std::size_t ready_head_{0};  ///< pop index into ready_
};

}  // namespace lod::net
