#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

#include "lod/net/transport_base.hpp"

/// \file frame.hpp
/// The RealTransport wire formats — LODU datagram frames and LODR RPC
/// request frames — as pure, socket-free codecs over byte spans.
///
/// Extracted from the epoll loop so the parsers can be property-tested (and
/// fuzzed) without a kernel socket in sight: arbitrary bytes in, a verdict
/// out, never undefined behaviour. The transport's contract for malformed
/// input is COUNT AND DROP (`lod.net.frames_dropped`), never crash — a
/// stray or corrupt datagram on a shared loopback must not take the node
/// down.
///
/// Both formats are little-endian via memcpy: every end of a loopback
/// exchange shares one machine, and the frames never leave it.

namespace lod::net::frame {

constexpr char kUdpMagic[4] = {'L', 'O', 'D', 'U'};
constexpr char kRpcMagic[4] = {'L', 'O', 'D', 'R'};

/// LODU header: magic, src host, src port, channel, payload length.
constexpr std::size_t kUdpHeaderSize = 4 + 4 + 2 + 4 + 4;

/// LODR sanity bounds: no path is kilobytes long, no body is gigabytes.
constexpr std::uint32_t kMaxRpcPathLen = 4096;
constexpr std::uint32_t kMaxRpcBodyLen = 1u << 28;

namespace detail {
inline void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
inline void put_u16(std::byte* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
inline std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline std::uint16_t get_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
}  // namespace detail

/// The decoded LODU header fields.
struct UdpHeader {
  HostId src{0};
  Port src_port{0};
  ChannelId channel{0};
  std::uint32_t payload_len{0};
};

/// Encode \p h into exactly `kUdpHeaderSize` bytes at \p out.
inline void encode_udp_header(std::byte* out, const UdpHeader& h) {
  std::memcpy(out, kUdpMagic, 4);
  detail::put_u32(out + 4, h.src);
  detail::put_u16(out + 8, h.src_port);
  detail::put_u32(out + 10, h.channel);
  detail::put_u32(out + 14, h.payload_len);
}

/// Decode one received datagram. nullopt == malformed: shorter than a
/// header, wrong magic, or a payload length claiming more bytes than the
/// datagram actually carries. (`dgram.size() - kUdpHeaderSize -
/// payload_len` is then the scatter-gather body's length.)
inline std::optional<UdpHeader> decode_udp_header(
    std::span<const std::byte> dgram) {
  if (dgram.size() < kUdpHeaderSize) return std::nullopt;
  if (std::memcmp(dgram.data(), kUdpMagic, 4) != 0) return std::nullopt;
  UdpHeader h;
  h.src = detail::get_u32(dgram.data() + 4);
  h.src_port = detail::get_u16(dgram.data() + 8);
  h.channel = detail::get_u32(dgram.data() + 10);
  h.payload_len = detail::get_u32(dgram.data() + 14);
  if (h.payload_len > dgram.size() - kUdpHeaderSize) return std::nullopt;
  return h;
}

/// Incremental LODR request parse over the front of a connection buffer:
/// [LODR][u32 path_len][path][u32 body_len][body].
enum class RpcParse : std::uint8_t {
  kNeedMore,   ///< valid prefix; wait for more bytes
  kFrame,      ///< one complete frame decoded into the out-param
  kMalformed,  ///< bad magic or insane length — close the connection
};

/// One decoded request frame, as offsets into the connection buffer (the
/// caller slices path/body out of its own storage; nothing is copied here).
struct RpcFrame {
  std::size_t path_offset{0};
  std::uint32_t path_len{0};
  std::size_t body_offset{0};
  std::uint32_t body_len{0};
  std::size_t frame_size{0};  ///< total bytes to consume from the buffer
};

inline RpcParse parse_rpc_frame(std::span<const std::byte> buf,
                                RpcFrame& out) {
  if (buf.size() < 8) return RpcParse::kNeedMore;
  if (std::memcmp(buf.data(), kRpcMagic, 4) != 0) return RpcParse::kMalformed;
  const std::uint32_t path_len = detail::get_u32(buf.data() + 4);
  if (path_len > kMaxRpcPathLen) return RpcParse::kMalformed;
  if (buf.size() < 8 + static_cast<std::size_t>(path_len) + 4) {
    return RpcParse::kNeedMore;
  }
  const std::uint32_t body_len = detail::get_u32(buf.data() + 8 + path_len);
  if (body_len > kMaxRpcBodyLen) return RpcParse::kMalformed;
  const std::size_t frame =
      8 + static_cast<std::size_t>(path_len) + 4 + body_len;
  if (buf.size() < frame) return RpcParse::kNeedMore;
  out.path_offset = 8;
  out.path_len = path_len;
  out.body_offset = 8 + static_cast<std::size_t>(path_len) + 4;
  out.body_len = body_len;
  out.frame_size = frame;
  return RpcParse::kFrame;
}

}  // namespace lod::net::frame
