#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lod/net/result.hpp"
#include "lod/net/transport_base.hpp"
#include "lod/obs/hub.hpp"
#include "lod/obs/rollup.hpp"

/// \file real_transport.hpp
/// The kernel-socket backend of the `net::Transport` seam.
///
/// One `RealTransport` is one event loop (epoll) over real sockets:
///
///  - every `bind(host, port)` opens a non-blocking UDP socket on that
///    host's loopback address; media data, reliable-endpoint segments and
///    RPC frames all ride real UDP datagrams,
///  - `listen_tcp` opens a TCP listener that serves two protocols on one
///    port, sniffed from the first bytes of each connection: plain HTTP
///    (GET /metrics answers with the Prometheus text rendition of this
///    transport's registry) and the "LODR" length-prefixed RPC framing
///    (decoded frames funnel through `RpcServer::handle`, so one route
///    table answers the UDP and the TCP control planes),
///  - timers ride the epoll wait deadline, driven by a monotonic
///    microsecond clock shared by every instance in the process.
///
/// Addressing: `HostId h` maps to the loopback IPv4 address `base_ip + h`.
/// Linux routes all of 127.0.0.0/8 locally, so every host gets its own real
/// IP with no configuration. The default base derives from the process id,
/// letting parallel test processes share a kernel without port collisions.
/// Several instances in one process (one per "machine", each with its own
/// loop thread) agree on the mapping automatically and talk to each other
/// through the kernel exactly as separate processes would.
///
/// Threading contract: everything except `stop()`, `schedule_at`/`cancel`
/// and the blocking helpers below is confined to the loop thread — the
/// thread that calls `run()` — or to the single owning thread before `run()`
/// starts. Receiver and timer callbacks fire on the loop thread.
///
/// UDP datagrams carry a small frame header (magic, src host/port, channel,
/// payload length) so the receiver can rebuild the seam's `Datagram` —
/// including the exact payload/body split senders chose — from one recv.
/// Sends are scatter-gather (`sendmsg` with header, payload and body
/// iovecs): the zero-copy `Payload` contract holds right down to the
/// syscall. Datagrams above ~64KB exceed UDP's limit and are reported
/// undeliverable (`send` returns false), like any IP stack would.

namespace lod::net {

class RpcServer;
struct RpcReply;

class RealTransport : public Transport {
 public:
  struct Config {
    /// Host-order base IPv4 for the `HostId -> 127.x.y.z` mapping. 0 (the
    /// default) derives a per-process base inside 127.0.0.0/8 from the pid.
    std::uint32_t base_ip{0};
    /// Metrics rollup window (see obs::RollupStore): `run()` snapshots the
    /// registry every `rollup_window_us` and retains `rollup_windows`
    /// deltas, which `/debug/vars` turns into rates. 0 disables rolling.
    std::int64_t rollup_window_us{1'000'000};
    std::size_t rollup_windows{64};
  };

  /// Largest sendable datagram (header + payload + body), conservatively
  /// under UDP's 65507-byte ceiling.
  static constexpr std::size_t kMaxDatagram = 65000;

  RealTransport() : RealTransport(Config{}) {}
  explicit RealTransport(Config cfg);
  ~RealTransport() override;

  // --- Transport seam -------------------------------------------------------

  obs::Hub& obs() override { return hub_; }
  /// Monotonic microseconds since the first RealTransport in this process
  /// was constructed — one timeline shared by every instance.
  SimTime now() const override;
  EventId schedule_at(SimTime t, TimerFn fn) override;
  bool cancel(EventId id) override;
  HostClock& clock(HostId h) override;
  SimTime local_now(HostId h) const override;
  std::string endpoint_name(HostId h) const override;
  std::optional<HostId> find_endpoint(std::string_view name) const override;
  void bind(HostId h, Port port, Receiver r) override;
  void unbind(HostId h, Port port) override;
  bool send(Datagram d) override;
  // QoS reservations keep the base-class best-effort defaults: a real
  // kernel path has no reservation service, exactly like the paper's
  // Internet deployment next to its QoS-capable campus LAN.

  // --- topology -------------------------------------------------------------

  /// Create the next host id, optionally named. Ids count up from 0 within
  /// this instance; instances that must interoperate coordinate ids via
  /// `register_host`.
  HostId add_host(std::string name = {});

  /// Register a specific host id (used when several instances in one
  /// process model different machines and must agree on the id space).
  void register_host(HostId h, std::string name = {});

  /// The dotted-quad loopback address host \p h answers on.
  std::string host_address(HostId h) const;

  // --- TCP control plane ----------------------------------------------------

  /// Listen on (host, port) serving HTTP and LODR-framed RPC bridged into
  /// \p rpc's route table. The HTTP side serves the introspection plane:
  /// `GET /metrics` (Prometheus text) plus the `/debug/*` catalog —
  /// `/debug/vars` (JSON snapshot + rollup rates), `/debug/sessions`,
  /// `/debug/sync`, `/debug/trace[?trace_id=N]` (SpanTree JSON) and
  /// `/debug/flight` (live journal JSONL); see docs/OBSERVABILITY.md.
  /// Unknown paths get a 404 with a body, non-GET a 405, an oversized
  /// request line a 431. The listener binds \p bind_address when nonempty
  /// (must be this host's address or a wildcard), else the host's own
  /// loopback address.
  Result<void> listen_tcp(HostId h, Port port, RpcServer& rpc,
                          const std::string& bind_address = {},
                          int backlog = 64);
  void close_tcp(HostId h, Port port);

  // --- event loop -----------------------------------------------------------

  /// Run the loop on the calling thread until `stop()`.
  void run();

  /// Signal the loop to exit; safe from any thread (and from callbacks).
  void stop();

 private:
  struct HostState {
    std::string name;
    HostClock clock;
  };
  struct UdpSocket {
    int fd{-1};
    HostId host{0};
    Port port{0};
    Receiver receiver;
  };
  struct TcpListener {
    int fd{-1};
    HostId host{0};
    Port port{0};
    RpcServer* rpc{nullptr};
  };
  /// One accepted TCP connection; protocol unknown until sniffed.
  struct TcpConn {
    int fd{-1};
    RpcServer* rpc{nullptr};
    obs::Hub* hub{nullptr};
    std::vector<std::byte> buf;
    enum class Mode { kSniff, kRpc, kHttp } mode{Mode::kSniff};
  };
  struct TimerEntry {
    SimTime at;
    EventId id;
    bool operator>(const TimerEntry& o) const {
      return at.us != o.at.us ? at.us > o.at.us : id > o.id;
    }
  };

  static std::uint64_t port_key(HostId h, Port p) {
    return (static_cast<std::uint64_t>(h) << 16) | p;
  }

  std::uint32_t ip_of(HostId h) const { return base_ip_ + h; }
  void wakeup();
  void fire_due_timers();
  /// Epoll-wait timeout until the next timer, in milliseconds (-1 = none).
  int next_timeout_ms();
  void on_udp_readable(UdpSocket& s);
  void on_tcp_accept(TcpListener& l);
  void on_tcp_readable(int fd);
  bool drain_tcp_conn(TcpConn& c);  ///< false -> close the connection
  void close_conn(int fd);
  /// Serve one parsed HTTP request line (loop thread). Returns the full
  /// response; routing lives here, rendering in obs/debug.hpp.
  std::string http_respond(std::string_view method, std::string_view target);
  /// Snapshot the registry into the rollup and re-arm the periodic timer.
  void rollup_tick();

  obs::Hub hub_;
  obs::RollupStore rollup_;
  std::int64_t rollup_window_us_{0};  ///< 0 = rolling disabled
  bool rollup_armed_{false};
  std::uint32_t base_ip_;
  int epoll_fd_{-1};
  int wake_fd_{-1};
  int tx_fd_{-1};  ///< shared send socket; src rides in the frame header
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread::id loop_thread_;

  std::unordered_map<HostId, HostState> hosts_;
  HostId next_host_{0};
  std::unordered_map<std::uint64_t, int> udp_by_port_;  ///< port_key -> fd
  std::unordered_map<int, UdpSocket> udp_;              ///< fd -> socket
  std::unordered_map<std::uint64_t, int> tcp_by_port_;
  std::unordered_map<int, TcpListener> listeners_;
  std::unordered_map<int, TcpConn> conns_;

  mutable std::mutex timer_mu_;
  std::vector<TimerEntry> timer_heap_;  ///< min-heap via std::push/pop_heap
  std::unordered_map<EventId, TimerFn> timer_fns_;
  EventId next_event_{1};
  std::uint64_t next_datagram_{1};
  std::vector<std::byte> rx_buf_;  ///< loop-thread recv staging

  obs::Counter m_dg_sent_;     ///< lod.realnet.datagrams_sent
  obs::Counter m_dg_recv_;     ///< lod.realnet.datagrams_received
  obs::Counter m_dg_dropped_;  ///< lod.realnet.datagrams_dropped (send fail)
  obs::Counter m_bind_fail_;   ///< lod.realnet.bind_failures
  /// lod.net.frames_dropped — malformed LODU/LODR frames counted+dropped.
  obs::Counter m_frames_dropped_;
};

// --- blocking client helpers -------------------------------------------------
//
// Small synchronous clients for driving a RealTransport node from OUTSIDE
// its loop thread (tests, demo tools): they own plain blocking sockets and
// never touch the epoll loop.

/// A decoded HTTP response (status line code + entity body).
struct HttpResponse {
  int status{0};
  std::string body;
};

/// Blocking one-shot `GET path` against `ip:port`. Connection errors map to
/// the seam's uniform error codes (`kRefused`, `kTimeout`, ...).
Result<HttpResponse> http_get(const std::string& ip, Port port,
                              const std::string& path, int timeout_ms = 5000);

/// Blocking client for the LODR TCP framing `listen_tcp` serves. One
/// connection, reused across calls; reconnects after `kClosed`.
class TcpRpcClient {
 public:
  TcpRpcClient(std::string ip, Port port);
  ~TcpRpcClient();
  TcpRpcClient(const TcpRpcClient&) = delete;
  TcpRpcClient& operator=(const TcpRpcClient&) = delete;

  /// Issue one request and wait for its response.
  Result<RpcReply> call(std::string_view path, std::span<const std::byte> body,
                        int timeout_ms = 5000);

 private:
  Result<void> ensure_connected(int timeout_ms);

  std::string ip_;
  Port port_;
  int fd_{-1};
};

}  // namespace lod::net
