#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "lod/net/clock.hpp"
#include "lod/net/payload.hpp"
#include "lod/net/time.hpp"
#include "lod/obs/hub.hpp"

/// \file transport_base.hpp
/// The transport seam: everything the stack above packets is allowed to
/// assume about "the network".
///
/// `DatagramSocket` / `ReliableEndpoint` / `RpcServer` / `RpcClient` — and
/// through them `streaming::StreamingServer` / `streaming::Player` and
/// `edge::EdgeNode` / `edge::OriginGateway` — program against the abstract
/// `Transport` interface defined here and nothing else. Two implementations
/// exist:
///
///  - `SimTransport` (= `Network` + its `Simulator`, network.hpp): the
///    deterministic discrete-event backend every test and bench runs on.
///  - `RealTransport` (real_transport.hpp): a non-blocking epoll event loop
///    over real UDP/TCP sockets on an actual kernel network stack.
///
/// The interface bundles the four services the paper's stack needs:
///   endpoint addressing   (HostId/Port, name lookup)
///   datagram send/receive (unreliable, unordered; scatter-gather payloads)
///   a timer service       (schedule_at/after + cancel, driving all pacing)
///   a host clock          (possibly skewed; NTP-style sync adjusts it)
/// plus an optional QoS-channel capability that only the simulated fabric
/// implements (reservations are meaningless on a best-effort kernel path —
/// the defaults degrade to best effort, exactly like the paper's Internet
/// deployment next to its QoS-capable campus LAN).
///
/// Simulation-specific machinery (link configs, loss models, channel
/// reservations' path introspection, raw `Packet` aliasing) stays in
/// network.hpp and is deliberately NOT visible through this header.

namespace lod::net {

using HostId = std::uint32_t;
using Port = std::uint16_t;
using ChannelId = std::uint32_t;

/// Identifies a scheduled timer/event so it can be cancelled before firing.
/// (Redeclared identically by the simulator; an alias may be repeated.)
using EventId = std::uint64_t;

/// The transport's unit of delivery. `wire_size` is what consumes link (or
/// models kernel/framing) capacity; `payload` (+ optional `body`) is what
/// the receiver sees.
struct Datagram {
  HostId src{0};
  HostId dst{0};
  Port src_port{0};
  Port dst_port{0};
  std::uint32_t wire_size{0};  ///< bytes on the wire
  /// Frame header / whole message, refcounted (hops and loopback never copy).
  Payload payload;
  /// Optional scatter-gather attachment: logically the bytes that follow
  /// `payload` on the wire. Senders with a shared immutable body (cached
  /// media segments, inflight transport messages) attach it here so per-hop
  /// and per-session sends copy nothing; receivers that frame with a body
  /// read their header fields from `payload` and take `body` as the blob.
  Payload body;
  /// Non-zero when the datagram rides a reserved QoS channel.
  ChannelId channel{0};
  std::uint64_t id{0};  ///< unique per transport, for tracing
};

/// Syntactic IPv4 dotted-quad check ("a.b.c.d", each octet 0-255, no extras).
/// Config validation (e.g. `ServerConfig::bind_address`) uses this without
/// dragging in any OS networking headers.
bool is_valid_ipv4(std::string_view s);

/// The backend-agnostic network API (see file comment).
class Transport {
 public:
  using Receiver = std::function<void(const Datagram&)>;
  using TimerFn = std::function<void()>;

  virtual ~Transport() = default;

  // --- observability --------------------------------------------------------

  /// The observability root (one metrics registry + one trace timeline) this
  /// transport and everything running on it publish into.
  virtual obs::Hub& obs() = 0;

  // --- time & timers --------------------------------------------------------

  /// Transport-global "true" time: simulation time on the simulated backend,
  /// a monotonic microsecond clock on the real one.
  virtual SimTime now() const = 0;

  /// Run \p fn at absolute time \p t (clamped to now if in the past).
  virtual EventId schedule_at(SimTime t, TimerFn fn) = 0;

  /// Run \p fn after \p d (negative clamps to zero).
  EventId schedule_after(SimDuration d, TimerFn fn) {
    return schedule_at(now() + (d.us < 0 ? SimDuration{0} : d), std::move(fn));
  }

  /// Cancel a pending timer. Stale or unknown ids are a harmless no-op.
  virtual bool cancel(EventId id) = 0;

  // --- endpoint addressing --------------------------------------------------

  /// The host's (possibly skewed/drifting) local clock. NTP-style sync code
  /// reads and adjusts it; the real backend's clocks start true.
  virtual HostClock& clock(HostId h) = 0;

  /// The host's local clock reading right now.
  virtual SimTime local_now(HostId h) const = 0;

  /// Human-readable endpoint name ("origin", "127.0.0.1"), for diagnostics.
  virtual std::string endpoint_name(HostId h) const = 0;

  /// Reverse lookup; nullopt when no endpoint carries \p name.
  virtual std::optional<HostId> find_endpoint(std::string_view name) const = 0;

  // --- datagram service -----------------------------------------------------

  /// Register a receiver for (host, port). Overwrites any previous binding.
  virtual void bind(HostId h, Port port, Receiver r) = 0;
  virtual void unbind(HostId h, Port port) = 0;

  /// Inject a datagram. Returns false if the destination is unknown or the
  /// backend could not accept it (the datagram is dropped, as IP would).
  virtual bool send(Datagram d) = 0;

  // --- QoS channels (optional capability) -----------------------------------

  /// Try to reserve \p rate_bps from src to dst. The default (real-network)
  /// answer is "no such service": nullopt, and traffic stays best-effort.
  virtual std::optional<ChannelId> reserve_channel(HostId src, HostId dst,
                                                   std::int64_t rate_bps) {
    (void)src;
    (void)dst;
    (void)rate_bps;
    return std::nullopt;
  }

  /// Release a reservation. Unknown ids are ignored.
  virtual void release_channel(ChannelId id) { (void)id; }

  /// Change a reservation's rate in place; false when unsupported or the
  /// path lacks capacity (the old rate stays in effect).
  virtual bool resize_channel(ChannelId id, std::int64_t new_rate_bps) {
    (void)id;
    (void)new_rate_bps;
    return false;
  }

  /// The reserved rate of \p id, or 0 for unknown ids / no QoS service.
  /// (Pacing loops use this to honor the reservation; everything else about
  /// a reservation — its path, admission bookkeeping — is backend-internal.)
  virtual std::int64_t channel_rate_bps(ChannelId id) const {
    (void)id;
    return 0;
  }

  /// Static one-way delay floor from a to b: summed propagation latency on
  /// the simulated fabric, unknown (-1us) on the real one. Replica selection
  /// seeds its per-site estimates from this when available.
  virtual SimDuration path_latency(HostId a, HostId b) const {
    (void)a;
    (void)b;
    return usec(-1);
  }

 protected:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
};

}  // namespace lod::net
