#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/net/clock.hpp"
#include "lod/net/payload.hpp"
#include "lod/net/rng.hpp"
#include "lod/net/simulator.hpp"
#include "lod/net/time.hpp"
#include "lod/net/transport_base.hpp"

/// \file network.hpp
/// The simulated packet network — the `SimTransport` backend.
///
/// Hosts are connected by point-to-point links with finite bandwidth,
/// propagation latency, random jitter, a loss rate and a drop-tail queue.
/// Packets are routed hop-by-hop over the static shortest path (store and
/// forward at each hop, like the switched LANs the paper deployed on).
///
/// This is the substitute for the paper's campus LAN / Internet transport
/// between Windows Media Encoder, Windows Media Services and the browsers.
/// Together with its `Simulator` it implements the abstract `net::Transport`
/// seam (transport_base.hpp); the stack above packets sees only that seam,
/// while tests and benches keep full access to the fabric (links, loss,
/// QoS reservations, routing) declared here.

namespace lod::net {

/// Historical name for the transport's delivery unit within the simulated
/// fabric; hop-by-hop forwarding deals in the same struct the seam exposes.
using Packet = Datagram;

/// Static properties of one direction of a link.
struct LinkConfig {
  /// Capacity in bits per second. 10 Mb/s is the paper-era campus LAN.
  std::int64_t bandwidth_bps{10'000'000};
  /// One-way propagation delay.
  SimDuration latency{msec(1)};
  /// Std-dev of per-packet delivery jitter (truncated normal).
  SimDuration jitter{usec(0)};
  /// Independent per-packet loss probability.
  double loss_rate{0.0};
  /// Drop-tail queue bound, in bytes of queued (not yet serialized) data.
  std::size_t queue_bytes{256 * 1024};
};

/// Counters kept per link direction, exposed for benches and tests.
struct LinkStats {
  std::uint64_t packets_sent{0};
  std::uint64_t packets_dropped_loss{0};
  std::uint64_t packets_dropped_queue{0};
  std::uint64_t bytes_sent{0};
  SimDuration total_queue_delay{};
};

/// A QoS reservation over a path, in the spirit of XOCPN's resource channels:
/// the reserved rate is subtracted from every on-path link's best-effort
/// capacity and packets tagged with the channel serialize at the reserved
/// rate, unaffected by best-effort congestion.
struct ChannelReservation {
  ChannelId id{0};
  HostId src{0};
  HostId dst{0};
  std::int64_t rate_bps{0};
  std::vector<std::pair<HostId, HostId>> path;  ///< hops actually reserved
};

/// The network fabric. Owns topology, routing, queues and delivery timing.
/// Implements the `Transport` seam on top of its paired `Simulator`.
class Network : public Transport {
 public:
  using Receiver = Transport::Receiver;

  Network(Simulator& sim, std::uint64_t seed = 42);

  // --- Transport seam: observability, time & timers -------------------------

  obs::Hub& obs() override { return sim_.obs(); }
  SimTime now() const override { return sim_.now(); }
  EventId schedule_at(SimTime t, TimerFn fn) override {
    return sim_.schedule_at(t, std::move(fn));
  }
  bool cancel(EventId id) override { return sim_.cancel(id); }

  // --- topology -----------------------------------------------------------

  /// Create a host; returns its id. Optionally give its clock an offset/drift.
  HostId add_host(std::string name, HostClock clock = {});

  /// Connect two hosts with a symmetric full-duplex link.
  void add_link(HostId a, HostId b, const LinkConfig& cfg);

  /// Replace one direction's config (e.g. to degrade a link mid-run).
  void set_link_config(HostId from, HostId to, const LinkConfig& cfg);

  std::size_t host_count() const { return hosts_.size(); }
  const std::string& host_name(HostId h) const { return hosts_.at(h).name; }
  HostClock& clock(HostId h) override { return hosts_.at(h).clock; }
  const HostClock& clock(HostId h) const { return hosts_.at(h).clock; }

  std::string endpoint_name(HostId h) const override {
    return h < hosts_.size() ? hosts_[h].name : std::string{};
  }
  std::optional<HostId> find_endpoint(std::string_view name) const override;

  /// The host's local clock reading right now.
  SimTime local_now(HostId h) const override {
    return clock(h).local_time(sim_.now());
  }

  // --- sockets ------------------------------------------------------------

  /// Register a receiver for (host, port). Overwrites any previous binding.
  void bind(HostId h, Port port, Receiver r) override;
  void unbind(HostId h, Port port) override;

  /// Inject a packet. Returns false if src/dst are unknown or unroutable
  /// (the packet is silently dropped, as IP would).
  bool send(Packet p) override;

  // --- QoS channels (XOCPN-style) ------------------------------------------

  /// Try to reserve \p rate_bps from src to dst. Fails (nullopt) if any
  /// on-path link lacks spare capacity. Reservations compose: admission
  /// control tracks the sum of reserved rates per link direction.
  std::optional<ChannelId> reserve_channel(HostId src, HostId dst,
                                           std::int64_t rate_bps) override;
  /// Release a reservation. Unknown ids are ignored.
  void release_channel(ChannelId id) override;

  /// Change a reservation's rate in place (same path, same serializer — no
  /// packet reordering, unlike release+reserve). Fails if any on-path link
  /// lacks capacity for the increase; the old rate stays in effect then.
  bool resize_channel(ChannelId id, std::int64_t new_rate_bps) override;

  std::int64_t channel_rate_bps(ChannelId id) const override;

  std::optional<ChannelReservation> channel_info(ChannelId id) const;

  // --- introspection --------------------------------------------------------

  /// Shortest path (hop count) from a to b, inclusive of endpoints.
  /// Empty if unreachable.
  std::vector<HostId> route(HostId a, HostId b) const;

  /// Sum of per-hop propagation latency along route(a, b) — the static
  /// delay floor of the path, before queueing or jitter. Negative (-1us)
  /// when unreachable; zero for a == b. Replica selection seeds its per-site
  /// delay estimates from this.
  SimDuration path_latency(HostId a, HostId b) const override;

  const LinkStats& link_stats(HostId from, HostId to) const;

  Simulator& simulator() { return sim_; }
  Rng& rng() { return rng_; }

 private:
  struct LinkDir {
    LinkConfig cfg;
    LinkStats stats;
    SimTime busy_until{};              ///< best-effort serializer
    std::size_t queued_bytes{0};       ///< bytes waiting for the serializer
    std::int64_t reserved_bps{0};      ///< sum of channel reservations
    std::unordered_map<ChannelId, SimTime> channel_busy_until;
  };
  struct HostState {
    std::string name;
    HostClock clock;
    std::unordered_map<Port, Receiver> ports;
    std::vector<HostId> neighbors;
  };

  static std::uint64_t dir_key(HostId from, HostId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  LinkDir* find_dir(HostId from, HostId to);
  const LinkDir* find_dir(HostId from, HostId to) const;

  /// Schedule the hop from `from` to `to`, then recurse along the path.
  void forward(Packet p, std::size_t hop_index,
               std::shared_ptr<const std::vector<HostId>> path);
  void deliver(const Packet& p);

  Simulator& sim_;
  Rng rng_;
  obs::TraceSink* trace_{nullptr};
  obs::Counter packets_sent_;
  obs::Counter packets_delivered_;
  obs::Counter packets_dropped_loss_;
  obs::Counter packets_dropped_queue_;
  obs::Counter bytes_sent_;
  std::vector<HostState> hosts_;
  std::unordered_map<std::uint64_t, LinkDir> links_;
  std::unordered_map<ChannelId, ChannelReservation> channels_;
  ChannelId next_channel_{1};
  std::uint64_t next_packet_{1};
};

/// The simulated backend's seam-facing name: one `Network` riding one
/// `Simulator` IS the deterministic transport implementation.
using SimTransport = Network;

}  // namespace lod::net
