#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lod/net/bytes.hpp"
#include "lod/net/payload.hpp"
#include "lod/net/result.hpp"
#include "lod/net/transport_base.hpp"

/// \file transport.hpp
/// End-host transport over the abstract `net::Transport` seam.
///
/// Two layers, mirroring what the paper's stack used:
///  - `DatagramSocket`  — raw, unreliable, unordered (UDP-like). Media data
///    packets ride here; a late frame is a dropped frame.
///  - `ReliableEndpoint` — per-peer ordered reliable message delivery with
///    positive ACKs and timer-based retransmission (a deliberately small TCP
///    stand-in). Control traffic (publishing, floor control, RTSP-like
///    commands, HTTP-ish requests) rides here.
///
/// Everything here is backend-agnostic: the same socket/endpoint/RPC objects
/// run over the simulated fabric (`SimTransport`) and over real kernel UDP
/// sockets (`RealTransport`) without a line of difference.

namespace lod::net {

/// UDP-like socket: unreliable, unordered message delivery.
class DatagramSocket {
 public:
  using Handler = std::function<void(const Datagram&)>;

  /// Binds (host, port) on construction and unbinds on destruction.
  DatagramSocket(Transport& net, HostId host, Port port);
  ~DatagramSocket();
  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;

  void on_receive(Handler h) { handler_ = std::move(h); }

  /// Fire-and-forget send. \p header_overhead models UDP/IP framing cost on
  /// the wire without polluting the payload. Tag \p channel to ride a QoS
  /// reservation. A freshly-encoded vector adopts into the Payload with no
  /// byte copy.
  bool send_to(HostId dst, Port dst_port, Payload payload,
               std::uint32_t header_overhead = 28, ChannelId channel = 0);

  /// Scatter-gather send: \p header is the per-send frame header, \p body a
  /// shared immutable attachment (cached segment, inflight message). Neither
  /// is copied; the wire charges header + body + overhead.
  bool send_to(HostId dst, Port dst_port, Payload header, Payload body,
               std::uint32_t header_overhead, ChannelId channel = 0);

  HostId host() const { return host_; }
  Port port() const { return port_; }

 private:
  Transport& net_;
  HostId host_;
  Port port_;
  Handler handler_;
};

/// Ordered, reliable, message-oriented endpoint (one per host/port).
///
/// Each remote (host, port) pair gets an independent sequence space. Senders
/// retransmit unacknowledged segments on a fixed RTO; receivers deliver in
/// order and ACK cumulatively. Duplicate suppression is by sequence number.
///
/// Every endpoint instance carries a unique INCARNATION number in its
/// frames. When a new endpoint reuses a (host, port) — a reconnect — peers
/// see the changed incarnation and reset that peer's receive state instead
/// of mistaking the fresh sequence space for stale duplicates (the same job
/// TCP's ISN randomization does).
class ReliableEndpoint {
 public:
  /// Delivered message: who sent it and its payload (a zero-copy view of
  /// the received datagram's shared body).
  struct Message {
    HostId src;
    Port src_port;
    Payload payload;
  };
  using Handler = std::function<void(const Message&)>;

  ReliableEndpoint(Transport& net, HostId host, Port port,
                   SimDuration rto = msec(200), int max_retries = 20);
  ~ReliableEndpoint();
  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  void on_receive(Handler h) { handler_ = std::move(h); }

  /// Queue a message for reliable in-order delivery to the peer. The bytes
  /// are never copied again: the inflight buffer holds the same shared body
  /// every (re)transmission attaches to its frame.
  void send_to(HostId dst, Port dst_port, Payload payload);

  /// True when every message sent so far has been acknowledged.
  bool all_acked() const;

  /// Number of retransmissions performed (observable in benches/tests).
  std::uint64_t retransmissions() const { return retransmissions_; }

  HostId host() const { return host_; }
  Port port() const { return port_; }

 private:
  struct PeerKey {
    HostId host;
    Port port;
    bool operator==(const PeerKey&) const = default;
  };
  struct PeerKeyHash {
    std::size_t operator()(const PeerKey& k) const {
      return (static_cast<std::size_t>(k.host) << 16) ^ k.port;
    }
  };
  struct TxState {
    std::uint64_t next_seq{0};
    std::uint64_t acked_upto{0};  ///< all seq < this are acknowledged
    std::unordered_map<std::uint64_t, Payload> inflight;
  };
  struct RxState {
    std::uint64_t peer_incarnation{0};
    std::uint64_t next_expected{0};
    std::unordered_map<std::uint64_t, Payload> out_of_order;
  };

  void handle_packet(const Datagram& p);
  void transmit(const PeerKey& peer, std::uint64_t seq);
  void arm_retransmit(const PeerKey& peer, std::uint64_t seq, int tries_left);
  void send_ack(const PeerKey& peer, std::uint64_t ack_upto);

  /// This endpoint's incarnation (unique per constructed endpoint).
  const std::uint64_t incarnation_;

  Transport& net_;
  HostId host_;
  Port port_;
  SimDuration rto_;
  int max_retries_;
  Handler handler_;
  std::unordered_map<PeerKey, TxState, PeerKeyHash> tx_;
  std::unordered_map<PeerKey, RxState, PeerKeyHash> rx_;
  std::uint64_t retransmissions_{0};
  obs::Counter messages_sent_;
  obs::Counter messages_delivered_;
  obs::Counter retransmissions_metric_;
  obs::TraceSink* trace_{nullptr};
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
};

/// Minimal request/response layer over `ReliableEndpoint` — the stand-in for
/// the paper's "server HTTP port and URL for Internet/LAN connections".
class RpcServer {
 public:
  /// A handler maps (path, request body) -> (status code, response body).
  using Handler = std::function<std::pair<int, std::vector<std::byte>>(
      std::string_view path, std::span<const std::byte> body)>;

  RpcServer(Transport& net, HostId host, Port port);

  /// Register a handler for an exact path (e.g. "/publish").
  void route(std::string path, Handler h);

  /// Dispatch a request synchronously through the route table, exactly as a
  /// transport-delivered request would be. This is the bridge other control
  /// planes use — `RealTransport`'s TCP listener serves its length-prefixed
  /// RPC framing by funneling decoded frames through here, so one route
  /// table answers both the reliable-datagram and the TCP path.
  std::pair<int, std::vector<std::byte>> handle(
      std::string_view path, std::span<const std::byte> body) const;

 private:
  void dispatch(const ReliableEndpoint::Message& m);

  ReliableEndpoint ep_;
  std::unordered_map<std::string, Handler> routes_;
};

/// A decoded RPC response: the application-level status plus a zero-copy
/// slice of the response message (callers that stash the body — the edge
/// segment cache — keep it refcounted).
struct RpcReply {
  int status{0};
  Payload body;
};

/// Client side of `RpcServer`.
class RpcClient {
 public:
  /// Response callback: the reply, or the uniform transport error
  /// (`Error::kTimeout` when the deadline passed with no response).
  using Callback = std::function<void(Result<RpcReply>)>;

  /// Per-call knobs.
  struct CallOptions {
    /// Give up and report `Error::kTimeout` after this long. Negative (the
    /// default) disarms the deadline: the callback fires only if a response
    /// arrives. Deterministic sim workloads keep the default so no extra
    /// timer events exist; real-socket callers should always set one.
    SimDuration timeout{usec(-1)};
  };

  RpcClient(Transport& net, HostId host, Port port);
  ~RpcClient();

  /// Issue a request; \p cb fires when the response arrives (or the timeout
  /// in \p opts expires, whichever is first).
  void call(HostId server, Port server_port, std::string_view path,
            std::vector<std::byte> body, Callback cb, CallOptions opts);
  void call(HostId server, Port server_port, std::string_view path,
            std::vector<std::byte> body, Callback cb) {
    call(server, server_port, path, std::move(body), std::move(cb),
         CallOptions{});
  }

 private:
  struct Pending {
    Callback cb;
    EventId deadline{0};  ///< 0 = no deadline armed
  };

  Transport& net_;
  ReliableEndpoint ep_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_req_{1};
};

}  // namespace lod::net
