#pragma once

#include <cstdint>
#include <random>

#include "lod/net/time.hpp"

/// \file rng.hpp
/// Deterministic randomness for the simulation.
///
/// Every stochastic component (jitter, loss, workload generators) owns its own
/// seeded engine so that adding randomness to one module never perturbs the
/// draws seen by another — runs stay reproducible as the system grows.

namespace lod::net {

/// A seeded random source with the small set of distributions the
/// simulation needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x10d5eedULL) : eng_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(eng_); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
  }

  /// True with probability \p p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Zero-mean truncated normal jitter with the given standard deviation,
  /// clamped to +/- 4 sigma so one unlucky draw cannot wreck a schedule.
  SimDuration jitter(SimDuration sigma) {
    if (sigma.us <= 0) return SimDuration{0};
    std::normal_distribution<double> d(0.0, static_cast<double>(sigma.us));
    double v = d(eng_);
    const double cap = 4.0 * static_cast<double>(sigma.us);
    if (v > cap) v = cap;
    if (v < -cap) v = -cap;
    return SimDuration{static_cast<std::int64_t>(v)};
  }

  /// Exponentially distributed duration with the given mean (for Poisson
  /// arrival processes in workload generators).
  SimDuration exponential(SimDuration mean) {
    if (mean.us <= 0) return SimDuration{0};
    std::exponential_distribution<double> d(1.0 / static_cast<double>(mean.us));
    return SimDuration{static_cast<std::int64_t>(d(eng_))};
  }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace lod::net
