#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

/// \file time.hpp
/// Simulated-time primitives for the discrete-event network substrate.
///
/// All simulation time is kept as signed 64-bit microsecond counts wrapped in
/// strong types so that durations and absolute instants cannot be mixed by
/// accident. One microsecond resolution is fine enough for media sync work
/// (the paper's script commands operate at ~100 ms granularity) while leaving
/// ~292k years of headroom before overflow.

namespace lod::net {

/// A span of simulated time, in microseconds.
struct SimDuration {
  std::int64_t us{0};

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return {us + o.us}; }
  constexpr SimDuration operator-(SimDuration o) const { return {us - o.us}; }
  constexpr SimDuration operator-() const { return {-us}; }
  constexpr SimDuration& operator+=(SimDuration o) {
    us += o.us;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    us -= o.us;
    return *this;
  }
  constexpr SimDuration operator*(std::int64_t k) const { return {us * k}; }
  constexpr SimDuration operator/(std::int64_t k) const { return {us / k}; }

  /// Convert to (lossy) floating-point seconds, for reporting only.
  constexpr double seconds() const { return static_cast<double>(us) / 1e6; }
  constexpr double millis() const { return static_cast<double>(us) / 1e3; }
};

/// An absolute instant on the global simulation timeline, in microseconds
/// since simulation start.
struct SimTime {
  std::int64_t us{0};

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return {us + d.us}; }
  constexpr SimTime operator-(SimDuration d) const { return {us - d.us}; }
  constexpr SimDuration operator-(SimTime o) const { return {us - o.us}; }
  constexpr SimTime& operator+=(SimDuration d) {
    us += d.us;
    return *this;
  }

  constexpr double seconds() const { return static_cast<double>(us) / 1e6; }

  static constexpr SimTime max() {
    return {std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr SimTime zero() { return {0}; }
};

/// Construct a duration from raw microseconds.
constexpr SimDuration usec(std::int64_t n) { return {n}; }
/// Construct a duration from milliseconds.
constexpr SimDuration msec(std::int64_t n) { return {n * 1000}; }
/// Construct a duration from whole seconds.
constexpr SimDuration sec(std::int64_t n) { return {n * 1'000'000}; }
/// Construct a duration from fractional seconds (rounded to microseconds).
constexpr SimDuration secf(double s) {
  return {static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))};
}

/// Render a duration as a short human string ("1.250s", "37ms", "12us").
std::string to_string(SimDuration d);
/// Render an instant as seconds since simulation start.
std::string to_string(SimTime t);

}  // namespace lod::net
