#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lod/net/time.hpp"
#include "lod/net/timing_wheel.hpp"
#include "lod/obs/hub.hpp"

/// \file simulator.hpp
/// The discrete-event simulation core.
///
/// Every other substrate (network links, streaming servers, Petri net playout)
/// schedules work here. Events fire in strict (time, insertion-order) order,
/// which makes whole-system runs deterministic and therefore testable. The
/// event queue is a hierarchical timing wheel (see timing_wheel.hpp): O(1)
/// schedule and near-O(1) pop versus the O(log n) binary heap it replaced,
/// with identical (time, seq) firing order.

namespace lod::net {

/// Identifies a scheduled event so it can be cancelled before it fires.
/// Opaque to callers; internally (slot << 32) | generation into the handler
/// slab, so cancel() is O(1) with no hashing. Never zero, and a default-
/// constructed (zero) or stale id is always rejected harmlessly.
using EventId = std::uint64_t;

/// A single-threaded discrete-event simulator.
///
/// Not thread-safe by design: determinism is the point. Handlers may schedule
/// and cancel further events freely, including at the current instant (such
/// events run after the current handler returns, in insertion order).
class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The observability root for this simulation: one registry and one trace
  /// timeline per simulator. Layers attach to it at construction.
  obs::Hub& obs() { return obs_; }
  const obs::Hub& obs() const { return obs_; }

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedule \p h at absolute time \p t. Times in the past are clamped to
  /// "now" (the event still runs, immediately after already-queued events at
  /// the current instant).
  EventId schedule_at(SimTime t, Handler h);

  /// Schedule \p h after \p d has elapsed. Negative durations clamp to now.
  EventId schedule_after(SimDuration d, Handler h) {
    return schedule_at(now_ + (d.us < 0 ? SimDuration{0} : d), std::move(h));
  }

  /// Cancel a pending event. Returns true if the event existed and had not
  /// yet fired. Cancelling an already-fired or unknown id is a harmless no-op.
  bool cancel(EventId id);

  /// Run the single earliest pending event. Returns false if none pending.
  bool step();

  /// Run until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Run all events with time <= \p t, then advance the clock to \p t.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime t);

  /// Run at most \p n events (guards against runaway event storms in tests).
  std::size_t run_steps(std::size_t n);

  /// Number of events currently pending (cancelled events excluded).
  std::size_t pending() const { return live_; }

 private:
  /// One slab cell per in-flight handler. Wheel items stay trivially
  /// copyable (they are re-placed on every cascade); the handler is moved
  /// exactly twice — into its cell at schedule, out at fire. The generation
  /// counter makes stale ids (fired or cancelled, slot since reused) miss:
  /// an id only resolves while its generation matches the cell's.
  struct Cell {
    Handler h;
    std::uint32_t gen{1};
    bool live{false};
  };

  static std::uint32_t id_slot(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static std::uint32_t id_gen(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  /// Retire a cell: drop the handler, bump the generation so the id (and
  /// its lazily-remaining wheel item) goes stale, recycle the slot.
  void free_cell(std::uint32_t slot);

  /// Pop the next live (non-cancelled) item; sweeps cancelled ones lazily.
  bool pop_next(TimingWheel::Item& out);

  SimTime now_{};
  obs::Hub obs_;
  obs::Counter events_scheduled_;
  obs::Counter events_fired_;
  obs::Counter events_cancelled_;
  std::uint64_t next_seq_{0};
  TimingWheel wheel_;
  std::vector<Cell> cells_;
  std::vector<std::uint32_t> free_;  ///< recycled slots, LIFO
  std::size_t live_{0};
};

}  // namespace lod::net
