#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lod/net/time.hpp"
#include "lod/obs/hub.hpp"

/// \file simulator.hpp
/// The discrete-event simulation core.
///
/// Every other substrate (network links, streaming servers, Petri net playout)
/// schedules work here. Events fire in strict (time, insertion-order) order,
/// which makes whole-system runs deterministic and therefore testable.

namespace lod::net {

/// Identifies a scheduled event so it can be cancelled before it fires.
using EventId = std::uint64_t;

/// A single-threaded discrete-event simulator.
///
/// Not thread-safe by design: determinism is the point. Handlers may schedule
/// and cancel further events freely, including at the current instant (such
/// events run after the current handler returns, in insertion order).
class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The observability root for this simulation: one registry and one trace
  /// timeline per simulator. Layers attach to it at construction.
  obs::Hub& obs() { return obs_; }
  const obs::Hub& obs() const { return obs_; }

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedule \p h at absolute time \p t. Times in the past are clamped to
  /// "now" (the event still runs, immediately after already-queued events at
  /// the current instant).
  EventId schedule_at(SimTime t, Handler h);

  /// Schedule \p h after \p d has elapsed. Negative durations clamp to now.
  EventId schedule_after(SimDuration d, Handler h) {
    return schedule_at(now_ + (d.us < 0 ? SimDuration{0} : d), std::move(h));
  }

  /// Cancel a pending event. Returns true if the event existed and had not
  /// yet fired. Cancelling an already-fired or unknown id is a harmless no-op.
  bool cancel(EventId id);

  /// Run the single earliest pending event. Returns false if none pending.
  bool step();

  /// Run until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Run all events with time <= \p t, then advance the clock to \p t.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime t);

  /// Run at most \p n events (guards against runaway event storms in tests).
  std::size_t run_steps(std::size_t n);

  /// Number of events currently pending (including cancelled-but-unswept).
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-instant events
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  bool pop_next(Entry& out);

  SimTime now_{};
  obs::Hub obs_;
  obs::Counter events_scheduled_;
  obs::Counter events_fired_;
  obs::Counter events_cancelled_;
  std::uint64_t next_seq_{0};
  EventId next_id_{1};
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_map<EventId, Handler> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace lod::net
