#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// \file bytes.hpp
/// Little-endian byte-stream serialization used by the transport layer and
/// the ASF container. Deliberately boring: fixed-width integers, doubles via
/// bit copy, and length-prefixed strings/blobs. Readers bound-check every
/// access and throw `std::out_of_range` on truncated input — a malformed
/// packet must never become undefined behaviour.

namespace lod::net {

/// Append-only serializer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { put_int(v); }
  void u32(std::uint32_t v) { put_int(v); }
  void u64(std::uint64_t v) { put_int(v); }
  void i64(std::int64_t v) { put_int(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(std::as_bytes(std::span{s.data(), s.size()}));
  }
  /// Length-prefixed (u32) opaque blob.
  void blob(std::span<const std::byte> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b);
  }
  /// Unprefixed raw bytes.
  void raw(std::span<const std::byte> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::byte>& bytes() const& { return buf_; }
  std::vector<std::byte> take() && { return std::move(buf_); }

 private:
  template <typename T>
  void put_int(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }
  std::vector<std::byte> buf_;
};

/// Bounds-checked deserializer over a borrowed byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return get_int<std::uint16_t>(); }
  std::uint32_t u32() { return get_int<std::uint32_t>(); }
  std::uint64_t u64() { return get_int<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    auto s = take(n);
    return std::string(reinterpret_cast<const char*>(s.data()), s.size());
  }
  std::vector<std::byte> blob() {
    const std::uint32_t n = u32();
    auto s = take(n);
    return std::vector<std::byte>(s.begin(), s.end());
  }
  std::span<const std::byte> raw(std::size_t n) { return take(n); }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  /// Bytes consumed so far — lets a caller slice a shared buffer at the
  /// reader's position instead of copying a blob out of it.
  std::size_t offset() const { return pos_; }

 private:
  std::span<const std::byte> take(std::size_t n) {
    if (remaining() < n) throw std::out_of_range("ByteReader: truncated input");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  template <typename T>
  T get_int() {
    auto s = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(s[i])) << (8 * i);
    }
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_{0};
};

}  // namespace lod::net
