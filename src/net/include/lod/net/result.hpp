#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <variant>

/// \file result.hpp
/// A small expected-style result for the RPC/transport surface.
///
/// Real sockets fail in ways the simulator never did (ECONNREFUSED, wall
/// clock timeouts, peers closing mid-frame). Instead of sentinel status
/// codes and bools, calls that can fail in transit report a uniform
/// `Result<T>`: either the value, or a `net::Error` that means the same
/// thing on both backends — a sim RPC to an unreachable host and a real
/// RPC to a dead server both surface `Error::kTimeout`.

namespace lod::net {

enum class Error : std::uint8_t {
  kUnroutable = 1,  ///< no route / unknown endpoint; send was never possible
  kRefused,         ///< peer actively refused (ECONNREFUSED)
  kTimeout,         ///< no reply within the caller's deadline
  kClosed,          ///< connection closed mid-exchange
  kTooLarge,        ///< message exceeds the backend's datagram/frame limit
  kMalformed,       ///< peer sent bytes that do not parse as the protocol
  kIo,              ///< any other socket/OS error
};

inline const char* to_string(Error e) {
  switch (e) {
    case Error::kUnroutable: return "unroutable";
    case Error::kRefused: return "refused";
    case Error::kTimeout: return "timeout";
    case Error::kClosed: return "closed";
    case Error::kTooLarge: return "too_large";
    case Error::kMalformed: return "malformed";
    case Error::kIo: return "io";
  }
  return "unknown";
}

/// Value-or-error. `T` must not itself be `E`. Deliberately tiny: the
/// handful of accessors the call sites actually use, nothing more.
template <typename T, typename E = Error>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit on purpose
  Result(E error) : v_(error) {}             // NOLINT: implicit on purpose

  static Result ok(T value) { return Result(std::move(value)); }
  static Result err(E error) { return Result(error); }

  bool has_value() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return has_value(); }

  T& value() {
    if (!has_value()) throw std::logic_error("Result: no value");
    return std::get<T>(v_);
  }
  const T& value() const {
    if (!has_value()) throw std::logic_error("Result: no value");
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  E error() const {
    if (has_value()) throw std::logic_error("Result: not an error");
    return std::get<E>(v_);
  }

  T value_or(T fallback) const {
    return has_value() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, E> v_;
};

/// Success-or-error (no payload).
template <typename E>
class Result<void, E> {
 public:
  Result() = default;
  Result(E error) : err_(error), ok_(false) {}  // NOLINT: implicit on purpose

  static Result ok() { return Result(); }
  static Result err(E error) { return Result(error); }

  bool has_value() const { return ok_; }
  explicit operator bool() const { return ok_; }
  E error() const {
    if (ok_) throw std::logic_error("Result: not an error");
    return err_;
  }

 private:
  E err_{};
  bool ok_{true};
};

}  // namespace lod::net
