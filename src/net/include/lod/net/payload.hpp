#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

/// \file payload.hpp
/// Refcounted immutable byte buffers for the data plane.
///
/// A `Payload` is a view (offset + length) into a shared, immutable byte
/// body. Copying a Payload bumps a refcount; slicing one produces another
/// view of the same body. The contract the hot path is built on:
///
///   a packet's bytes are copied ONCE, at encode, and never again per hop.
///
/// Concretely: the transport keeps Payloads in its inflight/out-of-order
/// buffers (retransmissions re-send the same body), the edge tier caches
/// segment fills as slices of the fetched response, and the player's reorder
/// buffer holds slices of received datagrams. The only byte copies left are
/// the initial encode (ByteWriter building a frame) and the terminal decode
/// (ASF parse into access units).
///
/// `Payload::stats()` counts the byte copies the class itself performs
/// (`copy_of`, `to_vector`); bench_h1_hotpath asserts this stays flat as hop
/// count grows. Stats are thread-local so sharded runs stay race-free.

namespace lod::net {

class Payload {
 public:
  /// Per-thread accounting of actual byte copies made through this class.
  struct Stats {
    std::uint64_t bytes_copied{0};  ///< bytes duplicated (copy_of/to_vector)
    std::uint64_t copies{0};        ///< copy operations
    std::uint64_t adopts{0};        ///< buffers adopted without copying
    std::uint64_t slices{0};        ///< zero-copy views taken
  };

  Payload() = default;

  /// Adopt \p v as the shared body — no byte copy. Implicit on purpose:
  /// `p.payload = std::move(writer).take()` is the canonical encode step.
  Payload(std::vector<std::byte> v)
      : body_(std::make_shared<const std::vector<std::byte>>(std::move(v))),
        off_(0),
        len_(body_->size()) {
    ++tls_stats().adopts;
  }

  /// The one deliberate copy: materialize foreign bytes into a fresh body.
  static Payload copy_of(std::span<const std::byte> b) {
    Stats& st = tls_stats();
    ++st.copies;
    st.bytes_copied += b.size();
    return Payload(std::vector<std::byte>(b.begin(), b.end()));
  }

  /// Zero-copy sub-view. \p off/\p len are clamped to this view's bounds.
  Payload slice(std::size_t off, std::size_t len) const {
    Payload out;
    if (off > len_) off = len_;
    if (len > len_ - off) len = len_ - off;
    out.body_ = body_;
    out.off_ = off_ + off;
    out.len_ = len;
    ++tls_stats().slices;
    return out;
  }

  std::span<const std::byte> view() const {
    return body_ ? std::span<const std::byte>(body_->data() + off_, len_)
                 : std::span<const std::byte>{};
  }
  operator std::span<const std::byte>() const { return view(); }

  const std::byte* data() const { return body_ ? body_->data() + off_ : nullptr; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  /// Counted materialization, for callers that genuinely need ownership of a
  /// mutable vector (compat shims, decode staging).
  std::vector<std::byte> to_vector() const {
    Stats& st = tls_stats();
    ++st.copies;
    st.bytes_copied += len_;
    auto v = view();
    return std::vector<std::byte>(v.begin(), v.end());
  }

  /// How many Payload views share this body (0 for a null payload). Tests
  /// use this to prove caches/buffers share rather than duplicate.
  long owners() const { return body_ ? body_.use_count() : 0; }

  static Stats stats() { return tls_stats(); }
  static void reset_stats() { tls_stats() = Stats{}; }

 private:
  static Stats& tls_stats() {
    thread_local Stats s;
    return s;
  }

  std::shared_ptr<const std::vector<std::byte>> body_;
  std::size_t off_{0};
  std::size_t len_{0};
};

}  // namespace lod::net
