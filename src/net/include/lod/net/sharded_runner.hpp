#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lod/net/simulator.hpp"
#include "lod/obs/metrics.hpp"
#include "lod/obs/trace.hpp"

/// \file sharded_runner.hpp
/// Horizontal scale-out for the single-threaded simulator: partition N
/// independent LOD sessions across K `Simulator` shards, one per worker
/// thread, and merge the results.
///
/// The design keeps each shard's prized determinism: a shard is a complete,
/// self-contained simulation (its own Simulator, Network, servers, players)
/// whose behaviour depends only on (shard index, shard count, derived seed)
/// — never on thread scheduling. Shards share NOTHING mutable while running;
/// merging happens after every worker has joined. Two runs with the same
/// root seed and shard count therefore produce byte-identical merged
/// snapshots and collated traces, which is what makes a 4-shard run as
/// testable as a 1-shard one.
///
/// Observability composes across the cut: per-shard `obs::Snapshot`s merge
/// via `Snapshot::merged` (counters sum, histograms merge, gauges last-write
/// + per-shard `{shard=K}` series) and per-shard trace timelines collate via
/// `obs::collate_events`, so `obs_report` and the Prometheus/JSON exporters
/// work unchanged on merged output. Each shard's TraceSink gets the id seed
/// `(shard+1) << 32` so trace/span ids cannot collide in the merge.

namespace lod::net {

/// Deterministic per-shard seed derivation (splitmix64 over the root seed
/// and shard index). Shard seeds are decorrelated — adjacent root seeds or
/// shard indices produce unrelated streams — and stable across platforms.
std::uint64_t derive_shard_seed(std::uint64_t root_seed, std::size_t shard);

/// What a shard body receives: its own simulator plus its coordinates in
/// the run. The body builds its deployment, schedules its share of the
/// sessions (conventionally global session i belongs to shard i % count),
/// and runs the simulator to completion before returning.
struct ShardEnv {
  Simulator& sim;
  std::size_t shard{0};
  std::size_t shard_count{1};
  std::uint64_t seed{0};
};

/// One shard's outcome, captured after its worker finished.
struct ShardResult {
  std::size_t shard{0};
  std::uint64_t seed{0};
  obs::Snapshot snapshot;
  std::vector<obs::TraceEvent> trace;
  std::uint64_t events_fired{0};
  SimTime end_time{};
  /// CPU microseconds the worker's thread spent inside the shard body
  /// (thread CPU clock, so core timesharing on small machines does not
  /// inflate it). The maximum across shards is the run's critical path —
  /// its wall time on a machine with one uncontended core per shard.
  std::int64_t busy_us{0};
};

/// The whole run: per-shard results plus the cross-shard merge.
struct ShardedResult {
  std::vector<ShardResult> shards;
  /// Snapshot::merged over the shards, labeled "0".."K-1" in shard order.
  obs::Snapshot merged;
  /// All shards' trace events collated by (t, shard, emit order).
  std::vector<obs::TraceEvent> trace;
  /// Elapsed wall-clock of the whole run (launch to last join).
  std::int64_t wall_us{0};
  /// max over shards of busy_us: the parallel critical path.
  std::int64_t critical_path_us{0};

  std::uint64_t total_events_fired() const {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.events_fired;
    return n;
  }
};

/// Runs K shard bodies on a pool of std::threads and merges their results.
class ShardedRunner {
 public:
  using ShardBody = std::function<void(ShardEnv&)>;

  /// \p shards is clamped to >= 1. \p enable_trace switches every shard's
  /// TraceSink on (with collision-free id seeds) before the body runs.
  explicit ShardedRunner(std::size_t shards, std::uint64_t root_seed = 0x5eed,
                         bool enable_trace = false);

  std::size_t shard_count() const { return shards_; }
  std::uint64_t root_seed() const { return root_seed_; }

  /// Execute \p body once per shard (concurrently, one worker thread per
  /// shard) and merge. The body must confine itself to its ShardEnv — no
  /// shared mutable state — or determinism and TSan-cleanliness are gone.
  /// A body that throws aborts the run: the first failing shard's exception
  /// (in shard order) is rethrown on the caller after every worker joined.
  ShardedResult run(const ShardBody& body) const;

 private:
  std::size_t shards_;
  std::uint64_t root_seed_;
  bool enable_trace_;
};

}  // namespace lod::net
