#include "lod/net/transport.hpp"

namespace lod::net {

namespace {
// Wire tags for ReliableEndpoint frames.
constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kAck = 2;

/// Incarnation source. thread_local, not global: each simulation shard runs
/// on its own thread (see net::ShardedRunner), and a process-wide counter
/// would both race under TSan and make a shard's incarnation numbers depend
/// on cross-thread interleaving, breaking per-shard determinism. Within one
/// thread the single-threaded simulator keeps a plain counter deterministic.
std::uint64_t next_incarnation() {
  thread_local std::uint64_t counter = 0x1c4b;
  return ++counter;
}
// Rough per-segment framing overhead charged on the wire (TCP/IP-ish).
constexpr std::uint32_t kSegmentOverhead = 40;
}  // namespace

// --- DatagramSocket ---------------------------------------------------------

DatagramSocket::DatagramSocket(Transport& net, HostId host, Port port)
    : net_(net), host_(host), port_(port) {
  net_.bind(host_, port_, [this](const Datagram& p) {
    if (handler_) handler_(p);
  });
}

DatagramSocket::~DatagramSocket() { net_.unbind(host_, port_); }

bool DatagramSocket::send_to(HostId dst, Port dst_port, Payload payload,
                             std::uint32_t header_overhead, ChannelId channel) {
  Datagram p;
  p.src = host_;
  p.dst = dst;
  p.src_port = port_;
  p.dst_port = dst_port;
  p.wire_size = static_cast<std::uint32_t>(payload.size()) + header_overhead;
  p.payload = std::move(payload);
  p.channel = channel;
  return net_.send(std::move(p));
}

bool DatagramSocket::send_to(HostId dst, Port dst_port, Payload header,
                             Payload body, std::uint32_t header_overhead,
                             ChannelId channel) {
  Datagram p;
  p.src = host_;
  p.dst = dst;
  p.src_port = port_;
  p.dst_port = dst_port;
  p.wire_size = static_cast<std::uint32_t>(header.size() + body.size()) +
                header_overhead;
  p.payload = std::move(header);
  p.body = std::move(body);
  p.channel = channel;
  return net_.send(std::move(p));
}

// --- ReliableEndpoint -------------------------------------------------------

ReliableEndpoint::ReliableEndpoint(Transport& net, HostId host, Port port,
                                   SimDuration rto, int max_retries)
    : incarnation_(next_incarnation()),
      net_(net),
      host_(host),
      port_(port),
      rto_(rto),
      max_retries_(max_retries) {
  auto& reg = net_.obs().metrics();
  messages_sent_ = reg.counter("lod.transport.messages_sent");
  messages_delivered_ = reg.counter("lod.transport.messages_delivered");
  retransmissions_metric_ = reg.counter("lod.transport.retransmissions");
  trace_ = &net_.obs().trace();
  net_.bind(host_, port_, [this](const Datagram& p) { handle_packet(p); });
}

ReliableEndpoint::~ReliableEndpoint() {
  *alive_ = false;
  net_.unbind(host_, port_);
}

void ReliableEndpoint::send_to(HostId dst, Port dst_port, Payload payload) {
  const PeerKey peer{dst, dst_port};
  TxState& tx = tx_[peer];
  const std::uint64_t seq = tx.next_seq++;
  tx.inflight.emplace(seq, std::move(payload));
  messages_sent_.inc();
  transmit(peer, seq);
  arm_retransmit(peer, seq, max_retries_);
}

void ReliableEndpoint::transmit(const PeerKey& peer, std::uint64_t seq) {
  const TxState& tx = tx_.at(peer);
  auto it = tx.inflight.find(seq);
  if (it == tx.inflight.end()) return;  // already acked

  // Per-transmit frame header only; the message bytes ride as a shared body
  // attachment, so retransmissions re-send the same buffer copy-free.
  ByteWriter w;
  w.u8(kData);
  w.u64(incarnation_);
  w.u64(seq);

  Datagram p;
  p.src = host_;
  p.dst = peer.host;
  p.src_port = port_;
  p.dst_port = peer.port;
  p.payload = std::move(w).take();
  p.body = it->second;
  p.wire_size = static_cast<std::uint32_t>(p.payload.size() + p.body.size()) +
                kSegmentOverhead;
  net_.send(std::move(p));
}

void ReliableEndpoint::arm_retransmit(const PeerKey& peer, std::uint64_t seq,
                                      int tries_left) {
  if (tries_left <= 0) return;  // give up; peer is unreachable
  net_.schedule_after(
      rto_, [this, alive = alive_, peer, seq, tries_left] {
        if (!*alive) return;
        auto it = tx_.find(peer);
        if (it == tx_.end() || !it->second.inflight.count(seq)) return;
        ++retransmissions_;
        retransmissions_metric_.inc();
        if (trace_->enabled()) {
          trace_->emit(obs::EventType::kMsgRetransmit, host_,
                       static_cast<std::int64_t>(seq), peer.host);
        }
        transmit(peer, seq);
        arm_retransmit(peer, seq, tries_left - 1);
      });
}

void ReliableEndpoint::send_ack(const PeerKey& peer, std::uint64_t ack_upto) {
  ByteWriter w;
  w.u8(kAck);
  w.u64(rx_[peer].peer_incarnation);  // which incarnation this ACK answers
  w.u64(ack_upto);
  Datagram p;
  p.src = host_;
  p.dst = peer.host;
  p.src_port = port_;
  p.dst_port = peer.port;
  p.payload = std::move(w).take();
  p.wire_size = static_cast<std::uint32_t>(p.payload.size()) + kSegmentOverhead;
  net_.send(std::move(p));
}

void ReliableEndpoint::handle_packet(const Datagram& p) {
  ByteReader r(p.payload);
  const std::uint8_t tag = r.u8();
  const PeerKey peer{p.src, p.src_port};

  if (tag == kAck) {
    const std::uint64_t for_incarnation = r.u64();
    if (for_incarnation != incarnation_) return;  // stale ACK for a past self
    const std::uint64_t upto = r.u64();
    TxState& tx = tx_[peer];
    if (upto > tx.acked_upto) {
      for (std::uint64_t s = tx.acked_upto; s < upto; ++s) tx.inflight.erase(s);
      tx.acked_upto = upto;
    }
    return;
  }

  if (tag != kData) return;  // unknown frame; drop
  const std::uint64_t incarnation = r.u64();
  const std::uint64_t seq = r.u64();
  // Message bytes: the body attachment (scatter-gather frames), else a
  // length-prefixed blob inline after the header (legacy framing). Either
  // way, a zero-copy view — never a byte copy.
  Payload msg;
  if (r.done()) {
    msg = p.body;
  } else {
    const std::uint32_t n = r.u32();
    msg = p.payload.slice(r.offset(), n);
  }

  RxState& rx = rx_[peer];
  if (rx.peer_incarnation != incarnation) {
    // Incarnation 0 means "never heard from this peer" — just learn it.
    // A CHANGED incarnation means a new endpoint took over the peer's
    // (host, port): restart the conversation in BOTH directions — fresh
    // receive state instead of treating the new sequence space as
    // duplicates, and a fresh send sequence (in-flight messages were
    // addressed to the old peer, which no longer exists to ack them).
    const bool reincarnated = rx.peer_incarnation != 0;
    rx = RxState{};
    rx.peer_incarnation = incarnation;
    if (reincarnated) tx_.erase(peer);
  }
  if (seq == rx.next_expected) {
    // Fast path: the common in-order case delivers without touching the
    // out-of-order buffer at all.
    ++rx.next_expected;
    messages_delivered_.inc();
    if (handler_) handler_(Message{peer.host, peer.port, std::move(msg)});
    // Drain any now-contiguous stash (gap fill), still in seq order.
    for (auto hole = rx.out_of_order.find(rx.next_expected);
         hole != rx.out_of_order.end();
         hole = rx.out_of_order.find(rx.next_expected)) {
      Payload next = std::move(hole->second);
      rx.out_of_order.erase(hole);
      ++rx.next_expected;
      messages_delivered_.inc();
      if (handler_) handler_(Message{peer.host, peer.port, std::move(next)});
    }
  } else if (seq > rx.next_expected) {
    rx.out_of_order.emplace(seq, std::move(msg));  // no-op on duplicates
  }
  // Cumulative ACK (also re-ACKs duplicates so the sender can stop retrying).
  send_ack(peer, rx.next_expected);
}

bool ReliableEndpoint::all_acked() const {
  for (const auto& [peer, tx] : tx_) {
    if (!tx.inflight.empty()) return false;
  }
  return true;
}

// --- RpcServer / RpcClient --------------------------------------------------

namespace {
constexpr std::uint8_t kRpcRequest = 1;
constexpr std::uint8_t kRpcResponse = 2;
}  // namespace

RpcServer::RpcServer(Transport& net, HostId host, Port port)
    : ep_(net, host, port) {
  ep_.on_receive([this](const ReliableEndpoint::Message& m) { dispatch(m); });
}

void RpcServer::route(std::string path, Handler h) {
  routes_[std::move(path)] = std::move(h);
}

std::pair<int, std::vector<std::byte>> RpcServer::handle(
    std::string_view path, std::span<const std::byte> body) const {
  auto it = routes_.find(std::string(path));
  if (it == routes_.end()) return {404, {}};
  return it->second(path, body);
}

void RpcServer::dispatch(const ReliableEndpoint::Message& m) {
  ByteReader r(m.payload);
  if (r.u8() != kRpcRequest) return;
  const std::uint64_t req_id = r.u64();
  const std::string path = r.str();
  const std::uint32_t body_len = r.u32();
  const auto body = r.raw(body_len);

  auto [status, resp_body] = handle(path, body);

  ByteWriter w;
  w.u8(kRpcResponse);
  w.u64(req_id);
  w.u32(static_cast<std::uint32_t>(status));
  w.blob(resp_body);
  ep_.send_to(m.src, m.src_port, std::move(w).take());
}

RpcClient::RpcClient(Transport& net, HostId host, Port port)
    : net_(net), ep_(net, host, port) {
  ep_.on_receive([this](const ReliableEndpoint::Message& m) {
    ByteReader r(m.payload);
    if (r.u8() != kRpcResponse) return;
    const std::uint64_t req_id = r.u64();
    const int status = static_cast<int>(r.u32());
    const std::uint32_t body_len = r.u32();
    // Zero-copy: the callback's body is a slice of the response message.
    const Payload body = m.payload.slice(r.offset(), body_len);
    auto it = pending_.find(req_id);
    if (it == pending_.end()) return;  // late reply after a timeout fired
    Pending p = std::move(it->second);
    pending_.erase(it);
    if (p.deadline != 0) net_.cancel(p.deadline);
    p.cb(RpcReply{status, body});
  });
}

RpcClient::~RpcClient() {
  // Disarm outstanding deadlines; their closures reference this object.
  for (auto& [id, p] : pending_) {
    if (p.deadline != 0) net_.cancel(p.deadline);
  }
}

void RpcClient::call(HostId server, Port server_port, std::string_view path,
                     std::vector<std::byte> body, Callback cb,
                     CallOptions opts) {
  const std::uint64_t id = next_req_++;
  Pending p;
  p.cb = std::move(cb);
  if (opts.timeout.us >= 0) {
    p.deadline = net_.schedule_after(opts.timeout, [this, id] {
      auto it = pending_.find(id);
      if (it == pending_.end()) return;
      Callback cb = std::move(it->second.cb);
      pending_.erase(it);
      cb(Error::kTimeout);
    });
  }
  pending_.emplace(id, std::move(p));
  ByteWriter w;
  w.u8(kRpcRequest);
  w.u64(id);
  w.str(path);
  w.blob(body);
  ep_.send_to(server, server_port, std::move(w).take());
}

}  // namespace lod::net
