#include "lod/net/network.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace lod::net {

Network::Network(Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {
  auto& reg = sim_.obs().metrics();
  trace_ = &sim_.obs().trace();
  packets_sent_ = reg.counter("lod.net.packets_sent");
  packets_delivered_ = reg.counter("lod.net.packets_delivered");
  packets_dropped_loss_ = reg.counter("lod.net.packets_dropped_loss");
  packets_dropped_queue_ = reg.counter("lod.net.packets_dropped_queue");
  bytes_sent_ = reg.counter("lod.net.bytes_sent");
}

HostId Network::add_host(std::string name, HostClock clock) {
  const HostId id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(HostState{std::move(name), clock, {}, {}});
  return id;
}

void Network::add_link(HostId a, HostId b, const LinkConfig& cfg) {
  if (a >= hosts_.size() || b >= hosts_.size() || a == b) {
    throw std::invalid_argument("add_link: bad endpoints");
  }
  links_[dir_key(a, b)] = LinkDir{cfg, {}, {}, 0, 0, {}};
  links_[dir_key(b, a)] = LinkDir{cfg, {}, {}, 0, 0, {}};
  auto& na = hosts_[a].neighbors;
  if (std::find(na.begin(), na.end(), b) == na.end()) na.push_back(b);
  auto& nb = hosts_[b].neighbors;
  if (std::find(nb.begin(), nb.end(), a) == nb.end()) nb.push_back(a);
}

void Network::set_link_config(HostId from, HostId to, const LinkConfig& cfg) {
  LinkDir* d = find_dir(from, to);
  if (!d) throw std::invalid_argument("set_link_config: no such link");
  d->cfg = cfg;
}

Network::LinkDir* Network::find_dir(HostId from, HostId to) {
  auto it = links_.find(dir_key(from, to));
  return it == links_.end() ? nullptr : &it->second;
}
const Network::LinkDir* Network::find_dir(HostId from, HostId to) const {
  auto it = links_.find(dir_key(from, to));
  return it == links_.end() ? nullptr : &it->second;
}

void Network::bind(HostId h, Port port, Receiver r) {
  hosts_.at(h).ports[port] = std::move(r);
}

void Network::unbind(HostId h, Port port) { hosts_.at(h).ports.erase(port); }

std::vector<HostId> Network::route(HostId a, HostId b) const {
  if (a >= hosts_.size() || b >= hosts_.size()) return {};
  if (a == b) return {a};
  // BFS over the (small) topology; recomputed per call which is fine at the
  // scales the benches use. A routing cache would be premature here.
  std::vector<HostId> prev(hosts_.size(), a);
  std::vector<bool> seen(hosts_.size(), false);
  std::deque<HostId> q{a};
  seen[a] = true;
  while (!q.empty()) {
    HostId u = q.front();
    q.pop_front();
    for (HostId v : hosts_[u].neighbors) {
      if (seen[v]) continue;
      seen[v] = true;
      prev[v] = u;
      if (v == b) {
        std::vector<HostId> path{b};
        for (HostId w = b; w != a; w = prev[w]) path.push_back(prev[w]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      q.push_back(v);
    }
  }
  return {};
}

SimDuration Network::path_latency(HostId a, HostId b) const {
  if (a == b) return SimDuration{0};
  const auto path = route(a, b);
  if (path.size() < 2) return SimDuration{-1};
  SimDuration total{0};
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const LinkDir* d = find_dir(path[i], path[i + 1]);
    if (!d) return SimDuration{-1};
    total += d->cfg.latency;
  }
  return total;
}

bool Network::send(Packet p) {
  if (p.src >= hosts_.size() || p.dst >= hosts_.size()) return false;
  p.id = next_packet_++;
  packets_sent_.inc();
  bytes_sent_.inc(p.wire_size);
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kPacketSend, p.src,
                 static_cast<std::int64_t>(p.id), p.wire_size);
  }
  if (p.src == p.dst) {
    // Loopback: deliver after the current handler unwinds, keeping the
    // "receive is always asynchronous" invariant callers rely on. Move the
    // packet in — refcounted payloads make this pointer-cheap.
    sim_.schedule_after(usec(0), [this, p = std::move(p)] { deliver(p); });
    return true;
  }
  auto path = std::make_shared<const std::vector<HostId>>(route(p.src, p.dst));
  if (path->size() < 2) return false;
  forward(std::move(p), 0, std::move(path));
  return true;
}

void Network::forward(Packet p, std::size_t hop_index,
                      std::shared_ptr<const std::vector<HostId>> path) {
  const HostId from = (*path)[hop_index];
  const HostId to = (*path)[hop_index + 1];
  LinkDir* dir = find_dir(from, to);
  if (!dir) return;  // topology changed under us; drop

  // Loss is drawn per hop, before queueing (wire loss, not buffer loss).
  if (rng_.bernoulli(dir->cfg.loss_rate)) {
    ++dir->stats.packets_dropped_loss;
    packets_dropped_loss_.inc();
    sim_.obs().flight().record(
        obs::FlightType::kFrameDrop, static_cast<std::uint32_t>(from), p.id,
        static_cast<std::uint64_t>(obs::DropCause::kLoss));
    if (trace_->enabled()) {
      trace_->emit(obs::EventType::kPacketDropLoss, from,
                   static_cast<std::int64_t>(p.id), to);
    }
    return;
  }

  const SimTime now = sim_.now();
  SimTime depart;
  if (p.channel != 0 && channels_.count(p.channel)) {
    // Reserved-rate serialization: the channel has its own serializer slice
    // and never competes with best-effort traffic.
    const auto& res = channels_.at(p.channel);
    SimTime& busy = dir->channel_busy_until[p.channel];
    const SimTime start = std::max(now, busy);
    const std::int64_t bps = std::max<std::int64_t>(res.rate_bps, 1);
    const SimDuration tx{static_cast<std::int64_t>(p.wire_size) * 8'000'000 /
                         bps};
    busy = start + tx;
    depart = busy;
  } else {
    // Best-effort: drop-tail bound, FIFO serializer at (capacity - reserved).
    if (dir->queued_bytes + p.wire_size > dir->cfg.queue_bytes) {
      ++dir->stats.packets_dropped_queue;
      packets_dropped_queue_.inc();
      sim_.obs().flight().record(
          obs::FlightType::kFrameDrop, static_cast<std::uint32_t>(from), p.id,
          static_cast<std::uint64_t>(obs::DropCause::kQueue));
      if (trace_->enabled()) {
        trace_->emit(obs::EventType::kPacketDropQueue, from,
                     static_cast<std::int64_t>(p.id), to);
      }
      return;
    }
    const std::int64_t bps =
        std::max<std::int64_t>(dir->cfg.bandwidth_bps - dir->reserved_bps, 1);
    const SimTime start = std::max(now, dir->busy_until);
    const SimDuration tx{static_cast<std::int64_t>(p.wire_size) * 8'000'000 /
                         bps};
    dir->busy_until = start + tx;
    depart = dir->busy_until;
    dir->queued_bytes += p.wire_size;
    dir->stats.total_queue_delay += (start - now);
  }

  ++dir->stats.packets_sent;
  dir->stats.bytes_sent += p.wire_size;

  const SimDuration jit = rng_.jitter(dir->cfg.jitter);
  SimTime arrive = depart + dir->cfg.latency + jit;
  // Jitter models queueing variance beyond the propagation floor: a packet
  // can be late, never faster than light.
  if (arrive < depart + dir->cfg.latency) arrive = depart + dir->cfg.latency;

  const std::uint32_t wire = p.wire_size;
  const bool best_effort = (p.channel == 0 || !channels_.count(p.channel));
  sim_.schedule_at(
      arrive, [this, p = std::move(p), hop_index, path = std::move(path), from,
               to, wire, best_effort]() mutable {
        if (best_effort) {
          if (LinkDir* d = find_dir(from, to)) {
            d->queued_bytes -= std::min<std::size_t>(d->queued_bytes, wire);
          }
        }
        if (hop_index + 2 >= path->size()) {
          deliver(p);
        } else {
          forward(std::move(p), hop_index + 1, std::move(path));
        }
      });
}

void Network::deliver(const Packet& p) {
  packets_delivered_.inc();
  if (trace_->enabled()) {
    trace_->emit(obs::EventType::kPacketRecv, p.dst,
                 static_cast<std::int64_t>(p.id), p.wire_size);
  }
  auto& host = hosts_.at(p.dst);
  auto it = host.ports.find(p.dst_port);
  if (it != host.ports.end() && it->second) it->second(p);
}

std::optional<ChannelId> Network::reserve_channel(HostId src, HostId dst,
                                                  std::int64_t rate_bps) {
  if (rate_bps <= 0) return std::nullopt;
  const auto path = route(src, dst);
  if (path.size() < 2) return std::nullopt;
  // Admission control: every on-path direction must have spare capacity.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const LinkDir* d = find_dir(path[i], path[i + 1]);
    if (!d || d->reserved_bps + rate_bps > d->cfg.bandwidth_bps) {
      return std::nullopt;
    }
  }
  ChannelReservation res;
  res.id = next_channel_++;
  res.src = src;
  res.dst = dst;
  res.rate_bps = rate_bps;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    find_dir(path[i], path[i + 1])->reserved_bps += rate_bps;
    res.path.emplace_back(path[i], path[i + 1]);
  }
  channels_.emplace(res.id, res);
  return res.id;
}

void Network::release_channel(ChannelId id) {
  auto it = channels_.find(id);
  if (it == channels_.end()) return;
  for (auto [from, to] : it->second.path) {
    if (LinkDir* d = find_dir(from, to)) {
      d->reserved_bps -= it->second.rate_bps;
      d->channel_busy_until.erase(id);
    }
  }
  channels_.erase(it);
}

bool Network::resize_channel(ChannelId id, std::int64_t new_rate_bps) {
  auto it = channels_.find(id);
  if (it == channels_.end() || new_rate_bps <= 0) return false;
  const std::int64_t delta = new_rate_bps - it->second.rate_bps;
  if (delta > 0) {
    for (auto [from, to] : it->second.path) {
      const LinkDir* d = find_dir(from, to);
      if (!d || d->reserved_bps + delta > d->cfg.bandwidth_bps) return false;
    }
  }
  for (auto [from, to] : it->second.path) {
    find_dir(from, to)->reserved_bps += delta;
  }
  it->second.rate_bps = new_rate_bps;
  return true;
}

std::optional<ChannelReservation> Network::channel_info(ChannelId id) const {
  auto it = channels_.find(id);
  if (it == channels_.end()) return std::nullopt;
  return it->second;
}

std::int64_t Network::channel_rate_bps(ChannelId id) const {
  auto it = channels_.find(id);
  return it == channels_.end() ? 0 : it->second.rate_bps;
}

std::optional<HostId> Network::find_endpoint(std::string_view name) const {
  for (HostId h = 0; h < hosts_.size(); ++h) {
    if (hosts_[h].name == name) return h;
  }
  return std::nullopt;
}

const LinkStats& Network::link_stats(HostId from, HostId to) const {
  const LinkDir* d = find_dir(from, to);
  if (!d) throw std::invalid_argument("link_stats: no such link");
  return d->stats;
}

}  // namespace lod::net
