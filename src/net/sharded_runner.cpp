#include "lod/net/sharded_runner.hpp"

#include <chrono>
#include <ctime>
#include <exception>
#include <string>
#include <thread>
#include <utility>

namespace lod::net {

namespace {

// Per-thread CPU microseconds. Unlike a wall clock this is immune to core
// timesharing: when K worker threads contend for fewer than K cores, each
// shard's measurement still reflects only the cycles IT consumed, so
// max-over-shards stays an honest estimate of the run's wall time on a
// machine with one uncontended core per shard.
std::int64_t thread_cpu_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return ts.tv_sec * 1'000'000LL + ts.tv_nsec / 1'000;
  }
#endif
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t derive_shard_seed(std::uint64_t root_seed, std::size_t shard) {
  // splitmix64 (Steele et al.), the canonical seed-sequence expander: one
  // pass per shard index keeps shards decorrelated even for root seeds that
  // differ in a single bit.
  std::uint64_t z = root_seed + 0x9E3779B97F4A7C15ULL *
                                    (static_cast<std::uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ShardedRunner::ShardedRunner(std::size_t shards, std::uint64_t root_seed,
                             bool enable_trace)
    : shards_(shards == 0 ? 1 : shards),
      root_seed_(root_seed),
      enable_trace_(enable_trace) {}

ShardedResult ShardedRunner::run(const ShardBody& body) const {
  using Clock = std::chrono::steady_clock;

  ShardedResult result;
  result.shards.resize(shards_);
  std::vector<std::exception_ptr> errors(shards_);

  const auto run_shard = [&](std::size_t shard) {
    ShardResult& out = result.shards[shard];
    out.shard = shard;
    out.seed = derive_shard_seed(root_seed_, shard);
    try {
      Simulator sim;
      obs::TraceSink& sink = sim.obs().trace();
      // Collision-free ids across shards: shard k mints trace/span ids in
      // [(k+1)<<32, (k+2)<<32).
      sink.set_id_seed((static_cast<std::uint64_t>(shard) + 1) << 32);
      sink.set_enabled(enable_trace_);
      ShardEnv env{sim, shard, shards_, out.seed};
      const std::int64_t cpu0 = thread_cpu_us();
      body(env);
      out.busy_us = thread_cpu_us() - cpu0;
      out.snapshot = sim.obs().metrics().snapshot();
      out.trace = sink.events();
      out.events_fired = out.snapshot.counter("lod.sim.events_fired");
      out.end_time = sim.now();
    } catch (...) {
      errors[shard] = std::current_exception();
    }
  };

  const auto wall0 = Clock::now();
  // One worker per shard; each writes only its own slot, and the joins
  // below are the only synchronization the merge needs.
  std::vector<std::thread> workers;
  workers.reserve(shards_);
  for (std::size_t k = 0; k < shards_; ++k) {
    workers.emplace_back(run_shard, k);
  }
  for (auto& w : workers) w.join();
  result.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - wall0)
                       .count();

  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  std::vector<std::pair<std::string, obs::Snapshot>> labeled;
  std::vector<std::vector<obs::TraceEvent>> timelines;
  labeled.reserve(shards_);
  timelines.reserve(shards_);
  for (auto& s : result.shards) {
    labeled.emplace_back(std::to_string(s.shard), s.snapshot);
    timelines.push_back(s.trace);
    if (s.busy_us > result.critical_path_us) {
      result.critical_path_us = s.busy_us;
    }
  }
  result.merged = obs::Snapshot::merged(labeled);
  result.trace = obs::collate_events(std::move(timelines));
  return result;
}

}  // namespace lod::net
