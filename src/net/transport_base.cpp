#include "lod/net/transport_base.hpp"

namespace lod::net {

bool is_valid_ipv4(std::string_view s) {
  int octets = 0;
  std::size_t i = 0;
  while (i < s.size()) {
    if (octets == 4) return false;
    std::size_t start = i;
    int value = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      value = value * 10 + (s[i] - '0');
      if (value > 255 || i - start >= 3) return false;
      ++i;
    }
    if (i == start) return false;  // empty octet ("1..2", ".1.2.3")
    ++octets;
    if (i < s.size()) {
      if (s[i] != '.') return false;
      ++i;
      if (i == s.size()) return false;  // trailing dot
    }
  }
  return octets == 4;
}

}  // namespace lod::net
