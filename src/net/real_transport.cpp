#include "lod/net/real_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>

#include "lod/net/frame.hpp"
#include "lod/net/transport.hpp"
#include "lod/obs/debug.hpp"
#include "lod/obs/export.hpp"

namespace lod::net {

namespace {

/// Frame codecs live in frame.hpp (socket-free, property-tested); the
/// listener also sniffs `frame::kRpcMagic` to tell RPC connections from
/// HTTP ones (no HTTP method starts with "LODR").
constexpr std::size_t kUdpHeader = frame::kUdpHeaderSize;

void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }

/// One monotonic microsecond timeline per process: every RealTransport
/// instance (one per modeled machine) reads the same clock, so cross-node
/// timestamps compare meaningfully — like NTP-disciplined LAN hosts.
std::chrono::steady_clock::time_point process_epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

std::string ip_to_string(std::uint32_t host_order) {
  in_addr a{};
  a.s_addr = htonl(host_order);
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &a, buf, sizeof buf);
  return buf;
}

/// Assemble one complete HTTP/1.1 response (always Connection: close).
std::string http_response_string(int status, std::string_view reason,
                                 std::string_view body,
                                 std::string_view content_type) {
  std::string resp = "HTTP/1.1 " + std::to_string(status) + " ";
  resp += reason;
  resp += "\r\nContent-Type: ";
  resp += content_type;
  resp += "\r\nContent-Length: " + std::to_string(body.size());
  resp += "\r\nConnection: close\r\n\r\n";
  resp += body;
  return resp;
}

/// Write all of \p n bytes, polling briefly on a full socket buffer.
bool write_fully(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w > 0) {
      p += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pf{fd, POLLOUT, 0};
      if (::poll(&pf, 1, 5000) <= 0) return false;
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

Error errno_to_error(int err) {
  switch (err) {
    case ECONNREFUSED: return Error::kRefused;
    case ETIMEDOUT: return Error::kTimeout;
    case ECONNRESET: case EPIPE: return Error::kClosed;
    case EMSGSIZE: return Error::kTooLarge;
    case ENETUNREACH: case EHOSTUNREACH: return Error::kUnroutable;
    default: return Error::kIo;
  }
}

/// Non-blocking connect with a poll deadline; returns the connected fd.
Result<int> connect_with_timeout(const std::string& ip, Port port,
                                 int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_aton(ip.c_str(), &addr.sin_addr) == 0) return Error::kUnroutable;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error::kIo;
  const int flags = ::fcntl(fd, F_GETFL);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      const Error e = errno_to_error(errno);
      ::close(fd);
      return e;
    }
    pollfd pf{fd, POLLOUT, 0};
    const int r = ::poll(&pf, 1, timeout_ms);
    if (r <= 0) {
      ::close(fd);
      return r == 0 ? Error::kTimeout : Error::kIo;
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      const Error e = errno_to_error(err);
      ::close(fd);
      return e;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; reads use poll deadlines
  return fd;
}

/// Read exactly \p n bytes with a per-call poll deadline.
Result<void> read_exact(int fd, std::byte* out, std::size_t n, int timeout_ms) {
  while (n > 0) {
    pollfd pf{fd, POLLIN, 0};
    const int r = ::poll(&pf, 1, timeout_ms);
    if (r == 0) return Error::kTimeout;
    if (r < 0) return Error::kIo;
    const ssize_t got = ::recv(fd, out, n, 0);
    if (got == 0) return Error::kClosed;
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return errno_to_error(errno);
    }
    out += got;
    n -= static_cast<std::size_t>(got);
  }
  return {};
}

}  // namespace

// --- RealTransport -----------------------------------------------------------

RealTransport::RealTransport(Config cfg) {
  (void)process_epoch();  // pin the shared timeline at first construction
  if (cfg.base_ip != 0) {
    base_ip_ = cfg.base_ip;
  } else {
    // A per-process /20 inside 127.0.0.0/8: parallel test processes get
    // disjoint address blocks, instances within one process agree on the
    // same block (and therefore the same HostId -> address mapping).
    const auto pid = static_cast<std::uint32_t>(::getpid());
    base_ip_ = 0x7F000000u + ((pid % 4094u + 1u) << 12);
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  tx_fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  rx_buf_.resize(1 << 16);
  hub_.set_clock([this] { return now().us; });
  obs::RollupStore::Config rcfg;
  rcfg.window_us = cfg.rollup_window_us;
  rcfg.windows = cfg.rollup_windows;
  rollup_ = obs::RollupStore(rcfg);
  rollup_window_us_ = cfg.rollup_window_us;
  auto& reg = hub_.metrics();
  m_dg_sent_ = reg.counter("lod.realnet.datagrams_sent");
  m_dg_recv_ = reg.counter("lod.realnet.datagrams_received");
  m_dg_dropped_ = reg.counter("lod.realnet.datagrams_dropped");
  m_bind_fail_ = reg.counter("lod.realnet.bind_failures");
  m_frames_dropped_ = reg.counter("lod.net.frames_dropped");
}

RealTransport::~RealTransport() {
  for (auto& [fd, c] : conns_) ::close(fd);
  for (auto& [fd, l] : listeners_) ::close(fd);
  for (auto& [fd, s] : udp_) ::close(fd);
  if (tx_fd_ >= 0) ::close(tx_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

SimTime RealTransport::now() const {
  const auto d = std::chrono::steady_clock::now() - process_epoch();
  return SimTime{
      std::chrono::duration_cast<std::chrono::microseconds>(d).count()};
}

EventId RealTransport::schedule_at(SimTime t, TimerFn fn) {
  std::lock_guard lk(timer_mu_);
  const EventId id = next_event_++;
  timer_fns_.emplace(id, std::move(fn));
  timer_heap_.push_back(TimerEntry{t, id});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>{});
  // A loop blocked in epoll_wait with a longer (or no) deadline must re-read
  // the heap; scheduling from the loop thread itself needs no kick.
  if (running_.load() && std::this_thread::get_id() != loop_thread_) wakeup();
  return id;
}

bool RealTransport::cancel(EventId id) {
  std::lock_guard lk(timer_mu_);
  return timer_fns_.erase(id) > 0;  // heap entry is skipped lazily
}

HostClock& RealTransport::clock(HostId h) {
  register_host(h);
  return hosts_[h].clock;
}

SimTime RealTransport::local_now(HostId h) const {
  const auto it = hosts_.find(h);
  // Real hosts' clocks start true; an unregistered host reads true time.
  return it == hosts_.end() ? now() : it->second.clock.local_time(now());
}

std::string RealTransport::endpoint_name(HostId h) const {
  const auto it = hosts_.find(h);
  if (it != hosts_.end() && !it->second.name.empty()) return it->second.name;
  return host_address(h);
}

std::optional<HostId> RealTransport::find_endpoint(std::string_view name) const {
  for (const auto& [h, st] : hosts_) {
    if (!st.name.empty() && st.name == name) return h;
  }
  for (const auto& [h, st] : hosts_) {
    if (host_address(h) == name) return h;
  }
  return std::nullopt;
}

HostId RealTransport::add_host(std::string name) {
  const HostId h = next_host_;
  register_host(h, std::move(name));
  return h;
}

void RealTransport::register_host(HostId h, std::string name) {
  auto [it, inserted] = hosts_.try_emplace(h);
  if (!name.empty() && it->second.name.empty()) it->second.name = std::move(name);
  next_host_ = std::max(next_host_, h + 1);
}

std::string RealTransport::host_address(HostId h) const {
  return ip_to_string(ip_of(h));
}

void RealTransport::bind(HostId h, Port port, Receiver r) {
  register_host(h);
  const std::uint64_t key = port_key(h, port);
  if (const auto it = udp_by_port_.find(key); it != udp_by_port_.end()) {
    udp_[it->second].receiver = std::move(r);  // rebind replaces the receiver
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    m_bind_fail_.inc();
    return;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  int rcvbuf = 1 << 21;  // media bursts arrive faster than the loop drains
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ip_of(h));
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    m_bind_fail_.inc();
    ::close(fd);
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  udp_by_port_[key] = fd;
  udp_.emplace(fd, UdpSocket{fd, h, port, std::move(r)});
}

void RealTransport::unbind(HostId h, Port port) {
  const auto it = udp_by_port_.find(port_key(h, port));
  if (it == udp_by_port_.end()) return;
  const int fd = it->second;
  udp_by_port_.erase(it);
  udp_.erase(fd);
  ::close(fd);  // closing removes it from the epoll set
}

bool RealTransport::send(Datagram d) {
  const std::size_t total = kUdpHeader + d.payload.size() + d.body.size();
  if (total > kMaxDatagram || tx_fd_ < 0) {
    m_dg_dropped_.inc();
    hub_.flight().record(
        obs::FlightType::kFrameDrop, static_cast<std::uint32_t>(d.dst), total,
        static_cast<std::uint64_t>(obs::DropCause::kUndeliverable));
    return false;
  }
  std::byte hdr[kUdpHeader];
  frame::encode_udp_header(
      hdr, {d.src, d.src_port, d.channel,
            static_cast<std::uint32_t>(d.payload.size())});

  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(ip_of(d.dst));
  dst.sin_port = htons(d.dst_port);

  // Scatter-gather straight from the shared Payload bodies: the frame
  // header is the only bytes assembled per send.
  iovec iov[3];
  int iov_n = 0;
  iov[iov_n++] = {hdr, kUdpHeader};
  if (!d.payload.empty()) {
    iov[iov_n++] = {const_cast<std::byte*>(d.payload.data()), d.payload.size()};
  }
  if (!d.body.empty()) {
    iov[iov_n++] = {const_cast<std::byte*>(d.body.data()), d.body.size()};
  }
  msghdr msg{};
  msg.msg_name = &dst;
  msg.msg_namelen = sizeof dst;
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<std::size_t>(iov_n);
  if (::sendmsg(tx_fd_, &msg, 0) < 0) {
    m_dg_dropped_.inc();
    hub_.flight().record(
        obs::FlightType::kFrameDrop, static_cast<std::uint32_t>(d.dst), total,
        static_cast<std::uint64_t>(obs::DropCause::kUndeliverable));
    return false;
  }
  m_dg_sent_.inc();
  return true;
}

Result<void> RealTransport::listen_tcp(HostId h, Port port, RpcServer& rpc,
                                       const std::string& bind_address,
                                       int backlog) {
  register_host(h);
  std::uint32_t ip = ip_of(h);
  if (!bind_address.empty()) {
    in_addr a{};
    if (inet_aton(bind_address.c_str(), &a) == 0) return Error::kMalformed;
    ip = ntohl(a.s_addr);
  }
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error::kIo;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ip);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, backlog) != 0) {
    const Error e = errno == EACCES || errno == EADDRINUSE ? Error::kRefused
                                                           : errno_to_error(errno);
    ::close(fd);
    return e;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  tcp_by_port_[port_key(h, port)] = fd;
  listeners_.emplace(fd, TcpListener{fd, h, port, &rpc});
  return {};
}

void RealTransport::close_tcp(HostId h, Port port) {
  const auto it = tcp_by_port_.find(port_key(h, port));
  if (it == tcp_by_port_.end()) return;
  const int fd = it->second;
  tcp_by_port_.erase(it);
  listeners_.erase(fd);
  ::close(fd);
}

void RealTransport::wakeup() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t w = ::write(wake_fd_, &one, sizeof one);
}

int RealTransport::next_timeout_ms() {
  std::lock_guard lk(timer_mu_);
  while (!timer_heap_.empty() && !timer_fns_.count(timer_heap_.front().id)) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>{});
    timer_heap_.pop_back();
  }
  if (timer_heap_.empty()) return -1;
  const std::int64_t delta_us = timer_heap_.front().at.us - now().us;
  if (delta_us <= 0) return 0;
  return static_cast<int>(std::min<std::int64_t>((delta_us + 999) / 1000, 60'000));
}

void RealTransport::fire_due_timers() {
  while (!stop_.load()) {
    TimerFn fn;
    {
      std::lock_guard lk(timer_mu_);
      while (!timer_heap_.empty() && !timer_fns_.count(timer_heap_.front().id)) {
        std::pop_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>{});
        timer_heap_.pop_back();
      }
      if (timer_heap_.empty() || timer_heap_.front().at > now()) return;
      const EventId id = timer_heap_.front().id;
      std::pop_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>{});
      timer_heap_.pop_back();
      const auto it = timer_fns_.find(id);
      fn = std::move(it->second);
      timer_fns_.erase(it);
    }
    fn();  // outside the lock: timers schedule timers
  }
}

void RealTransport::rollup_tick() {
  rollup_.roll(hub_.snapshot(), now().us);
  schedule_at(SimTime{now().us + rollup_window_us_}, [this] { rollup_tick(); });
}

void RealTransport::run() {
  loop_thread_ = std::this_thread::get_id();
  stop_.store(false);
  running_.store(true);
  if (rollup_window_us_ > 0 && !rollup_armed_) {
    // Prime the rollup baseline now; every subsequent tick appends one
    // window of Snapshot deltas for /debug/vars rates. The timer chain
    // stops firing with the loop and re-arms on a later run().
    rollup_armed_ = true;
    rollup_tick();
  }
  std::array<epoll_event, 64> events;
  while (!stop_.load()) {
    fire_due_timers();
    if (stop_.load()) break;
    const int n =
        ::epoll_wait(epoll_fd_, events.data(), events.size(), next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n && !stop_.load(); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t v;
        while (::read(wake_fd_, &v, sizeof v) > 0) {
        }
        continue;
      }
      if (const auto it = udp_.find(fd); it != udp_.end()) {
        on_udp_readable(it->second);
        continue;
      }
      if (const auto it = listeners_.find(fd); it != listeners_.end()) {
        on_tcp_accept(it->second);
        continue;
      }
      if (conns_.count(fd)) on_tcp_readable(fd);
    }
  }
  running_.store(false);
}

void RealTransport::stop() {
  stop_.store(true);
  wakeup();
}

void RealTransport::on_udp_readable(UdpSocket& s) {
  const int fd = s.fd;
  while (true) {
    const ssize_t n = ::recv(fd, rx_buf_.data(), rx_buf_.size(), 0);
    if (n < 0) return;  // EAGAIN (drained) or a transient error
    const auto it = udp_.find(fd);
    if (it == udp_.end()) return;  // a callback unbound this socket
    const auto hdr = frame::decode_udp_header(
        {rx_buf_.data(), static_cast<std::size_t>(n)});
    if (!hdr) {
      // Stray loopback traffic, truncation, or corruption: count and drop.
      m_frames_dropped_.inc();
      hub_.flight().record(
          obs::FlightType::kFrameDrop, static_cast<std::uint32_t>(it->second.host),
          static_cast<std::uint64_t>(n),
          static_cast<std::uint64_t>(obs::DropCause::kBadFrame));
      continue;
    }
    Datagram d;
    d.src = hdr->src;
    d.src_port = hdr->src_port;
    d.channel = hdr->channel;
    const std::uint32_t payload_len = hdr->payload_len;
    const std::size_t data_len = static_cast<std::size_t>(n) - kUdpHeader;
    d.dst = it->second.host;
    d.dst_port = it->second.port;
    d.wire_size = static_cast<std::uint32_t>(n) + 28;  // UDP/IP framing
    d.id = next_datagram_++;
    // One copy at the kernel boundary, then refcounted views: payload and
    // body are slices of the same adopted buffer, recreating exactly the
    // split the sender chose.
    Payload whole(std::vector<std::byte>(rx_buf_.begin() + kUdpHeader,
                                         rx_buf_.begin() + n));
    d.payload = whole.slice(0, payload_len);
    d.body = whole.slice(payload_len, data_len - payload_len);
    m_dg_recv_.inc();
    hub_.flight().record(obs::FlightType::kNetEvent,
                         static_cast<std::uint32_t>(d.dst), d.id,
                         static_cast<std::uint64_t>(n),
                         obs::FlightRecorder::kLaneDispatch);
    const Receiver recv = it->second.receiver;  // callback may rebind
    if (recv) recv(d);
    if (!udp_.count(fd)) return;
  }
}

void RealTransport::on_tcp_accept(TcpListener& l) {
  while (true) {
    const int cfd = ::accept4(l.fd, nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) return;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = cfd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev);
    conns_.emplace(cfd, TcpConn{cfd, l.rpc, &hub_, {}, TcpConn::Mode::kSniff});
  }
}

void RealTransport::on_tcp_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  TcpConn& c = it->second;
  bool peer_closed = false;
  while (true) {
    std::byte tmp[4096];
    const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
    if (n > 0) {
      c.buf.insert(c.buf.end(), tmp, tmp + n);
      continue;
    }
    if (n == 0) peer_closed = true;
    break;  // EAGAIN, error, or EOF
  }
  if (!drain_tcp_conn(c) || peer_closed) close_conn(fd);
}

bool RealTransport::drain_tcp_conn(TcpConn& c) {
  if (c.mode == TcpConn::Mode::kSniff) {
    if (c.buf.size() < 4) return true;
    c.mode = std::memcmp(c.buf.data(), frame::kRpcMagic, 4) == 0
                 ? TcpConn::Mode::kRpc
                 : TcpConn::Mode::kHttp;
  }

  if (c.mode == TcpConn::Mode::kRpc) {
    // [LODR][u32 path_len][path][u32 body_len][body], repeated per request;
    // each answered with [u32 status][u32 body_len][body]. The codec is
    // frame::parse_rpc_frame; a malformed frame is counted and the
    // connection closed (mid-stream garbage means framing is lost for good).
    while (true) {
      frame::RpcFrame f;
      switch (frame::parse_rpc_frame(c.buf, f)) {
        case frame::RpcParse::kNeedMore:
          return true;
        case frame::RpcParse::kMalformed:
          m_frames_dropped_.inc();
          hub_.flight().record(
              obs::FlightType::kFrameDrop, 0, c.buf.size(),
              static_cast<std::uint64_t>(obs::DropCause::kBadFrame));
          return false;
        case frame::RpcParse::kFrame:
          break;
      }
      const std::string_view path(
          reinterpret_cast<const char*>(c.buf.data() + f.path_offset),
          f.path_len);
      const std::span<const std::byte> body(c.buf.data() + f.body_offset,
                                            f.body_len);
      auto [status, resp] = c.rpc->handle(path, body);
      std::vector<std::byte> out(8 + resp.size());
      put_u32(out.data(), static_cast<std::uint32_t>(status));
      put_u32(out.data() + 4, static_cast<std::uint32_t>(resp.size()));
      std::copy(resp.begin(), resp.end(), out.begin() + 8);
      if (!write_fully(c.fd, out.data(), out.size())) return false;
      c.buf.erase(c.buf.begin(), c.buf.begin() + f.frame_size);
    }
  }

  // HTTP: one request, answered and closed (Connection: close keeps the
  // state machine trivial; Prometheus scrapers are fine with it). The
  // parser survives arbitrarily split reads — it only acts once the full
  // header has arrived — and bounds what a client can make it buffer: the
  // request line at kMaxRequestLine (431 past that), the whole header at
  // 64 KB (dropped without a response; nothing legitimate is that large).
  static constexpr char kCrlf2[] = "\r\n\r\n";
  static constexpr std::size_t kMaxRequestLine = 8192;
  const auto* begin = reinterpret_cast<const char*>(c.buf.data());
  const std::string_view have(begin, c.buf.size());
  const std::size_t line_end = have.find("\r\n");
  if (line_end == std::string_view::npos
          ? have.size() > kMaxRequestLine
          : line_end > kMaxRequestLine) {
    const std::string resp = http_response_string(
        431, "Request Header Fields Too Large", "request line too long\n",
        "text/plain; charset=utf-8");
    write_fully(c.fd, resp.data(), resp.size());
    return false;
  }
  const std::size_t head_end = have.find(kCrlf2);
  if (head_end == std::string_view::npos) return c.buf.size() < (64u << 10);
  const std::string_view line = have.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  std::string_view method, target;
  if (sp2 != std::string_view::npos) {
    method = line.substr(0, sp1);
    target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  const std::string resp = http_respond(method, target);
  write_fully(c.fd, resp.data(), resp.size());
  return false;  // close after the one response
}

std::string RealTransport::http_respond(std::string_view method,
                                        std::string_view target) {
  // Split "?query" off the path; /debug/trace takes trace_id=<decimal>.
  const std::size_t q = target.find('?');
  const std::string_view path =
      q == std::string_view::npos ? target : target.substr(0, q);
  const std::string_view query =
      q == std::string_view::npos ? std::string_view{} : target.substr(q + 1);

  const bool known =
      path == "/metrics" || path == "/debug/vars" ||
      path == "/debug/sessions" || path == "/debug/sync" ||
      path == "/debug/trace" || path == "/debug/flight";
  if (!known) {
    return http_response_string(404, "Not Found",
                                "not found\n"
                                "try: /metrics /debug/vars /debug/sessions "
                                "/debug/sync /debug/trace /debug/flight\n",
                                "text/plain; charset=utf-8");
  }
  if (method != "GET") {
    return http_response_string(405, "Method Not Allowed",
                                "method not allowed; use GET\n",
                                "text/plain; charset=utf-8");
  }

  if (path == "/metrics") {
    return http_response_string(200, "OK", obs::to_prometheus(hub_.snapshot()),
                                "text/plain; version=0.0.4; charset=utf-8");
  }
  if (path == "/debug/vars") {
    return http_response_string(
        200, "OK", obs::debug_vars_json(hub_.snapshot(), &rollup_, now().us),
        "application/json");
  }
  if (path == "/debug/sessions") {
    return http_response_string(200, "OK",
                                obs::debug_sessions_json(hub_.snapshot()),
                                "application/json");
  }
  if (path == "/debug/sync") {
    return http_response_string(200, "OK",
                                obs::debug_sync_json(hub_.snapshot()),
                                "application/json");
  }
  if (path == "/debug/trace") {
    std::uint64_t trace_id = 0;
    static constexpr std::string_view kKey = "trace_id=";
    if (const std::size_t at = query.find(kKey);
        at != std::string_view::npos) {
      const std::string_view v = query.substr(at + kKey.size());
      for (const char ch : v) {
        if (ch < '0' || ch > '9') break;
        trace_id = trace_id * 10 + static_cast<std::uint64_t>(ch - '0');
      }
    }
    return http_response_string(
        200, "OK", obs::debug_trace_json(hub_.trace().events(), trace_id),
        "application/json");
  }
  // /debug/flight: the live journal in dump format (meta line + JSONL).
  return http_response_string(
      200, "OK", obs::debug_flight_jsonl(hub_.flight(), now().us),
      "application/x-ndjson");
}

void RealTransport::close_conn(int fd) {
  conns_.erase(fd);
  ::close(fd);
}

// --- blocking helpers --------------------------------------------------------

Result<HttpResponse> http_get(const std::string& ip, Port port,
                              const std::string& path, int timeout_ms) {
  Result<int> fd = connect_with_timeout(ip, port, timeout_ms);
  if (!fd) return fd.error();
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + ip +
                          "\r\nConnection: close\r\n\r\n";
  if (!write_fully(*fd, req.data(), req.size())) {
    ::close(*fd);
    return Error::kIo;
  }
  std::string resp;
  char tmp[4096];
  while (true) {
    pollfd pf{*fd, POLLIN, 0};
    const int r = ::poll(&pf, 1, timeout_ms);
    if (r <= 0) {
      ::close(*fd);
      return r == 0 ? Error::kTimeout : Error::kIo;
    }
    const ssize_t n = ::recv(*fd, tmp, sizeof tmp, 0);
    if (n == 0) break;  // server closed: response complete
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(*fd);
      return errno_to_error(errno);
    }
    resp.append(tmp, static_cast<std::size_t>(n));
  }
  ::close(*fd);
  if (resp.rfind("HTTP/1.", 0) != 0) return Error::kMalformed;
  const std::size_t sp = resp.find(' ');
  const std::size_t head_end = resp.find("\r\n\r\n");
  if (sp == std::string::npos || head_end == std::string::npos) {
    return Error::kMalformed;
  }
  HttpResponse out;
  out.status = std::atoi(resp.c_str() + sp + 1);
  out.body = resp.substr(head_end + 4);
  return out;
}

TcpRpcClient::TcpRpcClient(std::string ip, Port port)
    : ip_(std::move(ip)), port_(port) {}

TcpRpcClient::~TcpRpcClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<void> TcpRpcClient::ensure_connected(int timeout_ms) {
  if (fd_ >= 0) return {};
  Result<int> fd = connect_with_timeout(ip_, port_, timeout_ms);
  if (!fd) return fd.error();
  fd_ = *fd;
  return {};
}

Result<RpcReply> TcpRpcClient::call(std::string_view path,
                                    std::span<const std::byte> body,
                                    int timeout_ms) {
  if (Result<void> c = ensure_connected(timeout_ms); !c) return c.error();
  std::vector<std::byte> req(8 + path.size() + 4 + body.size());
  std::memcpy(req.data(), frame::kRpcMagic, 4);
  put_u32(req.data() + 4, static_cast<std::uint32_t>(path.size()));
  std::memcpy(req.data() + 8, path.data(), path.size());
  put_u32(req.data() + 8 + path.size(),
          static_cast<std::uint32_t>(body.size()));
  std::copy(body.begin(), body.end(), req.begin() + 8 + path.size() + 4);
  if (!write_fully(fd_, req.data(), req.size())) {
    ::close(fd_);
    fd_ = -1;
    return Error::kIo;
  }
  std::byte head[8];
  if (Result<void> r = read_exact(fd_, head, sizeof head, timeout_ms); !r) {
    ::close(fd_);
    fd_ = -1;
    return r.error();
  }
  const int status = static_cast<int>(frame::detail::get_u32(head));
  const std::uint32_t body_len = frame::detail::get_u32(head + 4);
  if (body_len > (1u << 28)) {
    ::close(fd_);
    fd_ = -1;
    return Error::kMalformed;
  }
  std::vector<std::byte> resp(body_len);
  if (body_len > 0) {
    if (Result<void> r = read_exact(fd_, resp.data(), body_len, timeout_ms);
        !r) {
      ::close(fd_);
      fd_ = -1;
      return r.error();
    }
  }
  return RpcReply{status, Payload(std::move(resp))};
}

}  // namespace lod::net
