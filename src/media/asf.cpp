#include "lod/media/asf.hpp"

#include <algorithm>
#include <stdexcept>

#include "lod/net/bytes.hpp"

namespace lod::media::asf {

using net::ByteReader;
using net::ByteWriter;

namespace {
// Modeled framing costs inside a fixed-size packet.
constexpr std::uint32_t kPacketHeaderBytes = 12;
constexpr std::uint32_t kPayloadHeaderBytes = 23;
// Don't open a fragment smaller than this at the tail of a packet.
constexpr std::uint32_t kMinFragment = 64;

constexpr std::uint32_t kFileMagic = 0x4c4f4441;    // "LODA"
constexpr std::uint32_t kHeaderMagic = 0x4c4f4448;  // "LODH"
constexpr std::uint32_t kPacketMagic = 0x4c4f4450;  // "LODP"

std::uint64_t drm_nonce(std::uint16_t stream, std::uint32_t object) {
  return (static_cast<std::uint64_t>(stream) << 32) | object;
}
}  // namespace

const StreamInfo* Header::find_stream(std::uint16_t id) const {
  for (const auto& s : streams) {
    if (s.stream_id == id) return &s;
  }
  return nullptr;
}

std::size_t File::wire_size() const {
  // Header + fixed-size data packets + 12 bytes per index entry.
  ByteWriter w;
  w.raw(serialize_header(header));
  return w.size() + packets.size() * header.props.packet_bytes +
         index.size() * 12 + 16;
}

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint32_t tag) {
  std::vector<std::byte> out(n);
  std::uint32_t x = tag * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    out[i] = static_cast<std::byte>(x >> 24);
  }
  return out;
}

// --- Muxer -------------------------------------------------------------------

Muxer::Muxer(Header header, const DrmSystem* drm)
    : header_(std::move(header)), drm_(drm) {
  if (header_.props.packet_bytes <
      kPacketHeaderBytes + kPayloadHeaderBytes + kMinFragment) {
    throw std::invalid_argument("Muxer: packet size too small");
  }
}

void Muxer::add_unit(const EncodedUnit& unit,
                     std::span<const std::byte> content) {
  PendingUnit p;
  p.meta = unit;
  if (content.empty()) {
    p.content = pattern_bytes(unit.bytes, static_cast<std::uint32_t>(
                                              units_.size() * 31 + unit.bytes));
  } else {
    p.content.assign(content.begin(), content.end());
    p.meta.bytes = static_cast<std::uint32_t>(p.content.size());
  }
  units_.push_back(std::move(p));
}

void Muxer::add_script(const ScriptCommand& cmd) { scripts_.push_back(cmd); }

File Muxer::finalize(SimDuration index_interval) {
  // Script commands become units on the reserved script stream.
  for (const auto& s : scripts_) {
    ByteWriter w;
    w.str(s.type);
    w.str(s.param);
    PendingUnit p;
    p.meta.stream_id = kScriptStreamId;
    p.meta.type = MediaType::kScript;
    p.meta.pts = s.at;
    p.meta.duration = {};
    p.meta.keyframe = true;
    p.content = std::move(w).take();
    p.meta.bytes = static_cast<std::uint32_t>(p.content.size());
    units_.push_back(std::move(p));
  }
  scripts_.clear();

  // Interleave by presentation time (stable: preserves add order at ties).
  std::stable_sort(units_.begin(), units_.end(),
                   [](const PendingUnit& a, const PendingUnit& b) {
                     return a.meta.pts < b.meta.pts;
                   });

  // Assign per-stream object ids in pts order.
  std::unordered_map<std::uint16_t, std::uint32_t> next_object;
  const bool encrypt = drm_ && header_.drm.is_protected;
  for (auto& u : units_) {
    const std::uint32_t oid = next_object[u.meta.stream_id]++;
    if (encrypt && u.meta.stream_id != kScriptStreamId) {
      drm_->apply_keystream(header_.drm.key_id,
                            drm_nonce(u.meta.stream_id, oid),
                            std::span<std::byte>(u.content));
    }
    // Stash the object id in the unit meta via a parallel pass below; we
    // re-derive it during packing, so nothing to store here.
  }

  File file;
  file.header = header_;

  const std::uint32_t capacity = header_.props.packet_bytes - kPacketHeaderBytes;
  DataPacket cur;
  std::uint32_t used = 0;
  bool cur_open = false;
  std::unordered_map<std::uint16_t, std::uint32_t> oid_counter;

  auto close_packet = [&] {
    if (!cur_open) return;
    cur.pad_bytes = capacity - used;
    file.packets.push_back(std::move(cur));
    cur = DataPacket{};
    used = 0;
    cur_open = false;
  };

  for (const auto& u : units_) {
    const std::uint32_t oid = oid_counter[u.meta.stream_id]++;
    const std::uint32_t total = static_cast<std::uint32_t>(u.content.size());
    std::uint32_t offset = 0;
    // Emit at least one (possibly empty) fragment so zero-byte units survive.
    do {
      if (cur_open && used + kPayloadHeaderBytes + kMinFragment > capacity) {
        close_packet();
      }
      if (!cur_open) {
        cur.send_time = u.meta.pts;
        cur_open = true;
      }
      const std::uint32_t space = capacity - used - kPayloadHeaderBytes;
      const std::uint32_t take = std::min(total - offset, space);

      Payload pl;
      pl.stream_id = u.meta.stream_id;
      pl.type = u.meta.type;
      pl.pts = u.meta.pts;
      pl.duration = u.meta.duration;
      pl.keyframe = u.meta.keyframe;
      pl.object_id = oid;
      pl.offset = offset;
      pl.object_size = total;
      pl.data.assign(u.content.begin() + offset,
                     u.content.begin() + offset + take);
      cur.payloads.push_back(std::move(pl));
      used += kPayloadHeaderBytes + take;
      offset += take;
      if (used + kPayloadHeaderBytes + kMinFragment > capacity) close_packet();
    } while (offset < total);
  }
  close_packet();
  units_.clear();

  build_index(file, index_interval);
  return file;
}

// --- indexing ------------------------------------------------------------------

void build_index(File& f, SimDuration interval) {
  f.index.clear();
  if (f.packets.empty()) return;
  if (interval.us <= 0) interval = net::sec(5);

  const bool has_video = std::any_of(
      f.header.streams.begin(), f.header.streams.end(),
      [](const StreamInfo& s) { return s.type == MediaType::kVideo; });

  // Collect resume points: packets where a video keyframe *starts*
  // (offset 0), or — without video — every packet's first payload.
  struct Point {
    SimDuration pts;
    std::uint32_t packet;
  };
  std::vector<Point> points;
  for (std::uint32_t i = 0; i < f.packets.size(); ++i) {
    for (const auto& pl : f.packets[i].payloads) {
      const bool resume =
          has_video ? (pl.type == MediaType::kVideo && pl.keyframe &&
                       pl.offset == 0)
                    : (&pl == &f.packets[i].payloads.front());
      if (resume) {
        points.push_back({pl.pts, i});
        break;
      }
    }
  }
  if (points.empty()) points.push_back({f.packets.front().send_time, 0});

  const SimDuration end = f.header.props.play_duration.us > 0
                              ? f.header.props.play_duration
                              : points.back().pts;
  for (SimDuration t{0}; t <= end; t += interval) {
    // Latest resume point at or before t.
    std::uint32_t pkt = points.front().packet;
    for (const auto& p : points) {
      if (p.pts <= t) pkt = p.packet;
      else break;
    }
    f.index.push_back({t, pkt});
  }
}

std::uint32_t seek_packet(const File& f, SimDuration t) {
  if (f.index.empty()) return 0;
  std::uint32_t pkt = f.index.front().packet;
  for (const auto& e : f.index) {
    if (e.time <= t) pkt = e.packet;
    else break;
  }
  return pkt;
}

// --- Demuxer -------------------------------------------------------------------

Demuxer::Demuxer(Header header) : header_(std::move(header)) {}

void Demuxer::set_license(const DrmSystem* drm, License lic, std::string user) {
  drm_ = drm;
  license_ = std::move(lic);
  user_ = std::move(user);
}

void Demuxer::feed(const DataPacket& packet, net::SimTime local_now) {
  for (const auto& pl : packet.payloads) {
    Assembly& a = assembling_[pl.stream_id];
    if (!a.active || a.object_id != pl.object_id) {
      if (a.active && a.received < a.object_size) ++dropped_incomplete_;
      a.active = true;
      a.object_id = pl.object_id;
      a.object_size = pl.object_size;
      a.received = 0;
      a.meta = EncodedUnit{pl.stream_id, pl.type,     pl.pts,
                           pl.duration,  pl.object_size, pl.keyframe, 1.0f};
      a.data.assign(pl.object_size, std::byte{0});
    }
    if (pl.offset + pl.data.size() <= a.data.size()) {
      std::copy(pl.data.begin(), pl.data.end(), a.data.begin() + pl.offset);
      a.received += static_cast<std::uint32_t>(pl.data.size());
    }
    if (a.received >= a.object_size) {
      complete(a, local_now);
      a.active = false;
    }
  }
}

void Demuxer::complete(Assembly& a, net::SimTime local_now) {
  if (a.meta.stream_id == kScriptStreamId) {
    try {
      ByteReader r(a.data);
      ScriptCommand cmd;
      cmd.at = a.meta.pts;
      cmd.type = r.str();
      cmd.param = r.str();
      ready_scripts_.push_back(std::move(cmd));
    } catch (const std::out_of_range&) {
      ++dropped_incomplete_;  // corrupt script payload
    }
    return;
  }
  DemuxedUnit u;
  u.meta = a.meta;
  u.data = std::move(a.data);
  if (header_.drm.is_protected) {
    const std::uint64_t nonce = drm_nonce(u.meta.stream_id, a.object_id);
    const bool ok = drm_ && license_ &&
                    drm_->decrypt_with_license(*license_, user_, local_now,
                                               nonce, std::span<std::byte>(u.data));
    if (!ok) undecryptable_ = true;  // surfaced encrypted: render will fail
  }
  ready_units_.push_back(std::move(u));
}

std::optional<DemuxedUnit> Demuxer::next_unit() {
  if (unit_cursor_ >= ready_units_.size()) {
    if (unit_cursor_ > 0) {
      ready_units_.clear();
      unit_cursor_ = 0;
    }
    return std::nullopt;
  }
  return std::move(ready_units_[unit_cursor_++]);
}

std::optional<ScriptCommand> Demuxer::next_script() {
  if (script_cursor_ >= ready_scripts_.size()) {
    if (script_cursor_ > 0) {
      ready_scripts_.clear();
      script_cursor_ = 0;
    }
    return std::nullopt;
  }
  return std::move(ready_scripts_[script_cursor_++]);
}

// --- serialization ---------------------------------------------------------------

namespace {
void write_stream(ByteWriter& w, const StreamInfo& s) {
  w.u16(s.stream_id);
  w.u8(static_cast<std::uint8_t>(s.type));
  w.str(s.codec);
  w.i64(s.avg_bitrate_bps);
  w.u16(s.width);
  w.u16(s.height);
  w.u32(s.sample_rate);
}
StreamInfo read_stream(ByteReader& r) {
  StreamInfo s;
  s.stream_id = r.u16();
  s.type = static_cast<MediaType>(r.u8());
  s.codec = r.str();
  s.avg_bitrate_bps = r.i64();
  s.width = r.u16();
  s.height = r.u16();
  s.sample_rate = r.u32();
  return s;
}
}  // namespace

std::vector<std::byte> serialize_header(const Header& h) {
  ByteWriter w;
  w.u32(kHeaderMagic);
  w.str(h.props.title);
  w.str(h.props.author);
  w.i64(h.props.play_duration.us);
  w.i64(h.props.preroll.us);
  w.u32(h.props.packet_bytes);
  w.i64(h.props.avg_bitrate_bps);
  w.u8(h.drm.is_protected ? 1 : 0);
  w.str(h.drm.key_id);
  w.str(h.drm.license_url);
  w.u32(static_cast<std::uint32_t>(h.streams.size()));
  for (const auto& s : h.streams) write_stream(w, s);
  return std::move(w).take();
}

Header parse_header(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  if (r.u32() != kHeaderMagic) throw std::runtime_error("asf: bad header magic");
  Header h;
  h.props.title = r.str();
  h.props.author = r.str();
  h.props.play_duration = {r.i64()};
  h.props.preroll = {r.i64()};
  h.props.packet_bytes = r.u32();
  h.props.avg_bitrate_bps = r.i64();
  h.drm.is_protected = r.u8() != 0;
  h.drm.key_id = r.str();
  h.drm.license_url = r.str();
  const std::uint32_t n = r.u32();
  h.streams.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) h.streams.push_back(read_stream(r));
  return h;
}

std::vector<std::byte> serialize_packet(const DataPacket& p) {
  ByteWriter w;
  w.u32(kPacketMagic);
  w.i64(p.send_time.us);
  w.u32(p.pad_bytes);
  w.u32(static_cast<std::uint32_t>(p.payloads.size()));
  for (const auto& pl : p.payloads) {
    w.u16(pl.stream_id);
    w.u8(static_cast<std::uint8_t>(pl.type));
    w.i64(pl.pts.us);
    w.i64(pl.duration.us);
    w.u8(pl.keyframe ? 1 : 0);
    w.u32(pl.object_id);
    w.u32(pl.offset);
    w.u32(pl.object_size);
    w.blob(pl.data);
  }
  return std::move(w).take();
}

DataPacket parse_packet(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  if (r.u32() != kPacketMagic) throw std::runtime_error("asf: bad packet magic");
  DataPacket p;
  p.send_time = {r.i64()};
  p.pad_bytes = r.u32();
  const std::uint32_t n = r.u32();
  p.payloads.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Payload pl;
    pl.stream_id = r.u16();
    pl.type = static_cast<MediaType>(r.u8());
    pl.pts = {r.i64()};
    pl.duration = {r.i64()};
    pl.keyframe = r.u8() != 0;
    pl.object_id = r.u32();
    pl.offset = r.u32();
    pl.object_size = r.u32();
    pl.data = r.blob();
    p.payloads.push_back(std::move(pl));
  }
  return p;
}

std::vector<std::byte> serialize(const File& f) {
  ByteWriter w;
  w.u32(kFileMagic);
  w.blob(serialize_header(f.header));
  w.u32(static_cast<std::uint32_t>(f.packets.size()));
  for (const auto& p : f.packets) w.blob(serialize_packet(p));
  w.u32(static_cast<std::uint32_t>(f.index.size()));
  for (const auto& e : f.index) {
    w.i64(e.time.us);
    w.u32(e.packet);
  }
  return std::move(w).take();
}

File parse(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  if (r.u32() != kFileMagic) throw std::runtime_error("asf: bad file magic");
  File f;
  {
    const auto hb = r.blob();
    f.header = parse_header(hb);
  }
  const std::uint32_t np = r.u32();
  f.packets.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) {
    const auto pb = r.blob();
    f.packets.push_back(parse_packet(pb));
  }
  const std::uint32_t ni = r.u32();
  f.index.reserve(ni);
  for (std::uint32_t i = 0; i < ni; ++i) {
    IndexEntry e;
    e.time = {r.i64()};
    e.packet = r.u32();
    f.index.push_back(e);
  }
  return f;
}

}  // namespace lod::media::asf
