#include "lod/media/sources.hpp"

#include <algorithm>
#include <cmath>

namespace lod::media {

LectureVideoSource::LectureVideoSource(SimDuration duration, double fps,
                                       std::uint16_t width,
                                       std::uint16_t height,
                                       std::uint64_t seed)
    : duration_(duration),
      fps_(fps),
      width_(width),
      height_(height),
      seed_(seed),
      rng_(seed) {
  next_cut_frame_ = static_cast<std::uint64_t>(rng_.uniform_int(50, 400));
}

bool LectureVideoSource::next(VideoFrame& out) {
  const SimDuration pts = net::secf(static_cast<double>(index_) / fps_);
  if (pts >= duration_) return false;

  bool cut = false;
  if (index_ == next_cut_frame_) {
    cut = true;
    // After a cut, complexity jumps then decays back toward talking-head 1.0.
    complexity_ = static_cast<float>(1.5 + rng_.uniform01() * 1.5);
    next_cut_frame_ = index_ + static_cast<std::uint64_t>(
                                   rng_.uniform_int(100, 900));
  } else {
    complexity_ = 1.0f + (complexity_ - 1.0f) * 0.97f;  // exponential decay
  }
  // Small per-frame wiggle (speaker motion).
  const float wiggle = static_cast<float>((rng_.uniform01() - 0.5) * 0.1);

  out.pts = pts;
  out.width = width_;
  out.height = height_;
  out.complexity = std::clamp(complexity_ + wiggle, 0.3f, 4.0f);
  out.scene_cut = cut;
  ++index_;
  return true;
}

void LectureVideoSource::rewind() {
  rng_ = net::Rng(seed_);
  index_ = 0;
  complexity_ = 1.0f;
  next_cut_frame_ = static_cast<std::uint64_t>(rng_.uniform_int(50, 400));
}

LectureAudioSource::LectureAudioSource(SimDuration duration,
                                       std::uint32_t sample_rate,
                                       SimDuration block, std::uint64_t seed)
    : duration_(duration),
      sample_rate_(sample_rate),
      block_(block),
      seed_(seed),
      rng_(seed) {}

bool LectureAudioSource::next(AudioBlock& out) {
  if (pos_ >= duration_) return false;
  out.pts = SimDuration{pos_.us};
  out.duration = std::min(block_, duration_ - pos_);
  out.sample_rate = sample_rate_;
  out.channels = 1;
  // Speech energy alternates between talking and pauses.
  out.energy = rng_.bernoulli(0.8) ? static_cast<float>(0.6 + rng_.uniform01() * 0.4)
                                   : 0.05f;
  pos_ += out.duration;
  return true;
}

void LectureAudioSource::rewind() {
  rng_ = net::Rng(seed_);
  pos_ = {};
}

std::vector<Slide> make_slide_deck(std::uint32_t n, std::uint64_t seed) {
  net::Rng rng(seed);
  std::vector<Slide> deck;
  deck.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Slide s;
    s.index = i;
    s.title = "Slide " + std::to_string(i + 1);
    // Text-heavy slides ~25 KB, diagram-heavy up to ~90 KB.
    s.encoded_bytes =
        static_cast<std::uint32_t>(rng.uniform_int(25'000, 90'000));
    deck.push_back(std::move(s));
  }
  return deck;
}

std::vector<SimDuration> make_slide_schedule(std::uint32_t n,
                                             SimDuration lecture,
                                             std::uint64_t seed) {
  net::Rng rng(seed);
  std::vector<SimDuration> at;
  at.reserve(n);
  if (n == 0) return at;
  // Draw dwell weights in [0.6, 1.4] and normalize onto the lecture length,
  // so the schedule always covers exactly [0, lecture).
  std::vector<double> w(n);
  double total = 0;
  for (auto& x : w) {
    x = 0.6 + rng.uniform01() * 0.8;
    total += x;
  }
  double t = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    at.push_back(net::secf(t));
    t += w[i] / total * lecture.seconds();
  }
  return at;
}

std::vector<Annotation> make_annotations(
    std::uint32_t count, const std::vector<SimDuration>& slide_times,
    SimDuration lecture, std::uint64_t seed) {
  net::Rng rng(seed);
  std::vector<Annotation> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Annotation a;
    a.at = net::usec(rng.uniform_int(0, std::max<std::int64_t>(lecture.us - 1, 0)));
    // Find the slide visible at that instant.
    a.slide = 0;
    for (std::size_t s = 0; s < slide_times.size(); ++s) {
      if (slide_times[s] <= a.at) a.slide = static_cast<std::uint32_t>(s);
    }
    a.text = "note-" + std::to_string(i + 1);
    out.push_back(std::move(a));
  }
  std::sort(out.begin(), out.end(),
            [](const Annotation& x, const Annotation& y) { return x.at < y.at; });
  return out;
}

}  // namespace lod::media
