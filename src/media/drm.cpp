#include "lod/media/drm.hpp"

namespace lod::media {

namespace {
/// splitmix64 — tiny, deterministic keystream generator.
std::uint64_t mix(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

DrmSystem::DrmSystem(std::uint64_t seed) : seed_state_(seed) {}

KeyId DrmSystem::create_key(std::string label) {
  const KeyId id = label + "#" + std::to_string(next_key_++);
  keys_[id] = mix(seed_state_);
  return id;
}

std::uint64_t DrmSystem::key_material(const KeyId& key) const {
  auto it = keys_.find(key);
  return it == keys_.end() ? 0 : it->second;
}

void DrmSystem::apply_keystream(const KeyId& key, std::uint64_t nonce,
                                std::span<std::byte> data) const {
  std::uint64_t state = key_material(key) ^ (nonce * 0xc2b2ae3d27d4eb4fULL);
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t ks = mix(state);
    for (std::size_t b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<std::byte>((ks >> (8 * b)) & 0xff);
    }
  }
}

std::optional<License> DrmSystem::issue_license(const KeyId& key,
                                                std::string user,
                                                net::SimTime expires) {
  auto it = keys_.find(key);
  if (it == keys_.end()) return std::nullopt;
  ++licenses_issued_;
  return License{key, std::move(user), expires, it->second};
}

bool DrmSystem::validate(const License& lic, const KeyId& key,
                         std::string_view user, net::SimTime local_now) const {
  if (lic.key_id != key) return false;
  if (lic.user != user) return false;
  if (local_now > lic.expires) return false;
  auto it = keys_.find(key);
  // The wrapped key must match what the server would hand out — a forged or
  // stale license fails here even if its fields look right.
  return it != keys_.end() && it->second == lic.key_material;
}

bool DrmSystem::decrypt_with_license(const License& lic, std::string_view user,
                                     net::SimTime local_now,
                                     std::uint64_t nonce,
                                     std::span<std::byte> data) const {
  if (!validate(lic, lic.key_id, user, local_now)) return false;
  apply_keystream(lic.key_id, nonce, data);
  return true;
}

}  // namespace lod::media
