#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lod/media/object.hpp"
#include "lod/net/rng.hpp"

/// \file sources.hpp
/// Synthetic media sources.
///
/// Stand-ins for the paper's capture devices ("video camera or microphone")
/// and stored files ("encode a media file (video/audio)"). A lecture source
/// produces a deterministic, seeded stream of frames whose complexity moves
/// like a real talking-head lecture: long static stretches (speaker +
/// whiteboard) punctuated by scene cuts when the camera or slide changes.

namespace lod::media {

/// Pull-based video source.
class LectureVideoSource {
 public:
  /// \param duration  total length of the lecture video.
  /// \param fps       capture rate.
  /// \param width,height  capture resolution.
  /// \param seed      deterministic complexity pattern.
  LectureVideoSource(SimDuration duration, double fps, std::uint16_t width,
                     std::uint16_t height, std::uint64_t seed = 7);

  /// Next frame, or false when the lecture is over.
  bool next(VideoFrame& out);

  std::uint64_t frames_emitted() const { return index_; }
  SimDuration duration() const { return duration_; }
  double fps() const { return fps_; }

  /// Restart from the beginning with the same seed (same frames again).
  void rewind();

 private:
  SimDuration duration_;
  double fps_;
  std::uint16_t width_, height_;
  std::uint64_t seed_;
  net::Rng rng_;
  std::uint64_t index_{0};
  float complexity_{1.0f};
  std::uint64_t next_cut_frame_{0};
};

/// Pull-based audio source paced in fixed blocks.
class LectureAudioSource {
 public:
  LectureAudioSource(SimDuration duration, std::uint32_t sample_rate,
                     SimDuration block = net::msec(20), std::uint64_t seed = 11);

  bool next(AudioBlock& out);
  void rewind();
  SimDuration duration() const { return duration_; }

 private:
  SimDuration duration_;
  std::uint32_t sample_rate_;
  SimDuration block_;
  std::uint64_t seed_;
  net::Rng rng_;
  SimDuration pos_{};
};

/// Build a synthetic slide deck of \p n slides with plausible sizes.
std::vector<Slide> make_slide_deck(std::uint32_t n, std::uint64_t seed = 13);

/// A slide schedule: when each slide should appear during the lecture.
/// Models a teacher who spends variable time per slide: mean dwell is
/// duration/n with +-40% variation; slide 0 shows at t=0.
std::vector<SimDuration> make_slide_schedule(std::uint32_t n,
                                             SimDuration lecture,
                                             std::uint64_t seed = 17);

/// Synthetic teacher annotations (ink/comments) at random instants, each
/// anchored to the slide visible at that time per \p slide_times.
std::vector<Annotation> make_annotations(std::uint32_t count,
                                         const std::vector<SimDuration>& slide_times,
                                         SimDuration lecture,
                                         std::uint64_t seed = 19);

}  // namespace lod::media
