#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/net/time.hpp"

/// \file drm.hpp
/// Digital Rights Management model.
///
/// §2.1: DRM "is the technology for securing content and managing the rights
/// for its access. It is optional in authoring and mandatory for rendering."
/// We reproduce those semantics: content MAY be published protected; a
/// protected stream can only be rendered after the player acquires a valid
/// license for the content key. The cipher is a keyed XOR keystream — not
/// cryptographically serious, but it makes "render without a license" fail
/// loudly (garbage payloads) exactly as the real system's policy intends.

namespace lod::media {

/// Identifies a protected piece of content.
using KeyId = std::string;

/// A license bound to (key, user) with an expiry in *local player* time.
struct License {
  KeyId key_id;
  std::string user;
  net::SimTime expires{net::SimTime::max()};
  std::uint64_t key_material{0};  ///< the wrapped content key
};

/// DRM header info carried in the ASF header when content is protected.
struct DrmInfo {
  bool is_protected{false};
  KeyId key_id;
  std::string license_url;  ///< where players acquire licenses
};

/// The license server + crypto operations.
///
/// One instance plays both roles the paper implies: the authoring side
/// (generate a key, encrypt payloads) and the license-issuing side
/// (issue/validate licenses at render time).
class DrmSystem {
 public:
  explicit DrmSystem(std::uint64_t seed = 0xd12eU);

  /// Create a fresh content key and register it. Returns its id.
  KeyId create_key(std::string label);

  /// Encrypt/decrypt a payload in place (XOR keystream is its own inverse).
  /// \p nonce must differ per payload (we use the media object id) so equal
  /// plaintexts don't produce equal ciphertexts.
  void apply_keystream(const KeyId& key, std::uint64_t nonce,
                       std::span<std::byte> data) const;

  /// Issue a license for (key, user) valid until \p expires. Fails (nullopt)
  /// if the key is unknown.
  std::optional<License> issue_license(const KeyId& key, std::string user,
                                       net::SimTime expires);

  /// Render-time check: is this license valid for this key/user right now?
  bool validate(const License& lic, const KeyId& key, std::string_view user,
                net::SimTime local_now) const;

  /// Decrypt using a license rather than direct key access — what players do.
  /// Returns false (and leaves data untouched) if the license is invalid.
  bool decrypt_with_license(const License& lic, std::string_view user,
                            net::SimTime local_now, std::uint64_t nonce,
                            std::span<std::byte> data) const;

  std::size_t key_count() const { return keys_.size(); }
  std::uint64_t licenses_issued() const { return licenses_issued_; }

 private:
  std::uint64_t key_material(const KeyId& key) const;

  std::uint64_t seed_state_;
  std::unordered_map<KeyId, std::uint64_t> keys_;  // key id -> material
  std::uint64_t licenses_issued_{0};
  std::uint64_t next_key_{1};
};

}  // namespace lod::media
