#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lod/media/object.hpp"

/// \file codec.hpp
/// Rate-model codecs.
///
/// The paper lists the codecs ASF authoring/rendering supports: Windows Media
/// Audio, Sipro Labs ACELP, MPEG-3 audio; MPEG-4, TrueMotion RT, ClearVideo
/// video; plus uncompressed. We cannot ship those codecs, and the paper never
/// depends on their internals — only on how encoded media "fits on a
/// network's available bandwidth" (§2.1). So each codec here is a
/// deterministic *rate model*: given a raw frame/block and a target bit-rate
/// it produces an encoded-unit size and a quality score. That is exactly the
/// information the profile selection, packetizer, server pacing and player
/// buffering logic consume.

namespace lod::media {

/// One encoded access unit (a compressed frame or audio block).
struct EncodedUnit {
  std::uint16_t stream_id{0};
  MediaType type{MediaType::kVideo};
  SimDuration pts{};
  SimDuration duration{};  ///< display/playout duration of this unit
  std::uint32_t bytes{0};
  bool keyframe{false};
  /// Model quality in [0,1]: 1 is transparent, 0 is unusable. Derived from
  /// bits-per-pixel (video) or bit-rate vs codec sweet spot (audio).
  float quality{1.0f};
};

/// Configuration shared by video codec models.
struct VideoCodecConfig {
  std::int64_t target_bps{250'000};
  std::uint16_t width{320};
  std::uint16_t height{240};
  double fps{15.0};
  /// Keyframe (I-frame) interval in frames.
  std::uint32_t gop{75};
};

/// Configuration shared by audio codec models.
struct AudioCodecConfig {
  std::int64_t target_bps{32'000};
  std::uint32_t sample_rate{22'050};
  std::uint8_t channels{1};
};

/// A video codec rate model.
class VideoCodec {
 public:
  virtual ~VideoCodec() = default;
  virtual std::string_view name() const = 0;
  /// Reset internal rate-control state and apply a configuration.
  virtual void configure(const VideoCodecConfig& cfg) = 0;
  /// Encode one frame. Frame index drives GOP structure; rate control keeps
  /// the long-run average at the configured target.
  virtual EncodedUnit encode(const VideoFrame& frame,
                             std::uint64_t frame_index) = 0;
  /// Decode latency the player must budget for (model constant per codec).
  virtual SimDuration decode_latency() const = 0;
};

/// An audio codec rate model.
class AudioCodec {
 public:
  virtual ~AudioCodec() = default;
  virtual std::string_view name() const = 0;
  virtual void configure(const AudioCodecConfig& cfg) = 0;
  virtual EncodedUnit encode(const AudioBlock& block) = 0;
  virtual SimDuration decode_latency() const = 0;
};

/// Factory: the registry of every codec the paper names.
///
/// Video: "MPEG-4", "TrueMotionRT", "ClearVideo", "UncompressedVideo".
/// Audio: "WMA", "ACELP", "MP3", "UncompressedAudio".
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<VideoCodec> make_video_codec(std::string_view name);
std::unique_ptr<AudioCodec> make_audio_codec(std::string_view name);

/// All registered codec names, for enumeration in the configuration UI.
std::vector<std::string> video_codec_names();
std::vector<std::string> audio_codec_names();

}  // namespace lod::media
