#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/media/codec.hpp"
#include "lod/media/drm.hpp"
#include "lod/media/object.hpp"

/// \file asf.hpp
/// The Advanced Stream Format stand-in.
///
/// §2.1 of the paper: "The ASF is a data format for streaming audio and video
/// content, images, and script commands in packets over a network. ASF
/// content can be an .asf file or a live stream." We reproduce the structure
/// that the rest of the system depends on:
///
///  - a header object (file properties, stream table, DRM info),
///  - fixed-size data packets, each carrying one or more payloads; large
///    access units fragment across packets, small ones pack together,
///  - a dedicated script-command stream ("instruct the player to perform
///    additional tasks along with rendering" — our slide flips and
///    annotations ride here, exactly like the paper's publishing manager),
///  - an index object mapping presentation time to the cleanest packet to
///    resume from (the "Windows Media ASF Indexer" role), used for seeking.
///
/// Everything round-trips through a byte serialization, so a stored ".asf
/// file" really is a flat byte buffer, and a live stream really is a packet
/// sequence.

namespace lod::media::asf {

/// Reserved stream id for the script-command stream.
inline constexpr std::uint16_t kScriptStreamId = 0x7fff;

/// A script command (§2.1). `type` is the command class; the paper's system
/// emits slide flips ("SLIDE") and annotations ("ANNOT"); generic types
/// ("URL", "TEXT", "EVENT") match what Windows Media Player understood.
struct ScriptCommand {
  SimDuration at{};     ///< presentation time to execute at
  std::string type;
  std::string param;

  bool operator==(const ScriptCommand&) const = default;
};

/// File-wide properties (the ASF File Properties Object).
struct FileProperties {
  std::string title;
  std::string author;
  SimDuration play_duration{};
  /// How much content a player should buffer before starting to render.
  SimDuration preroll{net::msec(3000)};
  /// Fixed on-the-wire data packet size.
  std::uint32_t packet_bytes{1400};
  std::int64_t avg_bitrate_bps{0};
};

/// Header: properties + stream table + DRM.
struct Header {
  FileProperties props;
  std::vector<StreamInfo> streams;
  DrmInfo drm;

  const StreamInfo* find_stream(std::uint16_t id) const;
};

/// One payload inside a data packet: a whole access unit or a fragment.
struct Payload {
  std::uint16_t stream_id{0};
  MediaType type{MediaType::kVideo};
  SimDuration pts{};
  SimDuration duration{};
  bool keyframe{false};
  std::uint32_t object_id{0};    ///< access-unit number within the stream
  std::uint32_t offset{0};       ///< fragment offset within the unit
  std::uint32_t object_size{0};  ///< total unit size (== data.size() if whole)
  std::vector<std::byte> data;
};

/// One fixed-size data packet.
struct DataPacket {
  SimDuration send_time{};  ///< when a paced sender should emit this packet
  std::vector<Payload> payloads;
  std::uint32_t pad_bytes{0};  ///< padding up to the fixed packet size
};

/// Index entry: presentation time -> first packet at/after it that starts a
/// video keyframe (or any packet if no video).
struct IndexEntry {
  SimDuration time{};
  std::uint32_t packet{0};
};

/// A complete ASF file in memory.
struct File {
  Header header;
  std::vector<DataPacket> packets;
  std::vector<IndexEntry> index;

  /// Total serialized size (header + packets + index), in bytes.
  std::size_t wire_size() const;
};

// --- muxing -----------------------------------------------------------------

/// Builds an ASF file from encoded units and script commands.
///
/// Call `add_unit` / `add_script` in any order; `finalize()` interleaves all
/// payloads by presentation time, fragments and packs them into fixed-size
/// packets, optionally encrypts payloads under DRM, and builds the index.
class Muxer {
 public:
  /// \param drm  if non-null and header.drm.is_protected, payload data is
  ///             encrypted under header.drm.key_id.
  explicit Muxer(Header header, const DrmSystem* drm = nullptr);

  /// Add one encoded access unit with its (synthetic) content bytes.
  /// If `content` is empty, pattern bytes of `unit.bytes` length are created.
  void add_unit(const EncodedUnit& unit, std::span<const std::byte> content = {});

  /// Add a script command.
  void add_script(const ScriptCommand& cmd);

  /// Pack everything. The muxer is spent afterwards.
  /// \param index_interval  granularity of the seek index.
  File finalize(SimDuration index_interval = net::sec(5));

  std::size_t units_added() const { return units_.size(); }

 private:
  struct PendingUnit {
    EncodedUnit meta;
    std::vector<std::byte> content;
  };

  Header header_;
  const DrmSystem* drm_;
  std::vector<PendingUnit> units_;
  std::vector<ScriptCommand> scripts_;
};

// --- demuxing ----------------------------------------------------------------

/// A reassembled access unit as produced by the demuxer.
struct DemuxedUnit {
  EncodedUnit meta;
  std::vector<std::byte> data;
};

/// Incremental demuxer: feed packets (in order received), pull out complete
/// access units and script commands. This is exactly what the player runs —
/// it works the same whether packets come from a stored file or a live
/// stream, and tolerates missing packets (incomplete units are dropped when
/// a newer unit on the same stream completes).
class Demuxer {
 public:
  /// \param drm,license,user,local_now_fn  needed only for protected content.
  explicit Demuxer(Header header);

  /// Provide the license for protected content. Without a valid license the
  /// demuxer still reassembles but leaves payloads encrypted and flags it.
  void set_license(const DrmSystem* drm, License lic, std::string user);

  /// Feed one packet. Completed units/scripts become available for polling.
  void feed(const DataPacket& packet, net::SimTime local_now = {});

  /// Pull the next completed media unit (pts order within arrival order).
  std::optional<DemuxedUnit> next_unit();
  /// Pull the next decoded script command.
  std::optional<ScriptCommand> next_script();

  /// True if protected payloads were surfaced without a usable license.
  bool undecryptable() const { return undecryptable_; }
  std::uint64_t dropped_incomplete() const { return dropped_incomplete_; }

  const Header& header() const { return header_; }

 private:
  struct Assembly {
    std::uint32_t object_id{0};
    std::uint32_t object_size{0};
    std::uint32_t received{0};
    EncodedUnit meta;
    std::vector<std::byte> data;
    bool active{false};
  };

  void complete(Assembly& a, net::SimTime local_now);

  Header header_;
  const DrmSystem* drm_{nullptr};
  std::optional<License> license_;
  std::string user_;
  std::unordered_map<std::uint16_t, Assembly> assembling_;
  std::vector<DemuxedUnit> ready_units_;
  std::vector<ScriptCommand> ready_scripts_;
  std::size_t unit_cursor_{0};
  std::size_t script_cursor_{0};
  bool undecryptable_{false};
  std::uint64_t dropped_incomplete_{0};
};

// --- serialization ------------------------------------------------------------

/// Serialize a complete file to a flat byte buffer (a stored ".asf file").
std::vector<std::byte> serialize(const File& f);
/// Parse a stored file. Throws std::out_of_range / std::runtime_error on
/// malformed input.
File parse(std::span<const std::byte> bytes);

/// Serialize / parse a single packet (for live streams on the wire).
std::vector<std::byte> serialize_packet(const DataPacket& p);
DataPacket parse_packet(std::span<const std::byte> bytes);
std::vector<std::byte> serialize_header(const Header& h);
Header parse_header(std::span<const std::byte> bytes);

// --- indexing ------------------------------------------------------------------

/// (Re)build the seek index at the given granularity — the "ASF Indexer"
/// command-line utility's job in the paper's workflow.
void build_index(File& f, SimDuration interval = net::sec(5));

/// Find the packet to start from so that playback covers time \p t:
/// the latest index entry at or before t. Returns 0 if the index is empty.
std::uint32_t seek_packet(const File& f, SimDuration t);

/// Generate deterministic pattern bytes for synthetic payload content.
std::vector<std::byte> pattern_bytes(std::size_t n, std::uint32_t tag);

}  // namespace lod::media::asf
