#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lod/net/time.hpp"

/// \file object.hpp
/// The multimedia object model.
///
/// The paper's presentations are "collections of text, video, audio, image
/// ... with some kind of sequence fashion" (§2.2). This header defines the
/// raw units those collections are made of, before encoding: video frames,
/// audio blocks, slide images, text/annotation snippets.

namespace lod::media {

using net::SimDuration;
using net::SimTime;

/// Kinds of media the system presents. Matches the paper's enumeration.
enum class MediaType : std::uint8_t {
  kVideo = 0,
  kAudio = 1,
  kImage = 2,   ///< presentation slides
  kText = 3,    ///< captions / comments
  kAnnotation = 4,  ///< teacher's ink/notes over a slide
  kScript = 5,  ///< ASF script commands (control stream)
};

std::string to_string(MediaType t);

/// An uncompressed video frame. We do not store pixels — only the statistics
/// a rate-model codec needs: dimensions and a per-frame "complexity" that
/// synthetic sources vary over time (a scene cut spikes it).
struct VideoFrame {
  SimDuration pts{};       ///< presentation time relative to stream start
  std::uint16_t width{320};
  std::uint16_t height{240};
  float complexity{1.0f};  ///< ~1.0 average; >1 busy scene, <1 static scene
  bool scene_cut{false};
};

/// A block of uncompressed audio samples.
struct AudioBlock {
  SimDuration pts{};
  SimDuration duration{net::msec(20)};  ///< typical codec frame
  std::uint32_t sample_rate{44'100};
  std::uint8_t channels{1};
  float energy{1.0f};  ///< speech loudness proxy, varies with the lecture
};

/// A presentation slide (synthetic stand-in for a PowerPoint export).
struct Slide {
  std::uint32_t index{0};
  std::string title;
  std::uint32_t encoded_bytes{40'000};  ///< JPEG-ish size of the slide image
};

/// A teacher annotation: ink or a comment anchored to a slide at a time.
struct Annotation {
  SimDuration at{};        ///< when during the lecture it was made
  std::uint32_t slide{0};  ///< which slide it belongs to
  std::string text;        ///< comment text (or stroke description)
};

/// A logical media stream descriptor as carried in the container header.
struct StreamInfo {
  std::uint16_t stream_id{0};
  MediaType type{MediaType::kVideo};
  std::string codec;        ///< codec name, e.g. "MPEG-4"
  std::int64_t avg_bitrate_bps{0};
  std::uint16_t width{0};   ///< video only
  std::uint16_t height{0};  ///< video only
  std::uint32_t sample_rate{0};  ///< audio only
};

}  // namespace lod::media
