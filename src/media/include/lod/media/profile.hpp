#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lod/media/codec.hpp"

/// \file profile.hpp
/// Bandwidth profiles.
///
/// §2.5 of the paper: "User can select the profile that best describes the
/// content you are encoding. This profile means the different bandwidth will
/// be configured. The more high bit rate means the content will be encoded to
/// a more high-resolution content." These mirror the stock Windows Media
/// Encoder profiles of the era, from dial-up audio-only up to LAN quality.

namespace lod::media {

/// One selectable encoding profile.
struct BandwidthProfile {
  std::string name;
  std::int64_t total_bps{0};   ///< what the profile promises to fit in
  std::int64_t video_bps{0};   ///< 0 = no video stream at this profile
  std::int64_t audio_bps{0};
  std::uint16_t width{0};
  std::uint16_t height{0};
  double fps{0.0};
  std::string video_codec{"MPEG-4"};
  std::string audio_codec{"WMA"};

  VideoCodecConfig video_config() const {
    return VideoCodecConfig{video_bps, width, height, fps,
                            static_cast<std::uint32_t>(fps * 5)};
  }
  AudioCodecConfig audio_config() const {
    return AudioCodecConfig{audio_bps, audio_sample_rate(), 1};
  }
  std::uint32_t audio_sample_rate() const {
    return audio_bps >= 64'000 ? 44'100u : (audio_bps >= 32'000 ? 22'050u : 8'000u);
  }
  bool has_video() const { return video_bps > 0; }
};

/// The built-in profile table, ordered by ascending total bit-rate.
const std::vector<BandwidthProfile>& standard_profiles();

/// Look up a profile by name; nullopt if unknown.
std::optional<BandwidthProfile> find_profile(std::string_view name);

/// Pick the richest profile whose total rate fits within \p available_bps
/// (with a safety \p headroom factor, default 15%, for container overhead
/// and retransmissions). Falls back to the smallest profile if none fit.
const BandwidthProfile& best_profile_for(std::int64_t available_bps,
                                         double headroom = 0.15);

}  // namespace lod::media
