#include "lod/media/profile.hpp"

#include <algorithm>

namespace lod::media {

const std::vector<BandwidthProfile>& standard_profiles() {
  // Modeled on the stock Windows Media Encoder 7 profile ladder the paper's
  // configuration module exposed ("the different bandwidth profile selection
  // window"). ACELP serves the dial-up voice tiers; WMA the rest.
  static const std::vector<BandwidthProfile> kProfiles = {
      {"Audio 28.8k (voice)", 22'000, 0, 22'000, 0, 0, 0.0, "MPEG-4",
       "ACELP"},
      {"Video 28.8k", 24'000, 16'000, 8'000, 160, 120, 5.0, "MPEG-4", "ACELP"},
      {"Video 56k dial-up", 40'000, 27'000, 13'000, 176, 144, 7.5, "MPEG-4",
       "ACELP"},
      {"Video 100k dual-ISDN", 100'000, 68'000, 32'000, 240, 180, 10.0,
       "MPEG-4", "WMA"},
      {"Video 250k DSL/cable", 250'000, 186'000, 64'000, 320, 240, 15.0,
       "MPEG-4", "WMA"},
      {"Video 750k broadband", 750'000, 686'000, 64'000, 480, 360, 25.0,
       "MPEG-4", "WMA"},
      {"Video 1.5M LAN", 1'500'000, 1'372'000, 128'000, 640, 480, 30.0,
       "MPEG-4", "WMA"},
  };
  return kProfiles;
}

std::optional<BandwidthProfile> find_profile(std::string_view name) {
  for (const auto& p : standard_profiles()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

const BandwidthProfile& best_profile_for(std::int64_t available_bps,
                                         double headroom) {
  const auto& all = standard_profiles();
  const double budget = static_cast<double>(available_bps) * (1.0 - headroom);
  const BandwidthProfile* best = &all.front();
  for (const auto& p : all) {
    if (static_cast<double>(p.total_bps) <= budget) best = &p;
  }
  return *best;
}

}  // namespace lod::media
