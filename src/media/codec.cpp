#include "lod/media/codec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lod::media {

std::string to_string(MediaType t) {
  switch (t) {
    case MediaType::kVideo: return "video";
    case MediaType::kAudio: return "audio";
    case MediaType::kImage: return "image";
    case MediaType::kText: return "text";
    case MediaType::kAnnotation: return "annotation";
    case MediaType::kScript: return "script";
  }
  return "unknown";
}

namespace {

/// Shared scaffolding for video rate models. Each concrete codec supplies an
/// efficiency factor (bits-per-pixel needed for transparent quality) and an
/// I:P frame cost ratio; a leaky-bucket rate controller keeps the long-run
/// average on target while letting complexity and scene cuts move individual
/// frame sizes, which is what stresses the packetizer and jitter buffer.
class RateModelVideoCodec : public VideoCodec {
 public:
  RateModelVideoCodec(std::string name, double transparent_bpp,
                      double iframe_ratio, SimDuration decode_lat)
      : name_(std::move(name)),
        transparent_bpp_(transparent_bpp),
        iframe_ratio_(iframe_ratio),
        decode_lat_(decode_lat) {}

  std::string_view name() const override { return name_; }

  void configure(const VideoCodecConfig& cfg) override {
    cfg_ = cfg;
    budget_debt_ = 0.0;
  }

  EncodedUnit encode(const VideoFrame& f, std::uint64_t idx) override {
    const double per_frame_budget =
        static_cast<double>(cfg_.target_bps) / std::max(cfg_.fps, 1.0) / 8.0;
    const bool key = (idx % std::max<std::uint32_t>(cfg_.gop, 1) == 0) ||
                     f.scene_cut;
    // P frames cost 1 unit, I frames `iframe_ratio_` units; normalize so a
    // whole GOP still meets the budget.
    const double gop_frames = static_cast<double>(std::max<std::uint32_t>(cfg_.gop, 1));
    const double unit_cost =
        gop_frames / (iframe_ratio_ + (gop_frames - 1.0));
    double size = per_frame_budget * unit_cost *
                  (key ? iframe_ratio_ : 1.0) *
                  static_cast<double>(std::clamp(f.complexity, 0.2f, 4.0f));
    // Leaky-bucket correction toward target.
    size = std::max(64.0, size - 0.25 * budget_debt_);
    budget_debt_ += size - per_frame_budget;

    EncodedUnit u;
    u.type = MediaType::kVideo;
    u.pts = f.pts;
    u.duration = net::secf(1.0 / std::max(cfg_.fps, 1.0));
    u.bytes = static_cast<std::uint32_t>(size);
    u.keyframe = key;
    // Quality: achieved bits-per-pixel vs what this codec needs.
    const double pixels = static_cast<double>(f.width) * f.height;
    const double bpp = (static_cast<double>(cfg_.target_bps) /
                        std::max(cfg_.fps, 1.0)) /
                       std::max(pixels, 1.0);
    u.quality = static_cast<float>(
        std::clamp(bpp / transparent_bpp_, 0.05, 1.0));
    return u;
  }

  SimDuration decode_latency() const override { return decode_lat_; }

 private:
  std::string name_;
  double transparent_bpp_;
  double iframe_ratio_;
  SimDuration decode_lat_;
  VideoCodecConfig cfg_{};
  double budget_debt_{0.0};
};

/// Uncompressed video: every frame costs width*height*1.5 bytes (YUV 4:2:0).
class UncompressedVideoCodec : public VideoCodec {
 public:
  std::string_view name() const override { return "UncompressedVideo"; }
  void configure(const VideoCodecConfig& cfg) override { cfg_ = cfg; }
  EncodedUnit encode(const VideoFrame& f, std::uint64_t) override {
    EncodedUnit u;
    u.type = MediaType::kVideo;
    u.pts = f.pts;
    u.duration = net::secf(1.0 / std::max(cfg_.fps, 1.0));
    u.bytes = static_cast<std::uint32_t>(f.width * f.height * 3 / 2);
    u.keyframe = true;  // every frame independently decodable
    u.quality = 1.0f;
    return u;
  }
  SimDuration decode_latency() const override { return net::usec(100); }

 private:
  VideoCodecConfig cfg_{};
};

/// Audio rate model: constant-bit-rate frames; quality is the configured rate
/// relative to the codec's transparent rate, scaled by how far outside the
/// codec's designed band the configuration sits (ACELP is a speech codec —
/// pushing it to 128 kb/s does not help).
class RateModelAudioCodec : public AudioCodec {
 public:
  RateModelAudioCodec(std::string name, std::int64_t transparent_bps,
                      std::int64_t min_bps, std::int64_t max_bps,
                      SimDuration decode_lat)
      : name_(std::move(name)),
        transparent_bps_(transparent_bps),
        min_bps_(min_bps),
        max_bps_(max_bps),
        decode_lat_(decode_lat) {}

  std::string_view name() const override { return name_; }
  void configure(const AudioCodecConfig& cfg) override {
    cfg_ = cfg;
    cfg_.target_bps = std::clamp(cfg.target_bps, min_bps_, max_bps_);
  }
  EncodedUnit encode(const AudioBlock& b) override {
    EncodedUnit u;
    u.type = MediaType::kAudio;
    u.pts = b.pts;
    u.duration = b.duration;
    u.bytes = static_cast<std::uint32_t>(
        std::max<std::int64_t>(8, cfg_.target_bps * b.duration.us / 8'000'000));
    u.keyframe = true;  // audio frames are independently decodable
    u.quality = static_cast<float>(std::clamp(
        static_cast<double>(cfg_.target_bps) / static_cast<double>(transparent_bps_),
        0.05, 1.0));
    return u;
  }
  SimDuration decode_latency() const override { return decode_lat_; }

 private:
  std::string name_;
  std::int64_t transparent_bps_;
  std::int64_t min_bps_;
  std::int64_t max_bps_;
  SimDuration decode_lat_;
  AudioCodecConfig cfg_{};
};

/// Uncompressed PCM.
class UncompressedAudioCodec : public AudioCodec {
 public:
  std::string_view name() const override { return "UncompressedAudio"; }
  void configure(const AudioCodecConfig& cfg) override { cfg_ = cfg; }
  EncodedUnit encode(const AudioBlock& b) override {
    EncodedUnit u;
    u.type = MediaType::kAudio;
    u.pts = b.pts;
    u.duration = b.duration;
    const std::int64_t samples = b.sample_rate * b.duration.us / 1'000'000;
    u.bytes = static_cast<std::uint32_t>(samples * b.channels * 2);  // s16
    u.keyframe = true;
    u.quality = 1.0f;
    return u;
  }
  SimDuration decode_latency() const override { return net::usec(10); }

 private:
  AudioCodecConfig cfg_{};
};

}  // namespace

std::unique_ptr<VideoCodec> make_video_codec(std::string_view name) {
  // Efficiency constants: MPEG-4 is the strongest of the three paper-era
  // codecs; TrueMotion RT trades compression for very low decode cost;
  // ClearVideo (wavelet) sits between.
  if (name == "MPEG-4") {
    return std::make_unique<RateModelVideoCodec>("MPEG-4", 0.10, 6.0,
                                                 net::msec(8));
  }
  if (name == "TrueMotionRT") {
    return std::make_unique<RateModelVideoCodec>("TrueMotionRT", 0.25, 3.0,
                                                 net::msec(2));
  }
  if (name == "ClearVideo") {
    return std::make_unique<RateModelVideoCodec>("ClearVideo", 0.15, 5.0,
                                                 net::msec(12));
  }
  if (name == "UncompressedVideo") {
    return std::make_unique<UncompressedVideoCodec>();
  }
  throw std::invalid_argument("unknown video codec: " + std::string(name));
}

std::unique_ptr<AudioCodec> make_audio_codec(std::string_view name) {
  if (name == "WMA") {
    return std::make_unique<RateModelAudioCodec>("WMA", 64'000, 8'000,
                                                 192'000, net::msec(3));
  }
  if (name == "ACELP") {
    // Speech codec: transparent for speech at 16 kb/s, capped low.
    return std::make_unique<RateModelAudioCodec>("ACELP", 16'000, 5'000,
                                                 16'000, net::msec(5));
  }
  if (name == "MP3") {
    return std::make_unique<RateModelAudioCodec>("MP3", 128'000, 32'000,
                                                 320'000, net::msec(4));
  }
  if (name == "UncompressedAudio") {
    return std::make_unique<UncompressedAudioCodec>();
  }
  throw std::invalid_argument("unknown audio codec: " + std::string(name));
}

std::vector<std::string> video_codec_names() {
  return {"MPEG-4", "TrueMotionRT", "ClearVideo", "UncompressedVideo"};
}
std::vector<std::string> audio_codec_names() {
  return {"WMA", "ACELP", "MP3", "UncompressedAudio"};
}

}  // namespace lod::media
