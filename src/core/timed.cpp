#include "lod/core/timed.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "lod/obs/flight.hpp"

namespace lod::core {

std::optional<PlaceInterval> PlayoutTrace::interval_of(
    const TimedPetriNet& net, std::string_view object_name) const {
  for (const auto& iv : intervals) {
    const auto& m = net.media(iv.place);
    if (m && m->object_name == object_name) return iv;
  }
  return std::nullopt;
}

namespace {
struct ReadyEvent {
  SimDuration at;
  PlaceId place;
};
struct Later {
  bool operator()(const ReadyEvent& a, const ReadyEvent& b) const {
    return a.at.us > b.at.us;
  }
};
}  // namespace

namespace {
/// Shared engine: \p sample(place) yields this visit's maturation duration;
/// \p hooks publishes firings (a default PlayObs is free — null handles).
template <typename DurationSampler>
PlayoutTrace play_impl(const TimedPetriNet& net, const Marking& initial,
                       std::size_t max_steps, DurationSampler&& sample,
                       const PlayObs& hooks = {}) {
  PlayoutTrace trace;
  const std::size_t np = net.place_count();
  const std::size_t nt = net.transition_count();

  std::vector<std::uint32_t> mature(np, 0);  // tokens available to fire
  std::vector<std::uint32_t> total(np, 0);   // mature + still cooking
  std::priority_queue<ReadyEvent, std::vector<ReadyEvent>, Later> heap;

  // Watcher index: a transition can only BECOME enabled when
  //  - a token matures in one of its normal input places, or
  //  - a place it inhibits / a bounded place it feeds loses tokens.
  // Scanning just those watchers turns the per-instant cost from O(T) into
  // O(changes), which is what lets 10^4..10^5-node nets play in milliseconds.
  std::vector<std::vector<TransitionId>> on_mature(np), on_free(np);
  // Agenda order realizes the prioritized firing rule: highest priority
  // first, lowest id among equals — deterministic under conflict.
  const auto agenda_less = [&net](TransitionId a, TransitionId b) {
    const auto pa = net.priority(a), pb = net.priority(b);
    return pa != pb ? pa > pb : a < b;
  };
  std::set<TransitionId, decltype(agenda_less)> agenda(agenda_less);
  for (TransitionId t = 0; t < nt; ++t) {
    bool has_normal_input = false;
    for (const auto& a : net.inputs(t)) {
      if (a.kind == ArcKind::kNormal) {
        has_normal_input = true;
        on_mature[a.place].push_back(t);
      } else {
        on_free[a.place].push_back(t);
      }
    }
    for (const auto& a : net.outputs(t)) {
      if (net.place_capacity(a.place) != 0) on_free[a.place].push_back(t);
    }
    // Source transitions are enabled by nothing but themselves: seed them.
    if (!has_normal_input) agenda.insert(t);
  }

  auto deposit = [&](PlaceId p, SimDuration enter) {
    ++total[p];
    const SimDuration ready = enter + sample(p);
    trace.intervals.push_back(PlaceInterval{p, enter, ready});
    heap.push(ReadyEvent{ready, p});
  };

  for (PlaceId p = 0; p < initial.size() && p < np; ++p) {
    for (std::uint32_t k = 0; k < initial[p]; ++k) deposit(p, SimDuration{0});
  }

  // Enabling against the timed state: normal inputs need MATURE tokens,
  // inhibitors must see the place empty of ANY token, bounded outputs are
  // checked against total occupancy.
  auto timed_enabled = [&](TransitionId t) {
    for (const auto& a : net.inputs(t)) {
      if (a.kind == ArcKind::kInhibitor) {
        if (total[a.place] >= a.weight) return false;
      } else if (mature[a.place] < a.weight) {
        return false;
      }
    }
    for (const auto& a : net.outputs(t)) {
      const std::uint32_t cap = net.place_capacity(a.place);
      if (cap == 0) continue;
      std::uint32_t consumed = 0;
      for (const auto& in : net.inputs(t)) {
        if (in.kind == ArcKind::kNormal && in.place == a.place) {
          consumed += in.weight;
        }
      }
      if (total[a.place] - consumed + a.weight > cap) return false;
    }
    return true;
  };

  std::size_t steps = 0;
  SimDuration now{0};

  auto fire = [&](TransitionId t) {
    SiteId home = kLocalSite;
    for (const auto& a : net.inputs(t)) {
      if (a.kind == ArcKind::kNormal) {
        home = std::max(home, net.site(a.place));
        mature[a.place] -= a.weight;
        total[a.place] -= a.weight;
        for (TransitionId w : on_free[a.place]) agenda.insert(w);
      }
    }
    trace.firings.push_back(FiringRecord{t, now});
    hooks.fired.inc();
    if (hooks.trace && hooks.trace->enabled()) {
      hooks.trace->emit(obs::EventType::kTransitionFire, t, now.us);
    }
    // The engine fires every ~50ns, so even a ~2.5ns journal write per
    // firing would bust the <2% obs-overhead contract: sample the firehose
    // lane 1-in-16. Control-lane events (verdicts, drops, SLO, spans) are
    // never sampled; `b` carries the firing ordinal so gaps are explicit.
    if (hooks.flight && (trace.firings.size() & 15u) == 0) {
      hooks.flight->record_at(now.us, obs::FlightType::kSimEvent, t,
                              static_cast<std::uint64_t>(now.us),
                              trace.firings.size(),
                              obs::FlightRecorder::kLaneDispatch);
    }
    for (const auto& a : net.outputs(t)) {
      const SimDuration hop =
          net.site(a.place) != home ? net.transfer_delay() : SimDuration{0};
      for (std::uint32_t k = 0; k < a.weight; ++k) deposit(a.place, now + hop);
    }
  };

  while (true) {
    // Mature everything due now; wake the consumers of those places.
    while (!heap.empty() && heap.top().at <= now) {
      const PlaceId p = heap.top().place;
      heap.pop();
      ++mature[p];
      for (TransitionId w : on_mature[p]) agenda.insert(w);
    }

    // Fire the agenda to fixpoint at this instant, ascending transition id.
    while (!agenda.empty()) {
      const TransitionId t = *agenda.begin();
      agenda.erase(agenda.begin());
      while (timed_enabled(t)) {
        if (steps >= max_steps) {
          trace.truncated = true;
          trace.makespan = now;
          return trace;
        }
        fire(t);
        ++steps;
      }
      // Zero-duration deposits mature at this same instant: drain them so
      // their consumers join the agenda before we move on.
      while (!heap.empty() && heap.top().at <= now) {
        const PlaceId p = heap.top().place;
        heap.pop();
        ++mature[p];
        for (TransitionId w : on_mature[p]) agenda.insert(w);
      }
    }

    if (heap.empty()) break;
    now = heap.top().at;
  }

  SimDuration makespan = now;
  for (const auto& iv : trace.intervals) makespan = std::max(makespan, iv.end);
  trace.makespan = makespan;
  return trace;
}
}  // namespace

PlayoutTrace play(const TimedPetriNet& net, const Marking& initial,
                  std::size_t max_steps) {
  return play_impl(net, initial, max_steps,
                   [&net](PlaceId p) { return net.duration(p); });
}

PlayoutTrace play(const TimedPetriNet& net, const Marking& initial,
                  std::size_t max_steps, const PlayObs& obs) {
  return play_impl(net, initial, max_steps,
                   [&net](PlaceId p) { return net.duration(p); }, obs);
}

PlayoutTrace play_stochastic(const TimedPetriNet& net, const Marking& initial,
                             net::Rng& rng, double spread,
                             std::size_t max_steps) {
  if (spread < 0.0) spread = 0.0;
  if (spread > 0.95) spread = 0.95;
  return play_impl(net, initial, max_steps, [&net, &rng, spread](PlaceId p) {
    const SimDuration d = net.duration(p);
    if (d.us <= 0 || spread == 0.0) return d;
    const double f = 1.0 - spread + rng.uniform01() * 2.0 * spread;
    return SimDuration{static_cast<std::int64_t>(
        static_cast<double>(d.us) * f + 0.5)};
  });
}

}  // namespace lod::core
