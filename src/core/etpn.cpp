#include "lod/core/etpn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lod::core {

InteractivePlayout::InteractivePlayout(net::Simulator& sim,
                                       const TimedPetriNet& net,
                                       const Marking& initial)
    : sim_(sim), net_(net), trace_(play(net, initial)) {
  build_events();
  open_episode_.assign(trace_.intervals.size(), 0);
}

InteractivePlayout::~InteractivePlayout() { cancel_timer(); }

void InteractivePlayout::build_events() {
  for (std::uint32_t i = 0; i < trace_.intervals.size(); ++i) {
    const auto& iv = trace_.intervals[i];
    if (!net_.media(iv.place)) continue;  // control places don't render
    events_.push_back(Event{iv.start, i, true});
    events_.push_back(Event{iv.end, i, false});
  }
  // Ends before starts at equal instants: a slide flip is "old off, new on".
  std::sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.is_start != b.is_start) return !a.is_start;
    return a.interval < b.interval;
  });
}

SimDuration InteractivePlayout::media_now() const {
  if (!started_) return SimDuration{0};
  if (paused_ || finished_) return anchor_media_;
  const SimDuration wall_elapsed = sim_.now() - anchor_wall_;
  return anchor_media_ +
         SimDuration{static_cast<std::int64_t>(
             static_cast<double>(wall_elapsed.us) * rate_)};
}

void InteractivePlayout::log(Interaction::Kind k) {
  interactions_.push_back(Interaction{k, sim_.now(), media_now(), rate_});
}

void InteractivePlayout::start() {
  if (started_) return;
  started_ = true;
  anchor_wall_ = sim_.now();
  anchor_media_ = SimDuration{0};
  log(Interaction::Kind::kStart);
  fire_due_events();  // zero-time starts
  arm_timer();
}

void InteractivePlayout::pause() {
  if (!started_ || paused_ || finished_) return;
  anchor_media_ = media_now();
  paused_ = true;
  cancel_timer();
  log(Interaction::Kind::kPause);
}

void InteractivePlayout::resume() {
  if (!started_ || !paused_ || finished_) return;
  paused_ = false;
  anchor_wall_ = sim_.now();
  log(Interaction::Kind::kResume);
  arm_timer();
}

void InteractivePlayout::set_rate(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("set_rate: rate must be > 0");
  if (!started_) {
    rate_ = rate;
    return;
  }
  anchor_media_ = media_now();
  anchor_wall_ = sim_.now();
  rate_ = rate;
  log(Interaction::Kind::kRate);
  if (!paused_ && !finished_) {
    cancel_timer();
    arm_timer();
  }
}

void InteractivePlayout::seek(SimDuration media_t) {
  if (!started_) start();
  if (media_t.us < 0) media_t = SimDuration{0};
  if (media_t > trace_.makespan) media_t = trace_.makespan;
  cancel_timer();

  // Target active set: media intervals covering media_t.
  std::unordered_set<std::uint32_t> target;
  for (std::uint32_t i = 0; i < trace_.intervals.size(); ++i) {
    const auto& iv = trace_.intervals[i];
    if (!net_.media(iv.place)) continue;
    if (iv.start <= media_t && media_t < iv.end) target.insert(i);
  }

  // Stop what should no longer render; start what newly should.
  for (auto it = active_.begin(); it != active_.end();) {
    if (!target.count(*it)) {
      emit_end(*it, media_t, /*complete=*/false);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  anchor_media_ = media_t;
  anchor_wall_ = sim_.now();
  finished_ = false;
  for (std::uint32_t i : target) {
    if (!active_.count(i)) {
      active_.insert(i);
      emit_start(i, media_t);
    }
  }

  // Cursor: first event strictly after media_t. Equal-time start events were
  // just handled via the active set; equal-time end events belong to
  // intervals that close exactly at media_t (not in target, already closed).
  cursor_ = static_cast<std::size_t>(
      std::lower_bound(events_.begin(), events_.end(), media_t,
                       [](const Event& e, SimDuration t) { return e.at <= t; }) -
      events_.begin());
  log(Interaction::Kind::kSeek);
  if (!paused_) {
    if (cursor_ >= events_.size() && media_t >= trace_.makespan) {
      finished_ = true;
    } else {
      arm_timer();
    }
  }
}

void InteractivePlayout::cancel_timer() {
  if (timer_) {
    sim_.cancel(*timer_);
    timer_.reset();
  }
}

void InteractivePlayout::arm_timer() {
  if (paused_ || finished_) return;
  if (cursor_ >= events_.size()) {
    // Nothing left to render; finish when the media clock passes makespan.
    const SimDuration remaining_media = trace_.makespan - media_now();
    const auto wall_delta = SimDuration{static_cast<std::int64_t>(
        std::ceil(static_cast<double>(std::max<std::int64_t>(
                      remaining_media.us, 0)) /
                  rate_))};
    timer_ = sim_.schedule_after(wall_delta, [this] {
      timer_.reset();
      anchor_media_ = trace_.makespan;
      anchor_wall_ = sim_.now();
      finished_ = true;
    });
    return;
  }
  const SimDuration media_delta = events_[cursor_].at - media_now();
  const auto wall_delta = SimDuration{static_cast<std::int64_t>(
      std::ceil(static_cast<double>(std::max<std::int64_t>(media_delta.us, 0)) /
                rate_))};
  timer_ = sim_.schedule_after(wall_delta, [this] {
    timer_.reset();
    fire_due_events();
    arm_timer();
  });
}

void InteractivePlayout::fire_due_events() {
  const SimDuration pos = media_now();
  while (cursor_ < events_.size() && events_[cursor_].at <= pos) {
    const Event& e = events_[cursor_++];
    if (e.is_start) {
      if (active_.insert(e.interval).second) emit_start(e.interval, e.at);
    } else {
      if (active_.erase(e.interval)) emit_end(e.interval, e.at, true);
    }
  }
}

void InteractivePlayout::emit_start(std::uint32_t interval,
                                    SimDuration media_pos) {
  const PlaceId p = trace_.intervals[interval].place;
  WallEpisode ep;
  ep.place = p;
  ep.media_start = media_pos;
  ep.wall_start = sim_.now();
  ep.complete = false;
  episodes_.push_back(ep);
  open_episode_[interval] = static_cast<std::uint32_t>(episodes_.size());
  if (callback_) callback_(p, *net_.media(p), true, media_pos);
}

void InteractivePlayout::emit_end(std::uint32_t interval, SimDuration media_pos,
                                  bool complete) {
  const PlaceId p = trace_.intervals[interval].place;
  if (const std::uint32_t idx = open_episode_[interval]; idx > 0) {
    episodes_[idx - 1].wall_end = sim_.now();
    episodes_[idx - 1].complete = complete;
    open_episode_[interval] = 0;
  }
  if (callback_) callback_(p, *net_.media(p), false, media_pos);
}

std::vector<PlaceId> InteractivePlayout::active_places() const {
  std::vector<PlaceId> out;
  out.reserve(active_.size());
  for (std::uint32_t i : active_) out.push_back(trace_.intervals[i].place);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lod::core
