#include "lod/core/analysis.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace lod::core {

namespace {

struct MarkingHash {
  std::size_t operator()(const Marking& m) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (std::uint32_t v : m) {
      h ^= v;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// True if b >= a in every place and > in at least one (strict covering).
bool strictly_covers(const Marking& b, const Marking& a) {
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (b[i] < a[i]) return false;
    if (b[i] > a[i]) strict = true;
  }
  return strict;
}

}  // namespace

ReachabilityResult explore(const PetriNet& net, const Marking& initial,
                           std::size_t max_states) {
  ReachabilityResult res;
  res.fireable.assign(net.transition_count(), false);

  // The strictly-covering unboundedness witness is only sound for ordinary
  // nets: capacities and inhibitor arcs break firing monotonicity (a larger
  // marking can DISABLE a transition), so a covering marking is no longer
  // pumpable. For such nets we rely on exhaustive exploration instead.
  bool monotone = true;
  for (PlaceId p = 0; p < net.place_count() && monotone; ++p) {
    if (net.place_capacity(p) != 0) monotone = false;
  }
  for (TransitionId t = 0; t < net.transition_count() && monotone; ++t) {
    for (const auto& a : net.inputs(t)) {
      if (a.kind == ArcKind::kInhibitor) {
        monotone = false;
        break;
      }
    }
  }

  // parent chain for the covering check: index of predecessor marking.
  std::unordered_map<Marking, std::size_t, MarkingHash> seen;
  std::vector<std::size_t> parent;
  std::deque<std::size_t> frontier;

  seen.emplace(initial, 0);
  res.markings.push_back(initial);
  parent.push_back(static_cast<std::size_t>(-1));
  frontier.push_back(0);

  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    const Marking m = res.markings[cur];  // copy: vector may reallocate

    const auto enabled = net.enabled_transitions(m);
    if (enabled.empty()) res.deadlocks.push_back(m);

    for (TransitionId t : enabled) {
      res.fireable[t] = true;
      Marking next = net.fire(t, m);

      auto it = seen.find(next);
      if (it != seen.end()) continue;

      // Unboundedness witness: next strictly covers an ancestor.
      if (monotone) {
        for (std::size_t a = cur; a != static_cast<std::size_t>(-1);
             a = parent[a]) {
          if (strictly_covers(next, res.markings[a])) {
            res.unbounded = true;
            break;
          }
        }
      }

      if (res.markings.size() >= max_states) {
        res.truncated = true;
        return res;
      }
      seen.emplace(next, res.markings.size());
      res.markings.push_back(std::move(next));
      parent.push_back(cur);
      frontier.push_back(res.markings.size() - 1);
      if (res.unbounded) {
        // One witness is enough; keep exploring a little is pointless.
        return res;
      }
    }
  }
  return res;
}

std::optional<std::uint32_t> boundedness(const PetriNet& net,
                                         const Marking& initial,
                                         std::size_t max_states) {
  const auto res = explore(net, initial, max_states);
  if (res.unbounded || res.truncated) return std::nullopt;
  std::uint32_t k = 0;
  for (const Marking& m : res.markings) {
    for (std::uint32_t v : m) k = std::max(k, v);
  }
  return k;
}

bool has_unexpected_deadlock(const PetriNet& net, const Marking& initial,
                             const Marking* expected_final,
                             std::size_t max_states) {
  const auto res = explore(net, initial, max_states);
  for (const Marking& d : res.deadlocks) {
    if (expected_final && d == *expected_final) continue;
    return true;
  }
  return false;
}

std::vector<TransitionId> dead_transitions(const PetriNet& net,
                                           const Marking& initial,
                                           std::size_t max_states) {
  const auto res = explore(net, initial, max_states);
  std::vector<TransitionId> dead;
  for (TransitionId t = 0; t < res.fireable.size(); ++t) {
    if (!res.fireable[t]) dead.push_back(t);
  }
  return dead;
}

bool holds_p_invariant(const PetriNet& net, const Marking& initial,
                       const std::vector<std::int64_t>& weights,
                       std::size_t max_states) {
  if (weights.size() != net.place_count()) return false;
  const auto res = explore(net, initial, max_states);
  auto dot = [&](const Marking& m) {
    std::int64_t s = 0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      s += weights[i] * static_cast<std::int64_t>(m[i]);
    }
    return s;
  };
  const std::int64_t expected = dot(initial);
  return std::all_of(res.markings.begin(), res.markings.end(),
                     [&](const Marking& m) { return dot(m) == expected; });
}

bool is_structural_p_invariant(const PetriNet& net,
                               const std::vector<std::int64_t>& weights) {
  if (weights.size() != net.place_count()) return false;
  // For every transition, the weighted token change must be zero.
  for (TransitionId t = 0; t < net.transition_count(); ++t) {
    std::int64_t delta = 0;
    for (const auto& a : net.inputs(t)) {
      if (a.kind == ArcKind::kNormal) {
        delta -= weights[a.place] * static_cast<std::int64_t>(a.weight);
      }
    }
    for (const auto& a : net.outputs(t)) {
      delta += weights[a.place] * static_cast<std::int64_t>(a.weight);
    }
    if (delta != 0) return false;
  }
  return true;
}

std::vector<std::int64_t> marking_delta(
    const PetriNet& net, const std::vector<std::int64_t>& counts) {
  std::vector<std::int64_t> delta(net.place_count(), 0);
  const std::size_t n = std::min(counts.size(), net.transition_count());
  for (TransitionId t = 0; t < n; ++t) {
    if (counts[t] == 0) continue;
    for (const auto& a : net.inputs(t)) {
      if (a.kind == ArcKind::kNormal) {
        delta[a.place] -= counts[t] * static_cast<std::int64_t>(a.weight);
      }
    }
    for (const auto& a : net.outputs(t)) {
      delta[a.place] += counts[t] * static_cast<std::int64_t>(a.weight);
    }
  }
  return delta;
}

bool is_structural_t_invariant(const PetriNet& net,
                               const std::vector<std::int64_t>& counts) {
  if (counts.size() != net.transition_count()) return false;
  const auto delta = marking_delta(net, counts);
  return std::all_of(delta.begin(), delta.end(),
                     [](std::int64_t d) { return d == 0; });
}

}  // namespace lod::core
