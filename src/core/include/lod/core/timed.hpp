#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lod/core/petri.hpp"
#include "lod/net/rng.hpp"
#include "lod/net/time.hpp"
#include "lod/obs/trace.hpp"

/// \file timed.hpp
/// Timed Petri nets with media bindings — the OCPN substrate.
///
/// Following Little & Ghafoor's Object Composition Petri Net [4], time lives
/// on PLACES: a token deposited into a place at instant T becomes available
/// to output transitions at T + duration(place). A place may additionally be
/// bound to a media object — while its token is "cooking", that object is
/// being presented. Places may also be pinned to a SITE, which the paper's
/// extended model uses to reason about synchronization across distributed
/// platforms (tokens crossing sites pay a channel delay).

namespace lod::core {

using net::SimDuration;
using net::SimTime;

/// Identifies a rendering site (host) in a distributed presentation.
using SiteId = std::uint32_t;
inline constexpr SiteId kLocalSite = 0;

/// What a timed place presents while its token matures.
struct MediaBinding {
  std::string object_name;  ///< e.g. "video", "slide-3", "annot-1"
  std::uint8_t media_type{0};  ///< mirrors lod::media::MediaType
  /// Required channel bandwidth to present this object remotely (XOCPN's
  /// QoS annotation); 0 = no reservation needed.
  std::int64_t required_bps{0};
};

/// A Petri net whose places carry durations, optional media bindings and
/// optional site assignments.
class TimedPetriNet : public PetriNet {
 public:
  /// Add a timed place in one call.
  PlaceId add_timed_place(std::string name, SimDuration duration,
                          std::optional<MediaBinding> media = std::nullopt) {
    const PlaceId p = add_place(std::move(name));
    set_duration(p, duration);
    if (media) set_media(p, std::move(*media));
    return p;
  }

  void set_duration(PlaceId p, SimDuration d) {
    grow(p);
    durations_[p] = d;
  }
  SimDuration duration(PlaceId p) const {
    return p < durations_.size() ? durations_[p] : SimDuration{0};
  }

  void set_media(PlaceId p, MediaBinding m) {
    grow(p);
    media_[p] = std::move(m);
  }
  const std::optional<MediaBinding>& media(PlaceId p) const {
    static const std::optional<MediaBinding> kNone;
    return p < media_.size() ? media_[p] : kNone;
  }

  void set_site(PlaceId p, SiteId s) {
    grow(p);
    sites_[p] = s;
  }
  SiteId site(PlaceId p) const { return p < sites_.size() ? sites_[p] : kLocalSite; }

  /// Inter-site token transfer delay used by playout when an arc crosses
  /// sites (the distributed-platform cost OCPN cannot express).
  void set_transfer_delay(SimDuration d) { transfer_delay_ = d; }
  SimDuration transfer_delay() const { return transfer_delay_; }

 private:
  void grow(PlaceId p) {
    if (durations_.size() <= p) durations_.resize(p + 1, SimDuration{0});
    if (media_.size() <= p) media_.resize(p + 1);
    if (sites_.size() <= p) sites_.resize(p + 1, kLocalSite);
  }

  std::vector<SimDuration> durations_;
  std::vector<std::optional<MediaBinding>> media_;
  std::vector<SiteId> sites_;
  SimDuration transfer_delay_{0};
};

/// One presented interval in a playout: place p held a maturing token during
/// [start, end) in presentation (media) time.
struct PlaceInterval {
  PlaceId place;
  SimDuration start;
  SimDuration end;
};

/// One transition firing.
struct FiringRecord {
  TransitionId transition;
  SimDuration at;
};

/// The full result of playing a timed net to quiescence.
struct PlayoutTrace {
  std::vector<PlaceInterval> intervals;
  std::vector<FiringRecord> firings;
  SimDuration makespan{};
  /// True if the run hit the step limit instead of quiescing.
  bool truncated{false};

  /// First interval for the place bound to \p object_name, if any.
  std::optional<PlaceInterval> interval_of(const TimedPetriNet& net,
                                           std::string_view object_name) const;
};

/// Deterministic earliest-firing playout of a timed net.
///
/// Semantics: a transition fires the instant all its (normal) input places
/// hold enough *mature* tokens and no inhibitor input holds any token
/// (mature or cooking). Ties fire highest-priority first (see
/// PetriNet::set_priority), then ascending transition id. When an output
/// place sits on a different site than the transition's "home" (the max
/// site among its input places), the token additionally pays the net's
/// transfer delay before it starts cooking.
PlayoutTrace play(const TimedPetriNet& net, const Marking& initial,
                  std::size_t max_steps = 1'000'000);

/// Observability hooks for playout. Both members are optional; a
/// default-constructed PlayObs is exactly the un-instrumented engine (the
/// null counter and null sink reduce to one predictable branch per firing —
/// bench_obs_overhead holds this under 2%).
struct PlayObs {
  /// Emits a kTransitionFire event per firing (actor = transition id,
  /// a = firing instant in presentation microseconds). Honors
  /// `TraceSink::enabled()`; nullptr disables entirely.
  obs::TraceSink* trace{nullptr};
  /// Incremented once per firing (e.g. `lod.petri.transitions_fired`).
  obs::Counter fired;
  /// Journals a kSimEvent per firing into the dispatch lane (actor =
  /// transition id, a = firing instant). Always-on path — its cost is part
  /// of bench_obs_overhead's recorder-enabled measurement.
  obs::FlightRecorder* flight{nullptr};
};

/// Instrumented playout: identical semantics to `play`, publishing into
/// \p obs as it goes.
PlayoutTrace play(const TimedPetriNet& net, const Marking& initial,
                  std::size_t max_steps, const PlayObs& obs);

/// Stochastic playout — the stochastic-Petri-net member of the family the
/// paper surveys (§1). Each token's maturation time is sampled per visit:
/// nominal place duration scaled by U[1-spread, 1+spread] (zero-duration
/// places stay instantaneous). Use it to stress-test a compiled schedule's
/// robustness: how much do object start times move when rendering and
/// decoding times wobble?
PlayoutTrace play_stochastic(const TimedPetriNet& net, const Marking& initial,
                             net::Rng& rng, double spread = 0.2,
                             std::size_t max_steps = 1'000'000);

}  // namespace lod::core
