#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lod/core/petri.hpp"

/// \file analysis.hpp
/// Structural and behavioural analysis of Petri nets.
///
/// The paper leans on the Petri net literature (Murata [1], Peterson [2]) for
/// "both practice and theory": a synchronization model is only trustworthy if
/// its net is bounded (buffers cannot blow up), deadlock-free along intended
/// runs, and free of dead transitions (every media object can actually be
/// presented). These checks run in tests over every net the builders emit.

namespace lod::core {

/// Result of exploring the reachability set from an initial marking.
struct ReachabilityResult {
  /// All distinct markings found (bounded exploration).
  std::vector<Marking> markings;
  /// True if exploration was cut off by the state limit.
  bool truncated{false};
  /// True if a strictly-covering marking was found on a path — the classic
  /// witness that the net is UNbounded.
  bool unbounded{false};
  /// Reachable markings in which no transition is enabled.
  std::vector<Marking> deadlocks;
  /// transition -> fired at least once somewhere in the explored graph.
  std::vector<bool> fireable;
};

/// Explore reachable markings by BFS.
/// \param max_states  exploration cap; `truncated` reports if it was hit.
ReachabilityResult explore(const PetriNet& net, const Marking& initial,
                           std::size_t max_states = 100'000);

/// Is the net k-bounded from \p initial? Returns the smallest bound found,
/// or nullopt if the net is unbounded / exploration truncated.
std::optional<std::uint32_t> boundedness(const PetriNet& net,
                                         const Marking& initial,
                                         std::size_t max_states = 100'000);

/// Does some reachable marking deadlock (no transition enabled)?
/// Note: for presentation nets the FINAL marking is an intended deadlock;
/// callers pass it via \p expected_final so it is not reported.
bool has_unexpected_deadlock(const PetriNet& net, const Marking& initial,
                             const Marking* expected_final = nullptr,
                             std::size_t max_states = 100'000);

/// Transitions that can never fire from \p initial (dead transitions, L0).
std::vector<TransitionId> dead_transitions(const PetriNet& net,
                                           const Marking& initial,
                                           std::size_t max_states = 100'000);

/// Verify a P-invariant: weights . marking is constant over the reachability
/// set. \p weights has one entry per place.
bool holds_p_invariant(const PetriNet& net, const Marking& initial,
                       const std::vector<std::int64_t>& weights,
                       std::size_t max_states = 100'000);

/// Check a structural P-invariant candidate against the incidence matrix
/// (weights^T * C == 0); does not require exploration.
bool is_structural_p_invariant(const PetriNet& net,
                               const std::vector<std::int64_t>& weights);

/// Check a T-invariant candidate: firing each transition x[t] times returns
/// the net to its starting marking (C * x == 0). One entry per transition.
/// T-invariants certify reproducible presentation cycles (e.g. a looping
/// kiosk playout, or the floor acquire/release cycle).
bool is_structural_t_invariant(const PetriNet& net,
                               const std::vector<std::int64_t>& counts);

/// Compute the marking change of firing each transition `counts[t]` times
/// (C * x); zero everywhere iff `counts` is a T-invariant.
std::vector<std::int64_t> marking_delta(const PetriNet& net,
                                        const std::vector<std::int64_t>& counts);

}  // namespace lod::core
