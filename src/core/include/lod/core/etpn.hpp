#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "lod/core/timed.hpp"
#include "lod/net/simulator.hpp"

/// \file etpn.hpp
/// The paper's extended timed Petri net: interactive playout.
///
/// §1: OCPN/XOCPN "do not deal with the schedule change caused by user
/// interactions in interactive multimedia systems". The extension modeled
/// here treats user interactions as external control transitions that rewrite
/// the timing state of every in-flight token:
///
///   - pause   — freeze all maturing tokens (remaining durations preserved),
///   - resume  — continue from the frozen state,
///   - seek    — rewrite the marking to what it would have been at the target
///               presentation instant,
///   - rate    — scale all remaining durations (fast/slow motion).
///
/// Implementation: the net's deterministic schedule is computed once with
/// play() (presentation/media time); the engine then maintains the piecewise
/// affine wall-clock <-> media-clock map those control transitions induce and
/// drives callbacks through the discrete-event simulator. This is equivalent
/// to token-level rewriting for the deterministic nets the builders emit, and
/// it is what an actual renderer needs: *when, on the wall clock, does each
/// media object start and stop*.

namespace lod::core {

/// An interactive, wall-clock playout of a timed Petri net.
class InteractivePlayout {
 public:
  /// Fired when a media-bound place starts or stops presenting.
  /// \p media_pos is the presentation-time position of the event.
  using MediaCallback = std::function<void(PlaceId, const MediaBinding&,
                                           bool started, SimDuration media_pos)>;

  /// A media presentation episode in wall time. `complete` is false when the
  /// episode was cut short (seek away, or still open at inspection time).
  struct WallEpisode {
    PlaceId place{};
    SimDuration media_start{};  ///< media position when rendering began
    SimTime wall_start{};
    SimTime wall_end{};
    bool complete{false};
  };

  /// One user interaction, for audit/benches.
  struct Interaction {
    enum class Kind : std::uint8_t { kStart, kPause, kResume, kSeek, kRate };
    Kind kind;
    SimTime wall;
    SimDuration media;
    double rate;
  };

  InteractivePlayout(net::Simulator& sim, const TimedPetriNet& net,
                     const Marking& initial);
  ~InteractivePlayout();
  InteractivePlayout(const InteractivePlayout&) = delete;
  InteractivePlayout& operator=(const InteractivePlayout&) = delete;

  void on_media(MediaCallback cb) { callback_ = std::move(cb); }

  /// Begin playout at the simulator's current instant. No-op if started.
  void start();

  /// Freeze. No-op when already paused or not started.
  void pause();
  /// Continue after pause. No-op unless paused.
  void resume();
  /// Jump to presentation position \p media_t (clamped to [0, makespan]).
  /// Active objects not active at the target stop; newly active ones start.
  /// Works both paused and playing.
  void seek(SimDuration media_t);
  /// Playback speed; must be > 0. 2.0 = double speed.
  void set_rate(double rate);

  bool started() const { return started_; }
  bool paused() const { return paused_; }
  bool finished() const { return finished_; }
  double rate() const { return rate_; }

  /// Current presentation position.
  SimDuration media_now() const;
  /// Total presentation length per the static schedule.
  SimDuration makespan() const { return trace_.makespan; }

  /// The precomputed media-time schedule.
  const PlayoutTrace& schedule() const { return trace_; }
  /// Everything rendered so far, in wall time.
  const std::vector<WallEpisode>& episodes() const { return episodes_; }
  const std::vector<Interaction>& interactions() const { return interactions_; }

  /// Places presenting at the current instant.
  std::vector<PlaceId> active_places() const;

 private:
  struct Event {
    SimDuration at;      // media time
    std::uint32_t interval;  // index into trace_.intervals (media-bound only)
    bool is_start;
  };

  void build_events();
  void cancel_timer();
  void arm_timer();
  void fire_due_events();
  void emit_start(std::uint32_t interval, SimDuration media_pos);
  void emit_end(std::uint32_t interval, SimDuration media_pos, bool complete);
  void log(Interaction::Kind k);

  net::Simulator& sim_;
  const TimedPetriNet& net_;
  PlayoutTrace trace_;
  std::vector<Event> events_;
  std::size_t cursor_{0};

  bool started_{false};
  bool paused_{false};
  bool finished_{false};
  double rate_{1.0};
  SimTime anchor_wall_{};
  SimDuration anchor_media_{};

  std::optional<net::EventId> timer_;
  MediaCallback callback_;
  std::unordered_set<std::uint32_t> active_;  // interval indices now rendering
  std::vector<std::uint32_t> open_episode_;   // interval -> episodes_ index+1
  std::vector<WallEpisode> episodes_;
  std::vector<Interaction> interactions_;
};

}  // namespace lod::core
