#pragma once

#include <string>
#include <string_view>

#include "lod/core/ocpn.hpp"

/// \file speclang.hpp
/// The presentation specification language.
///
/// The paper's related-work section surveys authoring systems whose
/// presentations are wired together "by a script language supporting
/// functions, data, structure, and commands" (Authorware, Multimedia
/// Viewer, ToolBook...). This is our equivalent: a small declarative text
/// format that a presentation designer writes and the system compiles to a
/// temporal specification (and from there to an OCPN / the extended net).
///
/// Grammar (whitespace-insensitive; `#` comments to end of line):
///
///   spec     := object | combo
///   object   := TYPE NAME '(' DURATION [',' RATE] ')'
///   combo    := 'seq'      '{' spec (spec | gap)* '}'        — meets/before
///             | 'par'      '{' spec spec '}'                 — starts
///             | 'equals'   '{' spec spec '}'
///             | 'finishes' '{' spec spec '}'
///             | 'during'   '(' DURATION ')' '{' spec spec '}'  — b inside a
///             | 'overlaps' '(' DURATION ')' '{' spec spec '}'  — b lags a
///   gap      := 'gap' '(' DURATION ')'
///   TYPE     := 'video' | 'audio' | 'image' | 'text' | 'annotation'
///   NAME     := [A-Za-z_][A-Za-z0-9_.-]*
///   DURATION := number ('ms' | 's' | 'm' | 'h')   e.g. 90s, 1.5m, 250ms
///   RATE     := number 'kbps'                     required channel rate
///
/// `seq` folds its children left-to-right with `meets` (or `before` when a
/// gap() separates them); `par` folds with `starts`. Example:
///
///   seq {
///     video intro (30s, 250kbps)
///     gap (2s)
///     par {
///       video talk (10m, 250kbps)
///       seq { image s1 (4m)  image s2 (6m) }
///     }
///   }

namespace lod::core {

/// Parse error with 1-based line/column of the offending token.
class SpecParseError : public std::runtime_error {
 public:
  SpecParseError(std::string message, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Parse a specification text. Throws SpecParseError on malformed input and
/// std::invalid_argument when the temporal constraints are unsatisfiable
/// (e.g. `equals` over different durations).
TemporalSpec parse_spec(std::string_view text);

/// Render a specification back to canonical text (round-trips through
/// parse_spec up to formatting).
std::string format_spec(const TemporalSpec& spec, int indent = 0);

}  // namespace lod::core
