#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file petri.hpp
/// The place/transition Petri net kernel.
///
/// "The concept of our model is based on the Petri net" (§1). Everything the
/// paper layers on — timed places (OCPN), communication channels (XOCPN) and
/// its own extended timed net — shares this kernel: places, transitions,
/// weighted arcs (plus inhibitor arcs, needed for floor-control arbitration),
/// markings, the enabling rule and the firing rule.
///
/// The kernel is deliberately untimed and deterministic; timing semantics
/// live in timed.hpp, and analysis (reachability, boundedness, liveness)
/// in analysis.hpp.

namespace lod::core {

using PlaceId = std::uint32_t;
using TransitionId = std::uint32_t;

/// Arc polarity. An inhibitor arc enables its transition only when the source
/// place is EMPTY (strictly: holds fewer tokens than the arc weight).
enum class ArcKind : std::uint8_t { kNormal, kInhibitor };

/// A marking: tokens per place, indexed by PlaceId.
using Marking = std::vector<std::uint32_t>;

/// A plain place/transition net. Structure is append-only: places,
/// transitions and arcs can be added but not removed, which keeps ids stable
/// for every layer built on top.
class PetriNet {
 public:
  /// Add a place. \p capacity bounds tokens (0 = unbounded); firing a
  /// transition that would overflow a bounded place is disabled.
  PlaceId add_place(std::string name, std::uint32_t capacity = 0);

  /// Add a transition.
  TransitionId add_transition(std::string name);

  /// Arc place -> transition (input arc). Inhibitor arcs are input-only.
  void add_input(PlaceId p, TransitionId t, std::uint32_t weight = 1,
                 ArcKind kind = ArcKind::kNormal);
  /// Arc transition -> place (output arc).
  void add_output(TransitionId t, PlaceId p, std::uint32_t weight = 1);

  std::size_t place_count() const { return places_.size(); }
  std::size_t transition_count() const { return transitions_.size(); }
  const std::string& place_name(PlaceId p) const { return places_.at(p).name; }
  const std::string& transition_name(TransitionId t) const {
    return transitions_.at(t).name;
  }
  std::uint32_t place_capacity(PlaceId p) const {
    return places_.at(p).capacity;
  }

  /// Look up by name (first match); nullopt if absent.
  std::optional<PlaceId> find_place(std::string_view name) const;
  std::optional<TransitionId> find_transition(std::string_view name) const;

  /// Transition priority, after the prioritized Petri nets of Guan et al.
  /// [13] that the paper cites for distributed multimedia: among enabled
  /// transitions in conflict, HIGHER priority fires first (ties: lower id).
  /// Default priority is 0; priorities only order conflicts — they never
  /// enable or disable anything.
  void set_priority(TransitionId t, std::int32_t priority);
  std::int32_t priority(TransitionId t) const {
    return transitions_.at(t).priority;
  }

  /// The enabled transitions that are maximal under the priority order —
  /// i.e. the ones a prioritized firing rule allows to fire in \p m.
  std::vector<TransitionId> prioritized_enabled(const Marking& m) const;

  /// An all-zero marking of the right size.
  Marking empty_marking() const { return Marking(places_.size(), 0); }

  /// Is \p t enabled in \p m? (Input tokens present, inhibitors empty,
  /// output capacities not exceeded.)
  bool enabled(TransitionId t, const Marking& m) const;

  /// All transitions enabled in \p m, in id order.
  std::vector<TransitionId> enabled_transitions(const Marking& m) const;

  /// Fire \p t in \p m, producing the successor marking.
  /// \pre enabled(t, m) — checked; throws std::logic_error otherwise.
  Marking fire(TransitionId t, const Marking& m) const;

  /// Fire in place (faster for long runs). Same precondition.
  void fire_in_place(TransitionId t, Marking& m) const;

  struct Arc {
    PlaceId place;
    std::uint32_t weight;
    ArcKind kind;
  };
  /// Input arcs of a transition (place -> t).
  const std::vector<Arc>& inputs(TransitionId t) const {
    return transitions_.at(t).inputs;
  }
  /// Output arcs of a transition (t -> place).
  const std::vector<Arc>& outputs(TransitionId t) const {
    return transitions_.at(t).outputs;
  }
  /// Transitions consuming from place \p p (useful for schedulers).
  const std::vector<TransitionId>& consumers(PlaceId p) const {
    return places_.at(p).consumers;
  }
  const std::vector<TransitionId>& producers(PlaceId p) const {
    return places_.at(p).producers;
  }

  /// Render the net structure as a GraphViz dot string (debugging aid).
  std::string to_dot(const Marking* marking = nullptr) const;

  /// Stable 64-bit digest of the net STRUCTURE — places (name, capacity),
  /// transitions (name, priority) and arcs (endpoints, weights, kinds) — and
  /// nothing about any marking. Two sites replicating markings over the
  /// network (src/sync) guard with this that they are running the same net
  /// before applying a foreign marking: a marking is meaningless against a
  /// different structure.
  std::uint64_t structure_hash() const;

 private:
  struct PlaceRec {
    std::string name;
    std::uint32_t capacity;
    std::vector<TransitionId> consumers;
    std::vector<TransitionId> producers;
  };
  struct TransitionRec {
    std::string name;
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
    std::int32_t priority{0};
  };

  std::vector<PlaceRec> places_;
  std::vector<TransitionRec> transitions_;
};

}  // namespace lod::core
