#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/core/timed.hpp"

/// \file ocpn.hpp
/// Object Composition Petri Nets from temporal specifications.
///
/// OCPN [4] is "a comprehensive model for specifying timing relations among
/// multimedia data": any multimedia presentation can be written as a tree of
/// the 13 Allen interval relations (7 canonical forms + inverses) over media
/// objects, and compiled into a timed Petri net whose playout realizes
/// exactly those intervals. This header provides the specification tree and
/// the compiler. The XOCPN and extended-timed-net layers decorate the result
/// rather than rebuilding it.

namespace lod::core {

/// The seven canonical Allen relations (inverses are expressed by swapping
/// operands). `kBefore` takes an explicit gap; `kOverlaps`, `kDuring` and
/// `kFinishes` take/derive a lead offset for the second operand.
enum class Relation : std::uint8_t {
  kBefore,    ///< a then gap then b
  kMeets,     ///< a then b, no gap
  kOverlaps,  ///< b starts `offset` after a starts, while a is active
  kDuring,    ///< b runs inside a, starting `offset` after a
  kStarts,    ///< a and b start together
  kFinishes,  ///< a and b end together
  kEquals,    ///< a and b start together (and should end together)
};

std::string to_string(Relation r);

/// A temporal specification: a leaf media object or a relation over two
/// sub-specifications. Immutable once built; cheap to share.
class TemporalSpec {
 public:
  /// Leaf: one media object presented for \p duration.
  static TemporalSpec object(std::string name, std::uint8_t media_type,
                             SimDuration duration,
                             std::int64_t required_bps = 0);

  /// Node: relation over two sub-specs. \p param is the gap (kBefore) or the
  /// start offset of b (kOverlaps / kDuring); ignored for the others.
  static TemporalSpec relate(Relation r, TemporalSpec a, TemporalSpec b,
                             SimDuration param = {});

  bool is_leaf() const { return node_ == nullptr; }
  /// Total presentation duration of this (sub)spec.
  SimDuration duration() const;

  // Leaf accessors (valid only when is_leaf()).
  const std::string& name() const { return leaf_.object_name; }
  const MediaBinding& binding() const { return leaf_; }

  // Node accessors (valid only when !is_leaf()); defined after Node below.
  Relation relation() const;
  const TemporalSpec& lhs() const;
  const TemporalSpec& rhs() const;
  SimDuration param() const;

  /// Expected interval of every leaf object, per the definition of the
  /// relations (independent of any Petri net) — the oracle tests and benches
  /// validate playout against.
  std::unordered_map<std::string, PlaceInterval> expected_intervals() const;

  /// Count of leaf objects.
  std::size_t object_count() const;

 private:
  struct Node;  // defined after the class: it holds TemporalSpec members

  TemporalSpec() = default;

  MediaBinding leaf_{};
  SimDuration leaf_duration_{};
  std::shared_ptr<const Node> node_;

  void collect(SimDuration origin,
               std::unordered_map<std::string, PlaceInterval>& out) const;
  /// Start offsets of the two children relative to this node's origin.
  std::pair<SimDuration, SimDuration> child_offsets() const;
};

struct TemporalSpec::Node {
  Relation rel;
  TemporalSpec a;
  TemporalSpec b;
  SimDuration param;
};

inline Relation TemporalSpec::relation() const { return node_->rel; }
inline const TemporalSpec& TemporalSpec::lhs() const { return node_->a; }
inline const TemporalSpec& TemporalSpec::rhs() const { return node_->b; }
inline SimDuration TemporalSpec::param() const { return node_->param; }

/// A compiled OCPN: the timed net plus its entry/exit interface.
struct CompiledOcpn {
  TimedPetriNet net;
  /// Put one token here and play() to run the presentation.
  PlaceId source{0};
  /// Holds exactly one token when the presentation has completed.
  PlaceId sink{0};
  /// Leaf object name -> the timed place presenting it.
  std::unordered_map<std::string, PlaceId> object_place;

  Marking initial_marking() const {
    Marking m(net.place_count(), 0);
    m[source] = 1;
    return m;
  }
};

/// Compile a temporal specification to an OCPN.
CompiledOcpn build_ocpn(const TemporalSpec& spec);

}  // namespace lod::core
