#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/core/ocpn.hpp"

/// \file xocpn.hpp
/// The XOCPN decoration: resource channels for distributed presentation.
///
/// Woo, Qazi & Ghafoor's extended OCPN [5] "can specify temporal
/// relationships for the presentation of pre-orchestrated multimedia data,
/// and ... set up channels according to the required QoS of the data". We
/// reproduce that as a decoration over a compiled OCPN:
///
///  1. media places are assigned to sites (which renderer shows them) and
///     annotated with their required bandwidth, and
///  2. a channel schedule is derived from the net's own playout: each remote
///     object's channel must be reserved `setup_lead` before the object
///     starts and may be released when it ends.
///
/// The streaming layer executes this schedule against the simulated
/// network's admission control; the benches then compare OCPN (no
/// reservations, best effort) against XOCPN (reserved channels).

namespace lod::core {

/// Per-object placement and bandwidth requirement.
struct ObjectPlacement {
  SiteId site{kLocalSite};
  std::int64_t required_bps{0};
};

/// One channel the presentation needs, with its reserve/release instants in
/// presentation time.
struct ChannelRequirement {
  std::string object;
  PlaceId place{};
  SiteId site{kLocalSite};
  std::int64_t rate_bps{0};
  SimDuration reserve_at{};  ///< presentation time to reserve by
  SimDuration release_at{};  ///< presentation time the channel can drop
};

/// The full channel schedule, ordered by reserve_at.
struct ChannelSchedule {
  std::vector<ChannelRequirement> channels;
  /// Peak simultaneous reserved bandwidth (for capacity planning).
  std::int64_t peak_bps{0};
};

/// Apply placements to a compiled OCPN: sets each media place's site and
/// required bandwidth. Objects absent from \p placement stay local.
void apply_placement(
    CompiledOcpn& ocpn,
    const std::unordered_map<std::string, ObjectPlacement>& placement);

/// Derive the channel schedule from the (annotated) net's deterministic
/// playout. Only objects with site != kLocalSite and required_bps > 0 get
/// channels. \p setup_lead is how far ahead of first use the channel must be
/// up (clamped at presentation time 0).
ChannelSchedule derive_channel_schedule(const CompiledOcpn& ocpn,
                                        SimDuration setup_lead);

}  // namespace lod::core
