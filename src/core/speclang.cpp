#include "lod/core/speclang.hpp"

#include <cctype>
#include <cmath>
#include <sstream>
#include <vector>

namespace lod::core {

SpecParseError::SpecParseError(std::string message, int line, int column)
    : std::runtime_error(message + " (line " + std::to_string(line) +
                         ", column " + std::to_string(column) + ")"),
      line_(line),
      column_(column) {}

namespace {

/// TYPE keyword <-> media-type code (mirrors lod::media::MediaType).
constexpr std::pair<const char*, std::uint8_t> kTypes[] = {
    {"video", 0}, {"audio", 1}, {"image", 2}, {"text", 3}, {"annotation", 4}};

const char* type_name(std::uint8_t code) {
  for (const auto& [name, c] : kTypes) {
    if (c == code) return name;
  }
  return "video";
}

struct Token {
  enum class Kind { kIdent, kNumber, kLBrace, kRBrace, kLParen, kRParen,
                    kComma, kEnd };
  Kind kind{Kind::kEnd};
  std::string text;   // ident text
  double number{0};   // number value
  std::string suffix; // unit letters glued to a number ("s", "ms", "kbps")
  int line{1};
  int column{1};
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }
  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_ws_and_comments();
    current_ = Token{};
    current_.line = line_;
    current_.column = column_;
    if (pos_ >= text_.size()) {
      current_.kind = Token::Kind::kEnd;
      return;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': current_.kind = Token::Kind::kLBrace; bump(); return;
      case '}': current_.kind = Token::Kind::kRBrace; bump(); return;
      case '(': current_.kind = Token::Kind::kLParen; bump(); return;
      case ')': current_.kind = Token::Kind::kRParen; bump(); return;
      case ',': current_.kind = Token::Kind::kComma; bump(); return;
      default: break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      std::string num;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        num.push_back(text_[pos_]);
        bump();
      }
      std::string suffix;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        suffix.push_back(text_[pos_]);
        bump();
      }
      current_.kind = Token::Kind::kNumber;
      current_.number = std::stod(num);
      current_.suffix = std::move(suffix);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string id;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == '-')) {
        id.push_back(text_[pos_]);
        bump();
      }
      current_.kind = Token::Kind::kIdent;
      current_.text = std::move(id);
      return;
    }
    throw SpecParseError(std::string("unexpected character '") + c + "'",
                         line_, column_);
  }

  void skip_ws_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') bump();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        bump();
      } else {
        break;
      }
    }
  }

  void bump() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_{0};
  int line_{1};
  int column_{1};
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  TemporalSpec parse() {
    TemporalSpec s = parse_spec();
    expect_end();
    return s;
  }

 private:
  [[noreturn]] void fail(const std::string& msg, const Token& at) {
    throw SpecParseError(msg, at.line, at.column);
  }

  Token expect(Token::Kind kind, const char* what) {
    Token t = lex_.take();
    if (t.kind != kind) fail(std::string("expected ") + what, t);
    return t;
  }

  void expect_end() {
    const Token& t = lex_.peek();
    if (t.kind != Token::Kind::kEnd) {
      fail("trailing input after specification", t);
    }
  }

  net::SimDuration parse_duration() {
    Token t = expect(Token::Kind::kNumber, "a duration like 30s");
    double us;
    if (t.suffix == "ms") us = t.number * 1e3;
    else if (t.suffix == "s") us = t.number * 1e6;
    else if (t.suffix == "m") us = t.number * 60e6;
    else if (t.suffix == "h") us = t.number * 3600e6;
    else fail("duration needs a unit: ms, s, m or h", t);
    return net::SimDuration{static_cast<std::int64_t>(std::llround(us))};
  }

  TemporalSpec parse_spec() {
    const Token t = lex_.peek();
    if (t.kind != Token::Kind::kIdent) fail("expected a specification", t);

    // Leaf object?
    for (const auto& [name, code] : kTypes) {
      if (t.text == name) return parse_object(code);
    }
    if (t.text == "seq") return parse_seq();
    if (t.text == "par") return parse_binary(Relation::kStarts, false);
    if (t.text == "equals") return parse_binary(Relation::kEquals, false);
    if (t.text == "finishes") return parse_binary(Relation::kFinishes, false);
    if (t.text == "during") return parse_binary(Relation::kDuring, true);
    if (t.text == "overlaps") return parse_binary(Relation::kOverlaps, true);
    fail("unknown keyword '" + t.text + "'", t);
  }

  TemporalSpec parse_object(std::uint8_t type_code) {
    lex_.take();  // TYPE keyword
    const Token name = expect(Token::Kind::kIdent, "an object name");
    expect(Token::Kind::kLParen, "'('");
    const net::SimDuration d = parse_duration();
    std::int64_t rate_bps = 0;
    if (lex_.peek().kind == Token::Kind::kComma) {
      lex_.take();
      Token r = expect(Token::Kind::kNumber, "a rate like 250kbps");
      if (r.suffix != "kbps") fail("rate needs the kbps unit", r);
      rate_bps = static_cast<std::int64_t>(std::llround(r.number * 1000.0));
    }
    expect(Token::Kind::kRParen, "')'");
    return TemporalSpec::object(name.text, type_code, d, rate_bps);
  }

  TemporalSpec parse_seq() {
    const Token kw = lex_.take();  // 'seq'
    expect(Token::Kind::kLBrace, "'{'");
    std::vector<TemporalSpec> items;
    std::vector<net::SimDuration> gap_before;  // gap preceding item i (i>=1)
    net::SimDuration pending_gap{};
    bool saw_gap = false;
    while (lex_.peek().kind != Token::Kind::kRBrace) {
      const Token t = lex_.peek();
      if (t.kind == Token::Kind::kIdent && t.text == "gap") {
        lex_.take();
        expect(Token::Kind::kLParen, "'('");
        pending_gap += parse_duration();
        saw_gap = true;
        expect(Token::Kind::kRParen, "')'");
        if (items.empty()) fail("gap() cannot open a seq block", t);
        continue;
      }
      TemporalSpec item = parse_spec();
      if (!items.empty()) gap_before.push_back(pending_gap);
      if (items.empty() && saw_gap) fail("gap() cannot open a seq block", t);
      pending_gap = {};
      saw_gap = false;
      items.push_back(std::move(item));
    }
    lex_.take();  // '}'
    if (saw_gap) {
      fail("gap() cannot close a seq block", kw);
    }
    if (items.empty()) fail("seq block needs at least one item", kw);
    TemporalSpec out = std::move(items[0]);
    for (std::size_t i = 1; i < items.size(); ++i) {
      const net::SimDuration g = gap_before[i - 1];
      out = g.us > 0 ? TemporalSpec::relate(Relation::kBefore, std::move(out),
                                            std::move(items[i]), g)
                     : TemporalSpec::relate(Relation::kMeets, std::move(out),
                                            std::move(items[i]));
    }
    return out;
  }

  TemporalSpec parse_binary(Relation rel, bool takes_param) {
    const Token kw = lex_.take();  // keyword
    net::SimDuration param{};
    if (takes_param) {
      expect(Token::Kind::kLParen, "'('");
      param = parse_duration();
      expect(Token::Kind::kRParen, "')'");
    }
    expect(Token::Kind::kLBrace, "'{'");
    TemporalSpec a = parse_spec();
    TemporalSpec b = parse_spec();
    const Token close = lex_.take();
    if (close.kind != Token::Kind::kRBrace) {
      fail(std::string(to_string(rel)) + " block takes exactly two items",
           close);
    }
    (void)kw;
    return TemporalSpec::relate(rel, std::move(a), std::move(b), param);
  }

  Lexer lex_;
};

std::string duration_text(net::SimDuration d) {
  std::ostringstream os;
  if (d.us % 1'000'000 == 0) os << d.us / 1'000'000 << "s";
  else if (d.us % 1000 == 0) os << d.us / 1000 << "ms";
  else os << d.us << "ms";  // sub-ms rounds for display; parse re-reads ms
  return os.str();
}

void format_rec(const TemporalSpec& s, std::ostringstream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (s.is_leaf()) {
    os << pad << type_name(s.binding().media_type) << " " << s.name() << " ("
       << duration_text(s.duration());
    if (s.binding().required_bps > 0) {
      os << ", " << s.binding().required_bps / 1000 << "kbps";
    }
    os << ")\n";
    return;
  }
  switch (s.relation()) {
    case Relation::kMeets:
    case Relation::kBefore: {
      // Flatten left-nested meets/before chains into one seq block.
      os << pad << "seq {\n";
      std::vector<const TemporalSpec*> chain;
      std::vector<net::SimDuration> gaps;
      const TemporalSpec* cur = &s;
      while (!cur->is_leaf() && (cur->relation() == Relation::kMeets ||
                                 cur->relation() == Relation::kBefore)) {
        chain.push_back(&cur->rhs());
        gaps.push_back(cur->relation() == Relation::kBefore
                           ? cur->param()
                           : net::SimDuration{});
        cur = &cur->lhs();
      }
      format_rec(*cur, os, indent + 1);
      for (std::size_t i = chain.size(); i-- > 0;) {
        if (gaps[i].us > 0) {
          os << pad << "  gap (" << duration_text(gaps[i]) << ")\n";
        }
        format_rec(*chain[i], os, indent + 1);
      }
      os << pad << "}\n";
      return;
    }
    case Relation::kStarts:
      os << pad << "par {\n";
      break;
    case Relation::kEquals:
      os << pad << "equals {\n";
      break;
    case Relation::kFinishes:
      os << pad << "finishes {\n";
      break;
    case Relation::kDuring:
      os << pad << "during (" << duration_text(s.param()) << ") {\n";
      break;
    case Relation::kOverlaps:
      os << pad << "overlaps (" << duration_text(s.param()) << ") {\n";
      break;
    default:
      break;
  }
  format_rec(s.lhs(), os, indent + 1);
  format_rec(s.rhs(), os, indent + 1);
  os << pad << "}\n";
}

}  // namespace

TemporalSpec parse_spec(std::string_view text) {
  Parser p(text);
  return p.parse();
}

std::string format_spec(const TemporalSpec& spec, int indent) {
  std::ostringstream os;
  format_rec(spec, os, indent);
  return os.str();
}

}  // namespace lod::core
