#include "lod/core/ocpn.hpp"

#include <algorithm>
#include <stdexcept>

namespace lod::core {

std::string to_string(Relation r) {
  switch (r) {
    case Relation::kBefore: return "before";
    case Relation::kMeets: return "meets";
    case Relation::kOverlaps: return "overlaps";
    case Relation::kDuring: return "during";
    case Relation::kStarts: return "starts";
    case Relation::kFinishes: return "finishes";
    case Relation::kEquals: return "equals";
  }
  return "?";
}

TemporalSpec TemporalSpec::object(std::string name, std::uint8_t media_type,
                                  SimDuration duration,
                                  std::int64_t required_bps) {
  TemporalSpec s;
  s.leaf_.object_name = std::move(name);
  s.leaf_.media_type = media_type;
  s.leaf_.required_bps = required_bps;
  s.leaf_duration_ = duration;
  return s;
}

TemporalSpec TemporalSpec::relate(Relation r, TemporalSpec a, TemporalSpec b,
                                  SimDuration param) {
  // Validate relation-specific constraints eagerly: a spec that cannot be
  // realized should fail at construction, not at playout.
  const SimDuration da = a.duration();
  const SimDuration db = b.duration();
  switch (r) {
    case Relation::kBefore:
      if (param.us < 0) throw std::invalid_argument("before: negative gap");
      break;
    case Relation::kMeets:
      param = {};
      break;
    case Relation::kOverlaps:
      if (param.us <= 0 || param >= da) {
        throw std::invalid_argument("overlaps: offset must fall inside a");
      }
      if (param + db <= da) {
        throw std::invalid_argument("overlaps: b must outlast a");
      }
      break;
    case Relation::kDuring:
      if (param.us < 0 || param + db > da) {
        throw std::invalid_argument("during: b must fit inside a");
      }
      break;
    case Relation::kStarts:
      param = {};
      break;
    case Relation::kFinishes:
      if (db > da) throw std::invalid_argument("finishes: b longer than a");
      param = da - db;
      break;
    case Relation::kEquals:
      if (da != db) throw std::invalid_argument("equals: durations differ");
      param = {};
      break;
  }
  TemporalSpec s;
  s.node_ = std::make_shared<Node>(Node{r, std::move(a), std::move(b), param});
  return s;
}

SimDuration TemporalSpec::duration() const {
  if (is_leaf()) return leaf_duration_;
  const SimDuration da = node_->a.duration();
  const SimDuration db = node_->b.duration();
  switch (node_->rel) {
    case Relation::kBefore:
      return da + node_->param + db;
    case Relation::kMeets:
      return da + db;
    case Relation::kOverlaps:
    case Relation::kDuring:
      return std::max(da, node_->param + db);
    case Relation::kStarts:
    case Relation::kEquals:
      return std::max(da, db);
    case Relation::kFinishes:
      return da;  // param = da - db by construction
  }
  return da;
}

std::pair<SimDuration, SimDuration> TemporalSpec::child_offsets() const {
  switch (node_->rel) {
    case Relation::kBefore:
      return {SimDuration{0}, node_->a.duration() + node_->param};
    case Relation::kMeets:
      return {SimDuration{0}, node_->a.duration()};
    case Relation::kOverlaps:
    case Relation::kDuring:
    case Relation::kFinishes:
      return {SimDuration{0}, node_->param};
    case Relation::kStarts:
    case Relation::kEquals:
      return {SimDuration{0}, SimDuration{0}};
  }
  return {SimDuration{0}, SimDuration{0}};
}

void TemporalSpec::collect(
    SimDuration origin,
    std::unordered_map<std::string, PlaceInterval>& out) const {
  if (is_leaf()) {
    out[leaf_.object_name] =
        PlaceInterval{0, origin, origin + leaf_duration_};
    return;
  }
  const auto [oa, ob] = child_offsets();
  node_->a.collect(origin + oa, out);
  node_->b.collect(origin + ob, out);
}

std::unordered_map<std::string, PlaceInterval>
TemporalSpec::expected_intervals() const {
  std::unordered_map<std::string, PlaceInterval> out;
  collect(SimDuration{0}, out);
  return out;
}

std::size_t TemporalSpec::object_count() const {
  if (is_leaf()) return 1;
  return node_->a.object_count() + node_->b.object_count();
}

// --- compiler ---------------------------------------------------------------

namespace {

/// Recursive compilation: each (sub)spec becomes a subnet with an entry
/// transition and an exit transition. Parallel relations join at the exit,
/// which therefore fires at the slowest branch; delay places realize start
/// offsets. Branch tails are padded with a slack place so the join never
/// *shifts* a leaf's interval — the leaf timing is realized purely by leads,
/// exactly as the relation defines.
struct Compiler {
  TimedPetriNet& net;
  std::unordered_map<std::string, PlaceId>& object_place;
  int fresh{0};

  std::string gensym(const std::string& base) {
    return base + "$" + std::to_string(fresh++);
  }

  /// Returns {entry transition, exit transition}.
  std::pair<TransitionId, TransitionId> compile(const TemporalSpec& s) {
    if (s.is_leaf()) {
      const TransitionId tin = net.add_transition(gensym("start_" + s.name()));
      const TransitionId tout = net.add_transition(gensym("end_" + s.name()));
      const PlaceId p =
          net.add_timed_place("obj_" + s.name(), s.duration(), s.binding());
      net.add_input(p, tout);
      net.add_output(tin, p);
      object_place[s.name()] = p;
      return {tin, tout};
    }

    const auto [off_a, off_b] = [&] {
      switch (s.relation()) {
        case Relation::kBefore:
        case Relation::kMeets:
          return std::pair<SimDuration, SimDuration>{{}, {}};
        default:
          break;
      }
      // parallel relations: leads relative to shared entry
      const SimDuration da = s.lhs().duration();
      const SimDuration db = s.rhs().duration();
      switch (s.relation()) {
        case Relation::kOverlaps:
        case Relation::kDuring:
          return std::pair<SimDuration, SimDuration>{{}, s.param()};
        case Relation::kFinishes:
          return std::pair<SimDuration, SimDuration>{{}, da - db};
        default:
          return std::pair<SimDuration, SimDuration>{{}, {}};
      }
    }();

    const auto [a_in, a_out] = compile(s.lhs());
    const auto [b_in, b_out] = compile(s.rhs());

    if (s.relation() == Relation::kBefore || s.relation() == Relation::kMeets) {
      // Sequential: a's exit feeds b's entry through a gap place.
      const PlaceId gap = net.add_timed_place(gensym("gap"), s.param());
      net.add_output(a_out, gap);
      net.add_input(gap, b_in);
      return {a_in, b_out};
    }

    // Parallel: shared entry/exit transitions around both branches.
    const TransitionId tin = net.add_transition(gensym("fork"));
    const TransitionId tout = net.add_transition(gensym("join"));

    auto attach = [&](TransitionId child_in, TransitionId child_out,
                      SimDuration lead, SimDuration slack) {
      const PlaceId pl = net.add_timed_place(gensym("lead"), lead);
      net.add_output(tin, pl);
      net.add_input(pl, child_in);
      const PlaceId ps = net.add_timed_place(gensym("slack"), slack);
      net.add_output(child_out, ps);
      net.add_input(ps, tout);
    };

    const SimDuration total = s.duration();
    const SimDuration slack_a = total - (off_a + s.lhs().duration());
    const SimDuration slack_b = total - (off_b + s.rhs().duration());
    attach(a_in, a_out, off_a, slack_a);
    attach(b_in, b_out, off_b, slack_b);
    return {tin, tout};
  }
};

}  // namespace

CompiledOcpn build_ocpn(const TemporalSpec& spec) {
  CompiledOcpn out;
  Compiler c{out.net, out.object_place, 0};
  const auto [tin, tout] = c.compile(spec);
  out.source = out.net.add_timed_place("source", SimDuration{0});
  out.sink = out.net.add_timed_place("sink", SimDuration{0});
  out.net.add_input(out.source, tin);
  out.net.add_output(tout, out.sink);
  return out;
}

}  // namespace lod::core
