#include "lod/core/petri.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace lod::core {

PlaceId PetriNet::add_place(std::string name, std::uint32_t capacity) {
  const PlaceId id = static_cast<PlaceId>(places_.size());
  places_.push_back(PlaceRec{std::move(name), capacity, {}, {}});
  return id;
}

TransitionId PetriNet::add_transition(std::string name) {
  const TransitionId id = static_cast<TransitionId>(transitions_.size());
  transitions_.push_back(TransitionRec{std::move(name), {}, {}});
  return id;
}

void PetriNet::add_input(PlaceId p, TransitionId t, std::uint32_t weight,
                         ArcKind kind) {
  if (p >= places_.size() || t >= transitions_.size() || weight == 0) {
    throw std::invalid_argument("add_input: bad arc");
  }
  transitions_[t].inputs.push_back(Arc{p, weight, kind});
  if (kind == ArcKind::kNormal) places_[p].consumers.push_back(t);
}

void PetriNet::add_output(TransitionId t, PlaceId p, std::uint32_t weight) {
  if (p >= places_.size() || t >= transitions_.size() || weight == 0) {
    throw std::invalid_argument("add_output: bad arc");
  }
  transitions_[t].outputs.push_back(Arc{p, weight, ArcKind::kNormal});
  places_[p].producers.push_back(t);
}

std::optional<PlaceId> PetriNet::find_place(std::string_view name) const {
  for (PlaceId i = 0; i < places_.size(); ++i) {
    if (places_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<TransitionId> PetriNet::find_transition(
    std::string_view name) const {
  for (TransitionId i = 0; i < transitions_.size(); ++i) {
    if (transitions_[i].name == name) return i;
  }
  return std::nullopt;
}

bool PetriNet::enabled(TransitionId t, const Marking& m) const {
  if (t >= transitions_.size()) return false;
  if (m.size() != places_.size()) {
    throw std::invalid_argument("enabled: marking size mismatch");
  }
  const TransitionRec& tr = transitions_[t];
  for (const Arc& a : tr.inputs) {
    if (a.kind == ArcKind::kInhibitor) {
      if (m[a.place] >= a.weight) return false;
    } else {
      if (m[a.place] < a.weight) return false;
    }
  }
  // Capacity check on outputs. A place both consumed from and produced to
  // nets out; we use the simple (strong) rule: post-fire count must fit.
  for (const Arc& a : tr.outputs) {
    const std::uint32_t cap = places_[a.place].capacity;
    if (cap == 0) continue;
    std::uint32_t consumed = 0;
    for (const Arc& in : tr.inputs) {
      if (in.kind == ArcKind::kNormal && in.place == a.place) {
        consumed += in.weight;
      }
    }
    if (m[a.place] - consumed + a.weight > cap) return false;
  }
  return true;
}

void PetriNet::set_priority(TransitionId t, std::int32_t priority) {
  if (t >= transitions_.size()) {
    throw std::invalid_argument("set_priority: bad transition");
  }
  transitions_[t].priority = priority;
}

std::vector<TransitionId> PetriNet::prioritized_enabled(
    const Marking& m) const {
  std::vector<TransitionId> enabled = enabled_transitions(m);
  if (enabled.empty()) return enabled;
  std::int32_t best = transitions_[enabled.front()].priority;
  for (TransitionId t : enabled) {
    best = std::max(best, transitions_[t].priority);
  }
  std::vector<TransitionId> out;
  for (TransitionId t : enabled) {
    if (transitions_[t].priority == best) out.push_back(t);
  }
  return out;
}

std::vector<TransitionId> PetriNet::enabled_transitions(
    const Marking& m) const {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    if (enabled(t, m)) out.push_back(t);
  }
  return out;
}

Marking PetriNet::fire(TransitionId t, const Marking& m) const {
  Marking next = m;
  fire_in_place(t, next);
  return next;
}

void PetriNet::fire_in_place(TransitionId t, Marking& m) const {
  if (!enabled(t, m)) {
    throw std::logic_error("fire: transition '" + transitions_.at(t).name +
                           "' not enabled");
  }
  const TransitionRec& tr = transitions_[t];
  for (const Arc& a : tr.inputs) {
    if (a.kind == ArcKind::kNormal) m[a.place] -= a.weight;
  }
  for (const Arc& a : tr.outputs) m[a.place] += a.weight;
}

std::string PetriNet::to_dot(const Marking* marking) const {
  std::ostringstream os;
  os << "digraph petri {\n  rankdir=LR;\n";
  for (PlaceId p = 0; p < places_.size(); ++p) {
    os << "  p" << p << " [shape=circle,label=\"" << places_[p].name;
    if (marking && p < marking->size() && (*marking)[p] > 0) {
      os << "\\n(" << (*marking)[p] << ")";
    }
    os << "\"];\n";
  }
  for (TransitionId t = 0; t < transitions_.size(); ++t) {
    os << "  t" << t << " [shape=box,label=\"" << transitions_[t].name
       << "\"];\n";
    for (const Arc& a : transitions_[t].inputs) {
      os << "  p" << a.place << " -> t" << t;
      if (a.kind == ArcKind::kInhibitor) os << " [arrowhead=odot]";
      else if (a.weight > 1) os << " [label=\"" << a.weight << "\"]";
      os << ";\n";
    }
    for (const Arc& a : transitions_[t].outputs) {
      os << "  t" << t << " -> p" << a.place;
      if (a.weight > 1) os << " [label=\"" << a.weight << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

namespace {

// FNV-1a 64, the same digest the sync layer uses for state checksums.
void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
}

void fnv_str(std::uint64_t& h, const std::string& s) {
  fnv(h, s.size());
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
}

}  // namespace

std::uint64_t PetriNet::structure_hash() const {
  std::uint64_t h = 14695981039346656037ull;
  fnv(h, places_.size());
  for (const PlaceRec& p : places_) {
    fnv_str(h, p.name);
    fnv(h, p.capacity);
  }
  fnv(h, transitions_.size());
  for (const TransitionRec& t : transitions_) {
    fnv_str(h, t.name);
    fnv(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(t.priority)));
    fnv(h, t.inputs.size());
    for (const Arc& a : t.inputs) {
      fnv(h, a.place);
      fnv(h, a.weight);
      fnv(h, static_cast<std::uint64_t>(a.kind));
    }
    fnv(h, t.outputs.size());
    for (const Arc& a : t.outputs) {
      fnv(h, a.place);
      fnv(h, a.weight);
    }
  }
  return h;
}

}  // namespace lod::core
