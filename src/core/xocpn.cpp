#include "lod/core/xocpn.hpp"

#include <algorithm>
#include <map>

namespace lod::core {

void apply_placement(
    CompiledOcpn& ocpn,
    const std::unordered_map<std::string, ObjectPlacement>& placement) {
  for (const auto& [name, pl] : placement) {
    auto it = ocpn.object_place.find(name);
    if (it == ocpn.object_place.end()) continue;
    const PlaceId p = it->second;
    ocpn.net.set_site(p, pl.site);
    auto binding = *ocpn.net.media(p);  // copy, update, write back
    binding.required_bps = pl.required_bps;
    ocpn.net.set_media(p, std::move(binding));
  }
}

ChannelSchedule derive_channel_schedule(const CompiledOcpn& ocpn,
                                        SimDuration setup_lead) {
  ChannelSchedule out;
  const PlayoutTrace trace = play(ocpn.net, ocpn.initial_marking());

  for (const auto& [name, place] : ocpn.object_place) {
    const SiteId site = ocpn.net.site(place);
    const auto& binding = ocpn.net.media(place);
    if (site == kLocalSite || !binding || binding->required_bps <= 0) continue;
    const auto iv = trace.interval_of(ocpn.net, name);
    if (!iv) continue;  // object never presented (dead branch)

    ChannelRequirement req;
    req.object = name;
    req.place = place;
    req.site = site;
    req.rate_bps = binding->required_bps;
    req.reserve_at = iv->start - setup_lead;
    if (req.reserve_at.us < 0) req.reserve_at = SimDuration{0};
    req.release_at = iv->end;
    out.channels.push_back(std::move(req));
  }

  std::sort(out.channels.begin(), out.channels.end(),
            [](const ChannelRequirement& a, const ChannelRequirement& b) {
              return a.reserve_at < b.reserve_at;
            });

  // Peak concurrent reservation via a sweep over reserve/release points.
  std::map<std::int64_t, std::int64_t> delta;
  for (const auto& c : out.channels) {
    delta[c.reserve_at.us] += c.rate_bps;
    delta[c.release_at.us] -= c.rate_bps;
  }
  std::int64_t cur = 0;
  for (const auto& [t, d] : delta) {
    cur += d;
    out.peak_bps = std::max(out.peak_bps, cur);
  }
  return out;
}

}  // namespace lod::core
