#include "lod/contenttree/content_tree.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "lod/net/bytes.hpp"

namespace lod::contenttree {

ContentTree::Node& ContentTree::checked(NodeId n) {
  if (!valid(n)) throw std::invalid_argument("ContentTree: bad node id");
  return nodes_[n];
}
const ContentTree::Node& ContentTree::checked(NodeId n) const {
  if (!valid(n)) throw std::invalid_argument("ContentTree: bad node id");
  return nodes_[n];
}

NodeId ContentTree::new_node(Segment seg, NodeId parent) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(seg), parent, {}, true});
  ++live_count_;
  return id;
}

int ContentTree::level(NodeId n) const {
  const Node* cur = &checked(n);
  int lvl = 0;
  while (cur->parent != kNoNode) {
    cur = &nodes_[cur->parent];
    ++lvl;
  }
  return lvl;
}

NodeId ContentTree::rightmost_at(int lvl) const {
  if (root_ == kNoNode || lvl < 0) return kNoNode;
  NodeId cur = root_;
  for (int i = 0; i < lvl; ++i) {
    const auto& ch = nodes_[cur].children;
    if (ch.empty()) return kNoNode;
    cur = ch.back();
  }
  return cur;
}

NodeId ContentTree::add(Segment seg, int lvl) {
  if (lvl < 0) throw std::invalid_argument("add: negative level");
  if (lvl == 0) {
    if (root_ != kNoNode) {
      throw std::invalid_argument("add: tree already has a root");
    }
    root_ = new_node(std::move(seg), kNoNode);
    return root_;
  }
  const NodeId parent = rightmost_at(lvl - 1);
  if (parent == kNoNode) {
    throw std::invalid_argument("add: no node at level " +
                                std::to_string(lvl - 1) + " to attach under");
  }
  return attach_child(parent, std::move(seg));
}

NodeId ContentTree::attach_child(NodeId parent, Segment seg) {
  checked(parent);  // validate before mutating
  // NB: new_node may reallocate nodes_, so re-index the parent afterwards.
  const NodeId id = new_node(std::move(seg), parent);
  nodes_[parent].children.push_back(id);
  return id;
}

NodeId ContentTree::insert_above(NodeId existing, Segment seg) {
  Node& old = checked(existing);
  const NodeId parent = old.parent;
  const NodeId id = new_node(std::move(seg), parent);
  nodes_[id].children.push_back(existing);
  nodes_[existing].parent = id;
  if (parent == kNoNode) {
    root_ = id;
  } else {
    auto& siblings = nodes_[parent].children;
    *std::find(siblings.begin(), siblings.end(), existing) = id;
  }
  return id;
}

void ContentTree::remove(NodeId node) {
  Node& n = checked(node);

  if (n.parent == kNoNode) {
    // Root: legal only if it leaves a single new root (or nothing).
    if (n.children.size() > 1) {
      throw std::invalid_argument("remove: deleting root would leave a forest");
    }
    root_ = n.children.empty() ? kNoNode : n.children.front();
    if (root_ != kNoNode) nodes_[root_].parent = kNoNode;
    n.alive = false;
    n.children.clear();
    --live_count_;
    return;
  }

  auto& siblings = nodes_[n.parent].children;
  const auto it = std::find(siblings.begin(), siblings.end(), node);
  const std::size_t pos = static_cast<std::size_t>(it - siblings.begin());

  // Fig. 4: children adopted by the (left) sibling; right if leftmost.
  if (!n.children.empty()) {
    NodeId foster = kNoNode;
    if (pos > 0) {
      foster = siblings[pos - 1];
    } else if (pos + 1 < siblings.size()) {
      foster = siblings[pos + 1];
    }
    if (foster == kNoNode) {
      // No sibling at all: the grandparent inherits them in place, which
      // RAISES their level by one — the only consistent option left.
      auto& gp = nodes_[n.parent].children;
      const auto at = std::find(gp.begin(), gp.end(), node);
      const std::size_t gpos = static_cast<std::size_t>(at - gp.begin());
      gp.insert(gp.begin() + static_cast<std::ptrdiff_t>(gpos) + 1,
                n.children.begin(), n.children.end());
      for (NodeId c : n.children) nodes_[c].parent = n.parent;
    } else if (pos > 0) {
      auto& fc = nodes_[foster].children;
      fc.insert(fc.end(), n.children.begin(), n.children.end());
      for (NodeId c : n.children) nodes_[c].parent = foster;
    } else {
      auto& fc = nodes_[foster].children;
      fc.insert(fc.begin(), n.children.begin(), n.children.end());
      for (NodeId c : n.children) nodes_[c].parent = foster;
    }
  }

  siblings.erase(std::find(siblings.begin(), siblings.end(), node));
  n.alive = false;
  n.children.clear();
  --live_count_;
}

int ContentTree::highest_level() const {
  if (root_ == kNoNode) return -1;
  int best = 0;
  // Iterative DFS to avoid recursion depth limits on degenerate trees.
  std::vector<std::pair<NodeId, int>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto [n, lvl] = stack.back();
    stack.pop_back();
    best = std::max(best, lvl);
    for (NodeId c : nodes_[n].children) stack.emplace_back(c, lvl + 1);
  }
  return best;
}

SimDuration ContentTree::level_value(int lvl) const {
  SimDuration total{};
  if (root_ == kNoNode || lvl < 0) return total;
  std::vector<std::pair<NodeId, int>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto [n, l] = stack.back();
    stack.pop_back();
    if (l == lvl) {
      total += nodes_[n].seg.duration;
      continue;  // children are deeper; no need to descend
    }
    for (NodeId c : nodes_[n].children) stack.emplace_back(c, l + 1);
  }
  return total;
}

SimDuration ContentTree::presentation_time(int lvl) const {
  SimDuration total{};
  for (NodeId n : sequence(lvl)) total += nodes_[n].seg.duration;
  return total;
}

void ContentTree::preorder(NodeId n, int lvl, int max_level,
                           std::vector<NodeId>& out) const {
  if (lvl > max_level) return;
  out.push_back(n);
  for (NodeId c : nodes_[n].children) preorder(c, lvl + 1, max_level, out);
}

std::vector<NodeId> ContentTree::sequence(int lvl) const {
  std::vector<NodeId> out;
  if (root_ != kNoNode && lvl >= 0) preorder(root_, 0, lvl, out);
  return out;
}

std::optional<NodeId> ContentTree::find(std::string_view name) const {
  for (NodeId n : sequence(highest_level())) {
    if (nodes_[n].seg.name == name) return n;
  }
  return std::nullopt;
}

std::vector<std::byte> ContentTree::serialize() const {
  net::ByteWriter w;
  w.u32(0x434f4e54);  // "CONT"
  // Pre-order with levels lets deserialize rebuild parents from a stack.
  const auto seq = sequence(highest_level());
  w.u32(static_cast<std::uint32_t>(seq.size()));
  for (NodeId n : seq) {
    w.u32(static_cast<std::uint32_t>(level(n)));
    w.str(nodes_[n].seg.name);
    w.i64(nodes_[n].seg.duration.us);
    w.str(nodes_[n].seg.media_ref);
  }
  return std::move(w).take();
}

ContentTree ContentTree::deserialize(std::span<const std::byte> bytes) {
  net::ByteReader r(bytes);
  if (r.u32() != 0x434f4e54) {
    throw std::runtime_error("ContentTree: bad magic");
  }
  ContentTree t;
  const std::uint32_t count = r.u32();
  std::vector<NodeId> spine;  // spine[l] = last node seen at level l
  for (std::uint32_t i = 0; i < count; ++i) {
    const int lvl = static_cast<int>(r.u32());
    Segment seg;
    seg.name = r.str();
    seg.duration = {r.i64()};
    seg.media_ref = r.str();
    NodeId id;
    if (lvl == 0) {
      id = t.add(std::move(seg), 0);
    } else {
      if (static_cast<std::size_t>(lvl) > spine.size()) {
        throw std::runtime_error("ContentTree: level jump in stream");
      }
      id = t.attach_child(spine[static_cast<std::size_t>(lvl) - 1],
                          std::move(seg));
    }
    spine.resize(static_cast<std::size_t>(lvl));
    spine.push_back(id);
  }
  return t;
}

std::string ContentTree::to_string() const {
  std::ostringstream os;
  for (NodeId n : sequence(highest_level())) {
    const int lvl = level(n);
    for (int i = 0; i < lvl; ++i) os << "  ";
    os << nodes_[n].seg.name << " (" << net::to_string(nodes_[n].seg.duration)
       << ")\n";
  }
  return os.str();
}

bool ContentTree::check_invariants(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (root_ == kNoNode) {
    return live_count_ == 0 ? true : fail("no root but live nodes");
  }
  if (!valid(root_) || nodes_[root_].parent != kNoNode) {
    return fail("root invalid or has a parent");
  }
  // Every live node reachable exactly once from the root.
  std::size_t seen = 0;
  std::vector<NodeId> stack{root_};
  std::vector<bool> visited(nodes_.size(), false);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (!valid(n)) return fail("dead node in tree");
    if (visited[n]) return fail("node visited twice (cycle or shared child)");
    visited[n] = true;
    ++seen;
    for (NodeId c : nodes_[n].children) {
      if (!valid(c)) return fail("dead child");
      if (nodes_[c].parent != n) return fail("parent/child asymmetry");
      stack.push_back(c);
    }
  }
  if (seen != live_count_) return fail("live count mismatch");
  return true;
}

}  // namespace lod::contenttree
