#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lod/net/time.hpp"

/// \file content_tree.hpp
/// The multiple-level content tree (§2.2–2.4).
///
/// "A content tree is a finite set of one or more nodes such that there is a
/// particularly designated node called the root. The level of a node is
/// defined by initially letting the root be at level 0. If a node is at level
/// q, then its children are at level q+1. Since a node is composed of a
/// presentation segment, the siblings with the order from left to right
/// represent a presentation with some sequence fashion. The higher level
/// gives the longer presentation."
///
/// The tree is the Abstractor's data structure: playing the presentation "at
/// level q" plays every segment of level <= q in document (pre-order) order,
/// so deeper levels insert more detail and lengthen the playout. The paper's
/// primitive operations are all here:
///
///   - initialize            — default-constructed tree,
///   - attach a node         — `add` / `attach_child`,
///   - insert a node         — `insert_above` (splices a new segment in at a
///                             level; the displaced subtree is pushed one
///                             level deeper, which is how Fig. 3's insert
///                             changes LevelNodes of deeper levels),
///   - detach/delete a node  — `remove` (children adopted by the left
///                             sibling, or right if none — Fig. 4),
///   - presentation time     — `level_value` (the paper's
///                             LevelNodes[q]->value) and `presentation_time`
///                             (the level-q playout length).

namespace lod::contenttree {

using net::SimDuration;

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// One presentation segment in the tree.
struct Segment {
  std::string name;
  SimDuration duration{};
  /// Optional reference into the media world (e.g. "video[120s,180s]").
  std::string media_ref;
};

/// The multiple-level content tree.
class ContentTree {
 public:
  ContentTree() = default;

  // --- construction ---------------------------------------------------------

  /// The paper's "attach": add a segment at \p level, as the rightmost child
  /// of the current rightmost node at level-1 (growing the right spine, which
  /// is exactly how the §2.3 build example proceeds). Level 0 creates the
  /// root; adding a second root or skipping levels throws.
  NodeId add(Segment seg, int level);

  /// Attach a segment as the last child of \p parent.
  NodeId attach_child(NodeId parent, Segment seg);

  /// The paper's "insert" (Fig. 3): splice \p seg into \p existing's position.
  /// The new node takes the old node's place among its siblings and adopts
  /// the old node as its only child — the displaced subtree moves one level
  /// deeper. Inserting above the root creates a new root.
  NodeId insert_above(NodeId existing, Segment seg);

  /// The paper's "delete" (Fig. 4): remove \p node; its children are adopted
  /// by its left sibling (or right sibling if it has none), keeping their
  /// level. Deleting a root that has more than one child would leave a
  /// forest, so it throws; a root with one child hands the root role over.
  void remove(NodeId node);

  // --- the paper's level accounting ------------------------------------------

  /// Highest (deepest) level currently present; -1 for an empty tree.
  int highest_level() const;

  /// LevelNodes[q]->value: total duration of the segments at exactly level q.
  SimDuration level_value(int level) const;

  /// Length of the level-q presentation: all segments of level <= q.
  SimDuration presentation_time(int level) const;

  /// The level-q presentation sequence: pre-order traversal restricted to
  /// nodes of level <= q ("siblings left to right ... sequence fashion").
  std::vector<NodeId> sequence(int level) const;

  // --- node access -------------------------------------------------------------

  std::size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }
  NodeId root() const { return root_; }
  bool valid(NodeId n) const {
    return n < nodes_.size() && nodes_[n].alive;
  }

  const Segment& segment(NodeId n) const { return checked(n).seg; }
  Segment& segment(NodeId n) { return checked(n).seg; }
  int level(NodeId n) const;
  NodeId parent(NodeId n) const { return checked(n).parent; }
  const std::vector<NodeId>& children(NodeId n) const {
    return checked(n).children;
  }
  /// First node whose segment name matches, pre-order; nullopt if absent.
  std::optional<NodeId> find(std::string_view name) const;

  // --- persistence / debugging ---------------------------------------------------

  /// Serialize to bytes (round-trips through deserialize).
  std::vector<std::byte> serialize() const;
  static ContentTree deserialize(std::span<const std::byte> bytes);

  /// Multi-line ASCII rendering, one node per line, indented by level.
  std::string to_string() const;

  /// Internal consistency check (parent/child symmetry, level law, counts);
  /// used by property tests. Returns false with diagnostics via \p why.
  bool check_invariants(std::string* why = nullptr) const;

 private:
  struct Node {
    Segment seg;
    NodeId parent{kNoNode};
    std::vector<NodeId> children;
    bool alive{false};
  };

  Node& checked(NodeId n);
  const Node& checked(NodeId n) const;
  NodeId new_node(Segment seg, NodeId parent);
  /// Rightmost node at \p level following last children; kNoNode if the level
  /// doesn't exist.
  NodeId rightmost_at(int level) const;
  void preorder(NodeId n, int lvl, int max_level,
                std::vector<NodeId>& out) const;

  std::vector<Node> nodes_;
  NodeId root_{kNoNode};
  std::size_t live_count_{0};
};

}  // namespace lod::contenttree
