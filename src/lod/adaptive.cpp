#include "lod/lod/adaptive.hpp"

#include <algorithm>

namespace lod::lod {

MultirateResult publish_multirate(WmpsNode& node, const PublishForm& form,
                                  const std::vector<std::string>& profiles) {
  MultirateResult out;
  for (const auto& profile_name : profiles) {
    const auto profile = media::find_profile(profile_name);
    if (!profile) {
      out.error = "no such bandwidth profile: " + profile_name;
      return out;
    }
    PublishForm f = form;
    f.profile = profile_name;
    f.publish_name = form.publish_name + "@" + profile_name;
    const PublishResult res = node.publish(f);
    if (!res.ok) {
      out.error = res.error;
      return out;
    }
    out.ladder.push_back(Rendition{res.url, profile_name, profile->total_bps});
  }
  std::sort(out.ladder.begin(), out.ladder.end(),
            [](const Rendition& a, const Rendition& b) {
              return a.total_bps > b.total_bps;
            });
  out.ok = !out.ladder.empty();
  if (!out.ok) out.error = "no profiles given";
  return out;
}

AdaptivePlayer::AdaptivePlayer(net::Network& net, net::HostId host,
                               Options opts, media::DrmSystem* drm)
    : net_(net), host_(host), opts_(opts), drm_(drm) {}

AdaptivePlayer::~AdaptivePlayer() {
  *alive_ = false;
  if (timer_) net_.simulator().cancel(*timer_);
}

void AdaptivePlayer::play(net::HostId server, std::vector<Rendition> ladder,
                          net::SimDuration from) {
  server_ = server;
  ladder_ = std::move(ladder);
  index_ = 0;
  if (ladder_.empty()) return;
  player_ = std::make_unique<streaming::Player>(net_, host_, opts_.player,
                                                drm_);
  player_->open_and_play(server_, ladder_[index_].url, from);
  stalls_at_switch_ = 0;
  timer_ = net_.simulator().schedule_after(opts_.check_interval,
                                           [this, alive = alive_] {
                                             if (!*alive) return;
                                             timer_.reset();
                                             watchdog();
                                           });
}

void AdaptivePlayer::watchdog() {
  if (!player_ || player_->finished()) return;
  const std::size_t stalls = player_->stalls().size() - stalls_at_switch_;
  if (stalls >= opts_.stall_threshold && index_ + 1 < ladder_.size()) {
    downshift();
  }
  timer_ = net_.simulator().schedule_after(opts_.check_interval,
                                           [this, alive = alive_] {
                                             if (!*alive) return;
                                             timer_.reset();
                                             watchdog();
                                           });
}

void AdaptivePlayer::downshift() {
  const net::SimDuration pos = player_->position();
  Switch sw;
  sw.at = net_.simulator().now();
  sw.from = ladder_[index_].profile;
  sw.position = pos;
  ++index_;
  sw.to = ladder_[index_].profile;
  switches_.push_back(sw);

  // Tear the old session down and reopen the lower rendition at the same
  // position. A fresh Player keeps the old one's render history out of the
  // new session's bookkeeping; we keep the stall baseline at zero.
  player_->stop();
  // Destroy the old player BEFORE constructing the new one: both bind the
  // same ports, and the old destructor's unbind must not strip the newly
  // installed handlers.
  player_.reset();
  player_ = std::make_unique<streaming::Player>(net_, host_, opts_.player,
                                                drm_);
  player_->open_and_play(server_, ladder_[index_].url, pos);
  stalls_at_switch_ = 0;
}

}  // namespace lod::lod
