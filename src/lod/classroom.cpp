#include "lod/lod/classroom.hpp"

#include <algorithm>
#include <map>

namespace lod::lod {

Classroom::Classroom(net::Simulator& sim, const ClassroomConfig& cfg)
    : sim_(sim), net_(sim, cfg.seed), cfg_(cfg) {
  // Topology: teacher -- switch -- student_i (a campus star).
  teacher_host_ = net_.add_host("teacher");
  switch_host_ = net_.add_host("switch");
  net::LinkConfig backbone;
  backbone.bandwidth_bps = 100'000'000;  // the server sits on the backbone
  backbone.latency = net::usec(200);
  net_.add_link(teacher_host_, switch_host_, backbone);

  net::Rng rng(cfg.seed * 31 + 5);
  std::vector<std::string> names;
  for (std::uint32_t i = 0; i < cfg.students; ++i) {
    const std::string name = "student" + std::to_string(i + 1);
    const net::SimDuration offset{
        rng.uniform_int(-cfg.clock_offset_range.us, cfg.clock_offset_range.us)};
    const double drift =
        (rng.uniform01() * 2.0 - 1.0) * cfg.drift_ppm_range;
    const net::HostId h = net_.add_host(name, net::HostClock(offset, drift));
    net_.add_link(switch_host_, h, cfg.access_link);
    Student st;
    st.name = name;
    st.host = h;
    students_.push_back(std::move(st));
    names.push_back(name);
  }

  wmps_ = std::make_unique<WmpsNode>(net_, teacher_host_);
  floor_ = std::make_unique<FloorService>(net_, teacher_host_, 9000, names);

  for (auto& st : students_) {
    streaming::PlayerConfig pc;
    pc.model = cfg.model;
    pc.ctl_port = 5000;
    pc.data_port = 5001;
    pc.user = st.name;
    pc.web_server = teacher_host_;
    pc.clock_sync_interval = cfg.clock_sync_interval;
    st.player = std::make_unique<streaming::Player>(
        net_, st.host, pc, &wmps_->license_authority());
    auto* heard = &st.heard;
    st.floor = std::make_unique<FloorClient>(
        net_, st.host, 6000, st.name, teacher_host_, 9000,
        [heard](const std::string& line) { heard->push_back(line); });
  }
}

PublishResult Classroom::publish(const PublishForm& form,
                                 const VideoAsset& video,
                                 const SlideAsset& slides) {
  wmps_->register_video(form.video_path, video);
  wmps_->register_slides(form.slide_dir, slides);
  return wmps_->publish(form);
}

void Classroom::start_watching(const std::string& url, net::SimDuration from,
                               std::optional<net::SimDuration> scheduled_in) {
  for (auto& st : students_) {
    if (scheduled_in) {
      // The teacher announces an absolute start instant on the MASTER
      // clock (the teacher host keeps true time in these experiments).
      st.player->set_scheduled_start(sim_.now() + *scheduled_in - from);
    }
    st.player->open_and_play(teacher_host_, url, from);
  }
}

void Classroom::join_floor() {
  for (auto& st : students_) st.floor->join();
}

Classroom::SkewReport Classroom::skew_report() const {
  // Collect, per (pts, stream), the true render instants across students.
  std::map<std::pair<std::int64_t, std::uint16_t>,
           std::vector<std::int64_t>>
      at;
  for (const auto& st : students_) {
    for (const auto& e : st.player->rendered()) {
      at[{e.pts.us, e.stream_id}].push_back(e.true_time.us);
    }
  }
  SkewReport rep;
  std::int64_t total = 0;
  for (const auto& [key, times] : at) {
    if (times.size() != students_.size()) continue;  // not rendered by all
    const auto [mn, mx] = std::minmax_element(times.begin(), times.end());
    const std::int64_t spread = *mx - *mn;
    rep.max_skew = std::max(rep.max_skew, net::SimDuration{spread});
    total += spread;
    ++rep.samples;
  }
  if (rep.samples > 0) {
    rep.mean_skew = net::SimDuration{total / static_cast<std::int64_t>(
                                                 rep.samples)};
  }
  return rep;
}

}  // namespace lod::lod
