#include "lod/lod/wmps.hpp"

#include "lod/media/profile.hpp"
#include "lod/streaming/protocol.hpp"

namespace lod::lod {

using net::ByteReader;
using net::ByteWriter;

WmpsNode::WmpsNode(net::Network& net, net::HostId host)
    : net_(net),
      host_(host),
      server_(net, host),
      web_(net, host, streaming::proto::kWebPort) {
  auto& reg = net_.simulator().obs().metrics();
  m_publishes_ = reg.counter("lod.wmps.publishes");
  m_publish_errors_ = reg.counter("lod.wmps.publish_errors");
  // Remote Fig. 5(a): accept the publishing form over the web port.
  web_.route("/publish", [this](std::string_view,
                                std::span<const std::byte> body) {
    PublishForm form;
    try {
      form = parse_form(body);
    } catch (const std::exception&) {
      return std::make_pair(400, std::vector<std::byte>{});
    }
    const PublishResult res = publish(form);
    ByteWriter w;
    w.u8(res.ok ? 1 : 0);
    w.str(res.ok ? res.url : res.error);
    return std::make_pair(res.ok ? 200 : 422, std::move(w).take());
  });
}

void WmpsNode::register_video(std::string path, VideoAsset asset) {
  videos_[std::move(path)] = asset;
}

void WmpsNode::register_slides(std::string dir, SlideAsset asset) {
  slides_[std::move(dir)] = asset;
}

void WmpsNode::serve_slides(const std::string& dir, const SlideAsset& asset) {
  const auto deck = media::make_slide_deck(asset.count, asset.seed);
  for (const auto& slide : deck) {
    const std::string path = "/" + dir + "/" + std::to_string(slide.index);
    const std::uint32_t bytes = slide.encoded_bytes;
    web_.route(path, [bytes, idx = slide.index](std::string_view,
                                                std::span<const std::byte>) {
      return std::make_pair(200, media::asf::pattern_bytes(bytes, idx));
    });
  }
}

void WmpsNode::record_publish(const PublishResult& res,
                              const obs::TraceContext& ctx) {
  if (res.ok) {
    m_publishes_.inc();
  } else {
    m_publish_errors_.inc();
  }
  auto& trace = net_.simulator().obs().trace();
  if (trace.enabled()) {
    trace.emit_in(ctx, obs::EventType::kPublish, host_,
                  static_cast<std::int64_t>(res.packets), res.ok ? 0 : 1,
                  res.ok ? res.url : res.error);
  }
}

PublishResult WmpsNode::publish(const PublishForm& form) {
  auto& trace = net_.simulator().obs().trace();
  const obs::TraceContext root = trace.make_trace();
  const std::uint64_t sp = trace.begin_span(root, "wmps.publish", host_);
  const obs::TraceContext ctx = root.child(sp);
  PublishResult res = publish_impl(form);
  record_publish(res, ctx);
  trace.end_span(root, sp, "wmps.publish", host_,
                 static_cast<std::int64_t>(res.packets), res.ok ? 0 : 1);
  return res;
}

PublishResult WmpsNode::publish_abstraction(
    const PublishForm& form, const std::vector<LectureSegment>& segments,
    int level) {
  auto& trace = net_.simulator().obs().trace();
  const obs::TraceContext root = trace.make_trace();
  const std::uint64_t sp = trace.begin_span(root, "wmps.publish", host_, level);
  const obs::TraceContext ctx = root.child(sp);
  PublishResult res = publish_abstraction_impl(form, segments, level);
  record_publish(res, ctx);
  trace.end_span(root, sp, "wmps.publish", host_,
                 static_cast<std::int64_t>(res.packets), res.ok ? 0 : 1);
  return res;
}

PublishResult WmpsNode::publish_impl(const PublishForm& form) {
  PublishResult res;
  const auto video = videos_.find(form.video_path);
  if (video == videos_.end()) {
    res.error = "no such video file: " + form.video_path;
    return res;
  }
  const auto deck = slides_.find(form.slide_dir);
  if (deck == slides_.end()) {
    res.error = "no such slide directory: " + form.slide_dir;
    return res;
  }
  const auto profile = media::find_profile(form.profile);
  if (!profile) {
    res.error = "no such bandwidth profile: " + form.profile;
    return res;
  }
  if (form.publish_name.empty()) {
    res.error = "publish name must not be empty";
    return res;
  }

  const VideoAsset& va = video->second;
  const SlideAsset& sa = deck->second;

  // "Our system could make the video and presented slides synchronized with
  // the temporal script commands ... automatically": derive the slide
  // schedule from the deck + lecture length, then emit SLIDE commands.
  auto schedule = media::make_slide_schedule(sa.count, va.duration, sa.seed);
  auto scripts =
      streaming::slide_flip_commands(schedule, form.slide_dir + "/");
  auto notes = media::make_annotations(va.annotation_count, schedule,
                                       va.duration, va.seed + 1);
  const auto annot_cmds = streaming::annotation_commands(notes);
  scripts.insert(scripts.end(), annot_cmds.begin(), annot_cmds.end());

  streaming::EncodeJob job;
  job.profile = *profile;
  job.title = form.title;
  job.author = form.author;
  job.drm = &drm_;
  job.protect_content = form.protect_drm;

  media::LectureVideoSource vsrc(va.duration, job.profile.fps,
                                 job.profile.width, job.profile.height,
                                 va.seed);
  media::LectureAudioSource asrc(va.duration, job.profile.audio_sample_rate(),
                                 net::msec(20), va.seed + 2);
  auto enc = streaming::encode_lecture(job, vsrc, asrc, scripts);

  res.ok = true;
  res.url = form.publish_name;
  res.packets = enc.file.packets.size();
  res.script_commands = scripts.size();
  res.wire_bytes = enc.file.wire_size();
  res.key_id = enc.key_id;

  server_.publish(form.publish_name, std::move(enc.file));
  serve_slides(form.slide_dir, sa);
  schedules_[form.publish_name] = std::move(schedule);
  annotations_[form.publish_name] = std::move(notes);
  return res;
}

PublishResult WmpsNode::publish_abstraction_impl(
    const PublishForm& form, const std::vector<LectureSegment>& segments,
    int level) {
  PublishResult res;
  const auto video = videos_.find(form.video_path);
  if (video == videos_.end()) {
    res.error = "no such video file: " + form.video_path;
    return res;
  }
  const auto deck = slides_.find(form.slide_dir);
  if (deck == slides_.end()) {
    res.error = "no such slide directory: " + form.slide_dir;
    return res;
  }
  const auto profile = media::find_profile(form.profile);
  if (!profile) {
    res.error = "no such bandwidth profile: " + form.profile;
    return res;
  }
  if (form.publish_name.empty()) {
    res.error = "publish name must not be empty";
    return res;
  }

  ContentTree tree;
  try {
    tree = build_lecture_tree(segments);
  } catch (const std::invalid_argument& e) {
    res.error = e.what();
    return res;
  }
  if (level < 0 || level > tree.highest_level()) {
    res.error = "no such abstraction level: " + std::to_string(level);
    return res;
  }
  const net::SimDuration duration = tree.presentation_time(level);
  auto scripts = level_slide_commands(tree, level,
                                                 form.slide_dir + "/");
  // Record the flip instants so replay validation works like publish().
  std::vector<net::SimDuration> schedule;
  schedule.reserve(scripts.size());
  for (const auto& c : scripts) schedule.push_back(c.at);

  streaming::EncodeJob job;
  job.profile = *profile;
  job.title = form.title;
  job.author = form.author;
  job.drm = &drm_;
  job.protect_content = form.protect_drm;

  media::LectureVideoSource vsrc(duration, job.profile.fps, job.profile.width,
                                 job.profile.height, video->second.seed);
  media::LectureAudioSource asrc(duration, job.profile.audio_sample_rate(),
                                 net::msec(20), video->second.seed + 2);
  auto enc = streaming::encode_lecture(job, vsrc, asrc, scripts);

  res.ok = true;
  res.url = form.publish_name;
  res.packets = enc.file.packets.size();
  res.script_commands = scripts.size();
  res.wire_bytes = enc.file.wire_size();
  res.key_id = enc.key_id;
  server_.publish(form.publish_name, std::move(enc.file));
  serve_slides(form.slide_dir, deck->second);
  schedules_[form.publish_name] = std::move(schedule);
  return res;
}

const std::vector<net::SimDuration>* WmpsNode::slide_schedule(
    const std::string& url) const {
  auto it = schedules_.find(url);
  return it == schedules_.end() ? nullptr : &it->second;
}

const std::vector<media::Annotation>* WmpsNode::published_annotations(
    const std::string& url) const {
  auto it = annotations_.find(url);
  return it == annotations_.end() ? nullptr : &it->second;
}

std::vector<std::byte> WmpsNode::serialize_form(const PublishForm& form) {
  ByteWriter w;
  w.str(form.video_path);
  w.str(form.slide_dir);
  w.str(form.profile);
  w.str(form.title);
  w.str(form.author);
  w.u8(form.protect_drm ? 1 : 0);
  w.str(form.publish_name);
  return std::move(w).take();
}

PublishForm WmpsNode::parse_form(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  PublishForm f;
  f.video_path = r.str();
  f.slide_dir = r.str();
  f.profile = r.str();
  f.title = r.str();
  f.author = r.str();
  f.protect_drm = r.u8() != 0;
  f.publish_name = r.str();
  return f;
}

}  // namespace lod::lod
