#include "lod/lod/loadgen.hpp"

#include <algorithm>
#include <utility>

#include "lod/media/profile.hpp"
#include "lod/media/sources.hpp"
#include "lod/net/rng.hpp"
#include "lod/streaming/encoder.hpp"

namespace lod::lod {

namespace {

// Salts XORed into the root seed so each derivation (network, kind,
// arrival, per-session actions) draws from an unrelated splitmix64 stream.
constexpr std::uint64_t kNetSalt = 0x6e65747325ULL;
constexpr std::uint64_t kKindSalt = 0x6b696e6425ULL;
constexpr std::uint64_t kArrivalSalt = 0x6172727625ULL;
constexpr std::uint64_t kActionSalt = 0x6163743a25ULL;

constexpr net::Port kFloorPort = 7100;
constexpr net::Port kSessionPortBase = 10000;
// Player takes ctl/data/data+1, a floor client base+3/base+4; one spare.
constexpr std::uint16_t kPortsPerSession = 6;
// Floor release pump: bounded retries so the queue always drains but a
// straggler cannot ring past any sane horizon.
constexpr std::uint32_t kMaxReleaseAttempts = 240;

}  // namespace

std::string_view to_string(SessionKind k) {
  switch (k) {
    case SessionKind::kStraight: return "straight";
    case SessionKind::kInteractive: return "interactive";
    case SessionKind::kFailover: return "failover";
    case SessionKind::kFloor: return "floor";
  }
  return "?";
}

std::string_view to_string(InputKind k) {
  switch (k) {
    case InputKind::kOpen: return "open";
    case InputKind::kPause: return "pause";
    case InputKind::kResume: return "resume";
    case InputKind::kSeek: return "seek";
  }
  return "?";
}

LoadGen::LoadGen(net::Simulator& sim, WorkloadSpec spec,
                 std::uint64_t root_seed, std::size_t shard,
                 std::size_t shard_count)
    : sim_(sim),
      spec_(std::move(spec)),
      root_seed_(root_seed),
      shard_(shard),
      shard_count_(shard_count == 0 ? 1 : shard_count),
      net_(sim, net::derive_shard_seed(root_seed ^ kNetSalt, shard)) {
  if (spec_.client_hosts == 0) spec_.client_hosts = 1;
  build_deployment();
  publish_lecture();

  // Materialize this shard's share of the global session list. The vector is
  // sized once here and never resized, so SessionRec pointers stay stable
  // for the scheduled-event closures.
  std::vector<std::string> floor_users;
  for (std::size_t i = shard_; i < spec_.sessions; i += shard_count_) {
    SessionRec rec;
    rec.index = i;
    rec.kind = kind_of(i);
    const std::size_t slot = sessions_.size();
    rec.client = client_hosts_[slot % client_hosts_.size()];
    rec.base_port = static_cast<net::Port>(
        kSessionPortBase +
        (slot / client_hosts_.size()) * kPortsPerSession);
    if (rec.kind == SessionKind::kFloor) {
      floor_users.push_back("u" + std::to_string(i));
    }
    sessions_.push_back(std::move(rec));
  }
  by_index_.reserve(sessions_.size());
  for (auto& rec : sessions_) {
    by_index_.emplace(static_cast<std::uint32_t>(rec.index), &rec);
  }
  floor_service_ = std::make_unique<FloorService>(
      net_, origin_host_, kFloorPort, std::move(floor_users));
}

LoadGen::~LoadGen() = default;

SessionKind LoadGen::kind_of(std::size_t global_index) const {
  // Derived from (root seed, GLOBAL index): identical regardless of how many
  // shards the workload is split across.
  net::Rng r(net::derive_shard_seed(root_seed_ ^ kKindSalt, global_index));
  const double w[4] = {
      std::max(spec_.mix.straight, 0.0),
      std::max(spec_.mix.interactive, 0.0),
      std::max(spec_.mix.failover, 0.0),
      std::max(spec_.mix.floor, 0.0),
  };
  const double total = w[0] + w[1] + w[2] + w[3];
  if (total <= 0.0) return SessionKind::kStraight;
  double u = r.uniform01() * total;
  for (int k = 0; k < 3; ++k) {
    if (u < w[k]) return static_cast<SessionKind>(k);
    u -= w[k];
  }
  return SessionKind::kFloor;
}

net::SimDuration LoadGen::arrival_of(std::size_t global_index) const {
  net::Rng r(net::derive_shard_seed(root_seed_ ^ kArrivalSalt, global_index));
  const std::int64_t span = std::max<std::int64_t>(spec_.arrival_window.us, 1);
  return net::SimDuration{r.uniform_int(0, span - 1)};
}

void LoadGen::build_deployment() {
  origin_host_ = net_.add_host("origin");
  edge_host_ = net_.add_host("edge");
  flaky_host_ = net_.add_host("edge-flaky");

  net::LinkConfig wan;
  wan.bandwidth_bps = 20'000'000;
  wan.latency = net::msec(40);
  net_.add_link(origin_host_, edge_host_, wan);
  net_.add_link(origin_host_, flaky_host_, wan);

  net::LinkConfig lan;
  lan.bandwidth_bps = 10'000'000;
  lan.latency = net::msec(2);
  client_hosts_.reserve(spec_.client_hosts);
  for (std::size_t i = 0; i < spec_.client_hosts; ++i) {
    const net::HostId h = net_.add_host("client" + std::to_string(i));
    net_.add_link(h, edge_host_, lan);
    net_.add_link(h, flaky_host_, lan);
    client_hosts_.push_back(h);
  }

  server_ = std::make_unique<streaming::StreamingServer>(net_, origin_host_);
  gateway_ = std::make_unique<edge::OriginGateway>(net_, *server_);
  edge::EdgeConfig ec;
  ec.origin = origin_host_;
  edge_ = std::make_unique<edge::EdgeNode>(net_, edge_host_, ec);
  flaky_ = std::make_unique<edge::EdgeNode>(net_, flaky_host_, ec);
}

void LoadGen::publish_lecture() {
  streaming::EncodeJob job;
  auto prof = media::find_profile(spec_.profile);
  if (!prof) prof = media::find_profile("Video 56k dial-up");
  job.profile = *prof;
  job.preroll = net::msec(2000);
  media::LectureVideoSource v(spec_.lecture_len, job.profile.fps,
                              job.profile.width, job.profile.height, 5);
  media::LectureAudioSource a(spec_.lecture_len,
                              job.profile.audio_sample_rate());
  auto enc = streaming::encode_lecture(job, v, a, {});
  server_->publish("lec", enc.file);
}

void LoadGen::start_session(SessionRec& rec) {
  streaming::PlayerConfig cfg;
  cfg.model = streaming::SyncModel::kEtpn;
  cfg.ctl_port = rec.base_port;
  cfg.data_port = static_cast<net::Port>(rec.base_port + 1);
  cfg.web_server = origin_host_;
  cfg.auto_stop_on_finish = true;

  net::Rng r(net::derive_shard_seed(root_seed_ ^ kActionSalt, rec.index));
  switch (rec.kind) {
    case SessionKind::kStraight: {
      rec.player =
          std::make_unique<streaming::Player>(net_, rec.client, cfg);
      // Mostly the nearby replica, a minority direct to the origin — keeps
      // both serving paths warm under load.
      const net::HostId target = r.bernoulli(0.85) ? edge_host_ : origin_host_;
      rec.player->open_and_play(target, "lec");
      break;
    }
    case SessionKind::kInteractive: {
      // The pause/resume/seek storm arrives as scripted SessionInputs (see
      // planned_inputs), so a recorded run can replay it verbatim.
      rec.player =
          std::make_unique<streaming::Player>(net_, rec.client, cfg);
      rec.player->open_and_play(edge_host_, "lec");
      break;
    }
    case SessionKind::kFailover: {
      cfg.failover_timeout = net::msec(1500);
      if (spec_.migrate_on_failover) {
        // Migration needs a post-kill pick that speaks /edge/migrate: make
        // the stable EdgeNode the selector's floor (the flaky edge still
        // wins the initial pick — sites_ lists edges first and the LAN
        // latencies tie).
        cfg.migrate_on_failover = true;
        rec.selector = std::make_unique<edge::ReplicaSelector>(
            net_, rec.client, edge_host_,
            std::vector<net::HostId>{flaky_host_});
      } else {
        rec.selector = std::make_unique<edge::ReplicaSelector>(
            net_, rec.client, origin_host_,
            std::vector<net::HostId>{flaky_host_});
      }
      rec.player =
          std::make_unique<streaming::Player>(net_, rec.client, cfg);
      rec.player->open_and_play_via(*rec.selector, "lec");
      break;
    }
    case SessionKind::kFloor: {
      rec.player =
          std::make_unique<streaming::Player>(net_, rec.client, cfg);
      rec.player->open_and_play(edge_host_, "lec");
      schedule_floor_script(rec);
      break;
    }
  }
}

std::vector<SessionInput> LoadGen::planned_inputs() const {
  std::vector<SessionInput> plan;
  for (const auto& rec : sessions_) {
    const auto session = static_cast<std::uint32_t>(rec.index);
    const std::int64_t arrival = arrival_of(rec.index).us;
    plan.push_back({arrival, session, InputKind::kOpen, 0});
    if (rec.kind != SessionKind::kInteractive) continue;
    // The storm schedule, drawn exactly as the pre-script implementation
    // drew it (same salt, same draw order), times made absolute by the
    // session's arrival. First round lands after the preroll so the session
    // is actually playing.
    net::Rng r(
        net::derive_shard_seed(root_seed_ ^ (kActionSalt + 1), rec.index));
    const std::int64_t len = std::max<std::int64_t>(spec_.lecture_len.us, 1);
    net::SimDuration at = net::msec(3000 + r.uniform_int(0, 1000));
    for (std::uint32_t k = 0; k < spec_.interactions; ++k) {
      const std::int64_t target = r.uniform_int(0, len - 1);
      const bool do_seek = r.bernoulli(0.5);
      if (do_seek) {
        plan.push_back({arrival + at.us, session, InputKind::kSeek, target});
      } else {
        plan.push_back({arrival + at.us, session, InputKind::kPause, 0});
        plan.push_back(
            {arrival + (at + net::msec(400)).us, session, InputKind::kResume,
             0});
      }
      at = at + net::msec(800 + r.uniform_int(0, 700));
    }
  }
  return plan;
}

void LoadGen::apply_input(const SessionInput& in) {
  // The tap sees every input BEFORE the session-state guards, so a recorded
  // journal equals the plan that produced it (replay determinism contract).
  if (tap_) tap_(in);
  auto it = by_index_.find(in.session);
  if (it == by_index_.end()) return;  // another shard's session
  SessionRec& rec = *it->second;
  switch (in.kind) {
    case InputKind::kOpen:
      start_session(rec);
      return;
    case InputKind::kPause:
      if (rec.player && !rec.player->finished()) rec.player->pause();
      return;
    case InputKind::kResume:
      if (rec.player && !rec.player->finished()) rec.player->resume();
      return;
    case InputKind::kSeek:
      if (rec.player && !rec.player->finished()) {
        rec.player->seek(net::SimDuration{in.arg_us});
      }
      return;
  }
}

void LoadGen::schedule_floor_script(SessionRec& rec) {
  rec.floor = std::make_unique<FloorClient>(
      net_, rec.client, static_cast<net::Port>(rec.base_port + 3),
      "u" + std::to_string(rec.index), origin_host_, kFloorPort,
      [](const std::string&) {});
  SessionRec* rp = &rec;
  std::weak_ptr<bool> alive = alive_;
  rec.floor->join([this, rp, alive](bool ok) {
    if (alive.expired() || !ok) return;
    rp->floor->request_floor([this, rp, alive](bool) {
      if (alive.expired()) return;
      sim_.schedule_after(net::msec(700), [this, rp, alive] {
        if (alive.expired()) return;
        // Speaks from non-holders are denied by the service — that IS the
        // contention this session kind exists to generate.
        rp->floor->speak("question from " + rp->floor->user());
        floor_release_tick(*rp);
      });
    });
  });
}

void LoadGen::floor_release_tick(SessionRec& rec) {
  if (++rec.release_attempts > kMaxReleaseAttempts) return;
  SessionRec* rp = &rec;
  std::weak_ptr<bool> alive = alive_;
  rec.floor->release_floor([this, rp, alive](bool ok) {
    if (alive.expired() || ok) return;  // released: floor passed on
    sim_.schedule_after(net::msec(500), [this, rp, alive] {
      if (!alive.expired()) floor_release_tick(*rp);
    });
  });
}

void LoadGen::run() { run_script(planned_inputs()); }

void LoadGen::run(std::span<const SessionInput> script) {
  run_script(std::vector<SessionInput>(script.begin(), script.end()));
}

void LoadGen::run_script(std::vector<SessionInput> script) {
  if (ran_) return;
  ran_ = true;
  const net::SimTime start = sim_.now();
  std::weak_ptr<bool> alive = alive_;
  // The script outlives run_script's frame via shared ownership; each
  // scheduled closure borrows one element.
  auto inputs =
      std::make_shared<const std::vector<SessionInput>>(std::move(script));
  for (const SessionInput& in : *inputs) {
    // Foreign sessions (a full-run journal handed to every shard) are
    // dropped HERE, before any event is scheduled: replay byte-identity
    // includes the simulator's own event counters, so a no-op event per
    // foreign input would already break it.
    if (!by_index_.contains(in.session)) continue;
    const SessionInput* ip = &in;
    sim_.schedule_at(start + net::SimDuration{in.t_us},
                     [this, ip, inputs, alive] {
                       if (!alive.expired()) apply_input(*ip);
                     });
  }
  sim_.schedule_at(start + spec_.flaky_edge_up_for, [this, alive] {
    if (!alive.expired()) flaky_.reset();
  });

  sim_.run_until(start + spec_.horizon);

  // Anything still going at the horizon is force-stopped and counted
  // unfinished; give the teardown messages a moment to drain.
  for (auto& rec : sessions_) {
    if (rec.player && !rec.player->finished()) rec.player->stop();
  }
  sim_.run_until(sim_.now() + net::msec(500));
  finalize_totals();
}

void LoadGen::finalize_totals() {
  totals_ = {};
  totals_.sessions = sessions_.size();
  std::size_t by_kind[4] = {0, 0, 0, 0};
  for (const auto& rec : sessions_) {
    by_kind[static_cast<std::size_t>(rec.kind)]++;
    if (!rec.player) continue;
    if (rec.player->finished()) totals_.finished++;
    totals_.failovers += rec.player->failovers();
    totals_.migrations += rec.player->migrations();
    totals_.stalls += rec.player->stalls().size();
    totals_.interactions_issued += rec.player->interactions().size();
    totals_.packets_received += rec.player->packets_received();
    totals_.units_rendered += rec.player->units_rendered();
  }
  if (floor_service_) {
    for (const auto& ev : floor_service_->control().log()) {
      if (ev.kind == FloorControl::Event::Kind::kGrant) {
        totals_.floor_grants++;
      }
    }
  }

  auto& m = sim_.obs().metrics();
  m.counter("lod.loadgen.sessions").inc(totals_.sessions);
  m.counter("lod.loadgen.finished").inc(totals_.finished);
  m.counter("lod.loadgen.failovers").inc(totals_.failovers);
  m.counter("lod.loadgen.migrations").inc(totals_.migrations);
  m.counter("lod.loadgen.stalls").inc(totals_.stalls);
  m.counter("lod.loadgen.interactions").inc(totals_.interactions_issued);
  m.counter("lod.loadgen.floor_grants").inc(totals_.floor_grants);
  m.counter("lod.loadgen.packets_received").inc(totals_.packets_received);
  m.counter("lod.loadgen.units_rendered").inc(totals_.units_rendered);
  for (int k = 0; k < 4; ++k) {
    m.counter("lod.loadgen.sessions_kind",
              {{"kind", std::string(to_string(static_cast<SessionKind>(k)))}})
        .inc(by_kind[k]);
  }
}

net::ShardedResult LoadGen::run_sharded(const WorkloadSpec& spec,
                                        std::size_t shards,
                                        std::uint64_t root_seed,
                                        bool enable_trace) {
  net::ShardedRunner runner(shards, root_seed, enable_trace);
  return runner.run([&](net::ShardEnv& env) {
    LoadGen gen(env.sim, spec, root_seed, env.shard, env.shard_count);
    gen.run();
  });
}

}  // namespace lod::lod
