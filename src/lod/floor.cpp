#include "lod/lod/floor.hpp"

#include <algorithm>

namespace lod::lod {

using net::ByteReader;
using net::ByteWriter;

// --- FloorControl -----------------------------------------------------------------

FloorControl::FloorControl(std::vector<std::string> users) {
  floor_free_ = net_.add_place("floor_free", 1);
  for (auto& u : users) {
    UserRec rec;
    rec.requesting = net_.add_place("req_" + u, 1);
    rec.holding = net_.add_place("hold_" + u, 1);
    rec.grant = net_.add_transition("grant_" + u);
    rec.release = net_.add_transition("release_" + u);
    net_.add_input(rec.requesting, rec.grant);
    net_.add_input(floor_free_, rec.grant);
    net_.add_output(rec.grant, rec.holding);
    net_.add_input(rec.holding, rec.release);
    net_.add_output(rec.release, floor_free_);
    users_.emplace(std::move(u), rec);
  }
  marking_ = net_.empty_marking();
  marking_[floor_free_] = 1;
}

const FloorControl::UserRec* FloorControl::find(const std::string& user) const {
  auto it = users_.find(user);
  return it == users_.end() ? nullptr : &it->second;
}

void FloorControl::attach_observability(obs::Hub* hub) {
  hub_ = hub;
  if (!hub_) {
    m_requests_ = {};
    m_grants_ = {};
    m_denies_ = {};
    m_releases_ = {};
    m_grant_wait_us_ = {};
    return;
  }
  auto& reg = hub_->metrics();
  m_requests_ = reg.counter("lod.floor.requests");
  m_grants_ = reg.counter("lod.floor.grants");
  m_denies_ = reg.counter("lod.floor.denies");
  m_releases_ = reg.counter("lod.floor.releases");
  m_grant_wait_us_ = reg.histogram("lod.floor.grant_wait_us");
}

bool FloorControl::request(const std::string& user) {
  const UserRec* rec = find(user);
  if (!rec || marking_[rec->requesting] > 0 || marking_[rec->holding] > 0) {
    // Unknown, already queued, or already holding.
    m_denies_.inc();
    if (hub_ && hub_->trace().enabled()) {
      hub_->trace().emit(obs::EventType::kFloorDeny, 0, 0, 0, user);
    }
    return false;
  }
  // Deposit a request token; the grant transition may fire when this user
  // reaches the head of the FIFO and the floor is free.
  marking_[rec->requesting] = 1;
  fifo_.push_back(user);
  log_.push_back(Event{Event::Kind::kRequest, user});
  m_requests_.inc();
  if (hub_) {
    asked_at_[user] = hub_->now_us();
    if (hub_->trace().enabled()) {
      auto& trace = hub_->trace();
      const obs::TraceContext root = trace.make_trace();
      const std::uint64_t sp = trace.begin_span(root, "floor.request");
      request_spans_[user] = {root, sp};
      trace.emit_in(root.child(sp), obs::EventType::kFloorRequest, 0, 0, 0,
                    user);
    }
  }
  try_grant();
  return true;
}

bool FloorControl::release(const std::string& user) {
  const UserRec* rec = find(user);
  if (!rec || !net_.enabled(rec->release, marking_)) {
    m_denies_.inc();
    if (hub_ && hub_->trace().enabled()) {
      hub_->trace().emit(obs::EventType::kFloorDeny, 0, 1, 0, user);
    }
    return false;
  }
  net_.fire_in_place(rec->release, marking_);
  log_.push_back(Event{Event::Kind::kRelease, user});
  m_releases_.inc();
  if (hub_ && hub_->trace().enabled()) {
    hub_->trace().emit(obs::EventType::kFloorRelease, 0, 0, 0, user);
  }
  try_grant();
  return true;
}

void FloorControl::set_user_priority(const std::string& user,
                                     std::int32_t priority) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    throw std::invalid_argument("set_user_priority: unknown user " + user);
  }
  net_.set_priority(it->second.grant, priority);
}

void FloorControl::try_grant() {
  while (!fifo_.empty()) {
    // Pick the waiting user whose grant transition is maximal under the
    // prioritized firing rule; FIFO order breaks priority ties (fifo_ is
    // arrival-ordered, so the first maximal entry wins).
    auto best = fifo_.end();
    std::int32_t best_prio = 0;
    for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
      const std::int32_t prio = net_.priority(users_.at(*it).grant);
      if (best == fifo_.end() || prio > best_prio) {
        best = it;
        best_prio = prio;
      }
    }
    const UserRec& head = users_.at(*best);
    if (!net_.enabled(head.grant, marking_)) return;  // floor busy
    net_.fire_in_place(head.grant, marking_);
    log_.push_back(Event{Event::Kind::kGrant, *best});
    m_grants_.inc();
    if (hub_) {
      if (auto it = asked_at_.find(*best); it != asked_at_.end()) {
        m_grant_wait_us_.observe(hub_->now_us() - it->second);
        asked_at_.erase(it);
      }
      if (auto it = request_spans_.find(*best); it != request_spans_.end()) {
        auto& trace = hub_->trace();
        const auto [root, sp] = it->second;
        trace.emit_in(root.child(sp), obs::EventType::kFloorGrant, 0, 0, 0,
                      *best);
        trace.end_span(root, sp, "floor.request");
        request_spans_.erase(it);
      } else if (hub_->trace().enabled()) {
        hub_->trace().emit(obs::EventType::kFloorGrant, 0, 0, 0, *best);
      }
    }
    fifo_.erase(best);
  }
}

std::optional<std::string> FloorControl::holder() const {
  for (const auto& [name, rec] : users_) {
    if (marking_[rec.holding] > 0) return name;
  }
  return std::nullopt;
}

std::vector<std::string> FloorControl::waiting() const {
  return {fifo_.begin(), fifo_.end()};
}

FloorControl::State FloorControl::state() const {
  return State{marking_, {fifo_.begin(), fifo_.end()}};
}

void FloorControl::restore(const State& s) {
  if (s.marking.size() != net_.place_count()) {
    throw std::invalid_argument("FloorControl::restore: marking size " +
                                std::to_string(s.marking.size()) +
                                " != place count " +
                                std::to_string(net_.place_count()));
  }
  for (core::PlaceId p = 0; p < s.marking.size(); ++p) {
    const std::uint32_t cap = net_.place_capacity(p);
    if (cap > 0 && s.marking[p] > cap) {
      throw std::invalid_argument("FloorControl::restore: place " +
                                  net_.place_name(p) + " over capacity");
    }
  }
  for (auto it = s.fifo.begin(); it != s.fifo.end(); ++it) {
    if (find(*it) == nullptr) {
      throw std::invalid_argument("FloorControl::restore: unknown user " + *it);
    }
    if (std::find(s.fifo.begin(), it, *it) != it) {
      throw std::invalid_argument("FloorControl::restore: duplicate queued " +
                                  *it);
    }
  }
  marking_ = s.marking;
  fifo_.assign(s.fifo.begin(), s.fifo.end());
  const auto queued = [this](const std::string& u) {
    return std::find(fifo_.begin(), fifo_.end(), u) != fifo_.end();
  };
  for (auto it = asked_at_.begin(); it != asked_at_.end();) {
    it = queued(it->first) ? std::next(it) : asked_at_.erase(it);
  }
  for (auto it = request_spans_.begin(); it != request_spans_.end();) {
    it = queued(it->first) ? std::next(it) : request_spans_.erase(it);
  }
}

std::vector<std::int64_t> FloorControl::exclusion_invariant() const {
  std::vector<std::int64_t> w(net_.place_count(), 0);
  w[floor_free_] = 1;
  for (const auto& [name, rec] : users_) w[rec.holding] = 1;
  return w;
}

// --- FloorService -------------------------------------------------------------------

namespace {
std::vector<std::byte> str_bytes(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}
std::string bytes_str(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}
std::pair<int, std::vector<std::byte>> verdict(bool ok) {
  return {ok ? 200 : 403, {}};
}
}  // namespace

FloorService::FloorService(net::Network& net, net::HostId host,
                           net::Port rpc_port, std::vector<std::string> users)
    : net_(net),
      rpc_(net, host, rpc_port),
      relay_(net, host, static_cast<net::Port>(rpc_port + 1)),
      floor_(std::move(users)) {
  floor_.attach_observability(&net_.simulator().obs());
  m_relayed_ = net_.simulator().obs().metrics().counter("lod.floor.relayed");
  // Body convention: "user" or "user\ntext" (speak), or "user\nhost:port"
  // (join). Kept deliberately simple — it is a classroom protocol.
  rpc_.route("/floor/join", [this](std::string_view,
                                   std::span<const std::byte> body) {
    const std::string s = bytes_str(body);
    const auto nl = s.find('\n');
    if (nl == std::string::npos) return verdict(false);
    const std::string user = s.substr(0, nl);
    const auto colon = s.find(':', nl);
    if (colon == std::string::npos) return verdict(false);
    Member m;
    m.host = static_cast<net::HostId>(
        std::stoul(s.substr(nl + 1, colon - nl - 1)));
    m.port = static_cast<net::Port>(std::stoul(s.substr(colon + 1)));
    members_[user] = m;
    return verdict(true);
  });
  rpc_.route("/floor/request",
             [this](std::string_view, std::span<const std::byte> body) {
               return verdict(floor_.request(bytes_str(body)));
             });
  rpc_.route("/floor/release",
             [this](std::string_view, std::span<const std::byte> body) {
               return verdict(floor_.release(bytes_str(body)));
             });
  rpc_.route("/floor/speak", [this](std::string_view,
                                    std::span<const std::byte> body) {
    const std::string s = bytes_str(body);
    const auto nl = s.find('\n');
    if (nl == std::string::npos) return verdict(false);
    const std::string user = s.substr(0, nl);
    if (floor_.holder() != user) return verdict(false);  // no floor, no mic
    const std::string line = user + ": " + s.substr(nl + 1);
    for (const auto& [name, m] : members_) {
      relay_.send_to(m.host, m.port, str_bytes(line));
      ++relayed_;
      m_relayed_.inc();
    }
    return verdict(true);
  });
}

// --- FloorClient ---------------------------------------------------------------------

FloorClient::FloorClient(net::Network& net, net::HostId host,
                         net::Port base_port, std::string user,
                         net::HostId service_host, net::Port service_port,
                         std::function<void(const std::string&)> on_message)
    : rpc_(net, host, base_port),
      inbox_(net, host, static_cast<net::Port>(base_port + 1)),
      user_(std::move(user)),
      service_host_(service_host),
      service_port_(service_port) {
  inbox_.on_receive([cb = std::move(on_message)](
                        const net::ReliableEndpoint::Message& m) {
    if (cb) cb(bytes_str(m.payload));
  });
}

void FloorClient::call(const std::string& path, std::vector<std::byte> body,
                       std::function<void(bool)> done) {
  call_result(path, std::move(body),
              [done = std::move(done)](net::Result<bool> r) {
                if (done) done(r && *r);
              });
}

void FloorClient::call_result(const std::string& path,
                              std::vector<std::byte> body, ResultFn done) {
  rpc_.call(service_host_, service_port_, path, std::move(body),
            [done = std::move(done)](net::Result<net::RpcReply> r) {
              if (!done) return;
              if (!r) {
                done(r.error());
              } else {
                done(r->status == 200);
              }
            },
            net::RpcClient::CallOptions{timeout_});
}

void FloorClient::request_floor_result(ResultFn done) {
  call_result("/floor/request", str_bytes(user_), std::move(done));
}

void FloorClient::release_floor_result(ResultFn done) {
  call_result("/floor/release", str_bytes(user_), std::move(done));
}

void FloorClient::join(std::function<void(bool)> done) {
  const std::string body = user_ + "\n" + std::to_string(inbox_.host()) + ":" +
                           std::to_string(inbox_.port());
  call("/floor/join", str_bytes(body), std::move(done));
}

void FloorClient::request_floor(std::function<void(bool)> done) {
  call("/floor/request", str_bytes(user_), std::move(done));
}

void FloorClient::release_floor(std::function<void(bool)> done) {
  call("/floor/release", str_bytes(user_), std::move(done));
}

void FloorClient::speak(const std::string& text,
                        std::function<void(bool)> done) {
  call("/floor/speak", str_bytes(user_ + "\n" + text), std::move(done));
}

}  // namespace lod::lod
