#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

/// \file adaptive.hpp
/// Multi-rate publishing and an adaptive player.
///
/// The era's real systems shipped this as "intelligent streaming": the
/// encoder produces the same content at several bandwidth profiles and the
/// player shifts down when the network cannot sustain the current one. The
/// paper's configuration module exposes the profile ladder (§2.5); this
/// extension closes the loop automatically.
///
///  - `publish_multirate` publishes one lecture under `<name>@<profile>` for
///    each requested profile (all sharing the slide directory).
///  - `AdaptivePlayer` wraps a Player: it watches for stalls and, when the
///    current profile keeps rebuffering, reopens the next lower rendition at
///    the position it reached. Downshift only — upshift probing needs
///    bandwidth estimation the paper-era clients did not have.

namespace lod::lod {

/// One published rendition.
struct Rendition {
  std::string url;
  std::string profile;
  std::int64_t total_bps{0};
};

/// Publish `form.publish_name@<profile>` for every profile in \p profiles
/// (highest first in the returned ladder). Fails fast on the first error.
struct MultirateResult {
  bool ok{false};
  std::string error;
  std::vector<Rendition> ladder;  ///< sorted by descending total_bps
};
MultirateResult publish_multirate(WmpsNode& node, const PublishForm& form,
                                  const std::vector<std::string>& profiles);

/// A player that downshifts through a rendition ladder on rebuffering.
class AdaptivePlayer {
 public:
  struct Options {
    /// Consider downshifting after this many stalls on the current rendition.
    std::size_t stall_threshold{2};
    /// How often the watchdog looks at the player.
    net::SimDuration check_interval{net::sec(2)};
    streaming::PlayerConfig player;
  };

  /// A switch decision, for reporting.
  struct Switch {
    net::SimTime at;
    std::string from;
    std::string to;
    net::SimDuration position;
  };

  AdaptivePlayer(net::Network& net, net::HostId host, Options opts,
                 media::DrmSystem* drm = nullptr);
  ~AdaptivePlayer();
  AdaptivePlayer(const AdaptivePlayer&) = delete;
  AdaptivePlayer& operator=(const AdaptivePlayer&) = delete;

  /// Start playing the highest rendition of \p ladder from \p server.
  void play(net::HostId server, std::vector<Rendition> ladder,
            net::SimDuration from = {});

  const streaming::Player& player() const { return *player_; }
  streaming::Player& player() { return *player_; }
  const std::vector<Switch>& switches() const { return switches_; }
  const std::string& current_profile() const {
    return ladder_.empty() ? empty_ : ladder_[index_].profile;
  }
  bool finished() const { return player_ && player_->finished(); }

 private:
  void watchdog();
  void downshift();

  net::Network& net_;
  net::HostId host_;
  Options opts_;
  media::DrmSystem* drm_;
  std::unique_ptr<streaming::Player> player_;
  net::HostId server_{0};
  std::vector<Rendition> ladder_;
  std::size_t index_{0};
  std::size_t stalls_at_switch_{0};
  std::vector<Switch> switches_;
  std::optional<net::EventId> timer_;
  std::string empty_;
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
};

}  // namespace lod::lod
