#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/core/analysis.hpp"
#include "lod/core/petri.hpp"
#include "lod/net/network.hpp"
#include "lod/net/transport.hpp"
#include "lod/obs/hub.hpp"

/// \file floor.hpp
/// Floor control with multiple users.
///
/// §1: "when considering ... the floor control with multiple users,
/// OCPN/XOCPN model are not sufficient to deal with those problem[s]". The
/// extended model arbitrates the floor with a Petri net: one token in a
/// `floor_free` place, per-user request/holding places, grant transitions
/// guarded so that only one user can hold the floor. The class keeps FIFO
/// fairness by only enabling the grant of the queue's head (a priority
/// discipline in the sense of the prioritized Petri nets of [13]).
///
/// `FloorService`/`FloorClient` lift the same net onto the simulated network
/// for the distance-learning classroom: students REQUEST/RELEASE the floor
/// over RPC and the current holder's comments are relayed to every member.

namespace lod::lod {

/// Petri-net-backed mutual exclusion with FIFO arbitration.
class FloorControl {
 public:
  struct Event {
    enum class Kind : std::uint8_t { kRequest, kGrant, kRelease };
    Kind kind;
    std::string user;
  };

  explicit FloorControl(std::vector<std::string> users);

  /// Publish `lod.floor.*` series (requests/grants/denies/releases and the
  /// grant-wait histogram) and trace events into \p hub. The standalone
  /// class has no network, so observability is attached explicitly;
  /// `FloorService` attaches its simulation's hub automatically. Pass
  /// nullptr to detach.
  void attach_observability(obs::Hub* hub);

  /// Give \p user a scheduling priority (default 0). Higher-priority
  /// requesters are granted before lower ones regardless of arrival order
  /// (FIFO still breaks ties) — the prioritized-net discipline of [13],
  /// used so the teacher can always preempt the question queue.
  void set_user_priority(const std::string& user, std::int32_t priority);

  /// Ask for the floor. Returns false if the user is unknown, already
  /// holding, or already queued. The grant fires immediately when the floor
  /// is free and the user is first under (priority desc, arrival asc).
  bool request(const std::string& user);

  /// Give the floor back. Only the current holder can release; the next
  /// queued user (if any) is granted at once.
  bool release(const std::string& user);

  std::optional<std::string> holder() const;
  std::vector<std::string> waiting() const;
  const std::vector<Event>& log() const { return log_; }

  /// The underlying net and marking (exposed for analysis in tests).
  const core::PetriNet& net() const { return net_; }
  const core::Marking& marking() const { return marking_; }

  /// The mutual-exclusion P-invariant: floor_free + sum(holding_u) == 1.
  /// True by construction; tests verify it holds over random schedules.
  std::vector<std::int64_t> exclusion_invariant() const;

  /// Replication snapshot of the MUTABLE floor state: the marking plus the
  /// arrival-ordered request queue. The structure (user set, net shape) is
  /// deliberately not included — replicating sites guard against structural
  /// divergence with `net().structure_hash()` instead.
  struct State {
    core::Marking marking;
    std::vector<std::string> fifo;
  };
  State state() const;

  /// Install a replicated snapshot verbatim. No transitions fire — the
  /// authoritative site already fired them, and firing anything here would
  /// diverge from the state being copied. Throws std::invalid_argument when
  /// the snapshot does not fit this net (wrong marking size, token over
  /// capacity, unknown or duplicated queued user). Wait-time and trace
  /// bookkeeping for users no longer queued is dropped.
  void restore(const State& s);

 private:
  struct UserRec {
    core::PlaceId requesting;
    core::PlaceId holding;
    core::TransitionId grant;
    core::TransitionId release;
  };

  void try_grant();
  const UserRec* find(const std::string& user) const;

  core::PetriNet net_;
  core::PlaceId floor_free_;
  std::unordered_map<std::string, UserRec> users_;
  core::Marking marking_;
  std::deque<std::string> fifo_;
  std::vector<Event> log_;
  obs::Hub* hub_{nullptr};
  obs::Counter m_requests_;
  obs::Counter m_grants_;
  obs::Counter m_denies_;
  obs::Counter m_releases_;
  obs::Histogram m_grant_wait_us_;
  /// When each queued user asked (for the grant-wait histogram).
  std::unordered_map<std::string, obs::TimeUs> asked_at_;
  /// Open "floor.request" span per queued user: the request → grant wait,
  /// closed by try_grant (left open — and clamped by the span-tree builder —
  /// if the floor never frees up).
  std::unordered_map<std::string, std::pair<obs::TraceContext, std::uint64_t>>
      request_spans_;
};

/// Network-facing floor service (runs on the teacher/server host).
///
/// RPC routes: /floor/join (register a member endpoint), /floor/request,
/// /floor/release, /floor/speak (holder-only; relayed to every member).
class FloorService {
 public:
  FloorService(net::Network& net, net::HostId host, net::Port rpc_port,
               std::vector<std::string> users);

  const FloorControl& control() const { return floor_; }
  std::uint64_t messages_relayed() const { return relayed_; }

 private:
  net::Network& net_;
  net::RpcServer rpc_;
  net::ReliableEndpoint relay_;
  FloorControl floor_;
  struct Member {
    net::HostId host;
    net::Port port;
  };
  std::unordered_map<std::string, Member> members_;
  std::uint64_t relayed_{0};
  obs::Counter m_relayed_;
};

/// A classroom member's handle on the floor service.
class FloorClient {
 public:
  /// \p on_message receives relayed "user: text" lines from the service.
  FloorClient(net::Network& net, net::HostId host, net::Port base_port,
              std::string user, net::HostId service_host,
              net::Port service_port,
              std::function<void(const std::string&)> on_message);

  /// All three complete asynchronously; \p done (optional) fires with the
  /// service's verdict.
  void join(std::function<void(bool)> done = {});
  void request_floor(std::function<void(bool)> done = {});
  void release_floor(std::function<void(bool)> done = {});
  /// Speak while holding the floor; relayed to every member.
  void speak(const std::string& text, std::function<void(bool)> done = {});

  /// Error-aware variants: the callback gets the transport verdict
  /// (`net::Error::kRefused`, `kTimeout`, `kClosed`, ...) instead of a
  /// collapsed bool, so call sites can tell "the service said no" apart
  /// from "the request never reached the service". The success value is
  /// the service's verdict (true == granted/released).
  using ResultFn = std::function<void(net::Result<bool>)>;
  void request_floor_result(ResultFn done);
  void release_floor_result(ResultFn done);

  /// Deadline applied to every RPC this client issues. Default: disarmed
  /// (negative), so simulated event streams are unchanged; real-backend
  /// callers should always arm one.
  void set_call_timeout(net::SimDuration t) { timeout_ = t; }

  const std::string& user() const { return user_; }

 private:
  void call(const std::string& path, std::vector<std::byte> body,
            std::function<void(bool)> done);
  void call_result(const std::string& path, std::vector<std::byte> body,
                   ResultFn done);

  net::RpcClient rpc_;
  net::ReliableEndpoint inbox_;
  std::string user_;
  net::HostId service_host_;
  net::Port service_port_;
  net::SimDuration timeout_{net::usec(-1)};
};

}  // namespace lod::lod
