#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lod/lod/floor.hpp"
#include "lod/lod/wmps.hpp"
#include "lod/net/network.hpp"
#include "lod/streaming/player.hpp"

/// \file classroom.hpp
/// The distance-learning classroom (§1's motivating scenario).
///
/// "Suppose a well-known teacher is giving a lecture/presentation to his
/// student. Because of time constraints and other commitments, many students
/// cannot attend the presentation." The classroom wires the whole system
/// together on one simulated campus network: a WMPS node on the teacher's
/// machine, N student machines (each with its own skewed clock and LAN link)
/// running players, and the floor-control service for questions/comments.
///
/// Benches use this to measure the paper's distributed claims: cross-student
/// rendering skew per sync model, interaction resync latencies, and floor
/// fairness under contention.

namespace lod::lod {

/// How to build the classroom.
struct ClassroomConfig {
  std::uint32_t students{4};
  /// Per-student access link (asymmetric skews/drifts are drawn per student).
  net::LinkConfig access_link{};
  /// Max absolute clock offset drawn uniformly per student.
  net::SimDuration clock_offset_range{net::msec(300)};
  /// Max absolute drift (ppm) drawn uniformly per student.
  double drift_ppm_range{80.0};
  streaming::SyncModel model{streaming::SyncModel::kEtpn};
  std::uint64_t seed{99};
  /// How often ETPN players re-sync their clocks.
  net::SimDuration clock_sync_interval{net::sec(10)};
};

/// One student's machinery.
struct Student {
  std::string name;
  net::HostId host{};
  std::unique_ptr<streaming::Player> player;
  std::unique_ptr<FloorClient> floor;
  std::vector<std::string> heard;  ///< relayed floor messages
};

/// The assembled classroom.
class Classroom {
 public:
  Classroom(net::Simulator& sim, const ClassroomConfig& cfg);

  /// Publish a lecture on the teacher node. Returns the publish result.
  PublishResult publish(const PublishForm& form, const VideoAsset& video,
                        const SlideAsset& slides);

  /// Every student opens the published URL and starts playing. When
  /// \p scheduled_in is set, the presentation is scheduled absolutely:
  /// media position 0 renders at (now + *scheduled_in) on the master clock,
  /// which makes cross-student skew a direct function of clock quality.
  void start_watching(const std::string& url, net::SimDuration from = {},
                      std::optional<net::SimDuration> scheduled_in = {});

  /// All students join the floor service (async; run the sim to settle).
  void join_floor();

  WmpsNode& teacher() { return *wmps_; }
  FloorService& floor_service() { return *floor_; }
  std::vector<Student>& students() { return students_; }
  net::Network& network() { return net_; }
  net::HostId teacher_host() const { return teacher_host_; }

  /// Cross-student skew: for each presentation time rendered by EVERY
  /// student, the spread (max-min) of true render instants.
  struct SkewReport {
    net::SimDuration max_skew{};
    net::SimDuration mean_skew{};
    std::size_t samples{0};
  };
  SkewReport skew_report() const;

 private:
  net::Simulator& sim_;
  net::Network net_;
  net::HostId teacher_host_{};
  net::HostId switch_host_{};
  std::unique_ptr<WmpsNode> wmps_;
  std::unique_ptr<FloorService> floor_;
  std::vector<Student> students_;
  ClassroomConfig cfg_;
};

}  // namespace lod::lod
