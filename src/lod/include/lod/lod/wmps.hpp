#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lod/media/drm.hpp"
#include "lod/net/network.hpp"
#include "lod/obs/trace.hpp"
#include "lod/media/sources.hpp"
#include "lod/streaming/encoder.hpp"
#include "lod/lod/abstraction.hpp"
#include "lod/streaming/server.hpp"

/// \file wmps.hpp
/// The Web-based Multimedia Presentation System node (§2.5, Fig. 5).
///
/// One machine running everything the paper's server side runs: the
/// configuration module, the web publishing manager, the streaming service,
/// the web (slide) service, and the DRM license authority.
///
/// Fig. 5 workflow: "(a) Fill the path in the form for publishing — user must
/// fill the path of video file (MPEG4) and the directory of the presented
/// slides. Our system could make the video and presented slides synchronized
/// with the temporal script commands as an advanced stream format (ASF) file
/// automatically. (b) replay the representation — when user replayed the
/// presentation by media player, the orchestrated ASF file will show the
/// video and the presented slides."
///
/// There is no real filesystem in the simulation, so "paths" name entries in
/// an asset registry: `register_video` / `register_slides` stand in for the
/// files existing on disk. Everything downstream of the form is the paper's
/// pipeline: slide schedule -> temporal script commands -> encode -> mux ->
/// publish under a URL -> replay through the media player.

namespace lod::lod {

/// A recorded lecture "file" (registered under a path).
struct VideoAsset {
  net::SimDuration duration{net::sec(1800)};
  double fps{15.0};
  std::uint16_t width{320};
  std::uint16_t height{240};
  std::uint64_t seed{7};
  std::uint32_t annotation_count{0};  ///< teacher ink recorded with the talk
};

/// A slide "directory" (registered under a path).
struct SlideAsset {
  std::uint32_t count{0};
  std::uint64_t seed{13};
};

/// What the user types into Fig. 5(a)'s form.
struct PublishForm {
  std::string video_path;   ///< must be registered via register_video
  std::string slide_dir;    ///< must be registered via register_slides
  std::string profile;      ///< bandwidth profile name (§2.5 profile window)
  std::string title{"Untitled lecture"};
  std::string author{"unknown"};
  bool protect_drm{false};
  std::string publish_name;  ///< the URL the content appears under
};

/// What the publishing manager reports back.
struct PublishResult {
  bool ok{false};
  std::string error;
  std::string url;             ///< content name to hand to a Player
  std::size_t packets{0};
  std::size_t script_commands{0};
  std::size_t wire_bytes{0};
  media::KeyId key_id;         ///< non-empty when DRM-protected
};

/// The WMPS server node.
class WmpsNode {
 public:
  /// Binds the streaming control port, the web port and the license service
  /// on \p host.
  WmpsNode(net::Network& net, net::HostId host);

  // --- asset registry (stand-in for files on disk) -----------------------------

  void register_video(std::string path, VideoAsset asset);
  void register_slides(std::string dir, SlideAsset asset);

  // --- the web publishing manager (Fig. 5a) --------------------------------------

  /// Validate the form, build the slide schedule + script commands, encode,
  /// mux, publish under form.publish_name, and serve the slide images.
  PublishResult publish(const PublishForm& form);

  /// Extension over the paper's workflow: publish the level-q ABSTRACTION of
  /// a segmented lecture as its own URL. The abstracted presentation plays
  /// the content tree's level-q playlist back to back (duration ==
  /// tree.presentation_time(level)); slides follow the playlist; the slide
  /// directory must still be registered. `form.video_path` must name the
  /// registered full recording (its seed keys the synthetic content).
  PublishResult publish_abstraction(const PublishForm& form,
                                    const std::vector<LectureSegment>& segments,
                                    int level);

  /// The slide schedule generated for a published URL (for validation).
  const std::vector<net::SimDuration>* slide_schedule(
      const std::string& url) const;
  /// Annotations muxed for a published URL.
  const std::vector<media::Annotation>* published_annotations(
      const std::string& url) const;

  // --- distributed edge tier ---------------------------------------------------

  /// Register an edge replica site serving this node's published content.
  /// The edge node itself belongs to the deployment; the WMPS tracks the
  /// candidate-site list that session setup hands to replica selection.
  void register_edge(net::HostId edge) {
    if (std::find(edge_sites_.begin(), edge_sites_.end(), edge) ==
        edge_sites_.end()) {
      edge_sites_.push_back(edge);
    }
  }
  const std::vector<net::HostId>& edge_sites() const { return edge_sites_; }
  /// Every site a session may open against: edges first, the origin last
  /// (mirrors `ReplicaSelector`'s ordering contract).
  std::vector<net::HostId> candidate_sites() const {
    std::vector<net::HostId> sites = edge_sites_;
    sites.push_back(host_);
    return sites;
  }

  // --- services --------------------------------------------------------------------

  streaming::StreamingServer& media_services() { return server_; }
  media::DrmSystem& license_authority() { return drm_; }
  net::HostId host() const { return host_; }

  /// Remote publishing: the node also accepts the form over RPC at
  /// /publish (body = serialized PublishForm), like submitting Fig. 5(a)
  /// from a browser. Serialization helpers:
  static std::vector<std::byte> serialize_form(const PublishForm& form);
  static PublishForm parse_form(std::span<const std::byte> bytes);

 private:
  void serve_slides(const std::string& dir, const SlideAsset& asset);
  PublishResult publish_impl(const PublishForm& form);
  PublishResult publish_abstraction_impl(
      const PublishForm& form, const std::vector<LectureSegment>& segments,
      int level);
  /// Publish accounting: `lod.wmps.*` counters + the kPublish trace event
  /// (tagged into \p ctx, the "wmps.publish" span minted by the caller).
  void record_publish(const PublishResult& res,
                      const obs::TraceContext& ctx = {});

  net::Network& net_;
  net::HostId host_;
  streaming::StreamingServer server_;
  net::RpcServer web_;
  media::DrmSystem drm_;
  obs::Counter m_publishes_;
  obs::Counter m_publish_errors_;
  std::vector<net::HostId> edge_sites_;
  std::unordered_map<std::string, VideoAsset> videos_;
  std::unordered_map<std::string, SlideAsset> slides_;
  std::unordered_map<std::string, std::vector<net::SimDuration>> schedules_;
  std::unordered_map<std::string, std::vector<media::Annotation>> annotations_;
};

}  // namespace lod::lod
