#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lod/edge/edge_node.hpp"
#include "lod/edge/replica_selector.hpp"
#include "lod/lod/floor.hpp"
#include "lod/net/network.hpp"
#include "lod/net/sharded_runner.hpp"
#include "lod/streaming/player.hpp"
#include "lod/streaming/server.hpp"

/// \file loadgen.hpp
/// The multi-session load generator: scripts N mixed lecture-on-demand
/// sessions — straight playout, pause/seek storms, mid-session failover via
/// `open_and_play_via`, floor-control contention — against a self-contained
/// per-shard deployment (origin server + gateway, a stable edge replica, a
/// flaky edge that dies mid-run, a floor service, and a pool of client
/// hosts), all from a declarative `WorkloadSpec`.
///
/// Sessions are identified by a GLOBAL index in [0, spec.sessions): the
/// session's kind, arrival time and per-session action seed are pure
/// functions of (root seed, global index), so re-partitioning the same
/// workload across a different shard count runs the *same* thousand
/// sessions — which is what makes the S1 scaling bench an apples-to-apples
/// comparison. A `LoadGen` for shard k of K instantiates exactly the
/// sessions with `index % K == k`.
///
/// Outcomes are published as `lod.loadgen.*` registry series (sessions /
/// finished / interactions-issued per kind, plus totals), so a
/// `ShardedRunner`'s merged snapshot carries the whole run's results.

namespace lod::lod {

/// What one scripted session does.
enum class SessionKind : std::uint8_t {
  kStraight,     ///< open_and_play, watch to the end
  kInteractive,  ///< playout under a pause/resume/seek storm
  kFailover,     ///< open_and_play_via a selector whose edge dies mid-run
  kFloor,        ///< floor-control contention (request/speak/release cycle)
};

std::string_view to_string(SessionKind k);

/// One scripted session input — the unit of the record-replay journal
/// (`lod::sync::SessionRecorder`). Values are wire format; append only.
enum class InputKind : std::uint8_t {
  kOpen = 1,    ///< start the session (open_and_play / _via per its kind)
  kPause = 2,
  kResume = 3,
  kSeek = 4,    ///< arg_us = target position
};

std::string_view to_string(InputKind k);

/// A session input pinned to run-relative time. A LoadGen run IS a list of
/// these: `planned_inputs()` derives the list from the seed, `run(script)`
/// executes an explicit list, and replaying a recorded list byte-identically
/// reproduces the original run's merged snapshot.
struct SessionInput {
  std::int64_t t_us{0};      ///< offset from run start
  std::uint32_t session{0};  ///< GLOBAL session index
  InputKind kind{InputKind::kOpen};
  std::int64_t arg_us{0};    ///< kSeek target; 0 otherwise

  friend bool operator==(const SessionInput&, const SessionInput&) = default;
};

/// Session-kind mix, as relative weights (normalized internally; all-zero
/// degenerates to all-straight).
struct WorkloadMix {
  double straight{0.55};
  double interactive{0.20};
  double failover{0.15};
  double floor{0.10};
};

/// The declarative workload description.
struct WorkloadSpec {
  /// Total sessions across ALL shards.
  std::size_t sessions{100};
  WorkloadMix mix{};
  /// Length of the published lecture every session plays.
  net::SimDuration lecture_len{net::sec(8)};
  /// Arrivals are uniform over [0, arrival_window).
  net::SimDuration arrival_window{net::sec(10)};
  /// Pause/resume/seek storm rounds per interactive session.
  std::uint32_t interactions{3};
  /// When the flaky edge host is killed (failover sessions re-home then).
  net::SimDuration flaky_edge_up_for{net::sec(6)};
  /// Hard stop: any session not finished by now is stopped and counted
  /// unfinished. Generous by default — the queue normally drains first.
  net::SimDuration horizon{net::sec(120)};
  /// Encoder profile for the published lecture (see media::standard_profiles).
  std::string profile{"Video 56k dial-up"};
  /// Client hosts per shard; sessions round-robin over them.
  std::size_t client_hosts{16};
  /// Failover sessions migrate (freeze → ship image → resume) instead of
  /// re-describing: the selector is rewired so the post-kill pick is the
  /// stable EdgeNode (which speaks `/edge/migrate`), and the player carries
  /// `PlayerConfig::migrate_on_failover`. Off by default — the re-describe
  /// path is what the legacy benches and goldens measure.
  bool migrate_on_failover{false};
};

/// Aggregated outcome of one shard's run (mirrors the `lod.loadgen.*`
/// series; a merged snapshot sums these across shards).
struct LoadGenTotals {
  std::size_t sessions{0};
  std::size_t finished{0};
  std::uint64_t failovers{0};
  std::uint64_t migrations{0};  ///< failovers resolved by live migration
  std::uint64_t stalls{0};
  std::uint64_t interactions_issued{0};
  std::uint64_t floor_grants{0};
  std::uint64_t packets_received{0};
  std::uint64_t units_rendered{0};
};

/// Drives one shard's share of the workload inside one Simulator.
class LoadGen {
 public:
  /// Builds the shard deployment in \p sim. \p root_seed is the RUN's root
  /// seed (identical for every shard); per-shard and per-session streams
  /// are derived from it, so a (root_seed, shard_count) pair fully
  /// determines every shard's behaviour.
  LoadGen(net::Simulator& sim, WorkloadSpec spec, std::uint64_t root_seed,
          std::size_t shard = 0, std::size_t shard_count = 1);
  ~LoadGen();
  LoadGen(const LoadGen&) = delete;
  LoadGen& operator=(const LoadGen&) = delete;

  /// Schedule every local session and run the simulator until the workload
  /// drains (bounded by spec.horizon), then publish outcome series.
  /// Equivalent to `run(planned_inputs())`.
  void run();

  /// Run an explicit input script instead of the seed-derived plan. Inputs
  /// for sessions this shard does not own are dropped before anything is
  /// scheduled (they must not even perturb the simulator's event counters),
  /// so a full-run journal can be handed to every shard verbatim. This is
  /// the replay half of record-replay.
  void run(std::span<const SessionInput> script);

  /// The seed-derived input list this shard's `run()` would execute, in
  /// (session, time) order: one kOpen per session at its arrival, plus the
  /// interactive sessions' pause/resume/seek storms. A pure function of
  /// (root seed, spec, shard) — computing it does not perturb the run.
  std::vector<SessionInput> planned_inputs() const;

  /// Observe every input as it is applied (before any session-state guards
  /// drop it), in execution order. The recording half of record-replay.
  void set_input_tap(std::function<void(const SessionInput&)> tap) {
    tap_ = std::move(tap);
  }

  const LoadGenTotals& totals() const { return totals_; }
  const WorkloadSpec& spec() const { return spec_; }

  /// Pure derivations (stable across shard counts — see file comment).
  SessionKind kind_of(std::size_t global_index) const;
  net::SimDuration arrival_of(std::size_t global_index) const;

  /// Convenience: run \p spec across \p shards worker threads and return
  /// the merged result. Equivalent to a ShardedRunner whose body builds one
  /// LoadGen per shard.
  static net::ShardedResult run_sharded(const WorkloadSpec& spec,
                                        std::size_t shards,
                                        std::uint64_t root_seed,
                                        bool enable_trace = false);

 private:
  struct SessionRec {
    std::size_t index{0};
    SessionKind kind{SessionKind::kStraight};
    net::HostId client{0};
    net::Port base_port{0};
    std::unique_ptr<streaming::Player> player;
    std::unique_ptr<edge::ReplicaSelector> selector;
    std::unique_ptr<FloorClient> floor;
    std::uint32_t release_attempts{0};
  };

  void build_deployment();
  void publish_lecture();
  void start_session(SessionRec& rec);
  /// Deliver one scripted input: tap first (unconditionally, so recordings
  /// match the plan), then route to the owning session if any.
  void apply_input(const SessionInput& in);
  /// Shared body of both run() overloads.
  void run_script(std::vector<SessionInput> script);
  void schedule_floor_script(SessionRec& rec);
  void floor_release_tick(SessionRec& rec);
  void finalize_totals();

  net::Simulator& sim_;
  WorkloadSpec spec_;
  std::uint64_t root_seed_;
  std::size_t shard_;
  std::size_t shard_count_;

  net::Network net_;
  net::HostId origin_host_{0};
  net::HostId edge_host_{0};
  net::HostId flaky_host_{0};
  std::vector<net::HostId> client_hosts_;
  std::unique_ptr<streaming::StreamingServer> server_;
  std::unique_ptr<edge::OriginGateway> gateway_;
  std::unique_ptr<edge::EdgeNode> edge_;
  std::unique_ptr<edge::EdgeNode> flaky_;
  std::unique_ptr<FloorService> floor_service_;

  std::vector<SessionRec> sessions_;
  /// GLOBAL session index -> this shard's record (stable: sessions_ is
  /// sized once in the constructor and never resized).
  std::unordered_map<std::uint32_t, SessionRec*> by_index_;
  std::function<void(const SessionInput&)> tap_;
  LoadGenTotals totals_;
  bool ran_{false};
  std::shared_ptr<bool> alive_{std::make_shared<bool>(true)};
};

}  // namespace lod::lod
