#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lod/contenttree/content_tree.hpp"
#include "lod/core/ocpn.hpp"
#include "lod/media/asf.hpp"

/// \file abstraction.hpp
/// The Abstractor (§2.2, Fig. 6): lecture material organized as a multiple
/// level content tree, and per-level abstraction playback.
///
/// "A teaching material can be taken as a multimedia presentation ... with
/// some kinds of sequence fashion. The multiple level content tree approach
/// may be used to arrive at an efficient summarizing method." Level 0 is the
/// shortest summary; each deeper level inserts more detail segments and
/// lengthens the playout ("the higher level gives the longer presentation"),
/// so one recording serves viewers with different time budgets.

namespace lod::lod {

using contenttree::ContentTree;
using contenttree::NodeId;

/// One lecture segment placed in the tree.
struct LectureSegment {
  std::string name;
  int level{0};
  net::SimDuration begin{};  ///< window into the recorded lecture video
  net::SimDuration end{};
  std::uint32_t slide{0};    ///< slide on screen during this segment
};

/// Build the content tree from segments (paper's attach semantics: each
/// segment is attached at its level in listed order). Segments must start
/// with one level-0 node; throws on malformed input.
ContentTree build_lecture_tree(const std::vector<LectureSegment>& segments);

/// One entry of a level-q abstraction playlist: play [begin, end) of the
/// recording, showing `slide`.
struct PlaylistEntry {
  std::string name;
  net::SimDuration begin{};
  net::SimDuration end{};
  std::uint32_t slide{0};
};

/// The level-q playlist: the tree's pre-order sequence at that level, mapped
/// back to windows of the recording. Total duration equals
/// tree.presentation_time(level).
std::vector<PlaylistEntry> level_playlist(const ContentTree& tree, int level);

/// Compile the level-q presentation into a temporal specification (a meets-
/// chain of the playlist segments) — feed it to build_ocpn / the interactive
/// engine to drive an abstracted playout.
core::TemporalSpec level_spec(const ContentTree& tree, int level);

/// Script commands for an abstracted playout: a SLIDE flip whenever the
/// playlist's slide changes, timed on the ABSTRACTED timeline.
std::vector<media::asf::ScriptCommand> level_slide_commands(
    const ContentTree& tree, int level, const std::string& url_prefix);

/// Encode a LectureSegment into the tree node's media_ref and back.
std::string segment_media_ref(const LectureSegment& seg);

}  // namespace lod::lod
