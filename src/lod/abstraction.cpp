#include "lod/lod/abstraction.hpp"

#include <cstdio>
#include <stdexcept>

namespace lod::lod {

std::string segment_media_ref(const LectureSegment& seg) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "video[%lld,%lld]s%u",
                static_cast<long long>(seg.begin.us),
                static_cast<long long>(seg.end.us), seg.slide);
  return buf;
}

namespace {
/// Inverse of segment_media_ref.
bool parse_media_ref(const std::string& ref, net::SimDuration& begin,
                     net::SimDuration& end, std::uint32_t& slide) {
  long long b = 0, e = 0;
  unsigned s = 0;
  if (std::sscanf(ref.c_str(), "video[%lld,%lld]s%u", &b, &e, &s) != 3) {
    return false;
  }
  begin = net::SimDuration{b};
  end = net::SimDuration{e};
  slide = s;
  return true;
}
}  // namespace

ContentTree build_lecture_tree(const std::vector<LectureSegment>& segments) {
  if (segments.empty() || segments.front().level != 0) {
    throw std::invalid_argument(
        "build_lecture_tree: first segment must be the level-0 root");
  }
  ContentTree tree;
  for (const auto& seg : segments) {
    if (seg.end <= seg.begin) {
      throw std::invalid_argument("build_lecture_tree: empty segment " +
                                  seg.name);
    }
    contenttree::Segment node;
    node.name = seg.name;
    node.duration = seg.end - seg.begin;
    node.media_ref = segment_media_ref(seg);
    tree.add(std::move(node), seg.level);
  }
  return tree;
}

std::vector<PlaylistEntry> level_playlist(const ContentTree& tree, int level) {
  std::vector<PlaylistEntry> out;
  for (NodeId n : tree.sequence(level)) {
    const auto& seg = tree.segment(n);
    PlaylistEntry e;
    e.name = seg.name;
    if (!parse_media_ref(seg.media_ref, e.begin, e.end, e.slide)) {
      // Trees built by hand may lack media refs; synthesize a window from
      // the duration so the playlist still has the right total length.
      e.begin = {};
      e.end = seg.duration;
      e.slide = 0;
    }
    out.push_back(std::move(e));
  }
  return out;
}

core::TemporalSpec level_spec(const ContentTree& tree, int level) {
  const auto playlist = level_playlist(tree, level);
  if (playlist.empty()) {
    throw std::invalid_argument("level_spec: empty playlist");
  }
  core::TemporalSpec spec = core::TemporalSpec::object(
      playlist[0].name, static_cast<std::uint8_t>(media::MediaType::kVideo),
      playlist[0].end - playlist[0].begin);
  for (std::size_t i = 1; i < playlist.size(); ++i) {
    spec = core::TemporalSpec::relate(
        core::Relation::kMeets, std::move(spec),
        core::TemporalSpec::object(
            playlist[i].name,
            static_cast<std::uint8_t>(media::MediaType::kVideo),
            playlist[i].end - playlist[i].begin));
  }
  return spec;
}

std::vector<media::asf::ScriptCommand> level_slide_commands(
    const ContentTree& tree, int level, const std::string& url_prefix) {
  std::vector<media::asf::ScriptCommand> out;
  net::SimDuration t{};
  std::uint32_t last_slide = static_cast<std::uint32_t>(-1);
  for (const auto& e : level_playlist(tree, level)) {
    if (e.slide != last_slide) {
      out.push_back(media::asf::ScriptCommand{
          t, "SLIDE", url_prefix + std::to_string(e.slide)});
      last_slide = e.slide;
    }
    t += e.end - e.begin;
  }
  return out;
}

}  // namespace lod::lod
